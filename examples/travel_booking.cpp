// Travel booking across heterogeneous reservation systems, with local
// transactions running concurrently at each site.
//
// A trip books a flight (airline database), a hotel room (hotel chain
// database) and a car (rental database) atomically. Each system is an
// autonomous LDBS with its own local users: check-in agents and cleaning
// crews update rows directly through the local interface, invisible to the
// DTM. The Denied-Local-Updates rule keeps locals from updating data bound
// to prepared bookings, while local reads always proceed.
//
//   build/examples/travel_booking

#include <cstdio>

#include "common/rng.h"
#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"

using namespace hermes;  // NOLINT — example brevity

namespace {

constexpr SiteId kAirline = 0;
constexpr SiteId kHotel = 1;
constexpr SiteId kCars = 2;
constexpr int64_t kInventory = 30;

}  // namespace

int main() {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 3;
  core::Mdbs mdbs(config, &loop);

  // Each company's schema differs (heterogeneity): same logical content,
  // different field names.
  const db::TableId seats = *mdbs.CreateTable(kAirline, "seats");
  const db::TableId rooms = *mdbs.CreateTable(kHotel, "rooms");
  const db::TableId cars = *mdbs.CreateTable(kCars, "fleet");
  for (int64_t k = 0; k < kInventory; ++k) {
    mdbs.LoadRow(kAirline, seats, k,
                 db::Row{{"free", db::Value(int64_t{1})},
                         {"fare", db::Value(int64_t{120})}});
    mdbs.LoadRow(kHotel, rooms, k,
                 db::Row{{"vacant", db::Value(int64_t{1})},
                         {"rate", db::Value(int64_t{90})}});
    mdbs.LoadRow(kCars, cars, k,
                 db::Row{{"available", db::Value(int64_t{1})},
                         {"class", db::Value(std::string("mid"))}});
  }

  Rng rng(2026);
  int booked = 0, failed = 0, trips = 0;
  constexpr int kTrips = 25;

  std::function<void()> book_trip = [&]() {
    if (trips >= kTrips) return;
    ++trips;
    const int64_t seat = static_cast<int64_t>(rng.NextUint64(kInventory));
    const int64_t room = static_cast<int64_t>(rng.NextUint64(kInventory));
    const int64_t car = static_cast<int64_t>(rng.NextUint64(kInventory));

    // Booking = flip each availability flag from 1 to 0; the predicate
    // `flag = 1` makes double-booking impossible: a taken resource matches
    // nothing and the application aborts the trip.
    core::GlobalTxnSpec spec;
    spec.steps.push_back(
        {kAirline,
         db::MakeUpdate(seats,
                        db::Predicate::KeyEquals(seat).AndField(
                            "free", db::CmpOp::kEq, db::Value(int64_t{1})),
                        {db::Assignment{"free", db::Assignment::Kind::kSet,
                                        db::Value(int64_t{0})}})});
    spec.steps.push_back(
        {kHotel,
         db::MakeUpdate(rooms,
                        db::Predicate::KeyEquals(room).AndField(
                            "vacant", db::CmpOp::kEq, db::Value(int64_t{1})),
                        {db::Assignment{"vacant", db::Assignment::Kind::kSet,
                                        db::Value(int64_t{0})}})});
    spec.steps.push_back(
        {kCars,
         db::MakeUpdate(cars,
                        db::Predicate::KeyEquals(car).AndField(
                            "available", db::CmpOp::kEq,
                            db::Value(int64_t{1})),
                        {db::Assignment{"available",
                                        db::Assignment::Kind::kSet,
                                        db::Value(int64_t{0})}})});
    // Any resource already taken -> its update matches 0 rows -> the whole
    // trip aborts atomically (no partial bookings).
    for (auto& step : spec.steps) step.min_affected = 1;

    mdbs.Submit(spec, [&](const core::GlobalTxnResult& r) {
      if (r.status.ok()) {
        ++booked;
      } else {
        ++failed;
      }
      book_trip();
    });
  };
  for (int client = 0; client < 3; ++client) {
    loop.ScheduleAfter(0, [&]() { book_trip(); });
  }

  // Local users at each site: the hotel's own front desk reads occupancy
  // and adjusts rates — purely local transactions the DTM never sees.
  int local_done = 0;
  std::function<void()> local_work = [&]() {
    if (trips >= kTrips) return;
    core::LocalTxnSpec spec;
    spec.site = kHotel;
    spec.commands.push_back(db::MakeSelect(
        rooms,
        db::Predicate::Field("vacant", db::CmpOp::kEq,
                             db::Value(int64_t{1}))));
    spec.commands.push_back(db::MakeAddKey(
        rooms, static_cast<int64_t>(rng.NextUint64(kInventory)), "rate",
        db::Value(int64_t{1})));
    mdbs.SubmitLocal(spec, [&](const core::LocalTxnResult& r) {
      if (r.status.ok()) ++local_done;
      loop.ScheduleAfter(2 * sim::kMillisecond, [&]() { local_work(); });
    });
  };
  loop.ScheduleAfter(0, [&]() { local_work(); });

  loop.Run();

  int64_t seats_taken = 0;
  for (const auto& [k, e] :
       mdbs.storage(kAirline)->GetTable(seats)->entries()) {
    if (e.live() && std::get<int64_t>(*e.row->Get("free")) == 0) {
      ++seats_taken;
    }
  }
  std::printf("trips: %d fully booked, %d failed/partial (of %d)\n", booked,
              failed, kTrips);
  std::printf("airline seats taken: %lld\n",
              static_cast<long long>(seats_taken));
  std::printf("hotel front-desk local transactions committed: %d "
              "(DLU waits at hotel: %lld)\n",
              local_done,
              static_cast<long long>(mdbs.ltm(kHotel)->stats().dlu_waits));

  const auto committed =
      history::CommittedProjection(mdbs.recorder().ops());
  std::printf("commit order graph acyclic: %s\n",
              history::CommitGraphAcyclic(committed) ? "yes" : "NO");
  return 0;
}
