// Quickstart: a two-site heterogeneous multidatabase running one global
// funds transfer through the 2PC Agent method.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"

using namespace hermes;  // NOLINT — example brevity

int main() {
  // 1. A deterministic simulation hosts the whole multidatabase.
  sim::EventLoop loop;

  // 2. Two autonomous sites, each with its own storage, LTM (strict 2PL,
  //    rigorous histories) and 2PC Agent running the full certifier.
  core::MdbsConfig config;
  config.num_sites = 2;
  core::Mdbs mdbs(config, &loop);

  // 3. Create an `accounts` table at both sites and load one row each.
  const db::TableId accounts = *mdbs.CreateTableEverywhere("accounts");
  mdbs.LoadRow(/*site=*/0, accounts, /*key=*/1,
               db::Row{{"owner", db::Value(std::string("alice"))},
                       {"balance", db::Value(int64_t{1000})}});
  mdbs.LoadRow(/*site=*/1, accounts, /*key=*/2,
               db::Row{{"owner", db::Value(std::string("bob"))},
                       {"balance", db::Value(int64_t{500})}});

  // 4. A global transaction: move 200 from alice@site0 to bob@site1. The
  //    coordinator decomposes it into one subtransaction per site and runs
  //    the 2PC protocol against the agents.
  core::GlobalTxnSpec transfer;
  transfer.steps.push_back(
      {0, db::MakeAddKey(accounts, 1, "balance", int64_t{-200})});
  transfer.steps.push_back(
      {1, db::MakeAddKey(accounts, 2, "balance", int64_t{200})});

  mdbs.Submit(transfer, [](const core::GlobalTxnResult& result) {
    std::printf("transfer %s: %s (latency %.2f ms)\n",
                result.gtid.ToString().c_str(),
                result.status.ToString().c_str(),
                static_cast<double>(result.latency) / 1000.0);
  });

  // 5. Run the simulation to quiescence.
  loop.Run();

  // 6. Inspect the result and verify the recorded history against the
  //    view-serializability oracle.
  auto balance = [&](SiteId site, int64_t key) {
    return std::get<int64_t>(
        *mdbs.storage(site)->GetTable(accounts)->Get(key)->row->Get(
            "balance"));
  };
  std::printf("alice@site0 = %lld, bob@site1 = %lld\n",
              static_cast<long long>(balance(0, 1)),
              static_cast<long long>(balance(1, 2)));

  const auto committed =
      history::CommittedProjection(mdbs.recorder().ops());
  const auto check = history::CheckViewSerializability(committed);
  std::printf("history: %zu ops, oracle verdict: %s\n", committed.size(),
              history::VerdictName(check.verdict));
  std::printf("messages exchanged: %lld\n",
              static_cast<long long>(mdbs.network().messages_sent()));
  return check.verdict == history::Verdict::kSerializable ? 0 : 1;
}
