// Banking across three autonomous banks with failure injection.
//
// Each bank runs its own pre-existing database system (no prepared state at
// the local interface). Global interbank transfers run through the 2PC
// Agent method; one bank's DBMS keeps unilaterally aborting prepared
// subtransactions (think: log buffer overflow, as the paper says of 1992
// INGRES), and the agents recover by resubmission while the certifier keeps
// the overall history view serializable.
//
//   build/examples/banking_transfer

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"

using namespace hermes;  // NOLINT — example brevity

namespace {

constexpr int kBanks = 3;
constexpr int kAccountsPerBank = 20;
constexpr int kTransfers = 60;

}  // namespace

int main() {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = kBanks;
  config.agent.alive_check_interval = 10 * sim::kMillisecond;
  core::Mdbs mdbs(config, &loop);

  const db::TableId accounts = *mdbs.CreateTableEverywhere("accounts");
  for (SiteId bank = 0; bank < kBanks; ++bank) {
    for (int64_t acc = 0; acc < kAccountsPerBank; ++acc) {
      mdbs.LoadRow(bank, accounts, acc,
                   db::Row{{"balance", db::Value(int64_t{1000})}});
    }
  }

  // Bank 1's DBMS is flaky: it unilaterally aborts ~40% of prepared
  // subtransactions a moment after sending READY.
  Rng failure_rng(7);
  mdbs.agent(1)->set_prepared_hook(
      [&](const TxnId&, LtmTxnHandle handle) {
        if (!failure_rng.NextBool(0.4)) return;
        loop.ScheduleAfter(
            static_cast<sim::Duration>(failure_rng.NextUint64(5000)),
            [&mdbs, handle]() {
              (void)mdbs.ltm(1)->InjectUnilateralAbort(handle);
            });
      });

  // Issue random interbank transfers, sequentially per client, four
  // clients in parallel.
  Rng workload_rng(42);
  int submitted = 0, committed = 0, aborted = 0;
  std::function<void()> next_transfer = [&]() {
    if (submitted >= kTransfers) return;
    ++submitted;
    const SiteId from = static_cast<SiteId>(workload_rng.NextUint64(kBanks));
    SiteId to = static_cast<SiteId>(workload_rng.NextUint64(kBanks));
    if (to == from) to = (to + 1) % kBanks;
    const int64_t src =
        static_cast<int64_t>(workload_rng.NextUint64(kAccountsPerBank));
    const int64_t dst =
        static_cast<int64_t>(workload_rng.NextUint64(kAccountsPerBank));
    const int64_t amount = workload_rng.NextInt(1, 50);

    core::GlobalTxnSpec spec;
    spec.steps.push_back(
        {from, db::MakeAddKey(accounts, src, "balance", -amount)});
    spec.steps.push_back(
        {to, db::MakeAddKey(accounts, dst, "balance", amount)});
    mdbs.Submit(spec, [&](const core::GlobalTxnResult& result) {
      if (result.status.ok()) {
        ++committed;
      } else {
        ++aborted;
      }
      next_transfer();
    });
  };
  for (int client = 0; client < 4; ++client) {
    loop.ScheduleAfter(0, [&]() { next_transfer(); });
  }
  loop.Run();

  // Conservation: total money must be exactly the initial amount — every
  // resubmitted debit/credit applied exactly once.
  int64_t total = 0;
  for (SiteId bank = 0; bank < kBanks; ++bank) {
    for (const auto& [key, entry] :
         mdbs.storage(bank)->GetTable(accounts)->entries()) {
      if (entry.live()) {
        total += std::get<int64_t>(*entry.row->Get("balance"));
      }
    }
  }
  const int64_t expected = int64_t{1000} * kBanks * kAccountsPerBank;

  const auto& m = mdbs.metrics();
  std::printf("transfers: %d committed, %d aborted (of %d)\n", committed,
              aborted, kTransfers);
  std::printf("unilateral aborts injected at bank 1: %lld, "
              "resubmissions performed: %lld\n",
              static_cast<long long>(mdbs.ltm(1)->stats().injected_aborts),
              static_cast<long long>(m.resubmissions));
  std::printf("certification refusals: interval=%lld extension=%lld "
              "dead=%lld, commit retries=%lld\n",
              static_cast<long long>(m.refuse_interval),
              static_cast<long long>(m.refuse_extension),
              static_cast<long long>(m.refuse_dead),
              static_cast<long long>(m.commit_cert_retries));
  std::printf("money conservation: total=%lld expected=%lld %s\n",
              static_cast<long long>(total),
              static_cast<long long>(expected),
              total == expected ? "OK" : "VIOLATED");

  const auto committed_ops =
      history::CommittedProjection(mdbs.recorder().ops());
  std::printf("commit order graph acyclic: %s\n",
              history::CommitGraphAcyclic(committed_ops) ? "yes" : "NO");
  return total == expected ? 0 : 1;
}
