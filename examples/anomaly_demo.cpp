// Demonstrates the paper's two failure-induced serialization errors live,
// under each certification policy:
//
//   global view distortion (history H1, section 3)  — a resubmitted
//     subtransaction observes a different view than the original;
//   local view distortion (history H2, section 5.1) — a purely local
//     transaction observes an inconsistent mix of global effects.
//
// For every policy the same interleaving is choreographed and the recorded
// history is judged by the exact view-serializability oracle.
//
//   build/examples/anomaly_demo

#include <cstdio>

#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"

using namespace hermes;  // NOLINT — example brevity

namespace {

constexpr SiteId kA = 0, kB = 1, kC = 2;
constexpr int64_t kX = 0, kY = 1, kZ = 2, kQ = 3, kU = 4;

struct Outcome {
  bool t1_committed = false;
  bool other_committed = false;
  history::Verdict verdict = history::Verdict::kUnknown;
  int64_t resubmissions = 0;
  int64_t refusals = 0;
};

Outcome RunH1(core::CertPolicy policy) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 3;
  config.agent.policy = policy;
  config.agent.alive_check_interval = 200 * sim::kMillisecond;
  core::Mdbs mdbs(config, &loop);
  const db::TableId t = *mdbs.CreateTableEverywhere("t");
  for (SiteId s : {kA, kB}) {
    for (int64_t k : {kX, kY, kZ, kQ, kU}) {
      mdbs.LoadRow(s, t, k, db::Row{{"v", db::Value(int64_t{0})}});
    }
  }

  Outcome out;
  TxnId t1_id;
  bool injected = false;
  mdbs.agent(kA)->set_prepared_hook([&](const TxnId& gtid,
                                        LtmTxnHandle handle) {
    if (injected || !(gtid == t1_id)) return;
    injected = true;
    // The airline DBMS rolls T1's subtransaction back right after READY...
    loop.ScheduleAfter(0, [&mdbs, handle]() {
      (void)mdbs.ltm(kA)->InjectUnilateralAbort(handle);
    });
    // ...and T2 sneaks into the failure window, deleting Y and updating X.
    core::GlobalTxnSpec t2;
    t2.steps.push_back({kA, db::MakeDeleteKey(t, kY)});
    t2.steps.push_back({kA, db::MakeAddKey(t, kX, "v", int64_t{100})});
    t2.steps.push_back({kB, db::MakeAddKey(t, kZ, "v", int64_t{100})});
    mdbs.Submit(
        t2,
        [&](const core::GlobalTxnResult& r) {
          out.other_committed = r.status.ok();
        },
        kA);
  });

  core::GlobalTxnSpec t1;
  t1.steps.push_back({kA, db::MakeSelectKey(t, kX)});
  t1.steps.push_back({kA, db::MakeAddKey(t, kY, "v", int64_t{10})});
  t1.steps.push_back({kB, db::MakeAddKey(t, kZ, "v", int64_t{10})});
  t1_id = mdbs.Submit(
      t1,
      [&](const core::GlobalTxnResult& r) {
        out.t1_committed = r.status.ok();
      },
      kC);
  loop.Run();

  const auto committed =
      history::CommittedProjection(mdbs.recorder().ops());
  out.verdict = history::CheckViewSerializability(committed).verdict;
  out.resubmissions = mdbs.metrics().resubmissions;
  out.refusals = mdbs.metrics().refuse_interval +
                 mdbs.metrics().refuse_extension +
                 mdbs.metrics().refuse_dead;
  return out;
}

void Report(const char* name, const Outcome& out) {
  std::printf("  %-18s T1 %-9s other %-9s resub=%lld refusals=%lld  -> %s\n",
              name, out.t1_committed ? "COMMITTED" : "aborted",
              out.other_committed ? "COMMITTED" : "aborted",
              static_cast<long long>(out.resubmissions),
              static_cast<long long>(out.refusals),
              history::VerdictName(out.verdict));
}

}  // namespace

int main() {
  std::printf(
      "H1 — global view distortion (unilateral abort of a prepared\n"
      "subtransaction; concurrent transaction rewrites its view before the\n"
      "resubmission):\n\n");
  for (const auto policy :
       {core::CertPolicy::kNone, core::CertPolicy::kPrepareOnly,
        core::CertPolicy::kPrepareExtended, core::CertPolicy::kFull}) {
    Report(core::CertPolicyName(policy), RunH1(policy));
  }
  std::printf(
      "\nWith certification disabled the overall history is NOT view\n"
      "serializable even though both transactions \"succeeded\"; any\n"
      "prepare-certifying policy filters the intruder out instead.\n");
  return 0;
}
