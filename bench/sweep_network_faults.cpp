// E13 — robustness on an unreliable network.
//
// Sweeps the message loss rate (with fixed duplication and reordering
// probabilities) and shows that the coordinator's timeout/retransmission
// machinery plus the duplicate-safe agent handlers keep every run
// terminating with a view-serializable committed projection — at the cost
// of retransmissions and latency, which the table quantifies.

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"

namespace hermes::bench {

int RunNetworkFaultsSweep(const SweepArgs& args) {
  const int num_seeds = args.quick ? 1 : 3;
  const int txns = args.quick ? 80 : 200;
  std::printf(
      "E13 — 2PC termination and serializability vs message loss\n"
      "(4 sites, 8 global clients, dup=5%%, reorder=5%%, full certifier%s)\n\n",
      args.quick ? ", quick" : "");

  const double losses[] = {0.0, 0.02, 0.05, 0.10};
  std::vector<runner::RunSpec> specs;
  std::string base_config;
  for (double loss : losses) {
    for (int s = 0; s < num_seeds; ++s) {
      runner::RunSpec spec;
      spec.cell = StrCat("loss=", Fixed2(loss));
      spec.config.seed = 42 + static_cast<uint64_t>(loss * 1000) +
                         static_cast<uint64_t>(s) * 1000;
      spec.config.num_sites = 4;
      spec.config.rows_per_table = 64;
      spec.config.global_clients = 8;
      spec.config.target_global_txns = txns;
      spec.config.net_loss_prob = loss;
      spec.config.net_dup_prob = 0.05;
      spec.config.net_reorder_prob = 0.05;
      if (base_config.empty()) base_config = spec.config.ToString();
      specs.push_back(std::move(spec));
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
  }

  TablePrinter table({"loss", "committed", "aborted", "abrt timeout",
                      "retransmit", "dropped", "dup deliv", "dup absorbed",
                      "tput/s", "p50 ms", "p95 ms", "history"});
  bool all_ok = true;
  for (size_t c = 0; c < agg.cells().size(); ++c) {
    const runner::CellAggregate& cell = agg.cells()[c];
    const int64_t committed = static_cast<int64_t>(cell.Sum("committed"));
    const int64_t aborted = static_cast<int64_t>(cell.Sum("aborted"));
    bool ok = true;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].cell != cell.cell) continue;
      const workload::RunResult& r = (*outputs)[i].result;
      ok = ok && r.replay_consistent && r.commit_graph_acyclic &&
           r.verdict != history::Verdict::kNotSerializable;
    }
    // Termination: every submitted transaction reached a decision.
    ok = ok &&
         committed + aborted == static_cast<int64_t>(num_seeds) * txns;
    all_ok = all_ok && ok;
    table.AddRow(losses[c], committed, aborted,
                 static_cast<int64_t>(cell.Sum("aborted_timeout")),
                 static_cast<int64_t>(cell.Sum("retransmits")),
                 static_cast<int64_t>(cell.Sum("dropped")),
                 static_cast<int64_t>(cell.Sum("duplicated")),
                 static_cast<int64_t>(cell.Sum("dup_absorbed")),
                 cell.Mean("tput"), cell.latency.PercentileMs(50),
                 cell.latency.PercentileMs(95), ok ? "VSR" : "VIOLATED");
  }

  const int rc = FinishSweep("network_faults", base_config, 42,
                             args.workers, table, agg);
  std::printf(
      "\nExpected shape: retransmissions and dropped messages grow with the\n"
      "loss rate while every run still decides all transactions; the\n"
      "history column never reports a violation. Latency degrades as\n"
      "retransmission timeouts stretch the 2PC rounds.\n");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
