// E20 — trace overhead sweep: {off, jsonl, binary, binary + 1/16
// sampling} x workload sizes.
//
// The tentpole claim behind the binary ring-buffer backend is that
// always-on tracing is affordable: at the largest workload cell the
// binary tracer must cost < 5% of the untraced run's wall-clock time.
// Wall time is measured with std::chrono::steady_clock around
// Driver::Run only — export (ToJsonl / ToBinary) is timed separately
// and reported in its own column, because a live deployment serializes
// once per run, not per event. The timing grid always executes
// serially (workers would contend for cores and poison the clock);
// --workers only affects the determinism sub-grid.
//
// Correctness gates, all modes:
//  * every run passes the atomicity / order-invariant / serializability
//    oracles;
//  * committed and aborted counts are identical across all four modes
//    for every (size, seed) — tracing, whatever the backend or sampling
//    rate, must never perturb the simulation;
//  * the critical-path report computed from the JSONL capture and from
//    the binary capture of the same run are byte-identical — the two
//    formats are interchangeable encodings of the same events;
//  * a serial and a 2-worker RunAll over binary-traced specs produce
//    byte-identical fingerprints and byte-identical MergeBinaryTraces
//    outputs;
//  * with 1/16 sampling, sampled_out > 0 and the tracer invariant
//    emitted == stored + sampled_out + dropped holds.
//
// The < 5% overhead gate is enforced only in full mode (--quick cells
// are too small for stable wall-clock ratios); quick mode still prints
// the measured overhead.

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"
#include "trace/binary.h"
#include "trace/critical_path.h"
#include "trace/span.h"
#include "trace/trace.h"
#include "workload/driver.h"

namespace hermes::bench {

namespace {

struct OverheadMode {
  const char* name;
  bool traced;
  trace::TracerOptions options;
};

workload::WorkloadConfig OverheadConfig(uint64_t seed, int txns) {
  workload::WorkloadConfig config;
  config.seed = seed;
  config.num_sites = 4;
  config.rows_per_table = 128;
  config.global_clients = 8;
  config.target_global_txns = txns;
  config.sites_per_global_txn = 2;
  return config;
}

struct TimedRun {
  workload::RunResult result;
  trace::TracerStats stats;   // tracer counters (traced modes)
  std::string capture;        // export bytes (traced modes)
  double wall_ms = 0.0;       // best-of-repeats Driver::Run wall time
  double export_ms = 0.0;     // best-of-repeats ToJsonl/ToBinary time
};

double Ms(std::chrono::steady_clock::duration d) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                 .count()) /
         1e6;
}

// Runs the config `repeats` times under `mode`'s tracer and keeps the
// fastest wall time (the repeats are byte-identical by determinism, so
// min is a noise filter, not a choice of result).
TimedRun RunTimed(const OverheadMode& mode,
                  const workload::WorkloadConfig& base, int repeats) {
  TimedRun out;
  for (int r = 0; r < repeats; ++r) {
    workload::WorkloadConfig config = base;
    std::optional<trace::Tracer> tracer;
    if (mode.traced) {
      tracer.emplace(mode.options);
      config.tracer = &*tracer;
    }
    const auto start = std::chrono::steady_clock::now();
    workload::RunResult result = workload::Driver::Run(config);
    const auto ran = std::chrono::steady_clock::now();
    std::string capture;
    if (tracer.has_value()) {
      capture = mode.options.format == trace::TraceFormat::kBinary
                    ? tracer->ToBinary()
                    : tracer->ToJsonl();
    }
    const auto exported = std::chrono::steady_clock::now();
    const double wall = Ms(ran - start);
    if (r == 0 || wall < out.wall_ms) {
      out.wall_ms = wall;
      out.export_ms = Ms(exported - ran);
      out.result = std::move(result);
      if (tracer.has_value()) out.stats = tracer->stats();
      out.capture = std::move(capture);
    }
  }
  return out;
}

bool OracleOk(const workload::RunResult& r) {
  return r.history_checked && r.atomicity_ok && r.commit_graph_acyclic &&
         r.replay_consistent && r.order_invariant_ok &&
         r.verdict != history::Verdict::kNotSerializable;
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  return std::fclose(f) == 0 && written == bytes.size();
}

}  // namespace

int RunTraceOverheadSweep(const SweepArgs& args) {
  const std::vector<int> sizes =
      args.quick ? std::vector<int>{120} : std::vector<int>{200, 800, 3000};
  const int num_seeds = args.quick ? 2 : 3;
  const int repeats = args.quick ? 1 : 3;

  trace::TracerOptions jsonl_opts;
  trace::TracerOptions binary_opts;
  binary_opts.format = trace::TraceFormat::kBinary;
  trace::TracerOptions sampled_opts = binary_opts;
  sampled_opts.sample_period = 16;
  sampled_opts.sample_seed = 0xE20;
  const std::vector<OverheadMode> modes = {
      {"off", false, {}},
      {"jsonl", true, jsonl_opts},
      {"binary", true, binary_opts},
      {"binary_s16", true, sampled_opts},
  };

  std::printf(
      "E20 — trace overhead: {off, jsonl, binary, binary+1/16-sampling} x "
      "workload size\n(4 sites, 8 global clients, %d seeds per cell, "
      "best-of-%d wall timing around Driver::Run only, timing grid always "
      "serial%s)\n\n",
      num_seeds, repeats, args.quick ? ", quick" : "");

  runner::Aggregator agg;
  std::string base_config;
  bool all_ok = true;

  // wall/export totals per (size, mode index), summed over seeds.
  std::map<std::pair<int, size_t>, double> wall_ms;
  std::map<std::pair<int, size_t>, double> export_ms;

  for (int txns : sizes) {
    // Per-seed decided counts of the off cell, the reference the traced
    // modes must reproduce exactly.
    std::vector<int64_t> ref_committed(static_cast<size_t>(num_seeds), -1);
    std::vector<int64_t> ref_aborted(static_cast<size_t>(num_seeds), -1);
    for (size_t m = 0; m < modes.size(); ++m) {
      const OverheadMode& mode = modes[m];
      const std::string cell = StrCat(mode.name, "/", txns);
      for (int s = 0; s < num_seeds; ++s) {
        const workload::WorkloadConfig config =
            OverheadConfig(7100 + static_cast<uint64_t>(s), txns);
        if (base_config.empty()) base_config = config.ToString();
        TimedRun run = RunTimed(mode, config, repeats);
        wall_ms[{txns, m}] += run.wall_ms;
        export_ms[{txns, m}] += run.export_ms;

        bool ok = OracleOk(run.result);
        if (!ok) {
          std::fprintf(stderr, "oracle: %s seed=%d violated (%s%s%s)\n",
                       cell.c_str(), s, run.result.atomicity_error.c_str(),
                       run.result.order_invariant_error.c_str(),
                       run.result.verdict_detail.c_str());
        }
        const int64_t committed = run.result.metrics.global_committed;
        const int64_t aborted = run.result.metrics.global_aborted;
        if (m == 0) {
          ref_committed[static_cast<size_t>(s)] = committed;
          ref_aborted[static_cast<size_t>(s)] = aborted;
        } else if (committed != ref_committed[static_cast<size_t>(s)] ||
                   aborted != ref_aborted[static_cast<size_t>(s)]) {
          ok = false;
          std::fprintf(stderr,
                       "perturbation: %s seed=%d decided %lld/%lld, off "
                       "decided %lld/%lld — tracing changed the run\n",
                       cell.c_str(), s,
                       static_cast<long long>(committed),
                       static_cast<long long>(aborted),
                       static_cast<long long>(
                           ref_committed[static_cast<size_t>(s)]),
                       static_cast<long long>(
                           ref_aborted[static_cast<size_t>(s)]));
        }
        if (mode.traced) {
          // Tracer accounting invariant: every emitted event is stored,
          // sampled out, or dropped by the ring.
          const int64_t stored = run.stats.emitted -
                                 run.stats.sampled_out - run.stats.dropped;
          if (stored < 0 ||
              run.result.metrics.trace_events_emitted !=
                  run.stats.emitted ||
              run.result.metrics.trace_sampled_out !=
                  run.stats.sampled_out) {
            ok = false;
            std::fprintf(stderr,
                         "accounting: %s seed=%d emitted=%lld "
                         "sampled_out=%lld dropped=%lld\n",
                         cell.c_str(), s,
                         static_cast<long long>(run.stats.emitted),
                         static_cast<long long>(run.stats.sampled_out),
                         static_cast<long long>(run.stats.dropped));
          }
          if (mode.options.sample_period > 1 &&
              run.stats.sampled_out == 0) {
            ok = false;
            std::fprintf(stderr,
                         "sampling: %s seed=%d sampled nothing out\n",
                         cell.c_str(), s);
          }
        }
        all_ok = all_ok && ok;

        agg.AddRun(cell, config.seed, run.result);
        runner::CellAggregate& aggregate = agg.Cell(cell);
        aggregate.Add("wall_ms", run.wall_ms);
        aggregate.Add("export_ms", run.export_ms);
        aggregate.Add("trace_bytes",
                      static_cast<double>(run.capture.size()));
        if (s == 0 && mode.options.format == trace::TraceFormat::kJsonl &&
            mode.traced) {
          AddPhaseStats(aggregate, run.capture);
        }
      }
    }
  }

  // Format interchangeability: for the first seed of every size, the
  // critical-path report from the JSONL capture and from the binary
  // capture of the same run must be byte-identical.
  bool formats_agree = true;
  for (int txns : sizes) {
    const workload::WorkloadConfig config = OverheadConfig(7100, txns);
    TimedRun jsonl_run = RunTimed(modes[1], config, 1);
    TimedRun binary_run = RunTimed(modes[2], config, 1);
    const trace::LenientParse jp =
        trace::ParseJsonlLenient(jsonl_run.capture);
    Result<std::vector<trace::Event>> bp =
        trace::ParseBinary(binary_run.capture);
    if (!bp.ok()) {
      std::fprintf(stderr, "binary parse (%d txns): %s\n", txns,
                   bp.status().ToString().c_str());
      formats_agree = false;
      continue;
    }
    const std::string from_jsonl =
        trace::AnalyzeCriticalPath(trace::BuildSpanForest(jp.events))
            .ToString();
    const std::string from_binary =
        trace::AnalyzeCriticalPath(trace::BuildSpanForest(*bp)).ToString();
    if (from_jsonl != from_binary) {
      formats_agree = false;
      std::fprintf(stderr,
                   "format divergence (%d txns): critical-path report "
                   "differs between the JSONL and binary captures\n",
                   txns);
    }
  }
  all_ok = all_ok && formats_agree;

  // Determinism sub-grid: binary-traced specs through RunAll serially and
  // on 2 workers — per-run fingerprints and the deterministic multi-run
  // merge must be byte-identical.
  std::vector<runner::RunSpec> det;
  for (int s = 0; s < num_seeds; ++s) {
    runner::RunSpec spec;
    spec.cell = "det";
    spec.config = OverheadConfig(7100 + static_cast<uint64_t>(s),
                                 sizes.front());
    spec.capture_trace = true;
    spec.trace_options = binary_opts;
    det.push_back(spec);
  }
  det.back().trace_options = sampled_opts;
  Result<std::vector<runner::RunOutput>> det_serial =
      runner::RunAll(det, {.workers = 1});
  Result<std::vector<runner::RunOutput>> det_parallel =
      runner::RunAll(det, {.workers = 2});
  if (!det_serial.ok() || !det_parallel.ok()) {
    std::fprintf(stderr, "harness: determinism sub-grid failed\n");
    return 2;
  }
  bool deterministic = true;
  for (size_t i = 0; i < det.size(); ++i) {
    if (runner::Fingerprint((*det_serial)[i]) !=
        runner::Fingerprint((*det_parallel)[i])) {
      deterministic = false;
      std::fprintf(stderr,
                   "determinism: binary-traced run %zu diverged between "
                   "serial and 2-worker execution\n",
                   i);
    }
  }
  Result<std::string> merged_serial = runner::MergeBinaryTraces(*det_serial);
  Result<std::string> merged_parallel =
      runner::MergeBinaryTraces(*det_parallel);
  if (!merged_serial.ok() || !merged_parallel.ok()) {
    std::fprintf(stderr, "harness: MergeBinaryTraces failed: %s\n",
                 (merged_serial.ok() ? merged_parallel : merged_serial)
                     .status()
                     .ToString()
                     .c_str());
    return 2;
  }
  if (*merged_serial != *merged_parallel) {
    deterministic = false;
    std::fprintf(stderr,
                 "determinism: merged binary trace differs between serial "
                 "and 2-worker sweeps\n");
  }
  all_ok = all_ok && deterministic;

  // Table + the headline overhead gate.
  TablePrinter table({"cell", "committed", "aborted", "events",
                      "sampled out", "trace KB", "wall ms", "export ms",
                      "overhead %", "status"});
  const int largest = sizes.back();
  double binary_overhead_at_largest = 0.0;
  for (int txns : sizes) {
    const double off_wall = wall_ms[{txns, 0}];
    for (size_t m = 0; m < modes.size(); ++m) {
      const std::string cell = StrCat(modes[m].name, "/", txns);
      runner::CellAggregate& aggregate = agg.Cell(cell);
      const double wall = wall_ms[{txns, m}];
      const double overhead_pct =
          m == 0 || off_wall <= 0.0
              ? 0.0
              : (wall - off_wall) / off_wall * 100.0;
      aggregate.Add("overhead_pct", overhead_pct);
      if (m == 2 && txns == largest) binary_overhead_at_largest = overhead_pct;
      table.AddRow(
          cell, static_cast<int64_t>(aggregate.Sum("committed")),
          static_cast<int64_t>(aggregate.Sum("aborted")),
          static_cast<int64_t>(aggregate.Sum("trace_emitted")),
          static_cast<int64_t>(aggregate.Sum("trace_sampled_out")),
          Fixed2(aggregate.Sum("trace_bytes") / 1024.0), Fixed2(wall),
          Fixed2(export_ms[{txns, m}]), Fixed2(overhead_pct),
          all_ok ? "OK" : "VIOLATED");
    }
  }

  // The acceptance gate: at the largest cell the binary backend costs
  // < 5% of the untraced run. Quick cells are milliseconds long, so the
  // ratio is noise there — report it but only gate the full sweep.
  const bool overhead_ok = binary_overhead_at_largest < 5.0;
  if (!args.quick && !overhead_ok) {
    std::fprintf(stderr,
                 "overhead gate: binary tracing cost %.2f%% at the %d-txn "
                 "cell (budget 5%%)\n",
                 binary_overhead_at_largest, largest);
    all_ok = false;
  }

  if (!args.trace_out.empty()) {
    // Export the merged binary trace (tmstat reads it directly) and the
    // first determinism run's Prometheus metrics.
    if (!WriteFile(args.trace_out, *merged_serial) ||
        !WriteFile(StrCat(args.trace_out, ".prom"),
                   (*det_serial)[0].result.PrometheusText())) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.trace_out.c_str());
    } else {
      std::printf("trace: %s (binary)\nmetrics: %s.prom\n",
                  args.trace_out.c_str(), args.trace_out.c_str());
    }
  }

  const int rc = FinishSweep("E20_trace_overhead", base_config, 7100,
                             args.workers, table, agg);
  std::printf(
      "\nExpected shape: all four modes decide the same transactions on "
      "every\nseed (tracing never perturbs the run), the JSONL and binary "
      "captures\nyield byte-identical critical-path reports, and at the "
      "largest cell the\nbinary backend costs %.2f%% wall time (budget "
      "5%%%s). Determinism\nsub-grid incl. merged binary trace: %s.\n",
      binary_overhead_at_largest,
      args.quick ? ", gated in full mode only" : ", gated",
      deterministic ? "byte-identical" : "DIVERGED");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
