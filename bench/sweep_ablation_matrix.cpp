// E18 — certification ablation matrix: {SN, CSN} ordering x {full-2PC,
// short-commit} x {certification on, off}.
//
// Every cell runs the same failure-free, clock-skewed workload (40% of the
// global transactions single-site, 30% read-only) and differs only in the
// certification scheme and fast-path knobs. The matrix isolates two claims
// developed in docs/DESIGN-SPACE.md:
//
//  * Unnecessary refusals. A failure-free run cannot contain a
//    non-serializable execution (every LTM is rigorous), so *every*
//    certification abort in this sweep is unnecessary by construction.
//    The SN scheme's submit-time numbers disagree with commit order under
//    clock skew and refuse prepares "from the past"; CSN's decision-time
//    numbers cannot, so its unnecessary-refusal rate must be exactly zero.
//
//  * Short-commit latency. Skipping the prepare round for single-site
//    transactions (1PC) and the decision round for read-only participants
//    must strictly reduce the mean critical path of committed single-site
//    transactions in every {certifier, certification} pairing — the sweep
//    exits nonzero otherwise.
//
// The certifier hot-path cost (`cert ns/chk`) is a wall-clock micro-loop
// over CertifyPrepare against a 64-entry prepared set, measured once per
// scheme outside the simulation: virtual time cannot see the data
// structure's real cost, and keeping the wall clock out of the simulated
// runs keeps their fingerprints deterministic. Every run is checked by the
// atomicity, order-invariant and serializability oracles, and a
// determinism sub-grid re-executes one traced run per cell serially and on
// 2 workers (fingerprints must match byte for byte).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "cert/certifier.h"
#include "runner/runner.h"

namespace hermes::bench {

namespace {

struct MatrixVariant {
  const char* cell;
  cert::CertifierKind certifier;
  bool short_commit;
  core::CertPolicy policy;
};

runner::RunSpec MatrixSpec(const MatrixVariant& v, uint64_t seed, int txns) {
  runner::RunSpec spec;
  spec.cell = v.cell;
  spec.config.seed = seed;
  spec.config.num_sites = 4;
  spec.config.rows_per_table = 64;
  spec.config.global_clients = 6;
  spec.config.target_global_txns = txns;
  spec.config.sites_per_global_txn = 2;
  spec.config.single_site_fraction = 0.4;
  spec.config.read_only_fraction = 0.3;
  // Failure-free but skewed: ±2ms submit-time clocks are what make the SN
  // extension refuse (CSN assigns at decision time and cannot).
  spec.config.clock_skew = 2 * sim::kMillisecond;
  spec.config.certifier = v.certifier;
  spec.config.short_commit = v.short_commit;
  spec.config.policy = v.policy;
  return spec;
}

// Wall-clock nanoseconds of one CertifyPrepare against 64 prepared peers.
double MeasureCertNsPerCheck(cert::CertifierKind kind) {
  auto certifier = cert::MakeCertifier(kind, core::CertPolicy::kFull);
  for (int i = 0; i < 64; ++i) {
    certifier->OnPrepared(TxnId::MakeGlobal(0, i),
                          core::AliveInterval{i * 10, i * 10 + 1000},
                          core::SerialNumber{i, 0, 0});
  }
  const TxnId probe = TxnId::MakeGlobal(1, 999);
  const core::AliveInterval candidate{500, 600};
  const core::SerialNumber sn{100, 1, 0};
  constexpr int kIters = 200000;
  int admitted = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    admitted += certifier
                    ->CertifyPrepare(probe, sn, candidate,
                                     /*resubmission=*/0,
                                     /*want_detail=*/false)
                    .admit
                    ? 1
                    : 0;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // `admitted` keeps the loop observable; the verdict itself is irrelevant.
  if (admitted < 0) std::printf("unreachable\n");
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         kIters;
}

}  // namespace

int RunAblationMatrixSweep(const SweepArgs& args) {
  const int num_seeds = args.quick ? 2 : 5;
  const int txns = args.quick ? 60 : 150;
  const std::vector<MatrixVariant> variants = {
      {"sn/2pc/cert", cert::CertifierKind::kSn, false,
       core::CertPolicy::kFull},
      {"sn/2pc/off", cert::CertifierKind::kSn, false,
       core::CertPolicy::kNone},
      {"sn/short/cert", cert::CertifierKind::kSn, true,
       core::CertPolicy::kFull},
      {"sn/short/off", cert::CertifierKind::kSn, true,
       core::CertPolicy::kNone},
      {"csn/2pc/cert", cert::CertifierKind::kCsn, false,
       core::CertPolicy::kFull},
      {"csn/2pc/off", cert::CertifierKind::kCsn, false,
       core::CertPolicy::kNone},
      {"csn/short/cert", cert::CertifierKind::kCsn, true,
       core::CertPolicy::kFull},
      {"csn/short/off", cert::CertifierKind::kCsn, true,
       core::CertPolicy::kNone},
  };
  std::printf(
      "E18 — certification ablation matrix: {SN,CSN} x {2PC,short-commit} "
      "x {cert,off}\n(4 sites, 6 global clients, ±2ms clock skew, "
      "failure-free, 40%% single-site / 30%% read-only, %d seeds per cell, "
      "atomicity + serializability checked per run%s)\n\n",
      num_seeds, args.quick ? ", quick" : "");

  std::vector<runner::RunSpec> specs;
  std::string base_config;
  for (const MatrixVariant& v : variants) {
    for (int s = 0; s < num_seeds; ++s) {
      specs.push_back(MatrixSpec(v, 9300 + static_cast<uint64_t>(s), txns));
      // Trace one seed per cell for the critical-path phase stats (which
      // now fold the short_commit / csn_assign span notes).
      specs.back().capture_trace = s == 0;
      if (base_config.empty()) base_config = specs.back().config.ToString();
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  const double sn_ns = MeasureCertNsPerCheck(cert::CertifierKind::kSn);
  const double csn_ns = MeasureCertNsPerCheck(cert::CertifierKind::kCsn);

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
    AddPhaseStats(agg.Cell(specs[i].cell), (*outputs)[i].trace_jsonl);
  }

  TablePrinter table({"cell", "committed", "aborted", "cert abrt",
                      "unnec rfsl", "1pc", "ro fast", "csn", "ss lat us",
                      "cert ns/chk", "p95 ms", "tput", "history"});
  bool all_ok = true;
  std::vector<double> ss_latency(variants.size(), 0.0);
  for (size_t c = 0; c < variants.size(); ++c) {
    runner::CellAggregate& cell = agg.Cell(variants[c].cell);
    const int64_t committed = static_cast<int64_t>(cell.Sum("committed"));
    const int64_t aborted = static_cast<int64_t>(cell.Sum("aborted"));
    const int64_t cert_aborted =
        static_cast<int64_t>(cell.Sum("aborted_cert"));
    // Failure-free + rigorous LTMs: every certification abort refused a
    // serializable execution, so the whole cert-abort mass is unnecessary.
    const double refusal_unnecessary =
        committed + aborted > 0
            ? static_cast<double>(cert_aborted) /
                  static_cast<double>(committed + aborted)
            : 0.0;
    const int64_t ss_committed =
        static_cast<int64_t>(cell.Sum("single_site_committed"));
    const double ss_lat_us =
        ss_committed > 0 ? cell.Sum("single_site_lat_total_us") /
                               static_cast<double>(ss_committed)
                         : 0.0;
    ss_latency[c] = ss_lat_us;
    const double cert_ns =
        variants[c].policy == core::CertPolicy::kNone
            ? 0.0
            : (variants[c].certifier == cert::CertifierKind::kSn ? sn_ns
                                                                 : csn_ns);
    const int64_t short_commits =
        static_cast<int64_t>(cell.Sum("short_commits_1pc") +
                             cell.Sum("short_commits_readonly"));
    // Derived cell stats for the artifact (docs/FORMATS.md).
    cell.Add("refusal_unnecessary", refusal_unnecessary);
    cell.Add("cert_ns_per_check", cert_ns);
    cell.Add("short_commits", static_cast<double>(short_commits));

    bool ok = true;
    // CG(C(H)) acyclicity is the paper's *sufficient* condition, enforced
    // by commit-order certification; with certification off — or with
    // read-only participants committing at vote time — the commit order
    // may legally differ across sites while H stays view serializable.
    // Assert it only where the enforcing mechanism is actually on.
    const bool expect_cg_acyclic =
        variants[c].policy == core::CertPolicy::kFull &&
        !variants[c].short_commit;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].cell != variants[c].cell) continue;
      const workload::RunResult& r = (*outputs)[i].result;
      const bool run_ok = r.history_checked && r.atomicity_ok &&
                          (r.commit_graph_acyclic || !expect_cg_acyclic) &&
                          r.replay_consistent && r.order_invariant_ok &&
                          r.verdict != history::Verdict::kNotSerializable;
      if (!run_ok) {
        std::fprintf(
            stderr,
            "oracle: %s seed=%llu checked=%d atomic=%d cg=%d replay=%d "
            "order=%d verdict=%d %s%s%s\n",
            specs[i].cell.c_str(),
            static_cast<unsigned long long>(specs[i].config.seed),
            r.history_checked, r.atomicity_ok, r.commit_graph_acyclic,
            r.replay_consistent, r.order_invariant_ok,
            static_cast<int>(r.verdict), r.atomicity_error.c_str(),
            r.order_invariant_error.c_str(), r.verdict_detail.c_str());
      }
      ok = ok && run_ok;
    }
    // Failure-free termination: every submitted transaction decided.
    ok = ok &&
         committed + aborted == static_cast<int64_t>(num_seeds) * txns;
    // The headline refusal claim: decision-time numbering never refuses in
    // a failure-free run, submit-time numbering under skew does.
    if (variants[c].certifier == cert::CertifierKind::kCsn) {
      ok = ok && cert_aborted == 0;
    }
    all_ok = all_ok && ok;
    table.AddRow(variants[c].cell, committed, aborted, cert_aborted,
                 Fixed2(refusal_unnecessary * 100.0),
                 static_cast<int64_t>(cell.Sum("short_commits_1pc")),
                 static_cast<int64_t>(cell.Sum("short_commits_readonly")),
                 static_cast<int64_t>(cell.Sum("csn_assigned")),
                 Fixed2(ss_lat_us), Fixed2(cert_ns),
                 cell.latency.PercentileMs(95), Fixed2(cell.Sum("tput")),
                 ok ? "ATOMIC+VSR" : "VIOLATED");
  }

  // Short-commit acceptance gate: in every {certifier, certification}
  // pairing the short-commit cell's mean committed single-site critical
  // path must be *strictly* below its full-2PC sibling's.
  bool short_faster = true;
  for (size_t c = 0; c < variants.size(); ++c) {
    if (!variants[c].short_commit) continue;
    for (size_t full = 0; full < variants.size(); ++full) {
      if (variants[full].short_commit ||
          variants[full].certifier != variants[c].certifier ||
          variants[full].policy != variants[c].policy) {
        continue;
      }
      if (!(ss_latency[c] < ss_latency[full])) {
        short_faster = false;
        std::fprintf(stderr,
                     "short-commit gate: %s (%.2f us) not strictly below "
                     "%s (%.2f us)\n",
                     variants[c].cell, ss_latency[c], variants[full].cell,
                     ss_latency[full]);
      }
    }
  }
  all_ok = all_ok && short_faster;

  // Determinism sub-grid: the first run of every cell, traced, serially
  // and on 2 workers — fingerprints must match byte for byte.
  std::vector<runner::RunSpec> det;
  for (size_t c = 0; c < variants.size(); ++c) {
    runner::RunSpec spec = specs[c * static_cast<size_t>(num_seeds)];
    spec.capture_trace = true;
    det.push_back(std::move(spec));
  }
  Result<std::vector<runner::RunOutput>> det_serial =
      runner::RunAll(det, {.workers = 1});
  Result<std::vector<runner::RunOutput>> det_parallel =
      runner::RunAll(det, {.workers = 2});
  if (!det_serial.ok() || !det_parallel.ok()) {
    std::fprintf(stderr, "harness: determinism sub-grid failed\n");
    return 2;
  }
  bool deterministic = true;
  for (size_t i = 0; i < det.size(); ++i) {
    if (runner::Fingerprint((*det_serial)[i]) !=
        runner::Fingerprint((*det_parallel)[i])) {
      deterministic = false;
      std::fprintf(stderr,
                   "determinism: ablation run %zu diverged between serial "
                   "and 2-worker execution\n",
                   i);
    }
  }
  all_ok = all_ok && deterministic;

  if (!args.trace_out.empty() && !det.empty()) {
    // Export the csn/short/cert traced run for tmstat / Perfetto (the
    // short_commit and csn_assign span notes).
    const size_t pick = det.size() > 6 ? 6 : det.size() - 1;
    if (!WriteTraceArtifacts(args.trace_out, (*det_serial)[pick].trace_jsonl,
                             (*det_serial)[pick].result)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.trace_out.c_str());
    }
  }

  const int rc = FinishSweep("E18_ablation", base_config, 9300,
                             args.workers, table, agg);
  std::printf(
      "\nExpected shape: under ±2ms skew the SN cells refuse (and abort) a\n"
      "nonzero share of perfectly serializable prepares, the CSN cells\n"
      "refuse none (unnec rfsl = 0). Short-commit strictly reduces the\n"
      "committed single-site critical path in every pairing: %s.\n"
      "Determinism sub-grid: serial == 2 workers, %s.\n",
      short_faster ? "HOLDS" : "VIOLATED",
      deterministic ? "byte-identical" : "DIVERGED");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
