// E14 — the harness itself: parallel speedup and determinism.
//
// Runs the same multi-seed grid serially and with increasing worker
// counts, timing each sweep (wall clock) and verifying that every run's
// fingerprint — the full trace JSONL plus all metrics and oracle
// verdicts — is byte-identical to the serial execution. Simulated runs
// are pure functions of their config, so worker count must never change
// a single byte of output; this binary is the executable proof.
//
//   bench_harness [--quick] [--workers=N]
//
// `--workers=N` sets the largest worker count tried (default 8). Exit
// code is nonzero if any parallel execution diverged from serial.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"

namespace hermes {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<runner::RunSpec> BuildGrid(int seed_count, int txns) {
  std::vector<runner::RunSpec> specs;
  for (int s = 0; s < seed_count; ++s) {
    runner::RunSpec spec;
    spec.cell = "grid";
    spec.capture_trace = true;
    spec.config.seed = 4242 + static_cast<uint64_t>(s);
    spec.config.num_sites = 4;
    spec.config.rows_per_table = 64;
    spec.config.global_clients = 8;
    spec.config.local_clients_per_site = 1;
    spec.config.target_global_txns = txns;
    spec.config.p_prepared_abort = 0.1;
    spec.config.alive_check_interval = 10 * sim::kMillisecond;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) {
  using namespace hermes;  // NOLINT
  const bench::SweepArgs args = bench::ParseSweepArgs(argc, argv);
  const int seed_count = args.quick ? 8 : 32;
  const int txns = args.quick ? 40 : 120;
  const int max_workers = args.workers > 1 ? args.workers : 8;

  std::printf(
      "E14 — harness speedup and determinism (%d seeds, %d txns/run,\n"
      "4 sites, 8 global clients, p_fail=0.10, traces captured;\n"
      "hardware threads: %u)\n\n",
      seed_count, txns, std::thread::hardware_concurrency());

  const std::vector<runner::RunSpec> specs = BuildGrid(seed_count, txns);

  const Clock::time_point serial_start = Clock::now();
  Result<std::vector<runner::RunOutput>> serial =
      runner::RunAll(specs, {.workers = 1});
  const double serial_ms = ElapsedMs(serial_start);
  if (!serial.ok()) {
    std::fprintf(stderr, "harness: %s\n", serial.status().ToString().c_str());
    return 2;
  }
  std::vector<std::string> expected;
  for (const runner::RunOutput& out : *serial) {
    expected.push_back(runner::Fingerprint(out));
  }

  bench::TablePrinter table(
      {"workers", "wall ms", "speedup", "identical"});
  table.AddRow(1, serial_ms, 1.0, "yes");

  bool all_identical = true;
  for (int workers = 2; workers <= max_workers; workers *= 2) {
    const Clock::time_point start = Clock::now();
    Result<std::vector<runner::RunOutput>> parallel =
        runner::RunAll(specs, {.workers = workers});
    const double ms = ElapsedMs(start);
    if (!parallel.ok()) {
      std::fprintf(stderr, "harness: %s\n",
                   parallel.status().ToString().c_str());
      return 2;
    }
    bool identical = parallel->size() == expected.size();
    for (size_t i = 0; identical && i < expected.size(); ++i) {
      identical = runner::Fingerprint((*parallel)[i]) == expected[i];
    }
    all_identical = all_identical && identical;
    table.AddRow(workers, ms, ms > 0 ? serial_ms / ms : 0.0,
                 identical ? "yes" : "NO");
  }

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*serial)[i].result);
  }
  const int rc = bench::FinishSweep(
      "harness", StrCat(seed_count, " seeds, ", specs[0].config.ToString()),
      4242, args.workers, table, agg);

  std::printf(
      "\nExpected shape: speedup approaches the worker count until it hits\n"
      "the hardware thread count; the identical column must always say\n"
      "yes (bit-for-bit deterministic runs regardless of scheduling).\n");
  if (!all_identical) {
    std::fprintf(stderr, "bench_harness: DETERMINISM VIOLATION\n");
    return 1;
  }
  return rc;
}
