// E10 — serial number generation: commit-time vs predefined order
// (paper section 5.2).
//
// "A simple possibility is to guarantee that the transaction identifiers
// are picked up from a totally ordered set ... This would be quite
// restrictive, because it would require all global transactions to be
// serialized in the same order even if they could not have caused any
// problems." The ablation assigns SN at submission time (a predefined
// total order) instead of at global-commit time and measures the extra
// extension-refusals and commit-certification stalls.

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::WorkloadConfig;

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  std::printf(
      "E10 — SN at commit time (paper) vs SN at submit time (static\n"
      "predefined order), sweeping transaction length\n\n");
  bench::TablePrinter table({"sn policy", "cmds/txn", "committed", "aborted",
                             "refuse ext", "commit retries", "tput/s",
                             "mean lat ms", "history"});
  for (int cmds : {2, 4, 8}) {
    for (int mode = 0; mode < 2; ++mode) {
      WorkloadConfig config;
      config.seed = 3100 + static_cast<uint64_t>(cmds);
      config.num_sites = 4;
      config.rows_per_table = 64;
      config.global_clients = 10;
      config.target_global_txns = 120;
      config.cmds_per_global_txn = cmds;
      config.sn_at_submit = mode == 1;
      config.p_prepared_abort = 0.05;
      config.alive_check_interval = 10 * sim::kMillisecond;
      const RunResult r = Driver::Run(config);
      table.AddRow(mode == 0 ? "commit-time" : "submit-time", cmds,
                   r.metrics.global_committed, r.metrics.global_aborted,
                   r.metrics.refuse_extension,
                   r.metrics.commit_cert_retries, r.CommitsPerSecond(),
                   r.metrics.MeanLatencyMs(), bench::VerdictCell(r));
    }
  }
  table.Print();
  bench::WriteBenchArtifact("ablation_order",
                            "4 sites, 10 global clients, p_fail=0.05", 3100,
                            table);
  std::printf(
      "\nExpected shape: both variants stay correct, but submit-time\n"
      "numbering suffers more extension refusals and commit stalls —\n"
      "and the gap widens with transaction length, because long\n"
      "transactions hold their (early) number while shorter, later-\n"
      "numbered ones race ahead.\n");
  return 0;
}
