#include "bench/sweeps.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/runner.h"

namespace hermes::bench {

SweepArgs ParseSweepArgs(int argc, char** argv) {
  SweepArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      args.workers = std::atoi(a + 10);
    } else if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
      args.workers = std::atoi(a + 2);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--quick] [--workers=N]\n",
                   a, argv[0]);
      std::exit(2);
    }
  }
  return args;
}

std::string Fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

int FinishSweep(const std::string& name, const std::string& config,
                uint64_t seed, int workers, const TablePrinter& table,
                const runner::Aggregator& agg) {
  table.Print();
  runner::BenchArtifact artifact;
  artifact.bench = name;
  artifact.config = config;
  artifact.seed = seed;
  artifact.workers = runner::EffectiveWorkers(workers);
  artifact.headers = table.headers();
  artifact.rows = table.rows();
  artifact.cells = agg.cells();
  if (!runner::WriteBenchArtifactFile(artifact)) {
    std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                 name.c_str());
    return 1;
  }
  return 0;
}

}  // namespace hermes::bench
