#include "bench/sweeps.h"

#include <cstdio>

#include "runner/runner.h"
#include "trace/critical_path.h"
#include "trace/span.h"
#include "trace/trace.h"

namespace hermes::bench {

void AddPhaseStats(runner::CellAggregate& cell,
                   const std::string& trace_jsonl) {
  if (trace_jsonl.empty()) return;
  const trace::LenientParse parsed = trace::ParseJsonlLenient(trace_jsonl);
  if (parsed.events.empty()) return;
  const trace::SpanForest forest = trace::BuildSpanForest(parsed.events);
  const trace::CriticalPathReport cp = trace::AnalyzeCriticalPath(forest);
  if (cp.committed_txns > 0) {
    const double n = static_cast<double>(cp.committed_txns);
    const trace::PhaseBreakdown& t = cp.committed_total;
    cell.Add("phase_dml_us", static_cast<double>(t.dml) / n);
    cell.Add("phase_prepare_us", static_cast<double>(t.prepare) / n);
    cell.Add("phase_certify_us", static_cast<double>(t.certify) / n);
    cell.Add("phase_consensus_us", static_cast<double>(t.consensus) / n);
    cell.Add("phase_decision_us", static_cast<double>(t.decision) / n);
    cell.Add("phase_blocked_us", static_cast<double>(t.blocked) / n);
    cell.Add("phase_retx_us", static_cast<double>(t.retx_wait) / n);
    cell.Add("phase_other_us", static_cast<double>(t.other) / n);
  }
  cell.Add("blocked_windows", static_cast<double>(cp.blocking.windows));
  cell.Add("blocked_mean_us", static_cast<double>(cp.blocking.MeanUs()));
  cell.Add("blocked_p95_us",
           static_cast<double>(cp.blocking.hist.Percentile(95)));
  cell.Add("blocked_max_us", static_cast<double>(cp.blocking.max_us));
}

bool WriteTraceArtifacts(const std::string& path,
                         const std::string& trace_jsonl,
                         const workload::RunResult& result) {
  const auto write = [](const std::string& p, const std::string& text) {
    std::FILE* f = std::fopen(p.c_str(), "w");
    if (f == nullptr) return false;
    const size_t written = std::fwrite(text.data(), 1, text.size(), f);
    return std::fclose(f) == 0 && written == text.size();
  };
  if (!write(path, trace_jsonl)) return false;
  const std::string prom_path = StrCat(path, ".prom");
  if (!write(prom_path, result.PrometheusText())) return false;
  std::printf("trace: %s\nmetrics: %s\n", path.c_str(), prom_path.c_str());
  return true;
}

std::string Fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

int FinishSweep(const std::string& name, const std::string& config,
                uint64_t seed, int workers, const TablePrinter& table,
                const runner::Aggregator& agg) {
  table.Print();
  runner::BenchArtifact artifact;
  artifact.bench = name;
  artifact.config = config;
  artifact.seed = seed;
  artifact.workers = runner::EffectiveWorkers(workers);
  artifact.headers = table.headers();
  artifact.rows = table.rows();
  artifact.cells = agg.cells();
  if (!runner::WriteBenchArtifactFile(artifact)) {
    std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                 name.c_str());
    return 1;
  }
  return 0;
}

}  // namespace hermes::bench
