// E8 — microbenchmarks of the certifier's data paths (google-benchmark).
//
// The paper emphasizes that the Certifier is built from "simple algorithms
// that can be replicated onto as many sites as needed"; these benchmarks
// quantify the per-operation cost of every certifier data structure: alive
// interval certification, commit-certification SN scan, agent log append
// and replay, serial number generation, and the commit-graph admission of
// the CGM baseline for comparison.

#include <benchmark/benchmark.h>

#include "cert/csn_certifier.h"
#include "cgm/commit_graph.h"
#include "core/agent_log.h"
#include "core/alive_intervals.h"
#include "core/serial_number.h"
#include "history/graphs.h"
#include "history/view_checker.h"
#include "sim/event_loop.h"
#include "sim/site_clock.h"
#include "trace/trace.h"

namespace hermes {
namespace {

core::AliveIntervalTable MakeTable(int entries) {
  core::AliveIntervalTable table;
  for (int i = 0; i < entries; ++i) {
    table.Insert(TxnId::MakeGlobal(0, i),
                 core::AliveInterval{i * 10, i * 10 + 1000},
                 core::SerialNumber{i, 0, 0});
  }
  return table;
}

void BM_AliveIntervalCertification(benchmark::State& state) {
  const auto table = MakeTable(static_cast<int>(state.range(0)));
  const core::AliveInterval candidate{500, 600};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.CertifiableAgainstAll(candidate));
  }
}
BENCHMARK(BM_AliveIntervalCertification)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_CommitCertificationSnScan(benchmark::State& state) {
  const auto table = MakeTable(static_cast<int>(state.range(0)));
  const TxnId self = TxnId::MakeGlobal(0, 0);  // smallest SN
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.SmallestSerialNumber(self));
  }
}
BENCHMARK(BM_CommitCertificationSnScan)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_AliveIntervalInsertRemove(benchmark::State& state) {
  auto table = MakeTable(static_cast<int>(state.range(0)));
  const TxnId id = TxnId::MakeGlobal(1, 999);
  for (auto _ : state) {
    table.Insert(id, core::AliveInterval{0, 1}, core::SerialNumber{1, 1, 1});
    table.Remove(id);
  }
}
BENCHMARK(BM_AliveIntervalInsertRemove)->Arg(8)->Arg(512);

void BM_AgentLogAppendCommand(benchmark::State& state) {
  core::AgentLog log;
  const TxnId gtid = TxnId::MakeGlobal(0, 1);
  const db::Command cmd = db::MakeAddKey(0, 42, "v", db::Value(int64_t{1}));
  for (auto _ : state) {
    log.Append({.kind = core::LogRecordKind::kCommand,
                .gtid = gtid,
                .command = cmd});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentLogAppendCommand);

void BM_AgentLogReplay(benchmark::State& state) {
  core::AgentLog log;
  const TxnId gtid = TxnId::MakeGlobal(0, 1);
  for (int i = 0; i < state.range(0); ++i) {
    log.Append({.kind = core::LogRecordKind::kCommand,
                .gtid = gtid,
                .command = db::MakeAddKey(0, i, "v", db::Value(int64_t{1}))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.CommandsOf(gtid));
  }
}
BENCHMARK(BM_AgentLogReplay)->Arg(4)->Arg(16)->Arg(64);

void BM_SerialNumberGeneration(benchmark::State& state) {
  sim::EventLoop loop;
  sim::SiteClock clock(&loop, 0, 100);
  core::SerialNumberGenerator gen(3, &clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_SerialNumberGeneration);

void BM_CsnCommitCheck(benchmark::State& state) {
  // CSN commit certification: a decided subtransaction scanning `range`
  // co-prepared peers that are still undecided (parked with invalid SNs).
  // This is the cost the CSN scheme moves from prepare to commit time.
  const int peers = static_cast<int>(state.range(0));
  cert::CsnCertifier certifier(core::CertPolicy::kFull);
  for (int i = 0; i < peers; ++i) {
    certifier.OnPrepared(TxnId::MakeGlobal(0, i),
                         core::AliveInterval{i * 10, i * 10 + 1000},
                         core::SerialNumber{});
  }
  const TxnId self = TxnId::MakeGlobal(1, 999);
  certifier.OnPrepared(self, core::AliveInterval{0, 1000},
                       core::SerialNumber{});
  certifier.OnCommitDecision(self, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(certifier.CertifyCommit(self, nullptr));
  }
}
BENCHMARK(BM_CsnCommitCheck)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_CsnSnapshotCheck(benchmark::State& state) {
  // CSN prepare-time snapshot check of a resubmitted candidate against a
  // full recent-commit window (the bounded O(window) prepare path).
  cert::CsnCertifier certifier(core::CertPolicy::kFull);
  const int window =
      static_cast<int>(cert::CsnCertifier::kRecentCommitWindow);
  for (int i = 0; i < window; ++i) {
    const TxnId id = TxnId::MakeGlobal(0, i);
    certifier.OnPrepared(id, core::AliveInterval{i * 10, i * 10 + 100},
                         core::SerialNumber{});
    certifier.OnCommitDecision(id, i + 1);
    certifier.OnCommitted(id, core::SerialNumber{}, i * 10 + 200);
  }
  const TxnId probe = TxnId::MakeGlobal(1, 999);
  const core::AliveInterval candidate{500, 600};
  for (auto _ : state) {
    benchmark::DoNotOptimize(certifier.CertifyPrepare(
        probe, core::SerialNumber{}, candidate, /*resubmission=*/1,
        /*want_detail=*/false));
  }
}
BENCHMARK(BM_CsnSnapshotCheck);

void BM_CgmCommitGraphAdmission(benchmark::State& state) {
  // Steady state: `range` transactions in commit processing across 16
  // sites; measure one admission attempt (the paper's comparison point:
  // the centralized structure every commit must consult).
  const int txns = static_cast<int>(state.range(0));
  cgm::CommitGraph graph;
  for (int i = 0; i < txns; ++i) {
    graph.TryAdd(TxnId::MakeGlobal(0, i),
                 {static_cast<SiteId>((2 * i) % 16),
                  static_cast<SiteId>((2 * i + 1) % 16)});
  }
  const TxnId probe = TxnId::MakeGlobal(1, 777);
  for (auto _ : state) {
    if (graph.TryAdd(probe, {0, 15})) graph.Remove(probe);
  }
}
BENCHMARK(BM_CgmCommitGraphAdmission)->Arg(2)->Arg(16)->Arg(128);

void BM_CommitOrderGraphCheck(benchmark::State& state) {
  // Oracle-side cost: CG construction + cycle check over a synthetic
  // committed history of `range` transactions at 4 sites.
  std::vector<history::Op> ops;
  const int txns = static_cast<int>(state.range(0));
  for (int i = 0; i < txns; ++i) {
    for (SiteId s = 0; s < 4; ++s) {
      history::Op op;
      op.kind = history::OpKind::kLocalCommit;
      op.subtxn = SubTxnId{TxnId::MakeGlobal(0, i), 0};
      op.site = s;
      op.seq = ops.size();
      ops.push_back(op);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::CommitGraphAcyclic(ops));
  }
}
BENCHMARK(BM_CommitOrderGraphCheck)->Arg(8)->Arg(32)->Arg(128);

trace::Event MakeCertEvent() {
  trace::Event e;
  e.kind = trace::EventKind::kCertReady;
  e.txn = TxnId::MakeGlobal(0, 7);
  e.site = 3;
  e.resubmission = 1;
  e.sn = core::SerialNumber{42, 0, 7};
  return e;
}

void BM_TracerRecordEnabled(benchmark::State& state) {
  // Cost of one enabled trace hook: build the typed event + Record.
  sim::EventLoop loop;
  trace::Tracer tracer(&loop);
  trace::Tracer* t = &tracer;
  for (auto _ : state) {
    if (t != nullptr) t->Record(MakeCertEvent());
    if (tracer.size() >= 1u << 20) tracer.Clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecordEnabled);

void BM_TracerDisabledGuard(benchmark::State& state) {
  // Cost of the same hook when tracing is off: a single null check. This is
  // the overhead every instrumented component pays per hook in normal runs
  // (the acceptance bar: indistinguishable from no instrumentation).
  trace::Tracer* t = nullptr;
  benchmark::DoNotOptimize(t);
  for (auto _ : state) {
    if (t != nullptr) t->Record(MakeCertEvent());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerDisabledGuard);

void BM_TracerExportJsonl(benchmark::State& state) {
  sim::EventLoop loop;
  trace::Tracer tracer(&loop);
  for (int i = 0; i < state.range(0); ++i) tracer.Record(MakeCertEvent());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.ToJsonl());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TracerExportJsonl)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace hermes

BENCHMARK_MAIN();
