// E19 — online reconfiguration sweep: epoch-fenced live membership changes
// under load.
//
// Grid: reconfiguration kind {add, remove, replace} x decision protocol
// {2PC, Paxos Commit f=1} x certifier {SN, CSN} x workload seeds. Every
// run starts from a 4-site federation with a 16-shard map, fires exactly
// one membership change mid-run via the fault plan, and must finish every
// targeted transaction. Per cell the sweep reports the handoff window, the
// committed-throughput dip inside it and the recovery delay after the
// final map installs (all from the traced run), alongside the fencing
// counters. Gates: the atomicity + view-serializability oracles on every
// run, zero commits under a stale epoch, at least one completed
// reconfiguration per run, and byte-identical serial-vs-2-worker
// fingerprints for one traced run per cell.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/sweeps.h"
#include "fault/fault_plan.h"
#include "runner/runner.h"
#include "trace/trace.h"

namespace hermes::bench {

namespace {

struct ReconfigCell {
  fault::FaultKind kind;
  consensus::ProtocolKind protocol;
  cert::CertifierKind certifier;
  std::string name;
};

const char* KindLabel(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kAddSite:
      return "add";
    case fault::FaultKind::kRemoveSite:
      return "remove";
    case fault::FaultKind::kReplaceSite:
      return "replace";
    default:
      return "?";
  }
}

runner::RunSpec ReconfigSpec(const ReconfigCell& cell, uint64_t seed,
                             int txns) {
  runner::RunSpec spec;
  spec.cell = cell.name;
  spec.config.seed = seed;
  spec.config.num_sites = 4;
  spec.config.num_shards = 16;
  spec.config.max_sites = 6;
  spec.config.rows_per_table = 64;
  spec.config.global_clients = 4;
  spec.config.target_global_txns = txns;
  spec.config.protocol = cell.protocol;
  spec.config.paxos_f = 1;
  spec.config.certifier = cell.certifier;
  // Let the drain, residue adoption and decision re-drives settle before
  // the oracles judge the history.
  spec.config.drain_grace = 1 * sim::kSecond;

  // Exactly one membership change, fired mid-run. Site 3 is the only
  // removable site under Paxos Commit f=1 (acceptors 0..2 are protected
  // for life), so every protocol targets it for comparability.
  fault::FaultEvent ev;
  ev.kind = cell.kind;
  ev.at = 150 * sim::kMillisecond;
  if (cell.kind != fault::FaultKind::kAddSite) ev.site = 3;
  spec.config.fault_plan.events.push_back(ev);
  return spec;
}

// Committed-throughput shape around the epoch change, from one traced run:
// the fence..final-install window, the commit-rate dip inside it relative
// to the pre-fence rate, and the delay from the final install to the next
// commit (how long the re-routed workload takes to resume).
struct ReconfigTimeline {
  double window_ms = 0;
  double dip_pct = 0;
  double recovery_ms = 0;
  bool valid = false;
};

ReconfigTimeline AnalyzeTimeline(const std::string& trace_jsonl) {
  ReconfigTimeline t;
  if (trace_jsonl.empty()) return t;
  const Result<std::vector<trace::Event>> events =
      trace::ParseJsonl(trace_jsonl);
  if (!events.ok() || events->empty()) return t;

  sim::Time begin = -1;
  sim::Time done = -1;
  std::vector<sim::Time> commits;
  sim::Time end = 0;
  for (const trace::Event& e : *events) {
    end = std::max(end, e.at);
    if (e.kind == trace::EventKind::kReconfigBegin && begin < 0) {
      begin = e.at;
    } else if (e.kind == trace::EventKind::kReconfigDone) {
      done = e.at;
    } else if (e.kind == trace::EventKind::kTxnEnd && e.ok) {
      commits.push_back(e.at);
    }
  }
  if (begin < 0 || done < begin || commits.empty()) return t;

  int64_t before = 0;
  int64_t during = 0;
  sim::Time first_after = -1;
  for (sim::Time c : commits) {
    if (c < begin) {
      ++before;
    } else if (c <= done) {
      ++during;
    } else if (first_after < 0) {
      first_after = c;
    }
  }
  const double before_rate =
      begin > 0 ? static_cast<double>(before) / static_cast<double>(begin)
                : 0.0;
  const double during_rate =
      done > begin
          ? static_cast<double>(during) / static_cast<double>(done - begin)
          : 0.0;
  t.window_ms = static_cast<double>(done - begin) / 1000.0;
  t.dip_pct = before_rate > 0
                  ? 100.0 * (1.0 - during_rate / before_rate)
                  : 0.0;
  t.recovery_ms = first_after >= 0
                      ? static_cast<double>(first_after - done) / 1000.0
                      : static_cast<double>(end - done) / 1000.0;
  t.valid = true;
  return t;
}

}  // namespace

int RunReconfigSweep(const SweepArgs& args) {
  const int num_seeds = args.quick ? 2 : 4;
  const int txns = args.quick ? 60 : 120;
  std::printf(
      "E19 — online reconfiguration: live add/remove/replace under load\n"
      "(4 sites, 16 shards, max_sites=6, one membership change at t=150ms,"
      "\n %d seeds per cell, oracles + stale-epoch tripwire on every run%s)"
      "\n\n",
      num_seeds, args.quick ? ", quick" : "");

  const fault::FaultKind kinds[] = {fault::FaultKind::kAddSite,
                                    fault::FaultKind::kRemoveSite,
                                    fault::FaultKind::kReplaceSite};
  const consensus::ProtocolKind protocols[] = {
      consensus::ProtocolKind::k2PC, consensus::ProtocolKind::kPaxosCommit};
  const cert::CertifierKind certifiers[] = {cert::CertifierKind::kSn,
                                            cert::CertifierKind::kCsn};

  std::vector<ReconfigCell> cells;
  for (fault::FaultKind kind : kinds) {
    for (consensus::ProtocolKind protocol : protocols) {
      for (cert::CertifierKind certifier : certifiers) {
        const bool paxos = protocol == consensus::ProtocolKind::kPaxosCommit;
        cells.push_back(ReconfigCell{
            kind, protocol, certifier,
            StrCat(KindLabel(kind), "/", paxos ? "paxos" : "2pc", "/",
                   certifier == cert::CertifierKind::kCsn ? "csn" : "sn")});
      }
    }
  }

  std::vector<runner::RunSpec> specs;
  std::string base_config;
  for (const ReconfigCell& cell : cells) {
    for (int s = 0; s < num_seeds; ++s) {
      specs.push_back(
          ReconfigSpec(cell, 9100 + static_cast<uint64_t>(s), txns));
      // One traced run per cell feeds the dip/recovery columns and the
      // determinism sub-grid.
      specs.back().capture_trace = s == 0;
      if (base_config.empty()) base_config = specs.back().config.ToString();
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  std::vector<ReconfigTimeline> timelines(cells.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
    if (specs[i].capture_trace) {
      AddPhaseStats(agg.Cell(specs[i].cell), (*outputs)[i].trace_jsonl);
      timelines[i / static_cast<size_t>(num_seeds)] =
          AnalyzeTimeline((*outputs)[i].trace_jsonl);
    }
  }

  TablePrinter table({"cell", "committed", "aborted", "rows moved",
                      "residue", "forced abrt", "refusals", "refreshes",
                      "stale commits", "win ms", "dip %", "recov ms",
                      "tput/s", "history"});
  bool all_ok = true;
  for (size_t c = 0; c < cells.size(); ++c) {
    const runner::CellAggregate& cell = agg.Cell(cells[c].name);
    const int64_t committed = static_cast<int64_t>(cell.Sum("committed"));
    const int64_t aborted = static_cast<int64_t>(cell.Sum("aborted"));
    bool ok = true;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].cell != cells[c].name) continue;
      const workload::RunResult& r = (*outputs)[i].result;
      ok = ok && r.history_checked && r.atomicity_ok &&
           r.commit_graph_acyclic && r.replay_consistent &&
           r.verdict != history::Verdict::kNotSerializable;
      // Every run must complete its membership change and never commit
      // under a stale epoch.
      ok = ok && r.metrics.reconfig_completed >= 1;
      ok = ok && r.metrics.commits_stale_epoch == 0;
    }
    // Termination: every targeted transaction reached a decision across
    // the epoch changes (none lost in a handoff).
    ok = ok &&
         committed + aborted == static_cast<int64_t>(num_seeds) * txns;
    all_ok = all_ok && ok;
    const ReconfigTimeline& t = timelines[c];
    table.AddRow(cells[c].name, committed, aborted,
                 static_cast<int64_t>(cell.Sum("reconfig_rows_moved")),
                 static_cast<int64_t>(cell.Sum("reconfig_residue_adopted")),
                 static_cast<int64_t>(cell.Sum("reconfig_forced_aborts")),
                 static_cast<int64_t>(cell.Sum("epoch_refusals")),
                 static_cast<int64_t>(cell.Sum("epoch_map_refreshes")),
                 static_cast<int64_t>(cell.Sum("commits_stale_epoch")),
                 t.valid ? Fixed2(t.window_ms) : "-",
                 t.valid ? Fixed2(t.dip_pct) : "-",
                 t.valid ? Fixed2(t.recovery_ms) : "-", cell.Mean("tput"),
                 ok ? "ATOMIC+VSR" : "VIOLATED");
  }

  // Determinism sub-grid: the traced run of every cell, serially and on 2
  // workers — fingerprints must match byte for byte even across a live
  // membership change.
  std::vector<runner::RunSpec> det;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].capture_trace) det.push_back(specs[i]);
  }
  Result<std::vector<runner::RunOutput>> det_serial =
      runner::RunAll(det, {.workers = 1});
  Result<std::vector<runner::RunOutput>> det_parallel =
      runner::RunAll(det, {.workers = 2});
  if (!det_serial.ok() || !det_parallel.ok()) {
    std::fprintf(stderr, "harness: determinism sub-grid failed\n");
    return 2;
  }
  bool deterministic = true;
  for (size_t i = 0; i < det.size(); ++i) {
    if (runner::Fingerprint((*det_serial)[i]) !=
        runner::Fingerprint((*det_parallel)[i])) {
      deterministic = false;
      std::fprintf(stderr,
                   "determinism: reconfig cell %s diverged between serial "
                   "and 2-worker execution\n",
                   det[i].cell.c_str());
    }
  }
  all_ok = all_ok && deterministic;

  if (!args.trace_out.empty() && !det.empty()) {
    if (!WriteTraceArtifacts(args.trace_out, (*det_serial)[0].trace_jsonl,
                             (*det_serial)[0].result)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.trace_out.c_str());
    }
  }

  const int rc = FinishSweep("E19_reconfig", base_config, 9100,
                             args.workers, table, agg);
  std::printf(
      "\nExpected shape: every cell completes its membership change with\n"
      "zero stale-epoch commits; remove/replace shows prepared residue\n"
      "adoption and epoch refusals as in-flight coordinators chase the\n"
      "moving shards, while add only rebalances. The throughput dip is\n"
      "bounded by the drain window and recovery is immediate after the\n"
      "final map installs. Determinism sub-grid: serial == 2 workers, "
      "%s.\n",
      deterministic ? "byte-identical" : "DIVERGED");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
