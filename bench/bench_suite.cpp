// Runs every sweep experiment (E5, E6, E7, E9, E13, E15, E16, E18, E19,
// E20) through the parallel
// runner in a single process — the one-command regeneration path for the
// EXPERIMENTS.md sweep tables and their BENCH_<name>.json artifacts.
//
//   bench_suite [--quick] [--workers=N]
//
// `--workers=0` uses all hardware threads. Exit code is nonzero if any
// sweep reported a violation or the harness failed.

#include <cstdio>

#include "bench/sweeps.h"
#include "runner/runner.h"

int main(int argc, char** argv) {
  using namespace hermes::bench;  // NOLINT
  const SweepArgs args = ParseSweepArgs(argc, argv);
  std::printf("bench_suite: %d worker(s)%s\n\n",
              hermes::runner::EffectiveWorkers(args.workers),
              args.quick ? ", quick grid" : "");

  struct Entry {
    const char* name;
    int (*run)(const SweepArgs&);
  };
  const Entry sweeps[] = {
      {"E5 failure_sweep", RunFailureSweep},
      {"E6 scaling", RunScalingSweep},
      {"E7 clock_drift", RunClockDriftSweep},
      {"E9 correctness_sweep", RunCorrectnessSweep},
      {"E13 network_faults", RunNetworkFaultsSweep},
      {"E15 chaos", RunChaosSweep},
      {"E16 paxos", RunPaxosSweep},
      {"E18 ablation_matrix", RunAblationMatrixSweep},
      {"E19 reconfig", RunReconfigSweep},
      {"E20 trace_overhead", RunTraceOverheadSweep},
  };
  int rc = 0;
  for (const Entry& e : sweeps) {
    std::printf("==== %s ====\n", e.name);
    const int one = e.run(args);
    if (one != 0) {
      std::fprintf(stderr, "bench_suite: %s failed (exit %d)\n", e.name,
                   one);
      rc = 1;
    }
    std::printf("\n");
  }
  if (rc == 0) std::printf("bench_suite: all sweeps passed\n");
  return rc;
}
