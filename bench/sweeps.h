// The sweep experiments of EXPERIMENTS.md (E5, E6, E7, E9, E13), ported
// onto the parallel runner harness: every (config, seed) point of a grid
// becomes one runner::RunSpec, the whole grid fans out across worker
// threads, and per-cell aggregates feed both the printed table and the
// consolidated BENCH_<name>.json artifact (schema in docs/FORMATS.md).
//
// Each sweep is a function so that the per-experiment binaries and the
// all-in-one bench_suite binary share one implementation.

#ifndef HERMES_BENCH_SWEEPS_H_
#define HERMES_BENCH_SWEEPS_H_

#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "runner/aggregate.h"

namespace hermes::bench {

// SweepArgs / ParseSweepArgs / SweepMain live in bench/bench_util.h
// (included above) so non-sweep binaries share the same flag handling.

// Folds one traced run into the cell's critical-path phase stats
// (`phase_*_us`: mean virtual µs per committed transaction, including
// `phase_consensus_us` for Paxos Commit acceptor rounds) and prepared
// blocking-window stats (`blocked_windows` / `blocked_mean_us` /
// `blocked_p95_us` / `blocked_max_us`). No-op on an empty or unparseable
// trace. Stat names are documented in docs/FORMATS.md.
void AddPhaseStats(runner::CellAggregate& cell,
                   const std::string& trace_jsonl);

// Writes `trace_jsonl` to `path` and the run's Prometheus metrics text to
// `<path>.prom`; prints the paths. Returns false on I/O failure.
bool WriteTraceArtifacts(const std::string& path,
                         const std::string& trace_jsonl,
                         const workload::RunResult& result);

// `v` with two decimals, matching the table cell formatting.
std::string Fixed2(double v);

// Prints the table, writes the consolidated artifact (table rows plus the
// per-cell aggregates collected by `agg`) and returns 0, or 1 when the
// artifact could not be written.
int FinishSweep(const std::string& name, const std::string& config,
                uint64_t seed, int workers, const TablePrinter& table,
                const runner::Aggregator& agg);

// Each sweep prints its table, writes BENCH_<name>.json and returns a
// process exit code: 0 on success, 1 when a correctness guarantee was
// violated, 2 when the harness itself failed.
int RunFailureSweep(const SweepArgs& args);        // E5
int RunScalingSweep(const SweepArgs& args);        // E6
int RunClockDriftSweep(const SweepArgs& args);     // E7
int RunCorrectnessSweep(const SweepArgs& args);    // E9
int RunNetworkFaultsSweep(const SweepArgs& args);  // E13
int RunChaosSweep(const SweepArgs& args);          // E15
int RunPaxosSweep(const SweepArgs& args);          // E16
int RunAblationMatrixSweep(const SweepArgs& args);  // E18
int RunReconfigSweep(const SweepArgs& args);        // E19
int RunTraceOverheadSweep(const SweepArgs& args);   // E20

}  // namespace hermes::bench

#endif  // HERMES_BENCH_SWEEPS_H_
