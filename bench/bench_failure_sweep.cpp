// E5 — behavior under unilateral aborts (paper sections 1, 4).
//
// Sweeps the probability that an LDBS unilaterally aborts a prepared
// subtransaction and reports commit rates, resubmission activity,
// certification refusals by kind, and the serializability verdict of the
// recorded history. The paper's guarantee: view-serializable overall
// histories "in the presence of most typical failures" — the verdict
// column must never show a violation for the full certifier.

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::WorkloadConfig;

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  std::printf(
      "E5 — commit/abort behavior vs unilateral-abort probability\n"
      "(4 sites, 8 global clients, 1 local client/site, full certifier)\n\n");
  bench::TablePrinter table({"p_fail", "committed", "aborted", "resub",
                             "refuse ivl", "refuse ext", "refuse dead",
                             "commit retries", "tput/s", "p50 ms", "p95 ms",
                             "p99 ms", "history"});
  std::string base_config;
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5}) {
    // Average over several seeds: a single straggler transaction (lock
    // timeout near the end of a run) can otherwise dominate the measured
    // completion time.
    constexpr int kSeeds = 3;
    int64_t committed = 0, aborted = 0, resub = 0, ivl = 0, ext = 0,
            dead = 0, retries = 0;
    double tput = 0;
    bool ok = true;
    trace::Histogram latencies;
    for (int s = 0; s < kSeeds; ++s) {
      WorkloadConfig config;
      config.seed = 42 + static_cast<uint64_t>(p * 100) +
                    static_cast<uint64_t>(s) * 1000;
      config.num_sites = 4;
      config.rows_per_table = 64;
      config.global_clients = 8;
      config.local_clients_per_site = 1;
      config.target_global_txns = 120;
      config.p_prepared_abort = p;
      config.alive_check_interval = 10 * sim::kMillisecond;
      if (base_config.empty()) base_config = config.ToString();
      const RunResult r = Driver::Run(config);
      latencies.Merge(r.metrics.latency_hist);
      committed += r.metrics.global_committed;
      aborted += r.metrics.global_aborted;
      resub += r.metrics.resubmissions;
      ivl += r.metrics.refuse_interval;
      ext += r.metrics.refuse_extension;
      dead += r.metrics.refuse_dead;
      retries += r.metrics.commit_cert_retries;
      tput += r.CommitsPerSecond() / kSeeds;
      ok = ok && r.replay_consistent && r.commit_graph_acyclic &&
           r.verdict != history::Verdict::kNotSerializable;
    }
    table.AddRow(p, committed, aborted, resub, ivl, ext, dead, retries,
                 tput, latencies.PercentileMs(50), latencies.PercentileMs(95),
                 latencies.PercentileMs(99), ok ? "VSR" : "VIOLATED");
  }
  table.Print();
  bench::WriteBenchArtifact("failure_sweep", base_config, 42, table);
  std::printf(
      "\nExpected shape: resubmissions and interval-refusals grow with the\n"
      "failure rate; throughput degrades gracefully; the history column\n"
      "never reports a violation (CG acyclic / view serializable).\n");
  return 0;
}
