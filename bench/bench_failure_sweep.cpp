// E5 — behavior under unilateral aborts. The sweep implementation lives
// in bench/sweep_failure.cpp and is shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunFailureSweep, argc, argv);
}
