// E5 — commit/abort behavior under unilateral aborts (paper sections 1, 4).
//
// Sweeps the probability that an LDBS unilaterally aborts a prepared
// subtransaction; several seeds per probability are fanned out through the
// runner and aggregated per cell. The paper's guarantee: the history
// column must never show a violation for the full certifier.

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"

namespace hermes::bench {

int RunFailureSweep(const SweepArgs& args) {
  const int num_seeds = args.quick ? 1 : 3;
  const int txns = args.quick ? 60 : 120;
  std::printf(
      "E5 — commit/abort behavior vs unilateral-abort probability\n"
      "(4 sites, 8 global clients, 1 local client/site, full certifier%s)\n\n",
      args.quick ? ", quick" : "");

  const double probs[] = {0.0, 0.05, 0.1, 0.2, 0.35, 0.5};
  std::vector<runner::RunSpec> specs;
  std::string base_config;
  for (double p : probs) {
    for (int s = 0; s < num_seeds; ++s) {
      runner::RunSpec spec;
      spec.cell = StrCat("p_fail=", Fixed2(p));
      spec.config.seed = 42 + static_cast<uint64_t>(p * 100) +
                         static_cast<uint64_t>(s) * 1000;
      spec.config.num_sites = 4;
      spec.config.rows_per_table = 64;
      spec.config.global_clients = 8;
      spec.config.local_clients_per_site = 1;
      spec.config.target_global_txns = txns;
      spec.config.p_prepared_abort = p;
      spec.config.alive_check_interval = 10 * sim::kMillisecond;
      // Every run is traced: the cells carry critical-path phase stats
      // and the merged virtual-time series.
      spec.capture_trace = true;
      if (base_config.empty()) base_config = spec.config.ToString();
      specs.push_back(std::move(spec));
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
    AddPhaseStats(agg.Cell(specs[i].cell), (*outputs)[i].trace_jsonl);
  }

  TablePrinter table({"p_fail", "committed", "aborted", "resub",
                      "refuse ivl", "refuse ext", "refuse dead",
                      "commit retries", "dml us", "prep us", "cert us",
                      "dec us", "tput/s", "p50 ms", "p95 ms",
                      "p99 ms", "history"});
  bool all_ok = true;
  for (size_t c = 0; c < agg.cells().size(); ++c) {
    const runner::CellAggregate& cell = agg.cells()[c];
    bool ok = true;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].cell != cell.cell) continue;
      const workload::RunResult& r = (*outputs)[i].result;
      ok = ok && r.replay_consistent && r.commit_graph_acyclic &&
           r.verdict != history::Verdict::kNotSerializable;
    }
    all_ok = all_ok && ok;
    table.AddRow(probs[c], static_cast<int64_t>(cell.Sum("committed")),
                 static_cast<int64_t>(cell.Sum("aborted")),
                 static_cast<int64_t>(cell.Sum("resubmissions")),
                 static_cast<int64_t>(cell.Sum("refuse_interval")),
                 static_cast<int64_t>(cell.Sum("refuse_extension")),
                 static_cast<int64_t>(cell.Sum("refuse_dead")),
                 static_cast<int64_t>(cell.Sum("commit_cert_retries")),
                 cell.Mean("phase_dml_us"), cell.Mean("phase_prepare_us"),
                 cell.Mean("phase_certify_us"),
                 cell.Mean("phase_decision_us"),
                 cell.Mean("tput"), cell.latency.PercentileMs(50),
                 cell.latency.PercentileMs(95),
                 cell.latency.PercentileMs(99), ok ? "VSR" : "VIOLATED");
  }

  if (!args.trace_out.empty()) {
    // Export the most failure-heavy run (last grid point) for tmstat.
    const size_t last = specs.size() - 1;
    if (!WriteTraceArtifacts(args.trace_out, (*outputs)[last].trace_jsonl,
                             (*outputs)[last].result)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.trace_out.c_str());
    }
  }

  const int rc =
      FinishSweep("failure_sweep", base_config, 42,
                  args.workers, table, agg);
  std::printf(
      "\nExpected shape: resubmissions and interval-refusals grow with the\n"
      "failure rate; throughput degrades gracefully; the history column\n"
      "never reports a violation (CG acyclic / view serializable).\n");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
