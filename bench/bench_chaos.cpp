// E15 — chaos sweep: randomized fault plans, crash recovery, atomicity and
// determinism oracles. The implementation lives in bench/sweep_chaos.cpp
// and is shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunChaosSweep, argc, argv);
}
