// E11 — deadlock resolution (paper section 6).
//
// "In 2CM, the timeout based deadlock resolution is assumed to be used. On
// the other hand, CGM employs an elaborate combination of three graphs..."
// This ablation compares timeout-only resolution against wait-for-graph
// detection inside the LTMs on a hotspot workload, sweeping the lock wait
// timeout. Detection resolves deadlocks promptly regardless of the timeout;
// pure timeouts trade wasted waiting time against false-positive aborts.

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::WorkloadConfig;

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  std::printf(
      "E11 — timeout-based vs wait-for-graph deadlock handling\n"
      "(2 sites, 4 hot rows, write-heavy, 8 clients)\n\n");
  bench::TablePrinter table({"resolution", "timeout ms", "committed",
                             "aborted", "timeout aborts", "wfg victims",
                             "tput/s", "mean lat ms"});
  for (sim::Duration timeout :
       {50 * sim::kMillisecond, 200 * sim::kMillisecond,
        500 * sim::kMillisecond}) {
    for (int mode = 0; mode < 2; ++mode) {
      WorkloadConfig config;
      config.seed = 8800 + static_cast<uint64_t>(timeout / 1000);
      config.num_sites = 2;
      config.rows_per_table = 4;  // hotspot
      config.global_clients = 8;
      config.target_global_txns = 100;
      config.cmds_per_global_txn = 3;
      config.global_write_fraction = 1.0;
      config.lock_wait_timeout = timeout;
      config.deadlock_detection = mode == 1;
      config.deadlock_check_interval = 10 * sim::kMillisecond;
      config.record_history = false;
      const RunResult r = Driver::Run(config);
      table.AddRow(mode == 0 ? "timeout" : "wfg",
                   static_cast<double>(timeout) / 1000.0,
                   r.metrics.global_committed, r.metrics.global_aborted,
                   r.ltm.lock_timeout_aborts, r.ltm.deadlock_victim_aborts,
                   r.CommitsPerSecond(), r.metrics.MeanLatencyMs());
    }
  }
  table.Print();
  bench::WriteBenchArtifact("deadlock",
                            "2 sites, 4 hot rows, write-heavy, 8 clients",
                            8800, table);
  std::printf(
      "\nExpected shape: with short timeouts, timeout-only resolution\n"
      "aborts many non-deadlocked waiters; with long timeouts it wastes\n"
      "latency whenever a real deadlock occurs. Wait-for-graph detection\n"
      "is largely insensitive to the timeout value.\n");
  return 0;
}
