// E15 — chaos sweep: randomized declarative fault plans against the full
// crash-recovery stack.
//
// Sweeps crash intensity (crashes per plan) over a grid of workload seeds
// and generated plan variants: every run injects a seeded FaultPlan — site
// crashes (timed and triggered on the prepared state), partitions and loss
// bursts — on top of a mildly lossy network. Every run is then checked
// post hoc by the global-atomicity oracle and the view-serializability
// checker; a small sub-grid is re-executed serially and on 2 workers to
// prove the fault machinery keeps runs byte-for-byte deterministic
// (runner::Fingerprint, trace included).

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "fault/fault_plan.h"
#include "runner/runner.h"

namespace hermes::bench {

namespace {

// One spec of the chaos grid: workload seed x plan variant x intensity.
runner::RunSpec ChaosSpec(uint64_t seed, uint64_t plan_seed, int crashes,
                          int txns) {
  runner::RunSpec spec;
  spec.cell = StrCat("crashes=", crashes);
  spec.config.seed = seed;
  spec.config.num_sites = 3;
  spec.config.rows_per_table = 64;
  spec.config.global_clients = 4;
  spec.config.target_global_txns = txns;
  spec.config.net_loss_prob = 0.02;
  // Transactions orphaned while their coordinating site is down abort
  // unilaterally instead of pinning locks forever; prepared ones keep
  // probing (blocking is the protocol's obligation, not the workload's).
  spec.config.orphan_abort_timeout = 800 * sim::kMillisecond;
  // Let post-crash redeliveries, resubmissions and inquiries settle
  // before the oracles judge the history.
  spec.config.drain_grace = 2 * sim::kSecond;

  fault::ChaosOptions opts;
  opts.num_sites = spec.config.num_sites;
  opts.horizon = 5 * sim::kSecond;
  opts.crashes = crashes;
  opts.partitions = 1;
  opts.loss_bursts = 1;
  spec.config.fault_plan = fault::GenerateChaosPlan(plan_seed, opts);
  return spec;
}

}  // namespace

int RunChaosSweep(const SweepArgs& args) {
  const int num_seeds = args.quick ? 2 : 8;
  const int num_plans = args.quick ? 4 : 7;
  const int txns = args.quick ? 60 : 120;
  const std::vector<int> intensities =
      args.quick ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4};
  std::printf(
      "E15 — chaos sweep: randomized fault plans vs crash intensity\n"
      "(3 sites, 4 global clients, loss=2%%, %d seeds x %d plans per cell, "
      "atomicity + serializability checked per run%s)\n\n",
      num_seeds, num_plans, args.quick ? ", quick" : "");

  std::vector<runner::RunSpec> specs;
  std::string base_config;
  for (int crashes : intensities) {
    for (int s = 0; s < num_seeds; ++s) {
      for (int p = 0; p < num_plans; ++p) {
        const uint64_t seed = 7000 + static_cast<uint64_t>(s);
        const uint64_t plan_seed = 100 * static_cast<uint64_t>(crashes) +
                                   10 * static_cast<uint64_t>(p) +
                                   static_cast<uint64_t>(s);
        specs.push_back(ChaosSpec(seed, plan_seed, crashes, txns));
        // Trace the first plan variant of every (intensity, seed) point:
        // enough coverage for per-cell phase/blocking stats and the merged
        // time series without holding all few-hundred traces in memory.
        specs.back().capture_trace = p == 0;
        if (base_config.empty()) base_config = specs.back().config.ToString();
      }
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
    AddPhaseStats(agg.Cell(specs[i].cell), (*outputs)[i].trace_jsonl);
  }

  TablePrinter table({"crashes/plan", "committed", "aborted", "crash abrt",
                      "site crashes", "redelivered", "inquiries",
                      "presumed abrt", "resub", "dec us", "blk win",
                      "blk max ms", "tput/s", "p95 ms", "history"});
  bool all_ok = true;
  for (size_t c = 0; c < agg.cells().size(); ++c) {
    const runner::CellAggregate& cell = agg.cells()[c];
    const int64_t committed = static_cast<int64_t>(cell.Sum("committed"));
    const int64_t aborted = static_cast<int64_t>(cell.Sum("aborted"));
    bool ok = true;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].cell != cell.cell) continue;
      const workload::RunResult& r = (*outputs)[i].result;
      ok = ok && r.history_checked && r.atomicity_ok &&
           r.commit_graph_acyclic && r.replay_consistent &&
           r.order_invariant_ok &&
           r.verdict != history::Verdict::kNotSerializable;
    }
    // Termination: every submitted transaction reached a decision even
    // with its coordinating site crashing mid-protocol.
    ok = ok && committed + aborted ==
                   static_cast<int64_t>(num_seeds) * num_plans * txns;
    all_ok = all_ok && ok;
    table.AddRow(intensities[c], committed, aborted,
                 static_cast<int64_t>(cell.Sum("aborted_crash")),
                 static_cast<int64_t>(cell.Sum("coordinator_crashes")),
                 static_cast<int64_t>(cell.Sum("redelivered_decisions")),
                 static_cast<int64_t>(cell.Sum("inquiries")),
                 static_cast<int64_t>(cell.Sum("inquiries_presumed_abort")),
                 static_cast<int64_t>(cell.Sum("resubmissions")),
                 cell.Mean("phase_decision_us"),
                 static_cast<int64_t>(cell.Sum("blocked_windows")),
                 cell.Mean("blocked_max_us") / 1000.0,
                 cell.Mean("tput"), cell.latency.PercentileMs(95),
                 ok ? "ATOMIC+VSR" : "VIOLATED");
  }

  // Determinism sub-grid: the first run of every cell, traced, serially
  // and on 2 workers — fingerprints must match byte for byte.
  std::vector<runner::RunSpec> det;
  for (size_t c = 0; c < intensities.size(); ++c) {
    runner::RunSpec spec = specs[c * static_cast<size_t>(num_seeds) *
                                 static_cast<size_t>(num_plans)];
    spec.capture_trace = true;
    det.push_back(std::move(spec));
  }
  Result<std::vector<runner::RunOutput>> det_serial =
      runner::RunAll(det, {.workers = 1});
  Result<std::vector<runner::RunOutput>> det_parallel =
      runner::RunAll(det, {.workers = 2});
  if (!det_serial.ok() || !det_parallel.ok()) {
    std::fprintf(stderr, "harness: determinism sub-grid failed\n");
    return 2;
  }
  bool deterministic = true;
  for (size_t i = 0; i < det.size(); ++i) {
    if (runner::Fingerprint((*det_serial)[i]) !=
        runner::Fingerprint((*det_parallel)[i])) {
      deterministic = false;
      std::fprintf(stderr,
                   "determinism: chaos run %zu diverged between serial and "
                   "2-worker execution\n",
                   i);
    }
  }
  all_ok = all_ok && deterministic;

  if (!args.trace_out.empty() && !det.empty()) {
    // Export the highest-intensity traced run for tmstat / Perfetto.
    const size_t last = det.size() - 1;
    if (!WriteTraceArtifacts(args.trace_out, (*det_serial)[last].trace_jsonl,
                             (*det_serial)[last].result)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.trace_out.c_str());
    }
  }

  const int rc =
      FinishSweep("E15_chaos", base_config, 7000, args.workers, table, agg);
  std::printf(
      "\nExpected shape: crash aborts, redelivered decisions and inquiry\n"
      "traffic grow with the crash intensity while the history column\n"
      "never reports a violation — the force-written decision log plus the\n"
      "presumed-abort inquiry path keep every decided transaction atomic.\n"
      "Determinism sub-grid: serial == 2 workers, %s.\n",
      deterministic ? "byte-identical" : "DIVERGED");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
