// E12 — site crashes as collective unilateral aborts, with Agent-log
// recovery.
//
// The paper folds site crashes into its failure model ("without making
// difference between single and collective abort (i.e. site crash)"); the
// force-written Agent log makes the prepared state durable. This experiment
// crashes one site repeatedly during a transfer workload and reports
// commit/abort outcomes, recovery activity (in-doubt resubmissions,
// inquiries answered), the money-conservation invariant and the oracle
// verdict.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"

namespace hermes {
namespace {

struct CrashRunResult {
  int committed = 0;
  int aborted = 0;
  int64_t resubmissions = 0;
  int64_t collective_aborts = 0;
  bool conserved = false;
  bool in_doubt_clear = false;
  bool serializable = false;
};

CrashRunResult Run(int crashes, sim::Duration crash_period) {
  sim::EventLoop loop;
  loop.set_max_events(50'000'000);
  core::MdbsConfig config;
  config.num_sites = 3;
  config.agent.alive_check_interval = 5 * sim::kMillisecond;
  core::Mdbs mdbs(config, &loop);
  const db::TableId t = *mdbs.CreateTableEverywhere("t");
  for (SiteId s = 0; s < 3; ++s) {
    for (int64_t k = 0; k < 16; ++k) {
      mdbs.LoadRow(s, t, k, db::Row{{"v", db::Value(int64_t{0})}});
    }
  }

  CrashRunResult out;
  constexpr int kTxns = 120;
  int submitted = 0;
  std::function<void()> next = [&]() {
    if (submitted >= kTxns) return;
    const int i = submitted++;
    core::GlobalTxnSpec spec;
    const SiteId a = static_cast<SiteId>(i % 3);
    const SiteId b = static_cast<SiteId>((i + 1) % 3);
    spec.steps.push_back({a, db::MakeAddKey(t, i % 16, "v", int64_t{-1})});
    spec.steps.push_back({b, db::MakeAddKey(t, i % 16, "v", int64_t{1})});
    mdbs.Submit(spec, [&](const core::GlobalTxnResult& r) {
      r.status.ok() ? ++out.committed : ++out.aborted;
      next();
    });
  };
  for (int c = 0; c < 6; ++c) loop.ScheduleAfter(0, [&]() { next(); });
  for (int c = 0; c < crashes; ++c) {
    loop.ScheduleAfter((c + 1) * crash_period, [&mdbs, c]() {
      mdbs.CrashSite(static_cast<SiteId>(c % 3));
    });
  }
  loop.Run();

  int64_t total = 0;
  for (SiteId s = 0; s < 3; ++s) {
    for (const auto& [key, entry] :
         mdbs.storage(s)->GetTable(t)->entries()) {
      if (entry.live()) total += std::get<int64_t>(*entry.row->Get("v"));
    }
  }
  out.conserved = total == 0;
  out.resubmissions = mdbs.metrics().resubmissions;
  for (SiteId s = 0; s < 3; ++s) {
    out.collective_aborts += mdbs.ltm(s)->stats().injected_aborts;
    if (!mdbs.agent(s)->log().InDoubt().empty()) return out;
  }
  out.in_doubt_clear = true;
  const auto committed =
      history::CommittedProjection(mdbs.recorder().ops());
  out.serializable =
      history::VerifyReplayMatchesRecorded(committed).empty() &&
      history::CommitGraphAcyclic(committed);
  return out;
}

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  std::printf(
      "E12 — crash-recovery: 120 transfers over 3 sites, crashing one site\n"
      "every period (round-robin); money conservation must hold and the\n"
      "history must stay consistent.\n\n");
  bench::TablePrinter table({"crashes", "period ms", "committed", "aborted",
                             "collective aborts", "resub", "conserved",
                             "in-doubt clear", "history"});
  struct Point {
    int crashes;
    sim::Duration period;
  };
  for (const Point& p :
       {Point{0, 50 * sim::kMillisecond}, Point{1, 30 * sim::kMillisecond},
        Point{3, 20 * sim::kMillisecond}, Point{6, 10 * sim::kMillisecond}}) {
    const CrashRunResult r = Run(p.crashes, p.period);
    table.AddRow(p.crashes, static_cast<double>(p.period) / 1000.0,
                 r.committed, r.aborted, r.collective_aborts,
                 r.resubmissions, r.conserved ? "yes" : "NO",
                 r.in_doubt_clear ? "yes" : "NO",
                 r.serializable ? "consistent" : "VIOLATED");
  }
  table.Print();
  bench::WriteBenchArtifact("recovery",
                            "120 transfers, 3 sites, round-robin crashes", 7,
                            table);
  std::printf(
      "\nExpected shape: commits dominate even under repeated crashes;\n"
      "conservation and history consistency hold in every row.\n");
  return 0;
}
