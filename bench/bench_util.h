// Shared helpers for the experiment harnesses: aligned table printing and
// run shortcuts. Each bench binary reproduces one experiment of
// EXPERIMENTS.md and prints its rows to stdout.

#ifndef HERMES_BENCH_BENCH_UTIL_H_
#define HERMES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/str.h"
#include "runner/aggregate.h"
#include "trace/trace.h"
#include "workload/driver.h"

namespace hermes::bench {

// Command-line options shared by every experiment binary.
struct SweepArgs {
  // Worker threads for the run fan-out; <= 0 means hardware concurrency.
  int workers = 1;
  // Reduced grid (fewer seeds / shorter runs) for CI smoke jobs.
  bool quick = false;
  // When non-empty, sweeps that capture traces write one representative
  // run's trace JSONL here (plus a Prometheus metrics dump at
  // `<trace_out>.prom`), ready for `tmstat <trace_out>`.
  std::string trace_out;
};

// Parses `--workers=N` (or `-jN`), `--quick` and `--trace-out=PATH`; an
// unknown argument prints a usage message and terminates the process with
// exit code 2.
inline SweepArgs ParseSweepArgs(int argc, char** argv) {
  SweepArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      args.workers = std::atoi(a + 10);
    } else if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
      args.workers = std::atoi(a + 2);
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      args.trace_out = a + 12;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--quick] [--workers=N]"
                   " [--trace-out=PATH]\n",
                   a, argv[0]);
      std::exit(2);
    }
  }
  return args;
}

// The entire main() of a single-sweep binary: parse the shared flags, run
// the sweep, return its exit code.
inline int SweepMain(int (*run)(const SweepArgs&), int argc, char** argv) {
  return run(ParseSweepArgs(argc, argv));
}

// Fixed-width text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Args>
  void AddRow(const Args&... args) {
    std::vector<std::string> row;
    (row.push_back(ToCell(args)), ...);
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t i = 0; i < widths.size(); ++i) {
      if (i > 0) sep += "-+-";
      sep += std::string(widths[i], '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }
  template <typename T>
  static std::string ToCell(const T& v) {
    return StrCat(v);
  }

  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i];
      if (i < widths.size() && row[i].size() < widths[i]) {
        line += std::string(widths[i] - row[i].size(), ' ');
      }
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Machine-readable companion of a printed table: writes
// `BENCH_<name>.json` next to the binary with the experiment name, the
// free-form config description (typically WorkloadConfig::ToString of the
// base configuration), the seed and every table row keyed by its header.
// Delegates to the schema-versioned artifact writer (docs/FORMATS.md), so
// single-run benchmarks emit the same consolidated format as the sweeps
// (with an empty cells array). Returns false on I/O failure (the textual
// table is the source of truth; callers only warn).
inline bool WriteBenchArtifact(const std::string& name,
                               const std::string& config, uint64_t seed,
                               const TablePrinter& table) {
  runner::BenchArtifact artifact;
  artifact.bench = name;
  artifact.config = config;
  artifact.seed = seed;
  artifact.headers = table.headers();
  artifact.rows = table.rows();
  return runner::WriteBenchArtifactFile(artifact);
}

inline const char* VerdictCell(const workload::RunResult& r) {
  if (!r.history_checked) return "-";
  if (!r.replay_consistent) return "VIOLATED";
  switch (r.verdict) {
    case history::Verdict::kSerializable:
      return "VSR";
    case history::Verdict::kNotSerializable:
      return "NOT-VSR";
    case history::Verdict::kUnknown:
      return r.commit_graph_acyclic ? "CG-acyclic" : "CG-CYCLIC";
  }
  return "?";
}

}  // namespace hermes::bench

#endif  // HERMES_BENCH_BENCH_UTIL_H_
