// E16 — non-blocking commit: 2PC vs Paxos Commit under coordinator-crash
// chaos plans. The implementation lives in bench/sweep_paxos.cpp and is
// shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunPaxosSweep, argc, argv);
}
