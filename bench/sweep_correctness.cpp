// E9 — correctness sweep: the paper's guarantee, measured.
//
// Many short randomized runs per (policy, DLU, failure rate) cell; each
// recorded history is judged by the oracle. The full certifier must never
// violate; ablated policies show which distortion each missing mechanism
// admits. Every run of the grid is independent, so the whole sweep fans
// out through the runner.

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"

namespace hermes::bench {

namespace {

struct PolicyRow {
  const char* policy;
  core::CertPolicy value;
  bool dlu;
};

}  // namespace

int RunCorrectnessSweep(const SweepArgs& args) {
  const int runs_per_cell = args.quick ? 3 : 12;
  std::printf(
      "E9 — serializability violations over %d randomized runs per cell\n"
      "(3 sites, 6 rows/table, 4 global + 6 local clients, hot keys%s)\n\n",
      runs_per_cell, args.quick ? "; quick" : "");

  const PolicyRow policy_rows[] = {
      {"none", core::CertPolicy::kNone, false},
      {"none", core::CertPolicy::kNone, true},
      {"prepare-only", core::CertPolicy::kPrepareOnly, true},
      {"prepare-extended", core::CertPolicy::kPrepareExtended, true},
      {"full", core::CertPolicy::kFull, true},
  };
  const double probs[] = {0.2, 0.5};

  std::vector<runner::RunSpec> specs;
  for (const PolicyRow& row : policy_rows) {
    for (double p : probs) {
      for (int run = 0; run < runs_per_cell; ++run) {
        runner::RunSpec spec;
        spec.cell = StrCat("policy=", row.policy, " dlu=",
                           row.dlu ? "on" : "off", " p_fail=", Fixed2(p));
        spec.config.seed = 9000 + static_cast<uint64_t>(run) +
                           static_cast<uint64_t>(p * 1000);
        spec.config.num_sites = 3;
        spec.config.rows_per_table = 6;
        spec.config.global_clients = 4;
        spec.config.local_clients_per_site = 2;
        spec.config.target_global_txns = 25;
        spec.config.cmds_per_global_txn = 3;
        spec.config.global_write_fraction = 0.7;
        spec.config.p_prepared_abort = p;
        spec.config.alive_check_interval = 4 * sim::kMillisecond;
        spec.config.policy = row.value;
        spec.config.dlu_binding = row.dlu;
        specs.push_back(std::move(spec));
      }
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
  }

  TablePrinter table({"policy", "DLU", "p_fail", "runs", "violations",
                      "CG cycles", "refusals", "resub"});
  int full_violations = 0;
  size_t spec_index = 0;
  for (const PolicyRow& row : policy_rows) {
    for (double p : probs) {
      int violations = 0, cg_cycles = 0;
      int64_t refusals = 0, resub = 0;
      for (int run = 0; run < runs_per_cell; ++run, ++spec_index) {
        const workload::RunResult& r = (*outputs)[spec_index].result;
        if (!r.commit_graph_acyclic) ++cg_cycles;
        if (!r.replay_consistent ||
            r.verdict == history::Verdict::kNotSerializable ||
            !r.commit_graph_acyclic) {
          ++violations;
        }
        refusals += r.metrics.refuse_interval + r.metrics.refuse_extension +
                    r.metrics.refuse_dead;
        resub += r.metrics.resubmissions;
      }
      if (row.value == core::CertPolicy::kFull) full_violations += violations;
      table.AddRow(row.policy, row.dlu ? "on" : "off", p, runs_per_cell,
                   violations, cg_cycles, refusals, resub);
    }
  }

  const int rc = FinishSweep(
      "correctness_sweep",
      StrCat("3 sites, 6 rows/table, 4 global + 6 local clients, ",
             runs_per_cell, " runs/cell"),
      9000, args.workers, table, agg);
  std::printf(
      "\nExpected shape: the full certifier row shows 0 violations at every\n"
      "failure rate; the naive agent accumulates violations; partial\n"
      "policies sit in between (commit certification missing -> CG\n"
      "cycles possible).\n");
  if (full_violations > 0) return 1;
  return rc;
}

}  // namespace hermes::bench
