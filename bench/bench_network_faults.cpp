// E13 — robustness on an unreliable network.
//
// The paper (section 2) assumes messages "are not corrupted, lost or out of
// order". This experiment removes that assumption: it sweeps the message
// loss rate (with fixed duplication and reordering probabilities) and shows
// that the coordinator's timeout/retransmission machinery plus the
// duplicate-safe agent handlers keep every run terminating with a
// view-serializable committed projection — at the cost of retransmissions
// and latency, which the table quantifies.
//
// `--quick` runs a reduced configuration (CI smoke: one seed, fewer
// transactions) that still exercises every loss rate.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::WorkloadConfig;

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) {
  using namespace hermes;  // NOLINT
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int seeds = quick ? 1 : 3;
  const int txns = quick ? 80 : 200;
  std::printf(
      "E13 — 2PC termination and serializability vs message loss\n"
      "(4 sites, 8 global clients, dup=5%%, reorder=5%%, full certifier%s)\n\n",
      quick ? ", quick" : "");
  bench::TablePrinter table({"loss", "committed", "aborted", "abrt timeout",
                             "retransmit", "dropped", "dup deliv",
                             "dup absorbed", "tput/s", "p50 ms", "p95 ms",
                             "history"});
  std::string base_config;
  bool all_ok = true;
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    int64_t committed = 0, aborted = 0, timeouts = 0, retx = 0, dropped = 0,
            dups = 0, absorbed = 0;
    double tput = 0;
    bool ok = true;
    trace::Histogram latencies;
    for (int s = 0; s < seeds; ++s) {
      WorkloadConfig config;
      config.seed = 42 + static_cast<uint64_t>(loss * 1000) +
                    static_cast<uint64_t>(s) * 1000;
      config.num_sites = 4;
      config.rows_per_table = 64;
      config.global_clients = 8;
      config.target_global_txns = txns;
      config.net_loss_prob = loss;
      config.net_dup_prob = 0.05;
      config.net_reorder_prob = 0.05;
      if (base_config.empty()) base_config = config.ToString();
      const RunResult r = Driver::Run(config);
      latencies.Merge(r.metrics.latency_hist);
      committed += r.metrics.global_committed;
      aborted += r.metrics.global_aborted;
      timeouts += r.metrics.global_aborted_timeout;
      retx += r.metrics.retransmits;
      dropped += r.msgs_dropped;
      dups += r.msgs_duplicated;
      absorbed += r.metrics.dup_msgs_absorbed;
      tput += r.CommitsPerSecond() / seeds;
      // Termination: every submitted transaction reached a decision.
      ok = ok && committed + aborted > 0 && r.replay_consistent &&
           r.commit_graph_acyclic &&
           r.verdict != history::Verdict::kNotSerializable;
    }
    ok = ok && committed + aborted == static_cast<int64_t>(seeds) * txns;
    all_ok = all_ok && ok;
    table.AddRow(loss, committed, aborted, timeouts, retx, dropped, dups,
                 absorbed, tput, latencies.PercentileMs(50),
                 latencies.PercentileMs(95), ok ? "VSR" : "VIOLATED");
  }
  table.Print();
  bench::WriteBenchArtifact("network_faults", base_config, 42, table);
  std::printf(
      "\nExpected shape: retransmissions and dropped messages grow with the\n"
      "loss rate while every run still decides all transactions; the\n"
      "history column never reports a violation. Latency degrades as\n"
      "retransmission timeouts stretch the 2PC rounds.\n");
  return all_ok ? 0 : 1;
}
