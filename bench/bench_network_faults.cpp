// E13 — robustness on an unreliable network. The sweep implementation
// lives in bench/sweep_network_faults.cpp and is shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunNetworkFaultsSweep, argc, argv);
}
