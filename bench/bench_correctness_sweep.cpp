// E9 — correctness sweep: the paper's guarantee, measured.
//
// Many short randomized runs per policy and failure rate; each recorded
// history is judged by the oracle (exact view-serializability check on
// small runs, commit-order-graph acyclicity always). The full certifier
// must never violate; ablated policies show which distortion each missing
// mechanism admits.

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::WorkloadConfig;

struct Row {
  const char* policy;
  core::CertPolicy value;
  bool dlu;
};

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  constexpr int kRunsPerCell = 12;
  std::printf(
      "E9 — serializability violations over %d randomized runs per cell\n"
      "(3 sites, 6 rows/table, 4 global + 6 local clients, hot keys)\n\n",
      kRunsPerCell);
  bench::TablePrinter table({"policy", "DLU", "p_fail", "runs", "violations",
                             "CG cycles", "refusals", "resub"});
  const Row rows[] = {
      {"none", core::CertPolicy::kNone, false},
      {"none", core::CertPolicy::kNone, true},
      {"prepare-only", core::CertPolicy::kPrepareOnly, true},
      {"prepare-extended", core::CertPolicy::kPrepareExtended, true},
      {"full", core::CertPolicy::kFull, true},
  };
  for (const Row& row : rows) {
    for (double p : {0.2, 0.5}) {
      int violations = 0, cg_cycles = 0;
      int64_t refusals = 0, resub = 0;
      for (int run = 0; run < kRunsPerCell; ++run) {
        WorkloadConfig config;
        config.seed = 9000 + static_cast<uint64_t>(run) +
                      static_cast<uint64_t>(p * 1000);
        config.num_sites = 3;
        config.rows_per_table = 6;
        config.global_clients = 4;
        config.local_clients_per_site = 2;
        config.target_global_txns = 25;
        config.cmds_per_global_txn = 3;
        config.global_write_fraction = 0.7;
        config.p_prepared_abort = p;
        config.alive_check_interval = 4 * sim::kMillisecond;
        config.policy = row.value;
        config.dlu_binding = row.dlu;
        const RunResult r = Driver::Run(config);
        if (!r.commit_graph_acyclic) ++cg_cycles;
        if (!r.replay_consistent ||
            r.verdict == history::Verdict::kNotSerializable ||
            !r.commit_graph_acyclic) {
          ++violations;
        }
        refusals += r.metrics.refuse_interval + r.metrics.refuse_extension +
                    r.metrics.refuse_dead;
        resub += r.metrics.resubmissions;
      }
      table.AddRow(row.policy, row.dlu ? "on" : "off", p, kRunsPerCell,
                   violations, cg_cycles, refusals, resub);
    }
  }
  table.Print();
  bench::WriteBenchArtifact(
      "correctness_sweep",
      StrCat("3 sites, 6 rows/table, 4 global + 6 local clients, ",
             kRunsPerCell, " runs/cell"),
      9000, table);
  std::printf(
      "\nExpected shape: the full certifier row shows 0 violations at every\n"
      "failure rate; the naive agent accumulates violations; partial\n"
      "policies sit in between (commit certification missing -> CG\n"
      "cycles possible).\n");
  return 0;
}
