// E9 — correctness sweep across certification policies. The sweep
// implementation lives in bench/sweep_correctness.cpp and is shared with
// bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunCorrectnessSweep, argc, argv);
}
