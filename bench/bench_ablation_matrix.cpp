// E18 — certification ablation matrix: {SN, CSN} x {2PC, short-commit} x
// {certification on, off}. The implementation lives in
// bench/sweep_ablation_matrix.cpp and is shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunAblationMatrixSweep,
                                  argc, argv);
}
