// E7 — clock drift and serial numbers. The sweep implementation lives in
// bench/sweep_clock_drift.cpp and is shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunClockDriftSweep, argc, argv);
}
