// E7 — clock drift and serial numbers (paper section 5.2).
//
// Serial numbers are generated from per-site real-time clocks expanded with
// the site id. The paper: "The amount of the time drift among the clocks
// has no influence on the correctness of the Certifier. The drift may cause
// unnecessary aborts, only. ... if the amount of the drift is kept within
// the time of four message exchanges over the network, the solution is as
// good as an ideally synchronized one."
//
// Site clocks are skewed by ±skew (alternating per site); the table reports
// extension refusals (the unnecessary aborts) and the oracle verdict (must
// stay serializable at every skew).

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::WorkloadConfig;

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  std::printf(
      "E7 — unnecessary aborts vs clock skew (message latency 1 ms,\n"
      "so 4 message exchanges = 4 ms; skew alternates +/- per site)\n\n");
  bench::TablePrinter table({"skew ms", "skew/latency", "committed",
                             "aborted", "refuse ext", "commit retries",
                             "tput/s", "history"});
  for (sim::Duration skew :
       {sim::Duration{0}, 1 * sim::kMillisecond, 2 * sim::kMillisecond,
        4 * sim::kMillisecond, 16 * sim::kMillisecond,
        64 * sim::kMillisecond}) {
    WorkloadConfig config;
    config.seed = 505;
    config.num_sites = 4;
    config.rows_per_table = 64;
    config.global_clients = 8;
    config.target_global_txns = 120;
    config.clock_skew = skew;
    config.p_prepared_abort = 0.05;  // some failures to exercise recovery
    config.alive_check_interval = 10 * sim::kMillisecond;
    const RunResult r = Driver::Run(config);
    table.AddRow(static_cast<double>(skew) / 1000.0,
                 static_cast<double>(skew) / 1000.0,
                 r.metrics.global_committed, r.metrics.global_aborted,
                 r.metrics.refuse_extension, r.metrics.commit_cert_retries,
                 r.CommitsPerSecond(), bench::VerdictCell(r));
  }
  table.Print();
  bench::WriteBenchArtifact("clock_drift",
                            "4 sites, 8 global clients, p_fail=0.05, "
                            "alternating +/- skew",
                            505, table);
  std::printf(
      "\nExpected shape: correctness (history column) is unaffected by any\n"
      "skew; extension refusals and commit-certification retries rise once\n"
      "the skew exceeds a few message exchanges, costing only throughput.\n");
  return 0;
}
