// E20 — trace overhead sweep: {off, jsonl, binary, binary+1/16-sampling}
// x workload size, with perturbation, format-interchangeability and
// determinism gates. The implementation lives in
// bench/sweep_trace_overhead.cpp and is shared with bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunTraceOverheadSweep,
                                  argc, argv);
}
