// E19 — online reconfiguration sweep: epoch-fenced live add/remove/replace
// of a site under load, with handoff, fencing and determinism oracles. The
// implementation lives in bench/sweep_reconfig.cpp and is shared with
// bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunReconfigSweep, argc,
                                  argv);
}
