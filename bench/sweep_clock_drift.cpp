// E7 — clock drift and serial numbers (paper section 5.2).
//
// Site clocks are skewed by ±skew (alternating per site); the table
// reports extension refusals (the paper's "unnecessary aborts") and the
// oracle verdict, which must stay serializable at every skew.

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"

namespace hermes::bench {

int RunClockDriftSweep(const SweepArgs& args) {
  const int txns = args.quick ? 60 : 120;
  std::printf(
      "E7 — unnecessary aborts vs clock skew (message latency 1 ms,\n"
      "so 4 message exchanges = 4 ms; skew alternates +/- per site%s)\n\n",
      args.quick ? "; quick" : "");

  const sim::Duration skews[] = {
      sim::Duration{0},      1 * sim::kMillisecond,  2 * sim::kMillisecond,
      4 * sim::kMillisecond, 16 * sim::kMillisecond, 64 * sim::kMillisecond};
  std::vector<runner::RunSpec> specs;
  for (sim::Duration skew : skews) {
    runner::RunSpec spec;
    spec.cell = StrCat("skew=", skew / sim::kMillisecond, "ms");
    spec.config.seed = 505;
    spec.config.num_sites = 4;
    spec.config.rows_per_table = 64;
    spec.config.global_clients = 8;
    spec.config.target_global_txns = txns;
    spec.config.clock_skew = skew;
    spec.config.p_prepared_abort = 0.05;  // some failures exercise recovery
    spec.config.alive_check_interval = 10 * sim::kMillisecond;
    specs.push_back(std::move(spec));
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  TablePrinter table({"skew ms", "skew/latency", "committed", "aborted",
                      "refuse ext", "commit retries", "tput/s", "history"});
  bool all_ok = true;
  for (size_t i = 0; i < specs.size(); ++i) {
    const workload::RunResult& r = (*outputs)[i].result;
    agg.AddRun(specs[i].cell, specs[i].config.seed, r);
    all_ok = all_ok && r.replay_consistent && r.commit_graph_acyclic &&
             r.verdict != history::Verdict::kNotSerializable;
    table.AddRow(static_cast<double>(skews[i]) / 1000.0,
                 static_cast<double>(skews[i]) / 1000.0,
                 r.metrics.global_committed, r.metrics.global_aborted,
                 r.metrics.refuse_extension, r.metrics.commit_cert_retries,
                 r.CommitsPerSecond(), VerdictCell(r));
  }

  const int rc = FinishSweep("clock_drift",
                             "4 sites, 8 global clients, p_fail=0.05, "
                             "alternating +/- skew",
                             505, args.workers, table, agg);
  std::printf(
      "\nExpected shape: correctness (history column) is unaffected by any\n"
      "skew; extension refusals and commit-certification retries rise once\n"
      "the skew exceeds a few message exchanges, costing only throughput.\n");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
