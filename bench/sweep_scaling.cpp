// E6 — decentralization: throughput scaling with the number of sites
// (paper sections 1, 8).
//
// Per-site load is held constant while the number of sites grows; the 2CM
// system and the CGM baseline run the same grid. One run per (system,
// sites) cell, all cells fanned out through the runner.

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "runner/runner.h"

namespace hermes::bench {

int RunScalingSweep(const SweepArgs& args) {
  using workload::System;
  const int txns_per_site = args.quick ? 10 : 40;
  std::printf(
      "E6 — throughput vs number of sites (2 global clients per site,\n"
      "2-site transactions, failure-free%s)\n\n",
      args.quick ? ", quick" : "");

  const int site_counts[] = {2, 4, 8, 16};
  std::vector<runner::RunSpec> specs;
  std::vector<int> spec_sites;
  std::string base_config;
  for (int sites : site_counts) {
    for (int sys = 0; sys < 2; ++sys) {
      runner::RunSpec spec;
      spec.cell = StrCat(sys == 0 ? "2CM" : "CGM/site", "/sites=", sites);
      spec.config.seed = 77 + static_cast<uint64_t>(sites);
      spec.config.num_sites = sites;
      spec.config.rows_per_table = 128;
      spec.config.global_clients = 2 * sites;
      spec.config.target_global_txns = txns_per_site * sites;
      spec.config.cmds_per_global_txn = 4;
      spec.config.sites_per_global_txn = 2;
      spec.config.record_history = false;
      spec.config.system = sys == 0 ? System::k2CM : System::kCGM;
      spec.config.cgm_granularity = cgm::Granularity::kSite;
      if (base_config.empty()) base_config = spec.config.ToString();
      specs.push_back(std::move(spec));
      spec_sites.push_back(sites);
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  TablePrinter table({"system", "sites", "committed", "aborted", "tput/s",
                      "tput/site/s", "mean lat ms", "p50 ms", "p95 ms",
                      "p99 ms", "messages"});
  for (size_t i = 0; i < specs.size(); ++i) {
    const workload::RunResult& r = (*outputs)[i].result;
    agg.AddRun(specs[i].cell, specs[i].config.seed, r);
    const trace::Histogram& hist = r.metrics.latency_hist;
    table.AddRow(
        specs[i].config.system == System::k2CM ? "2CM" : "CGM/site",
        spec_sites[i], r.metrics.global_committed,
        r.metrics.global_aborted, r.CommitsPerSecond(),
        r.CommitsPerSecond() / spec_sites[i], r.metrics.MeanLatencyMs(),
        hist.PercentileMs(50), hist.PercentileMs(95), hist.PercentileMs(99),
        r.messages);
  }

  const int rc =
      FinishSweep("scaling", base_config, 77, args.workers, table, agg);
  std::printf(
      "\nExpected shape: 2CM per-site throughput stays roughly flat as\n"
      "sites are added (fully decentralized); CGM's per-site throughput\n"
      "collapses because all transactions funnel through the central\n"
      "scheduler's site-granularity locks and commit graph.\n");
  return rc;
}

}  // namespace hermes::bench
