// E1 + E2 — reproduction of the paper's example histories (Fig. 2 and
// sections 3 / 5.1) through the live protocol stack, under every
// certification policy.
//
// H1 exhibits the *global view distortion*: a unilaterally aborted,
// resubmitted subtransaction re-reads data rewritten by a concurrent global
// transaction. H2 exhibits the *local view distortion*: reversed local
// commit orders give a purely local transaction an inconsistent view. The
// table shows, per policy, the transaction outcomes and the exact
// view-serializability verdict of the recorded history.

#include <cstdio>
#include <functional>
#include <optional>

#include "bench/bench_util.h"
#include "core/mdbs.h"
#include "history/graphs.h"
#include "history/projection.h"
#include "history/view_checker.h"

namespace hermes {
namespace {

using core::CertPolicy;
using core::GlobalTxnResult;
using core::GlobalTxnSpec;

constexpr SiteId kA = 0, kB = 1, kC = 2;
constexpr int64_t kX = 0, kY = 1, kZ = 2, kQ = 3, kU = 4;

struct ScenarioResult {
  bool t1_committed = false;
  bool other_committed = false;
  bool local_committed = false;
  int64_t resubmissions = 0;
  int64_t refusals = 0;
  bool cg_acyclic = true;
  history::Verdict verdict = history::Verdict::kUnknown;
};

struct Harness {
  sim::EventLoop loop;
  std::unique_ptr<core::Mdbs> mdbs;
  db::TableId table = -1;

  explicit Harness(CertPolicy policy) {
    core::MdbsConfig config;
    config.num_sites = 3;
    config.agent.policy = policy;
    config.agent.alive_check_interval = 200 * sim::kMillisecond;
    mdbs = std::make_unique<core::Mdbs>(config, &loop);
    table = *mdbs->CreateTableEverywhere("t");
    for (SiteId s : {kA, kB}) {
      for (int64_t k : {kX, kY, kZ, kQ, kU}) {
        mdbs->LoadRow(s, table, k, db::Row{{"v", db::Value(int64_t{0})}});
      }
    }
    loop.set_max_events(10'000'000);
  }

  void Finish(ScenarioResult& out) {
    loop.Run();
    const auto committed =
        history::CommittedProjection(mdbs->recorder().ops());
    out.resubmissions = mdbs->metrics().resubmissions;
    out.refusals = mdbs->metrics().refuse_interval +
                   mdbs->metrics().refuse_extension +
                   mdbs->metrics().refuse_dead;
    out.cg_acyclic = history::CommitGraphAcyclic(committed);
    out.verdict = history::CheckViewSerializability(committed).verdict;
  }
};

// H1: T1 dies at site a after READY; T2 deletes Y / rewrites X in the
// window; T1's resubmission re-decomposes and reads T2's X.
ScenarioResult RunH1(CertPolicy policy) {
  Harness h(policy);
  ScenarioResult out;
  TxnId t1_id;
  bool injected = false;
  h.mdbs->agent(kA)->set_prepared_hook([&](const TxnId& gtid,
                                           LtmTxnHandle handle) {
    if (injected || !(gtid == t1_id)) return;
    injected = true;
    h.loop.ScheduleAfter(0, [&h, handle]() {
      (void)h.mdbs->ltm(kA)->InjectUnilateralAbort(handle);
    });
    GlobalTxnSpec t2;
    t2.steps.push_back({kA, db::MakeDeleteKey(h.table, kY)});
    t2.steps.push_back({kA, db::MakeAddKey(h.table, kX, "v", int64_t{100})});
    t2.steps.push_back({kB, db::MakeAddKey(h.table, kZ, "v", int64_t{100})});
    h.mdbs->Submit(
        t2,
        [&out](const GlobalTxnResult& r) {
          out.other_committed = r.status.ok();
        },
        kA);
  });
  GlobalTxnSpec t1;
  t1.steps.push_back({kA, db::MakeSelectKey(h.table, kX)});
  t1.steps.push_back({kA, db::MakeAddKey(h.table, kY, "v", int64_t{10})});
  t1.steps.push_back({kB, db::MakeAddKey(h.table, kZ, "v", int64_t{10})});
  t1_id = h.mdbs->Submit(
      t1,
      [&out](const GlobalTxnResult& r) { out.t1_committed = r.status.ok(); },
      kC);
  h.Finish(out);
  return out;
}

// H2: T1 dies at a; T3 reads T1's Z at b and commits at a before T1's
// resubmission; local L4 brackets the window (reads Y early, Q late).
ScenarioResult RunH2(CertPolicy policy) {
  Harness h(policy);
  ScenarioResult out;
  TxnId t1_id;
  bool injected = false;
  h.mdbs->agent(kA)->set_prepared_hook([&](const TxnId& gtid,
                                           LtmTxnHandle handle) {
    if (injected || !(gtid == t1_id)) return;
    injected = true;
    h.loop.ScheduleAfter(0, [&h, handle]() {
      (void)h.mdbs->ltm(kA)->InjectUnilateralAbort(handle);
    });
    GlobalTxnSpec t3;
    t3.steps.push_back({kB, db::MakeSelectKey(h.table, kZ)});
    t3.steps.push_back({kA, db::MakeAddKey(h.table, kQ, "v", int64_t{7})});
    h.mdbs->Submit(
        t3,
        [&out](const GlobalTxnResult& r) {
          out.other_committed = r.status.ok();
        },
        kC);
    ltm::Ltm* ltm = h.mdbs->ltm(kA);
    h.loop.ScheduleAfter(200 * sim::kMicrosecond, [&h, &out, ltm]() {
      const LtmTxnHandle l4 =
          ltm->Begin(SubTxnId{TxnId::MakeLocal(kA, 9999), 0});
      ltm->Execute(l4, db::MakeSelectKey(h.table, kY),
                   [&h, &out, ltm, l4](const Status& s, const db::CmdResult&) {
                     if (!s.ok()) return;
                     h.loop.ScheduleAfter(5 * sim::kMillisecond, [&h, &out,
                                                                 ltm, l4]() {
                       ltm->Execute(
                           l4, db::MakeSelectKey(h.table, kQ),
                           [&out, ltm, l4](const Status& s2,
                                           const db::CmdResult&) {
                             if (!s2.ok()) return;
                             ltm->Execute(
                                 l4,
                                 db::MakeAddKey(ltm->storage()
                                                    ->GetTable(0)
                                                    ->id(),
                                                kU, "v", int64_t{1}),
                                 [&out, ltm, l4](const Status& s3,
                                                 const db::CmdResult&) {
                                   if (!s3.ok()) return;
                                   out.local_committed =
                                       ltm->Commit(l4).ok();
                                 });
                           });
                     });
                   });
    });
  });
  GlobalTxnSpec t1;
  t1.steps.push_back({kA, db::MakeSelectKey(h.table, kX)});
  t1.steps.push_back({kA, db::MakeAddKey(h.table, kY, "v", int64_t{10})});
  t1.steps.push_back({kB, db::MakeAddKey(h.table, kZ, "v", int64_t{10})});
  t1_id = h.mdbs->Submit(
      t1,
      [&out](const GlobalTxnResult& r) { out.t1_committed = r.status.ok(); },
      kC);
  h.Finish(out);
  return out;
}

void Report(const char* title, const char* artifact_name,
            const std::function<ScenarioResult(CertPolicy)>& run) {
  std::printf("%s\n", title);
  bench::TablePrinter table({"policy", "T1", "intruder", "local", "resub",
                             "refusals", "CG", "oracle verdict"});
  for (const auto policy :
       {CertPolicy::kNone, CertPolicy::kPrepareOnly,
        CertPolicy::kPrepareExtended, CertPolicy::kFull}) {
    const ScenarioResult r = run(policy);
    table.AddRow(core::CertPolicyName(policy),
                 r.t1_committed ? "commit" : "abort",
                 r.other_committed ? "commit" : "abort",
                 r.local_committed ? "commit" : "-", r.resubmissions,
                 r.refusals, r.cg_acyclic ? "acyclic" : "CYCLIC",
                 history::VerdictName(r.verdict));
  }
  table.Print();
  bench::WriteBenchArtifact(artifact_name, title, 0, table);
  std::printf("\n");
}

}  // namespace
}  // namespace hermes

int main() {
  std::printf("E1/E2 — paper histories H1 and H2 through the live stack\n\n");
  hermes::Report("H1 — global view distortion (section 3):",
                 "fig2_histories_h1", hermes::RunH1);
  hermes::Report("H2 — local view distortion (section 5.1):",
                 "fig2_histories_h2", hermes::RunH2);
  std::printf(
      "Expectation (paper): with certification disabled both anomalies\n"
      "materialize (NOT-VIEW-SERIALIZABLE); every certifying policy\n"
      "prevents them, at the cost of refusing the intruding transaction.\n");
  return 0;
}
