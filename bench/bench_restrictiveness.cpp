// E3 + E4 — restrictiveness of 2CM vs CGM (paper section 6).
//
// The paper claims: "If we assume that neither checking the order of the
// arriving PREPARE messages, nor too long a time between alive time checks
// ever cause aborts, 2CM is less restrictive than CGM: in a failure-free
// situation it does not abort any transactions", while CGM rejects
// histories because of the site-level granularity of its commit graph and
// its coarse global locks.
//
// E3 sweeps the multiprogramming level with zero failures and reports
// certification-caused aborts (2CM: refusals; CGM: commit-graph rejections
// plus global-lock timeouts). E4 sweeps contention (rows per table, skew)
// at fixed load across CGM granularities.

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::System;
using workload::WorkloadConfig;

WorkloadConfig Base(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_sites = 4;
  config.rows_per_table = 64;
  config.global_clients = 8;
  config.target_global_txns = 150;
  config.cmds_per_global_txn = 4;
  config.sites_per_global_txn = 2;
  config.global_write_fraction = 0.6;
  config.p_prepared_abort = 0.0;
  config.record_history = false;  // throughput-oriented sweep
  return config;
}

void RunE3() {
  std::printf(
      "E3 — failure-free certification aborts vs multiprogramming level\n"
      "(4 sites, 64 rows/table, uniform access)\n\n");
  bench::TablePrinter table({"system", "MPL", "committed", "aborted",
                             "cert aborts", "lock/dml aborts", "tput/s",
                             "mean lat ms"});
  for (int mpl : {1, 2, 4, 8, 16}) {
    for (int sys = 0; sys < 2; ++sys) {
      WorkloadConfig config = Base(1000 + static_cast<uint64_t>(mpl));
      config.global_clients = mpl;
      config.system = sys == 0 ? System::k2CM : System::kCGM;
      config.cgm_granularity = cgm::Granularity::kSite;
      const RunResult r = Driver::Run(config);
      const int64_t cert_aborts =
          config.system == System::k2CM
              ? r.metrics.refuse_interval + r.metrics.refuse_extension +
                    r.metrics.refuse_dead
              : r.metrics.cgm_graph_rejections;
      table.AddRow(config.system == System::k2CM ? "2CM" : "CGM/site", mpl,
                   r.metrics.global_committed, r.metrics.global_aborted,
                   cert_aborts, r.metrics.global_aborted_dml,
                   r.CommitsPerSecond(), r.metrics.MeanLatencyMs());
    }
  }
  table.Print();
  bench::WriteBenchArtifact("restrictiveness_e3",
                            "4 sites, 64 rows/table, uniform access", 1000,
                            table);
  std::printf(
      "\nExpected shape: the 2CM cert-abort column is identically 0 (the\n"
      "paper's failure-free claim); CGM serializes same-site-pair\n"
      "transactions and loses throughput as MPL grows.\n\n");
}

void RunE4() {
  std::printf(
      "E4 — acceptance rate vs contention, CGM granularities (MPL 8)\n\n");
  bench::TablePrinter table({"system", "rows/table", "zipf", "committed",
                             "aborted", "tput/s", "mean lat ms"});
  struct Point {
    int64_t rows;
    double zipf;
  };
  for (const Point& p : {Point{16, 0.0}, Point{64, 0.0}, Point{256, 0.0},
                         Point{64, 0.99}}) {
    for (int sys = 0; sys < 4; ++sys) {
      WorkloadConfig config = Base(2000 + static_cast<uint64_t>(p.rows));
      config.rows_per_table = p.rows;
      config.zipf_theta = p.zipf;
      // Several tables per site so the table granularity is meaningfully
      // finer than the site granularity.
      config.tables_per_site = 4;
      const char* name = nullptr;
      switch (sys) {
        case 0:
          config.system = System::k2CM;
          name = "2CM";
          break;
        case 1:
          config.system = System::kCGM;
          config.cgm_granularity = cgm::Granularity::kSite;
          name = "CGM/site";
          break;
        case 2:
          config.system = System::kCGM;
          config.cgm_granularity = cgm::Granularity::kTable;
          name = "CGM/table";
          break;
        default:
          config.system = System::kCGM;
          config.cgm_granularity = cgm::Granularity::kItem;
          name = "CGM/item";
          break;
      }
      const RunResult r = Driver::Run(config);
      table.AddRow(name, p.rows, p.zipf, r.metrics.global_committed,
                   r.metrics.global_aborted, r.CommitsPerSecond(),
                   r.metrics.MeanLatencyMs());
    }
  }
  table.Print();
  bench::WriteBenchArtifact("restrictiveness_e4",
                            "MPL 8, 4 tables/site, CGM granularity sweep",
                            2000, table);
  std::printf(
      "\nExpected shape: 2CM throughput tracks item-level contention only;\n"
      "CGM improves with finer granules but stays behind 2CM because the\n"
      "commit graph still serializes at site granularity.\n");
}

}  // namespace
}  // namespace hermes

int main() {
  hermes::RunE3();
  hermes::RunE4();
  return 0;
}
