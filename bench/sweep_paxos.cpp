// E16 — non-blocking commit: 2PC vs Paxos Commit under coordinator-crash
// chaos plans.
//
// Every cell runs the same seeded crash-heavy fault plans (half of the
// crashes triggered on the prepared state — the classic lost-decision
// window) against one decision protocol: plain 2PC, then Paxos Commit at
// F ∈ {0, 1, 2} (1, 3 and 5 acceptors on a 5-site federation). The paired
// grids expose the paper's trade: Paxos Commit pays more messages and
// acceptor force-writes per transaction but keeps the prepared blocking
// window short when the coordinator dies mid-decision, because any agent
// escalates its INQUIRY into an election and an acceptor-quorum read
// instead of waiting for the coordinator to come back. Every run is
// checked by the atomicity and view-serializability oracles, and a
// determinism sub-grid re-executes one traced run per cell serially and
// on 2 workers (fingerprints must match byte for byte).

#include <cstdio>
#include <vector>

#include "bench/sweeps.h"
#include "fault/fault_plan.h"
#include "runner/runner.h"

namespace hermes::bench {

namespace {

struct ProtocolVariant {
  const char* cell;
  consensus::ProtocolKind protocol;
  int f;  // acceptors = 2F+1; ignored under 2PC
};

// One spec of the paired grid: protocol variant x workload seed x plan.
runner::RunSpec PaxosSpec(const ProtocolVariant& v, uint64_t seed,
                          uint64_t plan_seed, int txns) {
  runner::RunSpec spec;
  spec.cell = v.cell;
  spec.config.seed = seed;
  spec.config.num_sites = 5;  // room for 2F+1 = 5 acceptors at F=2
  spec.config.rows_per_table = 64;
  spec.config.global_clients = 4;
  spec.config.target_global_txns = txns;
  spec.config.net_loss_prob = 0.01;
  spec.config.protocol = v.protocol;
  spec.config.paxos_f = v.f;
  // A tight inquiry schedule so prepared agents notice a dead coordinator
  // quickly; identical for both protocols (under 2PC faster probing
  // cannot unblock anyone — the answer is down with the coordinator).
  spec.config.decision_inquiry_timeout = 40 * sim::kMillisecond;
  spec.config.inquiry_retry_initial = 20 * sim::kMillisecond;
  spec.config.inquiry_retry_max = 160 * sim::kMillisecond;
  // As in E15: orphaned active subtransactions abort unilaterally,
  // prepared ones keep probing; generous drain so post-crash resolution
  // settles before the oracles judge the history.
  spec.config.orphan_abort_timeout = 800 * sim::kMillisecond;
  spec.config.drain_grace = 2 * sim::kSecond;

  // Crash-only chaos: long downtimes dominated by the prepared-state
  // trigger, the window where 2PC must block.
  fault::ChaosOptions opts;
  opts.num_sites = spec.config.num_sites;
  opts.horizon = 5 * sim::kSecond;
  opts.crashes = 3;
  opts.partitions = 0;
  opts.loss_bursts = 0;
  opts.min_downtime = 300 * sim::kMillisecond;
  opts.max_downtime = 800 * sim::kMillisecond;
  opts.triggered_fraction = 0.5;
  spec.config.fault_plan = fault::GenerateChaosPlan(plan_seed, opts);
  return spec;
}

}  // namespace

int RunPaxosSweep(const SweepArgs& args) {
  const int num_seeds = args.quick ? 2 : 6;
  const int num_plans = args.quick ? 3 : 6;
  const int txns = args.quick ? 50 : 100;
  const std::vector<ProtocolVariant> variants = {
      {"2pc", consensus::ProtocolKind::k2PC, 0},
      {"paxos F=0", consensus::ProtocolKind::kPaxosCommit, 0},
      {"paxos F=1", consensus::ProtocolKind::kPaxosCommit, 1},
      {"paxos F=2", consensus::ProtocolKind::kPaxosCommit, 2},
  };
  std::printf(
      "E16 — non-blocking commit: 2PC vs Paxos Commit under coordinator "
      "crashes\n(5 sites, 4 global clients, crash-only chaos plans, %d "
      "seeds x %d plans per cell, atomicity + serializability checked per "
      "run%s)\n\n",
      num_seeds, num_plans, args.quick ? ", quick" : "");

  std::vector<runner::RunSpec> specs;
  std::string base_config;
  for (const ProtocolVariant& v : variants) {
    for (int s = 0; s < num_seeds; ++s) {
      for (int p = 0; p < num_plans; ++p) {
        const uint64_t seed = 8200 + static_cast<uint64_t>(s);
        // Same plan seeds across variants: every protocol faces the
        // identical crash schedule, so the cells compare like for like.
        const uint64_t plan_seed =
            500 + 10 * static_cast<uint64_t>(p) + static_cast<uint64_t>(s);
        specs.push_back(PaxosSpec(v, seed, plan_seed, txns));
        // Trace the first plan variant of every (protocol, seed) point for
        // the per-cell phase and blocking-window stats.
        specs.back().capture_trace = p == 0;
        if (base_config.empty()) base_config = specs.back().config.ToString();
      }
    }
  }

  Result<std::vector<runner::RunOutput>> outputs =
      runner::RunAll(specs, {.workers = args.workers});
  if (!outputs.ok()) {
    std::fprintf(stderr, "harness: %s\n",
                 outputs.status().ToString().c_str());
    return 2;
  }

  runner::Aggregator agg;
  for (size_t i = 0; i < specs.size(); ++i) {
    agg.AddRun(specs[i].cell, specs[i].config.seed, (*outputs)[i].result);
    AddPhaseStats(agg.Cell(specs[i].cell), (*outputs)[i].trace_jsonl);
  }

  TablePrinter table({"protocol", "committed", "aborted", "crash abrt",
                      "msgs/txn", "forced wr", "elections", "resolved",
                      "fast", "cons us", "blk win", "blk p95 ms",
                      "blk max ms", "p95 ms", "history"});
  bool all_ok = true;
  double blocked_p95_2pc = 0.0;
  double blocked_p95_paxos_worst = 0.0;
  for (size_t c = 0; c < agg.cells().size(); ++c) {
    const runner::CellAggregate& cell = agg.cells()[c];
    const int64_t committed = static_cast<int64_t>(cell.Sum("committed"));
    const int64_t aborted = static_cast<int64_t>(cell.Sum("aborted"));
    bool ok = true;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].cell != cell.cell) continue;
      const workload::RunResult& r = (*outputs)[i].result;
      ok = ok && r.history_checked && r.atomicity_ok &&
           r.commit_graph_acyclic && r.replay_consistent &&
           r.order_invariant_ok &&
           r.verdict != history::Verdict::kNotSerializable;
    }
    // Termination: every submitted transaction reached a decision even
    // with its coordinating site crashing mid-protocol.
    ok = ok && committed + aborted ==
                   static_cast<int64_t>(num_seeds) * num_plans * txns;
    all_ok = all_ok && ok;
    const double blocked_p95_ms = cell.Mean("blocked_p95_us") / 1000.0;
    if (variants[c].protocol == consensus::ProtocolKind::k2PC) {
      blocked_p95_2pc = blocked_p95_ms;
    } else if (variants[c].f >= 1 &&
               blocked_p95_ms > blocked_p95_paxos_worst) {
      blocked_p95_paxos_worst = blocked_p95_ms;
    }
    table.AddRow(
        cell.cell, committed, aborted,
        static_cast<int64_t>(cell.Sum("aborted_crash")),
        Fixed2(cell.Sum("messages") /
               static_cast<double>(committed + aborted > 0 ? committed + aborted
                                                           : 1)),
        static_cast<int64_t>(cell.Sum("paxos_forced_writes")),
        static_cast<int64_t>(cell.Sum("paxos_elections")),
        static_cast<int64_t>(cell.Sum("paxos_decided_resolved")),
        static_cast<int64_t>(cell.Sum("paxos_decided_fast")),
        cell.Mean("phase_consensus_us"),
        static_cast<int64_t>(cell.Sum("blocked_windows")), blocked_p95_ms,
        cell.Mean("blocked_max_us") / 1000.0, cell.latency.PercentileMs(95),
        ok ? "ATOMIC+VSR" : "VIOLATED");
  }

  // The paper's headline: with F >= 1 the prepared blocking window's tail
  // must shrink strictly below 2PC's under the same crash schedule.
  const bool non_blocking =
      blocked_p95_paxos_worst > 0.0 && blocked_p95_2pc > 0.0 &&
      blocked_p95_paxos_worst < blocked_p95_2pc;
  all_ok = all_ok && non_blocking;

  // Determinism sub-grid: the first run of every cell, traced, serially
  // and on 2 workers — fingerprints must match byte for byte.
  std::vector<runner::RunSpec> det;
  for (size_t c = 0; c < variants.size(); ++c) {
    runner::RunSpec spec = specs[c * static_cast<size_t>(num_seeds) *
                                 static_cast<size_t>(num_plans)];
    spec.capture_trace = true;
    det.push_back(std::move(spec));
  }
  Result<std::vector<runner::RunOutput>> det_serial =
      runner::RunAll(det, {.workers = 1});
  Result<std::vector<runner::RunOutput>> det_parallel =
      runner::RunAll(det, {.workers = 2});
  if (!det_serial.ok() || !det_parallel.ok()) {
    std::fprintf(stderr, "harness: determinism sub-grid failed\n");
    return 2;
  }
  bool deterministic = true;
  for (size_t i = 0; i < det.size(); ++i) {
    if (runner::Fingerprint((*det_serial)[i]) !=
        runner::Fingerprint((*det_parallel)[i])) {
      deterministic = false;
      std::fprintf(stderr,
                   "determinism: paxos run %zu diverged between serial and "
                   "2-worker execution\n",
                   i);
    }
  }
  all_ok = all_ok && deterministic;

  if (!args.trace_out.empty() && !det.empty()) {
    // Export the F=1 traced run for tmstat / Perfetto (consensus spans).
    const size_t pick = det.size() > 2 ? 2 : det.size() - 1;
    if (!WriteTraceArtifacts(args.trace_out, (*det_serial)[pick].trace_jsonl,
                             (*det_serial)[pick].result)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   args.trace_out.c_str());
    }
  }

  const int rc =
      FinishSweep("E16_paxos", base_config, 8200, args.workers, table, agg);
  std::printf(
      "\nExpected shape: Paxos Commit pays more messages and forced writes\n"
      "per transaction (acceptor broadcast + 2b quorum), but with F >= 1\n"
      "the prepared blocking window's p95 stays well below 2PC's — an\n"
      "elected resolver reads the acceptor quorum instead of waiting out\n"
      "the coordinator's downtime. Non-blocking check (p95 paxos F>=1 "
      "%.2fms < 2pc %.2fms): %s.\n"
      "Determinism sub-grid: serial == 2 workers, %s.\n",
      blocked_p95_paxos_worst, blocked_p95_2pc,
      non_blocking ? "HOLDS" : "VIOLATED",
      deterministic ? "byte-identical" : "DIVERGED");
  if (!all_ok) return 1;
  return rc;
}

}  // namespace hermes::bench
