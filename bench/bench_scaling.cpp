// E6 — decentralization: throughput scaling with the number of sites
// (paper sections 1, 8).
//
// "A DTM based on the 2PCA Certifier does not require any centralized
// component ... simple algorithms that can be replicated onto as many sites
// as needed." The CGM baseline routes every DML step and every commit
// admission through one central scheduler node, paying message round trips
// and coarse-granule serialization. Per-site load is held constant while
// the number of sites grows.

#include <cstdio>

#include "bench/bench_util.h"

namespace hermes {
namespace {

using workload::Driver;
using workload::RunResult;
using workload::System;
using workload::WorkloadConfig;

}  // namespace
}  // namespace hermes

int main() {
  using namespace hermes;  // NOLINT
  std::printf(
      "E6 — throughput vs number of sites (2 global clients per site,\n"
      "2-site transactions, failure-free)\n\n");
  bench::TablePrinter table({"system", "sites", "committed", "aborted",
                             "tput/s", "tput/site/s", "mean lat ms",
                             "p50 ms", "p95 ms", "p99 ms", "messages"});
  std::string base_config;
  for (int sites : {2, 4, 8, 16}) {
    for (int sys = 0; sys < 2; ++sys) {
      WorkloadConfig config;
      config.seed = 77 + static_cast<uint64_t>(sites);
      config.num_sites = sites;
      config.rows_per_table = 128;
      config.global_clients = 2 * sites;
      config.target_global_txns = 40 * sites;
      config.cmds_per_global_txn = 4;
      config.sites_per_global_txn = 2;
      config.record_history = false;
      config.system = sys == 0 ? System::k2CM : System::kCGM;
      config.cgm_granularity = cgm::Granularity::kSite;
      if (base_config.empty()) base_config = config.ToString();
      const RunResult r = Driver::Run(config);
      const trace::Histogram& hist = r.metrics.latency_hist;
      table.AddRow(config.system == System::k2CM ? "2CM" : "CGM/site",
                   sites, r.metrics.global_committed,
                   r.metrics.global_aborted, r.CommitsPerSecond(),
                   r.CommitsPerSecond() / sites, r.metrics.MeanLatencyMs(),
                   hist.PercentileMs(50), hist.PercentileMs(95),
                   hist.PercentileMs(99), r.messages);
    }
  }
  table.Print();
  bench::WriteBenchArtifact("scaling", base_config, 77, table);
  std::printf(
      "\nExpected shape: 2CM per-site throughput stays roughly flat as\n"
      "sites are added (fully decentralized); CGM's per-site throughput\n"
      "collapses because all transactions funnel through the central\n"
      "scheduler's site-granularity locks and commit graph.\n");
  return 0;
}
