// E6 — throughput scaling with the number of sites. The sweep
// implementation lives in bench/sweep_scaling.cpp and is shared with
// bench_suite.

#include "bench/sweeps.h"

int main(int argc, char** argv) {
  return hermes::bench::SweepMain(hermes::bench::RunScalingSweep, argc, argv);
}
