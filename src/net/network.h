// Simulated inter-site message transport.
//
// The paper (section 2) assumes the 2PC messages "are not corrupted, lost or
// out of order"; the Network therefore provides reliable FIFO delivery
// between every ordered pair of sites, with a configurable latency model.
// Payloads are type-erased (std::any) so the same transport carries the 2PC
// Agent protocol of the core DTM as well as the centralized CGM baseline
// protocol without the transport depending on either.

#ifndef HERMES_NET_NETWORK_H_
#define HERMES_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::net {

struct NetworkConfig {
  // One-way delay between distinct sites.
  sim::Duration base_latency = 1 * sim::kMillisecond;
  // Uniform random extra delay in [0, jitter].
  sim::Duration jitter = 0;
  // Delay for messages a site sends to itself (coordinator to co-located
  // agent).
  sim::Duration local_latency = 10 * sim::kMicrosecond;
  uint64_t seed = 1;
};

struct Envelope {
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  std::any payload;
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  // `tracer` may be null (tracing disabled).
  Network(const NetworkConfig& config, sim::EventLoop* loop,
          trace::Tracer* tracer = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // At most one handler per destination site.
  void RegisterEndpoint(SiteId site, Handler handler);

  // Queues `payload` for delivery to `to`'s handler after the modeled
  // latency. Messages between the same ordered pair are delivered in send
  // order (FIFO) even with jitter.
  void Send(SiteId from, SiteId to, std::any payload);

  int64_t messages_sent() const { return messages_sent_; }

 private:
  NetworkConfig config_;
  sim::EventLoop* loop_;
  trace::Tracer* tracer_;
  Rng rng_;
  std::map<SiteId, Handler> endpoints_;
  // Last scheduled delivery time per ordered (from, to) pair, for FIFO.
  std::map<std::pair<SiteId, SiteId>, sim::Time> last_delivery_;
  int64_t messages_sent_ = 0;
};

}  // namespace hermes::net

#endif  // HERMES_NET_NETWORK_H_
