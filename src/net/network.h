// Simulated inter-site message transport.
//
// The paper (section 2) assumes the 2PC messages "are not corrupted, lost or
// out of order"; by default the Network therefore provides reliable FIFO
// delivery between every ordered pair of sites, with a configurable latency
// model. A fault-injection layer can weaken that assumption on purpose:
// per-link message loss, duplicate delivery, bounded reordering and timed
// partitions, all driven by the same deterministic seeded RNG — so the 2PC
// timeout/retransmission machinery in the Coordinator and the duplicate-safe
// Agent handlers can be exercised reproducibly. Messages a site sends to
// itself (coordinator to co-located agent) use in-process delivery and are
// exempt from all injected faults.
//
// Payloads are type-erased (std::any) so the same transport carries the 2PC
// Agent protocol of the core DTM as well as the centralized CGM baseline
// protocol without the transport depending on either.

#ifndef HERMES_NET_NETWORK_H_
#define HERMES_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::net {

struct NetworkConfig {
  // One-way delay between distinct sites.
  sim::Duration base_latency = 1 * sim::kMillisecond;
  // Uniform random extra delay in [0, jitter].
  sim::Duration jitter = 0;
  // Delay for messages a site sends to itself (coordinator to co-located
  // agent).
  sim::Duration local_latency = 10 * sim::kMicrosecond;
  uint64_t seed = 1;

  // --- fault injection (inter-site messages only) -------------------------
  // Probability that a message is silently dropped (per-link overrides via
  // SetLinkLoss take precedence).
  double loss_prob = 0;
  // Probability that a second copy of a delivered message is also delivered
  // after an independent extra delay (outside the FIFO order).
  double dup_prob = 0;
  // Probability that a message skips the per-pair FIFO clamp and takes a
  // random extra delay in [0, reorder_window], letting later sends overtake
  // it.
  double reorder_prob = 0;
  sim::Duration reorder_window = 5 * sim::kMillisecond;
};

struct Envelope {
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  std::any payload;
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  // `tracer` may be null (tracing disabled).
  Network(const NetworkConfig& config, sim::EventLoop* loop,
          trace::Tracer* tracer = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // At most one handler per destination site.
  void RegisterEndpoint(SiteId site, Handler handler);
  // Removes a site's handler (site crash): messages addressed to it — both
  // newly sent and already in flight — are dropped and counted. Re-register
  // when the site recovers. Unknown sites are a no-op.
  void UnregisterEndpoint(SiteId site);

  // Queues `payload` for delivery to `to`'s handler after the modeled
  // latency. Messages between the same ordered pair are delivered in send
  // order (FIFO) even with jitter, unless reordering faults are enabled.
  // Sends to sites without a registered endpoint (crashed / never started)
  // are dropped and counted, never a crash.
  void Send(SiteId from, SiteId to, std::any payload);

  // Overrides the loss probability of the ordered link `from` -> `to`. A
  // per-link entry always wins over the global loss_prob, so p = 0 makes
  // that link lossless even in a lossy network. Remove with ClearLinkLoss.
  void SetLinkLoss(SiteId from, SiteId to, double p);
  void ClearLinkLoss(SiteId from, SiteId to);

  // Drops every message between `a` and `b` (both directions) until virtual
  // time `until`. Repeated calls extend/replace the window.
  void Partition(SiteId a, SiteId b, sim::Time until);
  // True while the (unordered) pair is inside a partition window.
  bool Partitioned(SiteId a, SiteId b) const;

  int64_t messages_sent() const { return messages_sent_; }
  int64_t messages_dropped() const { return messages_dropped_; }
  int64_t messages_duplicated() const { return messages_duplicated_; }
  int64_t messages_reordered() const { return messages_reordered_; }

 private:
  // Why a message never reached its destination handler (trace detail).
  enum class DropCause { kUnregistered, kPartition, kLoss };

  void Drop(SiteId from, SiteId to, DropCause cause);
  void Deliver(SiteId from, SiteId to, sim::Time at, std::any payload);
  double LinkLoss(SiteId from, SiteId to) const;
  sim::Duration DrawDelay(SiteId from, SiteId to);

  NetworkConfig config_;
  sim::EventLoop* loop_;
  trace::Tracer* tracer_;
  Rng rng_;
  std::map<SiteId, Handler> endpoints_;
  // Last scheduled delivery time per ordered (from, to) pair, for FIFO.
  std::map<std::pair<SiteId, SiteId>, sim::Time> last_delivery_;
  std::map<std::pair<SiteId, SiteId>, double> link_loss_;
  // Partition end time per unordered pair (min, max).
  std::map<std::pair<SiteId, SiteId>, sim::Time> partitions_;
  int64_t messages_sent_ = 0;
  int64_t messages_dropped_ = 0;
  int64_t messages_duplicated_ = 0;
  int64_t messages_reordered_ = 0;
};

}  // namespace hermes::net

#endif  // HERMES_NET_NETWORK_H_
