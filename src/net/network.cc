#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hermes::net {

namespace {

std::pair<SiteId, SiteId> UnorderedPair(SiteId a, SiteId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

Network::Network(const NetworkConfig& config, sim::EventLoop* loop,
                 trace::Tracer* tracer)
    : config_(config), loop_(loop), tracer_(tracer), rng_(config.seed) {}

void Network::RegisterEndpoint(SiteId site, Handler handler) {
  assert(endpoints_.find(site) == endpoints_.end());
  endpoints_[site] = std::move(handler);
}

void Network::UnregisterEndpoint(SiteId site) { endpoints_.erase(site); }

void Network::SetLinkLoss(SiteId from, SiteId to, double p) {
  link_loss_[{from, to}] = p;
}

void Network::ClearLinkLoss(SiteId from, SiteId to) {
  link_loss_.erase({from, to});
}

void Network::Partition(SiteId a, SiteId b, sim::Time until) {
  partitions_[UnorderedPair(a, b)] = until;
}

bool Network::Partitioned(SiteId a, SiteId b) const {
  auto it = partitions_.find(UnorderedPair(a, b));
  return it != partitions_.end() && loop_->Now() < it->second;
}

double Network::LinkLoss(SiteId from, SiteId to) const {
  auto it = link_loss_.find({from, to});
  return it != link_loss_.end() ? it->second : config_.loss_prob;
}

void Network::Drop(SiteId from, SiteId to, DropCause cause) {
  ++messages_dropped_;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kMsgDrop;
    e.site = from;
    e.peer = to;
    e.ok = false;
    switch (cause) {
      case DropCause::kUnregistered:
        e.detail = "unregistered";
        break;
      case DropCause::kPartition:
        e.detail = "partition";
        break;
      case DropCause::kLoss:
        e.detail = "loss";
        break;
    }
    tracer_->Record(std::move(e));
  }
}

sim::Duration Network::DrawDelay(SiteId from, SiteId to) {
  sim::Duration delay =
      from == to ? config_.local_latency : config_.base_latency;
  if (config_.jitter > 0) {
    delay += static_cast<sim::Duration>(
        rng_.NextUint64(static_cast<uint64_t>(config_.jitter) + 1));
  }
  return delay;
}

void Network::Deliver(SiteId from, SiteId to, sim::Time at,
                      std::any payload) {
  Envelope env{from, to, std::move(payload)};
  loop_->ScheduleAt(at, [this, to, env = std::move(env)]() {
    auto it = endpoints_.find(to);
    if (it != endpoints_.end()) it->second(env);
  });
}

void Network::Send(SiteId from, SiteId to, std::any payload) {
  ++messages_sent_;
  if (endpoints_.find(to) == endpoints_.end()) {
    // Destination crashed or never started: a real WAN message to a dead
    // host just vanishes — never abort the simulation.
    Drop(from, to, DropCause::kUnregistered);
    return;
  }
  const bool local = from == to;
  if (!local) {
    if (Partitioned(from, to)) {
      Drop(from, to, DropCause::kPartition);
      return;
    }
    const double loss = LinkLoss(from, to);
    if (loss > 0 && rng_.NextBool(loss)) {
      Drop(from, to, DropCause::kLoss);
      return;
    }
  }
  sim::Duration delay = DrawDelay(from, to);
  bool reordered = false;
  if (!local && config_.reorder_prob > 0 &&
      rng_.NextBool(config_.reorder_prob)) {
    // Extra delay outside the FIFO clamp: later sends may overtake this
    // message.
    reordered = true;
    ++messages_reordered_;
    if (config_.reorder_window > 0) {
      delay += static_cast<sim::Duration>(rng_.NextUint64(
          static_cast<uint64_t>(config_.reorder_window) + 1));
    }
  }
  sim::Time at = loop_->Now() + delay;
  if (!reordered) {
    // FIFO per ordered pair: never deliver before an earlier send. A
    // reordered message neither obeys nor advances the clamp, so it can be
    // overtaken without delaying everything behind it.
    auto& last = last_delivery_[{from, to}];
    if (at < last) at = last;
    last = at;
  }
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kMsgSend;
    e.site = from;
    e.peer = to;
    e.value = at - loop_->Now();
    tracer_->Record(std::move(e));
  }
  if (!local && config_.dup_prob > 0 && rng_.NextBool(config_.dup_prob)) {
    // Deliver a second copy after an independent extra delay, outside the
    // FIFO order — the classic retransmit-then-original-arrives duplicate.
    ++messages_duplicated_;
    sim::Duration extra = DrawDelay(from, to);
    if (config_.reorder_window > 0) {
      extra += static_cast<sim::Duration>(rng_.NextUint64(
          static_cast<uint64_t>(config_.reorder_window) + 1));
    }
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kMsgDup;
      e.site = from;
      e.peer = to;
      e.value = at + extra - loop_->Now();
      tracer_->Record(std::move(e));
    }
    Deliver(from, to, at + extra, payload);
  }
  Deliver(from, to, at, std::move(payload));
}

}  // namespace hermes::net
