#include "net/network.h"

#include <cassert>
#include <utility>

namespace hermes::net {

Network::Network(const NetworkConfig& config, sim::EventLoop* loop,
                 trace::Tracer* tracer)
    : config_(config), loop_(loop), tracer_(tracer), rng_(config.seed) {}

void Network::RegisterEndpoint(SiteId site, Handler handler) {
  assert(endpoints_.find(site) == endpoints_.end());
  endpoints_[site] = std::move(handler);
}

void Network::Send(SiteId from, SiteId to, std::any payload) {
  assert(endpoints_.find(to) != endpoints_.end());
  sim::Duration delay =
      from == to ? config_.local_latency : config_.base_latency;
  if (config_.jitter > 0) {
    delay += static_cast<sim::Duration>(
        rng_.NextUint64(static_cast<uint64_t>(config_.jitter) + 1));
  }
  sim::Time at = loop_->Now() + delay;
  // FIFO per ordered pair: never deliver before an earlier send.
  auto& last = last_delivery_[{from, to}];
  if (at < last) at = last;
  last = at;
  ++messages_sent_;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kMsgSend;
    e.site = from;
    e.peer = to;
    e.value = at - loop_->Now();
    tracer_->Record(std::move(e));
  }
  Envelope env{from, to, std::move(payload)};
  loop_->ScheduleAt(at, [this, to, env = std::move(env)]() {
    auto it = endpoints_.find(to);
    if (it != endpoints_.end()) it->second(env);
  });
}

}  // namespace hermes::net
