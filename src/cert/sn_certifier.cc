#include "cert/sn_certifier.h"

#include "common/str.h"

namespace hermes::cert {

PrepareOutcome SnCertifier::CertifyPrepare(const TxnId& /*gtid*/,
                                           const core::SerialNumber& sn,
                                           const core::AliveInterval& candidate,
                                           int /*resubmission*/,
                                           bool want_detail) {
  PrepareOutcome out;
  const bool extension = policy_ == core::CertPolicy::kPrepareExtended ||
                         policy_ == core::CertPolicy::kFull;
  if (extension && sn < max_committed_sn_) {
    // Certification extension failed: a subtransaction with a bigger serial
    // number is already committed here — this PREPARE arrived out of order
    // and committing it later could close a cycle in CG(H).
    out.admit = false;
    out.refuse = trace::RefuseKind::kExtension;
    // The REFUSE reason is a static message: SN details are only rendered
    // (ToString/StrCat) into the trace event, so certification never builds
    // strings when tracing is disabled.
    out.reason = Status::Rejected(
        "prepare certification extension: SN below committed high-water "
        "mark");
    if (want_detail) {
      out.detail = StrCat("prepare certification extension: ", sn.ToString(),
                          " < committed ", max_committed_sn_.ToString());
      if (max_committed_gtid_.valid()) {
        out.related.push_back(max_committed_gtid_);
      }
    }
    return out;
  }

  // Basic prepare certification: the candidate's alive interval must
  // intersect the alive interval of every subtransaction currently in the
  // prepared state at this site.
  if (policy_ != core::CertPolicy::kNone &&
      !table_.CertifiableAgainstAll(candidate)) {
    out.admit = false;
    out.refuse = trace::RefuseKind::kInterval;
    out.reason = Status::Rejected(
        "basic prepare certification: alive intervals do not intersect");
    if (want_detail) {
      out.detail = StrCat("candidate alive interval [", candidate.begin, ",",
                          candidate.end, "] disjoint from prepared peer(s)");
      out.related = table_.NonIntersecting(candidate);
    }
    return out;
  }
  return out;
}

void SnCertifier::OnPrepared(const TxnId& gtid,
                             const core::AliveInterval& interval,
                             const core::SerialNumber& sn) {
  table_.Insert(gtid, interval, sn);
}

bool SnCertifier::CertifyCommit(const TxnId& gtid,
                                std::vector<TxnId>* waiting_on) {
  // Commit certification: all other prepared subtransactions at this agent
  // must have a bigger serial number; otherwise retry later.
  if (policy_ != core::CertPolicy::kFull) return true;
  if (table_.SmallestSerialNumber(gtid)) return true;
  if (waiting_on != nullptr) *waiting_on = table_.SmallerSerialNumbers(gtid);
  return false;
}

void SnCertifier::OnCommitted(const TxnId& gtid, const core::SerialNumber& sn,
                              sim::Time /*now*/) {
  table_.Remove(gtid);
  if (max_committed_sn_ < sn) {
    max_committed_sn_ = sn;
    max_committed_gtid_ = gtid;
  }
}

void SnCertifier::Crash() {
  Certifier::Crash();
  max_committed_sn_ = core::SerialNumber{};
  max_committed_gtid_ = TxnId{};
}

void SnCertifier::OnRecoveredCommitted(const TxnId& gtid,
                                       const core::SerialNumber& sn) {
  if (max_committed_sn_ < sn) {
    max_committed_sn_ = sn;
    max_committed_gtid_ = gtid;
  }
}

}  // namespace hermes::cert
