#include "cert/certifier.h"

#include "cert/csn_certifier.h"
#include "cert/sn_certifier.h"

namespace hermes::cert {

const char* CertifierKindName(CertifierKind kind) {
  switch (kind) {
    case CertifierKind::kSn:
      return "sn";
    case CertifierKind::kCsn:
      return "csn";
  }
  return "unknown";
}

std::unique_ptr<Certifier> MakeCertifier(CertifierKind kind,
                                         core::CertPolicy policy) {
  switch (kind) {
    case CertifierKind::kSn:
      return std::make_unique<SnCertifier>(policy);
    case CertifierKind::kCsn:
      return std::make_unique<CsnCertifier>(policy);
  }
  return std::make_unique<SnCertifier>(policy);
}

}  // namespace hermes::cert
