// The paper's serial-number certifier (sections 5.2, 5.3, Appendix C),
// extracted verbatim from the agent: the prepare-certification extension
// refuses any PREPARE whose SN is below the largest serial number already
// committed at this site, and commit certification performs local commits
// in SN order by retrying while a prepared peer holds a smaller SN.

#ifndef HERMES_CERT_SN_CERTIFIER_H_
#define HERMES_CERT_SN_CERTIFIER_H_

#include <vector>

#include "cert/certifier.h"

namespace hermes::cert {

class SnCertifier : public Certifier {
 public:
  explicit SnCertifier(core::CertPolicy policy) : Certifier(policy) {}

  CertifierKind kind() const override { return CertifierKind::kSn; }

  PrepareOutcome CertifyPrepare(const TxnId& gtid,
                                const core::SerialNumber& sn,
                                const core::AliveInterval& candidate,
                                int resubmission, bool want_detail) override;
  void OnPrepared(const TxnId& gtid, const core::AliveInterval& interval,
                  const core::SerialNumber& sn) override;
  bool CertifyCommit(const TxnId& gtid,
                     std::vector<TxnId>* waiting_on) override;
  void OnCommitted(const TxnId& gtid, const core::SerialNumber& sn,
                   sim::Time now) override;

  void Crash() override;
  void OnRecoveredCommitted(const TxnId& gtid,
                            const core::SerialNumber& sn) override;

  core::SerialNumber committed_high_water() const override {
    return max_committed_sn_;
  }

 private:
  // Extension state: largest committed SN and the transaction holding it
  // (conflicting-transaction context for REFUSE traces).
  core::SerialNumber max_committed_sn_;
  TxnId max_committed_gtid_;
};

}  // namespace hermes::cert

#endif  // HERMES_CERT_SN_CERTIFIER_H_
