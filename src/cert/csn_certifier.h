// The commit-sequence-number certifier: ordering numbers assigned at
// decision time from one global CsnSource, with a durable XID → CSN log
// and a snapshot-based visibility check at prepare.
//
// Why decision-time numbering removes the prepare-time ordering refusal:
// the SN extension exists because submit-time serial numbers can disagree
// with the order commits actually happen in (clock skew between
// coordinators) — a PREPARE "from the past" must be refused. A CSN drawn
// from a single monotonic source *at decision time* is always larger than
// the CSN of every transaction already decided, and a subtransaction can
// only prepare at a site after every commit it could causally follow has
// decided there — so the number order never contradicts the local commit
// order and no prepare arrives "late". The cost moves to commit time:
// a decided subtransaction may not commit locally while a co-prepared
// peer is still undecided (the peer's CSN, once assigned, could be
// smaller), which this implementation expresses by parking undecided
// entries in the shared alive-interval table with an *invalid* serial
// number — invalid sorts below every valid SN, so the unchanged
// SmallestSerialNumber test makes decided transactions wait exactly until
// their undecided peers resolve; OnCommitDecision then stamps the entry
// with SerialNumber{csn, 0, 0} and commits proceed in CSN order.
//
// The snapshot check at prepare is the CSN analogue of basic
// certification against *committed* peers: a resubmitted candidate whose
// current incarnation was never provably concurrent with a commit that
// landed inside its lifetime may straddle that commit's effects across
// incarnations (resubmission equivalence at risk), so it is refused
// conservatively. It consults a bounded window of recent local commits
// and — unlike the SN extension — cannot fire in a failure-free run:
// refusing needs a resubmitted incarnation, and resubmission needs a
// unilateral abort. docs/DESIGN-SPACE.md develops both arguments.

#ifndef HERMES_CERT_CSN_CERTIFIER_H_
#define HERMES_CERT_CSN_CERTIFIER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cert/certifier.h"
#include "cert/csn_log.h"

namespace hermes::cert {

class CsnCertifier : public Certifier {
 public:
  // Recent-commit window consulted by the snapshot check. Bounded so the
  // prepare path stays O(window), not O(history).
  static constexpr size_t kRecentCommitWindow = 64;

  explicit CsnCertifier(core::CertPolicy policy) : Certifier(policy) {}

  CertifierKind kind() const override { return CertifierKind::kCsn; }

  PrepareOutcome CertifyPrepare(const TxnId& gtid,
                                const core::SerialNumber& sn,
                                const core::AliveInterval& candidate,
                                int resubmission, bool want_detail) override;
  void OnPrepared(const TxnId& gtid, const core::AliveInterval& interval,
                  const core::SerialNumber& sn) override;
  void OnCommitDecision(const TxnId& gtid, int64_t csn) override;
  bool CertifyCommit(const TxnId& gtid,
                     std::vector<TxnId>* waiting_on) override;
  void OnCommitted(const TxnId& gtid, const core::SerialNumber& sn,
                   sim::Time now) override;
  void OnRemoved(const TxnId& gtid) override;

  void Crash() override;
  void Recover() override;

  // CSN of a transaction committed at this site, -1 if unknown. Served
  // from the volatile index the durable log replays into.
  int64_t CsnOf(const TxnId& gtid) const;
  int64_t max_committed_csn() const { return max_committed_csn_; }
  const CsnLog& log() const { return log_; }

 private:
  struct RecentCommit {
    TxnId gtid;
    int64_t csn = -1;
    // Last alive interval recorded for the committed subtransaction — as
    // stored in the table, deliberately *not* extended to commit time: the
    // lag between the last aliveness proof and the commit is exactly the
    // window the snapshot check is conservative about.
    core::AliveInterval interval;
    sim::Time committed_at = -1;
  };

  // Volatile: decided-but-not-yet-committed CSNs, the recent-commit window
  // and the replayable XID → CSN index. Durable: log_.
  std::unordered_map<TxnId, int64_t> decided_csn_;
  std::deque<RecentCommit> recent_commits_;
  std::unordered_map<TxnId, int64_t> csn_of_;
  int64_t max_committed_csn_ = 0;
  TxnId max_committed_gtid_;
  CsnLog log_;
};

}  // namespace hermes::cert

#endif  // HERMES_CERT_CSN_CERTIFIER_H_
