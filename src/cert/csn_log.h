// The durable XID → CSN log (the csn_log of PostgreSQL scale-out, scaled
// down to one site's certifier).
//
// Every local commit under the CSN scheme force-appends one (gtid, csn)
// record before the commit acknowledgement leaves the site. Like the agent
// and coordinator logs, "stable storage" is an in-memory structure that
// survives Crash(): replay rebuilds the committed-CSN high-water mark and
// the XID → CSN map after a site failure, keeping CSN recovery consistent
// with the decision-log machinery (the agent's commit record carries the
// CSN for in-doubt subtransactions; this log indexes the completed ones).

#ifndef HERMES_CERT_CSN_LOG_H_
#define HERMES_CERT_CSN_LOG_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace hermes::cert {

struct CsnLogRecord {
  TxnId gtid;
  int64_t csn = -1;
  int64_t lsn = 0;
  bool forced = true;  // every CSN record is force-written
};

class CsnLog {
 public:
  int64_t ForceAppend(const TxnId& gtid, int64_t csn) {
    CsnLogRecord rec;
    rec.gtid = gtid;
    rec.csn = csn;
    rec.lsn = next_lsn_++;
    records_.push_back(rec);
    ++forced_writes_;
    return rec.lsn;
  }

  const std::vector<CsnLogRecord>& records() const { return records_; }
  int64_t forced_writes() const { return forced_writes_; }
  size_t size() const { return records_.size(); }

 private:
  std::vector<CsnLogRecord> records_;
  int64_t next_lsn_ = 0;
  int64_t forced_writes_ = 0;
};

}  // namespace hermes::cert

#endif  // HERMES_CERT_CSN_LOG_H_
