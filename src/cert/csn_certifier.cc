#include "cert/csn_certifier.h"

#include "common/str.h"

namespace hermes::cert {

PrepareOutcome CsnCertifier::CertifyPrepare(
    const TxnId& /*gtid*/, const core::SerialNumber& /*sn*/,
    const core::AliveInterval& candidate, int resubmission,
    bool want_detail) {
  PrepareOutcome out;
  const bool snapshot = policy_ == core::CertPolicy::kPrepareExtended ||
                        policy_ == core::CertPolicy::kFull;
  // Snapshot visibility: a *resubmitted* candidate must have been provably
  // concurrent with every recent commit that landed inside its current
  // lifetime. A commit whose recorded interval never overlapped the
  // candidate's, performed at or after the candidate's interval began,
  // may be straddled by the candidate's incarnations (reads of the first
  // incarnation predate it, the resubmitted ones follow it) — refuse.
  // First incarnations cannot straddle anything, so in a failure-free run
  // this check never fires (no resubmission without a unilateral abort).
  if (snapshot && resubmission > 0) {
    for (const RecentCommit& rc : recent_commits_) {
      if (!rc.interval.Intersects(candidate) &&
          rc.committed_at >= candidate.begin) {
        out.admit = false;
        out.refuse = trace::RefuseKind::kSnapshot;
        out.reason = Status::Rejected(
            "csn snapshot certification: a commit inside the candidate's "
            "lifetime was never concurrently alive with it");
        if (want_detail) {
          out.detail = StrCat("csn snapshot: commit csn=", rc.csn, " at ",
                              rc.committed_at, " vs candidate [",
                              candidate.begin, ",", candidate.end,
                              "] (recorded interval [", rc.interval.begin,
                              ",", rc.interval.end, "])");
          out.related.push_back(rc.gtid);
        }
        return out;
      }
    }
  }

  // Basic prepare certification, shared with the SN scheme.
  if (policy_ != core::CertPolicy::kNone &&
      !table_.CertifiableAgainstAll(candidate)) {
    out.admit = false;
    out.refuse = trace::RefuseKind::kInterval;
    out.reason = Status::Rejected(
        "basic prepare certification: alive intervals do not intersect");
    if (want_detail) {
      out.detail = StrCat("candidate alive interval [", candidate.begin, ",",
                          candidate.end, "] disjoint from prepared peer(s)");
      out.related = table_.NonIntersecting(candidate);
    }
    return out;
  }
  return out;
}

void CsnCertifier::OnPrepared(const TxnId& gtid,
                              const core::AliveInterval& interval,
                              const core::SerialNumber& /*sn*/) {
  // Undecided: park with an invalid serial number, which sorts below every
  // valid one — decided peers cannot pass SmallestSerialNumber past it.
  table_.Insert(gtid, interval, core::SerialNumber{});
}

void CsnCertifier::OnCommitDecision(const TxnId& gtid, int64_t csn) {
  if (csn < 0) return;  // decision redelivery without a CSN (never expected)
  decided_csn_[gtid] = csn;
  if (table_.Contains(gtid)) {
    table_.SetSerialNumber(gtid, core::SerialNumber{csn, 0, 0});
  }
}

bool CsnCertifier::CertifyCommit(const TxnId& gtid,
                                 std::vector<TxnId>* waiting_on) {
  if (policy_ != core::CertPolicy::kFull) return true;
  // CSN-order commit certification: every co-prepared peer must either be
  // decided with a larger CSN or not constrain us — an undecided peer
  // (invalid SN) blocks, because its CSN, once assigned, may be smaller.
  if (table_.SmallestSerialNumber(gtid)) return true;
  if (waiting_on != nullptr) *waiting_on = table_.SmallerSerialNumbers(gtid);
  return false;
}

void CsnCertifier::OnCommitted(const TxnId& gtid,
                               const core::SerialNumber& /*sn*/,
                               sim::Time now) {
  auto it = decided_csn_.find(gtid);
  const int64_t csn = it == decided_csn_.end() ? -1 : it->second;
  // Durability first: the XID → CSN record is forced before the commit is
  // acknowledged anywhere (the agent's commit record, also carrying the
  // CSN, was already forced before the local commit itself).
  log_.ForceAppend(gtid, csn);
  csn_of_[gtid] = csn;
  if (csn > max_committed_csn_) {
    max_committed_csn_ = csn;
    max_committed_gtid_ = gtid;
  }
  if (const core::AliveIntervalTable::Entry* entry = table_.Find(gtid)) {
    RecentCommit rc;
    rc.gtid = gtid;
    rc.csn = csn;
    rc.interval = entry->interval;
    rc.committed_at = now;
    recent_commits_.push_back(rc);
    if (recent_commits_.size() > kRecentCommitWindow) {
      recent_commits_.pop_front();
    }
  }
  table_.Remove(gtid);
  decided_csn_.erase(gtid);
}

void CsnCertifier::OnRemoved(const TxnId& gtid) {
  table_.Remove(gtid);
  decided_csn_.erase(gtid);
}

void CsnCertifier::Crash() {
  Certifier::Crash();
  decided_csn_.clear();
  recent_commits_.clear();
  csn_of_.clear();
  max_committed_csn_ = 0;
  max_committed_gtid_ = TxnId{};
  // log_ is stable storage and survives.
}

void CsnCertifier::Recover() {
  // Replay the durable XID → CSN log: rebuilds the committed high-water
  // mark and the lookup index. The recent-commit window stays empty —
  // post-crash candidates see no recent commits, which can only *admit*
  // more (the snapshot check is a conservative guard, and everything
  // actually in doubt is re-entered through the prepared-set machinery).
  for (const CsnLogRecord& rec : log_.records()) {
    csn_of_[rec.gtid] = rec.csn;
    if (rec.csn > max_committed_csn_) {
      max_committed_csn_ = rec.csn;
      max_committed_gtid_ = rec.gtid;
    }
  }
}

int64_t CsnCertifier::CsnOf(const TxnId& gtid) const {
  auto it = csn_of_.find(gtid);
  return it == csn_of_.end() ? -1 : it->second;
}

}  // namespace hermes::cert
