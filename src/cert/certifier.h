// The certifier seam: prepare/commit certification behind one interface.
//
// The paper's 2CM certifier orders commits by SN = (site clock ‖ site id ‖
// seq), generated at global-commit submission. That is one point in a
// design space: this interface factors every ordering decision the agent
// makes out of core::TwoPCAgent so alternative schemes plug in without
// touching the protocol machinery. Two implementations exist:
//
//  * cert::SnCertifier — the paper's scheme, verbatim: prepare-time
//    extension check against the committed SN high-water mark, alive
//    interval certification, and commit certification in SN order.
//  * cert::CsnCertifier — a commit-sequence-number log (XID → CSN, as in
//    PostgreSQL scale-out's csn_log): ordering numbers are assigned at
//    *decision* time from one global CsnSource, so they always agree with
//    decision causality and the prepare-time ordering refusal disappears;
//    the cost moves to commit time, where a decided subtransaction waits
//    for co-prepared peers that are still undecided.
//
// Both schemes share the alive-interval table (the basic certification of
// section 4.2 is ordering-scheme independent). See docs/DESIGN-SPACE.md
// for the full comparison and the refusal/blocking trade.

#ifndef HERMES_CERT_CERTIFIER_H_
#define HERMES_CERT_CERTIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/alive_intervals.h"
#include "core/cert_policy.h"
#include "core/serial_number.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::cert {

enum class CertifierKind : uint8_t {
  kSn = 0,   // serial numbers at submit time (the paper)
  kCsn = 1,  // commit sequence numbers at decision time (CSN log)
};

const char* CertifierKindName(CertifierKind kind);

// Global commit-sequence-number authority (the role PostgreSQL scale-out
// gives the GTM): one strictly monotonic counter shared by every
// coordinator of a federation, consulted at decision time. Owned by Mdbs —
// per simulation instance, so Driver::Run stays a pure function.
class CsnSource {
 public:
  int64_t Next() { return next_++; }
  int64_t last_assigned() const { return next_ - 1; }

 private:
  int64_t next_ = 1;
};

// Verdict of the prepare-time certification. `reason` carries a static
// message (the refusal Status the vote travels with); `detail`/`related`
// are trace context and are only built when the caller asks for them, so
// the hot path never constructs strings with tracing disabled.
struct PrepareOutcome {
  bool admit = true;
  trace::RefuseKind refuse = trace::RefuseKind::kNone;
  Status reason;
  std::string detail;
  std::vector<TxnId> related;
};

class Certifier {
 public:
  explicit Certifier(core::CertPolicy policy) : policy_(policy) {}
  virtual ~Certifier() = default;

  Certifier(const Certifier&) = delete;
  Certifier& operator=(const Certifier&) = delete;

  virtual CertifierKind kind() const = 0;

  // Prepare-time certification of `candidate` under the configured policy:
  // the scheme's ordering admission check (SN: extension against the
  // committed high-water mark; CSN: snapshot visibility of recent commits)
  // followed by the shared basic alive-interval test. Pure — does not
  // mutate the prepared set. `resubmission` is the subtransaction's local
  // incarnation index; `want_detail` requests the trace strings.
  virtual PrepareOutcome CertifyPrepare(const TxnId& gtid,
                                        const core::SerialNumber& sn,
                                        const core::AliveInterval& candidate,
                                        int resubmission,
                                        bool want_detail) = 0;

  // Admission: the subtransaction enters the prepared set with its
  // certified alive interval. Also used during agent recovery to re-enter
  // in-doubt subtransactions.
  virtual void OnPrepared(const TxnId& gtid,
                          const core::AliveInterval& interval,
                          const core::SerialNumber& sn) = 0;

  // The global COMMIT decision arrived for a prepared subtransaction.
  // `csn` is the decision-time commit sequence number carried by the
  // DecisionMsg (-1 under the SN scheme, where none travels).
  virtual void OnCommitDecision(const TxnId& gtid, int64_t csn) {
    (void)gtid;
    (void)csn;
  }

  // Commit-order certification: may `gtid` perform its local commit now?
  // When refused, `waiting_on` (nullable; trace context) receives the
  // prepared peers the retry is waiting for.
  virtual bool CertifyCommit(const TxnId& gtid,
                             std::vector<TxnId>* waiting_on) = 0;

  // The local commit was performed at `now`: update the ordering state
  // (SN: high-water mark; CSN: force-append the XID→CSN record) and drop
  // the prepared entry.
  virtual void OnCommitted(const TxnId& gtid, const core::SerialNumber& sn,
                           sim::Time now) = 0;

  // The subtransaction left the prepared set without committing (refusal
  // or global rollback).
  virtual void OnRemoved(const TxnId& gtid) { table_.Remove(gtid); }

  // Site crash: all volatile certification state is lost. Durable state
  // (the CSN log) survives, mirroring the agent log.
  virtual void Crash() { table_ = core::AliveIntervalTable(); }

  // Replays the scheme's own durable state after a crash. Called before
  // the agent re-enters in-doubt subtransactions.
  virtual void Recover() {}

  // Agent-log-driven replay: a subtransaction whose prepare record has a
  // matching completion record committed here before the crash.
  virtual void OnRecoveredCommitted(const TxnId& gtid,
                                    const core::SerialNumber& sn) {
    (void)gtid;
    (void)sn;
  }

  // SN scheme: largest committed serial number (invalid under CSN).
  virtual core::SerialNumber committed_high_water() const { return {}; }

  core::CertPolicy policy() const { return policy_; }

  // Shared alive-interval machinery; the agent refreshes entries of
  // currently-alive peers before each CertifyPrepare.
  core::AliveIntervalTable& table() { return table_; }
  const core::AliveIntervalTable& table() const { return table_; }

 protected:
  core::CertPolicy policy_;
  core::AliveIntervalTable table_;
};

std::unique_ptr<Certifier> MakeCertifier(CertifierKind kind,
                                         core::CertPolicy policy);

}  // namespace hermes::cert

#endif  // HERMES_CERT_CERTIFIER_H_
