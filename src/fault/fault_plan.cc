#include "fault/fault_plan.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str.h"

namespace hermes::fault {

namespace {

constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kCrashSite, FaultKind::kRecoverSite, FaultKind::kPartition,
    FaultKind::kHeal,      FaultKind::kLossBurst,   FaultKind::kAddSite,
    FaultKind::kRemoveSite, FaultKind::kReplaceSite};

constexpr TriggerKind kAllTriggerKinds[] = {TriggerKind::kAtTime,
                                            TriggerKind::kOnPrepared};

// loss_prob is encoded in permille so the JSON stays integer-only (the
// repo's parsers never deal in floating point text).
int64_t ToPermille(double p) {
  return static_cast<int64_t>(p * 1000.0 + (p >= 0 ? 0.5 : -0.5));
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashSite:
      return "crash_site";
    case FaultKind::kRecoverSite:
      return "recover_site";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kLossBurst:
      return "loss_burst";
    case FaultKind::kAddSite:
      return "add_site";
    case FaultKind::kRemoveSite:
      return "remove_site";
    case FaultKind::kReplaceSite:
      return "replace_site";
  }
  return "?";
}

const char* TriggerKindName(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kAtTime:
      return "at_time";
    case TriggerKind::kOnPrepared:
      return "on_prepared";
  }
  return "?";
}

std::string FaultEvent::ToJson() const {
  std::string out = "{";
  StrAppend(out, "\"kind\":\"", FaultKindName(kind), "\"");
  StrAppend(out, ",\"trigger\":\"", TriggerKindName(trigger), "\"");
  if (trigger == TriggerKind::kAtTime) {
    StrAppend(out, ",\"at\":", at);
  } else {
    StrAppend(out, ",\"watch_site\":", watch_site, ",\"nth\":", nth);
  }
  if (site != kInvalidSite) StrAppend(out, ",\"site\":", site);
  if (peer != kInvalidSite) StrAppend(out, ",\"peer\":", peer);
  if (duration != 0) StrAppend(out, ",\"duration\":", duration);
  if (kind == FaultKind::kLossBurst) {
    StrAppend(out, ",\"loss_permille\":", ToPermille(loss_prob));
  }
  out += "}";
  return out;
}

std::string FaultPlan::ToJsonl() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    out += ev.ToJson();
    out += '\n';
  }
  return out;
}

namespace {

// Single-line parser mirroring trace::ParseJsonl's hand-rolled style.
class EventParser {
 public:
  explicit EventParser(std::string_view line) : in_(line) {}

  Status Parse(FaultEvent& out) {
    SkipSpace();
    if (!Consume('{')) return Err("expected '{'");
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      Status s = ParseString(key);
      if (!s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      SkipSpace();
      s = ParseValue(key, out);
      if (!s.ok()) return s;
      SkipSpace();
      if (Consume('}')) break;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
    SkipSpace();
    if (pos_ != in_.size()) return Err("trailing characters");
    return Status::Ok();
  }

 private:
  Status ParseValue(const std::string& key, FaultEvent& out) {
    if (key == "kind") {
      std::string name;
      Status s = ParseString(name);
      if (!s.ok()) return s;
      for (FaultKind k : kAllFaultKinds) {
        if (name == FaultKindName(k)) {
          out.kind = k;
          return Status::Ok();
        }
      }
      return Err(StrCat("unknown fault kind: ", name));
    }
    if (key == "trigger") {
      std::string name;
      Status s = ParseString(name);
      if (!s.ok()) return s;
      for (TriggerKind k : kAllTriggerKinds) {
        if (name == TriggerKindName(k)) {
          out.trigger = k;
          return Status::Ok();
        }
      }
      return Err(StrCat("unknown trigger kind: ", name));
    }
    if (key == "at") return ParseInt(out.at);
    if (key == "watch_site") return ParseInt32(out.watch_site);
    if (key == "nth") return ParseInt32(out.nth);
    if (key == "site") return ParseInt32(out.site);
    if (key == "peer") return ParseInt32(out.peer);
    if (key == "duration") return ParseInt(out.duration);
    if (key == "loss_permille") {
      int64_t permille = 0;
      Status s = ParseInt(permille);
      if (!s.ok()) return s;
      out.loss_prob = static_cast<double>(permille) / 1000.0;
      return Status::Ok();
    }
    return Err(StrCat("unknown key: ", key));
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) return Err("expected '\"'");
    out.clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return Status::Ok();
      out += c;  // fault-plan strings are bare identifiers, never escaped
    }
    return Err("unterminated string");
  }

  Status ParseInt(int64_t& out) {
    const size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') ++pos_;
    if (pos_ == start) return Err("expected integer");
    try {
      out = std::stoll(std::string(in_.substr(start, pos_ - start)));
    } catch (...) {
      return Err("integer out of range");
    }
    return Status::Ok();
  }

  Status ParseInt32(int32_t& out) {
    int64_t v = 0;
    Status s = ParseInt(v);
    if (!s.ok()) return s;
    out = static_cast<int32_t>(v);
    return Status::Ok();
  }

  void SkipSpace() {
    while (pos_ < in_.size() && (in_[pos_] == ' ' || in_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(std::string msg) const {
    return Status::InvalidArgument(
        StrCat("fault plan at offset ", pos_, ": ", msg));
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    ++line_no;
    start = end + 1;
    if (line.empty()) continue;
    FaultEvent ev;
    const Status s = EventParser(line).Parse(ev);
    if (!s.ok()) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": ", s.message()));
    }
    plan.events.push_back(ev);
  }
  return plan;
}

FaultPlan GenerateChaosPlan(uint64_t seed, const ChaosOptions& opts) {
  FaultPlan plan;
  Rng rng(seed);
  const int sites = std::max(opts.num_sites, 1);
  const auto draw_time = [&]() -> sim::Time {
    return opts.horizon > 0
               ? static_cast<sim::Time>(
                     rng.NextUint64(static_cast<uint64_t>(opts.horizon)))
               : 0;
  };
  const auto draw_downtime = [&]() -> sim::Duration {
    if (opts.max_downtime <= opts.min_downtime) return opts.min_downtime;
    return rng.NextInt(opts.min_downtime, opts.max_downtime);
  };
  const auto draw_pair = [&](SiteId& a, SiteId& b) {
    a = static_cast<SiteId>(rng.NextUint64(static_cast<uint64_t>(sites)));
    b = static_cast<SiteId>(
        rng.NextUint64(static_cast<uint64_t>(std::max(sites - 1, 1))));
    if (b >= a) ++b;
    if (sites < 2) b = a;
  };

  for (int i = 0; i < opts.crashes; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kCrashSite;
    ev.site = static_cast<SiteId>(
        rng.NextUint64(static_cast<uint64_t>(sites)));
    ev.duration = draw_downtime();
    if (rng.NextBool(opts.triggered_fraction)) {
      ev.trigger = TriggerKind::kOnPrepared;
      ev.watch_site = ev.site;
      ev.nth = static_cast<int32_t>(1 + rng.NextUint64(3));
    } else {
      ev.trigger = TriggerKind::kAtTime;
      ev.at = draw_time();
    }
    plan.events.push_back(ev);
  }
  for (int i = 0; i < opts.partitions && sites >= 2; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kPartition;
    ev.trigger = TriggerKind::kAtTime;
    ev.at = draw_time();
    draw_pair(ev.site, ev.peer);
    ev.duration = draw_downtime();
    plan.events.push_back(ev);
  }
  for (int i = 0; i < opts.loss_bursts && sites >= 2; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kLossBurst;
    ev.trigger = TriggerKind::kAtTime;
    ev.at = draw_time();
    draw_pair(ev.site, ev.peer);
    ev.duration = draw_downtime();
    ev.loss_prob = 0.3 + 0.7 * rng.NextDouble();
    plan.events.push_back(ev);
  }
  // Membership churn last, so plans without it (reconfigs == 0) consume
  // exactly the historical number of randoms.
  for (int i = 0; i < opts.reconfigs; ++i) {
    FaultEvent ev;
    const uint64_t pick = rng.NextUint64(3);
    ev.kind = pick == 0   ? FaultKind::kAddSite
              : pick == 1 ? FaultKind::kRemoveSite
                          : FaultKind::kReplaceSite;
    ev.trigger = TriggerKind::kAtTime;
    ev.at = draw_time();
    if (ev.kind != FaultKind::kAddSite) {
      const SiteId lo = std::min<SiteId>(std::max<SiteId>(
          opts.reconfig_min_site, 0), static_cast<SiteId>(sites - 1));
      ev.site = lo + static_cast<SiteId>(rng.NextUint64(
          static_cast<uint64_t>(std::max(sites - lo, 1))));
    }
    plan.events.push_back(ev);
  }
  // Deterministic, readable order: timed events by firing time, triggered
  // ones after (stable within each class).
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     const bool at_a = a.trigger == TriggerKind::kAtTime;
                     const bool at_b = b.trigger == TriggerKind::kAtTime;
                     if (at_a != at_b) return at_a;
                     return at_a && a.at < b.at;
                   });
  return plan;
}

}  // namespace hermes::fault
