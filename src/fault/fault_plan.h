// Declarative fault plans for chaos experiments.
//
// A FaultPlan is a deterministic schedule of fault events — site crashes,
// recoveries, partitions, heals and loss bursts — fired either at a fixed
// virtual time or when a watched protocol state is reached (e.g. "crash the
// coordinator's site right after the first subtransaction there votes
// READY", the classic lost-decision window). Plans are pure data: they can
// be generated from a seed (GenerateChaosPlan), round-tripped through JSONL
// (ToJsonl / ParseFaultPlan) and attached to a workload configuration; the
// injector in fault/injector.h wires a plan into an assembled Mdbs.

#ifndef HERMES_FAULT_FAULT_PLAN_H_
#define HERMES_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "sim/event_loop.h"

namespace hermes::fault {

enum class FaultKind : uint8_t {
  kCrashSite,    // Mdbs::CrashSite(site, duration): both roles fail;
                 // duration 0 = instant recovery, <0 = until kRecoverSite
  kRecoverSite,  // Mdbs::RecoverSite(site)
  kPartition,    // drop all site<->peer traffic for `duration`
  kHeal,         // end an ongoing site<->peer partition early
  kLossBurst,    // site<->peer loss probability `loss_prob` for `duration`
  // Membership churn: Mdbs::StartReconfig (sharded runs only; dropped
  // best-effort when sharding is off, the controller is busy or the
  // target is invalid). `site` is the remove/replace target; unused
  // for kAddSite.
  kAddSite,
  kRemoveSite,
  kReplaceSite,
};

enum class TriggerKind : uint8_t {
  kAtTime,      // fire at virtual time `at`
  kOnPrepared,  // fire when `watch_site`'s agent reports its `nth`
                // subtransaction entering the prepared state (1-based)
};

struct FaultEvent {
  FaultKind kind = FaultKind::kCrashSite;
  TriggerKind trigger = TriggerKind::kAtTime;
  sim::Time at = 0;                  // kAtTime
  SiteId watch_site = kInvalidSite;  // kOnPrepared
  int32_t nth = 1;                   // kOnPrepared
  SiteId site = kInvalidSite;  // target site / first end of the link
  SiteId peer = kInvalidSite;  // second end (partition / heal / loss burst)
  sim::Duration duration = 0;  // downtime / window length
  double loss_prob = 1.0;      // kLossBurst only

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) = default;

  // One-line JSON object; fixed field order, default fields omitted.
  std::string ToJson() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  friend bool operator==(const FaultPlan& a, const FaultPlan& b) = default;

  // One JSON object per line, in event order (round-trips through
  // ParseFaultPlan).
  std::string ToJsonl() const;
};

const char* FaultKindName(FaultKind kind);
const char* TriggerKindName(TriggerKind kind);

// Parses the ToJsonl encoding. Unknown keys are rejected; blank lines are
// skipped.
Result<FaultPlan> ParseFaultPlan(const std::string& text);

// Tuning of the seeded plan generator. The defaults give a mild plan; the
// chaos sweep scales `crashes` as its intensity axis.
struct ChaosOptions {
  int num_sites = 3;
  // Events are drawn uniformly in [0, horizon).
  sim::Time horizon = 5 * sim::kSecond;
  int crashes = 2;
  int partitions = 1;
  int loss_bursts = 1;
  sim::Duration min_downtime = 100 * sim::kMillisecond;
  sim::Duration max_downtime = 800 * sim::kMillisecond;
  // Fraction of crashes converted into kOnPrepared triggers (crash the
  // watched site right after a local prepare — the lost-decision window).
  double triggered_fraction = 0.25;
  // Membership churn (E15/E19): number of add/remove/replace events, drawn
  // uniformly over the three kinds. 0 draws no extra randoms, so existing
  // seeds replay byte-identically.
  int reconfigs = 0;
  // Remove/replace targets are drawn from [reconfig_min_site, num_sites);
  // the default spares site 0, the usual coordinator of scripted
  // scenarios (Paxos acceptors are additionally protected by the
  // controller itself).
  SiteId reconfig_min_site = 1;
};

// Deterministic: the same (seed, options) always yields the same plan.
FaultPlan GenerateChaosPlan(uint64_t seed, const ChaosOptions& opts);

}  // namespace hermes::fault

#endif  // HERMES_FAULT_FAULT_PLAN_H_
