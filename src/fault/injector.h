// Wires a declarative FaultPlan into an assembled Mdbs.
//
// Time-triggered events are scheduled on the event loop; state-triggered
// ones (kOnPrepared) install prepared hooks on the watched site's agent via
// add_prepared_hook, composing with any test hooks already present. Every
// firing is deferred through ScheduleAfter(0): a trigger observed inside a
// protocol handler (the agent's OnPrepare) must never crash the component
// it is executing in.

#ifndef HERMES_FAULT_INJECTOR_H_
#define HERMES_FAULT_INJECTOR_H_

#include "core/mdbs.h"
#include "fault/fault_plan.h"
#include "trace/trace.h"

namespace hermes::fault {

// `tracer` may be null (no kFaultEvent records). The plan is copied; `mdbs`
// must outlive the run.
void InstallFaultPlan(const FaultPlan& plan, core::Mdbs* mdbs,
                      trace::Tracer* tracer = nullptr);

}  // namespace hermes::fault

#endif  // HERMES_FAULT_INJECTOR_H_
