#include "fault/injector.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

namespace hermes::fault {

namespace {

void Fire(const FaultEvent& ev, core::Mdbs* mdbs, trace::Tracer* tracer) {
  if (tracer != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kFaultEvent;
    e.site = ev.site;
    e.peer = ev.peer;
    e.detail = FaultKindName(ev.kind);
    e.value = ev.duration;
    tracer->Record(std::move(e));
  }
  sim::EventLoop* loop = mdbs->loop();
  switch (ev.kind) {
    case FaultKind::kCrashSite:
      mdbs->CrashSite(ev.site, ev.duration);
      break;
    case FaultKind::kRecoverSite:
      mdbs->RecoverSite(ev.site);
      break;
    case FaultKind::kPartition:
      mdbs->network().Partition(ev.site, ev.peer, loop->Now() + ev.duration);
      break;
    case FaultKind::kHeal:
      // Shrinking the window to "now" ends the partition immediately.
      mdbs->network().Partition(ev.site, ev.peer, loop->Now());
      break;
    case FaultKind::kLossBurst:
      mdbs->network().SetLinkLoss(ev.site, ev.peer, ev.loss_prob);
      mdbs->network().SetLinkLoss(ev.peer, ev.site, ev.loss_prob);
      loop->ScheduleAfter(std::max<sim::Duration>(ev.duration, 0),
                          [mdbs, a = ev.site, b = ev.peer]() {
                            mdbs->network().ClearLinkLoss(a, b);
                            mdbs->network().ClearLinkLoss(b, a);
                          });
      break;
    case FaultKind::kAddSite:
    case FaultKind::kRemoveSite:
    case FaultKind::kReplaceSite: {
      shard::ReconfigOp op;
      op.kind = ev.kind == FaultKind::kAddSite
                    ? shard::ReconfigKind::kAddSite
                : ev.kind == FaultKind::kRemoveSite
                    ? shard::ReconfigKind::kRemoveSite
                    : shard::ReconfigKind::kReplaceSite;
      op.site = ev.site;
      // Best-effort: sharding disabled, a busy controller or an invalid
      // target silently drops the event — chaos plans are requests, not
      // invariants (the kFaultEvent trace above still marks the attempt).
      (void)mdbs->StartReconfig(op);
      break;
    }
  }
}

// State of one kOnPrepared trigger: counts down prepares at the watched
// site, fires once.
struct Watch {
  FaultEvent ev;
  int32_t remaining = 1;
  bool fired = false;
};

}  // namespace

void InstallFaultPlan(const FaultPlan& plan, core::Mdbs* mdbs,
                      trace::Tracer* tracer) {
  sim::EventLoop* loop = mdbs->loop();
  auto watches = std::make_shared<std::map<SiteId, std::vector<Watch>>>();
  for (const FaultEvent& ev : plan.events) {
    if (ev.trigger == TriggerKind::kAtTime) {
      const sim::Duration delay =
          ev.at > loop->Now() ? ev.at - loop->Now() : 0;
      loop->ScheduleAfter(delay,
                          [ev, mdbs, tracer]() { Fire(ev, mdbs, tracer); });
    } else {
      if (ev.watch_site == kInvalidSite ||
          ev.watch_site >= mdbs->num_sites()) {
        continue;
      }
      (*watches)[ev.watch_site].push_back(
          Watch{ev, std::max<int32_t>(ev.nth, 1)});
    }
  }
  for (auto& [site, list] : *watches) {
    (void)list;
    mdbs->agent(site)->add_prepared_hook(
        [watches, site, mdbs, loop, tracer](const TxnId&, LtmTxnHandle) {
          for (Watch& w : (*watches)[site]) {
            if (w.fired) continue;
            if (--w.remaining > 0) continue;
            w.fired = true;
            const FaultEvent ev = w.ev;
            // Defer: this hook runs inside OnPrepare, and firing may crash
            // the very site whose agent is mid-handler.
            loop->ScheduleAfter(
                0, [ev, mdbs, tracer]() { Fire(ev, mdbs, tracer); });
          }
        });
  }
}

}  // namespace hermes::fault
