#include "history/view_checker.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/str.h"
#include "history/projection.h"

namespace hermes::history {

namespace {


// A serial candidate: ops grouped by transaction, groups concatenated in the
// candidate order, each group preserving its in-history op order.
std::vector<const Op*> SerialLayout(
    const std::map<TxnId, std::vector<const Op*>>& groups,
    const std::vector<TxnId>& order) {
  std::vector<const Op*> out;
  for (const TxnId& t : order) {
    const auto& g = groups.at(t);
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

// True when `candidate` replays with exactly the recorded reads-from and the
// same final versions as the actual execution.
bool Equivalent(const std::vector<const Op*>& candidate,
                const std::map<uint64_t, db::VersionTag>& recorded_reads,
                const std::map<ItemId, db::VersionTag>& actual_finals,
                std::string* mismatch) {
  const ReplayOutcome r = Replay(candidate);
  for (const auto& [seq, tag] : recorded_reads) {
    auto it = r.reads_from.find(seq);
    assert(it != r.reads_from.end());
    if (!(it->second == tag)) {
      if (mismatch != nullptr) {
        *mismatch = StrCat("read op#", seq, " observed ", tag.ToString(),
                           " in H but ", it->second.ToString(),
                           " in the serial order");
      }
      return false;
    }
  }
  for (const auto& [item, tag] : actual_finals) {
    auto it = r.final_versions.find(item);
    const db::VersionTag serial_tag =
        it == r.final_versions.end() ? db::VersionTag{} : it->second;
    if (!(serial_tag == tag)) {
      if (mismatch != nullptr) {
        *mismatch = StrCat("final write of ", item.ToString(), " is ",
                           tag.ToString(), " in H but ",
                           serial_tag.ToString(), " in the serial order");
      }
      return false;
    }
  }
  return true;
}

}  // namespace

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kSerializable:
      return "VIEW-SERIALIZABLE";
    case Verdict::kNotSerializable:
      return "NOT-VIEW-SERIALIZABLE";
    case Verdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

ReplayOutcome Replay(const std::vector<const Op*>& ops) {
  ReplayOutcome out;
  struct Version {
    SubTxnId owner;
    db::VersionTag tag;
  };
  std::map<ItemId, std::vector<Version>> stacks;
  for (const Op* op : ops) {
    switch (op->kind) {
      case OpKind::kRead: {
        const auto it = stacks.find(op->item);
        out.reads_from[op->seq] = (it == stacks.end() || it->second.empty())
                                      ? db::VersionTag{}
                                      : it->second.back().tag;
        break;
      }
      case OpKind::kWrite:
      case OpKind::kDelete:
        stacks[op->item].push_back(Version{op->subtxn, op->version});
        break;
      case OpKind::kLocalAbort: {
        // RR: the LDBS restores before-images of everything this local
        // subtransaction wrote.
        for (auto& [item, stack] : stacks) {
          if (item.site != op->site) continue;
          std::erase_if(stack, [&](const Version& v) {
            return v.owner == op->subtxn;
          });
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [item, stack] : stacks) {
    out.final_versions[item] =
        stack.empty() ? db::VersionTag{} : stack.back().tag;
  }
  return out;
}

std::string VerifyReplayMatchesRecorded(const std::vector<Op>& committed) {
  std::vector<const Op*> order;
  order.reserve(committed.size());
  for (const Op& op : committed) order.push_back(&op);
  const ReplayOutcome r = Replay(order);
  for (const Op& op : committed) {
    if (op.kind != OpKind::kRead) continue;
    auto it = r.reads_from.find(op.seq);
    if (it == r.reads_from.end()) {
      return StrCat("read op#", op.seq, " missing from replay");
    }
    if (!(it->second == op.version)) {
      return StrCat(op.ToString(), ": replay of C(H) observes ",
                    it->second.ToString(),
                    " — the execution read from a version outside the "
                    "committed projection");
    }
  }
  return "";
}

ViewCheckResult CheckViewSerializability(const std::vector<Op>& committed,
                                         size_t max_txns) {
  ViewCheckResult result;

  // Group ops by transaction; remember first-appearance order.
  std::map<TxnId, std::vector<const Op*>> groups;
  std::vector<TxnId> txns;
  for (const Op& op : committed) {
    auto [it, inserted] = groups.try_emplace(op.subtxn.txn);
    if (inserted) txns.push_back(op.subtxn.txn);
    it->second.push_back(&op);
  }
  if (txns.empty()) {
    result.verdict = Verdict::kSerializable;
    return result;
  }

  // Actual execution: recorded reads-from and final versions.
  std::map<uint64_t, db::VersionTag> recorded_reads;
  std::set<TxnId> committed_set(txns.begin(), txns.end());
  for (const Op& op : committed) {
    if (op.kind != OpKind::kRead) continue;
    recorded_reads[op.seq] = op.version;
    // A read from a version whose writer is excluded from C(H) can never be
    // reproduced by a serial order of C(H)'s transactions.
    if (!op.version.initial() &&
        committed_set.count(op.version.writer.txn) == 0) {
      result.verdict = Verdict::kNotSerializable;
      result.reason = StrCat(op.ToString(),
                             " reads from a transaction outside C(H)");
      return result;
    }
  }
  std::vector<const Op*> h_order;
  h_order.reserve(committed.size());
  for (const Op& op : committed) h_order.push_back(&op);
  const auto actual_finals = Replay(h_order).final_versions;

  std::string first_mismatch;
  auto try_order = [&](const std::vector<TxnId>& order) {
    ++result.orders_tried;
    std::string mismatch;
    if (Equivalent(SerialLayout(groups, order), recorded_reads, actual_finals,
                   &mismatch)) {
      result.verdict = Verdict::kSerializable;
      result.witness = order;
      return true;
    }
    if (first_mismatch.empty()) first_mismatch = std::move(mismatch);
    return false;
  };

  // Fast certificates first: a topological order of CG(C(H)) is the paper's
  // canonical view-serialization order; SG order covers conflict-
  // serializable histories.
  if (auto topo = BuildCommitOrderGraph(committed).TopologicalOrder()) {
    // CG only contains transactions with local commits; append any missing
    // (read-only at every site that failed to commit cannot happen in C(H),
    // but local transactions without commits are excluded anyway).
    std::set<TxnId> seen(topo->begin(), topo->end());
    for (const TxnId& t : txns) {
      if (seen.count(t) == 0) topo->push_back(t);
    }
    if (try_order(*topo)) return result;
  }
  if (auto topo = BuildSerializationGraph(committed).TopologicalOrder()) {
    if (try_order(*topo)) return result;
  }

  if (txns.size() > max_txns) {
    result.verdict = Verdict::kUnknown;
    result.reason = StrCat("too many transactions (", txns.size(),
                           ") for exhaustive search");
    return result;
  }

  std::vector<TxnId> order(txns);
  std::sort(order.begin(), order.end());
  do {
    if (try_order(order)) return result;
  } while (std::next_permutation(order.begin(), order.end()));

  result.verdict = Verdict::kNotSerializable;
  result.reason = StrCat("no serial order of ", txns.size(),
                         " transactions is view-equivalent (",
                         result.orders_tried, " orders tried); e.g. ",
                         first_mismatch);
  return result;
}

bool CommitGraphAcyclic(const std::vector<Op>& committed) {
  return !BuildCommitOrderGraph(committed).HasCycle();
}

}  // namespace hermes::history
