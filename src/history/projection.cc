#include "history/projection.h"

#include <algorithm>
#include <set>

#include "common/str.h"

namespace hermes::history {

std::map<TxnId, TxnFate> ClassifyTransactions(const std::vector<Op>& h) {
  std::map<TxnId, TxnFate> fates;
  for (const Op& op : h) {
    const TxnId& id = op.subtxn.txn;
    TxnFate& f = fates[id];
    if (!f.id.valid()) {
      f.id = id;
      f.global = id.global();
    }
    f.resubmissions = std::max(f.resubmissions, op.subtxn.resubmission);
    switch (op.kind) {
      case OpKind::kRead:
      case OpKind::kWrite:
      case OpKind::kDelete:
      case OpKind::kPrepare:
        f.sites.insert(op.site);
        break;
      case OpKind::kLocalCommit:
        f.committed_sites.insert(op.site);
        if (!f.global) f.committed = true;
        break;
      case OpKind::kLocalAbort:
        if (op.unilateral) ++f.unilateral_aborts;
        break;
      case OpKind::kGlobalCommit:
        f.committed = true;
        break;
      case OpKind::kGlobalAbort:
        f.committed = false;
        break;
      case OpKind::kMigrateOut:
        f.migrated_sites.insert(op.site);
        break;
    }
  }
  for (auto& [id, f] : fates) {
    if (f.global) {
      // Sites whose residue migrated away in a shard handoff owe no local
      // commit: the adopting site settles the outcome in their stead.
      std::set<SiteId> required;
      std::set_difference(f.sites.begin(), f.sites.end(),
                          f.migrated_sites.begin(), f.migrated_sites.end(),
                          std::inserter(required, required.begin()));
      f.complete =
          f.committed &&
          std::includes(f.committed_sites.begin(), f.committed_sites.end(),
                        required.begin(), required.end());
    } else {
      f.complete = f.committed;
    }
  }
  return fates;
}

std::vector<Op> CommittedProjection(const std::vector<Op>& h) {
  const auto fates = ClassifyTransactions(h);
  std::vector<Op> out;
  out.reserve(h.size());
  for (const Op& op : h) {
    auto it = fates.find(op.subtxn.txn);
    if (it != fates.end() && it->second.InCommittedProjection()) {
      out.push_back(op);
    }
  }
  return out;
}

std::string CheckOrderInvariant(const std::vector<Op>& h) {
  // Per global transaction: positions of prepares, global commit, local
  // commits.
  struct Marks {
    int64_t last_prepare = -1;
    int64_t global_commit = -1;
    int64_t first_local_commit = -1;
    std::set<SiteId> write_sites;
  };
  std::map<TxnId, Marks> marks;
  for (const Op& op : h) {
    if (!op.subtxn.txn.global()) continue;
    Marks& m = marks[op.subtxn.txn];
    const int64_t at = static_cast<int64_t>(op.seq);
    switch (op.kind) {
      case OpKind::kWrite:
      case OpKind::kDelete:
        m.write_sites.insert(op.site);
        break;
      case OpKind::kPrepare:
        // Resubmission never re-prepares, so every P op of a committed
        // transaction must precede its C_k.
        if (at > m.last_prepare) m.last_prepare = at;
        break;
      case OpKind::kGlobalCommit:
        m.global_commit = at;
        break;
      case OpKind::kLocalCommit:
        // A short-commit read-only participant commits locally at its READY
        // vote, before the coordinator's C_k: with no writes at that site
        // the early commit installs nothing, so only local commits at
        // *writing* sites are held to the after-C_k rule. (The site's
        // writes, if any, always precede its local commit in H, so the
        // write_sites set is complete by the time the commit is seen.)
        if (m.first_local_commit < 0 && m.write_sites.count(op.site) != 0) {
          m.first_local_commit = at;
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [txn, m] : marks) {
    if (m.global_commit < 0) continue;  // not committed: nothing to check
    if (m.last_prepare >= 0 && m.last_prepare > m.global_commit) {
      return StrCat("invariant (1) violated for ", txn.ToString(),
                    ": a prepare (op#", m.last_prepare,
                    ") follows the global commit (op#", m.global_commit,
                    ")");
    }
    if (m.first_local_commit >= 0 &&
        m.first_local_commit < m.global_commit) {
      return StrCat("invariant (1) violated for ", txn.ToString(),
                    ": local commit (op#", m.first_local_commit,
                    ") precedes the global commit (op#", m.global_commit,
                    ")");
    }
  }
  return "";
}

std::string CheckGlobalAtomicity(const std::vector<Op>& h) {
  // Final outcome of each (transaction, site): data ops and prepares re-open
  // the outcome (a resubmission after a unilateral abort), local commits and
  // aborts close it.
  enum class SiteOutcome : uint8_t {
    kPending,
    kCommitted,
    kAborted,            // rollback requested by the agent/coordinator
    kAbortedUnilateral,  // the LDBS aborted on its own (resubmittable)
    kMigrated,           // prepared residue left in a shard handoff
  };
  struct TxnState {
    bool global_commit = false;
    bool global_abort = false;
    std::map<SiteId, SiteOutcome> sites;
    std::set<SiteId> write_sites;
  };
  std::map<TxnId, TxnState> txns;
  for (const Op& op : h) {
    if (!op.subtxn.txn.global()) continue;
    TxnState& t = txns[op.subtxn.txn];
    switch (op.kind) {
      case OpKind::kWrite:
      case OpKind::kDelete:
        t.write_sites.insert(op.site);
        [[fallthrough]];
      case OpKind::kRead:
      case OpKind::kPrepare:
        t.sites[op.site] = SiteOutcome::kPending;
        break;
      case OpKind::kLocalCommit:
        t.sites[op.site] = SiteOutcome::kCommitted;
        break;
      case OpKind::kLocalAbort:
        t.sites[op.site] = op.unilateral ? SiteOutcome::kAbortedUnilateral
                                         : SiteOutcome::kAborted;
        break;
      case OpKind::kGlobalCommit:
        t.global_commit = true;
        break;
      case OpKind::kGlobalAbort:
        t.global_abort = true;
        break;
      case OpKind::kMigrateOut:
        // The residue left this site in a shard handoff: the outcome here
        // is settled by the adopting site, so the source is exempt from
        // both the commit-without-C_k and rollback-after-C_k rules.
        t.sites[op.site] = SiteOutcome::kMigrated;
        break;
    }
  }
  for (const auto& [id, t] : txns) {
    if (t.global_commit && t.global_abort) {
      return StrCat("atomicity violated for ", id.ToString(),
                    ": both C_k and A_k recorded");
    }
    for (const auto& [site, outcome] : t.sites) {
      // A locally-committed *write-free* subtransaction without C_k is the
      // short-commit read-only fast path, not an atomicity violation: its
      // early commit installed nothing, so there is nothing a global abort
      // would have to undo at that site.
      if (!t.global_commit && outcome == SiteOutcome::kCommitted &&
          t.write_sites.count(site) != 0) {
        return StrCat("atomicity violated for ", id.ToString(), ": site ",
                      site,
                      " committed locally without a global commit decision");
      }
      if (t.global_commit && outcome == SiteOutcome::kAborted) {
        return StrCat("atomicity violated for ", id.ToString(), ": site ",
                      site, " rolled back after the commit decision C_k");
      }
    }
  }
  return "";
}

std::vector<Op> SiteProjection(const std::vector<Op>& h, SiteId site) {
  std::vector<Op> out;
  for (const Op& op : h) {
    switch (op.kind) {
      case OpKind::kRead:
      case OpKind::kWrite:
      case OpKind::kDelete:
      case OpKind::kPrepare:
      case OpKind::kLocalCommit:
      case OpKind::kLocalAbort:
        if (op.site == site) out.push_back(op);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace hermes::history
