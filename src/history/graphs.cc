#include "history/graphs.h"

#include "common/str.h"

namespace hermes::history {

namespace {

bool IsWriteKind(OpKind k) {
  return k == OpKind::kWrite || k == OpKind::kDelete;
}
bool IsDataKind(OpKind k) { return IsWriteKind(k) || k == OpKind::kRead; }

enum class VisitState : uint8_t { kUnvisited, kInProgress, kDone };

// DFS cycle search returning the cycle path when found.
bool Dfs(const std::map<TxnId, std::set<TxnId>>& adj, const TxnId& node,
         std::map<TxnId, VisitState>& state, std::vector<TxnId>& stack,
         std::vector<TxnId>& cycle) {
  state[node] = VisitState::kInProgress;
  stack.push_back(node);
  auto it = adj.find(node);
  if (it != adj.end()) {
    for (const TxnId& next : it->second) {
      const VisitState s = state.count(next) ? state[next]
                                             : VisitState::kUnvisited;
      if (s == VisitState::kInProgress) {
        // Extract cycle from stack.
        auto start = std::find(stack.begin(), stack.end(), next);
        cycle.assign(start, stack.end());
        cycle.push_back(next);
        return true;
      }
      if (s == VisitState::kUnvisited &&
          Dfs(adj, next, state, stack, cycle)) {
        return true;
      }
    }
  }
  stack.pop_back();
  state[node] = VisitState::kDone;
  return false;
}

}  // namespace

void TxnGraph::AddNode(const TxnId& id) { adj_[id]; }

void TxnGraph::AddEdge(const TxnId& from, const TxnId& to) {
  if (from == to) return;
  adj_[from].insert(to);
  adj_[to];
}

bool TxnGraph::HasEdge(const TxnId& from, const TxnId& to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.count(to) != 0;
}

size_t TxnGraph::edge_count() const {
  size_t n = 0;
  for (const auto& [node, out] : adj_) n += out.size();
  return n;
}

bool TxnGraph::HasCycle() const { return FindCycle().has_value(); }

std::optional<std::vector<TxnId>> TxnGraph::FindCycle() const {
  std::map<TxnId, VisitState> state;
  std::vector<TxnId> stack, cycle;
  for (const auto& [node, out] : adj_) {
    if (state.count(node) == 0 || state[node] == VisitState::kUnvisited) {
      if (Dfs(adj_, node, state, stack, cycle)) return cycle;
      stack.clear();
    }
  }
  return std::nullopt;
}

std::optional<std::vector<TxnId>> TxnGraph::TopologicalOrder() const {
  std::map<TxnId, int> indegree;
  for (const auto& [node, out] : adj_) indegree[node];
  for (const auto& [node, out] : adj_) {
    for (const TxnId& t : out) ++indegree[t];
  }
  std::vector<TxnId> ready;
  for (const auto& [node, d] : indegree) {
    if (d == 0) ready.push_back(node);
  }
  std::vector<TxnId> order;
  order.reserve(adj_.size());
  while (!ready.empty()) {
    // Pop the smallest id for determinism.
    auto min_it = std::min_element(ready.begin(), ready.end());
    TxnId node = *min_it;
    ready.erase(min_it);
    order.push_back(node);
    auto it = adj_.find(node);
    if (it != adj_.end()) {
      for (const TxnId& t : it->second) {
        if (--indegree[t] == 0) ready.push_back(t);
      }
    }
  }
  if (order.size() != adj_.size()) return std::nullopt;
  return order;
}

std::string TxnGraph::ToString() const {
  std::string out;
  for (const auto& [node, edges] : adj_) {
    StrAppend(out, node.ToString(), " -> {");
    bool first = true;
    for (const TxnId& t : edges) {
      if (!first) out += ", ";
      first = false;
      out += t.ToString();
    }
    out += "}\n";
  }
  return out;
}

TxnGraph BuildSerializationGraph(const std::vector<Op>& ops) {
  TxnGraph g;
  // Group data ops per item, in order.
  std::map<ItemId, std::vector<const Op*>> per_item;
  for (const Op& op : ops) {
    if (IsDataKind(op.kind)) per_item[op.item].push_back(&op);
    g.AddNode(op.subtxn.txn);
  }
  for (const auto& [item, item_ops] : per_item) {
    for (size_t i = 0; i < item_ops.size(); ++i) {
      for (size_t j = i + 1; j < item_ops.size(); ++j) {
        const Op& a = *item_ops[i];
        const Op& b = *item_ops[j];
        if (a.subtxn.txn == b.subtxn.txn) continue;
        if (IsWriteKind(a.kind) || IsWriteKind(b.kind)) {
          g.AddEdge(a.subtxn.txn, b.subtxn.txn);
        }
      }
    }
  }
  return g;
}

TxnGraph BuildCommitOrderGraph(const std::vector<Op>& ops) {
  TxnGraph g;
  // Transactions whose prepared residue left a site in a shard handoff
  // (kMigrateOut) commit at the adopting site when the carried decision
  // lands — an instant dictated by the handoff, not by the adopter's
  // SN-certified commit order — so the per-site total-order invariant does
  // not apply to them. They stay in C(H) and are still judged by the
  // atomicity, replay and view-serializability oracles.
  std::set<TxnId> migrated;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kMigrateOut) migrated.insert(op.subtxn.txn);
  }
  // Per site, the sequence of local commits in order.
  std::map<SiteId, std::vector<TxnId>> commits;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kLocalCommit) {
      if (migrated.count(op.subtxn.txn) != 0) continue;
      commits[op.site].push_back(op.subtxn.txn);
      g.AddNode(op.subtxn.txn);
    }
  }
  for (const auto& [site, seq] : commits) {
    for (size_t i = 0; i < seq.size(); ++i) {
      for (size_t j = i + 1; j < seq.size(); ++j) {
        g.AddEdge(seq[i], seq[j]);
      }
    }
  }
  return g;
}

}  // namespace hermes::history
