// View-serializability oracle.
//
// Implements the paper's correctness criterion: the committed projection
// C(H) — which includes unilaterally aborted local subtransactions of
// committed complete global transactions — must be view equivalent to some
// serial history containing the same transaction histories H(T_k).
//
// Equivalence is decided on (a) the reads-from relation, computed with full
// rollback semantics (a local abort A^s_kj undoes the subtransaction's
// writes, per the RR assumption), and (b) the final versions of all items.
// The exact check enumerates serial orders (feasible for the scripted
// scenario histories and small property-test runs); topological orders of
// CG(H) and SG(H) are tried first since the paper proves a CG-topological
// order is a view-serialization order.

#ifndef HERMES_HISTORY_VIEW_CHECKER_H_
#define HERMES_HISTORY_VIEW_CHECKER_H_

#include <map>
#include <string>
#include <vector>

#include "history/graphs.h"
#include "history/op.h"

namespace hermes::history {

enum class Verdict {
  kSerializable,
  kNotSerializable,
  // Too many transactions for the exact check and the fast certificates
  // failed; use CommitGraphAcyclic for large histories.
  kUnknown,
};

const char* VerdictName(Verdict v);

struct ViewCheckResult {
  Verdict verdict = Verdict::kUnknown;
  // Set when kSerializable: an equivalent serial order of transactions.
  std::vector<TxnId> witness;
  // Set when kNotSerializable: human-readable explanation (first
  // inequivalence found, checked orders count).
  std::string reason;
  // Number of serial orders examined.
  uint64_t orders_tried = 0;
};

// Outcome of replaying an operation sequence with rollback semantics.
struct ReplayOutcome {
  // op.seq of each read -> version observed in the replay.
  std::map<uint64_t, db::VersionTag> reads_from;
  // Last surviving version per item at the end.
  std::map<ItemId, db::VersionTag> final_versions;
};

// Replays `ops` (in the given order) maintaining per-item version stacks;
// kLocalAbort removes the aborting subtransaction's versions (RR).
ReplayOutcome Replay(const std::vector<const Op*>& ops);

// Self-check of the recording pipeline: replaying C(H) in history order must
// observe exactly the version tags the execution actually recorded, provided
// no transaction read from a version that C(H) excludes (dirty read). The
// returned string is empty on success, else a description of the mismatch.
std::string VerifyReplayMatchesRecorded(const std::vector<Op>& committed);

// The exact view-serializability check over a committed projection.
// `max_txns` bounds the permutation search.
ViewCheckResult CheckViewSerializability(const std::vector<Op>& committed,
                                         size_t max_txns = 9);

// The paper's polynomial sufficient condition (Theorem 19 of the companion
// report): CG(C(H)) acyclic => H view serializable (assuming CI and DLU held
// during execution).
bool CommitGraphAcyclic(const std::vector<Op>& committed);

}  // namespace hermes::history

#endif  // HERMES_HISTORY_VIEW_CHECKER_H_
