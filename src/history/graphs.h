// Serialization graph SG(H) and commit order graph CG(H).
//
// SG(H) is the classical conflict graph over the committed projection (the
// paper notes SG(H) may be cyclic while H is still view serializable, which
// is why view serializability is the ultimate criterion). CG(H) is the
// paper's section-5 instrument: nodes are transactions with at least one
// local commit; there is an arc T_k -> T_i iff some site commits a
// subtransaction of T_k before one of T_i. Acyclicity of CG(C(H)) is the
// paper's sufficient condition for view serializability (under CI and DLU).

#ifndef HERMES_HISTORY_GRAPHS_H_
#define HERMES_HISTORY_GRAPHS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "history/op.h"

namespace hermes::history {

class TxnGraph {
 public:
  void AddNode(const TxnId& id);
  void AddEdge(const TxnId& from, const TxnId& to);

  bool HasNode(const TxnId& id) const { return adj_.count(id) != 0; }
  bool HasEdge(const TxnId& from, const TxnId& to) const;

  size_t node_count() const { return adj_.size(); }
  size_t edge_count() const;

  bool HasCycle() const;
  // Any cycle as a node sequence (first == last); nullopt when acyclic.
  std::optional<std::vector<TxnId>> FindCycle() const;
  // Topological order; nullopt when cyclic.
  std::optional<std::vector<TxnId>> TopologicalOrder() const;

  const std::map<TxnId, std::set<TxnId>>& adjacency() const { return adj_; }

  std::string ToString() const;

 private:
  std::map<TxnId, std::set<TxnId>> adj_;
};

// Conflict serialization graph over `ops` (pass a committed projection for
// SG(C(H))). Edge T_a -> T_b for each pair of conflicting elementary ops
// (same item, at least one write/delete, different transactions) with the
// T_a op earlier in the sequence.
TxnGraph BuildSerializationGraph(const std::vector<Op>& ops);

// Commit order graph per section 5.1.
TxnGraph BuildCommitOrderGraph(const std::vector<Op>& ops);

}  // namespace hermes::history

#endif  // HERMES_HISTORY_GRAPHS_H_
