// Operations of the paper's history model (section 3).
//
// A history H is a linear sequence of:
//   R_kj[X^s], W_kj[X^s]  — elementary reads/writes at the EI of site s by
//                           the j-th local subtransaction of transaction k,
//   P^s_k                 — the 2PC agent at s moved T^s_k to prepared,
//   C^s_kj / A^s_kj       — local commit/abort of a local subtransaction,
//   C_k / A_k             — the global commit/abort decision of T_k.
//
// Reads carry the provenance (VersionTag) of the version actually observed;
// the view-serializability oracle compares this reads-from relation against
// serial replays.

#ifndef HERMES_HISTORY_OP_H_
#define HERMES_HISTORY_OP_H_

#include <cstdint>
#include <string>

#include "common/ids.h"
#include "db/table.h"
#include "sim/event_loop.h"

namespace hermes::history {

enum class OpKind : uint8_t {
  kRead,
  kWrite,        // update/insert (produces a live version)
  kDelete,       // write producing a tombstone
  kPrepare,      // P^s_k
  kLocalCommit,  // C^s_kj
  kLocalAbort,   // A^s_kj
  kGlobalCommit,  // C_k
  kGlobalAbort,   // A_k
  kMigrateOut,    // M^s_kj: the subtransaction's prepared residue left site
                  // s in a shard handoff; the site's local outcome is
                  // settled by the adopting site instead
};

const char* OpKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kRead;
  // The local subtransaction performing the op. For global-level ops
  // (kGlobalCommit/kGlobalAbort) resubmission is 0 and site is the
  // coordinating site. For kPrepare, resubmission is the resubmission index
  // current at prepare time.
  SubTxnId subtxn;
  SiteId site = kInvalidSite;
  // For kRead/kWrite/kDelete.
  ItemId item;
  // kRead: version observed. kWrite/kDelete: version produced.
  db::VersionTag version;
  // True for kLocalAbort events caused by the LDBS itself (unilateral
  // abort), false for aborts requested by the agent/coordinator.
  bool unilateral = false;
  // Position in H (dense, 0-based) and virtual time.
  uint64_t seq = 0;
  sim::Time at = 0;

  std::string ToString() const;
};

}  // namespace hermes::history

#endif  // HERMES_HISTORY_OP_H_
