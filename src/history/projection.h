// Committed projection C(H) as redefined by the paper (section 3).
//
// In addition to the classical committed projection of Bernstein et al.,
// C(H) here includes *all unilaterally aborted local subtransactions that
// belong to globally committed complete transactions* — this is what makes
// the global/local view distortions visible to the serializability theory.

#ifndef HERMES_HISTORY_PROJECTION_H_
#define HERMES_HISTORY_PROJECTION_H_

#include <map>
#include <set>
#include <vector>

#include "history/op.h"

namespace hermes::history {

// Classification of each transaction appearing in a history.
struct TxnFate {
  TxnId id;
  bool global = false;
  // Local transactions: locally committed. Global transactions: the global
  // commit decision C_k was recorded.
  bool committed = false;
  // Global transactions only: C^s present for every site the transaction
  // has operations at ("committed and complete" in the paper).
  bool complete = false;
  // Sites at which the transaction has R/W/P ops.
  std::set<SiteId> sites;
  // Sites at which a local commit was recorded.
  std::set<SiteId> committed_sites;
  // Sites whose prepared residue left in a shard handoff (kMigrateOut):
  // their local outcome is settled by the adopting site, so completeness
  // does not require a local commit there.
  std::set<SiteId> migrated_sites;
  int resubmissions = 0;  // max resubmission index seen
  int unilateral_aborts = 0;

  // True if the transaction's operations belong in C(H).
  bool InCommittedProjection() const {
    return global ? (committed && complete) : committed;
  }
};

std::map<TxnId, TxnFate> ClassifyTransactions(const std::vector<Op>& h);

// The paper's committed projection: R/W/P/c/a/C ops of globally committed
// complete global transactions (including ops of their unilaterally aborted
// local subtransactions) plus ops of committed local transactions.
// Original op order and `seq` values are preserved.
std::vector<Op> CommittedProjection(const std::vector<Op>& h);

// Projection of a history onto one site's operations — H(^i) in the paper.
std::vector<Op> SiteProjection(const std::vector<Op>& h, SiteId site);

// Checks the paper's order invariant (1), which holds in every transaction
// history produced by the 2PC protocol:
//
//     P^i_k  <_H  C_k  <_H  C^s_k      for all sites i, s of T_k
//
// (every prepare of a global transaction precedes its global commit, which
// precedes every local commit), plus the structural rule that data
// operations of a subtransaction precede its prepare. Returns an empty
// string when the invariant holds, else a description of the first
// violation. Used as a protocol well-formedness oracle by the driver.
std::string CheckOrderInvariant(const std::vector<Op>& h);

// Global atomicity oracle for crash/fault runs: in the final state of the
// history, (1) no transaction has both C_k and A_k, (2) no site commits
// locally for a transaction without a global commit decision, and (3) once
// C_k is recorded no site's *final* outcome is a coordinator/agent-requested
// rollback. A final *unilateral* abort or a still-pending site is a liveness
// gap, not an atomicity violation: the agent would have resubmitted and
// committed had the run continued (runs truncated by max_sim_time legally
// end mid-recovery). Returns "" when atomicity holds, else a description of
// the first violation.
std::string CheckGlobalAtomicity(const std::vector<Op>& h);

}  // namespace hermes::history

#endif  // HERMES_HISTORY_PROJECTION_H_
