// Append-only recorder of the overall multidatabase history H.
//
// Every LTM, 2PC agent and coordinator in a simulation records its events
// here; the resulting linear sequence (ordered by the deterministic event
// loop) is exactly the shuffle history H of the paper's model, from which
// tests and benchmarks compute committed projections, serialization graphs
// and view-serializability verdicts.

#ifndef HERMES_HISTORY_RECORDER_H_
#define HERMES_HISTORY_RECORDER_H_

#include <unordered_map>
#include <vector>

#include "history/op.h"

namespace hermes::history {

class Recorder {
 public:
  explicit Recorder(const sim::EventLoop* loop) : loop_(loop) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Disable to skip all recording (large throughput benchmarks).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void RecordRead(const SubTxnId& subtxn, const ItemId& item,
                  const db::VersionTag& observed);
  void RecordWrite(const SubTxnId& subtxn, const ItemId& item,
                   const db::VersionTag& produced, bool is_delete);
  void RecordPrepare(const SubTxnId& subtxn, SiteId site);
  void RecordLocalCommit(const SubTxnId& subtxn, SiteId site);
  void RecordLocalAbort(const SubTxnId& subtxn, SiteId site, bool unilateral);
  // A shard handoff moved the prepared residue of `subtxn` away from
  // `site`; the subtransaction's outcome there is settled by the adopting
  // site (the atomicity oracle treats the source site as closed).
  void RecordMigrateOut(const SubTxnId& subtxn, SiteId site);
  void RecordGlobalCommit(const TxnId& txn, SiteId coordinator_site);
  void RecordGlobalAbort(const TxnId& txn, SiteId coordinator_site);

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  void Clear() {
    ops_.clear();
    global_decisions_.clear();
  }

  std::string ToString() const;

 private:
  void Append(Op op);
  // Returns true if this (txn, outcome) should be appended: duplicate
  // same-outcome global decisions (leader + resolvers under Paxos Commit)
  // are dropped, conflicting ones kept for the atomicity oracle.
  bool RecordGlobalDecision(const TxnId& txn, bool commit);

  const sim::EventLoop* loop_;
  bool enabled_ = true;
  std::vector<Op> ops_;
  std::unordered_map<TxnId, bool> global_decisions_;
};

}  // namespace hermes::history

#endif  // HERMES_HISTORY_RECORDER_H_
