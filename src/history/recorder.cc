#include "history/recorder.h"

#include "common/str.h"

namespace hermes::history {

void Recorder::Append(Op op) {
  if (!enabled_) return;
  op.seq = ops_.size();
  op.at = loop_->Now();
  ops_.push_back(std::move(op));
}

void Recorder::RecordRead(const SubTxnId& subtxn, const ItemId& item,
                          const db::VersionTag& observed) {
  Op op;
  op.kind = OpKind::kRead;
  op.subtxn = subtxn;
  op.site = item.site;
  op.item = item;
  op.version = observed;
  Append(std::move(op));
}

void Recorder::RecordWrite(const SubTxnId& subtxn, const ItemId& item,
                           const db::VersionTag& produced, bool is_delete) {
  Op op;
  op.kind = is_delete ? OpKind::kDelete : OpKind::kWrite;
  op.subtxn = subtxn;
  op.site = item.site;
  op.item = item;
  op.version = produced;
  Append(std::move(op));
}

void Recorder::RecordPrepare(const SubTxnId& subtxn, SiteId site) {
  Op op;
  op.kind = OpKind::kPrepare;
  op.subtxn = subtxn;
  op.site = site;
  Append(std::move(op));
}

void Recorder::RecordLocalCommit(const SubTxnId& subtxn, SiteId site) {
  Op op;
  op.kind = OpKind::kLocalCommit;
  op.subtxn = subtxn;
  op.site = site;
  Append(std::move(op));
}

void Recorder::RecordLocalAbort(const SubTxnId& subtxn, SiteId site,
                                bool unilateral) {
  Op op;
  op.kind = OpKind::kLocalAbort;
  op.subtxn = subtxn;
  op.site = site;
  op.unilateral = unilateral;
  Append(std::move(op));
}

void Recorder::RecordMigrateOut(const SubTxnId& subtxn, SiteId site) {
  Op op;
  op.kind = OpKind::kMigrateOut;
  op.subtxn = subtxn;
  op.site = site;
  Append(std::move(op));
}

void Recorder::RecordGlobalCommit(const TxnId& txn, SiteId coordinator_site) {
  if (!RecordGlobalDecision(txn, /*commit=*/true)) return;
  Op op;
  op.kind = OpKind::kGlobalCommit;
  op.subtxn = SubTxnId{txn, 0};
  op.site = coordinator_site;
  Append(std::move(op));
}

void Recorder::RecordGlobalAbort(const TxnId& txn, SiteId coordinator_site) {
  if (!RecordGlobalDecision(txn, /*commit=*/false)) return;
  Op op;
  op.kind = OpKind::kGlobalAbort;
  op.subtxn = SubTxnId{txn, 0};
  op.site = coordinator_site;
  Append(std::move(op));
}

bool Recorder::RecordGlobalDecision(const TxnId& txn, bool commit) {
  // Under Paxos Commit the same chosen outcome may be learned — and
  // reported — by the leader and by several independent resolvers. The
  // repeats carry no information, so only the first record of a given
  // outcome is kept. A *conflicting* outcome is still appended: that is a
  // genuine atomicity violation and must stay visible to the oracles.
  auto [it, inserted] = global_decisions_.emplace(txn, commit);
  return inserted || it->second != commit;
}

std::string Recorder::ToString() const {
  std::string out;
  for (const Op& op : ops_) {
    if (!out.empty()) out += " ";
    out += op.ToString();
  }
  return out;
}

}  // namespace hermes::history
