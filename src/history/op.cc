#include "history/op.h"

#include "common/str.h"

namespace hermes::history {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kRead:
      return "R";
    case OpKind::kWrite:
      return "W";
    case OpKind::kDelete:
      return "D";
    case OpKind::kPrepare:
      return "P";
    case OpKind::kLocalCommit:
      return "c";
    case OpKind::kLocalAbort:
      return "a";
    case OpKind::kGlobalCommit:
      return "C";
    case OpKind::kGlobalAbort:
      return "A";
    case OpKind::kMigrateOut:
      return "M";
  }
  return "?";
}

std::string Op::ToString() const {
  std::string out = OpKindName(kind);
  StrAppend(out, "_", subtxn.ToString());
  switch (kind) {
    case OpKind::kRead:
      StrAppend(out, "[", item.ToString(), " from ", version.ToString(), "]");
      break;
    case OpKind::kWrite:
    case OpKind::kDelete:
      StrAppend(out, "[", item.ToString(), "]");
      break;
    case OpKind::kPrepare:
    case OpKind::kLocalCommit:
    case OpKind::kLocalAbort:
    case OpKind::kMigrateOut:
      StrAppend(out, "@s", site);
      if (kind == OpKind::kLocalAbort && unilateral) out += "(unilateral)";
      break;
    default:
      break;
  }
  return out;
}

}  // namespace hermes::history
