// tmstat — offline trace analysis for hermes runs.
//
// Reads a trace file — JSONL or the binary ring-buffer format, detected
// by the "HTRB" magic bytes (written by any benchmark/sweep via
// --trace-out, or by Tracer::WriteJsonl / WriteBinary) — and prints
// reports folded from the causal span pipeline: per-transaction
// timelines, the 2PC critical-path phase breakdown, prepared
// blocking-window statistics, certification refusal conflicts,
// resubmission chains and the windowed virtual-time series. Optionally
// exports the span forest as a Chrome/Perfetto trace (load the file at
// https://ui.perfetto.dev).
//
// Usage:
//   tmstat <trace.{jsonl,bin}>
//          [--report=summary|timeline|spans|critical-path|
//                    blocking|refusals|resubmissions|timeseries|all]
//          [--txn=G0.1] [--window-ms=N] [--perfetto=OUT.trace.json]
//
// Parsing is lenient: unknown event kinds, truncated trailing lines and
// binary files cut mid-record are skipped with a counted warning instead
// of aborting the report — but the exit code is then nonzero (1) and a
// recovery count is printed, so pipelines cannot mistake a partially-read
// trace for a complete one.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/str.h"
#include "trace/analyzer.h"
#include "trace/binary.h"
#include "trace/critical_path.h"
#include "trace/perfetto.h"
#include "trace/span.h"
#include "trace/timeseries.h"
#include "trace/trace.h"

namespace {

using namespace hermes;  // NOLINT: single-file CLI

int Usage() {
  std::fprintf(
      stderr,
      "usage: tmstat <trace.{jsonl,bin}> [--report=summary|timeline|spans|\n"
      "               critical-path|blocking|refusals|resubmissions|\n"
      "               timeseries|all]\n"
      "              [--txn=G0.1] [--window-ms=N]\n"
      "              [--perfetto=OUT.trace.json]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && written == text.size();
}

void Section(const char* title) {
  std::printf("=== %s ===\n", title);
}

struct Options {
  std::string path;
  std::string report = "summary";
  std::string txn;
  std::string perfetto_out;
  int64_t window_ms = 100;
};

bool WantReport(const Options& opt, const char* name) {
  return opt.report == name || opt.report == "all";
}

void PrintTimeline(const Options& opt, const trace::TraceAnalyzer& analyzer,
                   const trace::SpanForest& forest,
                   const std::vector<trace::Event>& events) {
  Section("timeline");
  if (!opt.txn.empty()) {
    const Result<TxnId> id = trace::DecodeTxnId(opt.txn);
    if (!id.ok()) {
      std::printf("bad --txn value: %s\n", opt.txn.c_str());
      return;
    }
    std::printf("%s", analyzer.ReportTxn(*id).c_str());
    return;
  }
  // One line per global transaction (outcome and end-to-end latency), with
  // the run's membership-change markers interleaved at their virtual time.
  struct Line {
    sim::Time at;
    std::string text;
  };
  std::vector<Line> lines;
  for (int32_t root_id : forest.roots) {
    const trace::Span& root = forest.spans[static_cast<size_t>(root_id)];
    std::string line = StrCat(trace::EncodeTxnId(root.txn), " t=", root.begin);
    if (root.closed()) {
      StrAppend(line, " ", root.ok ? "COMMITTED" : "ABORTED", " latency=",
                root.length(), "us");
    } else {
      StrAppend(line, " UNFINISHED");
    }
    lines.push_back({root.begin, std::move(line)});
  }
  for (const trace::Event& e : events) {
    switch (e.kind) {
      case trace::EventKind::kReconfigBegin:
        lines.push_back(
            {e.at, StrCat("RECONFIG t=", e.at, " begin kind=", e.detail,
                          " site=", e.site, " successor=", e.peer,
                          " fence_epoch=", e.value)});
        break;
      case trace::EventKind::kReconfigHandoff:
        lines.push_back({e.at, StrCat("RECONFIG t=", e.at, " handoff ",
                                      e.site, " -> ", e.peer,
                                      " rows=", e.value)});
        break;
      case trace::EventKind::kReconfigDone:
        lines.push_back(
            {e.at, StrCat("RECONFIG t=", e.at, " done kind=", e.detail,
                          " site=", e.site, " epoch=", e.value)});
        break;
      case trace::EventKind::kEpochRefused:
        lines.push_back(
            {e.at, StrCat("EPOCH-REFUSED t=", e.at, " ",
                          trace::EncodeTxnId(e.txn), " at site=", e.site,
                          " sender=", e.peer, " msg=", e.detail,
                          " current_epoch=", e.value)});
        break;
      default:
        break;
    }
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.at < b.at; });
  for (const Line& l : lines) std::printf("%s\n", l.text.c_str());
}

void PrintSpans(const Options& opt, const trace::SpanForest& forest) {
  Section("spans");
  if (!opt.txn.empty()) {
    const Result<TxnId> id = trace::DecodeTxnId(opt.txn);
    if (!id.ok()) {
      std::printf("bad --txn value: %s\n", opt.txn.c_str());
      return;
    }
    const trace::Span* root = forest.Root(*id);
    if (root == nullptr) {
      std::printf("no spans for %s\n", opt.txn.c_str());
      return;
    }
    trace::SpanForest one;
    one.spans = forest.spans;
    one.trace_end = forest.trace_end;
    one.roots.push_back(root->id);
    std::printf("%s", one.ToString().c_str());
    return;
  }
  std::printf("%s", forest.ToString().c_str());
}

void PrintCriticalPath(const Options& opt,
                       const trace::CriticalPathReport& report) {
  Section("critical-path");
  std::printf("%s", report.ToString().c_str());
  if (!opt.txn.empty()) {
    const Result<TxnId> id = trace::DecodeTxnId(opt.txn);
    if (id.ok()) {
      const trace::TxnCriticalPath* cp = report.Find(*id);
      std::printf("%s\n", cp != nullptr
                              ? cp->ToString().c_str()
                              : StrCat("no finished transaction ", opt.txn)
                                    .c_str());
    }
  }
}

void PrintBlocking(const trace::SpanForest& forest,
                   const trace::CriticalPathReport& report) {
  Section("blocking");
  std::printf("%s\n", report.blocking.ToString().c_str());
  // The longest windows, worst first, with their probing activity.
  std::vector<const trace::Span*> windows;
  for (const trace::Span& s : forest.spans) {
    if (s.kind == trace::SpanKind::kBlocked && s.closed()) {
      windows.push_back(&s);
    }
  }
  std::stable_sort(windows.begin(), windows.end(),
                   [](const trace::Span* a, const trace::Span* b) {
                     return a->length() > b->length();
                   });
  const size_t top = windows.size() < 10 ? windows.size() : 10;
  for (size_t i = 0; i < top; ++i) {
    const trace::Span& s = *windows[i];
    int64_t inquiries = 0;
    for (const trace::SpanNote& n : s.notes) {
      if (n.label.rfind("inquiry#", 0) == 0) ++inquiries;
    }
    std::printf("%s\n",
                StrCat("  ", trace::EncodeTxnId(s.txn), " site=", s.site,
                       " t=[", s.begin, "..", s.end, "] len=", s.length(),
                       "us -> ", s.ok ? "commit" : "abort",
                       " inquiries=", inquiries)
                    .c_str());
  }
}

void PrintRefusals(const trace::TraceAnalyzer& analyzer) {
  Section("refusals");
  if (analyzer.Refusals().empty()) {
    std::printf("no certification refusals\n");
    return;
  }
  for (const trace::Refusal& r : analyzer.Refusals()) {
    std::printf("%s\n", r.ToString().c_str());
  }
}

void PrintResubmissions(const trace::TraceAnalyzer& analyzer) {
  Section("resubmissions");
  if (analyzer.ResubmissionChains().empty()) {
    std::printf("no resubmission chains\n");
    return;
  }
  for (const trace::ResubmissionChain& c : analyzer.ResubmissionChains()) {
    std::printf("%s\n", c.ToString().c_str());
  }
}

void PrintTimeSeries(const Options& opt,
                     const std::vector<trace::Event>& events) {
  Section("timeseries");
  const trace::TimeSeries ts =
      trace::BuildTimeSeries(events, opt.window_ms * sim::kMillisecond);
  std::printf("%s", ts.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report=", 0) == 0) {
      opt.report = arg.substr(9);
    } else if (arg.rfind("--txn=", 0) == 0) {
      opt.txn = arg.substr(6);
    } else if (arg.rfind("--window-ms=", 0) == 0) {
      opt.window_ms = std::atoll(arg.c_str() + 12);
      if (opt.window_ms <= 0) return Usage();
    } else if (arg.rfind("--perfetto=", 0) == 0) {
      opt.perfetto_out = arg.substr(11);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      return Usage();
    }
  }
  if (opt.path.empty()) return Usage();

  std::string text;
  if (!ReadFile(opt.path, text)) {
    std::fprintf(stderr, "tmstat: cannot read %s\n", opt.path.c_str());
    return 1;
  }
  std::vector<trace::Event> events;
  bool partial = false;
  if (trace::IsBinaryTrace(text)) {
    trace::BinaryParse parsed = trace::ParseBinaryLenient(text);
    partial = parsed.truncated || parsed.skipped_records > 0;
    if (partial) {
      // One line with the whole-records-recovered count: fixed-width
      // records make the loss exact, and pipelines get exit code 1.
      std::fprintf(stderr,
                   "tmstat: damaged binary trace: %lld of %lld whole "
                   "record(s) recovered (%s) — reports reflect partial "
                   "data\n",
                   static_cast<long long>(parsed.events.size()),
                   static_cast<long long>(parsed.records_declared),
                   parsed.warnings.empty() ? "no detail"
                                           : parsed.warnings.front().c_str());
    }
    if (parsed.dropped > 0 || parsed.sampled_out > 0) {
      std::fprintf(stderr,
                   "tmstat: note: capture dropped %lld record(s) to ring "
                   "overflow, sampled out %lld\n",
                   static_cast<long long>(parsed.dropped),
                   static_cast<long long>(parsed.sampled_out));
    }
    events = std::move(parsed.events);
  } else {
    trace::LenientParse parsed = trace::ParseJsonlLenient(text);
    partial = parsed.skipped_lines > 0;
    if (partial) {
      // Per-line accounting: every non-blank input line either became an
      // event or was skipped; spell both counts out so the reports below
      // are unmistakably partial.
      int64_t total_lines = 0;
      bool blank = true;
      for (const char c : text) {
        if (c == '\n') {
          if (!blank) ++total_lines;
          blank = true;
        } else if (c != ' ' && c != '\t' && c != '\r') {
          blank = false;
        }
      }
      if (!blank) ++total_lines;
      std::fprintf(stderr,
                   "tmstat: %lld line(s) total: %lld parsed, %lld skipped — "
                   "reports reflect partial data\n",
                   static_cast<long long>(total_lines),
                   static_cast<long long>(parsed.events.size()),
                   static_cast<long long>(parsed.skipped_lines));
      for (const std::string& w : parsed.warnings) {
        std::fprintf(stderr, "tmstat:   %s\n", w.c_str());
      }
      if (parsed.skipped_lines >
          static_cast<int64_t>(parsed.warnings.size())) {
        std::fprintf(stderr,
                     "tmstat:   (further skip reasons suppressed)\n");
      }
    }
    events = std::move(parsed.events);
  }

  const trace::SpanForest forest = trace::BuildSpanForest(events);
  const trace::CriticalPathReport cp = trace::AnalyzeCriticalPath(forest);
  const trace::TraceAnalyzer analyzer(events);

  std::printf("trace: %s — %zu events, %zu global txns, trace_end=%lld us\n",
              opt.path.c_str(), events.size(), forest.roots.size(),
              static_cast<long long>(forest.trace_end));

  if (WantReport(opt, "summary")) {
    Section("summary");
    std::string summary = analyzer.Summary();
    if (summary.empty() || summary.back() != '\n') summary += '\n';
    std::printf("%s", summary.c_str());
  }
  if (opt.report == "timeline") {
    PrintTimeline(opt, analyzer, forest, events);
  }
  if (opt.report == "spans") PrintSpans(opt, forest);
  if (WantReport(opt, "critical-path")) PrintCriticalPath(opt, cp);
  if (WantReport(opt, "blocking")) PrintBlocking(forest, cp);
  if (WantReport(opt, "refusals")) PrintRefusals(analyzer);
  if (WantReport(opt, "resubmissions")) PrintResubmissions(analyzer);
  if (WantReport(opt, "timeseries")) PrintTimeSeries(opt, events);

  if (!opt.perfetto_out.empty()) {
    const std::string json = trace::ExportPerfetto(forest, events);
    if (!WriteFile(opt.perfetto_out, json)) {
      std::fprintf(stderr, "tmstat: cannot write %s\n",
                   opt.perfetto_out.c_str());
      return 1;
    }
    std::printf("perfetto trace written: %s\n", opt.perfetto_out.c_str());
  }
  // Partial input is a failure even though the reports were printed:
  // callers scripting tmstat must not trust stats folded from a trace
  // with unparseable lines or records.
  return partial ? 1 : 0;
}
