// Table storage with per-row write provenance.
//
// Every row carries a VersionTag naming the local subtransaction that wrote
// it. The serializability oracle (src/history) uses this provenance to
// compute the exact reads-from relation of an execution — the foundation of
// the paper's view-serializability correctness criterion.

#ifndef HERMES_DB_TABLE_H_
#define HERMES_DB_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "db/predicate.h"
#include "db/value.h"

namespace hermes::db {

// Identifies one write: which local subtransaction produced the version and
// the writer-local sequence number (a subtransaction may write the same item
// several times). A default-constructed tag denotes the hypothetical
// initializing transaction T_0 of the paper.
struct VersionTag {
  SubTxnId writer;
  uint64_t write_seq = 0;

  bool initial() const { return !writer.txn.valid(); }

  friend bool operator==(const VersionTag& a, const VersionTag& b) = default;
  friend auto operator<=>(const VersionTag& a, const VersionTag& b) = default;

  std::string ToString() const;
};

// A row slot. `row == nullopt` is a tombstone: the key existed (or was
// deleted) and the slot remembers which subtransaction deleted it.
struct RowEntry {
  std::optional<Row> row;
  VersionTag version;

  bool live() const { return row.has_value(); }
};

class Table {
 public:
  Table(int32_t id, std::string name) : id_(id), name_(std::move(name)) {}

  int32_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // Returns nullptr if the key has never existed (no slot).
  const RowEntry* Get(int64_t key) const;

  // Creates or replaces the slot for `key`; returns the previous entry if a
  // slot existed (live or tombstone).
  std::optional<RowEntry> Put(int64_t key, RowEntry entry);

  // Replaces the slot with a tombstone carrying `deleter`; returns previous
  // entry. The key must have a live row.
  std::optional<RowEntry> Delete(int64_t key, VersionTag deleter);

  // Restores a slot to a previous state (undo); nullopt erases the slot
  // entirely (undo of an insert into a never-existing key).
  void Restore(int64_t key, std::optional<RowEntry> previous);

  // Keys of live rows satisfying `pred`, in ascending key order.
  std::vector<int64_t> Match(const Predicate& pred) const;

  int64_t live_rows() const;
  const std::map<int64_t, RowEntry>& entries() const { return entries_; }

 private:
  int32_t id_;
  std::string name_;
  std::map<int64_t, RowEntry> entries_;
};

}  // namespace hermes::db

#endif  // HERMES_DB_TABLE_H_
