#include "db/storage.h"

#include "common/str.h"

namespace hermes::db {

Result<TableId> Storage::CreateTable(const std::string& name) {
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists(StrCat("table ", name));
  }
  const TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(id, name));
  by_name_[name] = id;
  return id;
}

Table* Storage::GetTable(TableId id) {
  if (id < 0 || id >= table_count()) return nullptr;
  return tables_[static_cast<size_t>(id)].get();
}

const Table* Storage::GetTable(TableId id) const {
  if (id < 0 || id >= table_count()) return nullptr;
  return tables_[static_cast<size_t>(id)].get();
}

Table* Storage::FindTable(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : GetTable(it->second);
}

Status Storage::LoadRow(TableId table, int64_t key, Row row) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound(StrCat("table ", table));
  t->Put(key, RowEntry{std::move(row), VersionTag{}});
  return Status::Ok();
}

}  // namespace hermes::db
