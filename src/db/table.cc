#include "db/table.h"

#include <cassert>

#include "common/str.h"

namespace hermes::db {

std::string VersionTag::ToString() const {
  if (initial()) return "T0";
  return StrCat(writer.ToString(), "#", write_seq);
}

const RowEntry* Table::Get(int64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<RowEntry> Table::Put(int64_t key, RowEntry entry) {
  auto [it, inserted] = entries_.try_emplace(key, std::move(entry));
  if (inserted) return std::nullopt;
  std::optional<RowEntry> prev = std::move(it->second);
  it->second = std::move(entry);
  return prev;
}

std::optional<RowEntry> Table::Delete(int64_t key, VersionTag deleter) {
  auto it = entries_.find(key);
  assert(it != entries_.end() && it->second.live());
  std::optional<RowEntry> prev = std::move(it->second);
  it->second = RowEntry{std::nullopt, deleter};
  return prev;
}

void Table::Restore(int64_t key, std::optional<RowEntry> previous) {
  if (previous.has_value()) {
    entries_[key] = std::move(*previous);
  } else {
    entries_.erase(key);
  }
}

std::vector<int64_t> Table::Match(const Predicate& pred) const {
  std::vector<int64_t> keys;
  if (auto exact = pred.ExactKey()) {
    auto it = entries_.find(*exact);
    if (it != entries_.end() && it->second.live() &&
        pred.Eval(it->first, *it->second.row)) {
      keys.push_back(*exact);
    }
    return keys;
  }
  for (const auto& [key, entry] : entries_) {
    if (entry.live() && pred.Eval(key, *entry.row)) keys.push_back(key);
  }
  return keys;
}

int64_t Table::live_rows() const {
  int64_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.live()) ++n;
  }
  return n;
}

}  // namespace hermes::db
