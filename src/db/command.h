// The data-manipulation command set available at each LDBS's local
// interface (LI). These play the role of the paper's "SQL commands SELECT,
// UPDATE, DELETE, INSERT". The LTM decomposes a command into elementary Read
// and Write operations on concrete rows via a deterministic, state-dependent
// decomposition function (the DDF assumption).

#ifndef HERMES_DB_COMMAND_H_
#define HERMES_DB_COMMAND_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "db/predicate.h"
#include "db/value.h"

namespace hermes::db {

struct SelectCmd {
  TableId table = -1;
  Predicate pred;
};

struct InsertCmd {
  TableId table = -1;
  int64_t key = -1;
  Row row;
  // If true, inserting over an existing live row overwrites it instead of
  // failing (upsert).
  bool upsert = false;
};

// One SET clause of an UPDATE.
struct Assignment {
  enum class Kind {
    kSet,  // field = operand
    kAdd,  // field = field + operand (numeric)
  };
  std::string field;
  Kind kind = Kind::kSet;
  Value operand;
};

struct UpdateCmd {
  TableId table = -1;
  Predicate pred;
  std::vector<Assignment> sets;
};

struct DeleteCmd {
  TableId table = -1;
  Predicate pred;
};

using Command = std::variant<SelectCmd, InsertCmd, UpdateCmd, DeleteCmd>;

// Result of one command: the matched/affected rows. For SELECT: the rows
// read. For UPDATE/DELETE: the affected keys (post-image rows for UPDATE).
struct CmdResult {
  std::vector<std::pair<int64_t, Row>> rows;
  int64_t affected = 0;
};

TableId CommandTable(const Command& cmd);
bool CommandWrites(const Command& cmd);
std::string CommandToString(const Command& cmd);

// The single row a command pins, when its predicate pins exactly one (the
// key of an INSERT, or a key-equality predicate). nullopt for scans —
// shard-routing callers must treat those conservatively as touching every
// shard.
std::optional<int64_t> CommandExactKey(const Command& cmd);

// Convenience constructors used heavily in tests and examples.
Command MakeSelect(TableId table, Predicate pred);
Command MakeSelectKey(TableId table, int64_t key);
Command MakeInsert(TableId table, int64_t key, Row row);
Command MakeUpdate(TableId table, Predicate pred,
                   std::vector<Assignment> sets);
Command MakeUpdateKey(TableId table, int64_t key, std::string field, Value v);
Command MakeAddKey(TableId table, int64_t key, std::string field, Value delta);
Command MakeDelete(TableId table, Predicate pred);
Command MakeDeleteKey(TableId table, int64_t key);

}  // namespace hermes::db

#endif  // HERMES_DB_COMMAND_H_
