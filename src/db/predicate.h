// Row predicates: conjunctions of comparisons on the primary key and on
// named fields. Predicates make command decomposition state-dependent — the
// property that lets resubmitted subtransactions legitimately decompose
// differently than the original (paper, section 3).

#ifndef HERMES_DB_PREDICATE_H_
#define HERMES_DB_PREDICATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "db/value.h"

namespace hermes::db {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);
bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs);

// One conjunct. `field` empty means the condition applies to the row key.
struct Condition {
  std::string field;
  CmpOp op = CmpOp::kEq;
  Value rhs;
};

class Predicate {
 public:
  // Matches every row.
  Predicate() = default;

  static Predicate True() { return Predicate(); }
  static Predicate KeyEquals(int64_t key);
  static Predicate KeyRange(int64_t lo, int64_t hi);  // inclusive
  static Predicate Field(std::string field, CmpOp op, Value rhs);

  // Conjunction (builder style): pred.AndKeyRange(...).AndField(...).
  Predicate& AndKeyEquals(int64_t key);
  Predicate& AndKeyRange(int64_t lo, int64_t hi);
  Predicate& AndField(std::string field, CmpOp op, Value rhs);

  bool Eval(int64_t key, const Row& row) const;

  // If the key conditions restrict matches to exactly one key, returns it —
  // the fast path that avoids a table scan.
  std::optional<int64_t> ExactKey() const;

  bool IsTrue() const { return conds_.empty(); }
  const std::vector<Condition>& conditions() const { return conds_; }

  std::string ToString() const;

 private:
  std::vector<Condition> conds_;
};

}  // namespace hermes::db

#endif  // HERMES_DB_PREDICATE_H_
