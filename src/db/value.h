// Typed values and rows for the mini relational engine that plays the role
// of each LDBS's data layer.
//
// The paper models data items as "single concrete table rows"; rows here are
// ordered field->Value maps so that command decomposition (DDF) is fully
// deterministic.

#ifndef HERMES_DB_VALUE_H_
#define HERMES_DB_VALUE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

namespace hermes::db {

// Dense per-site table identifier.
using TableId = int32_t;

// monostate represents SQL NULL.
using Value = std::variant<std::monostate, int64_t, double, bool, std::string>;

std::string ValueToString(const Value& v);

// Total order across types: NULL < int64 < double < bool < string, except
// that int64 and double compare numerically against each other (so a
// predicate `x > 10` works whether x is stored as int or double).
int CompareValues(const Value& a, const Value& b);

inline bool ValueEq(const Value& a, const Value& b) {
  return CompareValues(a, b) == 0;
}

// Numeric addition for UPDATE ... SET f = f + delta. Returns nullopt when
// either operand is non-numeric.
std::optional<Value> AddValues(const Value& a, const Value& b);

// A row: field name -> value. Ordered map gives deterministic iteration.
struct Row {
  std::map<std::string, Value> fields;

  Row() = default;
  Row(std::initializer_list<std::pair<const std::string, Value>> init)
      : fields(init) {}

  const Value* Get(const std::string& field) const {
    auto it = fields.find(field);
    return it == fields.end() ? nullptr : &it->second;
  }
  void Set(const std::string& field, Value v) {
    fields[field] = std::move(v);
  }

  friend bool operator==(const Row& a, const Row& b) {
    if (a.fields.size() != b.fields.size()) return false;
    auto ia = a.fields.begin();
    auto ib = b.fields.begin();
    for (; ia != a.fields.end(); ++ia, ++ib) {
      if (ia->first != ib->first || !ValueEq(ia->second, ib->second))
        return false;
    }
    return true;
  }

  std::string ToString() const;
};

}  // namespace hermes::db

#endif  // HERMES_DB_VALUE_H_
