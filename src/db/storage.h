// Per-site storage: the catalog of tables of one LDBS.

#ifndef HERMES_DB_STORAGE_H_
#define HERMES_DB_STORAGE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "db/table.h"

namespace hermes::db {

class Storage {
 public:
  explicit Storage(SiteId site) : site_(site) {}

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  SiteId site() const { return site_; }

  // Creates a table and returns its id. Table names are unique per site.
  Result<TableId> CreateTable(const std::string& name);

  Table* GetTable(TableId id);
  const Table* GetTable(TableId id) const;
  Table* FindTable(const std::string& name);

  // Loads an initial row outside any transaction (version = T_0). Used to
  // populate databases before a simulation starts.
  Status LoadRow(TableId table, int64_t key, Row row);

  ItemId MakeItemId(TableId table, int64_t key) const {
    return ItemId{site_, table, key};
  }

  int32_t table_count() const { return static_cast<int32_t>(tables_.size()); }

 private:
  SiteId site_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, TableId> by_name_;
};

}  // namespace hermes::db

#endif  // HERMES_DB_STORAGE_H_
