#include "db/command.h"

#include "common/str.h"

namespace hermes::db {

namespace {

struct TableVisitor {
  TableId operator()(const SelectCmd& c) const { return c.table; }
  TableId operator()(const InsertCmd& c) const { return c.table; }
  TableId operator()(const UpdateCmd& c) const { return c.table; }
  TableId operator()(const DeleteCmd& c) const { return c.table; }
};

}  // namespace

TableId CommandTable(const Command& cmd) {
  return std::visit(TableVisitor{}, cmd);
}

bool CommandWrites(const Command& cmd) {
  return !std::holds_alternative<SelectCmd>(cmd);
}

std::string CommandToString(const Command& cmd) {
  if (const auto* s = std::get_if<SelectCmd>(&cmd)) {
    return StrCat("SELECT t", s->table, " WHERE ", s->pred.ToString());
  }
  if (const auto* i = std::get_if<InsertCmd>(&cmd)) {
    return StrCat(i->upsert ? "UPSERT t" : "INSERT t", i->table, " KEY ",
                  i->key, " ", i->row.ToString());
  }
  if (const auto* u = std::get_if<UpdateCmd>(&cmd)) {
    std::string sets;
    for (const auto& a : u->sets) {
      if (!sets.empty()) sets += ", ";
      StrAppend(sets, a.field,
                a.kind == Assignment::Kind::kAdd ? " += " : " = ",
                ValueToString(a.operand));
    }
    return StrCat("UPDATE t", u->table, " SET ", sets, " WHERE ",
                  u->pred.ToString());
  }
  const auto& d = std::get<DeleteCmd>(cmd);
  return StrCat("DELETE t", d.table, " WHERE ", d.pred.ToString());
}

std::optional<int64_t> CommandExactKey(const Command& cmd) {
  if (const auto* i = std::get_if<InsertCmd>(&cmd)) return i->key;
  if (const auto* s = std::get_if<SelectCmd>(&cmd)) return s->pred.ExactKey();
  if (const auto* u = std::get_if<UpdateCmd>(&cmd)) return u->pred.ExactKey();
  return std::get<DeleteCmd>(cmd).pred.ExactKey();
}

Command MakeSelect(TableId table, Predicate pred) {
  return SelectCmd{table, std::move(pred)};
}

Command MakeSelectKey(TableId table, int64_t key) {
  return SelectCmd{table, Predicate::KeyEquals(key)};
}

Command MakeInsert(TableId table, int64_t key, Row row) {
  return InsertCmd{table, key, std::move(row), /*upsert=*/false};
}

Command MakeUpdate(TableId table, Predicate pred,
                   std::vector<Assignment> sets) {
  return UpdateCmd{table, std::move(pred), std::move(sets)};
}

Command MakeUpdateKey(TableId table, int64_t key, std::string field,
                      Value v) {
  return UpdateCmd{
      table,
      Predicate::KeyEquals(key),
      {Assignment{std::move(field), Assignment::Kind::kSet, std::move(v)}}};
}

Command MakeAddKey(TableId table, int64_t key, std::string field,
                   Value delta) {
  return UpdateCmd{table,
                   Predicate::KeyEquals(key),
                   {Assignment{std::move(field), Assignment::Kind::kAdd,
                               std::move(delta)}}};
}

Command MakeDelete(TableId table, Predicate pred) {
  return DeleteCmd{table, std::move(pred)};
}

Command MakeDeleteKey(TableId table, int64_t key) {
  return DeleteCmd{table, Predicate::KeyEquals(key)};
}

}  // namespace hermes::db
