#include "db/value.h"

#include "common/str.h"

namespace hermes::db {

namespace {

// Rank used for cross-type ordering; int64 and double share numeric rank.
int TypeRank(const Value& v) {
  switch (v.index()) {
    case 0:
      return 0;  // NULL
    case 1:
    case 2:
      return 1;  // numeric
    case 3:
      return 2;  // bool
    case 4:
      return 3;  // string
  }
  return 4;
}

double AsDouble(const Value& v) {
  if (std::holds_alternative<int64_t>(v))
    return static_cast<double>(std::get<int64_t>(v));
  return std::get<double>(v);
}

}  // namespace

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(std::get<int64_t>(v));
    case 2:
      return std::to_string(std::get<double>(v));
    case 3:
      return std::get<bool>(v) ? "true" : "false";
    case 4:
      return StrCat("'", std::get<std::string>(v), "'");
  }
  return "?";
}

int CompareValues(const Value& a, const Value& b) {
  const int ra = TypeRank(a);
  const int rb = TypeRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      if (std::holds_alternative<int64_t>(a) &&
          std::holds_alternative<int64_t>(b)) {
        const int64_t x = std::get<int64_t>(a);
        const int64_t y = std::get<int64_t>(b);
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      const double x = AsDouble(a);
      const double y = AsDouble(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case 2: {
      const bool x = std::get<bool>(a);
      const bool y = std::get<bool>(b);
      return x == y ? 0 : (!x ? -1 : 1);
    }
    case 3: {
      const auto& x = std::get<std::string>(a);
      const auto& y = std::get<std::string>(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
  }
  return 0;
}

std::optional<Value> AddValues(const Value& a, const Value& b) {
  const bool a_int = std::holds_alternative<int64_t>(a);
  const bool b_int = std::holds_alternative<int64_t>(b);
  const bool a_num = a_int || std::holds_alternative<double>(a);
  const bool b_num = b_int || std::holds_alternative<double>(b);
  if (!a_num || !b_num) return std::nullopt;
  if (a_int && b_int) {
    return Value(std::get<int64_t>(a) + std::get<int64_t>(b));
  }
  return Value(AsDouble(a) + AsDouble(b));
}

std::string Row::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) out += ", ";
    first = false;
    StrAppend(out, k, "=", ValueToString(v));
  }
  out += "}";
  return out;
}

}  // namespace hermes::db
