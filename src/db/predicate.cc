#include "db/predicate.h"

#include "common/str.h"

namespace hermes::db {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs) {
  const int c = CompareValues(lhs, rhs);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

Predicate Predicate::KeyEquals(int64_t key) {
  Predicate p;
  p.AndKeyEquals(key);
  return p;
}

Predicate Predicate::KeyRange(int64_t lo, int64_t hi) {
  Predicate p;
  p.AndKeyRange(lo, hi);
  return p;
}

Predicate Predicate::Field(std::string field, CmpOp op, Value rhs) {
  Predicate p;
  p.AndField(std::move(field), op, std::move(rhs));
  return p;
}

Predicate& Predicate::AndKeyEquals(int64_t key) {
  conds_.push_back(Condition{"", CmpOp::kEq, Value(key)});
  return *this;
}

Predicate& Predicate::AndKeyRange(int64_t lo, int64_t hi) {
  conds_.push_back(Condition{"", CmpOp::kGe, Value(lo)});
  conds_.push_back(Condition{"", CmpOp::kLe, Value(hi)});
  return *this;
}

Predicate& Predicate::AndField(std::string field, CmpOp op, Value rhs) {
  conds_.push_back(Condition{std::move(field), op, std::move(rhs)});
  return *this;
}

bool Predicate::Eval(int64_t key, const Row& row) const {
  for (const Condition& c : conds_) {
    if (c.field.empty()) {
      if (!EvalCmp(c.op, Value(key), c.rhs)) return false;
    } else {
      const Value* v = row.Get(c.field);
      // Missing field behaves as NULL. NULL satisfies no comparison against
      // a non-NULL value (SQL-like), but NULL = NULL and NULL != x hold so
      // predicates stay decidable.
      const bool lhs_null = v == nullptr || std::holds_alternative<std::monostate>(*v);
      const bool rhs_null = std::holds_alternative<std::monostate>(c.rhs);
      if (lhs_null || rhs_null) {
        const bool both_null = lhs_null && rhs_null;
        const bool ok = (c.op == CmpOp::kEq && both_null) ||
                        (c.op == CmpOp::kNe && !both_null);
        if (!ok) return false;
        continue;
      }
      if (!EvalCmp(c.op, *v, c.rhs)) return false;
    }
  }
  return true;
}

std::optional<int64_t> Predicate::ExactKey() const {
  for (const Condition& c : conds_) {
    if (c.field.empty() && c.op == CmpOp::kEq &&
        std::holds_alternative<int64_t>(c.rhs)) {
      return std::get<int64_t>(c.rhs);
    }
  }
  return std::nullopt;
}

std::string Predicate::ToString() const {
  if (conds_.empty()) return "TRUE";
  std::string out;
  bool first = true;
  for (const Condition& c : conds_) {
    if (!first) out += " AND ";
    first = false;
    StrAppend(out, c.field.empty() ? "key" : c.field, CmpOpName(c.op),
              ValueToString(c.rhs));
  }
  return out;
}

}  // namespace hermes::db
