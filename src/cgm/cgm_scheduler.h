// The centralized scheduler node of the CGM baseline.
//
// CGM's DTM runs a central component that (a) grants global S2PL locks on
// coarse granules before a global subtransaction's commands execute, and
// (b) admits transactions into commit processing only if their edges keep
// the commit graph loop-free. The scheduler is a separate network node, so
// every interaction costs real message latency — the price of
// centralization the reproduced paper's decentralized design avoids
// (benchmarked in bench_scaling).

#ifndef HERMES_CGM_CGM_SCHEDULER_H_
#define HERMES_CGM_CGM_SCHEDULER_H_

#include <variant>
#include <vector>

#include "cgm/commit_graph.h"
#include "cgm/global_locks.h"
#include "core/metrics.h"
#include "net/network.h"
#include "trace/trace.h"

namespace hermes::cgm {

struct LockRequestMsg {
  TxnId gtid;
  uint64_t request_id = 0;
  std::vector<Granule> granules;
};

struct LockReplyMsg {
  TxnId gtid;
  uint64_t request_id = 0;
  Status status;
};

struct CommitCheckMsg {
  TxnId gtid;
  std::vector<SiteId> sites;
};

struct CommitCheckReplyMsg {
  TxnId gtid;
  Status status;
};

// Transaction left commit processing (committed or aborted): release its
// global locks and commit-graph edges.
struct FinishedMsg {
  TxnId gtid;
};

using CgmMessage = std::variant<LockRequestMsg, LockReplyMsg, CommitCheckMsg,
                                CommitCheckReplyMsg, FinishedMsg>;

struct CgmSchedulerConfig {
  sim::Duration lock_timeout = 1 * sim::kSecond;
  // Commit-graph admission is retried (commit processing *waits* for the
  // loop to clear, as in the original CGM) until this deadline, after which
  // the transaction is rejected.
  sim::Duration admission_retry_interval = 5 * sim::kMillisecond;
  sim::Duration admission_timeout = 500 * sim::kMillisecond;
};

class CgmScheduler {
 public:
  // `tracer` may be null (tracing disabled).
  CgmScheduler(SiteId endpoint, SiteId client_endpoint,
               const CgmSchedulerConfig& config, sim::EventLoop* loop,
               net::Network* network, core::Metrics* metrics,
               trace::Tracer* tracer = nullptr);

  CgmScheduler(const CgmScheduler&) = delete;
  CgmScheduler& operator=(const CgmScheduler&) = delete;

  void Handle(const net::Envelope& env);

  const CommitGraph& commit_graph() const { return graph_; }

 private:
  void TryAdmission(const TxnId& gtid, std::vector<SiteId> sites,
                    sim::Time deadline);

  SiteId endpoint_;
  SiteId client_endpoint_;
  CgmSchedulerConfig config_;
  sim::EventLoop* loop_;
  net::Network* network_;
  core::Metrics* metrics_;
  trace::Tracer* tracer_;
  GlobalLockManager locks_;
  CommitGraph graph_;
};

}  // namespace hermes::cgm

#endif  // HERMES_CGM_CGM_SCHEDULER_H_
