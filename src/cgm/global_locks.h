// The global lock manager of the CGM baseline's centralized scheduler.
//
// CGM protects against the global view distortion with a DTM-level strict
// two-phase lock manager over coarse granules (site, table, or — when every
// command names its keys — item). The reproduced paper argues this
// granularity is what makes CGM more restrictive than the decentralized
// certifier.

#ifndef HERMES_CGM_GLOBAL_LOCKS_H_
#define HERMES_CGM_GLOBAL_LOCKS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "db/command.h"
#include "ltm/lock_manager.h"
#include "sim/event_loop.h"

namespace hermes::cgm {

enum class Granularity { kSite, kTable, kItem };

const char* GranularityName(Granularity g);

// A lockable granule, encoded in an ItemId with -1 sentinels for the levels
// the granularity ignores (site: table=-1,key=-1; table: key=-1).
struct Granule {
  ItemId id;
  ltm::LockMode mode = ltm::LockMode::kShared;
};

// Granules one DML command at `site` must lock under `granularity`.
// Predicate-based commands that do not name an exact key escalate to the
// table granule even under item granularity (the scheduler cannot know the
// matched rows without reading — exactly CGM's coarseness problem).
std::vector<Granule> GranulesOf(Granularity granularity, SiteId site,
                                const db::Command& cmd);

// S2PL over granules: a thin wrapper around the generic lock manager that
// maps global transaction ids to lock-manager handles.
class GlobalLockManager {
 public:
  using GrantCallback = ltm::LockManager::GrantCallback;

  GlobalLockManager(sim::Duration wait_timeout, sim::EventLoop* loop);

  // Acquires all `granules` for `txn` (sequentially, in granule order);
  // cb(OK) once all are held, cb(kTimeout) if any wait times out.
  void AcquireAll(const TxnId& txn, std::vector<Granule> granules,
                  GrantCallback cb);

  // Releases everything the transaction holds.
  void ReleaseAll(const TxnId& txn);

  int64_t timeouts() const { return locks_.timeouts(); }
  int64_t waits() const { return locks_.waits(); }

 private:
  LtmTxnHandle HandleOf(const TxnId& txn);
  void AcquireNext(const TxnId& txn,
                   std::shared_ptr<std::vector<Granule>> granules,
                   size_t index, GrantCallback cb);

  sim::EventLoop* loop_;
  ltm::LockManager locks_;
  std::map<TxnId, LtmTxnHandle> handles_;
  LtmTxnHandle next_handle_ = 1;
};

}  // namespace hermes::cgm

#endif  // HERMES_CGM_GLOBAL_LOCKS_H_
