#include "cgm/cgm_scheduler.h"

namespace hermes::cgm {

CgmScheduler::CgmScheduler(SiteId endpoint, SiteId client_endpoint,
                           const CgmSchedulerConfig& config,
                           sim::EventLoop* loop, net::Network* network,
                           core::Metrics* metrics, trace::Tracer* tracer)
    : endpoint_(endpoint),
      client_endpoint_(client_endpoint),
      config_(config),
      loop_(loop),
      network_(network),
      metrics_(metrics),
      tracer_(tracer),
      locks_(config.lock_timeout, loop) {}

void CgmScheduler::TryAdmission(const TxnId& gtid, std::vector<SiteId> sites,
                                sim::Time deadline) {
  if (graph_.TryAdd(gtid, sites)) {
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCgmAdmission;
      e.txn = gtid;
      e.site = endpoint_;
      tracer_->Record(std::move(e));
    }
    network_->Send(endpoint_, client_endpoint_,
                   CgmMessage{CommitCheckReplyMsg{gtid, Status::Ok()}});
    return;
  }
  if (loop_->Now() >= deadline) {
    ++metrics_->cgm_graph_rejections;
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCgmAdmission;
      e.txn = gtid;
      e.site = endpoint_;
      e.ok = false;
      e.detail = "commit graph: admission would create a loop";
      tracer_->Record(std::move(e));
    }
    network_->Send(
        endpoint_, client_endpoint_,
        CgmMessage{CommitCheckReplyMsg{
            gtid,
            Status::Rejected("commit graph: admission would create a loop")}});
    return;
  }
  loop_->ScheduleAfter(config_.admission_retry_interval,
                       [this, gtid, sites = std::move(sites), deadline]() {
                         TryAdmission(gtid, sites, deadline);
                       });
}

void CgmScheduler::Handle(const net::Envelope& env) {
  const auto* msg = std::any_cast<CgmMessage>(&env.payload);
  if (msg == nullptr) return;

  if (const auto* m = std::get_if<LockRequestMsg>(msg)) {
    const TxnId gtid = m->gtid;
    const uint64_t request_id = m->request_id;
    const int64_t granules = static_cast<int64_t>(m->granules.size());
    locks_.AcquireAll(gtid, m->granules,
                      [this, gtid, request_id, granules](Status s) {
      if (!s.ok()) ++metrics_->cgm_lock_timeouts;
      if (tracer_ != nullptr) {
        trace::Event e;
        e.kind = trace::EventKind::kCgmLock;
        e.txn = gtid;
        e.site = endpoint_;
        e.value = granules;
        e.ok = s.ok();
        if (!s.ok()) e.detail = s.ToString();
        tracer_->Record(std::move(e));
      }
      network_->Send(endpoint_, client_endpoint_,
                     CgmMessage{LockReplyMsg{gtid, request_id, s}});
    });
    return;
  }
  if (const auto* m = std::get_if<CommitCheckMsg>(msg)) {
    TryAdmission(m->gtid, m->sites, loop_->Now() + config_.admission_timeout);
    return;
  }
  if (const auto* m = std::get_if<FinishedMsg>(msg)) {
    locks_.ReleaseAll(m->gtid);
    graph_.Remove(m->gtid);
  }
}

}  // namespace hermes::cgm
