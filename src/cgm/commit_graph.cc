#include "cgm/commit_graph.h"

#include <numeric>

#include "common/str.h"

namespace hermes::cgm {

namespace {

// Union-find over site ids.
class Dsu {
 public:
  int Find(SiteId s) {
    auto [it, inserted] = parent_.try_emplace(s, s);
    if (it->second == s) return s;
    const SiteId root = Find(it->second);
    parent_[s] = root;
    return root;
  }
  void Union(SiteId a, SiteId b) { parent_[Find(a)] = Find(b); }

 private:
  std::map<SiteId, SiteId> parent_;
};

}  // namespace

bool CommitGraph::TryAdd(const TxnId& txn, const std::vector<SiteId>& sites) {
  // Sites already connected through transactions in commit processing form
  // components; admitting `txn` closes a loop iff two of its sites fall in
  // the same component (including duplicates in `sites`).
  Dsu dsu;
  for (const auto& [t, t_sites] : edges_) {
    for (size_t i = 1; i < t_sites.size(); ++i) {
      dsu.Union(t_sites[0], t_sites[i]);
    }
  }
  std::set<SiteId> roots;
  for (SiteId s : sites) {
    if (!roots.insert(dsu.Find(s)).second) return false;
  }
  edges_[txn] = sites;
  return true;
}

void CommitGraph::Remove(const TxnId& txn) { edges_.erase(txn); }

std::string CommitGraph::ToString() const {
  std::string out;
  for (const auto& [txn, sites] : edges_) {
    StrAppend(out, txn.ToString(), " -- {", StrJoin(sites, ","), "}\n");
  }
  return out;
}

}  // namespace hermes::cgm
