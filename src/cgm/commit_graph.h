// The commit graph of the CGM baseline (Breitbart, Silberschatz & Thompson,
// SIGMOD 1990), as described in section 6 of the reproduced paper.
//
// An undirected bipartite graph whose nodes are global transactions and
// participating sites; an edge connects transaction T and site S while T's
// subtransaction at S is in commit processing. A *loop* (cycle) in the graph
// signals a potential conflict among global and local transactions, so
// admission of a transaction whose edges would close a cycle is refused.
// Conflict detection granularity is therefore an entire site — the paper's
// key restrictiveness argument against CGM.

#ifndef HERMES_CGM_COMMIT_GRAPH_H_
#define HERMES_CGM_COMMIT_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"

namespace hermes::cgm {

class CommitGraph {
 public:
  // Attempts to admit `txn` with edges to `sites`. Returns true and inserts
  // the edges iff no cycle arises; a single-site transaction never creates
  // a cycle.
  bool TryAdd(const TxnId& txn, const std::vector<SiteId>& sites);

  // Removes the transaction's edges (commit processing finished).
  void Remove(const TxnId& txn);

  bool Contains(const TxnId& txn) const { return edges_.count(txn) != 0; }
  size_t txn_count() const { return edges_.size(); }

  std::string ToString() const;

 private:
  std::map<TxnId, std::vector<SiteId>> edges_;
};

}  // namespace hermes::cgm

#endif  // HERMES_CGM_COMMIT_GRAPH_H_
