#include "cgm/global_locks.h"

#include <memory>
#include <utility>

namespace hermes::cgm {

const char* GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kSite:
      return "site";
    case Granularity::kTable:
      return "table";
    case Granularity::kItem:
      return "item";
  }
  return "?";
}

std::vector<Granule> GranulesOf(Granularity granularity, SiteId site,
                                const db::Command& cmd) {
  const ltm::LockMode mode = db::CommandWrites(cmd)
                                 ? ltm::LockMode::kExclusive
                                 : ltm::LockMode::kShared;
  switch (granularity) {
    case Granularity::kSite:
      return {Granule{ItemId{site, -1, -1}, mode}};
    case Granularity::kTable:
      return {Granule{ItemId{site, db::CommandTable(cmd), -1}, mode}};
    case Granularity::kItem: {
      const db::TableId table = db::CommandTable(cmd);
      if (const auto* ins = std::get_if<db::InsertCmd>(&cmd)) {
        return {Granule{ItemId{site, table, ins->key}, mode}};
      }
      const db::Predicate* pred = nullptr;
      if (const auto* sel = std::get_if<db::SelectCmd>(&cmd)) {
        pred = &sel->pred;
      } else if (const auto* upd = std::get_if<db::UpdateCmd>(&cmd)) {
        pred = &upd->pred;
      } else {
        pred = &std::get<db::DeleteCmd>(cmd).pred;
      }
      if (auto key = pred->ExactKey()) {
        return {Granule{ItemId{site, table, *key}, mode}};
      }
      // Escalate: the matched set is unknown without reading.
      return {Granule{ItemId{site, table, -1}, mode}};
    }
  }
  return {};
}

GlobalLockManager::GlobalLockManager(sim::Duration wait_timeout,
                                     sim::EventLoop* loop)
    : loop_(loop),
      locks_(ltm::LockManagerConfig{wait_timeout}, loop) {}

LtmTxnHandle GlobalLockManager::HandleOf(const TxnId& txn) {
  auto [it, inserted] = handles_.try_emplace(txn, next_handle_);
  if (inserted) ++next_handle_;
  return it->second;
}

void GlobalLockManager::AcquireAll(const TxnId& txn,
                                   std::vector<Granule> granules,
                                   GrantCallback cb) {
  if (granules.empty()) {
    loop_->ScheduleAfter(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }
  auto shared = std::make_shared<std::vector<Granule>>(std::move(granules));
  AcquireNext(txn, std::move(shared), 0, std::move(cb));
}

void GlobalLockManager::AcquireNext(
    const TxnId& txn, std::shared_ptr<std::vector<Granule>> granules,
    size_t index, GrantCallback cb) {
  if (index >= granules->size()) {
    cb(Status::Ok());
    return;
  }
  const Granule& g = (*granules)[index];
  const LtmTxnHandle handle = HandleOf(txn);
  locks_.Acquire(handle, g.id, g.mode,
                 [this, txn, granules, index, cb](Status s) mutable {
                   if (!s.ok()) {
                     cb(std::move(s));
                     return;
                   }
                   AcquireNext(txn, granules, index + 1, std::move(cb));
                 });
}

void GlobalLockManager::ReleaseAll(const TxnId& txn) {
  auto it = handles_.find(txn);
  if (it == handles_.end()) return;
  locks_.ReleaseAll(it->second);
  handles_.erase(it);
}

}  // namespace hermes::cgm
