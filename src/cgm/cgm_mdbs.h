// Assembly of the CGM baseline: a standard Mdbs whose agents run with
// certification disabled (resubmission only), plus the centralized scheduler
// interposed through coordinator hooks — global granule locks before every
// step, commit-graph admission before the PREPARE fan-out, and release on
// completion.
//
// Data partitioning: CGM restricts local transactions to a *locally
// updateable* data set that updating global transactions may not read; the
// workload driver realizes the partition by giving CGM's local clients
// dedicated tables (see workload/driver.cc).

#ifndef HERMES_CGM_CGM_MDBS_H_
#define HERMES_CGM_CGM_MDBS_H_

#include <map>
#include <memory>

#include "cgm/cgm_scheduler.h"
#include "core/mdbs.h"

namespace hermes::cgm {

struct CgmConfig {
  core::MdbsConfig mdbs;
  Granularity granularity = Granularity::kSite;
  sim::Duration global_lock_timeout = 1 * sim::kSecond;
  CgmSchedulerConfig scheduler;
};

class CgmMdbs {
 public:
  CgmMdbs(const CgmConfig& config, sim::EventLoop* loop);

  CgmMdbs(const CgmMdbs&) = delete;
  CgmMdbs& operator=(const CgmMdbs&) = delete;

  core::Mdbs& mdbs() { return *mdbs_; }
  const CgmScheduler& scheduler() const { return *scheduler_; }

  // Convenience passthroughs.
  TxnId Submit(core::GlobalTxnSpec spec, core::GlobalTxnCallback cb,
               SiteId coordinator_site = kInvalidSite) {
    return mdbs_->Submit(std::move(spec), std::move(cb), coordinator_site);
  }
  TxnId SubmitLocal(core::LocalTxnSpec spec, core::LocalTxnCallback cb) {
    return mdbs_->SubmitLocal(std::move(spec), std::move(cb));
  }

 private:
  void HandleReply(const net::Envelope& env);

  CgmConfig config_;
  sim::EventLoop* loop_;
  std::unique_ptr<core::Mdbs> mdbs_;
  SiteId scheduler_endpoint_ = kInvalidSite;
  SiteId stub_endpoint_ = kInvalidSite;
  std::unique_ptr<CgmScheduler> scheduler_;

  uint64_t next_request_id_ = 1;
  // In-flight lock requests / commit checks awaiting scheduler replies.
  std::map<uint64_t, std::function<void(const Status&)>> pending_locks_;
  std::map<TxnId, std::function<void(const Status&)>> pending_checks_;
};

}  // namespace hermes::cgm

#endif  // HERMES_CGM_CGM_MDBS_H_
