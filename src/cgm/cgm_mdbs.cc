#include "cgm/cgm_mdbs.h"

namespace hermes::cgm {

CgmMdbs::CgmMdbs(const CgmConfig& config, sim::EventLoop* loop)
    : config_(config), loop_(loop) {
  // CGM agents do resubmission but no certification: the global locks and
  // the commit graph provide the serializability protection.
  config_.mdbs.agent.policy = core::CertPolicy::kNone;
  mdbs_ = std::make_unique<core::Mdbs>(config_.mdbs, loop_);

  scheduler_endpoint_ = config_.mdbs.num_sites;
  stub_endpoint_ = config_.mdbs.num_sites + 1;
  CgmSchedulerConfig scheduler_config = config_.scheduler;
  scheduler_config.lock_timeout = config_.global_lock_timeout;
  scheduler_ = std::make_unique<CgmScheduler>(
      scheduler_endpoint_, stub_endpoint_, scheduler_config, loop_,
      &mdbs_->network(), &mdbs_->scheduler_metrics(), config_.mdbs.tracer);
  mdbs_->network().RegisterEndpoint(
      scheduler_endpoint_,
      [this](const net::Envelope& env) { scheduler_->Handle(env); });
  mdbs_->network().RegisterEndpoint(
      stub_endpoint_,
      [this](const net::Envelope& env) { HandleReply(env); });

  core::CoordinatorHooks hooks;
  hooks.before_step = [this](const TxnId& gtid,
                             const core::GlobalTxnSpec::Step& step,
                             std::function<void(const Status&)> done) {
    std::vector<Granule> granules =
        GranulesOf(config_.granularity, step.site, step.cmd);
    const uint64_t request_id = next_request_id_++;
    pending_locks_[request_id] = std::move(done);
    mdbs_->network().Send(
        stub_endpoint_, scheduler_endpoint_,
        CgmMessage{LockRequestMsg{gtid, request_id, std::move(granules)}});
  };
  hooks.before_prepare = [this](const TxnId& gtid,
                                const std::vector<SiteId>& sites,
                                std::function<void(const Status&)> done) {
    pending_checks_[gtid] = std::move(done);
    mdbs_->network().Send(stub_endpoint_, scheduler_endpoint_,
                          CgmMessage{CommitCheckMsg{gtid, sites}});
  };
  hooks.on_finished = [this](const TxnId& gtid, bool /*committed*/) {
    mdbs_->network().Send(stub_endpoint_, scheduler_endpoint_,
                          CgmMessage{FinishedMsg{gtid}});
  };
  mdbs_->SetCoordinatorHooks(hooks);
}

void CgmMdbs::HandleReply(const net::Envelope& env) {
  const auto* msg = std::any_cast<CgmMessage>(&env.payload);
  if (msg == nullptr) return;
  if (const auto* m = std::get_if<LockReplyMsg>(msg)) {
    auto it = pending_locks_.find(m->request_id);
    if (it == pending_locks_.end()) return;
    auto done = std::move(it->second);
    pending_locks_.erase(it);
    done(m->status);
    return;
  }
  if (const auto* m = std::get_if<CommitCheckReplyMsg>(msg)) {
    auto it = pending_checks_.find(m->gtid);
    if (it == pending_checks_.end()) return;
    auto done = std::move(it->second);
    pending_checks_.erase(it);
    done(m->status);
  }
}

}  // namespace hermes::cgm
