#include "consensus/paxos.h"

#include <algorithm>
#include <utility>

namespace hermes::consensus {

PaxosCommit::PaxosCommit(const PaxosConfig& config, sim::EventLoop* loop,
                         net::Network* network, history::Recorder* recorder,
                         core::Metrics* metrics, trace::Tracer* tracer)
    : config_(config),
      f_(std::min(config.f, (config.num_sites - 1) / 2)),
      loop_(loop),
      network_(network),
      recorder_(recorder),
      metrics_(metrics),
      tracer_(tracer) {
  if (f_ < 0) f_ = 0;
}

PaxosCommit::~PaxosCommit() {
  for (auto& [gtid, l] : leaders_) CancelTimer(l.decide_timer);
  for (auto& [gtid, r] : resolvers_) CancelTimer(r.retry_timer);
}

void PaxosCommit::CancelTimer(sim::EventId& id) {
  if (id != sim::kInvalidEvent) {
    loop_->Cancel(id);
    id = sim::kInvalidEvent;
  }
}

void PaxosCommit::TraceEvent(trace::EventKind kind, const TxnId& gtid,
                             SiteId peer, int64_t value, bool ok) {
  if (tracer_ == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.txn = gtid;
  e.site = config_.site;
  e.peer = peer;
  e.value = value;
  e.ok = ok;
  tracer_->Record(std::move(e));
}

void PaxosCommit::SendToAcceptors(const core::Message& msg) {
  for (SiteId a = 0; a < static_cast<SiteId>(num_acceptors()); ++a) {
    network_->Send(config_.site, a, msg);
  }
}

// --- leader role -------------------------------------------------------------

void PaxosCommit::BeginDecision(const TxnId& gtid,
                                const std::vector<SiteId>& participants) {
  LeaderTxn& l = leaders_[gtid];
  l.participants = participants;
  TraceEvent(trace::EventKind::kPaxosBegin, gtid, kInvalidSite,
             static_cast<int64_t>(participants.size()), true);
  core::PaxosBeginMsg msg;
  msg.gtid = gtid;
  msg.leader = config_.site;
  msg.participants = participants;
  SendToAcceptors(core::Message{msg});
}

void PaxosCommit::Decide(const TxnId& gtid, DecideMode mode,
                         const std::vector<SiteId>& participants,
                         int64_t /*csn*/, DecidedFn done) {
  // Paxos Commit does not persist per-decision metadata; CSN certification
  // is 2PC-only (Mdbs downgrades the knob) so the csn is always -1 here.
  if (mode == DecideMode::kAbortFinal) {
    // A definite refusal: no READY value can ever be chosen for the
    // refusing instance (its RM only ever proposed REFUSE at ballot 0, and
    // resolvers propose REFUSE for free instances), so every resolver
    // reaches the same abort. Seal it locally and answer immediately.
    auto it = leaders_.find(gtid);
    if (it != leaders_.end()) CancelTimer(it->second.decide_timer);
    decided_.emplace(gtid, false);
    TraceEvent(trace::EventKind::kPaxosDecided, gtid, kInvalidSite,
               /*value=*/-1, /*ok=*/false);
    done(gtid, false);
    return;
  }
  LeaderTxn& l = leaders_[gtid];
  if (l.participants.empty()) l.participants = participants;
  l.decide_requested = true;
  l.done = std::move(done);
  if (mode == DecideMode::kAbortTimeout) {
    // Votes are missing; the outcome is genuinely open (a prepared RM's
    // broadcast may have reached the acceptors even though the VoteMsg to
    // the coordinator was lost). Only a consensus round may seal it.
    StartResolve(gtid);
    return;
  }
  // kCommit: every participant told the coordinator READY. Wait for the
  // ballot-0 fast path; fall back to a resolution round on timeout.
  CheckFastPath(gtid);
  if (decided_.count(gtid) != 0) return;
  LeaderTxn& l2 = leaders_[gtid];  // CheckFastPath may not have finished
  if (l2.decide_timer == sim::kInvalidEvent) {
    l2.decide_timer = loop_->ScheduleAfter(
        config_.decide_timeout, [this, gtid]() {
          auto it = leaders_.find(gtid);
          if (it == leaders_.end()) return;
          it->second.decide_timer = sim::kInvalidEvent;
          if (decided_.count(gtid) == 0) StartResolve(gtid);
        });
  }
}

void PaxosCommit::CheckFastPath(const TxnId& gtid) {
  auto it = leaders_.find(gtid);
  if (it == leaders_.end() || decided_.count(gtid) != 0) return;
  LeaderTxn& l = it->second;
  if (!l.decide_requested) return;
  if (static_cast<int>(l.begin_acks.size()) < quorum()) return;
  for (SiteId p : l.participants) {
    auto rit = l.ready_2b.find(p);
    if (rit == l.ready_2b.end() ||
        static_cast<int>(rit->second.size()) < quorum()) {
      return;
    }
  }
  ++metrics_->paxos_decided_fast;
  Finish(gtid, /*commit=*/true, /*ballot=*/0);
}

std::optional<bool> PaxosCommit::AnswerInquiry(const TxnId& gtid,
                                               SiteId requester) {
  auto it = decided_.find(gtid);
  if (it != decided_.end()) return it->second;
  requesters_[gtid].insert(requester);
  StartResolve(gtid);
  return std::nullopt;
}

void PaxosCommit::Forget(const TxnId& gtid) {
  auto it = leaders_.find(gtid);
  if (it != leaders_.end()) {
    CancelTimer(it->second.decide_timer);
    leaders_.erase(it);
  }
  requesters_.erase(gtid);
}

void PaxosCommit::Crash() {
  // Everything but the acceptor log is volatile. Decided outcomes are
  // recoverable from the acceptor quorum, so the cache may be dropped too.
  for (auto& [gtid, l] : leaders_) CancelTimer(l.decide_timer);
  for (auto& [gtid, r] : resolvers_) CancelTimer(r.retry_timer);
  leaders_.clear();
  resolvers_.clear();
  acceptor_.clear();
  decided_.clear();
  requesters_.clear();
}

std::vector<DecisionProtocol::InFlight> PaxosCommit::RecoverInFlight() {
  // Nothing to re-drive from the coordinator: outcomes live in the acceptor
  // quorum and prepared agents pull them via inquiry escalation.
  return {};
}

void PaxosCommit::Recover() {
  // Replay the durable records in order; the latest record per key wins.
  for (const AcceptorLogRecord& rec : log_.records()) {
    AcceptorTxn& a = acceptor_[rec.gtid];
    switch (rec.kind) {
      case AcceptorRecordKind::kPromise:
        a.promised = std::max(a.promised, rec.ballot);
        break;
      case AcceptorRecordKind::kMembership:
        if (rec.ballot >= a.membership_ballot) {
          a.membership_ballot = rec.ballot;
          a.membership = rec.membership;
        }
        break;
      case AcceptorRecordKind::kVote: {
        Slot& s = a.votes[rec.participant];
        if (rec.ballot >= s.ballot) {
          s.ballot = rec.ballot;
          s.ready = rec.ready;
        }
        break;
      }
    }
  }
}

// --- participant (RM) side ---------------------------------------------------

void PaxosCommit::BroadcastVote(const TxnId& gtid, bool ready, SiteId leader) {
  core::PaxosVoteMsg msg;
  msg.gtid = gtid;
  msg.participant = config_.site;
  msg.leader = leader;
  msg.ready = ready;
  SendToAcceptors(core::Message{msg});
}

void PaxosCommit::Escalate(const TxnId& gtid, SiteId coordinator,
                           int attempt) {
  requesters_[gtid].insert(config_.site);
  auto it = decided_.find(gtid);
  if (it != decided_.end()) {
    network_->Send(config_.site, config_.site,
                   core::Message{core::DecisionMsg{gtid, it->second}});
    return;
  }
  if (resolvers_.count(gtid) != 0) return;  // election already running
  ++metrics_->paxos_elections;
  TraceEvent(trace::EventKind::kPaxosElect, gtid, coordinator, attempt, true);
  StartResolve(gtid);
}

// --- message plumbing --------------------------------------------------------

void PaxosCommit::Handle(SiteId from, const core::Message& msg) {
  if (const auto* m = std::get_if<core::PaxosBeginMsg>(&msg)) {
    OnBegin(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosBeginAckMsg>(&msg)) {
    OnBeginAck(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosVoteMsg>(&msg)) {
    OnVote(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosVotedMsg>(&msg)) {
    OnVoted(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosPrepareMsg>(&msg)) {
    OnPrepare(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosPromiseMsg>(&msg)) {
    OnPromise(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosProposeMsg>(&msg)) {
    OnPropose(from, *m);
  } else if (const auto* m = std::get_if<core::PaxosAcceptedMsg>(&msg)) {
    OnAccepted(from, *m);
  }
}

// --- acceptor role -----------------------------------------------------------

void PaxosCommit::OnBegin(SiteId /*from*/, const core::PaxosBeginMsg& msg) {
  AcceptorTxn& a = acceptor_[msg.gtid];
  if (a.membership_ballot == 0) {
    // Duplicate: re-ack (the first ack may have raced a leader restart).
    network_->Send(config_.site, msg.leader,
                   core::Message{core::PaxosBeginAckMsg{msg.gtid}});
    return;
  }
  if (a.promised > 0 || a.membership_ballot > 0) return;  // resolver took over
  a.membership_ballot = 0;
  a.membership = msg.participants;
  AcceptorLogRecord rec;
  rec.kind = AcceptorRecordKind::kMembership;
  rec.gtid = msg.gtid;
  rec.ballot = 0;
  rec.membership = msg.participants;
  log_.ForceAppend(std::move(rec));
  ++metrics_->paxos_forced_writes;
  network_->Send(config_.site, msg.leader,
                 core::Message{core::PaxosBeginAckMsg{msg.gtid}});
}

void PaxosCommit::OnVote(SiteId /*from*/, const core::PaxosVoteMsg& msg) {
  AcceptorTxn& a = acceptor_[msg.gtid];
  Slot& s = a.votes[msg.participant];
  if (s.ballot == 0) {
    // Duplicate ballot-0 vote: re-send the 2b.
    network_->Send(config_.site, msg.leader,
                   core::Message{core::PaxosVotedMsg{msg.gtid,
                                                     msg.participant,
                                                     s.ready}});
    return;
  }
  if (a.promised > 0 || s.ballot > 0) return;  // resolver took over
  s.ballot = 0;
  s.ready = msg.ready;
  AcceptorLogRecord rec;
  rec.kind = AcceptorRecordKind::kVote;
  rec.gtid = msg.gtid;
  rec.ballot = 0;
  rec.participant = msg.participant;
  rec.ready = msg.ready;
  log_.ForceAppend(std::move(rec));
  ++metrics_->paxos_forced_writes;
  ++metrics_->paxos_votes_accepted;
  TraceEvent(trace::EventKind::kPaxosVote, msg.gtid, msg.participant,
             /*value=*/0, msg.ready);
  network_->Send(
      config_.site, msg.leader,
      core::Message{core::PaxosVotedMsg{msg.gtid, msg.participant, s.ready}});
}

void PaxosCommit::OnPrepare(SiteId from, const core::PaxosPrepareMsg& msg) {
  AcceptorTxn& a = acceptor_[msg.gtid];
  if (msg.ballot <= a.promised) return;  // an equal/higher ballot holds
  a.promised = msg.ballot;
  AcceptorLogRecord rec;
  rec.kind = AcceptorRecordKind::kPromise;
  rec.gtid = msg.gtid;
  rec.ballot = msg.ballot;
  log_.ForceAppend(std::move(rec));
  ++metrics_->paxos_forced_writes;
  TraceEvent(trace::EventKind::kPaxosPromise, msg.gtid, from, msg.ballot,
             true);
  core::PaxosPromiseMsg reply;
  reply.gtid = msg.gtid;
  reply.ballot = msg.ballot;
  reply.membership_ballot = a.membership_ballot;
  reply.membership = a.membership;
  for (const auto& [participant, slot] : a.votes) {
    if (slot.ballot < 0) continue;
    reply.votes.push_back(core::PaxosPromiseMsg::AcceptedVote{
        participant, slot.ballot, slot.ready});
  }
  network_->Send(config_.site, from, core::Message{std::move(reply)});
}

void PaxosCommit::OnPropose(SiteId from, const core::PaxosProposeMsg& msg) {
  AcceptorTxn& a = acceptor_[msg.gtid];
  if (msg.ballot < a.promised) return;
  a.promised = msg.ballot;
  a.membership_ballot = msg.ballot;
  a.membership = msg.membership;
  AcceptorLogRecord mrec;
  mrec.kind = AcceptorRecordKind::kMembership;
  mrec.gtid = msg.gtid;
  mrec.ballot = msg.ballot;
  mrec.membership = msg.membership;
  log_.ForceAppend(std::move(mrec));
  ++metrics_->paxos_forced_writes;
  for (SiteId p : msg.membership) {
    Slot& s = a.votes[p];
    s.ballot = msg.ballot;
    s.ready = std::find(msg.ready_participants.begin(),
                        msg.ready_participants.end(),
                        p) != msg.ready_participants.end();
    AcceptorLogRecord rec;
    rec.kind = AcceptorRecordKind::kVote;
    rec.gtid = msg.gtid;
    rec.ballot = msg.ballot;
    rec.participant = p;
    rec.ready = s.ready;
    log_.ForceAppend(std::move(rec));
    ++metrics_->paxos_forced_writes;
  }
  const bool would_commit =
      !msg.membership.empty() &&
      msg.ready_participants.size() == msg.membership.size();
  TraceEvent(trace::EventKind::kPaxosAccept, msg.gtid, from, msg.ballot,
             would_commit);
  network_->Send(config_.site, from,
                 core::Message{core::PaxosAcceptedMsg{msg.gtid, msg.ballot}});
}

// --- leader / resolver replies ----------------------------------------------

void PaxosCommit::OnBeginAck(SiteId from, const core::PaxosBeginAckMsg& msg) {
  auto it = leaders_.find(msg.gtid);
  if (it == leaders_.end()) return;
  it->second.begin_acks.insert(from);
  CheckFastPath(msg.gtid);
}

void PaxosCommit::OnVoted(SiteId from, const core::PaxosVotedMsg& msg) {
  auto it = leaders_.find(msg.gtid);
  if (it == leaders_.end() || !msg.ready) return;
  it->second.ready_2b[msg.participant].insert(from);
  CheckFastPath(msg.gtid);
}

void PaxosCommit::StartResolve(const TxnId& gtid) {
  if (decided_.count(gtid) != 0 || resolvers_.count(gtid) != 0) return;
  ResolverTxn& r = resolvers_[gtid];
  r.attempt = 0;
  r.ballot = NextBallot(0);
  ++metrics_->paxos_resolutions;
  SendResolvePrepare(gtid, r);
}

void PaxosCommit::SendResolvePrepare(const TxnId& gtid, ResolverTxn& r) {
  r.promises.clear();
  r.accepts.clear();
  r.proposed = false;
  TraceEvent(trace::EventKind::kPaxosPrepare, gtid, kInvalidSite, r.ballot,
             true);
  SendToAcceptors(core::Message{core::PaxosPrepareMsg{gtid, r.ballot}});
  CancelTimer(r.retry_timer);
  sim::Duration delay = config_.resolve_retry_initial;
  for (int i = 0; i < r.attempt; ++i) {
    delay = std::min(delay * 2, config_.resolve_retry_max);
  }
  r.retry_timer =
      loop_->ScheduleAfter(delay, [this, gtid]() { OnResolveRetry(gtid); });
}

void PaxosCommit::OnResolveRetry(const TxnId& gtid) {
  auto it = resolvers_.find(gtid);
  if (it == resolvers_.end()) return;
  ResolverTxn& r = it->second;
  r.retry_timer = sim::kInvalidEvent;
  if (decided_.count(gtid) != 0) {
    resolvers_.erase(it);
    return;
  }
  // The round stalled (acceptor down, messages lost, or a higher ballot in
  // the way): retry at a fresh, strictly higher site-unique ballot.
  ++r.attempt;
  r.ballot = NextBallot(r.attempt);
  SendResolvePrepare(gtid, r);
}

void PaxosCommit::OnPromise(SiteId from, const core::PaxosPromiseMsg& msg) {
  auto it = resolvers_.find(msg.gtid);
  if (it == resolvers_.end()) return;
  ResolverTxn& r = it->second;
  if (msg.ballot != r.ballot || r.proposed) return;
  r.promises[from] = msg;
  if (static_cast<int>(r.promises.size()) < quorum()) return;
  // Phase 2a: adopt the highest-ballot accepted membership; if none was
  // accepted anywhere in the quorum, the original leader may propose its
  // real set, any other resolver must propose the empty abort marker.
  int64_t best_ballot = -1;
  std::vector<SiteId> membership;
  for (const auto& [site, promise] : r.promises) {
    if (promise.membership_ballot > best_ballot) {
      best_ballot = promise.membership_ballot;
      membership = promise.membership;
    }
  }
  if (best_ballot < 0) {
    auto lit = leaders_.find(msg.gtid);
    if (lit != leaders_.end() && !lit->second.participants.empty()) {
      membership = lit->second.participants;
    } else {
      membership.clear();  // abort marker
    }
  }
  // Per instance in the membership: adopt the highest-ballot accepted vote,
  // or REFUSE if the instance is free.
  std::vector<SiteId> ready;
  for (SiteId p : membership) {
    int64_t vb = -1;
    bool vready = false;
    for (const auto& [site, promise] : r.promises) {
      for (const auto& v : promise.votes) {
        if (v.participant == p && v.ballot > vb) {
          vb = v.ballot;
          vready = v.ready;
        }
      }
    }
    if (vb >= 0 && vready) ready.push_back(p);
  }
  r.proposed = true;
  r.prop_membership = std::move(membership);
  r.prop_ready = std::move(ready);
  core::PaxosProposeMsg prop;
  prop.gtid = msg.gtid;
  prop.ballot = r.ballot;
  prop.membership = r.prop_membership;
  prop.ready_participants = r.prop_ready;
  SendToAcceptors(core::Message{std::move(prop)});
}

void PaxosCommit::OnAccepted(SiteId from, const core::PaxosAcceptedMsg& msg) {
  auto it = resolvers_.find(msg.gtid);
  if (it == resolvers_.end()) return;
  ResolverTxn& r = it->second;
  if (msg.ballot != r.ballot || !r.proposed) return;
  r.accepts.insert(from);
  if (static_cast<int>(r.accepts.size()) < quorum()) return;
  const bool commit = !r.prop_membership.empty() &&
                      r.prop_ready.size() == r.prop_membership.size();
  ++metrics_->paxos_decided_resolved;
  Finish(msg.gtid, commit, r.ballot);
}

// --- outcome -----------------------------------------------------------------

void PaxosCommit::Finish(const TxnId& gtid, bool commit, int64_t ballot) {
  if (decided_.count(gtid) != 0) return;
  decided_.emplace(gtid, commit);
  TraceEvent(trace::EventKind::kPaxosDecided, gtid, kInvalidSite, ballot,
             commit);
  std::vector<SiteId> participants;
  auto rit = resolvers_.find(gtid);
  if (rit != resolvers_.end()) {
    participants = rit->second.prop_membership;
    CancelTimer(rit->second.retry_timer);
    resolvers_.erase(rit);
  }
  DecidedFn done;
  auto lit = leaders_.find(gtid);
  if (lit != leaders_.end()) {
    if (participants.empty()) participants = lit->second.participants;
    CancelTimer(lit->second.decide_timer);
    done = std::move(lit->second.done);
    lit->second.done = nullptr;
  }
  if (done) {
    // The co-located coordinator is alive: it records the outcome in the
    // history and fans out the decision itself.
    done(gtid, commit);
    return;
  }
  // Resolver path — the coordinator is dead or never asked. Record the
  // global outcome (the Recorder deduplicates against a coordinator that
  // recorded before crashing, and against other resolvers) and deliver the
  // decision to every participant and inquirer directly.
  if (commit) {
    recorder_->RecordGlobalCommit(gtid, config_.site);
  } else {
    recorder_->RecordGlobalAbort(gtid, config_.site);
  }
  std::set<SiteId> targets(participants.begin(), participants.end());
  auto qit = requesters_.find(gtid);
  if (qit != requesters_.end()) {
    targets.insert(qit->second.begin(), qit->second.end());
    requesters_.erase(qit);
  }
  for (SiteId s : targets) {
    network_->Send(config_.site, s,
                   core::Message{core::DecisionMsg{gtid, commit}});
  }
}

}  // namespace hermes::consensus
