// Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"):
// a non-blocking replacement for the 2PC decision step.
//
// One instance of this class runs at every site and plays three roles:
//
//  - *Leader* (DecisionProtocol for the co-located Coordinator): announces
//    the participant set to the 2F+1 acceptors at ballot 0 and watches for
//    the fast path — membership chosen plus an F+1 quorum of ballot-0
//    READY accepts for every participant instance.
//  - *Acceptor* (sites 0..2F): one durable state machine per transaction
//    holding the promised ballot, the accepted membership value and the
//    accepted value of each participant's vote instance. Every accept is
//    force-written to the AcceptorLog before the 2b reply leaves the site,
//    so any F acceptor crashes are survivable.
//  - *Resolver* (leader election): any site can finish the protocol by
//    running classic Paxos phases 1-2 over all of the transaction's
//    instances at a site-unique ballot. Prepared agents escalate here when
//    their INQUIRY backoff exhausts (the coordinator is presumed dead).
//
// The participant set is itself consensus state (a per-transaction
// "membership synod"): the leader proposes the real set at ballot 0, and a
// resolver that finds no accepted membership in its promise quorum proposes
// the empty set — an abort marker. The transaction commits iff the chosen
// membership M is non-empty and every instance in M chose READY; this makes
// "which votes must be READY" itself crash-consistent, so two independent
// resolvers can never split the outcome.

#ifndef HERMES_CONSENSUS_PAXOS_H_
#define HERMES_CONSENSUS_PAXOS_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/acceptor_log.h"
#include "consensus/decision.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "history/recorder.h"
#include "net/network.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::consensus {

struct PaxosConfig {
  SiteId site = kInvalidSite;
  int num_sites = 0;
  // Fault tolerance: 2f+1 acceptors (sites 0..2f) survive any f crashes.
  // Clamped so the acceptor set fits in num_sites.
  int f = 1;
  // Leader-side wait for the ballot-0 fast path before falling back to a
  // resolution round.
  sim::Duration decide_timeout = 60 * sim::kMillisecond;
  // Resolver round retry backoff (doubled per attempt, capped).
  sim::Duration resolve_retry_initial = 50 * sim::kMillisecond;
  sim::Duration resolve_retry_max = 400 * sim::kMillisecond;
};

class PaxosCommit : public DecisionProtocol {
 public:
  // `tracer` may be null. All pointers are unowned and must outlive this.
  PaxosCommit(const PaxosConfig& config, sim::EventLoop* loop,
              net::Network* network, history::Recorder* recorder,
              core::Metrics* metrics, trace::Tracer* tracer = nullptr);
  ~PaxosCommit() override;

  PaxosCommit(const PaxosCommit&) = delete;
  PaxosCommit& operator=(const PaxosCommit&) = delete;

  // --- DecisionProtocol (leader role, driven by the local Coordinator) ---
  void BeginDecision(const TxnId& gtid,
                     const std::vector<SiteId>& participants) override;
  void Decide(const TxnId& gtid, DecideMode mode,
              const std::vector<SiteId>& participants, int64_t csn,
              DecidedFn done) override;
  std::optional<bool> AnswerInquiry(const TxnId& gtid,
                                    SiteId requester) override;
  void Forget(const TxnId& gtid) override;
  void Crash() override;
  std::vector<InFlight> RecoverInFlight() override;
  bool PresumesAbortOnCrash() const override { return false; }

  // Rebuilds the acceptor state machines from the durable log after a site
  // crash (volatile leader/resolver state is not rebuilt: prepared agents
  // re-escalate). Called by Mdbs::RecoverSite.
  void Recover();

  // Paxos protocol messages routed here by Mdbs.
  void Handle(SiteId from, const core::Message& msg);

  // Participant (RM) side: broadcasts this site's READY/REFUSE vote to the
  // acceptors at ballot 0. Invoked from the agent's vote hook, alongside
  // the classic VoteMsg to the coordinator.
  void BroadcastVote(const TxnId& gtid, bool ready, SiteId leader);

  // A prepared agent's inquiry backoff ran out: assume the coordinator is
  // dead and run a resolution round (leader election).
  void Escalate(const TxnId& gtid, SiteId coordinator, int attempt);

  const AcceptorLog& log() const { return log_; }
  int num_acceptors() const { return 2 * f_ + 1; }
  int quorum() const { return f_ + 1; }

 private:
  // One participant-vote instance as an acceptor sees it.
  struct Slot {
    int64_t ballot = -1;  // -1 = nothing accepted
    bool ready = false;
  };
  struct AcceptorTxn {
    int64_t promised = 0;  // highest promised ballot (0 = fast path open)
    int64_t membership_ballot = -1;
    std::vector<SiteId> membership;
    std::map<SiteId, Slot> votes;  // by participant
  };
  struct LeaderTxn {
    std::vector<SiteId> participants;
    bool decide_requested = false;
    DecidedFn done;
    std::set<SiteId> begin_acks;                  // membership 2b quorum
    std::map<SiteId, std::set<SiteId>> ready_2b;  // participant -> acceptors
    sim::EventId decide_timer = sim::kInvalidEvent;
  };
  struct ResolverTxn {
    int attempt = 0;
    int64_t ballot = 0;
    std::map<SiteId, core::PaxosPromiseMsg> promises;
    bool proposed = false;
    std::vector<SiteId> prop_membership;
    std::vector<SiteId> prop_ready;
    std::set<SiteId> accepts;
    sim::EventId retry_timer = sim::kInvalidEvent;
  };

  // Acceptor handlers.
  void OnBegin(SiteId from, const core::PaxosBeginMsg& msg);
  void OnVote(SiteId from, const core::PaxosVoteMsg& msg);
  void OnPrepare(SiteId from, const core::PaxosPrepareMsg& msg);
  void OnPropose(SiteId from, const core::PaxosProposeMsg& msg);
  // Leader / resolver handlers.
  void OnBeginAck(SiteId from, const core::PaxosBeginAckMsg& msg);
  void OnVoted(SiteId from, const core::PaxosVotedMsg& msg);
  void OnPromise(SiteId from, const core::PaxosPromiseMsg& msg);
  void OnAccepted(SiteId from, const core::PaxosAcceptedMsg& msg);

  void CheckFastPath(const TxnId& gtid);
  void StartResolve(const TxnId& gtid);
  void SendResolvePrepare(const TxnId& gtid, ResolverTxn& r);
  void OnResolveRetry(const TxnId& gtid);
  void Finish(const TxnId& gtid, bool commit, int64_t ballot);
  void SendToAcceptors(const core::Message& msg);
  int64_t NextBallot(int attempt) const {
    return static_cast<int64_t>(attempt) * config_.num_sites + config_.site +
           1;
  }
  void TraceEvent(trace::EventKind kind, const TxnId& gtid, SiteId peer,
                  int64_t value, bool ok);
  void CancelTimer(sim::EventId& id);

  PaxosConfig config_;
  int f_;
  sim::EventLoop* loop_;
  net::Network* network_;
  history::Recorder* recorder_;
  core::Metrics* metrics_;
  trace::Tracer* tracer_;

  // std::map keyed by TxnId: iterated on Crash(), so ordering must be
  // deterministic.
  std::map<TxnId, AcceptorTxn> acceptor_;
  std::map<TxnId, LeaderTxn> leaders_;
  std::map<TxnId, ResolverTxn> resolvers_;
  // Chosen outcomes this site has learned. Survives Forget so late
  // inquiries still get a definite answer; wiped by Crash (the acceptor
  // quorum is the durable truth).
  std::map<TxnId, bool> decided_;
  // Sites owed a DecisionMsg once the outcome is known (inquirers and the
  // escalating site itself).
  std::map<TxnId, std::set<SiteId>> requesters_;
  AcceptorLog log_;
};

}  // namespace hermes::consensus

#endif  // HERMES_CONSENSUS_PAXOS_H_
