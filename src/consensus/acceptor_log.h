// Stable storage of one Paxos Commit acceptor, modeled on
// core::CoordinatorLog: an in-memory append-only record list with an
// explicit force-write flag, so the log discipline (force before reply)
// stays visible and testable.
//
// Three record kinds capture everything an acceptor promises:
//  - kPromise: highest ballot promised for a transaction (phase 1b).
//  - kMembership: the accepted participant-set value of the per-transaction
//    membership synod (ballot 0 = the real set proposed by the leader; a
//    higher-ballot empty set is the abort marker chosen by a resolver that
//    found no membership in its quorum).
//  - kVote: the accepted value of one participant's vote instance
//    (ballot 0 = the RM's own vote; higher ballots = resolver proposals).
//
// Recovery replays the records in order; the latest record per key wins,
// exactly reproducing the acceptor's volatile tables at crash time.

#ifndef HERMES_CONSENSUS_ACCEPTOR_LOG_H_
#define HERMES_CONSENSUS_ACCEPTOR_LOG_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace hermes::consensus {

enum class AcceptorRecordKind : uint8_t {
  kPromise,     // promised ballot for gtid
  kMembership,  // accepted membership value at ballot
  kVote,        // accepted vote value for (gtid, participant) at ballot
};

struct AcceptorLogRecord {
  AcceptorRecordKind kind = AcceptorRecordKind::kPromise;
  TxnId gtid;
  int64_t ballot = 0;
  SiteId participant = kInvalidSite;  // kVote
  bool ready = false;                 // kVote
  std::vector<SiteId> membership;     // kMembership (empty = abort marker)
  int64_t lsn = 0;
  bool forced = false;
};

class AcceptorLog {
 public:
  AcceptorLog() = default;

  int64_t ForceAppend(AcceptorLogRecord record);

  const std::vector<AcceptorLogRecord>& records() const { return records_; }
  int64_t forced_writes() const { return forced_writes_; }
  size_t size() const { return records_.size(); }

 private:
  std::vector<AcceptorLogRecord> records_;
  int64_t forced_writes_ = 0;
};

}  // namespace hermes::consensus

#endif  // HERMES_CONSENSUS_ACCEPTOR_LOG_H_
