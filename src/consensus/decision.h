// Protocol-neutral commit-decision interface.
//
// The paper's decentralized 2PC bakes the decide-and-log step into the
// coordinator: all READY votes collected -> force-write a decision record ->
// fan out COMMIT. Gray & Lamport's Paxos Commit replaces that single
// force-write with a replicated consensus round, and Chockler & Gotsman's
// ACP formulation shows the two are instances of one atomic-commitment
// decision service. DecisionProtocol is that service boundary: the
// coordinator keeps vote collection, retransmission and decision fan-out,
// and delegates only "turn my intent into a durable, recoverable outcome"
// to the installed protocol.
//
// Contract:
//  - BeginDecision() is called when PREPARE fans out, announcing the
//    participant set (Paxos Commit replicates it; 2PC ignores it).
//  - Decide() is called exactly once per transaction with the coordinator's
//    intent. `done` fires exactly once with the *decided* outcome — possibly
//    synchronously (2PC always), possibly later (Paxos acceptor round), and
//    possibly overriding the intent (a timeout-abort that the acceptors had
//    already sealed as commit).
//  - AnswerInquiry() resolves a participant INQUIRY: a value when the
//    outcome is known or presumable, nullopt while resolution is in flight
//    (the protocol then owes the requester a DecisionMsg once decided).
//  - Crash()/RecoverInFlight() model the coordinator site failing: only
//    what the protocol force-wrote (2PC decision log, Paxos acceptor logs
//    on *other* sites) survives; RecoverInFlight returns the decided
//    transactions whose COMMIT delivery must be re-driven.

#ifndef HERMES_CONSENSUS_DECISION_H_
#define HERMES_CONSENSUS_DECISION_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/ids.h"

namespace hermes::consensus {

enum class ProtocolKind : uint8_t { k2PC = 0, kPaxosCommit = 1 };

const char* ProtocolKindName(ProtocolKind kind);

// The coordinator's intent when it asks for an outcome.
enum class DecideMode : uint8_t {
  kCommit,        // every participant voted READY
  kAbortFinal,    // a definite refusal/failure: no READY quorum can exist
  kAbortTimeout,  // votes missing after retries; outcome genuinely open
};

class DecisionProtocol {
 public:
  // Invoked exactly once per Decide() with the decided outcome.
  using DecidedFn = std::function<void(const TxnId& gtid, bool commit)>;

  // A decided-commit transaction whose COMMIT delivery survived a crash
  // and must be re-driven during recovery.
  struct InFlight {
    TxnId gtid;
    std::vector<SiteId> participants;
    int64_t csn = -1;  // decision-time CSN, when one was recorded
  };

  virtual ~DecisionProtocol() = default;

  virtual void BeginDecision(const TxnId& gtid,
                             const std::vector<SiteId>& participants) = 0;
  // `csn` is the decision-time commit sequence number to make durable with
  // the outcome (-1 under the SN scheme, where none exists). Protocols that
  // do not persist per-decision metadata may ignore it.
  virtual void Decide(const TxnId& gtid, DecideMode mode,
                      const std::vector<SiteId>& participants, int64_t csn,
                      DecidedFn done) = 0;
  virtual std::optional<bool> AnswerInquiry(const TxnId& gtid,
                                            SiteId requester) = 0;
  // All participants acknowledged the decision; state may be garbage
  // collected (2PC appends the forget record here).
  virtual void Forget(const TxnId& gtid) = 0;
  virtual void Crash() = 0;
  virtual std::vector<InFlight> RecoverInFlight() = 0;
  // True if an undecided transaction is lost (presumed abort) when the
  // coordinator crashes. Paxos Commit returns false: the outcome lives in
  // the acceptor quorum, not in the coordinator's volatile state.
  virtual bool PresumesAbortOnCrash() const = 0;
};

}  // namespace hermes::consensus

#endif  // HERMES_CONSENSUS_DECISION_H_
