// 2PC presumed-abort decision protocol: the paper's original decide-and-log
// path, factored out of core::Coordinator behind DecisionProtocol.
//
// Commit decisions force-write a kDecision record to the coordinator's own
// log before `done` fires; aborts are never logged (presumed abort), so an
// inquiry about an unknown transaction is answered "rollback". The log
// object stays owned by the Coordinator — this class only encodes the
// discipline, which keeps epoch bumping and the existing log-centric tests
// untouched.

#ifndef HERMES_CONSENSUS_TWO_PC_H_
#define HERMES_CONSENSUS_TWO_PC_H_

#include <optional>
#include <vector>

#include "consensus/decision.h"
#include "core/coordinator_log.h"

namespace hermes::consensus {

class TwoPCDecision : public DecisionProtocol {
 public:
  // `log` is the coordinator's stable log; not owned, must outlive this.
  explicit TwoPCDecision(core::CoordinatorLog* log) : log_(log) {}

  // Test hook mirroring Coordinator::set_skip_decision_log_for_test: when
  // set, commit decisions skip the force-write (demonstrating the lost-
  // decision anomaly the log discipline prevents).
  void set_skip_decision_log(bool skip) { skip_decision_log_ = skip; }

  void BeginDecision(const TxnId& gtid,
                     const std::vector<SiteId>& participants) override;
  void Decide(const TxnId& gtid, DecideMode mode,
              const std::vector<SiteId>& participants, int64_t csn,
              DecidedFn done) override;
  std::optional<bool> AnswerInquiry(const TxnId& gtid,
                                    SiteId requester) override;
  void Forget(const TxnId& gtid) override;
  void Crash() override;
  std::vector<InFlight> RecoverInFlight() override;
  bool PresumesAbortOnCrash() const override { return true; }

 private:
  core::CoordinatorLog* log_;
  bool skip_decision_log_ = false;
};

}  // namespace hermes::consensus

#endif  // HERMES_CONSENSUS_TWO_PC_H_
