#include "consensus/two_pc.h"

#include <utility>

namespace hermes::consensus {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::k2PC:
      return "2pc";
    case ProtocolKind::kPaxosCommit:
      return "paxos-commit";
  }
  return "?";
}

void TwoPCDecision::BeginDecision(const TxnId& /*gtid*/,
                                  const std::vector<SiteId>& /*participants*/) {
  // Presumed abort needs no prepare-phase record: an undecided transaction
  // simply does not exist after a crash.
}

void TwoPCDecision::Decide(const TxnId& gtid, DecideMode mode,
                           const std::vector<SiteId>& participants,
                           int64_t csn, DecidedFn done) {
  if (mode == DecideMode::kCommit) {
    if (!skip_decision_log_) {
      core::CoordLogRecord rec;
      rec.kind = core::CoordRecordKind::kDecision;
      rec.gtid = gtid;
      rec.participants = participants;
      rec.csn = csn;
      log_->ForceAppend(std::move(rec));
    }
    done(gtid, true);
    return;
  }
  // Aborts — final or timeout — are never logged under presumed abort.
  done(gtid, false);
}

std::optional<bool> TwoPCDecision::AnswerInquiry(const TxnId& gtid,
                                                 SiteId /*requester*/) {
  if (log_->HasDecision(gtid) && !log_->Forgotten(gtid)) return true;
  // Unknown (or forgotten) transaction: presumed abort. The caller layers
  // its own live-transaction knowledge on top before reaching for this.
  return false;
}

void TwoPCDecision::Forget(const TxnId& gtid) {
  // Only committed transactions have a decision record to forget; aborted
  // ones were never logged in the first place.
  if (!log_->HasDecision(gtid) || log_->Forgotten(gtid)) return;
  core::CoordLogRecord rec;
  rec.kind = core::CoordRecordKind::kForget;
  rec.gtid = gtid;
  log_->Append(std::move(rec));
}

void TwoPCDecision::Crash() {
  // All 2PC decision state is the log, which is stable storage.
}

std::vector<DecisionProtocol::InFlight> TwoPCDecision::RecoverInFlight() {
  std::vector<InFlight> out;
  for (const core::CoordLogRecord& rec : log_->InFlightDecisions()) {
    out.push_back(InFlight{rec.gtid, rec.participants, rec.csn});
  }
  return out;
}

}  // namespace hermes::consensus
