#include "consensus/acceptor_log.h"

#include <utility>

namespace hermes::consensus {

int64_t AcceptorLog::ForceAppend(AcceptorLogRecord record) {
  record.lsn = static_cast<int64_t>(records_.size());
  record.forced = true;
  ++forced_writes_;
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

}  // namespace hermes::consensus
