// The alive time interval table of the basic prepare certification
// (section 4.2).
//
// A local subtransaction is *alive* when all its DML commands are completely
// executed and it is neither locally committed nor aborted. The Conflict
// Detection Basis: if two local subtransactions were alive at the same time
// and the LTM is rigorous, they cannot conflict, directly or indirectly.
//
// The table stores, for each global subtransaction currently in the
// prepared state at a site, its last known alive interval [begin, end]. The
// certification test for a new subtransaction is that its own alive
// interval has a non-empty intersection with EVERY stored interval.

#ifndef HERMES_CORE_ALIVE_INTERVALS_H_
#define HERMES_CORE_ALIVE_INTERVALS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/serial_number.h"
#include "sim/event_loop.h"

namespace hermes::core {

struct AliveInterval {
  sim::Time begin = 0;
  sim::Time end = 0;

  bool Intersects(const AliveInterval& other) const {
    return begin <= other.end && other.begin <= end;
  }
};

class AliveIntervalTable {
 public:
  struct Entry {
    TxnId gtid;
    AliveInterval interval;
    SerialNumber sn;
  };

  // True if `candidate` intersects every stored interval (the basic prepare
  // certification test).
  bool CertifiableAgainstAll(const AliveInterval& candidate) const;

  // Transactions whose stored interval does NOT intersect `candidate` — the
  // conflicting-transaction context of a basic-certification REFUSE
  // (diagnostics/tracing; empty iff CertifiableAgainstAll).
  std::vector<TxnId> NonIntersecting(const AliveInterval& candidate) const;

  // Prepared transactions other than `gtid` with a smaller serial number —
  // the ones a commit-certification retry is waiting on.
  std::vector<TxnId> SmallerSerialNumbers(const TxnId& gtid) const;

  void Insert(const TxnId& gtid, const AliveInterval& interval,
              const SerialNumber& sn);
  void Remove(const TxnId& gtid);
  bool Contains(const TxnId& gtid) const { return entries_.count(gtid) != 0; }

  // Extends the stored interval's end (successful alive check).
  void ExtendEnd(const TxnId& gtid, sim::Time end);
  // Restarts the interval after a completed resubmission.
  void Restart(const TxnId& gtid, sim::Time at);

  const Entry* Find(const TxnId& gtid) const;

  // Commit certification test (Appendix C): every *other* prepared
  // subtransaction must have a bigger serial number.
  bool SmallestSerialNumber(const TxnId& gtid) const;

  size_t size() const { return entries_.size(); }
  std::vector<Entry> Snapshot() const;

  std::string ToString() const;

 private:
  std::map<TxnId, Entry> entries_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_ALIVE_INTERVALS_H_
