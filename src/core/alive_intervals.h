// The alive time interval table of the basic prepare certification
// (section 4.2).
//
// A local subtransaction is *alive* when all its DML commands are completely
// executed and it is neither locally committed nor aborted. The Conflict
// Detection Basis: if two local subtransactions were alive at the same time
// and the LTM is rigorous, they cannot conflict, directly or indirectly.
//
// The table stores, for each global subtransaction currently in the
// prepared state at a site, its last known alive interval [begin, end]. The
// certification test for a new subtransaction is that its own alive
// interval has a non-empty intersection with EVERY stored interval.
//
// This table sits on the certifier's hot path (every PREPARE and every
// commit attempt consult it), so it is hashed rather than ordered, and the
// commit-certification test (is `gtid` the smallest stored serial number?)
// runs off a cached minimum-SN entry instead of a scan: the cache improves
// in O(1) on Insert and is recomputed lazily only after the minimum itself
// was removed or overwritten, which makes the test O(1) amortized.
// Diagnostic accessors (Snapshot, NonIntersecting, SmallerSerialNumbers,
// ToString) sort their output by TxnId so traces stay deterministic and
// independent of hash iteration order.

#ifndef HERMES_CORE_ALIVE_INTERVALS_H_
#define HERMES_CORE_ALIVE_INTERVALS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "core/serial_number.h"
#include "sim/event_loop.h"

namespace hermes::core {

struct AliveInterval {
  sim::Time begin = 0;
  sim::Time end = 0;

  bool Intersects(const AliveInterval& other) const {
    return begin <= other.end && other.begin <= end;
  }
};

class AliveIntervalTable {
 public:
  struct Entry {
    TxnId gtid;
    AliveInterval interval;
    SerialNumber sn;
  };

  // True if `candidate` intersects every stored interval (the basic prepare
  // certification test).
  bool CertifiableAgainstAll(const AliveInterval& candidate) const;

  // Transactions whose stored interval does NOT intersect `candidate` — the
  // conflicting-transaction context of a basic-certification REFUSE
  // (diagnostics/tracing; empty iff CertifiableAgainstAll). Sorted by TxnId.
  std::vector<TxnId> NonIntersecting(const AliveInterval& candidate) const;

  // Prepared transactions other than `gtid` with a smaller serial number —
  // the ones a commit-certification retry is waiting on. Sorted by TxnId.
  std::vector<TxnId> SmallerSerialNumbers(const TxnId& gtid) const;

  void Insert(const TxnId& gtid, const AliveInterval& interval,
              const SerialNumber& sn);
  void Remove(const TxnId& gtid);
  bool Contains(const TxnId& gtid) const { return entries_.count(gtid) != 0; }

  // Extends the stored interval's end (successful alive check).
  void ExtendEnd(const TxnId& gtid, sim::Time end);
  // Overwrites the stored serial number (CSN certifier: a prepared entry
  // parked with an invalid SN is stamped with its decision-time CSN).
  void SetSerialNumber(const TxnId& gtid, const SerialNumber& sn);
  // Restarts the interval after a completed resubmission.
  void Restart(const TxnId& gtid, sim::Time at);

  const Entry* Find(const TxnId& gtid) const;

  // Commit certification test (Appendix C): every *other* prepared
  // subtransaction must have a bigger serial number. O(1) amortized via the
  // cached minimum.
  bool SmallestSerialNumber(const TxnId& gtid) const;

  // Transaction holding the smallest stored serial number (invalid TxnId
  // when the table is empty). Exposed for tests of the min cache.
  TxnId MinSnTxn() const;

  size_t size() const { return entries_.size(); }
  // Sorted by TxnId (deterministic regardless of hash order).
  std::vector<Entry> Snapshot() const;

  // Read-only view of the underlying hashed entries, for allocation-free
  // iteration on the prepare path. Iteration order is unspecified — callers
  // must not let it influence observable behavior.
  const std::unordered_map<TxnId, Entry>& entries() const { return entries_; }

  std::string ToString() const;

 private:
  void RecomputeMin() const;

  std::unordered_map<TxnId, Entry> entries_;
  // Cached gtid of the minimum-SN entry. Invalid when the table is empty;
  // `min_dirty_` marks it stale (the previous minimum was removed or its SN
  // overwritten) and triggers one O(n) recomputation on the next query.
  mutable TxnId min_sn_gtid_;
  mutable bool min_dirty_ = false;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_ALIVE_INTERVALS_H_
