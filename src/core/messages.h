// Wire messages of the 2PC protocol between Coordinators and 2PC Agents
// (section 2 of the paper). Sent through net::Network as std::any payloads
// of type core::Message.

#ifndef HERMES_CORE_MESSAGES_H_
#define HERMES_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "db/command.h"
#include "core/serial_number.h"

namespace hermes::core {

// Coordinator -> Agent: opens the global subtransaction T^s_k at the site.
// Every coordinator-to-agent message carries the sender's shard-map epoch
// view (`epoch`); an agent refuses messages below its own epoch (epoch
// fencing). 0 = sharding disabled, never refused.
struct BeginMsg {
  TxnId gtid;
  int64_t epoch = 0;
};

// Coordinator -> Agent: one DML command of the global subtransaction.
struct DmlRequestMsg {
  TxnId gtid;
  int32_t cmd_index = 0;
  db::Command cmd;
  int64_t epoch = 0;
};

// Agent -> Coordinator: result of a DML command.
struct DmlResponseMsg {
  TxnId gtid;
  int32_t cmd_index = 0;
  Status status;
  db::CmdResult result;
};

// Coordinator -> Agent: PREPARE, carrying the transaction's serial number
// (section 5.2: the SN travels with the PREPARE message).
struct PrepareMsg {
  TxnId gtid;
  SerialNumber sn;
  int64_t epoch = 0;
};

// Agent -> Coordinator: READY or REFUSE. `read_only` marks a short-commit
// READY from a write-free participant that already committed locally and
// needs no decision message.
struct VoteMsg {
  TxnId gtid;
  bool ready = false;
  Status reason;  // populated for REFUSE
  bool read_only = false;
  // After a shard handoff the adopting site answers for the original
  // participant: the coordinator clears its vote bookkeeping under this id
  // (kInvalidSite = the sender votes for itself).
  SiteId on_behalf_of = kInvalidSite;
};

// Coordinator -> Agent: COMMIT (commit=true) or ROLLBACK. `csn` is the
// decision-time commit sequence number under the CSN certifier (-1 when
// none travels: rollbacks and the SN scheme).
struct DecisionMsg {
  TxnId gtid;
  bool commit = false;
  int64_t csn = -1;
  int64_t epoch = 0;
};

// Coordinator -> Agent: single-site short commit — the transaction ran
// entirely at one site, so the prepare round is skipped and the agent
// becomes the commit point (1PC). The agent replies with AckMsg carrying
// the outcome it durably chose.
struct OnePhaseCommitMsg {
  TxnId gtid;
  int64_t epoch = 0;
};

// Agent -> Coordinator: COMMIT-ACK / ROLLBACK-ACK. `on_behalf_of` as on
// VoteMsg: the adopting site acks under the original participant's id.
struct AckMsg {
  TxnId gtid;
  bool commit = false;
  SiteId on_behalf_of = kInvalidSite;
};

// Agent -> Coordinator: a recovered agent asks for the outcome of an
// in-doubt transaction. The coordinator re-sends its decision, or replies
// ROLLBACK for transactions it no longer knows (presumed abort).
struct InquiryMsg {
  TxnId gtid;
};

// Agent -> Coordinator: the agent refused a message because it carried a
// stale shard-map epoch (or addressed a subtransaction whose residue
// migrated away in a handoff). The coordinator refreshes its map from the
// directory and re-drives the transaction's current phase against the new
// owners. `moved_to` names the adopting site when the refusal was for a
// migrated subtransaction (kInvalidSite otherwise).
struct EpochRefusedMsg {
  TxnId gtid;
  int64_t current_epoch = 0;
  SiteId moved_to = kInvalidSite;
};

// --- Paxos Commit (consensus::PaxosCommit) -----------------------------------
// Gray & Lamport: one Paxos instance per participant vote plus a membership
// synod carrying the participant set; 2F+1 acceptors (sites 0..2F) make the
// decision survive any F site crashes without blocking.

// Leader -> acceptors: proposes the participant set at ballot 0 (the
// membership synod's fast path).
struct PaxosBeginMsg {
  TxnId gtid;
  SiteId leader = kInvalidSite;
  std::vector<SiteId> participants;
};

// Acceptor -> leader: the ballot-0 membership value was accepted.
struct PaxosBeginAckMsg {
  TxnId gtid;
};

// Participant (RM) -> acceptors: its READY/REFUSE vote, proposed at
// ballot 0 in that participant's own instance.
struct PaxosVoteMsg {
  TxnId gtid;
  SiteId participant = kInvalidSite;
  SiteId leader = kInvalidSite;
  bool ready = false;
};

// Acceptor -> leader: 2b for a ballot-0 vote instance.
struct PaxosVotedMsg {
  TxnId gtid;
  SiteId participant = kInvalidSite;
  bool ready = false;
};

// Resolver -> acceptors: phase 1a for *all* of the transaction's instances
// at once (Gray & Lamport's bundled prepare).
struct PaxosPrepareMsg {
  TxnId gtid;
  int64_t ballot = 0;
};

// Acceptor -> resolver: phase 1b, reporting everything the acceptor has
// accepted below the promised ballot.
struct PaxosPromiseMsg {
  TxnId gtid;
  int64_t ballot = 0;
  // Accepted membership value, if any (-1 = none accepted yet). An empty
  // set at membership_ballot >= 0 is the abort marker.
  int64_t membership_ballot = -1;
  std::vector<SiteId> membership;
  // Accepted vote instances: (participant, ballot, ready).
  struct AcceptedVote {
    SiteId participant = kInvalidSite;
    int64_t ballot = 0;
    bool ready = false;
  };
  std::vector<AcceptedVote> votes;
};

// Resolver -> acceptors: phase 2a with the values forced by the promise
// quorum (free instances proposed as REFUSE, free membership as the empty
// abort marker).
struct PaxosProposeMsg {
  TxnId gtid;
  int64_t ballot = 0;
  std::vector<SiteId> membership;
  std::vector<SiteId> ready_participants;  // instances proposed READY
};

// Acceptor -> resolver: phase 2b for a bundled proposal.
struct PaxosAcceptedMsg {
  TxnId gtid;
  int64_t ballot = 0;
};

using Message = std::variant<BeginMsg, DmlRequestMsg, DmlResponseMsg,
                             PrepareMsg, VoteMsg, DecisionMsg,
                             OnePhaseCommitMsg, AckMsg,
                             InquiryMsg, EpochRefusedMsg, PaxosBeginMsg,
                             PaxosBeginAckMsg, PaxosVoteMsg, PaxosVotedMsg,
                             PaxosPrepareMsg, PaxosPromiseMsg,
                             PaxosProposeMsg, PaxosAcceptedMsg>;

// True for the Paxos Commit message kinds (routed to the site's consensus
// module rather than to the agent or coordinator).
bool IsPaxosMessage(const Message& msg);

std::string MessageToString(const Message& msg);

}  // namespace hermes::core

#endif  // HERMES_CORE_MESSAGES_H_
