// Wire messages of the 2PC protocol between Coordinators and 2PC Agents
// (section 2 of the paper). Sent through net::Network as std::any payloads
// of type core::Message.

#ifndef HERMES_CORE_MESSAGES_H_
#define HERMES_CORE_MESSAGES_H_

#include <string>
#include <variant>

#include "common/ids.h"
#include "common/status.h"
#include "db/command.h"
#include "core/serial_number.h"

namespace hermes::core {

// Coordinator -> Agent: opens the global subtransaction T^s_k at the site.
struct BeginMsg {
  TxnId gtid;
};

// Coordinator -> Agent: one DML command of the global subtransaction.
struct DmlRequestMsg {
  TxnId gtid;
  int32_t cmd_index = 0;
  db::Command cmd;
};

// Agent -> Coordinator: result of a DML command.
struct DmlResponseMsg {
  TxnId gtid;
  int32_t cmd_index = 0;
  Status status;
  db::CmdResult result;
};

// Coordinator -> Agent: PREPARE, carrying the transaction's serial number
// (section 5.2: the SN travels with the PREPARE message).
struct PrepareMsg {
  TxnId gtid;
  SerialNumber sn;
};

// Agent -> Coordinator: READY or REFUSE.
struct VoteMsg {
  TxnId gtid;
  bool ready = false;
  Status reason;  // populated for REFUSE
};

// Coordinator -> Agent: COMMIT (commit=true) or ROLLBACK.
struct DecisionMsg {
  TxnId gtid;
  bool commit = false;
};

// Agent -> Coordinator: COMMIT-ACK / ROLLBACK-ACK.
struct AckMsg {
  TxnId gtid;
  bool commit = false;
};

// Agent -> Coordinator: a recovered agent asks for the outcome of an
// in-doubt transaction. The coordinator re-sends its decision, or replies
// ROLLBACK for transactions it no longer knows (presumed abort).
struct InquiryMsg {
  TxnId gtid;
};

using Message = std::variant<BeginMsg, DmlRequestMsg, DmlResponseMsg,
                             PrepareMsg, VoteMsg, DecisionMsg, AckMsg,
                             InquiryMsg>;

std::string MessageToString(const Message& msg);

}  // namespace hermes::core

#endif  // HERMES_CORE_MESSAGES_H_
