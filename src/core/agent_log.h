// The Agent log (stable storage of one 2PC Agent).
//
// The 2PCA logs every DML command of each global subtransaction so it can
// *resubmit* them after a unilateral abort, and force-writes prepare/commit
// records as the 2PC protocol requires. In the simulation "stable storage"
// is an in-memory structure; the force-write flag is modeled so the log
// discipline is visible and testable, and the log supports replay-based
// agent recovery after a site crash.

#ifndef HERMES_CORE_AGENT_LOG_H_
#define HERMES_CORE_AGENT_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "db/command.h"
#include "core/serial_number.h"

namespace hermes::core {

enum class LogRecordKind : uint8_t {
  kBegin,
  kCommand,
  kPrepare,       // force-written before READY is sent
  kResubmission,  // a resubmission attempt started
  kCommit,        // force-written before the local commit is performed
  kAbort,         // global rollback processed
  kComplete,      // local commit done, COMMIT-ACK sent
  kMigrated,      // force-written when the prepared residue left in a shard
                  // handoff; `peer` names the adopting site
};

struct LogRecord {
  LogRecordKind kind = LogRecordKind::kBegin;
  TxnId gtid;
  int64_t lsn = 0;
  bool forced = false;
  // kBegin: the coordinating site (needed to direct recovery inquiries
  // after a crash). kMigrated: the site that adopted the residue.
  SiteId peer = kInvalidSite;
  // kCommand only.
  std::optional<db::Command> command;
  // kPrepare only.
  SerialNumber sn;
  // kCommit only: the decision-time commit sequence number under the CSN
  // certifier (-1 when none travels — the SN scheme and 1PC commits).
  int64_t csn = -1;
};

class AgentLog {
 public:
  AgentLog() = default;

  int64_t Append(LogRecord record);       // buffered write
  int64_t ForceAppend(LogRecord record);  // force-write (fsync'd)

  // All commands logged for `gtid`, in submission order — the resubmission
  // source.
  std::vector<db::Command> CommandsOf(const TxnId& gtid) const;

  // Latest prepare record of `gtid`, if any.
  std::optional<LogRecord> PrepareRecordOf(const TxnId& gtid) const;

  // True if a commit (abort) record exists for `gtid`.
  bool HasCommit(const TxnId& gtid) const;
  // CSN carried by the commit record of `gtid`, -1 if absent — feeds the
  // certifier's OnCommitDecision during in-doubt recovery.
  int64_t CommitCsnOf(const TxnId& gtid) const;
  bool HasAbort(const TxnId& gtid) const;
  bool HasComplete(const TxnId& gtid) const;

  // Transactions that were prepared but have no complete/abort/migrated
  // record — the in-doubt set an agent must recover after a crash (migrated
  // residue is the adopting site's problem). Sorted by TxnId so the
  // recovery order is deterministic.
  std::vector<TxnId> InDoubt() const;

  // Adopting site recorded with the migration record of `gtid`, or
  // kInvalidSite if the residue never left this agent. Rebuilds the
  // redirect table after a crash.
  SiteId MigratedToOf(const TxnId& gtid) const;

  // True if any record exists for `gtid` — i.e. this agent has ever seen
  // the transaction, even if all volatile state about it was lost in a
  // crash.
  bool Knows(const TxnId& gtid) const { return by_txn_.count(gtid) != 0; }

  // Coordinating site recorded with the begin record (kInvalidSite if the
  // transaction is unknown).
  SiteId CoordinatorOf(const TxnId& gtid) const;
  // Number of resubmission records logged for `gtid`.
  int ResubmissionsOf(const TxnId& gtid) const;

  const std::vector<LogRecord>& records() const { return records_; }
  int64_t forced_writes() const { return forced_writes_; }
  size_t size() const { return records_.size(); }

 private:
  std::vector<LogRecord> records_;
  // Secondary index: gtid -> record positions. Hashed — CommandsOf runs once
  // per resubmitted command and Knows once per BEGIN.
  std::unordered_map<TxnId, std::vector<size_t>> by_txn_;
  int64_t forced_writes_ = 0;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_AGENT_LOG_H_
