#include "core/serial_number.h"

#include "common/str.h"

namespace hermes::core {

std::string SerialNumber::ToString() const {
  if (!valid()) return "SN(-)";
  return StrCat("SN(", clock, ",", coordinator, ",", seq, ")");
}

SerialNumber SerialNumberGenerator::Next() {
  return SerialNumber{clock_->Read(), site_, seq_++};
}

}  // namespace hermes::core
