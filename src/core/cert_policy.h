// Certification policy knob, shared by the agent and the cert::Certifier
// implementations (factored out of agent.h so src/cert/ does not depend on
// the agent it serves).

#ifndef HERMES_CORE_CERT_POLICY_H_
#define HERMES_CORE_CERT_POLICY_H_

namespace hermes::core {

enum class CertPolicy {
  kNone,             // naive agent: resubmission but no certification
  kPrepareOnly,      // basic prepare certification only
  kPrepareExtended,  // basic + ordering admission check, no commit cert
  kFull,             // the paper's complete 2CM certifier
};

const char* CertPolicyName(CertPolicy policy);

}  // namespace hermes::core

#endif  // HERMES_CORE_CERT_POLICY_H_
