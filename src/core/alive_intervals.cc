#include "core/alive_intervals.h"

#include <algorithm>
#include <cassert>

#include "common/str.h"

namespace hermes::core {

bool AliveIntervalTable::CertifiableAgainstAll(
    const AliveInterval& candidate) const {
  for (const auto& [gtid, entry] : entries_) {
    if (!candidate.Intersects(entry.interval)) return false;
  }
  return true;
}

std::vector<TxnId> AliveIntervalTable::NonIntersecting(
    const AliveInterval& candidate) const {
  std::vector<TxnId> out;
  for (const auto& [gtid, entry] : entries_) {
    if (!candidate.Intersects(entry.interval)) out.push_back(gtid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TxnId> AliveIntervalTable::SmallerSerialNumbers(
    const TxnId& gtid) const {
  auto self = entries_.find(gtid);
  assert(self != entries_.end());
  std::vector<TxnId> out;
  for (const auto& [other_gtid, entry] : entries_) {
    if (other_gtid == gtid) continue;
    if (entry.sn < self->second.sn) out.push_back(other_gtid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void AliveIntervalTable::Insert(const TxnId& gtid,
                                const AliveInterval& interval,
                                const SerialNumber& sn) {
  // Overwriting the cached minimum's entry may change its SN; everything
  // else can only *improve* the cached minimum, an O(1) update.
  if (!min_dirty_ && min_sn_gtid_.valid()) {
    if (gtid == min_sn_gtid_) {
      min_dirty_ = true;
    } else {
      auto min_it = entries_.find(min_sn_gtid_);
      if (min_it == entries_.end() || sn < min_it->second.sn) {
        min_sn_gtid_ = gtid;
      }
    }
  } else if (!min_sn_gtid_.valid() && !min_dirty_) {
    min_sn_gtid_ = gtid;
  }
  entries_[gtid] = Entry{gtid, interval, sn};
}

void AliveIntervalTable::Remove(const TxnId& gtid) {
  if (entries_.erase(gtid) > 0 && gtid == min_sn_gtid_) {
    min_sn_gtid_ = TxnId{};
    min_dirty_ = !entries_.empty();
  }
}

void AliveIntervalTable::ExtendEnd(const TxnId& gtid, sim::Time end) {
  auto it = entries_.find(gtid);
  assert(it != entries_.end());
  if (end > it->second.interval.end) it->second.interval.end = end;
}

void AliveIntervalTable::SetSerialNumber(const TxnId& gtid,
                                         const SerialNumber& sn) {
  auto it = entries_.find(gtid);
  assert(it != entries_.end());
  // Same min-cache discipline as Insert: rewriting the cached minimum's SN
  // invalidates the cache; any other entry can only improve it in O(1).
  if (!min_dirty_ && min_sn_gtid_.valid()) {
    if (gtid == min_sn_gtid_) {
      min_dirty_ = true;
    } else {
      auto min_it = entries_.find(min_sn_gtid_);
      if (min_it == entries_.end() || sn < min_it->second.sn) {
        min_sn_gtid_ = gtid;
      }
    }
  }
  it->second.sn = sn;
}

void AliveIntervalTable::Restart(const TxnId& gtid, sim::Time at) {
  auto it = entries_.find(gtid);
  assert(it != entries_.end());
  it->second.interval = AliveInterval{at, at};
}

const AliveIntervalTable::Entry* AliveIntervalTable::Find(
    const TxnId& gtid) const {
  auto it = entries_.find(gtid);
  return it == entries_.end() ? nullptr : &it->second;
}

void AliveIntervalTable::RecomputeMin() const {
  min_sn_gtid_ = TxnId{};
  min_dirty_ = false;
  const Entry* best = nullptr;
  for (const auto& [gtid, entry] : entries_) {
    // Tie-break on gtid so the cache is independent of hash order (serial
    // numbers are unique in practice, but the table does not rely on it).
    if (best == nullptr || entry.sn < best->sn ||
        (entry.sn == best->sn && gtid < best->gtid)) {
      best = &entry;
    }
  }
  if (best != nullptr) min_sn_gtid_ = best->gtid;
}

TxnId AliveIntervalTable::MinSnTxn() const {
  if (min_dirty_) RecomputeMin();
  return min_sn_gtid_;
}

bool AliveIntervalTable::SmallestSerialNumber(const TxnId& gtid) const {
  auto self = entries_.find(gtid);
  assert(self != entries_.end());
  if (min_dirty_) RecomputeMin();
  if (!min_sn_gtid_.valid()) return true;
  if (min_sn_gtid_ == gtid) return true;
  auto min_it = entries_.find(min_sn_gtid_);
  assert(min_it != entries_.end());
  // Equal SNs do not block each other (matches the pre-cache scan, which
  // only refused on strictly smaller serial numbers).
  return !(min_it->second.sn < self->second.sn);
}

std::vector<AliveIntervalTable::Entry> AliveIntervalTable::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [gtid, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.gtid < b.gtid; });
  return out;
}

std::string AliveIntervalTable::ToString() const {
  std::string out;
  for (const Entry& entry : Snapshot()) {
    StrAppend(out, entry.gtid.ToString(), " [", entry.interval.begin, ",",
              entry.interval.end, "] ", entry.sn.ToString(), "\n");
  }
  return out;
}

}  // namespace hermes::core
