#include "core/alive_intervals.h"

#include <cassert>

#include "common/str.h"

namespace hermes::core {

bool AliveIntervalTable::CertifiableAgainstAll(
    const AliveInterval& candidate) const {
  for (const auto& [gtid, entry] : entries_) {
    if (!candidate.Intersects(entry.interval)) return false;
  }
  return true;
}

std::vector<TxnId> AliveIntervalTable::NonIntersecting(
    const AliveInterval& candidate) const {
  std::vector<TxnId> out;
  for (const auto& [gtid, entry] : entries_) {
    if (!candidate.Intersects(entry.interval)) out.push_back(gtid);
  }
  return out;
}

std::vector<TxnId> AliveIntervalTable::SmallerSerialNumbers(
    const TxnId& gtid) const {
  auto self = entries_.find(gtid);
  assert(self != entries_.end());
  std::vector<TxnId> out;
  for (const auto& [other_gtid, entry] : entries_) {
    if (other_gtid == gtid) continue;
    if (entry.sn < self->second.sn) out.push_back(other_gtid);
  }
  return out;
}

void AliveIntervalTable::Insert(const TxnId& gtid,
                                const AliveInterval& interval,
                                const SerialNumber& sn) {
  entries_[gtid] = Entry{gtid, interval, sn};
}

void AliveIntervalTable::Remove(const TxnId& gtid) { entries_.erase(gtid); }

void AliveIntervalTable::ExtendEnd(const TxnId& gtid, sim::Time end) {
  auto it = entries_.find(gtid);
  assert(it != entries_.end());
  if (end > it->second.interval.end) it->second.interval.end = end;
}

void AliveIntervalTable::Restart(const TxnId& gtid, sim::Time at) {
  auto it = entries_.find(gtid);
  assert(it != entries_.end());
  it->second.interval = AliveInterval{at, at};
}

const AliveIntervalTable::Entry* AliveIntervalTable::Find(
    const TxnId& gtid) const {
  auto it = entries_.find(gtid);
  return it == entries_.end() ? nullptr : &it->second;
}

bool AliveIntervalTable::SmallestSerialNumber(const TxnId& gtid) const {
  auto self = entries_.find(gtid);
  assert(self != entries_.end());
  for (const auto& [other_gtid, entry] : entries_) {
    if (other_gtid == gtid) continue;
    if (entry.sn < self->second.sn) return false;
  }
  return true;
}

std::vector<AliveIntervalTable::Entry> AliveIntervalTable::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [gtid, entry] : entries_) out.push_back(entry);
  return out;
}

std::string AliveIntervalTable::ToString() const {
  std::string out;
  for (const auto& [gtid, entry] : entries_) {
    StrAppend(out, gtid.ToString(), " [", entry.interval.begin, ",",
              entry.interval.end, "] ", entry.sn.ToString(), "\n");
  }
  return out;
}

}  // namespace hermes::core
