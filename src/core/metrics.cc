#include "core/metrics.h"

#include "common/str.h"

namespace hermes::core {

void Metrics::Merge(const Metrics& o) {
  global_committed += o.global_committed;
  global_aborted += o.global_aborted;
  global_aborted_cert += o.global_aborted_cert;
  global_aborted_dml += o.global_aborted_dml;
  global_aborted_timeout += o.global_aborted_timeout;
  retransmits += o.retransmits;
  dup_msgs_absorbed += o.dup_msgs_absorbed;
  coordinator_crashes += o.coordinator_crashes;
  coordinator_redelivered_decisions += o.coordinator_redelivered_decisions;
  global_aborted_crash += o.global_aborted_crash;
  inquiries_sent += o.inquiries_sent;
  inquiries_answered_presumed_abort += o.inquiries_answered_presumed_abort;
  prepares_received += o.prepares_received;
  refuse_extension += o.refuse_extension;
  refuse_interval += o.refuse_interval;
  refuse_snapshot += o.refuse_snapshot;
  refuse_dead += o.refuse_dead;
  commit_cert_retries += o.commit_cert_retries;
  alive_checks += o.alive_checks;
  resubmissions += o.resubmissions;
  resubmission_failures += o.resubmission_failures;
  short_commits_1pc += o.short_commits_1pc;
  short_commits_readonly += o.short_commits_readonly;
  csn_assigned += o.csn_assigned;
  single_site_committed += o.single_site_committed;
  single_site_latency_total += o.single_site_latency_total;
  local_committed += o.local_committed;
  local_aborted += o.local_aborted;
  latency_samples += o.latency_samples;
  latency_total += o.latency_total;
  if (o.latency_max > latency_max) latency_max = o.latency_max;
  latency_hist.Merge(o.latency_hist);
  cgm_graph_rejections += o.cgm_graph_rejections;
  cgm_lock_timeouts += o.cgm_lock_timeouts;
  paxos_forced_writes += o.paxos_forced_writes;
  paxos_votes_accepted += o.paxos_votes_accepted;
  paxos_resolutions += o.paxos_resolutions;
  paxos_elections += o.paxos_elections;
  paxos_decided_fast += o.paxos_decided_fast;
  paxos_decided_resolved += o.paxos_decided_resolved;
  epoch_refusals += o.epoch_refusals;
  epoch_map_refreshes += o.epoch_map_refreshes;
  reconfig_started += o.reconfig_started;
  reconfig_completed += o.reconfig_completed;
  reconfig_rows_moved += o.reconfig_rows_moved;
  reconfig_residue_adopted += o.reconfig_residue_adopted;
  reconfig_forced_aborts += o.reconfig_forced_aborts;
  commits_stale_epoch += o.commits_stale_epoch;
  trace_events_emitted += o.trace_events_emitted;
  trace_events_dropped += o.trace_events_dropped;
  trace_sampled_out += o.trace_sampled_out;
}

std::vector<std::pair<const char*, int64_t>> Metrics::CounterEntries() const {
  return {
      {"global_committed", global_committed},
      {"global_aborted", global_aborted},
      {"global_aborted_cert", global_aborted_cert},
      {"global_aborted_dml", global_aborted_dml},
      {"global_aborted_timeout", global_aborted_timeout},
      {"retransmits", retransmits},
      {"dup_msgs_absorbed", dup_msgs_absorbed},
      {"coordinator_crashes", coordinator_crashes},
      {"coordinator_redelivered_decisions",
       coordinator_redelivered_decisions},
      {"global_aborted_crash", global_aborted_crash},
      {"inquiries_sent", inquiries_sent},
      {"inquiries_answered_presumed_abort",
       inquiries_answered_presumed_abort},
      {"prepares_received", prepares_received},
      {"refuse_extension", refuse_extension},
      {"refuse_interval", refuse_interval},
      {"refuse_snapshot", refuse_snapshot},
      {"refuse_dead", refuse_dead},
      {"commit_cert_retries", commit_cert_retries},
      {"alive_checks", alive_checks},
      {"resubmissions", resubmissions},
      {"resubmission_failures", resubmission_failures},
      {"short_commits_1pc", short_commits_1pc},
      {"short_commits_readonly", short_commits_readonly},
      {"csn_assigned", csn_assigned},
      {"single_site_committed", single_site_committed},
      {"single_site_latency_total_us", single_site_latency_total},
      {"local_committed", local_committed},
      {"local_aborted", local_aborted},
      {"latency_samples", latency_samples},
      {"latency_total_us", latency_total},
      {"latency_max_us", latency_max},
      {"cgm_graph_rejections", cgm_graph_rejections},
      {"cgm_lock_timeouts", cgm_lock_timeouts},
      {"paxos_forced_writes", paxos_forced_writes},
      {"paxos_votes_accepted", paxos_votes_accepted},
      {"paxos_resolutions", paxos_resolutions},
      {"paxos_elections", paxos_elections},
      {"paxos_decided_fast", paxos_decided_fast},
      {"paxos_decided_resolved", paxos_decided_resolved},
      {"epoch_refusals", epoch_refusals},
      {"epoch_map_refreshes", epoch_map_refreshes},
      {"reconfig_started", reconfig_started},
      {"reconfig_completed", reconfig_completed},
      {"reconfig_rows_moved", reconfig_rows_moved},
      {"reconfig_residue_adopted", reconfig_residue_adopted},
      {"reconfig_forced_aborts", reconfig_forced_aborts},
      {"commits_stale_epoch", commits_stale_epoch},
      {"trace_events_emitted", trace_events_emitted},
      {"trace_events_dropped", trace_events_dropped},
      {"trace_sampled_out", trace_sampled_out},
  };
}

std::string MetricsPrometheusText(const Metrics& total,
                                  const std::vector<Metrics>& per_site) {
  std::string out;
  std::vector<std::vector<std::pair<const char*, int64_t>>> site_entries;
  site_entries.reserve(per_site.size());
  for (const Metrics& m : per_site) site_entries.push_back(m.CounterEntries());

  const auto entries = total.CounterEntries();
  for (size_t i = 0; i < entries.size(); ++i) {
    StrAppend(out, "# TYPE hermes_", entries[i].first, " counter\n");
    StrAppend(out, "hermes_", entries[i].first, " ", entries[i].second, "\n");
    for (size_t s = 0; s < site_entries.size(); ++s) {
      StrAppend(out, "hermes_", entries[i].first, "{site=\"", s, "\"} ",
                site_entries[s][i].second, "\n");
    }
  }

  // Commit latency as a cumulative Prometheus histogram (bucket upper
  // bounds are this histogram's power-of-two boundaries, in microseconds).
  StrAppend(out, "# TYPE hermes_latency_us histogram\n");
  int64_t cumulative = 0;
  for (int i = 0; i < trace::Histogram::kBuckets; ++i) {
    cumulative += total.latency_hist.bucket(i);
    if (total.latency_hist.bucket(i) == 0) continue;  // keep the dump short
    const int64_t le = i == 0 ? 0 : (int64_t{1} << i);
    StrAppend(out, "hermes_latency_us_bucket{le=\"", le, "\"} ", cumulative,
              "\n");
  }
  StrAppend(out, "hermes_latency_us_bucket{le=\"+Inf\"} ",
            total.latency_hist.count(), "\n");
  StrAppend(out, "hermes_latency_us_sum ", total.latency_total, "\n");
  StrAppend(out, "hermes_latency_us_count ", total.latency_samples, "\n");
  return out;
}

std::string Metrics::ToString() const {
  std::string out;
  StrAppend(out, "global: committed=", global_committed,
            " aborted=", global_aborted, " (cert=", global_aborted_cert,
            ", dml=", global_aborted_dml,
            ", timeout=", global_aborted_timeout, ")\n");
  StrAppend(out, "network: retransmits=", retransmits,
            " dup_msgs_absorbed=", dup_msgs_absorbed, "\n");
  StrAppend(out, "recovery: coordinator_crashes=", coordinator_crashes,
            " redelivered_decisions=", coordinator_redelivered_decisions,
            " aborted_crash=", global_aborted_crash,
            " inquiries_sent=", inquiries_sent,
            " presumed_abort_replies=", inquiries_answered_presumed_abort,
            "\n");
  StrAppend(out, "certifier: prepares=", prepares_received,
            " refuse[ext=", refuse_extension, " interval=", refuse_interval,
            " snapshot=", refuse_snapshot, " dead=", refuse_dead,
            "] commit_retries=", commit_cert_retries,
            " resubmissions=", resubmissions, "\n");
  if (short_commits_1pc + short_commits_readonly + csn_assigned > 0) {
    StrAppend(out, "short_commit: 1pc=", short_commits_1pc,
              " readonly=", short_commits_readonly,
              " csn_assigned=", csn_assigned,
              " single_site_committed=", single_site_committed, "\n");
  }
  if (reconfig_started + epoch_refusals > 0) {
    StrAppend(out, "reconfig: started=", reconfig_started,
              " completed=", reconfig_completed,
              " rows_moved=", reconfig_rows_moved,
              " residue_adopted=", reconfig_residue_adopted,
              " forced_aborts=", reconfig_forced_aborts,
              " epoch_refusals=", epoch_refusals,
              " map_refreshes=", epoch_map_refreshes,
              " stale_commits=", commits_stale_epoch, "\n");
  }
  if (trace_events_emitted > 0) {
    StrAppend(out, "trace: emitted=", trace_events_emitted,
              " dropped=", trace_events_dropped,
              " sampled_out=", trace_sampled_out, "\n");
  }
  StrAppend(out, "local: committed=", local_committed,
            " aborted=", local_aborted, "\n");
  StrAppend(out, "latency: mean_ms=", MeanLatencyMs(),
            " p50_ms=", latency_hist.PercentileMs(50),
            " p95_ms=", latency_hist.PercentileMs(95),
            " p99_ms=", latency_hist.PercentileMs(99),
            " max_ms=", static_cast<double>(latency_max) / 1000.0, "\n");
  return out;
}

}  // namespace hermes::core
