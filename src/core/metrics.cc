#include "core/metrics.h"

#include "common/str.h"

namespace hermes::core {

std::string Metrics::ToString() const {
  std::string out;
  StrAppend(out, "global: committed=", global_committed,
            " aborted=", global_aborted, " (cert=", global_aborted_cert,
            ", dml=", global_aborted_dml,
            ", timeout=", global_aborted_timeout, ")\n");
  StrAppend(out, "network: retransmits=", retransmits,
            " dup_msgs_absorbed=", dup_msgs_absorbed, "\n");
  StrAppend(out, "recovery: coordinator_crashes=", coordinator_crashes,
            " redelivered_decisions=", coordinator_redelivered_decisions,
            " aborted_crash=", global_aborted_crash,
            " inquiries_sent=", inquiries_sent,
            " presumed_abort_replies=", inquiries_answered_presumed_abort,
            "\n");
  StrAppend(out, "certifier: prepares=", prepares_received,
            " refuse[ext=", refuse_extension, " interval=", refuse_interval,
            " dead=", refuse_dead, "] commit_retries=", commit_cert_retries,
            " resubmissions=", resubmissions, "\n");
  StrAppend(out, "local: committed=", local_committed,
            " aborted=", local_aborted, "\n");
  StrAppend(out, "latency: mean_ms=", MeanLatencyMs(),
            " p50_ms=", latency_hist.PercentileMs(50),
            " p95_ms=", latency_hist.PercentileMs(95),
            " p99_ms=", latency_hist.PercentileMs(99),
            " max_ms=", static_cast<double>(latency_max) / 1000.0, "\n");
  return out;
}

}  // namespace hermes::core
