#include "core/mdbs.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/str.h"

namespace hermes::core {

// Executes one local transaction: Begin, commands in order, Commit.
struct Mdbs::LocalRun : std::enable_shared_from_this<Mdbs::LocalRun> {
  Mdbs* mdbs = nullptr;
  LocalTxnSpec spec;
  LocalTxnCallback cb;
  TxnId id;
  LtmTxnHandle handle = kInvalidLtmTxn;
  size_t next = 0;
  std::vector<db::CmdResult> results;

  void Start() {
    if (mdbs->config_.tracer != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kLocalTxnBegin;
      e.txn = id;
      e.site = spec.site;
      e.value = static_cast<int64_t>(spec.commands.size());
      mdbs->config_.tracer->Record(std::move(e));
    }
    handle = mdbs->ltm(spec.site)->Begin(SubTxnId{id, 0});
    RunNext();
  }

  void RunNext() {
    ltm::Ltm* ltm = mdbs->ltm(spec.site);
    if (next >= spec.commands.size()) {
      const Status status = ltm->Commit(handle);
      core::Metrics& m = mdbs->site_metrics_[static_cast<size_t>(spec.site)];
      if (status.ok()) {
        ++m.local_committed;
      } else {
        ++m.local_aborted;
      }
      Finish(status);
      return;
    }
    auto self = shared_from_this();
    ltm->Execute(handle, spec.commands[next],
                 [self](const Status& status, const db::CmdResult& result) {
                   if (!status.ok()) {
                     // The executor aborted the transaction on failure
                     // already (statement errors, lock timeouts); aborts
                     // requested here would be redundant but harmless.
                     ltm::Ltm* ltm = self->mdbs->ltm(self->spec.site);
                     if (ltm->IsActive(self->handle)) {
                       ltm->Abort(self->handle);
                     }
                     ++self->mdbs
                           ->site_metrics_[static_cast<size_t>(
                               self->spec.site)]
                           .local_aborted;
                     self->Finish(status);
                     return;
                   }
                   self->results.push_back(result);
                   ++self->next;
                   self->RunNext();
                 });
  }

  void Finish(const Status& status) {
    if (mdbs->config_.tracer != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kLocalTxnEnd;
      e.txn = id;
      e.site = spec.site;
      e.ok = status.ok();
      if (!status.ok()) e.detail = status.ToString();
      mdbs->config_.tracer->Record(std::move(e));
    }
    if (cb) {
      cb(LocalTxnResult{id, status, std::move(results)});
    }
  }
};

Mdbs::Mdbs(const MdbsConfig& config, sim::EventLoop* loop)
    : config_(config), loop_(loop) {
  assert(config_.num_sites > 0);
  if (config_.max_sites < config_.num_sites) {
    config_.max_sites = config_.num_sites;
  }
  recorder_ = std::make_unique<history::Recorder>(loop_);
  recorder_->set_enabled(config_.record_history);
  network_ = std::make_unique<net::Network>(config_.network, loop_,
                                            config_.tracer);
  // Sized to the capacity ceiling before any site takes a pointer into
  // them; never resized again, so ProvisionSite cannot invalidate the
  // Metrics* held by live agents/coordinators.
  next_local_seq_.resize(static_cast<size_t>(config_.max_sites), 0);
  site_metrics_.resize(static_cast<size_t>(config_.max_sites));

  for (SiteId s = 0; s < config_.num_sites; ++s) BuildSite(s);

  if (config_.num_shards > 0) {
    directory_ = std::make_unique<shard::Directory>(
        shard::ShardMap::MakeInitial(config_.num_shards, config_.num_sites));
    shard::ControllerConfig rc = config_.reconfig;
    if (config_.protocol == consensus::ProtocolKind::kPaxosCommit) {
      // The acceptor set is fixed for life: sites 0..2f may never be
      // removed or replaced.
      const int acceptors =
          std::min(2 * config_.paxos_f + 1, config_.num_sites);
      for (SiteId a = 0; a < acceptors; ++a) rc.protected_sites.push_back(a);
    }
    // The base conversion must happen here, inside Mdbs, where the
    // private shard::HostOps base is accessible.
    shard::HostOps* host = this;
    controller_ = std::make_unique<shard::Controller>(
        rc, directory_.get(), host, &scheduler_metrics_, config_.tracer);
    for (auto& site : sites_) {
      site->agent->set_directory(directory_.get());
      site->coordinator->set_directory(directory_.get());
    }
  }
}

void Mdbs::BuildSite(SiteId s) {
  assert(s == static_cast<SiteId>(sites_.size()));
  auto site = std::make_unique<Site>();
  const sim::Duration offset =
      static_cast<size_t>(s) < config_.clock_offsets.size()
          ? config_.clock_offsets[s]
          : 0;
  const int64_t drift =
      static_cast<size_t>(s) < config_.clock_drift_ppm.size()
          ? config_.clock_drift_ppm[s]
          : 0;
  site->clock = std::make_unique<sim::SiteClock>(loop_, offset, drift);
  site->storage = std::make_unique<db::Storage>(s);

  ltm::LtmConfig ltm_config = config_.ltm;
  ltm_config.site = s;
  site->ltm = std::make_unique<ltm::Ltm>(ltm_config, loop_,
                                         site->storage.get(),
                                         recorder_.get(), config_.tracer);

  const bool paxos =
      config_.protocol == consensus::ProtocolKind::kPaxosCommit;
  AgentConfig agent_config = config_.agent;
  agent_config.site = s;
  if (paxos && agent_config.inquiry_escalate_after == 0) {
    agent_config.inquiry_escalate_after = 2;
  }
  // CSN certification and short commit hook into the 2PC decision
  // machinery (decision-record metadata, 1PC commit point at the agent);
  // under Paxos Commit both downgrade to the paper's defaults.
  const bool csn =
      !paxos && config_.certifier == cert::CertifierKind::kCsn;
  const bool short_commit = !paxos && config_.short_commit;
  agent_config.certifier =
      csn ? cert::CertifierKind::kCsn : cert::CertifierKind::kSn;
  agent_config.short_commit = short_commit;
  Metrics* metrics = &site_metrics_[static_cast<size_t>(s)];
  site->agent = std::make_unique<TwoPCAgent>(agent_config, loop_,
                                             network_.get(),
                                             site->ltm.get(), metrics,
                                             config_.tracer);
  site->coordinator = std::make_unique<Coordinator>(
      s, loop_, network_.get(), site->clock.get(), recorder_.get(),
      metrics, config_.tracer, config_.coordinator_retry);
  if (csn) site->coordinator->set_csn_source(&csn_source_);
  if (short_commit) site->coordinator->set_short_commit(true);
  if (paxos) {
    consensus::PaxosConfig pc;
    pc.site = s;
    // max_sites, not num_sites: ballot numbers are unique modulo this
    // value, and provisioned sites (id >= num_sites) must not collide
    // with the founding ones. Identical when no headroom is configured.
    pc.num_sites = config_.max_sites;
    pc.f = config_.paxos_f;
    site->consensus = std::make_unique<consensus::PaxosCommit>(
        pc, loop_, network_.get(), recorder_.get(), metrics,
        config_.tracer);
    site->coordinator->set_decision_protocol(site->consensus.get());
    consensus::PaxosCommit* p = site->consensus.get();
    site->agent->set_vote_hook(
        [p](const TxnId& gtid, bool ready, SiteId coordinator) {
          p->BroadcastVote(gtid, ready, coordinator);
        });
    site->agent->set_escalate_hook(
        [p](const TxnId& gtid, SiteId coordinator, int attempt) {
          p->Escalate(gtid, coordinator, attempt);
        });
  }
  sites_.push_back(std::move(site));
  network_->RegisterEndpoint(s, [this, s](const net::Envelope& env) {
    RouteMessage(s, env);
  });
}

Mdbs::~Mdbs() = default;

Metrics Mdbs::metrics() const {
  Metrics total = scheduler_metrics_;
  for (const Metrics& m : site_metrics_) total.Merge(m);
  return total;
}

void Mdbs::RouteMessage(SiteId site, const net::Envelope& env) {
  const auto* msg = std::any_cast<Message>(&env.payload);
  if (msg == nullptr) return;  // not a 2PC protocol message (CGM traffic)
  if (sites_[site]->removed) {
    // A retired site forwards only the second half of the commit protocol
    // to the site that adopted its shards (the agent there answers on the
    // original participant's behalf). BEGIN/DML must not follow — the
    // coordinator re-targets those against the fresh map itself — and
    // coordinator-bound traffic has nowhere meaningful to go: the drain
    // guaranteed the retired coordinator owed no one an answer.
    const bool forwardable = std::holds_alternative<PrepareMsg>(*msg) ||
                             std::holds_alternative<DecisionMsg>(*msg) ||
                             std::holds_alternative<OnePhaseCommitMsg>(*msg);
    if (!forwardable || directory_ == nullptr) return;
    const SiteId target = directory_->Forward(site);
    if (target == site || sites_[target]->removed || !sites_[target]->up) {
      return;
    }
    network_->Send(env.from, target, env.payload);
    return;
  }
  if (IsPaxosMessage(*msg)) {
    if (sites_[site]->consensus != nullptr) {
      sites_[site]->consensus->Handle(env.from, *msg);
    }
    return;
  }
  // Agent-bound message kinds go to the site's agent, the rest to the
  // site's coordinator.
  const bool to_agent = std::holds_alternative<BeginMsg>(*msg) ||
                        std::holds_alternative<DmlRequestMsg>(*msg) ||
                        std::holds_alternative<PrepareMsg>(*msg) ||
                        std::holds_alternative<DecisionMsg>(*msg) ||
                        std::holds_alternative<OnePhaseCommitMsg>(*msg);
  if (to_agent) {
    sites_[site]->agent->Handle(env.from, *msg);
  } else {
    sites_[site]->coordinator->Handle(env.from, *msg);
  }
}

Result<db::TableId> Mdbs::CreateTable(SiteId site, const std::string& name) {
  return sites_[site]->storage->CreateTable(name);
}

Result<db::TableId> Mdbs::CreateTableEverywhere(const std::string& name) {
  Result<db::TableId> first = sites_[0]->storage->CreateTable(name);
  if (!first.ok()) return first;
  for (SiteId s = 1; s < num_sites(); ++s) {
    Result<db::TableId> r = sites_[s]->storage->CreateTable(name);
    if (!r.ok()) return r;
    if (*r != *first) {
      return Status::Internal("table ids diverged across sites");
    }
  }
  // Remembered so ProvisionSite can replay the shared schema onto sites
  // added later.
  table_names_.push_back(name);
  return first;
}

Status Mdbs::LoadRow(SiteId site, db::TableId table, int64_t key,
                     db::Row row) {
  return sites_[site]->storage->LoadRow(table, key, std::move(row));
}

TxnId Mdbs::Submit(GlobalTxnSpec spec, GlobalTxnCallback cb,
                   SiteId coordinator_site) {
  if (coordinator_site == kInvalidSite) {
    coordinator_site = spec.steps.empty() ? 0 : spec.steps[0].site;
  }
  if (!sites_[coordinator_site]->up) {
    // The coordinating site is down: the client notices the outage
    // immediately — the transaction never starts.
    Metrics& m = site_metrics_[static_cast<size_t>(coordinator_site)];
    ++m.global_aborted;
    ++m.global_aborted_crash;
    if (cb) {
      loop_->ScheduleAfter(0, [cb = std::move(cb)]() {
        GlobalTxnResult r;
        r.status = Status::Unavailable("coordinating site is down");
        cb(r);
      });
    }
    return TxnId{};
  }
  return sites_[coordinator_site]->coordinator->Submit(std::move(spec),
                                                       std::move(cb));
}

TxnId Mdbs::SubmitLocal(LocalTxnSpec spec, LocalTxnCallback cb) {
  assert(spec.site >= 0 && spec.site < num_sites());
  if (!sites_[spec.site]->up) {
    ++site_metrics_[static_cast<size_t>(spec.site)].local_aborted;
    if (cb) {
      loop_->ScheduleAfter(0, [cb = std::move(cb)]() {
        cb(LocalTxnResult{TxnId{}, Status::Unavailable("site is down"), {}});
      });
    }
    return TxnId{};
  }
  auto run = std::make_shared<LocalRun>();
  run->mdbs = this;
  run->id = TxnId::MakeLocal(spec.site,
                             next_local_seq_[static_cast<size_t>(spec.site)]++);
  run->spec = std::move(spec);
  run->cb = std::move(cb);
  const TxnId id = run->id;
  loop_->ScheduleAfter(0, [run]() { run->Start(); });
  return id;
}

Status Mdbs::CrashSite(SiteId site, sim::Duration downtime) {
  if (site < 0 || site >= num_sites()) {
    return Status::InvalidArgument(StrCat("unknown site ", site));
  }
  Site& s = *sites_[site];
  if (s.removed) {
    return Status::InvalidArgument(
        StrCat("site ", site, " was removed by reconfiguration"));
  }
  if (!s.up) return Status::Ok();  // already down: a second crash is a no-op
  s.up = false;
  if (config_.tracer != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kSiteCrash;
    e.site = site;
    e.ok = false;
    e.value = downtime < 0 ? -1 : downtime;
    config_.tracer->Record(std::move(e));
  }
  // A down site answers nothing: drop its endpoint so messages to it —
  // including ones already in flight — vanish (counted as drops).
  network_->UnregisterEndpoint(site);
  // Both co-located roles fail. The coordinator first: its undecided
  // transactions are presumed aborted, decided ones wait for recovery.
  s.coordinator->Crash();
  // The consensus module loses its volatile leader/resolver/acceptor state;
  // only the acceptor log — stable storage — survives.
  if (s.consensus != nullptr) s.consensus->Crash();
  // Wipe agent volatile state before the collective abort so the UAN storm
  // from below hits an agent that no longer knows the transactions.
  s.agent->Crash();
  for (LtmTxnHandle handle : s.ltm->ActiveHandles()) {
    (void)s.ltm->InjectUnilateralAbort(handle);
  }
  s.ltm->ClearBindings();
  if (downtime == 0) {
    RecoverSiteNow(site);
  } else if (downtime > 0) {
    loop_->ScheduleAfter(downtime, [this, site]() { RecoverSiteNow(site); });
  }
  // downtime < 0: down until an explicit RecoverSite().
  return Status::Ok();
}

Status Mdbs::RecoverSite(SiteId site) {
  if (site < 0 || site >= num_sites()) {
    return Status::InvalidArgument(StrCat("unknown site ", site));
  }
  if (sites_[site]->removed) {
    return Status::InvalidArgument(
        StrCat("site ", site, " was removed by reconfiguration"));
  }
  RecoverSiteNow(site);
  return Status::Ok();
}

void Mdbs::RecoverSiteNow(SiteId site) {
  Site& s = *sites_[site];
  if (s.up || s.removed) return;
  s.up = true;
  // Re-register the endpoint first: recovery immediately sends messages
  // (inquiries, COMMIT re-deliveries) whose replies must be able to
  // reach this site again.
  network_->RegisterEndpoint(site, [this, site](const net::Envelope& env) {
    RouteMessage(site, env);
  });
  // Acceptor state first: the agent's recovery inquiries may escalate into
  // a resolution round that needs the replayed promises/votes.
  if (s.consensus != nullptr) s.consensus->Recover();
  s.agent->Recover();
  s.coordinator->Recover();
  if (config_.tracer != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kSiteRecover;
    e.site = site;
    config_.tracer->Record(std::move(e));
  }
}

Status Mdbs::StartReconfig(const shard::ReconfigOp& op,
                           std::function<void(Status)> done) {
  if (controller_ == nullptr) {
    return Status::InvalidArgument("sharding disabled (num_shards == 0)");
  }
  if (op.kind != shard::ReconfigKind::kRemoveSite &&
      num_sites() >= config_.max_sites) {
    return Status::InvalidArgument(
        StrCat("max_sites (", config_.max_sites, ") exhausted"));
  }
  if (op.kind != shard::ReconfigKind::kAddSite) {
    if (op.site < 0 || op.site >= num_sites()) {
      return Status::InvalidArgument(StrCat("unknown site ", op.site));
    }
    if (sites_[op.site]->removed) {
      return Status::InvalidArgument(
          StrCat("site ", op.site, " already removed"));
    }
    if (!sites_[op.site]->up) {
      return Status::InvalidArgument(
          StrCat("site ", op.site, " is down (cannot drain)"));
    }
  }
  return controller_->Start(op, std::move(done));
}

// --- shard::HostOps --------------------------------------------------------

SiteId Mdbs::ProvisionSite() {
  const SiteId s = static_cast<SiteId>(sites_.size());
  assert(s < config_.max_sites);  // StartReconfig checked capacity
  BuildSite(s);
  Site& site = *sites_[s];
  // Replay the shared schema so table ids align with the rest of the
  // federation (tables created per-site with CreateTable stay where they
  // are — heterogeneity is the point).
  for (const std::string& name : table_names_) {
    const Result<db::TableId> r = site.storage->CreateTable(name);
    assert(r.ok());
    (void)r;
  }
  site.agent->set_directory(directory_.get());
  site.coordinator->set_directory(directory_.get());
  return s;
}

bool Mdbs::SiteUsable(SiteId site) {
  return sites_[site]->up && !sites_[site]->removed;
}

bool Mdbs::QuiescentForShards(SiteId site, const std::vector<int>& shards,
                              bool and_coordinator) {
  const Site& s = *sites_[site];
  if (s.agent->InFlightOnShards(directory_->Current(), shards)) return false;
  if (and_coordinator && s.coordinator->active_transactions() > 0) {
    return false;
  }
  return true;
}

bool Mdbs::CanForceTransfer(SiteId site, const std::vector<int>& shards,
                            bool and_coordinator) {
  const Site& s = *sites_[site];
  if (!s.agent->CanMigrateResidue(directory_->Current(), shards)) {
    return false;
  }
  // The coordinator drain cannot be forced: an in-flight global
  // transaction's decision state is not migratable.
  if (and_coordinator && s.coordinator->active_transactions() > 0) {
    return false;
  }
  return true;
}

int64_t Mdbs::TransferShards(SiteId from, SiteId to,
                             const std::vector<int>& shards) {
  const shard::ShardMap& map = directory_->Current();
  Site& src = *sites_[from];
  Site& dst = *sites_[to];
  const auto in_moved = [&](int64_t key) {
    return std::find(shards.begin(), shards.end(), map.ShardOf(key)) !=
           shards.end();
  };

  // 1. Prepared residue leaves the source agent; still-active global
  //    subtransactions touching the moving shards are unilaterally aborted
  //    inside ExtractResidueForShards (the coordinator resubmits them
  //    against the new owner).
  std::vector<MigratedTxn> residue =
      src.agent->ExtractResidueForShards(map, shards, to);

  // 2. Local transactions still holding rows of the moving shards are
  //    unilaterally aborted too (execution autonomy permits this), so their
  //    undo runs before the committed state is copied.
  for (LtmTxnHandle h : src.ltm->ActiveHandles()) {
    const ltm::LocalTxn* t = src.ltm->Find(h);
    if (t == nullptr) continue;
    bool touches = false;
    for (const ItemId& item : t->write_set) {
      if (in_moved(item.key)) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      for (const ItemId& item : t->read_set) {
        if (in_moved(item.key)) {
          touches = true;
          break;
        }
      }
    }
    if (touches) (void)src.ltm->InjectUnilateralAbort(h);
  }

  // 3. Committed rows move as one synthetic committed transaction per side
  //    — a delete-all at the source, an insert-all at the destination —
  //    recorded in the history so the oracles' world matches the storage.
  const SubTxnId out_id{
      TxnId::MakeLocal(from, next_local_seq_[static_cast<size_t>(from)]++),
      0};
  const SubTxnId in_id{
      TxnId::MakeLocal(to, next_local_seq_[static_cast<size_t>(to)]++), 0};
  uint64_t out_seq = 1;
  uint64_t in_seq = 1;
  int64_t rows_moved = 0;
  for (int32_t t = 0; t < src.storage->table_count(); ++t) {
    db::Table* st = src.storage->GetTable(t);
    db::Table* dt = dst.storage->GetTable(t);
    if (st == nullptr || dt == nullptr) continue;
    std::vector<std::pair<int64_t, db::Row>> moving;
    for (const auto& [key, entry] : st->entries()) {
      if (entry.live() && in_moved(key)) moving.emplace_back(key, *entry.row);
    }
    for (auto& [key, row] : moving) {
      const db::VersionTag in_tag{in_id, in_seq++};
      dt->Put(key, db::RowEntry{std::move(row), in_tag});
      recorder_->RecordWrite(in_id, dst.storage->MakeItemId(t, key), in_tag,
                             /*is_delete=*/false);
      const db::VersionTag out_tag{out_id, out_seq++};
      st->Delete(key, out_tag);
      recorder_->RecordWrite(out_id, src.storage->MakeItemId(t, key),
                             out_tag, /*is_delete=*/true);
      ++rows_moved;
    }
  }
  if (out_seq > 1) recorder_->RecordLocalCommit(out_id, from);
  if (in_seq > 1) recorder_->RecordLocalCommit(in_id, to);

  // 4. The destination adopts the prepared residue — after the rows, so
  //    resubmitted commands re-execute against the migrated state.
  for (const MigratedTxn& m : residue) {
    dst.agent->AdoptMigrated(m);
  }
  return rows_moved;
}

void Mdbs::DeactivateSite(SiteId site) {
  Site& s = *sites_[site];
  s.removed = true;
  s.up = false;
  // Any leftover purely-local transactions die with the site.
  for (LtmTxnHandle handle : s.ltm->ActiveHandles()) {
    (void)s.ltm->InjectUnilateralAbort(handle);
  }
  s.ltm->ClearBindings();
  // The drain guaranteed neither role owes anyone an answer; Crash() just
  // cancels stray timers and drops volatile maps. The network endpoint
  // stays registered so RouteMessage can forward late PREPARE/decision
  // traffic to the adopting site.
  s.coordinator->Crash();
  if (s.consensus != nullptr) s.consensus->Crash();
  s.agent->Crash();
}

void Mdbs::Schedule(sim::Time delay, std::function<void()> fn) {
  loop_->ScheduleAfter(delay, std::move(fn));
}

void Mdbs::SetCoordinatorHooks(const CoordinatorHooks& hooks) {
  for (auto& site : sites_) site->coordinator->set_hooks(hooks);
}

void Mdbs::SetSnAtSubmit(bool v) {
  for (auto& site : sites_) site->coordinator->set_sn_at_submit(v);
}

}  // namespace hermes::core
