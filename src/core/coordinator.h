// The Coordinator of the Distributed Transaction Manager.
//
// One Coordinator instance runs at each coordinating site and manages all
// global transactions submitted there: it decomposes a global transaction
// into global subtransactions (at most one per participating site), submits
// the DML commands one by one, and — upon the application's Commit — runs
// the standard 2PC protocol against the 2PC Agents. The serial number SN(k)
// is generated from the coordinating site's clock when the Commit is
// submitted and travels with the PREPARE messages (section 5.2).
//
// Optional hooks let the CGM baseline interpose a centralized scheduler
// (global locks before each step, commit-graph admission before PREPARE)
// without changing this class.

#ifndef HERMES_CORE_COORDINATOR_H_
#define HERMES_CORE_COORDINATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "cert/certifier.h"
#include "common/ids.h"
#include "common/status.h"
#include "consensus/two_pc.h"
#include "core/coordinator_log.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "history/recorder.h"
#include "net/network.h"
#include "shard/shard_map.h"
#include "sim/event_loop.h"
#include "sim/site_clock.h"
#include "trace/trace.h"

namespace hermes::core {

// A global transaction: an ordered list of (site, command) steps. Commands
// run strictly in order (the application computes between steps; results
// are returned per step).
struct GlobalTxnSpec {
  struct Step {
    SiteId site = kInvalidSite;
    db::Command cmd;
    // Application-level validation: if set and the command affects fewer
    // rows, the coordinator aborts the global transaction (e.g. a booking
    // update whose availability predicate matched nothing).
    std::optional<int64_t> min_affected;
  };
  std::vector<Step> steps;
};

struct GlobalTxnResult {
  TxnId gtid;
  Status status;
  // One entry per completed step.
  std::vector<db::CmdResult> results;
  sim::Duration latency = 0;
  bool certification_refused = false;
};

using GlobalTxnCallback = std::function<void(const GlobalTxnResult&)>;

// Timeout/retransmission tuning for unreliable networks. With a reliable
// network the timers are armed and cancelled but never fire; under message
// loss they drive bounded-backoff retransmission of BEGIN+DML and PREPARE
// (giving up into a presumed abort after max_attempts) and unbounded
// retransmission of COMMIT/ROLLBACK decisions (a decision, once taken,
// must reach every participant — the agents' handlers are duplicate-safe).
struct CoordinatorRetryConfig {
  // First retransmission timeout; doubled per attempt up to max_timeout.
  sim::Duration timeout = 25 * sim::kMillisecond;
  sim::Duration max_timeout = 400 * sim::kMillisecond;
  // Attempts for DML steps and PREPARE before aborting the transaction.
  int max_attempts = 10;
};

// CGM (and other DTM variants) interpose here.
struct CoordinatorHooks {
  // Invoked before executing each step; call done(OK) to proceed,
  // done(error) to abort the global transaction.
  std::function<void(const TxnId&, const GlobalTxnSpec::Step&,
                     std::function<void(const Status&)>)>
      before_step;
  // Invoked when the application submits Commit, before PREPARE fan-out.
  std::function<void(const TxnId&, const std::vector<SiteId>&,
                     std::function<void(const Status&)>)>
      before_prepare;
  // Invoked when the transaction finishes (acks collected).
  std::function<void(const TxnId&, bool committed)> on_finished;
};

class Coordinator {
 public:
  // `tracer` may be null (tracing disabled).
  Coordinator(SiteId site, sim::EventLoop* loop, net::Network* network,
              const sim::SiteClock* clock, history::Recorder* recorder,
              Metrics* metrics, trace::Tracer* tracer = nullptr,
              const CoordinatorRetryConfig& retry = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Starts a global transaction; the callback fires when it commits or
  // aborts globally (all acks collected).
  TxnId Submit(GlobalTxnSpec spec, GlobalTxnCallback cb);

  // Coordinator-bound protocol messages (DML-RESP, READY/REFUSE, ACK).
  void Handle(SiteId from, const Message& msg);

  void set_hooks(CoordinatorHooks hooks) { hooks_ = std::move(hooks); }

  // Ablation (bench_ablation_order): generate the serial number when the
  // transaction is *submitted* instead of when the application commits —
  // the "predefined total order" alternative the paper rejects in
  // section 5.2 as overly restrictive.
  void set_sn_at_submit(bool v) { sn_at_submit_ = v; }

  // Ablation for the lost-decision test: skip the decision force-write so a
  // crash between the commit decision and its delivery forgets the decision
  // (and the recovered coordinator wrongly presumes abort).
  void set_skip_decision_log_for_test(bool v) {
    own_protocol_->set_skip_decision_log(v);
  }

  // Installs an alternative commit-decision protocol (e.g. Paxos Commit).
  // Unowned; must outlive this coordinator. By default the built-in 2PC
  // presumed-abort protocol (decide-and-log against `log_`) is used.
  void set_decision_protocol(consensus::DecisionProtocol* protocol) {
    protocol_ = protocol;
  }

  // Short-commit fast paths: 1PC for single-site transactions (the lone
  // participant becomes the commit point) and no decision round for
  // read-only participants. 2PC-only — Mdbs never enables this under
  // Paxos Commit.
  void set_short_commit(bool v) { short_commit_ = v; }

  // CSN certification: the shared decision-time sequence source (owned by
  // Mdbs). When set, every commit decision draws a CSN before Decide() so
  // the number is durable inside the decision record and travels with the
  // COMMIT messages. Null under the SN scheme.
  void set_csn_source(cert::CsnSource* source) { csn_source_ = source; }

  // Shard directory (owned by Mdbs; null = sharding disabled). When set,
  // every agent-bound message is stamped with this coordinator's epoch
  // view; an EpochRefusedMsg makes it re-fetch the map, re-target pending
  // steps by key ownership, and re-drive the refused phase.
  void set_directory(const shard::Directory* directory) {
    directory_ = directory;
    if (directory != nullptr) epoch_view_ = directory->epoch();
  }

  // --- site crash recovery ------------------------------------------------
  // Crash() discards all volatile state: every undecided transaction is
  // failed towards its client (presumed abort — participants learn the
  // outcome through inquiries), decided ones fall silent until recovery.
  // Only the coordinator log survives. Recover() force-writes a new
  // submission epoch (so fresh transaction ids cannot collide with
  // pre-crash ones) and re-drives COMMIT delivery for every logged decision
  // without a forget record. Called by Mdbs::CrashSite / RecoverSite.
  void Crash();
  void Recover();

  const CoordinatorLog& log() const { return log_; }
  SiteId site() const { return site_; }
  int64_t active_transactions() const {
    return static_cast<int64_t>(txns_.size());
  }

 private:
  enum class Phase : uint8_t {
    kExecuting,
    kPreparing,
    // Waiting for the decision protocol's verdict (all votes are in, or an
    // abort is being sealed). 2PC decides synchronously so this phase is
    // unobservable there; Paxos Commit sits here for the acceptor round.
    kDeciding,
    kCommitting,
    kRollingBack,
  };

  struct CoordTxn {
    TxnId gtid;
    GlobalTxnSpec spec;
    GlobalTxnCallback cb;
    Phase phase = Phase::kExecuting;
    size_t next_step = 0;
    std::set<SiteId> begun;
    std::vector<db::CmdResult> results;
    SerialNumber sn;
    // Decision-time commit sequence number (CSN certifier); -1 under SN.
    int64_t csn = -1;
    // Short-commit 1PC: single participant, no prepare round; the outcome
    // arrives in the participant's ACK instead of being decided here.
    bool one_phase = false;
    // Participants whose READY vote carried read_only: already committed
    // locally, excluded from the decision fan-out and the ack wait.
    std::set<SiteId> readonly_sites;
    std::set<SiteId> votes_pending;
    std::set<SiteId> acks_pending;
    Status failure;
    bool certification_refused = false;
    // Rebuilt from the log by Recover(): the decision is already recorded,
    // so only re-drive delivery (and skip the latency sample).
    bool recovered = false;
    sim::Time start_time = 0;
    // When Commit was submitted — the start of the commit protocol path
    // (prepare/vote/decision rounds, or the 1PC round). The single-site
    // latency metric is measured from here.
    sim::Time commit_start = 0;
    // One retransmission timer per transaction, re-armed per phase: covers
    // the in-flight DML step while executing, outstanding votes while
    // preparing and outstanding acks while committing / rolling back.
    sim::EventId retry_timer = sim::kInvalidEvent;
    int retry_attempt = 0;
    // Participants whose prepared residue migrated in a shard handoff:
    // decisions/prepares for `key` are delivered to `value`, which answers
    // under the original id via on_behalf_of. Learned from EpochRefusedMsg.
    std::map<SiteId, SiteId> relocated;
  };

  void ExecuteNextStep(const TxnId& gtid);
  void SendStep(CoordTxn& txn);
  void OnDmlResponse(const DmlResponseMsg& msg);
  void StartCommit(const TxnId& gtid);
  void StartOnePhaseCommit(CoordTxn& txn);
  void SendPrepares(CoordTxn& txn);
  void OnVote(SiteId from, const VoteMsg& msg);
  void SendDecisions(CoordTxn& txn, bool commit);
  // The decision protocol's verdict arrived (synchronously for 2PC, after
  // the acceptor round for Paxos Commit): record the outcome and fan it
  // out. `commit` may override the requested intent.
  void OnDecided(const TxnId& gtid, bool commit);
  void StartRollback(CoordTxn& txn, const Status& reason,
                     consensus::DecideMode mode =
                         consensus::DecideMode::kAbortFinal);
  void OnAck(SiteId from, const AckMsg& msg);
  void OnInquiry(SiteId from, const InquiryMsg& msg);
  void OnEpochRefused(SiteId from, const EpochRefusedMsg& msg);
  // Where messages for participant `s` of `txn` go: its relocation if the
  // residue migrated, else the directory's retired-site forward, else `s`.
  SiteId Target(const CoordTxn& txn, SiteId s) const;
  // Re-fetches the shard map when the cached view is stale and re-targets
  // the transaction's unexecuted steps by key ownership.
  void RefreshRouting(CoordTxn& txn);
  void TraceInquiryReply(const TxnId& gtid, SiteId peer, bool commit,
                         const char* detail);
  void FinishTxn(CoordTxn& txn, bool committed);

  // Retransmission machinery.
  void ArmRetryTimer(CoordTxn& txn);
  void CancelRetryTimer(CoordTxn& txn);
  void OnRetryTimeout(const TxnId& gtid);
  void TraceRetransmit(const CoordTxn& txn, SiteId peer, const char* what);

  CoordTxn* FindTxn(const TxnId& gtid);

  SiteId site_;
  sim::EventLoop* loop_;
  net::Network* network_;
  history::Recorder* recorder_;
  Metrics* metrics_;
  trace::Tracer* tracer_;
  SerialNumberGenerator sn_generator_;
  CoordinatorHooks hooks_;
  CoordinatorRetryConfig retry_;

  bool sn_at_submit_ = false;
  bool short_commit_ = false;
  cert::CsnSource* csn_source_ = nullptr;
  const shard::Directory* directory_ = nullptr;
  // Cached shard-map epoch, stamped on every agent-bound message; 0 when
  // sharding is disabled (agents never refuse epoch 0).
  int64_t epoch_view_ = 0;
  // Transaction ids are (epoch * stride + seq): next_seq_ is volatile and
  // resets on crash, but the epoch — recovered from the force-written epoch
  // records in the log — guarantees post-recovery ids never collide with
  // pre-crash ones.
  static constexpr int64_t kEpochSeqStride = 1'000'000'000;
  int64_t epoch_ = 0;
  int64_t next_seq_ = 0;
  CoordinatorLog log_;
  // The built-in 2PC decide-and-log protocol (always constructed: it owns
  // the skip_decision_log test ablation) and the active protocol, which an
  // Mdbs running Paxos Commit overrides via set_decision_protocol.
  std::unique_ptr<consensus::TwoPCDecision> own_protocol_;
  consensus::DecisionProtocol* protocol_;
  // Hashed: looked up once per protocol message. Iterated only to cancel
  // timers on teardown, where order is immaterial.
  std::unordered_map<TxnId, CoordTxn> txns_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_COORDINATOR_H_
