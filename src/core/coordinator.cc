#include "core/coordinator.h"

#include <algorithm>
#include <cassert>

#include "common/str.h"

namespace hermes::core {

Coordinator::Coordinator(SiteId site, sim::EventLoop* loop,
                         net::Network* network, const sim::SiteClock* clock,
                         history::Recorder* recorder, Metrics* metrics,
                         trace::Tracer* tracer,
                         const CoordinatorRetryConfig& retry)
    : site_(site),
      loop_(loop),
      network_(network),
      recorder_(recorder),
      metrics_(metrics),
      tracer_(tracer),
      sn_generator_(site, clock),
      retry_(retry),
      own_protocol_(std::make_unique<consensus::TwoPCDecision>(&log_)),
      protocol_(own_protocol_.get()) {}

Coordinator::~Coordinator() {
  for (auto& [gtid, txn] : txns_) CancelRetryTimer(txn);
}

Coordinator::CoordTxn* Coordinator::FindTxn(const TxnId& gtid) {
  auto it = txns_.find(gtid);
  return it == txns_.end() ? nullptr : &it->second;
}

TxnId Coordinator::Submit(GlobalTxnSpec spec, GlobalTxnCallback cb) {
  // Pick up the latest shard-map epoch at submission: the generator routed
  // the steps against the directory's current map, so the view is fresh by
  // construction (a race with a concurrent reconfiguration is handled by
  // the epoch-refusal path like any other staleness).
  if (directory_ != nullptr) epoch_view_ = directory_->epoch();
  const TxnId gtid =
      TxnId::MakeGlobal(site_, epoch_ * kEpochSeqStride + next_seq_++);
  CoordTxn& txn = txns_[gtid];
  txn.gtid = gtid;
  txn.spec = std::move(spec);
  txn.cb = std::move(cb);
  txn.start_time = loop_->Now();
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kTxnBegin;
    e.txn = gtid;
    e.site = site_;
    e.value = static_cast<int64_t>(txn.spec.steps.size());
    tracer_->Record(std::move(e));
  }
  if (sn_at_submit_) txn.sn = sn_generator_.Next();
  if (txn.spec.steps.empty()) {
    txn.failure = Status::InvalidArgument("global transaction has no steps");
    // Resolve asynchronously for uniform callback behavior.
    loop_->ScheduleAfter(0, [this, gtid]() {
      CoordTxn* t = FindTxn(gtid);
      if (t != nullptr) StartRollback(*t, t->failure);
    });
    return gtid;
  }
  loop_->ScheduleAfter(0, [this, gtid]() { ExecuteNextStep(gtid); });
  return gtid;
}

void Coordinator::ExecuteNextStep(const TxnId& gtid) {
  CoordTxn* txn = FindTxn(gtid);
  if (txn == nullptr || txn->phase != Phase::kExecuting) return;
  if (txn->next_step >= txn->spec.steps.size()) {
    StartCommit(gtid);
    return;
  }
  const GlobalTxnSpec::Step& step = txn->spec.steps[txn->next_step];
  if (hooks_.before_step) {
    hooks_.before_step(gtid, step, [this, gtid](const Status& s) {
      CoordTxn* t = FindTxn(gtid);
      if (t == nullptr || t->phase != Phase::kExecuting) return;
      if (!s.ok()) {
        ++metrics_->global_aborted_dml;
        StartRollback(*t, s);
        return;
      }
      SendStep(*t);
    });
    return;
  }
  SendStep(*txn);
}

void Coordinator::SendStep(CoordTxn& txn) {
  const GlobalTxnSpec::Step& step = txn.spec.steps[txn.next_step];
  if (txn.begun.insert(step.site).second) {
    network_->Send(site_, step.site,
                   Message{BeginMsg{txn.gtid, epoch_view_}});
  }
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kStepStart;
    e.txn = txn.gtid;
    e.site = site_;
    e.peer = step.site;
    e.value = static_cast<int64_t>(txn.next_step);
    tracer_->Record(std::move(e));
  }
  network_->Send(site_, step.site,
                 Message{DmlRequestMsg{txn.gtid,
                                       static_cast<int32_t>(txn.next_step),
                                       step.cmd, epoch_view_}});
  ArmRetryTimer(txn);
}

void Coordinator::OnDmlResponse(const DmlResponseMsg& msg) {
  CoordTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr || txn->phase != Phase::kExecuting) return;
  if (msg.cmd_index != static_cast<int32_t>(txn->next_step)) return;
  CancelRetryTimer(*txn);
  txn->retry_attempt = 0;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kStepEnd;
    e.txn = msg.gtid;
    e.site = site_;
    e.peer = txn->spec.steps[txn->next_step].site;
    e.value = msg.cmd_index;
    e.ok = msg.status.ok();
    if (!msg.status.ok()) e.detail = msg.status.ToString();
    tracer_->Record(std::move(e));
  }
  if (!msg.status.ok()) {
    ++metrics_->global_aborted_dml;
    StartRollback(*txn, msg.status);
    return;
  }
  const auto& min_affected = txn->spec.steps[txn->next_step].min_affected;
  if (min_affected.has_value() && msg.result.affected < *min_affected) {
    ++metrics_->global_aborted_dml;
    StartRollback(*txn,
                  Status::Rejected(StrCat("step ", txn->next_step,
                                          " affected ", msg.result.affected,
                                          " rows, expected at least ",
                                          *min_affected)));
    return;
  }
  txn->results.push_back(msg.result);
  ++txn->next_step;
  ExecuteNextStep(txn->gtid);
}

void Coordinator::StartCommit(const TxnId& gtid) {
  CoordTxn* txn = FindTxn(gtid);
  if (txn == nullptr) return;
  txn->commit_start = loop_->Now();
  // Short-commit 1PC: a single-site transaction needs no vote round — its
  // lone participant is the commit point (committing it is indistinguishable
  // from committing a purely local transaction there). Skipped when a
  // before_prepare hook is installed: the CGM must still admit the commit.
  if (short_commit_ && !hooks_.before_prepare && txn->begun.size() == 1) {
    StartOnePhaseCommit(*txn);
    return;
  }
  txn->phase = Phase::kPreparing;
  if (hooks_.before_prepare) {
    std::vector<SiteId> sites(txn->begun.begin(), txn->begun.end());
    hooks_.before_prepare(gtid, sites, [this, gtid](const Status& s) {
      CoordTxn* t = FindTxn(gtid);
      if (t == nullptr || t->phase != Phase::kPreparing) return;
      if (!s.ok()) {
        ++metrics_->global_aborted_cert;
        t->certification_refused = true;
        StartRollback(*t, s);
        return;
      }
      SendPrepares(*t);
    });
    return;
  }
  SendPrepares(*txn);
}

void Coordinator::StartOnePhaseCommit(CoordTxn& txn) {
  const SiteId participant = *txn.begun.begin();
  txn.one_phase = true;
  txn.phase = Phase::kCommitting;
  txn.acks_pending = txn.begun;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kShortCommit;
    e.txn = txn.gtid;
    e.site = site_;
    e.peer = participant;
    e.detail = "1pc";
    tracer_->Record(std::move(e));
  }
  // No decision record: the agent force-writes the outcome into its own
  // log, and the ACK carries it back. The 1PC-COMMIT is retransmitted
  // unboundedly like a decision (the agent's handler is duplicate-safe).
  network_->Send(site_, Target(txn, participant),
                 Message{OnePhaseCommitMsg{txn.gtid, epoch_view_}});
  ArmRetryTimer(txn);
}

void Coordinator::SendPrepares(CoordTxn& txn) {
  // The application has submitted Commit: generate the serial number now
  // (all conflicts are determined by this point) and send it with PREPARE.
  // Under the sn_at_submit ablation the (earlier) submission-time number is
  // kept instead.
  if (!sn_at_submit_) txn.sn = sn_generator_.Next();
  txn.votes_pending = txn.begun;
  protocol_->BeginDecision(
      txn.gtid, std::vector<SiteId>(txn.begun.begin(), txn.begun.end()));
  for (SiteId s : txn.begun) {
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kPrepareSend;
      e.txn = txn.gtid;
      e.site = site_;
      e.peer = s;
      e.sn = txn.sn;
      tracer_->Record(std::move(e));
    }
    network_->Send(site_, Target(txn, s),
                   Message{PrepareMsg{txn.gtid, txn.sn, epoch_view_}});
  }
  ArmRetryTimer(txn);
}

void Coordinator::OnVote(SiteId from, const VoteMsg& msg) {
  CoordTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr || txn->phase != Phase::kPreparing) return;
  // An adopting site answers for the original participant after a shard
  // handoff: clear the bookkeeping under that id.
  const SiteId voter =
      msg.on_behalf_of != kInvalidSite ? msg.on_behalf_of : from;
  txn->votes_pending.erase(voter);
  if (msg.ready && msg.read_only) txn->readonly_sites.insert(voter);
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kVoteRecv;
    e.txn = msg.gtid;
    e.site = site_;
    e.peer = voter;
    e.ok = msg.ready;
    if (!msg.ready) e.detail = msg.reason.ToString();
    tracer_->Record(std::move(e));
  }
  if (!msg.ready) {
    ++metrics_->global_aborted_cert;
    txn->certification_refused = true;
    StartRollback(*txn, msg.reason.ok()
                            ? Status::Rejected("participant refused")
                            : msg.reason);
    return;
  }
  if (txn->votes_pending.empty()) {
    // All READY: hand the commit intent to the decision protocol. 2PC
    // force-writes the decision record and answers synchronously *before*
    // the first COMMIT message leaves the site — without that a crash here
    // would lose the decision while participants may already be
    // committing, the classic lost-decision atomicity violation. Paxos
    // Commit instead waits for the acceptor round (fast path: one message
    // delay) and answers from OnDecided.
    txn->phase = Phase::kDeciding;
    CancelRetryTimer(*txn);
    txn->retry_attempt = 0;
    if (txn->readonly_sites.size() == txn->begun.size()) {
      // Every participant was read-only and already committed locally with
      // its vote: there is no decision to take or deliver — the decision
      // round disappears entirely.
      recorder_->RecordGlobalCommit(txn->gtid, site_);
      if (tracer_ != nullptr) {
        trace::Event e;
        e.kind = trace::EventKind::kShortCommit;
        e.txn = txn->gtid;
        e.site = site_;
        e.detail = "readonly";
        tracer_->Record(std::move(e));
      }
      FinishTxn(*txn, /*committed=*/true);
      return;
    }
    if (csn_source_ != nullptr) {
      // Decision-time CSN from the shared source, drawn *before* Decide so
      // the number is durable inside the decision record and survives a
      // coordinator crash together with the outcome.
      txn->csn = csn_source_->Next();
      ++metrics_->csn_assigned;
      if (tracer_ != nullptr) {
        trace::Event e;
        e.kind = trace::EventKind::kCsnAssign;
        e.txn = txn->gtid;
        e.site = site_;
        e.value = txn->csn;
        tracer_->Record(std::move(e));
      }
    }
    // Read-only participants are already committed and owed nothing: only
    // the writers are recorded as owed a COMMIT (and re-driven after a
    // coordinator crash).
    std::vector<SiteId> writers;
    for (SiteId s : txn->begun) {
      if (txn->readonly_sites.count(s) == 0) writers.push_back(s);
    }
    protocol_->Decide(
        txn->gtid, consensus::DecideMode::kCommit, writers, txn->csn,
        [this](const TxnId& gtid, bool commit) { OnDecided(gtid, commit); });
  }
}

void Coordinator::OnDecided(const TxnId& gtid, bool commit) {
  CoordTxn* txn = FindTxn(gtid);
  if (txn == nullptr || txn->phase != Phase::kDeciding) return;
  if (commit) {
    recorder_->RecordGlobalCommit(gtid, site_);
    txn->phase = Phase::kCommitting;
    SendDecisions(*txn, /*commit=*/true);
    return;
  }
  recorder_->RecordGlobalAbort(gtid, site_);
  txn->phase = Phase::kRollingBack;
  if (txn->failure.ok()) {
    txn->failure = Status::Aborted("decision protocol aborted");
  }
  if (txn->begun.empty()) {
    CancelRetryTimer(*txn);
    FinishTxn(*txn, /*committed=*/false);
    return;
  }
  SendDecisions(*txn, /*commit=*/false);
}

void Coordinator::SendDecisions(CoordTxn& txn, bool commit) {
  CancelRetryTimer(txn);
  txn.retry_attempt = 0;
  txn.acks_pending.clear();
  for (SiteId s : txn.begun) {
    // Short-commit read-only participants already committed at their vote:
    // they are owed no decision and send no ack.
    if (txn.readonly_sites.count(s) != 0) continue;
    txn.acks_pending.insert(s);
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kDecisionSend;
      e.txn = txn.gtid;
      e.site = site_;
      e.peer = s;
      e.ok = commit;
      if (!commit) e.detail = txn.failure.ToString();
      tracer_->Record(std::move(e));
    }
    network_->Send(site_, Target(txn, s),
                   Message{DecisionMsg{txn.gtid, commit, txn.csn,
                                       epoch_view_}});
  }
  if (txn.acks_pending.empty()) {
    FinishTxn(txn, commit);
    return;
  }
  ArmRetryTimer(txn);
}

void Coordinator::Handle(SiteId from, const Message& msg) {
  if (const auto* m = std::get_if<DmlResponseMsg>(&msg)) {
    OnDmlResponse(*m);
  } else if (const auto* m = std::get_if<VoteMsg>(&msg)) {
    OnVote(from, *m);
  } else if (const auto* m = std::get_if<AckMsg>(&msg)) {
    OnAck(from, *m);
  } else if (const auto* m = std::get_if<InquiryMsg>(&msg)) {
    OnInquiry(from, *m);
  } else if (const auto* m = std::get_if<EpochRefusedMsg>(&msg)) {
    OnEpochRefused(from, *m);
  }
}

void Coordinator::OnEpochRefused(SiteId from, const EpochRefusedMsg& msg) {
  // Always refresh the cached view first — even for transactions this
  // coordinator no longer knows, so the next inquiry reply to the refusing
  // agent carries an epoch it accepts.
  if (directory_ != nullptr && epoch_view_ < directory_->epoch()) {
    epoch_view_ = directory_->Fetch().epoch;
    ++metrics_->epoch_map_refreshes;
  }
  CoordTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) return;
  if (msg.moved_to != kInvalidSite) txn->relocated[from] = msg.moved_to;
  RefreshRouting(*txn);
  // Re-drive the refused phase immediately against the fresh map instead of
  // waiting out the retransmission timer.
  CancelRetryTimer(*txn);
  const TxnId gtid = msg.gtid;
  loop_->ScheduleAfter(0, [this, gtid]() { OnRetryTimeout(gtid); });
}

SiteId Coordinator::Target(const CoordTxn& txn, SiteId s) const {
  const auto it = txn.relocated.find(s);
  if (it != txn.relocated.end()) return it->second;
  if (directory_ != nullptr) return directory_->Forward(s);
  return s;
}

void Coordinator::RefreshRouting(CoordTxn& txn) {
  if (directory_ == nullptr) return;
  if (epoch_view_ < directory_->epoch()) {
    epoch_view_ = directory_->Fetch().epoch;
    ++metrics_->epoch_map_refreshes;
  }
  if (txn.phase != Phase::kExecuting) return;
  // Unexecuted steps follow their key's owner under the fresh map (a step
  // without an exact key keeps its planned site — the agent's own
  // moved-shard guard rejects it if the rows left).
  const shard::ShardMap& map = directory_->Current();
  for (size_t i = txn.next_step; i < txn.spec.steps.size(); ++i) {
    const std::optional<int64_t> key =
        db::CommandExactKey(txn.spec.steps[i].cmd);
    if (key.has_value()) txn.spec.steps[i].site = map.OwnerOfKey(*key);
  }
}

void Coordinator::OnInquiry(SiteId from, const InquiryMsg& msg) {
  // Recovery inquiry from a crashed participant or from a prepared agent
  // whose decision wait timed out (blocking-window probing). Handling is
  // idempotent: duplicate inquiries get the same reply again, lost replies
  // are covered by the agent's capped-backoff inquiry retry timer.
  CoordTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) {
    // Unknown here: ask the decision protocol. 2PC answers presumed abort
    // (a finished transaction was acked by every participant, so an
    // in-doubt inquirer can only concern an aborted one); Paxos Commit
    // answers from its decided cache or starts a resolution round and
    // stays silent — the requester gets its DecisionMsg when the round
    // completes.
    const std::optional<bool> outcome =
        protocol_->AnswerInquiry(msg.gtid, from);
    if (!outcome.has_value()) return;
    if (!*outcome) ++metrics_->inquiries_answered_presumed_abort;
    TraceInquiryReply(msg.gtid, from, /*commit=*/*outcome,
                      *outcome ? nullptr : "presumed-abort");
    network_->Send(site_, from,
                   Message{DecisionMsg{msg.gtid, *outcome,
                                       *outcome ? log_.DecisionCsnOf(msg.gtid)
                                                : -1,
                                       epoch_view_}});
    return;
  }
  if (txn->phase == Phase::kCommitting) {
    // Short-commit 1PC: the outcome lives at the agent, not here — stay
    // silent; the unbounded 1PC-COMMIT retransmission resolves the agent.
    if (txn->one_phase) return;
    TraceInquiryReply(msg.gtid, from, /*commit=*/true, nullptr);
    network_->Send(site_, from,
                   Message{DecisionMsg{msg.gtid, true, txn->csn,
                                       epoch_view_}});
  } else if (txn->phase == Phase::kRollingBack) {
    TraceInquiryReply(msg.gtid, from, /*commit=*/false, nullptr);
    network_->Send(site_, from,
                   Message{DecisionMsg{msg.gtid, false, /*csn=*/-1,
                                       epoch_view_}});
  }
  // Still executing/preparing/deciding: stay silent, the agent retries
  // (while deciding, the protocol is already resolving the outcome).
}

void Coordinator::TraceInquiryReply(const TxnId& gtid, SiteId peer,
                                    bool commit, const char* detail) {
  if (tracer_ == nullptr) return;
  trace::Event e;
  e.kind = trace::EventKind::kInquiryReply;
  e.txn = gtid;
  e.site = site_;
  e.peer = peer;
  e.ok = commit;
  if (detail != nullptr) e.detail = detail;
  tracer_->Record(std::move(e));
}

void Coordinator::StartRollback(CoordTxn& txn, const Status& reason,
                                consensus::DecideMode mode) {
  txn.failure = reason;
  txn.phase = Phase::kDeciding;
  CancelRetryTimer(txn);
  // kAbortFinal (a definite refusal or DML failure) resolves synchronously
  // under every protocol; kAbortTimeout (votes missing, outcome open) may
  // come back from Paxos Commit as a *commit* if the acceptors had already
  // sealed one — OnDecided honors the protocol's verdict either way.
  protocol_->Decide(
      txn.gtid, mode,
      std::vector<SiteId>(txn.begun.begin(), txn.begun.end()), /*csn=*/-1,
      [this](const TxnId& gtid, bool commit) { OnDecided(gtid, commit); });
}

void Coordinator::OnAck(SiteId from, const AckMsg& msg) {
  CoordTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) return;
  if (txn->phase != Phase::kCommitting && txn->phase != Phase::kRollingBack) {
    return;
  }
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kAckRecv;
    e.txn = msg.gtid;
    e.site = site_;
    e.peer = from;
    e.ok = msg.commit;
    tracer_->Record(std::move(e));
  }
  // As with votes: an adopting site acks under the original participant id.
  SiteId acker = msg.on_behalf_of != kInvalidSite ? msg.on_behalf_of : from;
  if (txn->acks_pending.count(acker) == 0) {
    // An adopter that already finished the transaction auto-acks a
    // retransmitted decision under its own id. Resolve which original
    // participant we currently route to this sender, else the ack never
    // matches and the decision retransmits forever.
    for (SiteId orig : txn->acks_pending) {
      if (Target(*txn, orig) == from) {
        acker = orig;
        break;
      }
    }
  }
  txn->acks_pending.erase(acker);
  if (txn->one_phase && !msg.commit) {
    // The agent — the 1PC commit point — durably chose abort and already
    // recorded the global outcome; only the client report happens here.
    txn->phase = Phase::kRollingBack;
    txn->failure = Status::Aborted("participant unilaterally aborted");
  }
  if (txn->acks_pending.empty()) {
    FinishTxn(*txn, /*committed=*/txn->phase == Phase::kCommitting);
  }
}

// --- site crash recovery -----------------------------------------------------

void Coordinator::Crash() {
  ++metrics_->coordinator_crashes;
  for (auto& [gtid, txn] : txns_) {
    CancelRetryTimer(txn);
    switch (txn.phase) {
      case Phase::kCommitting:
        // Under 2PC the decision record is force-written: Recover()
        // re-drives the COMMIT delivery and FinishTxn counts the commit
        // then. (Exception: a short-commit 1PC has no decision record —
        // the agent holds the durable outcome and needs no re-drive; its
        // commit simply goes uncounted, like any undecided transaction.)
        // Only the client callback fails now — the pre-crash
        // coordinator can no longer report the outcome. Paxos Commit has
        // no redelivery pass (the acceptor quorum is the durable truth and
        // participants pull from it), so the chosen commit is tallied
        // here or it would never be counted.
        if (!protocol_->PresumesAbortOnCrash()) ++metrics_->global_committed;
        break;
      case Phase::kRollingBack:
        // The abort was already recorded by OnDecided; only the metrics
        // counter (normally bumped in FinishTxn) is still owed.
        ++metrics_->global_aborted;
        break;
      case Phase::kExecuting:
      case Phase::kPreparing:
      case Phase::kDeciding:
        // Undecided towards this client either way (the pre-crash
        // coordinator can no longer report an outcome). Under 2PC the
        // transaction is presumed aborted and recorded as such; under
        // Paxos Commit the outcome may still be sealed COMMIT by the
        // acceptors and delivered by a resolver, so nothing is recorded
        // here — the resolver records whatever gets chosen.
        if (protocol_->PresumesAbortOnCrash()) {
          recorder_->RecordGlobalAbort(txn.gtid, site_);
        }
        ++metrics_->global_aborted;
        ++metrics_->global_aborted_crash;
        break;
    }
    if (txn.cb) {
      GlobalTxnResult result;
      result.gtid = txn.gtid;
      result.status = Status::Unavailable("coordinator crashed");
      result.results = std::move(txn.results);
      result.latency = loop_->Now() - txn.start_time;
      // Asynchronously, matching the normal completion path (and because
      // Crash() may be invoked from inside a protocol handler).
      loop_->ScheduleAfter(
          0, [cb = std::move(txn.cb), result = std::move(result)]() {
            cb(result);
          });
    }
  }
  txns_.clear();
}

void Coordinator::Recover() {
  // A reconfiguration may have happened while this site was down.
  if (directory_ != nullptr) epoch_view_ = directory_->epoch();
  // Force-write a fresh submission epoch before anything else: next_seq_
  // is volatile, so without the epoch bump post-recovery transaction ids
  // could collide with pre-crash ones still held by participants.
  epoch_ = log_.LastEpoch() + 1;
  log_.ForceAppend(
      CoordLogRecord{.kind = CoordRecordKind::kEpoch, .epoch = epoch_});
  next_seq_ = 0;
  // Re-drive COMMIT delivery for every decided-but-not-forgotten
  // transaction the protocol can enumerate (2PC: decisions in the log;
  // Paxos Commit: none — prepared participants pull the outcome from the
  // acceptor quorum via inquiry escalation instead). Participants that
  // already processed the decision absorb the duplicate and re-ack; the
  // rest are unblocked.
  for (const consensus::DecisionProtocol::InFlight& rec :
       protocol_->RecoverInFlight()) {
    CoordTxn& txn = txns_[rec.gtid];
    txn.gtid = rec.gtid;
    txn.phase = Phase::kCommitting;
    txn.recovered = true;
    txn.csn = rec.csn;
    txn.begun.insert(rec.participants.begin(), rec.participants.end());
    txn.start_time = loop_->Now();
    ++metrics_->coordinator_redelivered_decisions;
    SendDecisions(txn, /*commit=*/true);
  }
}

// --- timeouts and retransmission ---------------------------------------------

void Coordinator::ArmRetryTimer(CoordTxn& txn) {
  CancelRetryTimer(txn);
  sim::Duration timeout = retry_.timeout;
  for (int i = 0; i < txn.retry_attempt; ++i) {
    timeout = std::min(timeout * 2, retry_.max_timeout);
  }
  const TxnId gtid = txn.gtid;
  txn.retry_timer = loop_->ScheduleAfter(
      timeout, [this, gtid]() { OnRetryTimeout(gtid); });
}

void Coordinator::CancelRetryTimer(CoordTxn& txn) {
  if (txn.retry_timer != sim::kInvalidEvent) {
    loop_->Cancel(txn.retry_timer);
    txn.retry_timer = sim::kInvalidEvent;
  }
}

void Coordinator::TraceRetransmit(const CoordTxn& txn, SiteId peer,
                                  const char* what) {
  ++metrics_->retransmits;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kRetransmit;
    e.txn = txn.gtid;
    e.site = site_;
    e.peer = peer;
    e.value = txn.retry_attempt;
    e.detail = what;
    tracer_->Record(std::move(e));
  }
}

void Coordinator::OnRetryTimeout(const TxnId& gtid) {
  CoordTxn* txn = FindTxn(gtid);
  if (txn == nullptr) return;
  txn->retry_timer = sim::kInvalidEvent;
  switch (txn->phase) {
    case Phase::kDeciding:
      // The decision protocol owns this wait (Paxos Commit arms its own
      // fast-path timeout and resolution retries); nothing to retransmit.
      return;
    case Phase::kExecuting: {
      if (txn->next_step >= txn->spec.steps.size()) return;
      ++txn->retry_attempt;
      if (txn->retry_attempt > retry_.max_attempts) {
        ++metrics_->global_aborted_timeout;
        StartRollback(*txn, Status::Unavailable(StrCat(
                                "step ", txn->next_step, " unacknowledged "
                                "after ", retry_.max_attempts, " attempts")));
        return;
      }
      // The silence may mean the step's site was removed mid-run (messages
      // to retired sites are dropped): re-target against the fresh map
      // before retransmitting.
      RefreshRouting(*txn);
      // Re-send BEGIN along with the command: either may have been the
      // loss, and the agent ignores a duplicate BEGIN.
      const GlobalTxnSpec::Step& step = txn->spec.steps[txn->next_step];
      TraceRetransmit(*txn, step.site, "dml");
      txn->begun.insert(step.site);
      network_->Send(site_, step.site,
                     Message{BeginMsg{txn->gtid, epoch_view_}});
      network_->Send(
          site_, step.site,
          Message{DmlRequestMsg{txn->gtid,
                                static_cast<int32_t>(txn->next_step),
                                step.cmd, epoch_view_}});
      ArmRetryTimer(*txn);
      break;
    }
    case Phase::kPreparing: {
      if (txn->votes_pending.empty()) return;
      ++txn->retry_attempt;
      if (txn->retry_attempt > retry_.max_attempts) {
        // No decision was taken yet: presumed abort of the unresponsive
        // participants is always safe.
        ++metrics_->global_aborted_timeout;
        ++metrics_->global_aborted_cert;
        StartRollback(*txn,
                      Status::Unavailable(StrCat(
                          txn->votes_pending.size(), " vote(s) missing "
                          "after ", retry_.max_attempts, " attempts")),
                      consensus::DecideMode::kAbortTimeout);
        return;
      }
      RefreshRouting(*txn);
      for (SiteId s : txn->votes_pending) {
        TraceRetransmit(*txn, s, "prepare");
        network_->Send(site_, Target(*txn, s),
                       Message{PrepareMsg{txn->gtid, txn->sn, epoch_view_}});
      }
      ArmRetryTimer(*txn);
      break;
    }
    case Phase::kCommitting:
    case Phase::kRollingBack: {
      if (txn->acks_pending.empty()) return;
      // A decision must reach every participant: retransmit without an
      // attempt bound, with the backoff capped at max_timeout. The agent
      // re-acks decisions for transactions in any state.
      ++txn->retry_attempt;
      RefreshRouting(*txn);
      if (txn->one_phase) {
        for (SiteId s : txn->acks_pending) {
          TraceRetransmit(*txn, s, "1pc-commit");
          network_->Send(site_, Target(*txn, s),
                         Message{OnePhaseCommitMsg{txn->gtid, epoch_view_}});
        }
        ArmRetryTimer(*txn);
        break;
      }
      const bool commit = txn->phase == Phase::kCommitting;
      for (SiteId s : txn->acks_pending) {
        TraceRetransmit(*txn, s, "decision");
        network_->Send(site_, Target(*txn, s),
                       Message{DecisionMsg{txn->gtid, commit, txn->csn,
                                           epoch_view_}});
      }
      ArmRetryTimer(*txn);
      break;
    }
  }
}

void Coordinator::FinishTxn(CoordTxn& txn, bool committed) {
  CancelRetryTimer(txn);
  if (committed) {
    ++metrics_->global_committed;
    // Recovered transactions span a crash: their start_time was rebuilt at
    // recovery and would poison the latency distribution.
    if (!txn.recovered) {
      metrics_->AddLatency(loop_->Now() - txn.start_time);
      // Single-site commits get their own latency tally: the short-commit
      // ablation (E18) compares exactly this population across 1PC vs 2PC.
      // Measured from StartCommit, not txn begin — the execution phase is
      // identical in both arms, and its lock waits would drown the
      // commit-path difference the ablation is after.
      if (txn.begun.size() == 1) {
        ++metrics_->single_site_committed;
        metrics_->single_site_latency_total +=
            loop_->Now() - txn.commit_start;
      }
    }
    // Every participant acked the COMMIT: no inquiry can arrive that needs
    // the decision, so the protocol may garbage-collect it (2PC appends the
    // buffered forget record — losing it only costs a harmless re-delivery
    // after a crash).
    protocol_->Forget(txn.gtid);
  } else {
    ++metrics_->global_aborted;
  }
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kTxnEnd;
    e.txn = txn.gtid;
    e.site = site_;
    e.value = loop_->Now() - txn.start_time;
    e.ok = committed;
    if (!committed) e.detail = txn.failure.ToString();
    tracer_->Record(std::move(e));
  }
  if (hooks_.on_finished) hooks_.on_finished(txn.gtid, committed);
  GlobalTxnResult result;
  result.gtid = txn.gtid;
  result.status = committed ? Status::Ok() : txn.failure;
  if (!committed && result.status.ok()) {
    result.status = Status::Aborted("global transaction aborted");
  }
  result.results = std::move(txn.results);
  result.latency = loop_->Now() - txn.start_time;
  result.certification_refused = txn.certification_refused;
  GlobalTxnCallback cb = std::move(txn.cb);
  const TxnId gtid = txn.gtid;
  txns_.erase(gtid);
  if (cb) cb(result);
}

}  // namespace hermes::core
