// Counters collected across one multidatabase run; shared by the agents,
// coordinators and the workload driver, and printed by the benchmarks.

#ifndef HERMES_CORE_METRICS_H_
#define HERMES_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "trace/histogram.h"

namespace hermes::core {

struct Metrics {
  // Global transaction outcomes (coordinator view).
  int64_t global_committed = 0;
  int64_t global_aborted = 0;
  int64_t global_aborted_cert = 0;      // aborted due to certification REFUSE
  int64_t global_aborted_dml = 0;       // aborted due to a failed command
  int64_t global_aborted_timeout = 0;   // aborted after retransmissions ran out

  // Unreliable-network robustness (coordinator + agent view).
  int64_t retransmits = 0;        // protocol messages re-sent after a timeout
  int64_t dup_msgs_absorbed = 0;  // duplicate messages handled idempotently

  // Crash recovery (coordinator log + agent inquiry machinery).
  int64_t coordinator_crashes = 0;   // coordinator role lost volatile state
  int64_t coordinator_redelivered_decisions = 0;  // re-driven from the log
  int64_t global_aborted_crash = 0;  // undecided txns failed by a coord crash
  int64_t inquiries_sent = 0;        // InquiryMsg probes from prepared agents
  int64_t inquiries_answered_presumed_abort = 0;  // unknown-txn replies

  // Certifier activity (agent view).
  int64_t prepares_received = 0;
  int64_t refuse_extension = 0;   // extended prepare certification failures
  int64_t refuse_interval = 0;    // basic (alive-interval) failures
  int64_t refuse_snapshot = 0;    // CSN snapshot check failures (resubmitted)
  int64_t refuse_dead = 0;        // transaction not alive at prepare
  int64_t commit_cert_retries = 0;
  int64_t alive_checks = 0;
  int64_t resubmissions = 0;
  int64_t resubmission_failures = 0;  // a resubmission attempt itself died

  // Short-commit fast paths and the CSN certifier (ablation matrix).
  int64_t short_commits_1pc = 0;       // single-site 1PC commits at the agent
  int64_t short_commits_readonly = 0;  // write-free early commits at prepare
  int64_t csn_assigned = 0;            // decision-time CSNs drawn
  int64_t single_site_committed = 0;   // committed txns with one participant
  sim::Duration single_site_latency_total = 0;  // their summed latency (us)

  // Local transactions driven through the workload.
  int64_t local_committed = 0;
  int64_t local_aborted = 0;

  // Latency of committed global transactions (virtual time). The histogram
  // provides p50/p95/p99 beyond the running mean/max.
  int64_t latency_samples = 0;
  sim::Duration latency_total = 0;
  sim::Duration latency_max = 0;
  trace::Histogram latency_hist;

  // CGM baseline specifics.
  int64_t cgm_graph_rejections = 0;   // commit-graph loop refusals
  int64_t cgm_lock_timeouts = 0;      // global lock waits that timed out

  // Paxos Commit (consensus subsystem).
  int64_t paxos_forced_writes = 0;     // acceptor-log force-writes
  int64_t paxos_votes_accepted = 0;    // ballot-0 RM votes accepted
  int64_t paxos_resolutions = 0;       // resolution rounds started
  int64_t paxos_elections = 0;         // inquiry escalations (leader elect)
  int64_t paxos_decided_fast = 0;      // ballot-0 fast-path decisions
  int64_t paxos_decided_resolved = 0;  // decisions via a resolution round

  // Sharding + online reconfiguration (shard subsystem, epoch fencing).
  int64_t epoch_refusals = 0;        // messages refused for a stale epoch
  int64_t epoch_map_refreshes = 0;   // coordinator shard-map re-fetches
  int64_t reconfig_started = 0;      // reconfigurations fenced (epoch bump 1)
  int64_t reconfig_completed = 0;    // reconfigurations committed (bump 2)
  int64_t reconfig_rows_moved = 0;   // committed rows transferred in handoffs
  int64_t reconfig_residue_adopted = 0;  // prepared subtxns migrated + adopted
  int64_t reconfig_forced_aborts = 0;    // active subtxns aborted at deadline
  int64_t commits_stale_epoch = 0;   // tripwire: local commit on a shard the
                                     // site no longer owned (must stay 0)

  // Tracing self-observability (workload driver, from TracerStats).
  // emitted == stored + sampled_out + dropped, so a consumer can tell how
  // complete a captured trace is without opening it.
  int64_t trace_events_emitted = 0;  // Record calls on the run's tracer
  int64_t trace_events_dropped = 0;  // records evicted by ring overflow
  int64_t trace_sampled_out = 0;     // events dropped by the gtid sampler

  void AddLatency(sim::Duration d) {
    ++latency_samples;
    latency_total += d;
    if (d > latency_max) latency_max = d;
    latency_hist.Add(d);
  }
  double MeanLatencyMs() const {
    return latency_samples == 0
               ? 0.0
               : static_cast<double>(latency_total) /
                     static_cast<double>(latency_samples) / 1000.0;
  }

  // Folds `o` into this: counters and latency sums add, latency_max maxes,
  // histograms merge. Commutative and associative, so per-site snapshots
  // merge into exactly the totals a single shared object would have held.
  void Merge(const Metrics& o);

  // All scalar counters as (name, value) pairs in a fixed declaration
  // order. One list feeds the Prometheus export, the run fingerprints and
  // the per-site breakdown, so the three can never disagree on naming.
  std::vector<std::pair<const char*, int64_t>> CounterEntries() const;

  std::string ToString() const;
};

// Prometheus text exposition of a run's metrics: every counter as
// `hermes_<name>`, the same counter per site as `hermes_<name>{site="s"}`
// (sites in ascending id order), and the commit latency histogram as a
// cumulative `hermes_latency_us` histogram with _sum and _count. Output is
// deterministic; `per_site` may be empty.
std::string MetricsPrometheusText(const Metrics& total,
                                  const std::vector<Metrics>& per_site);

}  // namespace hermes::core

#endif  // HERMES_CORE_METRICS_H_
