#include "core/agent_log.h"

#include <algorithm>

namespace hermes::core {

int64_t AgentLog::Append(LogRecord record) {
  record.lsn = static_cast<int64_t>(records_.size());
  by_txn_[record.gtid].push_back(records_.size());
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

int64_t AgentLog::ForceAppend(LogRecord record) {
  record.forced = true;
  ++forced_writes_;
  return Append(std::move(record));
}

std::vector<db::Command> AgentLog::CommandsOf(const TxnId& gtid) const {
  std::vector<db::Command> out;
  auto it = by_txn_.find(gtid);
  if (it == by_txn_.end()) return out;
  for (size_t pos : it->second) {
    const LogRecord& r = records_[pos];
    if (r.kind == LogRecordKind::kCommand && r.command.has_value()) {
      out.push_back(*r.command);
    }
  }
  return out;
}

std::optional<LogRecord> AgentLog::PrepareRecordOf(const TxnId& gtid) const {
  auto it = by_txn_.find(gtid);
  if (it == by_txn_.end()) return std::nullopt;
  std::optional<LogRecord> found;
  for (size_t pos : it->second) {
    if (records_[pos].kind == LogRecordKind::kPrepare) found = records_[pos];
  }
  return found;
}

namespace {

bool HasKind(const std::unordered_map<TxnId, std::vector<size_t>>& by_txn,
             const std::vector<LogRecord>& records, const TxnId& gtid,
             LogRecordKind kind) {
  auto it = by_txn.find(gtid);
  if (it == by_txn.end()) return false;
  for (size_t pos : it->second) {
    if (records[pos].kind == kind) return true;
  }
  return false;
}

}  // namespace

bool AgentLog::HasCommit(const TxnId& gtid) const {
  return HasKind(by_txn_, records_, gtid, LogRecordKind::kCommit);
}

int64_t AgentLog::CommitCsnOf(const TxnId& gtid) const {
  auto it = by_txn_.find(gtid);
  if (it == by_txn_.end()) return -1;
  for (size_t pos : it->second) {
    if (records_[pos].kind == LogRecordKind::kCommit) {
      return records_[pos].csn;
    }
  }
  return -1;
}

bool AgentLog::HasAbort(const TxnId& gtid) const {
  return HasKind(by_txn_, records_, gtid, LogRecordKind::kAbort);
}

bool AgentLog::HasComplete(const TxnId& gtid) const {
  return HasKind(by_txn_, records_, gtid, LogRecordKind::kComplete);
}

SiteId AgentLog::CoordinatorOf(const TxnId& gtid) const {
  auto it = by_txn_.find(gtid);
  if (it == by_txn_.end()) return kInvalidSite;
  for (size_t pos : it->second) {
    if (records_[pos].kind == LogRecordKind::kBegin) {
      return records_[pos].peer;
    }
  }
  return kInvalidSite;
}

SiteId AgentLog::MigratedToOf(const TxnId& gtid) const {
  auto it = by_txn_.find(gtid);
  if (it == by_txn_.end()) return kInvalidSite;
  for (size_t pos : it->second) {
    if (records_[pos].kind == LogRecordKind::kMigrated) {
      return records_[pos].peer;
    }
  }
  return kInvalidSite;
}

int AgentLog::ResubmissionsOf(const TxnId& gtid) const {
  auto it = by_txn_.find(gtid);
  if (it == by_txn_.end()) return 0;
  int n = 0;
  for (size_t pos : it->second) {
    if (records_[pos].kind == LogRecordKind::kResubmission) ++n;
  }
  return n;
}

std::vector<TxnId> AgentLog::InDoubt() const {
  std::vector<TxnId> out;
  for (const auto& [gtid, positions] : by_txn_) {
    bool prepared = false, resolved = false;
    for (size_t pos : positions) {
      switch (records_[pos].kind) {
        case LogRecordKind::kPrepare:
          prepared = true;
          break;
        case LogRecordKind::kComplete:
        case LogRecordKind::kAbort:
        case LogRecordKind::kMigrated:
          resolved = true;
          break;
        default:
          break;
      }
    }
    if (prepared && !resolved) out.push_back(gtid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hermes::core
