#include "core/coordinator_log.h"

namespace hermes::core {

int64_t CoordinatorLog::AppendImpl(CoordLogRecord record, bool forced) {
  record.lsn = static_cast<int64_t>(records_.size());
  record.forced = forced;
  if (forced) ++forced_writes_;
  switch (record.kind) {
    case CoordRecordKind::kDecision:
      decision_index_[record.gtid] = records_.size();
      break;
    case CoordRecordKind::kForget:
      forgotten_.insert(record.gtid);
      break;
    case CoordRecordKind::kEpoch:
      if (record.epoch > last_epoch_) last_epoch_ = record.epoch;
      break;
  }
  const int64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

int64_t CoordinatorLog::Append(CoordLogRecord record) {
  return AppendImpl(std::move(record), /*forced=*/false);
}

int64_t CoordinatorLog::ForceAppend(CoordLogRecord record) {
  return AppendImpl(std::move(record), /*forced=*/true);
}

std::vector<CoordLogRecord> CoordinatorLog::InFlightDecisions() const {
  std::vector<CoordLogRecord> out;
  for (const CoordLogRecord& record : records_) {
    if (record.kind == CoordRecordKind::kDecision &&
        forgotten_.count(record.gtid) == 0) {
      out.push_back(record);
    }
  }
  return out;
}

}  // namespace hermes::core
