// The Coordinator log (stable storage of one Coordinator).
//
// 2PC with presumed abort: the coordinator force-writes a COMMIT decision
// record *before* the first COMMIT message leaves the site, and appends a
// (buffered) forget record once every participant has acknowledged. Abort
// decisions are never logged — an inquiry about a transaction the log does
// not know is answered "presumed abort". After a crash the log is the only
// coordinator state that survives: Recover() re-drives decision delivery
// for every decision without a forget record, and bumps the submission
// epoch so post-recovery transaction ids can never collide with pre-crash
// ones.
//
// Like the AgentLog, "stable storage" is an in-memory structure in the
// simulation; the force-write flag models the log discipline so it is
// visible and testable (a test removing the force-write demonstrably loses
// decided transactions).

#ifndef HERMES_CORE_COORDINATOR_LOG_H_
#define HERMES_CORE_COORDINATOR_LOG_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"

namespace hermes::core {

enum class CoordRecordKind : uint8_t {
  kDecision,  // force-written before any COMMIT is sent
  kForget,    // appended after all commit ACKs arrived
  kEpoch,     // force-written during recovery: new submission epoch
};

struct CoordLogRecord {
  CoordRecordKind kind = CoordRecordKind::kDecision;
  TxnId gtid;                        // kDecision / kForget
  std::vector<SiteId> participants;  // kDecision: sites owed a COMMIT
  int64_t csn = -1;                  // kDecision: decision-time CSN, if any
  int64_t epoch = 0;                 // kEpoch
  int64_t lsn = 0;
  bool forced = false;
};

class CoordinatorLog {
 public:
  CoordinatorLog() = default;

  int64_t Append(CoordLogRecord record);       // buffered write
  int64_t ForceAppend(CoordLogRecord record);  // force-write (fsync'd)

  // True if a COMMIT decision record exists for `gtid`.
  bool HasDecision(const TxnId& gtid) const {
    return decision_index_.count(gtid) != 0;
  }
  // True if the transaction was fully acknowledged and forgotten.
  bool Forgotten(const TxnId& gtid) const {
    return forgotten_.count(gtid) != 0;
  }

  // CSN carried by the decision record of `gtid`, -1 if absent — lets
  // inquiry replies for logged decisions travel with their CSN.
  int64_t DecisionCsnOf(const TxnId& gtid) const {
    auto it = decision_index_.find(gtid);
    return it == decision_index_.end() ? -1 : records_[it->second].csn;
  }

  // Decisions without a forget record, in log order — the transactions a
  // recovering coordinator must re-drive to COMMIT.
  std::vector<CoordLogRecord> InFlightDecisions() const;

  // Largest epoch ever force-written (0 if none).
  int64_t LastEpoch() const { return last_epoch_; }

  const std::vector<CoordLogRecord>& records() const { return records_; }
  int64_t forced_writes() const { return forced_writes_; }
  size_t size() const { return records_.size(); }

 private:
  int64_t AppendImpl(CoordLogRecord record, bool forced);

  std::vector<CoordLogRecord> records_;
  std::unordered_map<TxnId, size_t> decision_index_;
  std::unordered_set<TxnId> forgotten_;
  int64_t last_epoch_ = 0;
  int64_t forced_writes_ = 0;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_COORDINATOR_LOG_H_
