// Top-level assembly of the heterogeneous multidatabase system: N sites,
// each with its own storage, LTM and 2PC Agent, a Coordinator at every site,
// a simulated network connecting them, one history recorder and shared
// metrics. This is the main public entry point of the library (see
// examples/quickstart.cc).

#ifndef HERMES_CORE_MDBS_H_
#define HERMES_CORE_MDBS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "consensus/paxos.h"
#include "core/agent.h"
#include "core/coordinator.h"
#include "core/metrics.h"
#include "db/storage.h"
#include "history/recorder.h"
#include "ltm/ltm.h"
#include "net/network.h"
#include "shard/reconfig.h"
#include "shard/shard_map.h"
#include "sim/event_loop.h"
#include "sim/site_clock.h"

namespace hermes::core {

struct MdbsConfig {
  int num_sites = 2;
  // Per-site templates; the site id field is filled in per site.
  ltm::LtmConfig ltm;
  AgentConfig agent;
  CoordinatorRetryConfig coordinator_retry;
  net::NetworkConfig network;
  // Commit-decision protocol: classic 2PC presumed abort (the paper's
  // machinery), or non-blocking Paxos Commit with 2*paxos_f+1 acceptor
  // state machines on sites 0..2*paxos_f (tolerating paxos_f acceptor
  // crashes; paxos_f = 0 degenerates to 2PC message flow with an external
  // registrar). When Paxos Commit is selected, agents whose
  // inquiry_escalate_after is 0 default to 2 so an unreachable coordinator
  // triggers leader election instead of unbounded probing.
  consensus::ProtocolKind protocol = consensus::ProtocolKind::k2PC;
  int paxos_f = 1;
  // Certification scheme (see docs/DESIGN-SPACE.md): the paper's serial
  // numbers, or decision-time commit sequence numbers from one shared
  // CsnSource. Short-commit enables the 1PC single-site and read-only
  // fast paths. Both are 2PC-only: under Paxos Commit they silently
  // downgrade to kSn / off (the acceptor round replaces the decision
  // machinery they hook into).
  cert::CertifierKind certifier = cert::CertifierKind::kSn;
  bool short_commit = false;
  // --- online reconfiguration (src/shard) --------------------------------
  // Number of shards partitioning the key space across sites; 0 keeps the
  // legacy unsharded mode (no directory, no epoch fencing, StartReconfig
  // rejected). When > 0 every agent and coordinator is wired to the shared
  // shard::Directory and stamps/fences protocol messages by epoch.
  int num_shards = 0;
  // Capacity ceiling on site ids: ProvisionSite hands out ids
  // num_sites..max_sites-1 for add/replace operations. 0 = num_sites (no
  // headroom). Also sets the ballot-number modulus under Paxos Commit so
  // provisioned sites elect with unique ballots.
  int max_sites = 0;
  // Drain/force tuning and protected sites for the reconfiguration
  // controller. Under Paxos Commit the acceptor sites 0..2f are always
  // appended to the protected set (the acceptor set is fixed for life).
  shard::ControllerConfig reconfig;
  // Optional per-site clock skew (section 5.2 experiments). Missing entries
  // default to zero.
  std::vector<sim::Duration> clock_offsets;
  std::vector<int64_t> clock_drift_ppm;
  bool record_history = true;
  // Optional structured tracer shared by every component (null = disabled).
  // Not owned; must outlive the Mdbs.
  trace::Tracer* tracer = nullptr;
};

// A transaction submitted directly at one LDBS's local interface,
// invisible to the DTM.
struct LocalTxnSpec {
  SiteId site = kInvalidSite;
  std::vector<db::Command> commands;
};

struct LocalTxnResult {
  TxnId id;
  Status status;
  std::vector<db::CmdResult> results;
};

using LocalTxnCallback = std::function<void(const LocalTxnResult&)>;

class Mdbs : private shard::HostOps {
 public:
  Mdbs(const MdbsConfig& config, sim::EventLoop* loop);
  ~Mdbs();

  Mdbs(const Mdbs&) = delete;
  Mdbs& operator=(const Mdbs&) = delete;

  // Sites ever built, including retired ones (site ids stay dense).
  int num_sites() const { return static_cast<int>(sites_.size()); }

  // --- schema & data setup -----------------------------------------------

  // Creates a table at one site (ids are per-site).
  Result<db::TableId> CreateTable(SiteId site, const std::string& name);
  // Creates the same-named table at every site; returns the common id
  // (tables are created in lockstep so ids align across sites).
  Result<db::TableId> CreateTableEverywhere(const std::string& name);
  Status LoadRow(SiteId site, db::TableId table, int64_t key, db::Row row);

  // --- transactions --------------------------------------------------------

  // Submits a global transaction through the Coordinator at
  // `coordinator_site` (defaults to the first step's site).
  TxnId Submit(GlobalTxnSpec spec, GlobalTxnCallback cb,
               SiteId coordinator_site = kInvalidSite);

  // Runs a local transaction directly against a site's LTM: commands are
  // executed in order, then committed. On any failure the transaction is
  // rolled back and the callback reports the error.
  TxnId SubmitLocal(LocalTxnSpec spec, LocalTxnCallback cb);

  // --- component access ----------------------------------------------------

  sim::EventLoop* loop() { return loop_; }
  db::Storage* storage(SiteId site) { return sites_[site]->storage.get(); }
  ltm::Ltm* ltm(SiteId site) { return sites_[site]->ltm.get(); }
  TwoPCAgent* agent(SiteId site) { return sites_[site]->agent.get(); }
  Coordinator* coordinator(SiteId site) {
    return sites_[site]->coordinator.get();
  }
  // Null unless the Paxos Commit protocol is selected.
  consensus::PaxosCommit* paxos(SiteId site) {
    return sites_[site]->consensus.get();
  }
  sim::SiteClock* clock(SiteId site) { return sites_[site]->clock.get(); }
  net::Network& network() { return *network_; }
  history::Recorder& recorder() { return *recorder_; }

  // Whole-system metrics: the per-site snapshots plus the scheduler extras
  // merged into one. Counters are integral, so the merged totals equal what
  // a single shared object would have accumulated.
  Metrics metrics() const;
  // Per-site breakdown, indexed by site id: each site's agent, coordinator
  // and local-transaction counters land in its own slot.
  const std::vector<Metrics>& site_metrics() const { return site_metrics_; }
  // Mutable slot for counters with no owning site (the CGM baseline's
  // centralized scheduler); included in the metrics() merge.
  Metrics& scheduler_metrics() { return scheduler_metrics_; }

  // Simulates a crash of one site — BOTH co-located roles fail: the
  // coordinator loses every in-flight global transaction (only its decision
  // log survives), every transaction inside the LTM is collectively
  // (unilaterally) aborted, and all volatile agent state and DLU bindings
  // are lost. Committed data — the database itself — survives. While the
  // site is down its network endpoint is unregistered, so messages to it
  // (including in-flight ones) vanish; prepared remote agents block and
  // probe with inquiries until recovery.
  //
  // `downtime` selects the recovery mode:
  //   0  (default) — recover immediately (legacy crash-and-recover in one
  //                  step; the outage is only the in-flight message loss);
  //   >0           — stay down for `downtime` of virtual time, then recover
  //                  (the measurable blocking window);
  //   <0           — stay down until an explicit RecoverSite().
  // Crashing a site that is already down is a deterministic no-op (Ok);
  // an out-of-range id or a site retired by reconfiguration is
  // kInvalidArgument and nothing happens.
  Status CrashSite(SiteId site, sim::Duration downtime = 0);

  // Recovers a crashed site now: re-registers the endpoint, then replays
  // the agent log (resubmission + inquiries for in-doubt subtransactions)
  // and the coordinator log (epoch bump + COMMIT re-delivery). No-op (Ok)
  // if the site is up; kInvalidArgument for unknown or retired sites.
  Status RecoverSite(SiteId site);

  bool SiteUp(SiteId site) const { return sites_[site]->up; }
  // True once the site was retired by a remove/replace reconfiguration.
  bool SiteRemoved(SiteId site) const { return sites_[site]->removed; }

  // --- online reconfiguration ---------------------------------------------

  // Null unless config.num_shards > 0.
  shard::Directory* directory() { return directory_.get(); }
  const shard::Directory* directory() const { return directory_.get(); }

  // Begins an add/remove/replace of a site (see shard/reconfig.h). Fails
  // with kInvalidArgument when sharding is disabled, the target is unknown,
  // retired, down or protected, or capacity is exhausted; kRejected while
  // another reconfiguration is still running.
  Status StartReconfig(const shard::ReconfigOp& op,
                       std::function<void(Status)> done = {});
  bool reconfiguring() const {
    return controller_ != nullptr && controller_->busy();
  }

  // Applies hooks to every coordinator (CGM interposition).
  void SetCoordinatorHooks(const CoordinatorHooks& hooks);
  // Applies the sn-at-submit ablation to every coordinator.
  void SetSnAtSubmit(bool v);

 private:
  struct Site {
    std::unique_ptr<sim::SiteClock> clock;
    std::unique_ptr<db::Storage> storage;
    std::unique_ptr<ltm::Ltm> ltm;
    std::unique_ptr<TwoPCAgent> agent;
    std::unique_ptr<Coordinator> coordinator;
    // Paxos Commit module (leader + resolver + this site's acceptor state
    // machine); null under plain 2PC.
    std::unique_ptr<consensus::PaxosCommit> consensus;
    bool up = true;
    // Retired by reconfiguration: the endpoint stays registered so late
    // PREPARE/decision traffic can be forwarded to the adopting site, but
    // everything else addressed here is dropped.
    bool removed = false;
  };

  struct LocalRun;  // driver of one SubmitLocal execution

  void RouteMessage(SiteId site, const net::Envelope& env);
  void RecoverSiteNow(SiteId site);
  // Constructs site `s` (clock/storage/LTM/agent/coordinator/consensus) and
  // registers its endpoint. `s` must equal sites_.size().
  void BuildSite(SiteId s);

  // shard::HostOps for the reconfiguration controller.
  SiteId ProvisionSite() override;
  bool SiteUsable(SiteId site) override;
  bool QuiescentForShards(SiteId site, const std::vector<int>& shards,
                          bool and_coordinator) override;
  bool CanForceTransfer(SiteId site, const std::vector<int>& shards,
                        bool and_coordinator) override;
  int64_t TransferShards(SiteId from, SiteId to,
                         const std::vector<int>& shards) override;
  void DeactivateSite(SiteId site) override;
  void Schedule(sim::Time delay, std::function<void()> fn) override;

  MdbsConfig config_;
  sim::EventLoop* loop_;
  // The federation-wide decision-time CSN authority (the GTM role); used
  // only when config_.certifier == kCsn under 2PC.
  cert::CsnSource csn_source_;
  std::unique_ptr<history::Recorder> recorder_;
  std::unique_ptr<net::Network> network_;
  // Sized once in the constructor, before the sites take pointers into it;
  // never resized afterwards.
  std::vector<Metrics> site_metrics_;
  Metrics scheduler_metrics_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::vector<int64_t> next_local_seq_;
  // Tables created via CreateTableEverywhere, replayed onto provisioned
  // sites so table ids stay aligned across the federation.
  std::vector<std::string> table_names_;
  // Sharded mode only (config.num_shards > 0); otherwise both null.
  std::unique_ptr<shard::Directory> directory_;
  std::unique_ptr<shard::Controller> controller_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_MDBS_H_
