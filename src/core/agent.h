// The 2PC Agent (2PCA) with the prepare/commit Certifier — the paper's
// core contribution.
//
// One agent is associated with each LTM. It plays the Participant role of
// the 2PC protocol on behalf of an LDBS that has no prepared state of its
// own: the prepared state is maintained *inside the agent*. If the LDBS
// unilaterally aborts a prepared subtransaction, the agent resubmits the
// subtransaction's DML commands from its Agent log, creating a new local
// subtransaction that globally still belongs to the same transaction.
//
// The Certifier guards the serializability errors this can introduce:
//  * basic prepare certification (section 4.2): a subtransaction moves to
//    the prepared state only if its alive interval intersects the alive
//    interval of every subtransaction already prepared at this site —
//    under rigorous LTMs, simultaneous aliveness proves conflict-freeness;
//  * extended prepare certification (section 5.3): REFUSE any PREPARE whose
//    serial number is smaller than the largest serial number already
//    committed at this agent (a COMMIT overtook a PREPARE);
//  * commit certification (section 5.2, Appendix C): perform local commits
//    in serial-number order — retry later while any prepared subtransaction
//    at this site has a smaller SN — keeping the commit order graph
//    acyclic.
//
// The certification policy is configurable so the benchmarks can ablate
// each mechanism and demonstrate the distortions it prevents.

#ifndef HERMES_CORE_AGENT_H_
#define HERMES_CORE_AGENT_H_

#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "cert/certifier.h"
#include "common/ids.h"
#include "core/agent_log.h"
#include "core/alive_intervals.h"
#include "core/cert_policy.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "ltm/ltm.h"
#include "net/network.h"
#include "shard/shard_map.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::core {

struct AgentConfig {
  SiteId site = 0;
  CertPolicy policy = CertPolicy::kFull;
  // Ordering scheme behind the cert::Certifier seam: the paper's
  // submit-time serial numbers or the decision-time CSN log.
  cert::CertifierKind certifier = cert::CertifierKind::kSn;
  // Short-commit fast paths: accept OnePhaseCommitMsg (single-site 1PC)
  // and commit write-free subtransactions at prepare time (read-only
  // optimization). Mirrors the coordinator's short_commit knob.
  bool short_commit = false;
  // Period of the alive check while in the prepared state (Appendix A).
  sim::Duration alive_check_interval = 25 * sim::kMillisecond;
  // Commit certification retry timeout (Appendix C).
  sim::Duration commit_retry_interval = 5 * sim::kMillisecond;
  // Backoff before restarting a failed resubmission attempt.
  sim::Duration resubmit_retry_interval = 5 * sim::kMillisecond;
  // TW assumption bound; exceeding it only counts a metric (the agent keeps
  // trying — a prepared transaction must eventually commit).
  int max_resubmission_attempts = 64;
  // DLU: bind accessed items while prepared. Disable only for negative
  // experiments.
  bool bind_bound_data = true;
  // Decision-wait inquiry: a prepared subtransaction that has not heard a
  // decision within this timeout starts probing its coordinator with
  // InquiryMsg — the measurable 2PC blocking window (0 disables).
  sim::Duration decision_inquiry_timeout = 500 * sim::kMillisecond;
  // Inquiry retransmission backoff: first retry delay, doubled per attempt
  // up to the cap. Duplicate inquiries and lost replies are tolerated — the
  // coordinator's answer is idempotent.
  sim::Duration inquiry_retry_initial = 20 * sim::kMillisecond;
  sim::Duration inquiry_retry_max = 320 * sim::kMillisecond;
  // Orphan detection: an *active* (not yet prepared) subtransaction that
  // hears nothing from its coordinator for this long is unilaterally
  // aborted, releasing its locks (0 disables). Always safe before the READY
  // vote; the chaos sweeps enable it so a crashed coordinator does not
  // leave orphaned lock holders behind for the rest of the run.
  sim::Duration orphan_abort_timeout = 0;
  // Paxos Commit: after this many unanswered inquiries the agent presumes
  // the coordinator dead and escalates to leader election (the consensus
  // module's resolution round). 0 disables; Mdbs defaults it to 2 when the
  // Paxos Commit protocol is selected.
  int inquiry_escalate_after = 0;
};

// Prepared-transaction residue of a shard handoff: everything the adopting
// agent needs to re-enter the subtransaction as prepared and resubmit its
// commands at the destination (mirroring same-site crash recovery).
struct MigratedTxn {
  TxnId gtid;
  SiteId coordinator = kInvalidSite;
  // The site the residue left; votes/acks from the adopter carry it as
  // `on_behalf_of` so the coordinator's per-participant bookkeeping clears.
  SiteId origin = kInvalidSite;
  int resubmission = 0;
  SerialNumber sn;
  bool commit_pending = false;
  int64_t csn = -1;
  std::vector<db::Command> commands;  // the resubmission source
};

class TwoPCAgent {
 public:
  // Test/experiment hook invoked when a subtransaction enters the prepared
  // state: (gtid, current LTM handle). Failure injectors use it to abort
  // prepared subtransactions.
  using PreparedHook = std::function<void(const TxnId&, LtmTxnHandle)>;
  // Paxos Commit hooks, installed by Mdbs: every READY/REFUSE vote the
  // agent sends to its coordinator is also handed here (for the ballot-0
  // broadcast to the acceptors), and an exhausted inquiry backoff escalates
  // to leader election.
  using VoteHook = std::function<void(const TxnId&, bool ready,
                                      SiteId coordinator)>;
  using EscalateHook = std::function<void(const TxnId&, SiteId coordinator,
                                          int attempt)>;

  // `tracer` may be null (tracing disabled).
  TwoPCAgent(const AgentConfig& config, sim::EventLoop* loop,
             net::Network* network, ltm::Ltm* ltm, Metrics* metrics,
             trace::Tracer* tracer = nullptr);
  ~TwoPCAgent();

  TwoPCAgent(const TwoPCAgent&) = delete;
  TwoPCAgent& operator=(const TwoPCAgent&) = delete;

  // Agent-bound protocol messages (BEGIN, DML, PREPARE, COMMIT/ROLLBACK).
  void Handle(SiteId from, const Message& msg);

  // Epoch fencing: with a directory installed, every coordinator-bound
  // message whose epoch is below the directory's current epoch is refused
  // with EpochRefusedMsg instead of being processed (null = fencing off).
  void set_directory(const shard::Directory* directory) {
    directory_ = directory;
  }

  // --- shard handoff ------------------------------------------------------
  // True when any in-flight (active or prepared) subtransaction has a
  // logged command touching one of `shards` under `map`.
  bool InFlightOnShards(const shard::ShardMap& map,
                        const std::vector<int>& shards) const;
  // True when a forced handoff of `shards` is safe: every in-flight
  // prepared subtransaction touching them has *all* its logged commands
  // inside the moving set (actives are always force-abortable).
  bool CanMigrateResidue(const shard::ShardMap& map,
                         const std::vector<int>& shards) const;
  // Forced handoff: unilaterally aborts in-flight *active* subtransactions
  // touching `shards` and extracts every *prepared* one as residue —
  // undoing its local work (LDBS autonomy), recording kMigrateOut, and
  // redirecting all later messages for it to `dest`.
  std::vector<MigratedTxn> ExtractResidueForShards(
      const shard::ShardMap& map, const std::vector<int>& shards, SiteId dest);
  // Destination half: re-enters the residue as a prepared subtransaction
  // of this agent (log replayed, certifier re-admitted, commands
  // resubmitted; finished via the carried decision or an inquiry).
  void AdoptMigrated(const MigratedTxn& migrated);

  // Replaces every installed hook (tests owning the only hook); the add_
  // form appends, letting failure injectors and fault-plan triggers
  // compose on the same agent.
  void set_prepared_hook(PreparedHook hook) {
    prepared_hooks_.clear();
    if (hook) prepared_hooks_.push_back(std::move(hook));
  }
  void add_prepared_hook(PreparedHook hook) {
    if (hook) prepared_hooks_.push_back(std::move(hook));
  }
  void set_vote_hook(VoteHook hook) { vote_hook_ = std::move(hook); }
  void set_escalate_hook(EscalateHook hook) {
    escalate_hook_ = std::move(hook);
  }

  const AgentLog& log() const { return log_; }
  const AliveIntervalTable& alive_table() const { return certifier_->table(); }
  SerialNumber max_committed_sn() const {
    return certifier_->committed_high_water();
  }
  const cert::Certifier& certifier() const { return *certifier_; }
  SiteId site() const { return config_.site; }

  // Current LTM handle of a global transaction's subtransaction (tests).
  LtmTxnHandle HandleOf(const TxnId& gtid) const;
  int ResubmissionsOf(const TxnId& gtid) const;

  // --- site crash recovery ------------------------------------------------
  // Crash() discards all volatile state (transactions, alive intervals,
  // certification high-water mark); only the Agent log — stable storage —
  // survives. Recover() rebuilds from the log: in-doubt subtransactions are
  // re-entered into the prepared state, resubmitted, and completed via the
  // logged commit record or a coordinator inquiry (presumed abort when the
  // coordinator no longer knows the transaction). Called by
  // Mdbs::CrashSite(), which also collectively aborts everything inside the
  // LTM first.
  void Crash();
  void Recover();

 private:
  enum class Phase : uint8_t {
    kActive,
    kPrepared,
    kCommitted,
    kAborted,
  };

  struct AgentTxn {
    TxnId gtid;
    SiteId coordinator = kInvalidSite;
    Phase phase = Phase::kActive;
    LtmTxnHandle ltm_handle = kInvalidLtmTxn;
    int resubmission = 0;
    // Aliveness of the *current* local subtransaction, maintained from UAN.
    bool alive = true;
    bool resubmitting = false;
    int resubmit_attempts = 0;
    size_t resubmit_next_cmd = 0;
    // Completion time of the last DML command of the current local
    // subtransaction: the start of its certification alive interval.
    sim::Time last_completion = 0;
    // Duplicate-safe DML handling: highest command index already executed,
    // the index currently executing (-1 = none), and the cached response of
    // the last completed command for re-acking retransmitted requests.
    int32_t dml_done_index = -1;
    int32_t dml_inflight_index = -1;
    Status dml_last_status;
    db::CmdResult dml_last_result;
    SerialNumber sn;
    // Decision-time commit sequence number (CSN certifier; -1 under SN).
    int64_t csn = -1;
    // Short-commit read-only participant: committed locally at prepare
    // time, excluded from the decision round.
    bool read_only = false;
    // Adopted residue of a shard handoff: the original participant site,
    // carried as on_behalf_of on votes/acks (kInvalidSite = native).
    SiteId acting_for = kInvalidSite;
    bool commit_pending = false;  // COMMIT received but not yet performed
    int inquiry_attempts = 0;     // drives the capped inquiry backoff
    sim::EventId alive_timer = sim::kInvalidEvent;
    sim::EventId commit_retry_timer = sim::kInvalidEvent;
    sim::EventId resubmit_retry_timer = sim::kInvalidEvent;
    sim::EventId inquiry_timer = sim::kInvalidEvent;
    sim::EventId orphan_timer = sim::kInvalidEvent;
    std::set<ItemId> bound_items;
  };

  void OnBegin(SiteId from, const BeginMsg& msg);
  void OnDmlRequest(SiteId from, const DmlRequestMsg& msg);
  void OnPrepare(SiteId from, const PrepareMsg& msg);
  void OnDecision(SiteId from, const DecisionMsg& msg);
  void OnOnePhaseCommit(SiteId from, const OnePhaseCommitMsg& msg);

  void SendVote(const TxnId& gtid, SiteId coordinator, bool ready,
                Status status, bool read_only = false,
                SiteId on_behalf_of = kInvalidSite);
  void RefuseEpoch(SiteId from, const TxnId& gtid, const char* what,
                   SiteId moved_to);
  bool TxnTouchesShards(const TxnId& gtid, const shard::ShardMap& map,
                        const std::vector<int>& shards) const;
  bool TxnInsideShards(const TxnId& gtid, const shard::ShardMap& map,
                       const std::vector<int>& shards) const;
  void Refuse(AgentTxn& txn, const Status& reason);
  void TryCommit(AgentTxn& txn);
  void CompleteCommit(AgentTxn& txn);
  void ProcessRollback(AgentTxn& txn);
  void ScheduleAliveCheck(AgentTxn& txn);
  void OnAliveCheck(const TxnId& gtid);
  void StartResubmission(AgentTxn& txn);
  void RunNextResubmitCommand(const TxnId& gtid);
  void OnResubmissionComplete(AgentTxn& txn);
  void BindAccessedItems(AgentTxn& txn);
  void UnbindAll(AgentTxn& txn);
  void SendInquiry(const TxnId& gtid);
  void ArmInquiryTimer(AgentTxn& txn, sim::Duration delay);
  void ArmOrphanTimer(AgentTxn& txn);
  void OnOrphanTimeout(const TxnId& gtid);
  void CancelTimers(AgentTxn& txn);
  void OnUnilateralAbort(const SubTxnId& id, LtmTxnHandle handle);

  AgentTxn* FindTxn(const TxnId& gtid);

  AgentConfig config_;
  sim::EventLoop* loop_;
  net::Network* network_;
  ltm::Ltm* ltm_;
  Metrics* metrics_;
  trace::Tracer* tracer_;
  const shard::Directory* directory_ = nullptr;

  AgentLog log_;
  // The certification seam: prepared-set membership, prepare/commit
  // certification and the scheme's ordering state (SN high-water mark or
  // the CSN log) all live behind this interface.
  std::unique_ptr<cert::Certifier> certifier_;

  // Hashed: FindTxn is on the hot path of every protocol message. Iteration
  // only happens in Crash/Recover paths where order is immaterial.
  std::unordered_map<TxnId, AgentTxn> txns_;
  // Subtransactions whose residue left in a shard handoff: any later
  // message for them is answered with EpochRefusedMsg naming the adopter.
  std::unordered_map<TxnId, SiteId> migrated_to_;
  std::vector<PreparedHook> prepared_hooks_;
  VoteHook vote_hook_;
  EscalateHook escalate_hook_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_AGENT_H_
