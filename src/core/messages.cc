#include "core/messages.h"

#include "common/str.h"

namespace hermes::core {

std::string MessageToString(const Message& msg) {
  if (const auto* m = std::get_if<BeginMsg>(&msg)) {
    return StrCat("BEGIN ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<DmlRequestMsg>(&msg)) {
    return StrCat("DML ", m->gtid.ToString(), "[", m->cmd_index, "] ",
                  db::CommandToString(m->cmd));
  }
  if (const auto* m = std::get_if<DmlResponseMsg>(&msg)) {
    return StrCat("DML-RESP ", m->gtid.ToString(), "[", m->cmd_index, "] ",
                  m->status.ToString());
  }
  if (const auto* m = std::get_if<PrepareMsg>(&msg)) {
    return StrCat("PREPARE ", m->gtid.ToString(), " ", m->sn.ToString());
  }
  if (const auto* m = std::get_if<VoteMsg>(&msg)) {
    return StrCat(m->ready ? "READY " : "REFUSE ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<DecisionMsg>(&msg)) {
    std::string out =
        StrCat(m->commit ? "COMMIT " : "ROLLBACK ", m->gtid.ToString());
    if (m->csn >= 0) StrAppend(out, " csn=", m->csn);
    return out;
  }
  if (const auto* m = std::get_if<OnePhaseCommitMsg>(&msg)) {
    return StrCat("1PC-COMMIT ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<AckMsg>(&msg)) {
    return StrCat(m->commit ? "COMMIT-ACK " : "ROLLBACK-ACK ",
                  m->gtid.ToString());
  }
  if (const auto* m = std::get_if<InquiryMsg>(&msg)) {
    return StrCat("INQUIRY ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<EpochRefusedMsg>(&msg)) {
    std::string out = StrCat("EPOCH-REFUSED ", m->gtid.ToString(),
                             " epoch=", m->current_epoch);
    if (m->moved_to != kInvalidSite) StrAppend(out, " moved_to=", m->moved_to);
    return out;
  }
  if (const auto* m = std::get_if<PaxosBeginMsg>(&msg)) {
    return StrCat("PAXOS-BEGIN ", m->gtid.ToString(), " n=",
                  m->participants.size());
  }
  if (const auto* m = std::get_if<PaxosBeginAckMsg>(&msg)) {
    return StrCat("PAXOS-BEGIN-ACK ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<PaxosVoteMsg>(&msg)) {
    return StrCat(m->ready ? "PAXOS-READY " : "PAXOS-REFUSE ",
                  m->gtid.ToString(), " rm=", m->participant);
  }
  if (const auto* m = std::get_if<PaxosVotedMsg>(&msg)) {
    return StrCat("PAXOS-VOTED ", m->gtid.ToString(), " rm=", m->participant,
                  m->ready ? " ready" : " refuse");
  }
  if (const auto* m = std::get_if<PaxosPrepareMsg>(&msg)) {
    return StrCat("PAXOS-PREPARE ", m->gtid.ToString(), " b=", m->ballot);
  }
  if (const auto* m = std::get_if<PaxosPromiseMsg>(&msg)) {
    return StrCat("PAXOS-PROMISE ", m->gtid.ToString(), " b=", m->ballot);
  }
  if (const auto* m = std::get_if<PaxosProposeMsg>(&msg)) {
    return StrCat("PAXOS-PROPOSE ", m->gtid.ToString(), " b=", m->ballot,
                  m->membership.empty() ? " abort" : " commit?");
  }
  const auto& a = std::get<PaxosAcceptedMsg>(msg);
  return StrCat("PAXOS-ACCEPTED ", a.gtid.ToString(), " b=", a.ballot);
}

bool IsPaxosMessage(const Message& msg) {
  return std::holds_alternative<PaxosBeginMsg>(msg) ||
         std::holds_alternative<PaxosBeginAckMsg>(msg) ||
         std::holds_alternative<PaxosVoteMsg>(msg) ||
         std::holds_alternative<PaxosVotedMsg>(msg) ||
         std::holds_alternative<PaxosPrepareMsg>(msg) ||
         std::holds_alternative<PaxosPromiseMsg>(msg) ||
         std::holds_alternative<PaxosProposeMsg>(msg) ||
         std::holds_alternative<PaxosAcceptedMsg>(msg);
}

}  // namespace hermes::core
