#include "core/messages.h"

#include "common/str.h"

namespace hermes::core {

std::string MessageToString(const Message& msg) {
  if (const auto* m = std::get_if<BeginMsg>(&msg)) {
    return StrCat("BEGIN ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<DmlRequestMsg>(&msg)) {
    return StrCat("DML ", m->gtid.ToString(), "[", m->cmd_index, "] ",
                  db::CommandToString(m->cmd));
  }
  if (const auto* m = std::get_if<DmlResponseMsg>(&msg)) {
    return StrCat("DML-RESP ", m->gtid.ToString(), "[", m->cmd_index, "] ",
                  m->status.ToString());
  }
  if (const auto* m = std::get_if<PrepareMsg>(&msg)) {
    return StrCat("PREPARE ", m->gtid.ToString(), " ", m->sn.ToString());
  }
  if (const auto* m = std::get_if<VoteMsg>(&msg)) {
    return StrCat(m->ready ? "READY " : "REFUSE ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<DecisionMsg>(&msg)) {
    return StrCat(m->commit ? "COMMIT " : "ROLLBACK ", m->gtid.ToString());
  }
  if (const auto* m = std::get_if<AckMsg>(&msg)) {
    return StrCat(m->commit ? "COMMIT-ACK " : "ROLLBACK-ACK ",
                  m->gtid.ToString());
  }
  const auto& q = std::get<InquiryMsg>(msg);
  return StrCat("INQUIRY ", q.gtid.ToString());
}

}  // namespace hermes::core
