#include "core/agent.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "common/str.h"

namespace hermes::core {

namespace {

bool ShardInSet(int shard, const std::vector<int>& shards) {
  return std::find(shards.begin(), shards.end(), shard) != shards.end();
}

}  // namespace

const char* CertPolicyName(CertPolicy policy) {
  switch (policy) {
    case CertPolicy::kNone:
      return "none";
    case CertPolicy::kPrepareOnly:
      return "prepare-only";
    case CertPolicy::kPrepareExtended:
      return "prepare-extended";
    case CertPolicy::kFull:
      return "full";
  }
  return "?";
}

TwoPCAgent::TwoPCAgent(const AgentConfig& config, sim::EventLoop* loop,
                       net::Network* network, ltm::Ltm* ltm, Metrics* metrics,
                       trace::Tracer* tracer)
    : config_(config),
      loop_(loop),
      network_(network),
      ltm_(ltm),
      metrics_(metrics),
      tracer_(tracer),
      certifier_(cert::MakeCertifier(config.certifier, config.policy)) {
  ltm_->SetUanListener(
      [this](const SubTxnId& id, LtmTxnHandle handle) {
        OnUnilateralAbort(id, handle);
      });
}

TwoPCAgent::~TwoPCAgent() {
  for (auto& [gtid, txn] : txns_) CancelTimers(txn);
}

TwoPCAgent::AgentTxn* TwoPCAgent::FindTxn(const TxnId& gtid) {
  auto it = txns_.find(gtid);
  return it == txns_.end() ? nullptr : &it->second;
}

LtmTxnHandle TwoPCAgent::HandleOf(const TxnId& gtid) const {
  auto it = txns_.find(gtid);
  return it == txns_.end() ? kInvalidLtmTxn : it->second.ltm_handle;
}

int TwoPCAgent::ResubmissionsOf(const TxnId& gtid) const {
  auto it = txns_.find(gtid);
  return it == txns_.end() ? 0 : it->second.resubmission;
}

void TwoPCAgent::Handle(SiteId from, const Message& msg) {
  // Epoch fencing and migrated-residue redirection. Every coordinator-bound
  // kind carries the sender's shard-map epoch view: a sender below this
  // agent's epoch is refused (it must re-fetch the map and re-drive), and
  // any message for a subtransaction whose residue left in a shard handoff
  // is answered with the adopting site instead of being processed here.
  // Epoch 0 marks an unfenced sender (sharding disabled) and always passes.
  const TxnId* gtid = nullptr;
  int64_t epoch = 0;
  const char* what = nullptr;
  if (const auto* m = std::get_if<BeginMsg>(&msg)) {
    gtid = &m->gtid, epoch = m->epoch, what = "begin";
  } else if (const auto* m = std::get_if<DmlRequestMsg>(&msg)) {
    gtid = &m->gtid, epoch = m->epoch, what = "dml";
  } else if (const auto* m = std::get_if<PrepareMsg>(&msg)) {
    gtid = &m->gtid, epoch = m->epoch, what = "prepare";
  } else if (const auto* m = std::get_if<DecisionMsg>(&msg)) {
    gtid = &m->gtid, epoch = m->epoch, what = "decision";
  } else if (const auto* m = std::get_if<OnePhaseCommitMsg>(&msg)) {
    gtid = &m->gtid, epoch = m->epoch, what = "1pc";
  }
  if (gtid != nullptr) {
    const auto moved = migrated_to_.find(*gtid);
    if (moved != migrated_to_.end()) {
      RefuseEpoch(from, *gtid, what, moved->second);
      return;
    }
    if (directory_ != nullptr && epoch > 0 && epoch < directory_->epoch()) {
      RefuseEpoch(from, *gtid, what, kInvalidSite);
      return;
    }
  }
  if (const auto* m = std::get_if<BeginMsg>(&msg)) {
    OnBegin(from, *m);
  } else if (const auto* m = std::get_if<DmlRequestMsg>(&msg)) {
    OnDmlRequest(from, *m);
  } else if (const auto* m = std::get_if<PrepareMsg>(&msg)) {
    OnPrepare(from, *m);
  } else if (const auto* m = std::get_if<DecisionMsg>(&msg)) {
    OnDecision(from, *m);
  } else if (const auto* m = std::get_if<OnePhaseCommitMsg>(&msg)) {
    OnOnePhaseCommit(from, *m);
  }
}

void TwoPCAgent::RefuseEpoch(SiteId from, const TxnId& gtid, const char* what,
                             SiteId moved_to) {
  const int64_t current = directory_ != nullptr ? directory_->epoch() : 0;
  ++metrics_->epoch_refusals;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kEpochRefused;
    e.txn = gtid;
    e.site = config_.site;
    e.peer = from;
    e.value = current;
    e.ok = false;
    e.detail = what;
    tracer_->Record(std::move(e));
  }
  network_->Send(config_.site, from,
                 Message{EpochRefusedMsg{gtid, current, moved_to}});
}

// --- active state ----------------------------------------------------------

void TwoPCAgent::OnBegin(SiteId from, const BeginMsg& msg) {
  if (FindTxn(msg.gtid) != nullptr) {
    // Duplicate or retransmitted BEGIN: the subtransaction already exists,
    // nothing to (re)open and nothing to acknowledge.
    ++metrics_->dup_msgs_absorbed;
    return;
  }
  if (log_.Knows(msg.gtid)) {
    // The log knows this transaction but the volatile state does not: a
    // crash wiped it (and recovery did not consider it in-doubt, so its
    // pre-crash work was rolled back). Re-opening it now would silently
    // drop the commands executed before the crash, so refuse all further
    // work: the coordinator's DML requests get "no active subtransaction"
    // and the global transaction rolls back.
    AgentTxn& txn = txns_[msg.gtid];
    txn.gtid = msg.gtid;
    txn.coordinator = from;
    txn.phase = Phase::kAborted;
    return;
  }
  AgentTxn& txn = txns_[msg.gtid];
  txn.gtid = msg.gtid;
  txn.coordinator = from;
  txn.ltm_handle = ltm_->Begin(SubTxnId{msg.gtid, 0});
  txn.last_completion = loop_->Now();
  log_.Append(LogRecord{.kind = LogRecordKind::kBegin,
                        .gtid = msg.gtid,
                        .peer = from});
  ArmOrphanTimer(txn);
}

void TwoPCAgent::OnDmlRequest(SiteId from, const DmlRequestMsg& msg) {
  AgentTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) {
    // The BEGIN was lost (or this is a stray duplicate for a transaction
    // wiped by a crash): stay silent; the coordinator times out and
    // retransmits BEGIN + DML, or rolls back after enough attempts.
    return;
  }
  ArmOrphanTimer(*txn);
  if (msg.cmd_index == txn->dml_inflight_index) {
    // Retransmission of the command currently executing (e.g. a slow lock
    // wait outlasted the coordinator's timeout): the in-flight execution
    // will answer.
    ++metrics_->dup_msgs_absorbed;
    return;
  }
  if (msg.cmd_index <= txn->dml_done_index) {
    // Already executed: re-send the cached response instead of running the
    // command a second time (exactly-once execution, at-least-once reply).
    ++metrics_->dup_msgs_absorbed;
    if (msg.cmd_index == txn->dml_done_index) {
      network_->Send(config_.site, from,
                     Message{DmlResponseMsg{msg.gtid, msg.cmd_index,
                                            txn->dml_last_status,
                                            txn->dml_last_result}});
    }
    return;
  }
  if (txn->phase != Phase::kActive) {
    network_->Send(config_.site, from,
                   Message{DmlResponseMsg{
                       msg.gtid, msg.cmd_index,
                       Status::Aborted("no active subtransaction"),
                       db::CmdResult{}}});
    return;
  }
  if (directory_ != nullptr) {
    // Post-handoff guard: a command whose key's shard now belongs to another
    // (unwedged) owner must not execute here — the handoff already copied
    // the rows away, so a write would be invisible at the new owner. The
    // coordinator rolls the global transaction back and the workload
    // re-plans against the fresh map. (Wedged shards still execute: the
    // drain lets pre-fence transactions finish at the old owner.)
    const std::optional<int64_t> key = db::CommandExactKey(msg.cmd);
    if (key.has_value()) {
      const shard::ShardMap& map = directory_->Current();
      const shard::ShardEntry& entry = map.shards[map.ShardOf(*key)];
      if (entry.owner != config_.site && !entry.wedged) {
        network_->Send(
            config_.site, from,
            Message{DmlResponseMsg{
                msg.gtid, msg.cmd_index,
                Status::Aborted("key's shard moved to another site"),
                db::CmdResult{}}});
        return;
      }
    }
  }
  // Log the command first: it is the resubmission source.
  log_.Append(LogRecord{.kind = LogRecordKind::kCommand,
                        .gtid = msg.gtid,
                        .command = msg.cmd});
  if (!txn->alive) {
    // Unilaterally aborted while still active: fail the command; the
    // coordinator will roll the global transaction back. (Resubmission is
    // reserved for the prepared state.)
    network_->Send(config_.site, from,
                   Message{DmlResponseMsg{
                       msg.gtid, msg.cmd_index,
                       Status::Aborted("subtransaction unilaterally aborted"),
                       db::CmdResult{}}});
    return;
  }
  const TxnId gtid = msg.gtid;
  const int32_t index = msg.cmd_index;
  txn->dml_inflight_index = index;
  ltm_->Execute(txn->ltm_handle, msg.cmd,
                [this, gtid, index, from](const Status& status,
                                          const db::CmdResult& result) {
                  AgentTxn* t = FindTxn(gtid);
                  if (t != nullptr) {
                    if (status.ok()) t->last_completion = loop_->Now();
                    if (t->dml_inflight_index == index) {
                      t->dml_inflight_index = -1;
                      t->dml_done_index = index;
                      t->dml_last_status = status;
                      t->dml_last_result = result;
                    }
                  }
                  network_->Send(config_.site, from,
                                 Message{DmlResponseMsg{gtid, index, status,
                                                        result}});
                });
}

// --- prepare certification (Appendix B) -------------------------------------

// Every vote travels to the coordinator and — under Paxos Commit — is also
// handed to the vote hook, which broadcasts it to the acceptors as the
// participant's ballot-0 proposal for its own Paxos instance.
void TwoPCAgent::SendVote(const TxnId& gtid, SiteId coordinator, bool ready,
                          Status status, bool read_only,
                          SiteId on_behalf_of) {
  network_->Send(config_.site, coordinator,
                 Message{VoteMsg{gtid, ready, std::move(status), read_only,
                                 on_behalf_of}});
  // Adopted residue never re-enters the Paxos vote hook: the original
  // participant's ballot-0 vote already reached the acceptors at the source
  // site, and a proposal under this site's id would target the wrong
  // instance of the transaction's membership.
  if (vote_hook_ && on_behalf_of == kInvalidSite) {
    vote_hook_(gtid, ready, coordinator);
  }
}

void TwoPCAgent::Refuse(AgentTxn& txn, const Status& reason) {
  if (ltm_->IsActive(txn.ltm_handle)) ltm_->Abort(txn.ltm_handle);
  certifier_->OnRemoved(txn.gtid);
  txn.phase = Phase::kAborted;
  SendVote(txn.gtid, txn.coordinator, /*ready=*/false, reason,
           /*read_only=*/false, txn.acting_for);
}

void TwoPCAgent::OnPrepare(SiteId from, const PrepareMsg& msg) {
  ++metrics_->prepares_received;
  AgentTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) {
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCertRefuse;
      e.txn = msg.gtid;
      e.site = config_.site;
      e.sn = msg.sn;
      e.refuse = trace::RefuseKind::kUnknownTxn;
      e.ok = false;
      tracer_->Record(std::move(e));
    }
    SendVote(msg.gtid, from, /*ready=*/false,
             Status::NotFound("unknown transaction"));
    return;
  }
  if (txn->phase == Phase::kPrepared || txn->phase == Phase::kCommitted) {
    // Retransmitted PREPARE (the READY vote was lost): re-vote without
    // re-running certification — the prepare record is already forced and
    // the alive interval already registered. A short-commit read-only
    // participant re-votes with its flag so the coordinator keeps excluding
    // it from the decision round.
    ++metrics_->dup_msgs_absorbed;
    SendVote(msg.gtid, from, /*ready=*/true, Status::Ok(), txn->read_only,
             txn->acting_for);
    return;
  }
  if (txn->phase == Phase::kAborted) {
    // Retransmitted PREPARE after a refusal (the REFUSE vote was lost).
    ++metrics_->dup_msgs_absorbed;
    SendVote(msg.gtid, from, /*ready=*/false,
             Status::Aborted("previously refused"), /*read_only=*/false,
             txn->acting_for);
    return;
  }
  txn->coordinator = from;
  txn->sn = msg.sn;
  // Past this point the subtransaction is voting: orphan abandonment is no
  // longer safe (after READY only the coordinator may decide).
  if (txn->orphan_timer != sim::kInvalidEvent) {
    loop_->Cancel(txn->orphan_timer);
    txn->orphan_timer = sim::kInvalidEvent;
  }
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kPrepareRecv;
    e.txn = msg.gtid;
    e.site = config_.site;
    e.peer = from;
    e.resubmission = txn->resubmission;
    e.sn = msg.sn;
    tracer_->Record(std::move(e));
  }

  // Refresh the stored intervals first: for every prepared subtransaction
  // that is *currently* alive (known from UAN without touching the LDBS),
  // the interval end extends to now. This keeps the certification exact
  // between periodic alive checks — without it, a transaction preparing
  // shortly after another's last alive check would be refused spuriously,
  // violating the paper's failure-free-no-aborts property.
  // (Allocation-free: ExtendEnd only mutates the entry's interval in place,
  // never the hash table itself, so iterating `entries()` directly is safe;
  // the refresh is order-independent.)
  AliveIntervalTable& table = certifier_->table();
  for (const auto& [entry_gtid, entry] : table.entries()) {
    AgentTxn* other = FindTxn(entry_gtid);
    if (other != nullptr && !other->resubmitting && other->alive &&
        ltm_->IsActive(other->ltm_handle)) {
      table.ExtendEnd(entry_gtid, loop_->Now());
    }
  }

  // Prepare certification behind the certifier seam: the scheme's ordering
  // admission check (SN extension / CSN snapshot) plus the basic alive-
  // interval test, with trace detail strings built only when tracing.
  const AliveInterval candidate{txn->last_completion, loop_->Now()};
  cert::PrepareOutcome verdict = certifier_->CertifyPrepare(
      txn->gtid, msg.sn, candidate, txn->resubmission,
      /*want_detail=*/tracer_ != nullptr);
  if (!verdict.admit) {
    switch (verdict.refuse) {
      case trace::RefuseKind::kExtension:
        ++metrics_->refuse_extension;
        break;
      case trace::RefuseKind::kSnapshot:
        ++metrics_->refuse_snapshot;
        break;
      default:
        ++metrics_->refuse_interval;
        break;
    }
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCertRefuse;
      e.txn = txn->gtid;
      e.site = config_.site;
      e.resubmission = txn->resubmission;
      e.sn = msg.sn;
      e.refuse = verdict.refuse;
      e.ok = false;
      e.detail = std::move(verdict.detail);
      e.related = std::move(verdict.related);
      tracer_->Record(std::move(e));
    }
    Refuse(*txn, verdict.reason);
    return;
  }

  if (!txn->alive || !ltm_->IsActive(txn->ltm_handle)) {
    ++metrics_->refuse_dead;
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCertRefuse;
      e.txn = txn->gtid;
      e.site = config_.site;
      e.resubmission = txn->resubmission;
      e.sn = msg.sn;
      e.refuse = trace::RefuseKind::kDead;
      e.ok = false;
      e.detail = "unilaterally aborted before prepare";
      tracer_->Record(std::move(e));
    }
    txn->phase = Phase::kAborted;
    SendVote(txn->gtid, from, /*ready=*/false,
             Status::Aborted("unilaterally aborted before prepare"),
             /*read_only=*/false, txn->acting_for);
    return;
  }

  // Short-commit read-only fast path: a write-free participant that passed
  // certification can commit locally *now* — releasing its read locks —
  // instead of holding them through the decision round. Safe because every
  // read happened before the global lock point (the prepare round), so
  // strict 2PL already fixed its serialization order; see
  // docs/DESIGN-SPACE.md. The reader never enters the prepared set and the
  // coordinator excludes it from the decision fan-out.
  if (config_.short_commit) {
    const ltm::LocalTxn* local = ltm_->Find(txn->ltm_handle);
    if (local != nullptr && local->write_set.empty()) {
      if (tracer_ != nullptr) {
        trace::Event e;
        e.kind = trace::EventKind::kCertReady;
        e.txn = txn->gtid;
        e.site = config_.site;
        e.resubmission = txn->resubmission;
        e.sn = msg.sn;
        tracer_->Record(std::move(e));
      }
      ltm_->recorder()->RecordPrepare(SubTxnId{txn->gtid, txn->resubmission},
                                      config_.site);
      const Status commit_status = ltm_->Commit(txn->ltm_handle);
      if (!commit_status.ok()) {
        // Death discovered at the early commit: refuse like the dead branch
        // (the reader holds no prepared state to resubmit for).
        ++metrics_->refuse_dead;
        txn->phase = Phase::kAborted;
        SendVote(txn->gtid, from, /*ready=*/false,
                 Status::Aborted("unilaterally aborted before prepare"));
        return;
      }
      txn->phase = Phase::kCommitted;
      txn->read_only = true;
      ++metrics_->short_commits_readonly;
      if (tracer_ != nullptr) {
        trace::Event e;
        e.kind = trace::EventKind::kShortCommit;
        e.txn = txn->gtid;
        e.site = config_.site;
        e.resubmission = txn->resubmission;
        e.detail = "readonly";
        tracer_->Record(std::move(e));
        trace::Event c;
        c.kind = trace::EventKind::kLocalCommit;
        c.txn = txn->gtid;
        c.site = config_.site;
        c.resubmission = txn->resubmission;
        c.sn = msg.sn;
        tracer_->Record(std::move(c));
      }
      // No forced prepare record: with no writes there is nothing to redo
      // and nothing in doubt — one less force-write is part of the win.
      log_.Append(
          LogRecord{.kind = LogRecordKind::kComplete, .gtid = txn->gtid});
      SendVote(txn->gtid, from, /*ready=*/true, Status::Ok(),
               /*read_only=*/true);
      return;
    }
  }

  // Certification passed: force-write the prepare record, move to prepared.
  log_.ForceAppend(LogRecord{.kind = LogRecordKind::kPrepare,
                             .gtid = txn->gtid,
                             .sn = msg.sn});
  certifier_->OnPrepared(txn->gtid, candidate, msg.sn);
  txn->phase = Phase::kPrepared;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kCertReady;
    e.txn = txn->gtid;
    e.site = config_.site;
    e.resubmission = txn->resubmission;
    e.sn = msg.sn;
    tracer_->Record(std::move(e));
  }
  ltm_->recorder()->RecordPrepare(SubTxnId{txn->gtid, txn->resubmission},
                                  config_.site);
  if (config_.bind_bound_data) BindAccessedItems(*txn);
  SendVote(txn->gtid, txn->coordinator, /*ready=*/true, Status::Ok(),
           /*read_only=*/false, txn->acting_for);
  ScheduleAliveCheck(*txn);
  // Arm the decision wait: if no COMMIT/ROLLBACK arrives in time the agent
  // starts probing the coordinator — the 2PC blocking window made visible.
  if (config_.decision_inquiry_timeout > 0) {
    ArmInquiryTimer(*txn, config_.decision_inquiry_timeout);
  }
  if (!prepared_hooks_.empty()) {
    // Copy what the hooks need first: a hook may crash this site (fault
    // plans), wiping txns_ and invalidating `txn`.
    const TxnId gtid = txn->gtid;
    const LtmTxnHandle handle = txn->ltm_handle;
    for (size_t i = 0; i < prepared_hooks_.size(); ++i) {
      prepared_hooks_[i](gtid, handle);
    }
  }
}

// --- alive checks and resubmission (Appendix A) ------------------------------

void TwoPCAgent::ScheduleAliveCheck(AgentTxn& txn) {
  const TxnId gtid = txn.gtid;
  txn.alive_timer = loop_->ScheduleAfter(
      config_.alive_check_interval, [this, gtid]() { OnAliveCheck(gtid); });
}

void TwoPCAgent::OnAliveCheck(const TxnId& gtid) {
  AgentTxn* txn = FindTxn(gtid);
  if (txn == nullptr || txn->phase != Phase::kPrepared) return;
  txn->alive_timer = sim::kInvalidEvent;
  ++metrics_->alive_checks;
  if (txn->resubmitting) {
    ScheduleAliveCheck(*txn);
    return;
  }
  if (txn->alive && ltm_->IsActive(txn->ltm_handle)) {
    // No failure: extend the end of the alive time interval.
    certifier_->table().ExtendEnd(gtid, loop_->Now());
  } else {
    // Unilaterally aborted: resubmit the commands from the Agent log.
    StartResubmission(*txn);
  }
  ScheduleAliveCheck(*txn);
}

void TwoPCAgent::StartResubmission(AgentTxn& txn) {
  assert(txn.phase == Phase::kPrepared);
  txn.resubmitting = true;
  ++txn.resubmit_attempts;
  ++metrics_->resubmissions;
  if (txn.resubmit_attempts > config_.max_resubmission_attempts) {
    // The TW assumption promises this does not happen; count it loudly if
    // it ever does, and keep trying — a prepared transaction cannot be
    // abandoned unilaterally by the agent.
    ++metrics_->resubmission_failures;
  }
  ++txn.resubmission;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kResubmitStart;
    e.txn = txn.gtid;
    e.site = config_.site;
    e.resubmission = txn.resubmission;
    e.value = txn.resubmit_attempts;
    tracer_->Record(std::move(e));
  }
  log_.Append(
      LogRecord{.kind = LogRecordKind::kResubmission, .gtid = txn.gtid});
  txn.alive = true;
  txn.resubmit_next_cmd = 0;
  txn.ltm_handle = ltm_->Begin(SubTxnId{txn.gtid, txn.resubmission});
  RunNextResubmitCommand(txn.gtid);
}

void TwoPCAgent::RunNextResubmitCommand(const TxnId& gtid) {
  AgentTxn* txn = FindTxn(gtid);
  if (txn == nullptr) return;
  if (txn->phase != Phase::kPrepared) {
    // A rollback decision arrived mid-resubmission.
    txn->resubmitting = false;
    if (ltm_->IsActive(txn->ltm_handle)) ltm_->Abort(txn->ltm_handle);
    return;
  }
  const std::vector<db::Command> commands = log_.CommandsOf(gtid);
  if (txn->resubmit_next_cmd >= commands.size()) {
    OnResubmissionComplete(*txn);
    return;
  }
  const db::Command cmd = commands[txn->resubmit_next_cmd];
  ltm_->Execute(
      txn->ltm_handle, cmd,
      [this, gtid](const Status& status, const db::CmdResult&) {
        AgentTxn* t = FindTxn(gtid);
        if (t == nullptr) return;
        if (t->phase != Phase::kPrepared) {
          t->resubmitting = false;
          return;
        }
        if (status.ok()) {
          ++t->resubmit_next_cmd;
          RunNextResubmitCommand(gtid);
          return;
        }
        // This resubmission attempt died (lock timeout or another injected
        // failure). Back off and start a fresh attempt.
        ++metrics_->resubmission_failures;
        if (ltm_->IsActive(t->ltm_handle)) ltm_->Abort(t->ltm_handle);
        const TxnId id = gtid;
        t->resubmit_retry_timer = loop_->ScheduleAfter(
            config_.resubmit_retry_interval, [this, id]() {
              AgentTxn* t2 = FindTxn(id);
              if (t2 == nullptr || t2->phase != Phase::kPrepared) return;
              t2->resubmit_retry_timer = sim::kInvalidEvent;
              StartResubmission(*t2);
            });
      });
}

void TwoPCAgent::OnResubmissionComplete(AgentTxn& txn) {
  txn.resubmitting = false;
  txn.resubmit_attempts = 0;
  txn.last_completion = loop_->Now();
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kResubmitDone;
    e.txn = txn.gtid;
    e.site = config_.site;
    e.resubmission = txn.resubmission;
    tracer_->Record(std::move(e));
  }
  // "A new interval is always initiated after the resubmission of all the
  // commands is complete."
  certifier_->table().Restart(txn.gtid, loop_->Now());
  // The resubmitted decomposition may touch different rows: extend the
  // bound-data set.
  if (config_.bind_bound_data) BindAccessedItems(txn);
  if (txn.commit_pending) TryCommit(txn);
}

// --- commit certification (Appendix C) ---------------------------------------

void TwoPCAgent::OnDecision(SiteId from, const DecisionMsg& msg) {
  AgentTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) {
    // Rollback of a transaction we refused (and already forgot): ack.
    network_->Send(config_.site, from,
                   Message{AckMsg{msg.gtid, msg.commit}});
    return;
  }
  if (msg.commit) {
    if (txn->phase == Phase::kCommitted) {
      // Duplicate decision (e.g. the original COMMIT plus a recovery
      // inquiry reply, or a retransmission whose ACK was lost): re-ack
      // idempotently.
      ++metrics_->dup_msgs_absorbed;
      network_->Send(config_.site, from,
                     Message{AckMsg{msg.gtid, true, txn->acting_for}});
      return;
    }
    if (txn->phase != Phase::kPrepared) return;
    if (txn->commit_pending) ++metrics_->dup_msgs_absorbed;
    txn->commit_pending = true;
    if (msg.csn >= 0) {
      // Decision-time CSN: stamp the prepared entry so commit certification
      // can order this subtransaction against co-prepared peers.
      txn->csn = msg.csn;
      certifier_->OnCommitDecision(txn->gtid, msg.csn);
    }
    // The decision arrived: stop probing for it.
    if (txn->inquiry_timer != sim::kInvalidEvent) {
      loop_->Cancel(txn->inquiry_timer);
      txn->inquiry_timer = sim::kInvalidEvent;
    }
    TryCommit(*txn);
  } else {
    if (txn->phase == Phase::kAborted) {
      ++metrics_->dup_msgs_absorbed;
      network_->Send(config_.site, from,
                     Message{AckMsg{msg.gtid, false, txn->acting_for}});
      return;
    }
    if (txn->phase == Phase::kCommitted) {
      // A short-commit read-only participant already committed locally and
      // released its locks; with no writes there is nothing to undo and the
      // global order is unaffected. Ack so the sender stops retransmitting.
      network_->Send(config_.site, from,
                     Message{AckMsg{msg.gtid, false, txn->acting_for}});
      return;
    }
    ProcessRollback(*txn);
  }
}

void TwoPCAgent::TryCommit(AgentTxn& txn) {
  if (txn.phase != Phase::kPrepared || !txn.commit_pending) return;
  if (txn.resubmitting) return;  // OnResubmissionComplete re-enters

  // Commit certification: the scheme's ordering rule — SN: all other
  // prepared subtransactions must have a bigger serial number; CSN: no
  // co-prepared peer may hold a smaller (or still-undecided) CSN. Retry
  // later otherwise.
  std::vector<TxnId> waiting_on;
  if (!certifier_->CertifyCommit(txn.gtid,
                                 tracer_ != nullptr ? &waiting_on : nullptr)) {
    ++metrics_->commit_cert_retries;
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCommitRetry;
      e.txn = txn.gtid;
      e.site = config_.site;
      e.resubmission = txn.resubmission;
      e.sn = txn.sn;
      e.related = std::move(waiting_on);
      tracer_->Record(std::move(e));
    }
    if (txn.commit_retry_timer == sim::kInvalidEvent) {
      const TxnId gtid = txn.gtid;
      txn.commit_retry_timer = loop_->ScheduleAfter(
          config_.commit_retry_interval, [this, gtid]() {
            AgentTxn* t = FindTxn(gtid);
            if (t == nullptr) return;
            t->commit_retry_timer = sim::kInvalidEvent;
            TryCommit(*t);
          });
    }
    return;
  }

  if (!txn.alive || !ltm_->IsActive(txn.ltm_handle)) {
    // Unilaterally aborted after the last alive check: resubmit first, then
    // commit (TW guarantees eventual success).
    StartResubmission(txn);
    return;
  }

  // Write the commit record to the Agent log, then commit locally.
  log_.ForceAppend(LogRecord{.kind = LogRecordKind::kCommit,
                             .gtid = txn.gtid,
                             .csn = txn.csn});
  const Status status = ltm_->Commit(txn.ltm_handle);
  if (!status.ok()) {
    // Death discovered at commit: treat like a failed alive check.
    txn.alive = false;
    StartResubmission(txn);
    return;
  }
  CompleteCommit(txn);
}

void TwoPCAgent::CompleteCommit(AgentTxn& txn) {
  txn.phase = Phase::kCommitted;
  txn.commit_pending = false;
  CancelTimers(txn);
  // Fencing tripwire: committing a row whose shard now belongs to another
  // (unwedged) owner would install a write invisible at the new owner. The
  // fence + drain + handoff machinery must make this impossible; the E19
  // sweep gates on the counter staying zero.
  if (directory_ != nullptr) {
    const shard::ShardMap& map = directory_->Current();
    for (const ItemId& item : txn.bound_items) {
      const shard::ShardEntry& entry = map.shards[map.ShardOf(item.key)];
      if (entry.owner != config_.site && !entry.wedged) {
        ++metrics_->commits_stale_epoch;
        break;
      }
    }
  }
  UnbindAll(txn);
  certifier_->OnCommitted(txn.gtid, txn.sn, loop_->Now());
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kLocalCommit;
    e.txn = txn.gtid;
    e.site = config_.site;
    e.resubmission = txn.resubmission;
    e.sn = txn.sn;
    if (txn.csn >= 0) e.value = txn.csn;
    tracer_->Record(std::move(e));
  }
  log_.Append(LogRecord{.kind = LogRecordKind::kComplete, .gtid = txn.gtid});
  network_->Send(config_.site, txn.coordinator,
                 Message{AckMsg{txn.gtid, /*commit=*/true, txn.acting_for}});
}

void TwoPCAgent::ProcessRollback(AgentTxn& txn) {
  CancelTimers(txn);
  txn.resubmitting = false;
  txn.commit_pending = false;
  if (ltm_->IsActive(txn.ltm_handle)) ltm_->Abort(txn.ltm_handle);
  UnbindAll(txn);
  certifier_->OnRemoved(txn.gtid);
  txn.phase = Phase::kAborted;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kLocalAbort;
    e.txn = txn.gtid;
    e.site = config_.site;
    e.resubmission = txn.resubmission;
    e.ok = false;
    tracer_->Record(std::move(e));
  }
  log_.Append(LogRecord{.kind = LogRecordKind::kAbort, .gtid = txn.gtid});
  network_->Send(config_.site, txn.coordinator,
                 Message{AckMsg{txn.gtid, /*commit=*/false, txn.acting_for}});
}

// --- short-commit 1PC (single-site fast path) --------------------------------

void TwoPCAgent::OnOnePhaseCommit(SiteId from, const OnePhaseCommitMsg& msg) {
  AgentTxn* txn = FindTxn(msg.gtid);
  if (txn == nullptr) {
    // A crash wiped the volatile state. The log is the truth: a committed
    // 1PC transaction left commit + completion records; anything else is
    // presumed abort (an in-doubt 1PC cannot exist — the commit record is
    // the decision).
    const bool committed =
        log_.HasCommit(msg.gtid) && log_.HasComplete(msg.gtid);
    network_->Send(config_.site, from, Message{AckMsg{msg.gtid, committed}});
    return;
  }
  if (txn->phase == Phase::kCommitted) {
    ++metrics_->dup_msgs_absorbed;
    network_->Send(config_.site, from, Message{AckMsg{msg.gtid, true}});
    return;
  }
  if (txn->phase == Phase::kAborted) {
    ++metrics_->dup_msgs_absorbed;
    network_->Send(config_.site, from, Message{AckMsg{msg.gtid, false}});
    return;
  }
  if (txn->phase == Phase::kPrepared) {
    if (!txn->commit_pending) {
      // Crash-recovered in-doubt 1PC: the prepare record proves the whole
      // fused handler ran before the crash (handlers are atomic), so the
      // global commit was already recorded — the retransmitted 1PC-COMMIT
      // re-drives the local commit the crash interrupted.
      if (txn->inquiry_timer != sim::kInvalidEvent) {
        loop_->Cancel(txn->inquiry_timer);
        txn->inquiry_timer = sim::kInvalidEvent;
      }
      txn->coordinator = from;
      txn->commit_pending = true;
      TryCommit(*txn);
      return;
    }
    // Retransmission while the first 1PC-COMMIT is still in flight (e.g. a
    // resubmission running): the in-flight machinery acks when done.
    ++metrics_->dup_msgs_absorbed;
    return;
  }
  txn->coordinator = from;
  if (txn->orphan_timer != sim::kInvalidEvent) {
    loop_->Cancel(txn->orphan_timer);
    txn->orphan_timer = sim::kInvalidEvent;
  }
  if (!txn->alive || !ltm_->IsActive(txn->ltm_handle)) {
    // Unilaterally aborted while still active: with no prepare record there
    // is nothing to resubmit for — the agent is the commit point here and
    // decides abort, like a refused vote plus an immediate rollback.
    if (ltm_->IsActive(txn->ltm_handle)) ltm_->Abort(txn->ltm_handle);
    UnbindAll(*txn);
    txn->phase = Phase::kAborted;
    ltm_->recorder()->RecordGlobalAbort(txn->gtid, config_.site);
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kLocalAbort;
      e.txn = txn->gtid;
      e.site = config_.site;
      e.resubmission = txn->resubmission;
      e.ok = false;
      tracer_->Record(std::move(e));
    }
    log_.Append(LogRecord{.kind = LogRecordKind::kAbort, .gtid = txn->gtid});
    network_->Send(config_.site, from, Message{AckMsg{msg.gtid, false}});
    return;
  }
  // Fuse prepare + commit: a momentary prepared state with the invalid
  // serial number, which sorts below every real SN — commit certification
  // passes immediately and the committed high-water mark stays untouched
  // (a single-site transaction constrains no global order).
  log_.ForceAppend(LogRecord{.kind = LogRecordKind::kPrepare,
                             .gtid = txn->gtid,
                             .sn = SerialNumber{}});
  certifier_->OnPrepared(txn->gtid,
                         AliveInterval{txn->last_completion, loop_->Now()},
                         SerialNumber{});
  txn->phase = Phase::kPrepared;
  txn->sn = SerialNumber{};
  ltm_->recorder()->RecordPrepare(SubTxnId{txn->gtid, txn->resubmission},
                                  config_.site);
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kShortCommit;
    e.txn = txn->gtid;
    e.site = config_.site;
    e.resubmission = txn->resubmission;
    e.detail = "1pc";
    tracer_->Record(std::move(e));
  }
  // The agent is the commit point: record the global decision *before* the
  // local commit, preserving the C_k-before-local-commit order invariant.
  ltm_->recorder()->RecordGlobalCommit(txn->gtid, config_.site);
  ++metrics_->short_commits_1pc;
  txn->commit_pending = true;
  // TryCommit reuses the full 2PC tail: force-kCommit, local commit, the
  // COMMIT-ACK, and resubmission if the LDBS kills the work mid-commit.
  TryCommit(*txn);
}

// --- DLU bound data ----------------------------------------------------------

void TwoPCAgent::BindAccessedItems(AgentTxn& txn) {
  const ltm::LocalTxn* local = ltm_->Find(txn.ltm_handle);
  if (local == nullptr) return;
  std::vector<ItemId> fresh;
  for (const auto& set : {local->read_set, local->write_set}) {
    for (const ItemId& item : set) {
      if (txn.bound_items.insert(item).second) fresh.push_back(item);
    }
  }
  ltm_->BindItems(fresh);
}

void TwoPCAgent::UnbindAll(AgentTxn& txn) {
  if (txn.bound_items.empty()) return;
  ltm_->UnbindItems(
      std::vector<ItemId>(txn.bound_items.begin(), txn.bound_items.end()));
  txn.bound_items.clear();
}

// --- site crash recovery -------------------------------------------------------

void TwoPCAgent::Crash() {
  for (auto& [gtid, txn] : txns_) CancelTimers(txn);
  txns_.clear();
  migrated_to_.clear();  // volatile; Recover() rebuilds it from the log
  certifier_->Crash();
}

void TwoPCAgent::Recover() {
  // Restore the scheme's committed ordering state from completed
  // transactions in the agent log, then let the certifier replay its own
  // durable state (the CSN log survives a crash like the agent log does).
  for (const LogRecord& record : log_.records()) {
    if (record.kind == LogRecordKind::kPrepare &&
        log_.HasComplete(record.gtid)) {
      certifier_->OnRecoveredCommitted(record.gtid, record.sn);
    }
  }
  certifier_->Recover();
  // Restore the migrated-residue redirect table: messages for handed-off
  // subtransactions must keep pointing their sender at the adopting site.
  for (const LogRecord& record : log_.records()) {
    if (record.kind == LogRecordKind::kMigrated) {
      migrated_to_[record.gtid] = record.peer;
    }
  }
  // Rebuild every in-doubt subtransaction: prepared, not alive, with its
  // logged serial number; resubmit, then finish via the logged decision or
  // a coordinator inquiry.
  for (const TxnId& gtid : log_.InDoubt()) {
    AgentTxn& txn = txns_[gtid];
    txn.gtid = gtid;
    txn.coordinator = log_.CoordinatorOf(gtid);
    txn.phase = Phase::kPrepared;
    txn.alive = false;
    txn.resubmission = log_.ResubmissionsOf(gtid);
    const auto prepare = log_.PrepareRecordOf(gtid);
    assert(prepare.has_value());
    txn.sn = prepare->sn;
    txn.last_completion = loop_->Now();
    certifier_->OnPrepared(gtid, AliveInterval{loop_->Now(), loop_->Now()},
                           txn.sn);
    txn.commit_pending = log_.HasCommit(gtid);
    if (txn.commit_pending) {
      // The decision (and its CSN, if one traveled) is already durable in
      // the commit record: re-stamp the prepared entry before resubmitting.
      txn.csn = log_.CommitCsnOf(gtid);
      certifier_->OnCommitDecision(gtid, txn.csn);
    }
    StartResubmission(txn);
    ScheduleAliveCheck(txn);
    if (!txn.commit_pending) SendInquiry(gtid);
  }
}

void TwoPCAgent::SendInquiry(const TxnId& gtid) {
  AgentTxn* txn = FindTxn(gtid);
  if (txn == nullptr || txn->phase != Phase::kPrepared ||
      txn->commit_pending) {
    return;
  }
  ++txn->inquiry_attempts;
  ++metrics_->inquiries_sent;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kInquirySend;
    e.txn = gtid;
    e.site = config_.site;
    e.peer = txn->coordinator;
    e.value = txn->inquiry_attempts;
    tracer_->Record(std::move(e));
  }
  network_->Send(config_.site, txn->coordinator, Message{InquiryMsg{gtid}});
  // Paxos Commit: enough unanswered inquiries and the agent presumes the
  // coordinator dead, escalating to the consensus module's resolution round
  // (leader election) instead of probing a corpse forever.
  if (config_.inquiry_escalate_after > 0 && escalate_hook_ &&
      txn->inquiry_attempts >= config_.inquiry_escalate_after) {
    escalate_hook_(gtid, txn->coordinator,
                   txn->inquiry_attempts - config_.inquiry_escalate_after);
  }
  // Retry with capped exponential backoff until a decision arrives: the
  // coordinator stays silent while still collecting votes, the inquiry or
  // its reply may be lost, or the coordinator may itself be down — the
  // prepared agent must keep probing (the blocking window).
  sim::Duration delay = config_.inquiry_retry_initial;
  for (int i = 1; i < txn->inquiry_attempts; ++i) {
    delay = std::min(delay * 2, config_.inquiry_retry_max);
  }
  ArmInquiryTimer(*txn, delay);
}

void TwoPCAgent::ArmInquiryTimer(AgentTxn& txn, sim::Duration delay) {
  if (txn.inquiry_timer != sim::kInvalidEvent) loop_->Cancel(txn.inquiry_timer);
  const TxnId gtid = txn.gtid;
  txn.inquiry_timer = loop_->ScheduleAfter(delay, [this, gtid]() {
    AgentTxn* t = FindTxn(gtid);
    if (t != nullptr) t->inquiry_timer = sim::kInvalidEvent;
    SendInquiry(gtid);
  });
}

// --- orphan detection --------------------------------------------------------

void TwoPCAgent::ArmOrphanTimer(AgentTxn& txn) {
  if (config_.orphan_abort_timeout <= 0) return;
  if (txn.orphan_timer != sim::kInvalidEvent) {
    loop_->Cancel(txn.orphan_timer);
    txn.orphan_timer = sim::kInvalidEvent;
  }
  if (txn.phase != Phase::kActive) return;
  const TxnId gtid = txn.gtid;
  txn.orphan_timer = loop_->ScheduleAfter(
      config_.orphan_abort_timeout, [this, gtid]() { OnOrphanTimeout(gtid); });
}

void TwoPCAgent::OnOrphanTimeout(const TxnId& gtid) {
  AgentTxn* txn = FindTxn(gtid);
  if (txn == nullptr) return;
  txn->orphan_timer = sim::kInvalidEvent;
  // Only an *active* subtransaction may be abandoned: before the READY vote
  // the LDBS can unilaterally abort at any time (execution autonomy).
  // A silent coordinator usually means it crashed before reaching PREPARE;
  // releasing the orphan's locks keeps the rest of the workload moving.
  if (txn->phase != Phase::kActive || !txn->alive) return;
  if (ltm_->IsActive(txn->ltm_handle)) {
    ltm_->InjectUnilateralAbort(txn->ltm_handle);
  }
}

// --- bookkeeping -------------------------------------------------------------

void TwoPCAgent::CancelTimers(AgentTxn& txn) {
  for (sim::EventId* timer :
       {&txn.alive_timer, &txn.commit_retry_timer, &txn.resubmit_retry_timer,
        &txn.inquiry_timer, &txn.orphan_timer}) {
    if (*timer != sim::kInvalidEvent) {
      loop_->Cancel(*timer);
      *timer = sim::kInvalidEvent;
    }
  }
}

void TwoPCAgent::OnUnilateralAbort(const SubTxnId& id,
                                   LtmTxnHandle handle) {
  AgentTxn* txn = FindTxn(id.txn);
  if (txn == nullptr) return;
  if (handle != txn->ltm_handle || id.resubmission != txn->resubmission) {
    return;  // stale notification about a superseded local subtransaction
  }
  txn->alive = false;
  // If a resubmission attempt is in flight its command callback handles the
  // retry; otherwise the next alive check (or the commit attempt) triggers
  // the resubmission — exactly the Appendix A/C algorithms.
}

// --- shard handoff -----------------------------------------------------------

bool TwoPCAgent::TxnTouchesShards(const TxnId& gtid, const shard::ShardMap& map,
                                  const std::vector<int>& shards) const {
  for (const db::Command& cmd : log_.CommandsOf(gtid)) {
    const std::optional<int64_t> key = db::CommandExactKey(cmd);
    if (!key.has_value() || ShardInSet(map.ShardOf(*key), shards)) return true;
  }
  return false;
}

bool TwoPCAgent::TxnInsideShards(const TxnId& gtid, const shard::ShardMap& map,
                                 const std::vector<int>& shards) const {
  for (const db::Command& cmd : log_.CommandsOf(gtid)) {
    const std::optional<int64_t> key = db::CommandExactKey(cmd);
    if (!key.has_value() || !ShardInSet(map.ShardOf(*key), shards)) {
      return false;
    }
  }
  return true;
}

bool TwoPCAgent::InFlightOnShards(const shard::ShardMap& map,
                                  const std::vector<int>& shards) const {
  for (const auto& [gtid, txn] : txns_) {
    if (txn.phase != Phase::kActive && txn.phase != Phase::kPrepared) continue;
    if (TxnTouchesShards(gtid, map, shards)) return true;
  }
  return false;
}

bool TwoPCAgent::CanMigrateResidue(const shard::ShardMap& map,
                                   const std::vector<int>& shards) const {
  // Actives can always be force-aborted (execution autonomy). A *prepared*
  // subtransaction can only relocate whole: if any of its commands touch a
  // shard that is staying, its resubmission would have to split across two
  // sites — keep draining instead.
  for (const auto& [gtid, txn] : txns_) {
    if (txn.phase != Phase::kPrepared) continue;
    if (TxnTouchesShards(gtid, map, shards) &&
        !TxnInsideShards(gtid, map, shards)) {
      return false;
    }
  }
  return true;
}

std::vector<MigratedTxn> TwoPCAgent::ExtractResidueForShards(
    const shard::ShardMap& map, const std::vector<int>& shards, SiteId dest) {
  // Deterministic extraction order: txns_ is an unordered_map.
  std::vector<TxnId> targets;
  for (const auto& [gtid, txn] : txns_) {
    if (txn.phase != Phase::kActive && txn.phase != Phase::kPrepared) continue;
    if (TxnTouchesShards(gtid, map, shards)) targets.push_back(gtid);
  }
  std::sort(targets.begin(), targets.end());
  std::vector<MigratedTxn> out;
  for (const TxnId& gtid : targets) {
    AgentTxn& txn = *FindTxn(gtid);
    if (txn.phase == Phase::kActive) {
      // Force-abort: before the READY vote the LDBS may kill active work at
      // any time; the coordinator sees failing DML and rolls back globally.
      if (txn.alive && ltm_->IsActive(txn.ltm_handle)) {
        ltm_->InjectUnilateralAbort(txn.ltm_handle);
        ++metrics_->reconfig_forced_aborts;
      }
      continue;
    }
    assert(TxnInsideShards(gtid, map, shards));
    MigratedTxn m;
    m.gtid = gtid;
    m.coordinator = txn.coordinator;
    m.origin = config_.site;
    m.resubmission = txn.resubmission;
    m.sn = txn.sn;
    m.commit_pending = txn.commit_pending;
    m.csn = txn.csn;
    m.commands = log_.CommandsOf(gtid);
    CancelTimers(txn);
    UnbindAll(txn);
    const LtmTxnHandle handle = txn.ltm_handle;
    txns_.erase(gtid);  // before the abort: mutes the UAN listener
    // Undo the residue's local work (the handoff copies only committed
    // rows); the adopting site re-executes the commands from its own log.
    if (ltm_->IsActive(handle)) ltm_->InjectUnilateralAbort(handle);
    certifier_->OnRemoved(gtid);
    ltm_->recorder()->RecordMigrateOut(SubTxnId{gtid, m.resubmission},
                                       config_.site);
    // Force the migration record: after a crash the residue must not be
    // resurrected here as in-doubt — it lives at `dest` now.
    log_.ForceAppend(LogRecord{.kind = LogRecordKind::kMigrated,
                               .gtid = gtid,
                               .peer = dest});
    migrated_to_[gtid] = dest;
    out.push_back(std::move(m));
  }
  return out;
}

void TwoPCAgent::AdoptMigrated(const MigratedTxn& m) {
  assert(FindTxn(m.gtid) == nullptr);
  // Replay the residue into this agent's log so later crash recovery and
  // resubmission treat the adopted subtransaction exactly like a native one
  // (kResubmission records keep ResubmissionsOf in step with the carried
  // incarnation index).
  log_.Append(LogRecord{.kind = LogRecordKind::kBegin,
                        .gtid = m.gtid,
                        .peer = m.coordinator});
  for (const db::Command& cmd : m.commands) {
    log_.Append(LogRecord{.kind = LogRecordKind::kCommand,
                          .gtid = m.gtid,
                          .command = cmd});
  }
  log_.ForceAppend(LogRecord{.kind = LogRecordKind::kPrepare,
                             .gtid = m.gtid,
                             .sn = m.sn});
  for (int i = 0; i < m.resubmission; ++i) {
    log_.Append(LogRecord{.kind = LogRecordKind::kResubmission,
                          .gtid = m.gtid});
  }
  AgentTxn& txn = txns_[m.gtid];
  txn.gtid = m.gtid;
  txn.coordinator = m.coordinator;
  txn.phase = Phase::kPrepared;
  txn.alive = false;
  txn.resubmission = m.resubmission;
  txn.sn = m.sn;
  txn.acting_for = m.origin;
  txn.last_completion = loop_->Now();
  certifier_->OnPrepared(m.gtid,
                         AliveInterval{loop_->Now(), loop_->Now()}, m.sn);
  txn.commit_pending = m.commit_pending;
  if (m.commit_pending && m.csn >= 0) {
    txn.csn = m.csn;
    certifier_->OnCommitDecision(m.gtid, m.csn);
  }
  ++metrics_->reconfig_residue_adopted;
  // Same tail as crash recovery: resubmit the commands against the copied
  // rows, then finish via the carried decision or a coordinator inquiry.
  StartResubmission(txn);
  ScheduleAliveCheck(txn);
  if (!txn.commit_pending) SendInquiry(m.gtid);
}

}  // namespace hermes::core
