#include "runner/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>

#include "common/str.h"
#include "trace/binary.h"
#include "trace/trace.h"

namespace hermes::runner {

int EffectiveWorkers(int workers) {
  if (workers > 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::string DescribeException(std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

Status ParallelFor(size_t n, int workers,
                   const std::function<void(size_t)>& fn) {
  const size_t pool = std::min(
      static_cast<size_t>(EffectiveWorkers(workers)), n == 0 ? 1 : n);
  if (pool <= 1) {
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        return Status::Internal(StrCat(
            "task ", i, " failed: ", DescribeException(std::current_exception())));
      }
    }
    return Status::Ok();
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::string first_error;
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::string what = DescribeException(std::current_exception());
        std::lock_guard<std::mutex> lock(mu);
        if (!failed.exchange(true)) {
          first_error = StrCat("task ", i, " failed: ", what);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (failed.load()) return Status::Internal(first_error);
  return Status::Ok();
}

Result<std::vector<RunOutput>> RunAll(const std::vector<RunSpec>& specs,
                                      const SweepOptions& options) {
  std::vector<RunOutput> outputs(specs.size());
  const Status status =
      ParallelFor(specs.size(), options.workers, [&](size_t i) {
        workload::WorkloadConfig config = specs[i].config;
        config.tracer = nullptr;
        std::optional<trace::Tracer> tracer;
        if (specs[i].capture_trace) {
          tracer.emplace(specs[i].trace_options);
          config.tracer = &*tracer;
        }
        outputs[i].result = workload::Driver::Run(config);
        if (tracer.has_value()) {
          if (tracer->options().format == trace::TraceFormat::kBinary) {
            outputs[i].trace_binary = tracer->ToBinary();
          } else {
            outputs[i].trace_jsonl = tracer->ToJsonl();
          }
        }
      });
  if (!status.ok()) return status;
  return outputs;
}

std::string Fingerprint(const RunOutput& out) {
  const workload::RunResult& r = out.result;
  std::string fp = r.metrics.ToString();
  StrAppend(fp, "latency_hist: ", r.metrics.latency_hist.ToString(),
            " samples=", r.metrics.latency_samples,
            " total=", r.metrics.latency_total, "\n");
  StrAppend(fp, "ltm: begun=", r.ltm.begun, " committed=", r.ltm.committed,
            " aborted=", r.ltm.aborted,
            " unilateral=", r.ltm.unilateral_aborts,
            " injected=", r.ltm.injected_aborts,
            " lock_timeout=", r.ltm.lock_timeout_aborts,
            " deadlock=", r.ltm.deadlock_victim_aborts,
            " commands=", r.ltm.commands_executed,
            " dlu_waits=", r.ltm.dlu_waits,
            " dlu_rejections=", r.ltm.dlu_rejections, "\n");
  StrAppend(fp, "net: messages=", r.messages, " dropped=", r.msgs_dropped,
            " duplicated=", r.msgs_duplicated,
            " reordered=", r.msgs_reordered, "\n");
  StrAppend(fp, "sim: end_time=", r.end_time, " events=", r.events, "\n");
  StrAppend(fp, "oracle: checked=", r.history_checked ? 1 : 0,
            " cg_acyclic=", r.commit_graph_acyclic ? 1 : 0,
            " verdict=", history::VerdictName(r.verdict),
            " replay=", r.replay_consistent ? 1 : 0,
            " order_invariant=", r.order_invariant_ok ? 1 : 0,
            " atomicity=", r.atomicity_ok ? 1 : 0,
            " ops=", r.history_ops, "\n");
  for (size_t s = 0; s < r.site_metrics.size(); ++s) {
    StrAppend(fp, "site", s, ":");
    for (const auto& [name, value] : r.site_metrics[s].CounterEntries()) {
      if (value != 0) StrAppend(fp, " ", name, "=", value);
    }
    fp += '\n';
  }
  if (!r.series.empty()) StrAppend(fp, r.series.ToString());
  StrAppend(fp, "trace:\n", out.trace_jsonl);
  // Binary captures are opaque bytes; fingerprint them verbatim so a
  // serial-vs-parallel divergence in the binary backend fails the same
  // byte-identity assertions the JSONL capture does.
  if (!out.trace_binary.empty()) {
    StrAppend(fp, "trace_binary[", out.trace_binary.size(), "]:",
              out.trace_binary, "\n");
  }
  return fp;
}

Result<std::string> MergeBinaryTraces(const std::vector<RunOutput>& outputs) {
  struct Tagged {
    trace::Event event;
    size_t run = 0;
  };
  std::vector<Tagged> all;
  int64_t dropped = 0;
  int64_t sampled_out = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].trace_binary.empty()) {
      return Status::InvalidArgument(
          StrCat("run ", i, " has no binary trace capture"));
    }
    trace::BinaryParse p = trace::ParseBinaryLenient(outputs[i].trace_binary);
    if (p.truncated || p.skipped_records > 0) {
      return Status::InvalidArgument(StrCat(
          "run ", i, ": damaged binary trace",
          p.warnings.empty() ? "" : StrCat(" — ", p.warnings.front())));
    }
    dropped += p.dropped;
    sampled_out += p.sampled_out;
    all.reserve(all.size() + p.events.size());
    for (trace::Event& e : p.events) all.push_back({std::move(e), i});
  }
  // Stable sort on (virtual time, site, seq, run): a total order built
  // only from run content and spec position, never from completion order.
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a,
                                              const Tagged& b) {
    return std::tie(a.event.at, a.event.site, a.event.seq, a.run) <
           std::tie(b.event.at, b.event.site, b.event.seq, b.run);
  });
  trace::BinaryTraceWriter writer;
  writer.AddDropped(dropped);
  writer.AddSampledOut(sampled_out);
  for (const Tagged& t : all) writer.Add(t.event);
  return writer.Finish();
}

}  // namespace hermes::runner
