#include "runner/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/str.h"
#include "history/view_checker.h"
#include "trace/trace.h"

namespace hermes::runner {

void Stat::Add(double v) {
  if (count == 0 || v < min) min = v;
  if (count == 0 || v > max) max = v;
  sum += v;
  ++count;
}

void Stat::Merge(const Stat& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  count += other.count;
}

void CellAggregate::Add(const std::string& name, double value) {
  for (auto& [n, stat] : stats) {
    if (n == name) {
      stat.Add(value);
      return;
    }
  }
  stats.emplace_back(name, Stat{});
  stats.back().second.Add(value);
}

void CellAggregate::AddRun(uint64_t seed, const workload::RunResult& r) {
  seeds.push_back(seed);
  const core::Metrics& m = r.metrics;
  Add("committed", static_cast<double>(m.global_committed));
  Add("aborted", static_cast<double>(m.global_aborted));
  Add("aborted_cert", static_cast<double>(m.global_aborted_cert));
  Add("aborted_dml", static_cast<double>(m.global_aborted_dml));
  Add("aborted_timeout", static_cast<double>(m.global_aborted_timeout));
  Add("resubmissions", static_cast<double>(m.resubmissions));
  Add("resubmission_failures",
      static_cast<double>(m.resubmission_failures));
  Add("refuse_interval", static_cast<double>(m.refuse_interval));
  Add("refuse_extension", static_cast<double>(m.refuse_extension));
  Add("refuse_dead", static_cast<double>(m.refuse_dead));
  Add("refuse_snapshot", static_cast<double>(m.refuse_snapshot));
  Add("commit_cert_retries", static_cast<double>(m.commit_cert_retries));
  Add("short_commits_1pc", static_cast<double>(m.short_commits_1pc));
  Add("short_commits_readonly",
      static_cast<double>(m.short_commits_readonly));
  Add("csn_assigned", static_cast<double>(m.csn_assigned));
  Add("single_site_committed",
      static_cast<double>(m.single_site_committed));
  Add("single_site_lat_total_us",
      static_cast<double>(m.single_site_latency_total));
  Add("retransmits", static_cast<double>(m.retransmits));
  Add("dup_absorbed", static_cast<double>(m.dup_msgs_absorbed));
  Add("aborted_crash", static_cast<double>(m.global_aborted_crash));
  Add("coordinator_crashes", static_cast<double>(m.coordinator_crashes));
  Add("redelivered_decisions",
      static_cast<double>(m.coordinator_redelivered_decisions));
  Add("inquiries", static_cast<double>(m.inquiries_sent));
  Add("inquiries_presumed_abort",
      static_cast<double>(m.inquiries_answered_presumed_abort));
  Add("local_committed", static_cast<double>(m.local_committed));
  Add("local_aborted", static_cast<double>(m.local_aborted));
  Add("paxos_forced_writes", static_cast<double>(m.paxos_forced_writes));
  Add("paxos_votes_accepted", static_cast<double>(m.paxos_votes_accepted));
  Add("paxos_resolutions", static_cast<double>(m.paxos_resolutions));
  Add("paxos_elections", static_cast<double>(m.paxos_elections));
  Add("paxos_decided_fast", static_cast<double>(m.paxos_decided_fast));
  Add("paxos_decided_resolved",
      static_cast<double>(m.paxos_decided_resolved));
  Add("epoch_refusals", static_cast<double>(m.epoch_refusals));
  Add("epoch_map_refreshes", static_cast<double>(m.epoch_map_refreshes));
  Add("reconfig_started", static_cast<double>(m.reconfig_started));
  Add("reconfig_completed", static_cast<double>(m.reconfig_completed));
  Add("reconfig_rows_moved", static_cast<double>(m.reconfig_rows_moved));
  Add("reconfig_residue_adopted",
      static_cast<double>(m.reconfig_residue_adopted));
  Add("reconfig_forced_aborts",
      static_cast<double>(m.reconfig_forced_aborts));
  Add("commits_stale_epoch", static_cast<double>(m.commits_stale_epoch));
  Add("trace_emitted", static_cast<double>(m.trace_events_emitted));
  Add("trace_dropped", static_cast<double>(m.trace_events_dropped));
  Add("trace_sampled_out", static_cast<double>(m.trace_sampled_out));
  Add("messages", static_cast<double>(r.messages));
  Add("dropped", static_cast<double>(r.msgs_dropped));
  Add("duplicated", static_cast<double>(r.msgs_duplicated));
  Add("reordered", static_cast<double>(r.msgs_reordered));
  Add("events", static_cast<double>(r.events));
  Add("end_time_ms", static_cast<double>(r.end_time) / 1000.0);
  Add("tput", r.CommitsPerSecond());
  Add("mean_lat_ms", m.MeanLatencyMs());
  const bool violated =
      r.history_checked &&
      (!r.replay_consistent || !r.order_invariant_ok ||
       !r.commit_graph_acyclic || !r.atomicity_ok ||
       r.verdict == history::Verdict::kNotSerializable);
  Add("violations", violated ? 1.0 : 0.0);
  latency.Merge(m.latency_hist);
  series.Merge(r.series);
}

const Stat* CellAggregate::FindStat(const std::string& name) const {
  for (const auto& [n, stat] : stats) {
    if (n == name) return &stat;
  }
  return nullptr;
}

double CellAggregate::Mean(const std::string& name) const {
  const Stat* s = FindStat(name);
  return s == nullptr ? 0.0 : s->mean();
}

double CellAggregate::Sum(const std::string& name) const {
  const Stat* s = FindStat(name);
  return s == nullptr ? 0.0 : s->sum;
}

CellAggregate& Aggregator::Cell(const std::string& name) {
  for (CellAggregate& c : cells_) {
    if (c.cell == name) return c;
  }
  cells_.emplace_back();
  cells_.back().cell = name;
  return cells_.back();
}

void Aggregator::AddRun(const std::string& cell, uint64_t seed,
                        const workload::RunResult& r) {
  Cell(cell).AddRun(seed, r);
}

void AppendJsonDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

namespace {

void AppendStatEntry(std::string& out, const std::string& name,
                     const Stat& s, bool last) {
  out += "        ";
  trace::AppendJsonString(out, name);
  StrAppend(out, ": {\"count\": ", s.count, ", \"sum\": ");
  AppendJsonDouble(out, s.sum);
  out += ", \"mean\": ";
  AppendJsonDouble(out, s.mean());
  out += ", \"min\": ";
  AppendJsonDouble(out, s.min);
  out += ", \"max\": ";
  AppendJsonDouble(out, s.max);
  out += last ? "}\n" : "},\n";
}

void AppendCell(std::string& out, const CellAggregate& cell) {
  out += "    {\n      \"cell\": ";
  trace::AppendJsonString(out, cell.cell);
  StrAppend(out, ",\n      \"runs\": ", cell.seeds.size(),
            ",\n      \"seeds\": [");
  for (size_t i = 0; i < cell.seeds.size(); ++i) {
    if (i > 0) out += ", ";
    StrAppend(out, cell.seeds[i]);
  }
  out += "],\n      \"stats\": {\n";
  for (size_t i = 0; i < cell.stats.size(); ++i) {
    AppendStatEntry(out, cell.stats[i].first, cell.stats[i].second,
                    i + 1 == cell.stats.size());
  }
  out += "      },\n      \"latency_us\": {";
  const trace::Histogram& h = cell.latency;
  StrAppend(out, "\"count\": ", h.count(), ", \"min\": ", h.min(),
            ", \"max\": ", h.max(), ", \"p50\": ", h.Percentile(50),
            ", \"p95\": ", h.Percentile(95),
            ", \"p99\": ", h.Percentile(99), ", \"buckets\": [");
  bool first = true;
  for (int b = 0; b < trace::Histogram::kBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    if (!first) out += ", ";
    first = false;
    StrAppend(out, "[", b, ", ", h.bucket(b), "]");
  }
  out += "]}";
  // Optional key: only traced cells carry a series, and old artifacts
  // without one still parse (and re-encode byte-identically).
  if (!cell.series.empty()) {
    StrAppend(out, ",\n      \"series\": {\"window_us\": ",
              cell.series.window_us, ", \"windows\": [");
    for (size_t w = 0; w < cell.series.windows.size(); ++w) {
      const trace::TimeSeries::Window& win = cell.series.windows[w];
      if (w > 0) out += ", ";
      StrAppend(out, "[", win.begun, ", ", win.committed, ", ", win.aborted,
                ", ", win.refusals, ", ", win.resubmissions, ", ",
                win.max_in_flight, ", ", win.max_prepared, "]");
    }
    out += "]}";
  }
  out += "\n    }";
}

}  // namespace

std::string EncodeBenchArtifact(const BenchArtifact& a) {
  std::string out = "{\n  \"schema_version\": ";
  StrAppend(out, a.schema_version);
  out += ",\n  \"bench\": ";
  trace::AppendJsonString(out, a.bench);
  out += ",\n  \"config\": ";
  trace::AppendJsonString(out, a.config);
  StrAppend(out, ",\n  \"seed\": ", a.seed, ",\n  \"workers\": ", a.workers,
            ",\n  \"headers\": [");
  for (size_t i = 0; i < a.headers.size(); ++i) {
    if (i > 0) out += ", ";
    trace::AppendJsonString(out, a.headers[i]);
  }
  out += "],\n  \"rows\": [";
  for (size_t r = 0; r < a.rows.size(); ++r) {
    out += r == 0 ? "\n    {" : ",\n    {";
    for (size_t i = 0; i < a.rows[r].size() && i < a.headers.size(); ++i) {
      if (i > 0) out += ", ";
      trace::AppendJsonString(out, a.headers[i]);
      out += ": ";
      trace::AppendJsonString(out, a.rows[r][i]);
    }
    out += "}";
  }
  out += a.rows.empty() ? "],\n" : "\n  ],\n";
  out += "  \"cells\": [";
  for (size_t c = 0; c < a.cells.size(); ++c) {
    out += c == 0 ? "\n" : ",\n";
    AppendCell(out, a.cells[c]);
  }
  out += a.cells.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

namespace {

// Recursive-descent parser for the exact grammar EncodeBenchArtifact
// emits: whitespace-insensitive, but keys must appear in the canonical
// order and nothing else is accepted (so any unknown key is a parse
// error by construction). Derived fields (runs, mean, percentiles) are
// parsed and discarded; Encode recomputes them, which is what makes
// Encode(Parse(Encode(a))) byte-identical to Encode(a).
class ArtifactParser {
 public:
  explicit ArtifactParser(std::string_view in) : in_(in) {}

  Status Parse(BenchArtifact& out) {
    if (!Expect('{')) return Error();
    int64_t version = 0;
    if (!Key("schema_version") || !Int64(version)) return Error();
    if (version != BenchArtifact::kSchemaVersion) {
      return Status::InvalidArgument(
          StrCat("unsupported schema_version: ", version));
    }
    out.schema_version = static_cast<int>(version);
    if (!Expect(',') || !Key("bench") || !String(out.bench)) return Error();
    if (!Expect(',') || !Key("config") || !String(out.config)) {
      return Error();
    }
    if (!Expect(',') || !Key("seed") || !Uint64(out.seed)) return Error();
    int64_t workers = 0;
    if (!Expect(',') || !Key("workers") || !Int64(workers)) return Error();
    out.workers = static_cast<int>(workers);
    if (!Expect(',') || !Key("headers") || !StringArray(out.headers)) {
      return Error();
    }
    if (!Expect(',') || !Key("rows")) return Error();
    Status s = ParseRows(out);
    if (!s.ok()) return s;
    if (!Expect(',') || !Key("cells")) return Error();
    s = ParseCells(out);
    if (!s.ok()) return s;
    if (!Expect('}')) return Error();
    SkipSpace();
    if (pos_ != in_.size()) return Fail("trailing characters");
    return Status::Ok();
  }

 private:
  Status ParseRows(BenchArtifact& out) {
    if (!Expect('[')) return Error();
    if (TryExpect(']')) return Status::Ok();
    while (true) {
      if (!Expect('{')) return Error();
      std::vector<std::string> row;
      if (!TryExpect('}')) {
        while (true) {
          std::string key, value;
          if (!String(key) || !Expect(':') || !String(value)) {
            return Error();
          }
          if (row.size() >= out.headers.size() ||
              key != out.headers[row.size()]) {
            return Fail(StrCat("row key out of header order: ", key));
          }
          row.push_back(std::move(value));
          if (TryExpect('}')) break;
          if (!Expect(',')) return Error();
        }
      }
      out.rows.push_back(std::move(row));
      if (TryExpect(']')) return Status::Ok();
      if (!Expect(',')) return Error();
    }
  }

  Status ParseCells(BenchArtifact& out) {
    if (!Expect('[')) return Error();
    if (TryExpect(']')) return Status::Ok();
    while (true) {
      CellAggregate cell;
      Status s = ParseCell(cell);
      if (!s.ok()) return s;
      out.cells.push_back(std::move(cell));
      if (TryExpect(']')) return Status::Ok();
      if (!Expect(',')) return Error();
    }
  }

  Status ParseCell(CellAggregate& cell) {
    if (!Expect('{')) return Error();
    if (!Key("cell") || !String(cell.cell)) return Error();
    int64_t runs = 0;  // derived: seeds.size()
    if (!Expect(',') || !Key("runs") || !Int64(runs)) return Error();
    if (!Expect(',') || !Key("seeds") || !Expect('[')) return Error();
    if (!TryExpect(']')) {
      while (true) {
        uint64_t seed = 0;
        if (!Uint64(seed)) return Error();
        cell.seeds.push_back(seed);
        if (TryExpect(']')) break;
        if (!Expect(',')) return Error();
      }
    }
    if (runs != static_cast<int64_t>(cell.seeds.size())) {
      return Fail("runs does not match seeds length");
    }
    if (!Expect(',') || !Key("stats") || !Expect('{')) return Error();
    if (!TryExpect('}')) {
      while (true) {
        std::string name;
        Stat stat;
        if (!String(name) || !Expect(':') || !ParseStat(stat)) {
          return Error();
        }
        if (cell.FindStat(name) != nullptr) {
          return Fail(StrCat("duplicate stat: ", name));
        }
        cell.stats.emplace_back(std::move(name), stat);
        if (TryExpect('}')) break;
        if (!Expect(',')) return Error();
      }
    }
    if (!Expect(',') || !Key("latency_us")) return Error();
    Status s = ParseLatency(cell);
    if (!s.ok()) return s;
    if (TryExpect(',')) {  // optional trailing series
      if (!Key("series")) return Error();
      s = ParseSeries(cell);
      if (!s.ok()) return s;
    }
    if (!Expect('}')) return Error();
    return Status::Ok();
  }

  Status ParseSeries(CellAggregate& cell) {
    if (!Expect('{') || !Key("window_us") ||
        !Int64(cell.series.window_us) || !Expect(',') || !Key("windows") ||
        !Expect('[')) {
      return Error();
    }
    if (cell.series.window_us <= 0) return Fail("bad series window_us");
    while (true) {
      trace::TimeSeries::Window w;
      if (!Expect('[') || !Int64(w.begun) || !Expect(',') ||
          !Int64(w.committed) || !Expect(',') || !Int64(w.aborted) ||
          !Expect(',') || !Int64(w.refusals) || !Expect(',') ||
          !Int64(w.resubmissions) || !Expect(',') ||
          !Int64(w.max_in_flight) || !Expect(',') ||
          !Int64(w.max_prepared) || !Expect(']')) {
        return Error();
      }
      cell.series.windows.push_back(w);
      if (TryExpect(']')) break;
      if (!Expect(',')) return Error();
    }
    // The encoder omits empty series entirely, so one window is the
    // grammar's minimum — and the empty-vs-absent ambiguity never arises.
    if (!Expect('}')) return Error();
    return Status::Ok();
  }

  bool ParseStat(Stat& stat) {
    double mean = 0;  // derived: sum / count
    return Expect('{') && Key("count") && Int64(stat.count) &&
           Expect(',') && Key("sum") && Double(stat.sum) && Expect(',') &&
           Key("mean") && Double(mean) && Expect(',') && Key("min") &&
           Double(stat.min) && Expect(',') && Key("max") &&
           Double(stat.max) && Expect('}');
  }

  Status ParseLatency(CellAggregate& cell) {
    // count and the percentiles are derived from the buckets; min/max are
    // carried explicitly because buckets only bound them.
    int64_t count = 0, min = 0, max = 0, p = 0;
    if (!Expect('{') || !Key("count") || !Int64(count) || !Expect(',') ||
        !Key("min") || !Int64(min) || !Expect(',') || !Key("max") ||
        !Int64(max) || !Expect(',') || !Key("p50") || !Int64(p) ||
        !Expect(',') || !Key("p95") || !Int64(p) || !Expect(',') ||
        !Key("p99") || !Int64(p) || !Expect(',') || !Key("buckets") ||
        !Expect('[')) {
      return Error();
    }
    std::array<int64_t, trace::Histogram::kBuckets> buckets{};
    if (!TryExpect(']')) {
      while (true) {
        int64_t index = 0, n = 0;
        if (!Expect('[') || !Int64(index) || !Expect(',') || !Int64(n) ||
            !Expect(']')) {
          return Error();
        }
        if (index < 0 || index >= trace::Histogram::kBuckets) {
          return Fail(StrCat("bucket index out of range: ", index));
        }
        buckets[static_cast<size_t>(index)] = n;
        if (TryExpect(']')) break;
        if (!Expect(',')) return Error();
      }
    }
    if (!Expect('}')) return Error();
    cell.latency = trace::Histogram::FromParts(buckets, min, max);
    if (cell.latency.count() != count) {
      return Fail("latency count does not match bucket sum");
    }
    return Status::Ok();
  }

  // --- lexing helpers -------------------------------------------------

  void SkipSpace() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\n' || in_[pos_] == '\t' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Expect(char c) {
    SkipSpace();
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail2(StrCat("expected '", std::string(1, c), "'"));
  }

  bool TryExpect(char c) {
    SkipSpace();
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Consumes `"name":`. Any other key fails the parse — the canonical
  // grammar has no optional or reordered fields.
  bool Key(std::string_view name) {
    std::string got;
    if (!String(got)) return false;
    if (got != name) {
      return Fail2(StrCat("expected key \"", std::string(name),
                          "\", got \"", got, "\""));
    }
    return Expect(':');
  }

  bool String(std::string& out) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] != '"') {
      return Fail2("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= in_.size()) return Fail2("dangling escape");
      char esc = in_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return Fail2("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail2("bad \\u escape");
            }
          }
          if (code > 0x7f) return Fail2("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          return Fail2("unknown escape");
      }
    }
    return Fail2("unterminated string");
  }

  bool Int64(int64_t& out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (in_[start] == '-' && pos_ == start + 1)) {
      return Fail2("expected integer");
    }
    errno = 0;
    out = std::strtoll(std::string(in_.substr(start, pos_ - start)).c_str(),
                       nullptr, 10);
    if (errno == ERANGE) return Fail2("integer out of range");
    return true;
  }

  bool Uint64(uint64_t& out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) return Fail2("expected unsigned integer");
    errno = 0;
    out = std::strtoull(std::string(in_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
    if (errno == ERANGE) return Fail2("integer out of range");
    return true;
  }

  bool Double(double& out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() &&
           ((in_[pos_] >= '0' && in_[pos_] <= '9') || in_[pos_] == '.' ||
            in_[pos_] == 'e' || in_[pos_] == 'E' || in_[pos_] == '+' ||
            in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail2("expected number");
    char* end = nullptr;
    const std::string text(in_.substr(start, pos_ - start));
    out = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return Fail2("bad number");
    return true;
  }

  bool StringArray(std::vector<std::string>& out) {
    if (!Expect('[')) return false;
    if (TryExpect(']')) return true;
    while (true) {
      std::string s;
      if (!String(s)) return false;
      out.push_back(std::move(s));
      if (TryExpect(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Fail2(std::string message) {
    if (error_.empty()) {
      error_ = StrCat(std::move(message), " at offset ", pos_);
    }
    return false;
  }

  Status Fail(std::string message) {
    Fail2(std::move(message));
    return Error();
  }

  Status Error() const {
    return Status::InvalidArgument(
        error_.empty() ? "parse error" : error_);
  }

  std::string_view in_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<BenchArtifact> ParseBenchArtifact(const std::string& json) {
  BenchArtifact out;
  ArtifactParser parser(json);
  Status s = parser.Parse(out);
  if (!s.ok()) return s;
  return out;
}

bool WriteBenchArtifactFile(const BenchArtifact& artifact) {
  const std::string out = EncodeBenchArtifact(artifact);
  const std::string path = StrCat("BENCH_", artifact.bench, ".json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = std::fclose(f) == 0 && written == out.size();
  if (ok) std::printf("\nartifact: %s\n", path.c_str());
  return ok;
}

}  // namespace hermes::runner
