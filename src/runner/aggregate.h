// Cross-seed aggregation and the consolidated benchmark artifact.
//
// A sweep groups its runs into *cells* (one per config point); each cell
// accumulates named scalar statistics (count/sum/min/max, mean derived)
// and merges the per-run latency histograms bucket-by-bucket, so
// percentiles across seeds are computed from the union of all samples
// rather than averaged per run. Stat and histogram merging are commutative
// and associative — aggregate order cannot change the result.
//
// The consolidated `BENCH_<name>.json` artifact (schema_version 2) carries
// the printed table plus the full per-cell aggregates, and round-trips
// through ParseBenchArtifact: Encode(Parse(Encode(a))) == Encode(a)
// byte-for-byte. The schema is documented in docs/FORMATS.md.

#ifndef HERMES_RUNNER_AGGREGATE_H_
#define HERMES_RUNNER_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "trace/histogram.h"
#include "workload/driver.h"

namespace hermes::runner {

// Running scalar statistic over the runs of one cell.
struct Stat {
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void Add(double v);
  void Merge(const Stat& other);
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

// Aggregate of all runs sharing one cell label.
struct CellAggregate {
  std::string cell;
  std::vector<uint64_t> seeds;  // in aggregation order
  // Merged latency buckets of every run in the cell (microseconds).
  trace::Histogram latency;
  // Virtual-time metrics series merged across the cell's traced runs
  // (counters sum, gauges max per window — order-independent). Empty when
  // no run in the cell carried a series.
  trace::TimeSeries series;
  // Named statistics in first-insertion order (deterministic export).
  std::vector<std::pair<std::string, Stat>> stats;

  // Adds one sample to the named stat (created on first use).
  void Add(const std::string& name, double value);
  // Adds the standard metric set of one finished run and merges its
  // latency histogram. The stat names are listed in docs/FORMATS.md.
  void AddRun(uint64_t seed, const workload::RunResult& r);

  const Stat* FindStat(const std::string& name) const;
  double Mean(const std::string& name) const;
  double Sum(const std::string& name) const;
};

// Collects cells in first-appearance order.
class Aggregator {
 public:
  CellAggregate& Cell(const std::string& name);
  void AddRun(const std::string& cell, uint64_t seed,
              const workload::RunResult& r);

  const std::vector<CellAggregate>& cells() const { return cells_; }

 private:
  std::vector<CellAggregate> cells_;
};

// The consolidated, schema-versioned benchmark artifact.
struct BenchArtifact {
  static constexpr int kSchemaVersion = 2;

  int schema_version = kSchemaVersion;
  std::string bench;   // experiment name; file is BENCH_<bench>.json
  std::string config;  // free-form base-configuration description
  uint64_t seed = 0;   // base seed of the sweep
  int workers = 1;     // worker threads the sweep ran with
  // The printed result table (headers + stringified rows).
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
  // Per-cell cross-seed aggregates (empty for single-run benchmarks).
  std::vector<CellAggregate> cells;
};

// Deterministic JSON encoding (fixed field order, shortest round-tripping
// double representation).
std::string EncodeBenchArtifact(const BenchArtifact& artifact);

// Parses an artifact produced by EncodeBenchArtifact. Unknown keys are
// rejected. Derived fields are consistency-checked where cheap (runs vs
// seeds, latency count vs bucket sum) and otherwise discarded — Encode
// recomputes them, which is what makes Encode(Parse(Encode(a)))
// byte-identical to Encode(a).
Result<BenchArtifact> ParseBenchArtifact(const std::string& json);

// Writes `BENCH_<bench>.json` into the current directory and prints the
// artifact path. Returns false on I/O failure.
bool WriteBenchArtifactFile(const BenchArtifact& artifact);

// Appends a double with the shortest decimal representation that parses
// back to exactly the same value (deterministic, locale-independent).
void AppendJsonDouble(std::string& out, double v);

}  // namespace hermes::runner

#endif  // HERMES_RUNNER_AGGREGATE_H_
