// Parallel multi-seed experiment harness.
//
// Every simulation in this repository is a pure function of its
// WorkloadConfig: Driver::Run builds a private EventLoop, Mdbs, Generator
// and Rng, touches no global mutable state, and returns all results by
// value (the simulation-stack audit backing this claim is recorded in
// DESIGN.md §7). Independent runs are therefore embarrassingly parallel,
// and a seed×config sweep can fan out across all cores while remaining
// bit-for-bit deterministic: the harness guarantees that each run's trace
// and metrics are byte-identical whether the sweep executes serially or on
// N worker threads.
//
// Concurrency model: a fixed pool of std::threads pulls task indices from
// one atomic counter; results land in a pre-sized vector slot per task, so
// no ordering decision ever depends on thread scheduling. A task that
// throws stops the pool from claiming further tasks and fails the whole
// sweep with the first error; in-flight tasks drain before RunAll returns.

#ifndef HERMES_RUNNER_RUNNER_H_
#define HERMES_RUNNER_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/driver.h"

namespace hermes::runner {

// Number of worker threads a sweep will actually use: `workers` if > 0,
// otherwise the hardware concurrency (at least 1).
int EffectiveWorkers(int workers);

// Runs fn(0), ..., fn(n-1) across `workers` threads (serially when the
// effective worker count is 1). Tasks must be independent. If any call
// throws, no further tasks are started and the first exception is returned
// as an Internal status after all in-flight tasks finished.
Status ParallelFor(size_t n, int workers,
                   const std::function<void(size_t)>& fn);

// One simulation in a sweep: the cell groups runs that differ only by seed
// (aggregation key); the config carries the seed itself.
struct RunSpec {
  std::string cell;
  workload::WorkloadConfig config;
  // Collect the run's structured trace and return its export.
  bool capture_trace = false;
  // Backend/sampling of the private tracer the harness gives a
  // capture_trace run. The default (kJsonl, no sampling) fills
  // RunOutput::trace_jsonl; TraceFormat::kBinary fills trace_binary.
  trace::TracerOptions trace_options;
};

struct RunOutput {
  workload::RunResult result;
  // JSONL export of the run's trace (capture_trace with a kJsonl tracer).
  std::string trace_jsonl;
  // Binary export ("HTRB") of the run's trace (kBinary tracer).
  std::string trace_binary;
};

struct SweepOptions {
  // Worker threads; <= 0 means hardware concurrency.
  int workers = 1;
};

// Runs every spec and returns the outputs in spec order. Any tracer already
// set on a spec's config is ignored: sharing one tracer across workers
// would interleave events nondeterministically, so the harness instead
// gives each capture_trace run a private tracer whose export it returns.
Result<std::vector<RunOutput>> RunAll(const std::vector<RunSpec>& specs,
                                      const SweepOptions& options);

// Canonical textual digest of one run — the trace export (JSONL and/or
// binary) plus every metric and verdict — used to assert byte-identical
// serial/parallel execution.
std::string Fingerprint(const RunOutput& out);

// Merges the binary trace captures of a sweep into one binary trace,
// deterministically: events are stable-sorted by (virtual time, site, seq,
// run index) and re-encoded with a fresh dictionary; header drop/sample
// counts sum. The result is independent of worker count or completion
// order — the multi-run analogue of one run's byte-identical trace. Fails
// if any capture is damaged or missing.
Result<std::string> MergeBinaryTraces(const std::vector<RunOutput>& outputs);

}  // namespace hermes::runner

#endif  // HERMES_RUNNER_RUNNER_H_
