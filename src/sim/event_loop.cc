#include "sim/event_loop.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace hermes::sim {

EventId EventLoop::ScheduleAt(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

EventId EventLoop::ScheduleAfter(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventLoop::Cancel(EventId id) {
  // Only a still-pending event can be cancelled: an already-executed or
  // already-cancelled id is rejected, and nothing is recorded for it.
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);  // tombstone, discarded lazily when popped
  return true;
}

bool EventLoop::PopNext(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, so const_cast the owned element (safe: we pop next).
    Event& top = const_cast<Event&>(queue_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    pending_.erase(top.id);
    out = std::move(top);
    queue_.pop();
    return true;
  }
  return false;
}

uint64_t EventLoop::Run() {
  uint64_t n = 0;
  Event ev;
  while (PopNext(ev)) {
    now_ = ev.at;
    ++n;
    ++events_processed_;
    if (max_events_ != 0 && events_processed_ > max_events_) {
      std::fprintf(stderr,
                   "EventLoop: exceeded max_events=%llu at t=%lld; "
                   "likely livelock\n",
                   static_cast<unsigned long long>(max_events_),
                   static_cast<long long>(now_));
      std::abort();
    }
    ev.fn();
  }
  return n;
}

uint64_t EventLoop::RunUntil(Time deadline) {
  uint64_t n = 0;
  Event ev;
  while (!queue_.empty()) {
    // Peek the next live event's time without consuming it.
    if (cancelled_.count(queue_.top().id) != 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().at > deadline) break;
    if (!PopNext(ev)) break;
    now_ = ev.at;
    ++n;
    ++events_processed_;
    if (max_events_ != 0 && events_processed_ > max_events_) {
      std::fprintf(stderr,
                   "EventLoop: exceeded max_events=%llu at t=%lld; "
                   "likely livelock\n",
                   static_cast<unsigned long long>(max_events_),
                   static_cast<long long>(now_));
      std::abort();
    }
    ev.fn();
  }
  // The whole slice up to `deadline` was simulated: advance the clock even
  // when the queue drained early, so back-to-back RunUntil calls measure
  // wall-clock-like virtual time instead of sticking at the last event.
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool EventLoop::Step() {
  Event ev;
  if (!PopNext(ev)) return false;
  now_ = ev.at;
  ++events_processed_;
  ev.fn();
  return true;
}

}  // namespace hermes::sim
