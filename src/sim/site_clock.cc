#include "sim/site_clock.h"

// Header-only; this file anchors the target in the build.
