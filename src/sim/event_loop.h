// Deterministic discrete-event simulation kernel.
//
// Every component of the reproduced system (LTMs, 2PC agents, coordinators,
// the network, workload clients, failure injectors) runs as callbacks on one
// EventLoop with a virtual clock. Two runs with the same seed execute the
// exact same event sequence, which makes the concurrency-control experiments
// reproducible and the serializability oracle checks meaningful.

#ifndef HERMES_SIM_EVENT_LOOP_H_
#define HERMES_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace hermes::sim {

// Virtual time in microseconds since simulation start.
using Time = int64_t;
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

// Identifies a scheduled event so it can be cancelled (timer semantics).
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time Now() const { return now_; }

  // Schedules `fn` to run at virtual time `at` (clamped to Now()). Events
  // with equal time run in scheduling order (stable).
  EventId ScheduleAt(Time at, std::function<void()> fn);
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already ran or was
  // cancelled before.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number of events
  // processed.
  uint64_t Run();

  // Runs events with time <= `deadline`; afterwards Now() == deadline (the
  // slice of virtual time was fully simulated even if the queue drained
  // early), unless Now() was already past it.
  uint64_t RunUntil(Time deadline);

  // Runs a single event if one is pending. Returns false if the queue is
  // empty.
  bool Step();

  bool Empty() const { return pending_.empty(); }
  uint64_t events_processed() const { return events_processed_; }

  // Safety valve for tests: Run() aborts the process after this many events
  // (0 = unlimited) to turn livelocks into loud failures.
  void set_max_events(uint64_t n) { max_events_ = n; }

 private:
  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  // Pops the next non-cancelled event into `out`. Returns false when empty.
  bool PopNext(Event& out);

  Time now_ = 0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t max_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // An id lives in exactly one of these two sets while its Event is still
  // physically queued: `pending_` until it runs or is cancelled,
  // `cancelled_` from cancellation until the tombstone is popped. Ids of
  // already-executed events are in neither, so Cancel can reject them in
  // O(1) without remembering the whole execution history.
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_EVENT_LOOP_H_
