// Per-site real-time clocks with injectable offset and drift.
//
// Section 5.2 of the paper proposes generating serial numbers from "real
// time site clocks, expanded with the unique site identifier" and claims
// that clock drift affects only the number of unnecessary aborts, never
// correctness. SiteClock lets experiments (bench_clock_drift) skew each
// site's clock relative to the simulation's global virtual time to test
// exactly that claim.

#ifndef HERMES_SIM_SITE_CLOCK_H_
#define HERMES_SIM_SITE_CLOCK_H_

#include "sim/event_loop.h"

namespace hermes::sim {

class SiteClock {
 public:
  // offset: constant skew added to true time. drift_ppm: parts-per-million
  // rate error (e.g. 100 => clock runs 0.01% fast).
  explicit SiteClock(const EventLoop* loop, Duration offset = 0,
                     int64_t drift_ppm = 0)
      : loop_(loop), offset_(offset), drift_ppm_(drift_ppm) {}

  // The site's local reading of the current time.
  Time Read() const {
    const Time t = loop_->Now();
    return t + offset_ + t * drift_ppm_ / 1'000'000;
  }

  Duration offset() const { return offset_; }
  int64_t drift_ppm() const { return drift_ppm_; }

  void set_offset(Duration offset) { offset_ = offset; }
  void set_drift_ppm(int64_t ppm) { drift_ppm_ = ppm; }

 private:
  const EventLoop* loop_;
  Duration offset_;
  int64_t drift_ppm_;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_SITE_CLOCK_H_
