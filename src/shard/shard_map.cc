#include "shard/shard_map.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace hermes::shard {

std::vector<int> ShardMap::ShardsOf(SiteId site) const {
  std::vector<int> out;
  for (int i = 0; i < num_shards(); ++i) {
    if (shards[i].owner == site) out.push_back(i);
  }
  return out;
}

std::vector<SiteId> ShardMap::Owners() const {
  std::vector<SiteId> out;
  for (const ShardEntry& e : shards) {
    if (e.owner != kInvalidSite) out.push_back(e.owner);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ShardMap::ToString() const {
  std::ostringstream os;
  os << "epoch=" << epoch << " [";
  for (int i = 0; i < num_shards(); ++i) {
    if (i) os << " ";
    os << i << ":s" << shards[i].owner << (shards[i].wedged ? "*" : "");
  }
  os << "]";
  return os.str();
}

ShardMap ShardMap::MakeInitial(int num_shards, int num_sites) {
  assert(num_shards > 0 && num_sites > 0);
  ShardMap map;
  map.epoch = 1;
  map.shards.resize(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    map.shards[i].owner = static_cast<SiteId>(i % num_sites);
  }
  return map;
}

void Directory::Install(ShardMap next) {
  assert(next.epoch == map_.epoch + 1 && "epochs advance by exactly one");
  map_ = std::move(next);
}

SiteId Directory::Forward(SiteId site) const {
  SiteId cur = site;
  // Bounded walk: forwarding chains are short (one hop per retirement) and
  // never cyclic, but guard against a controller bug anyway.
  for (int hops = 0; hops < 64; ++hops) {
    auto it = forwards_.find(cur);
    if (it == forwards_.end()) return cur;
    cur = it->second;
  }
  assert(false && "forwarding cycle");
  return cur;
}

}  // namespace hermes::shard
