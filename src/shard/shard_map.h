// Versioned shard map: partitioning of the row space across sites.
//
// The key space of every table is hashed into a fixed number of shards
// (shard = key mod num_shards); each shard is owned by exactly one site.
// The map carries an epoch that increases by one on every installation —
// reconfiguration bumps it twice (wedge, then commit), and every
// coordinator-to-agent message is stamped with the sender's epoch view so
// agents can refuse stale senders (the fencing argument of Chockler &
// Gotsman, "Multi-Shot Distributed Transaction Commit").
//
// The Directory is the authoritative copy — the role a replicated
// configuration service plays in a real deployment. In the simulation it
// is a shared object: Fetch() models an RPC to the service and is counted,
// Install() is the controller's reconfiguration commit point.

#ifndef HERMES_SHARD_SHARD_MAP_H_
#define HERMES_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace hermes::shard {

struct ShardEntry {
  SiteId owner = kInvalidSite;
  // A wedged shard is mid-handoff: its rows still live at `owner` but new
  // transactions must not touch it (the generator redraws, the controller
  // waits for in-flight ones to drain).
  bool wedged = false;
};

struct ShardMap {
  int64_t epoch = 0;
  std::vector<ShardEntry> shards;

  int num_shards() const { return static_cast<int>(shards.size()); }
  int ShardOf(int64_t key) const {
    int n = num_shards();
    return n == 0 ? 0 : static_cast<int>(((key % n) + n) % n);
  }
  SiteId OwnerOfKey(int64_t key) const { return shards[ShardOf(key)].owner; }
  bool WedgedKey(int64_t key) const { return shards[ShardOf(key)].wedged; }

  // Shards owned by `site` (ascending shard index).
  std::vector<int> ShardsOf(SiteId site) const;
  // Distinct owners (ascending SiteId).
  std::vector<SiteId> Owners() const;

  std::string ToString() const;

  // Initial assignment: shard i -> site i mod num_sites.
  static ShardMap MakeInitial(int num_shards, int num_sites);
};

// Authoritative shard map plus the forwarding table for retired sites.
// Coordinators hold a cached epoch view and call Fetch() to refresh it
// after an epoch refusal.
class Directory {
 public:
  Directory() = default;
  explicit Directory(ShardMap initial) : map_(std::move(initial)) {}

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  int64_t epoch() const { return map_.epoch; }
  const ShardMap& Current() const { return map_; }

  // Models the RPC to the configuration service; counted so sweeps can
  // report refresh traffic.
  ShardMap Fetch() const {
    ++fetches_;
    return map_;
  }
  int64_t fetches() const { return fetches_; }

  // Controller-only: installs a successor map. Epochs advance by exactly
  // one; anything else is a controller bug.
  void Install(ShardMap next);

  // Retired-site forwarding: messages addressed to `from` should go to
  // Forward(from) instead. Transitive (replace of a replacement chains).
  void SetForward(SiteId from, SiteId to) { forwards_[from] = to; }
  SiteId Forward(SiteId site) const;

 private:
  ShardMap map_;
  std::unordered_map<SiteId, SiteId> forwards_;
  mutable int64_t fetches_ = 0;
};

}  // namespace hermes::shard

#endif  // HERMES_SHARD_SHARD_MAP_H_
