// Online reconfiguration controller: add/remove/replace a site mid-run.
//
// A reconfiguration is a fence epoch plus one commit epoch per shard move
// around a drain-and-handoff window (the wedge/commit pattern of Bravo,
// "Reconfigurable Atomic Transaction Commit"):
//
//   1. *Fence*: install epoch E+1 with the moving shards wedged. New
//      transactions stop touching them (the generator redraws wedged keys)
//      and any coordinator still on epoch E is refused by every agent.
//   2. *Drain*: poll until the source site is quiescent for the moving
//      shards — no active or prepared subtransactions on them (for
//      remove/replace, also no transactions coordinated there). After
//      `drain_deadline`, force the transfer instead: active
//      subtransactions are unilaterally aborted (the coordinator
//      resubmits), prepared residue is migrated with the shard.
//   3. *Handoff*: committed rows plus prepared-transaction residue move to
//      the destination in one virtual instant (HostOps::TransferShards),
//      and a new epoch naming the destination as owner (unwedged) is
//      installed in that same instant — the map never shows rows at a site
//      that no longer holds them.
//   4. *Retire*: for remove/replace the drained site is deactivated and a
//      forwarding entry redirects late messages.
//
// The controller is mechanism-only: Mdbs implements HostOps (provisioning,
// quiescence checks, the actual transfer), so the state machine is
// testable against a fake host.

#ifndef HERMES_SHARD_RECONFIG_H_
#define HERMES_SHARD_RECONFIG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/metrics.h"
#include "shard/shard_map.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::shard {

enum class ReconfigKind : uint8_t {
  kAddSite = 0,
  kRemoveSite = 1,
  kReplaceSite = 2,
};

const char* ReconfigKindName(ReconfigKind kind);

struct ReconfigOp {
  ReconfigKind kind = ReconfigKind::kAddSite;
  // Remove/replace target. Ignored for kAddSite (the host provisions the
  // new site).
  SiteId site = kInvalidSite;
};

// What the controller needs from the hosting system (implemented by
// core::Mdbs; a fake suffices for unit tests).
class HostOps {
 public:
  virtual ~HostOps() = default;

  // Brings a fresh empty site online (storage + LTM + agent + coordinator,
  // network endpoint registered) and returns its id.
  virtual SiteId ProvisionSite() = 0;

  // True while `site` is up and not retired. A handoff only runs when both
  // ends are usable: a crashed site can neither be drained (its prepared
  // residue lives in a log the transfer cannot read coherently) nor adopt;
  // the controller simply keeps polling until recovery.
  virtual bool SiteUsable(SiteId site) = 0;

  // True when `site` has no in-flight subtransaction touching `shards`
  // (and, if `and_coordinator`, no transaction coordinated at `site`).
  virtual bool QuiescentForShards(SiteId site, const std::vector<int>& shards,
                                  bool and_coordinator) = 0;

  // True when a forced transfer is possible despite remaining in-flight
  // work: every blocking subtransaction can be unilaterally aborted or
  // migrated as prepared residue (its logged commands all fall inside
  // `shards`), and the coordinator drain — which cannot be forced — is
  // already complete.
  virtual bool CanForceTransfer(SiteId site, const std::vector<int>& shards,
                                bool and_coordinator) = 0;

  // Moves the committed rows of `shards` plus adoptable prepared residue
  // from `from` to `to`. Returns the number of rows moved.
  virtual int64_t TransferShards(SiteId from, SiteId to,
                                 const std::vector<int>& shards) = 0;

  // Retires a site after its last shard left: unregisters the endpoint and
  // marks it removed (CrashSite/RecoverSite reject it from now on).
  virtual void DeactivateSite(SiteId site) = 0;

  // Deterministic delayed execution on the simulation loop.
  virtual void Schedule(sim::Time delay, std::function<void()> fn) = 0;
};

struct ControllerConfig {
  sim::Time drain_poll = 5'000;        // 5 ms between quiescence checks
  sim::Time drain_deadline = 250'000;  // then force the transfer
  // Sites that may never be removed or replaced (Paxos Commit acceptors:
  // the acceptor set is fixed at construction).
  std::vector<SiteId> protected_sites;
};

class Controller {
 public:
  Controller(ControllerConfig config, Directory* directory, HostOps* host,
             core::Metrics* metrics, trace::Tracer* tracer)
      : config_(config),
        directory_(directory),
        host_(host),
        metrics_(metrics),
        tracer_(tracer) {}

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Starts a reconfiguration; `done` (nullable) fires when the final map
  // is installed. At most one reconfiguration runs at a time.
  Status Start(const ReconfigOp& op, std::function<void(Status)> done = {});

  bool busy() const { return busy_; }

 private:
  struct Move {
    SiteId from = kInvalidSite;
    std::vector<int> shards;
    bool done = false;
  };

  // Shards to steal for an add: quota = num_shards / (owners + 1), taken
  // one at a time from the owner with the most shards (ties: smallest
  // SiteId; within an owner, the smallest shard index first).
  std::vector<Move> StealPlan(const ShardMap& map, int quota) const;

  void Fence(const ReconfigOp& op);
  void PollDrain();
  void Finish();

  ControllerConfig config_;
  Directory* directory_;
  HostOps* host_;
  core::Metrics* metrics_;
  trace::Tracer* tracer_;

  bool busy_ = false;
  ReconfigOp op_;
  SiteId to_ = kInvalidSite;
  std::vector<Move> moves_;
  bool drain_coordinator_ = false;
  sim::Time drained_for_ = 0;  // virtual time spent polling
  std::function<void(Status)> done_;
};

}  // namespace hermes::shard

#endif  // HERMES_SHARD_RECONFIG_H_
