#include "shard/reconfig.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/str.h"

namespace hermes::shard {

const char* ReconfigKindName(ReconfigKind kind) {
  switch (kind) {
    case ReconfigKind::kAddSite:
      return "add_site";
    case ReconfigKind::kRemoveSite:
      return "remove_site";
    case ReconfigKind::kReplaceSite:
      return "replace_site";
  }
  return "?";
}

Status Controller::Start(const ReconfigOp& op, std::function<void(Status)> done) {
  if (busy_) {
    return Status::Rejected("reconfiguration already in progress");
  }
  const ShardMap& map = directory_->Current();
  if (op.kind != ReconfigKind::kAddSite) {
    if (op.site == kInvalidSite) {
      return Status::InvalidArgument("remove/replace needs a target site");
    }
    for (SiteId p : config_.protected_sites) {
      if (p == op.site) {
        return Status::InvalidArgument(
            StrCat("site ", op.site, " is protected (consensus acceptor)"));
      }
    }
    if (map.ShardsOf(op.site).empty()) {
      return Status::InvalidArgument(
          StrCat("site ", op.site, " owns no shards"));
    }
    if (op.kind == ReconfigKind::kRemoveSite && map.Owners().size() < 2) {
      return Status::InvalidArgument("cannot remove the last owner");
    }
  }

  busy_ = true;
  op_ = op;
  done_ = std::move(done);
  moves_.clear();
  drained_for_ = 0;
  drain_coordinator_ = op.kind != ReconfigKind::kAddSite;

  switch (op.kind) {
    case ReconfigKind::kAddSite: {
      const int owners = static_cast<int>(map.Owners().size());
      const int quota = map.num_shards() / (owners + 1);
      if (quota == 0) {
        busy_ = false;
        return Status::InvalidArgument("too few shards to rebalance onto a new site");
      }
      to_ = host_->ProvisionSite();
      moves_ = StealPlan(map, quota);
      break;
    }
    case ReconfigKind::kReplaceSite:
      to_ = host_->ProvisionSite();
      moves_.push_back(Move{op.site, map.ShardsOf(op.site), false});
      break;
    case ReconfigKind::kRemoveSite: {
      // Successor: the other active owner with the fewest shards (ties:
      // lowest id) absorbs everything.
      SiteId best = kInvalidSite;
      size_t best_count = 0;
      for (SiteId s : map.Owners()) {
        if (s == op.site) continue;
        size_t n = map.ShardsOf(s).size();
        if (best == kInvalidSite || n < best_count) {
          best = s;
          best_count = n;
        }
      }
      assert(best != kInvalidSite);
      to_ = best;
      moves_.push_back(Move{op.site, map.ShardsOf(op.site), false});
      break;
    }
  }

  Fence(op);
  host_->Schedule(0, [this] { PollDrain(); });
  return Status::Ok();
}

std::vector<Controller::Move> Controller::StealPlan(const ShardMap& map,
                                                    int quota) const {
  // Working copy of per-owner shard lists, smallest shard index first so
  // pop_back takes it last; we take from the front via an index.
  std::map<SiteId, std::vector<int>> holdings;
  for (SiteId s : map.Owners()) holdings[s] = map.ShardsOf(s);

  std::map<SiteId, std::vector<int>> stolen;
  for (int i = 0; i < quota; ++i) {
    SiteId donor = kInvalidSite;
    size_t most = 0;
    for (const auto& [s, shards] : holdings) {
      if (shards.empty()) continue;
      if (donor == kInvalidSite || shards.size() > most) {
        donor = s;
        most = shards.size();
      }
    }
    if (donor == kInvalidSite) break;
    std::vector<int>& from = holdings[donor];
    stolen[donor].push_back(from.front());
    from.erase(from.begin());
  }

  std::vector<Move> moves;
  for (auto& [s, shards] : stolen) moves.push_back(Move{s, std::move(shards), false});
  return moves;
}

void Controller::Fence(const ReconfigOp& op) {
  ShardMap next = directory_->Current();
  next.epoch += 1;
  for (const Move& m : moves_) {
    for (int shard : m.shards) next.shards[shard].wedged = true;
  }
  directory_->Install(std::move(next));
  if (metrics_ != nullptr) ++metrics_->reconfig_started;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kReconfigBegin;
    e.site = op.kind == ReconfigKind::kAddSite ? to_ : op.site;
    e.peer = to_;
    e.value = directory_->epoch();
    e.detail = ReconfigKindName(op.kind);
    tracer_->Record(std::move(e));
  }
}

void Controller::PollDrain() {
  bool all_done = true;
  const bool deadline = drained_for_ >= config_.drain_deadline;
  for (Move& m : moves_) {
    if (m.done) continue;
    if (!host_->SiteUsable(m.from) || !host_->SiteUsable(to_)) {
      all_done = false;
      continue;
    }
    const bool quiescent =
        host_->QuiescentForShards(m.from, m.shards, drain_coordinator_);
    const bool force =
        deadline && host_->CanForceTransfer(m.from, m.shards, drain_coordinator_);
    if (!quiescent && !force) {
      all_done = false;
      continue;
    }
    const int64_t rows = host_->TransferShards(m.from, to_, m.shards);
    // Install ownership in the same virtual instant as the transfer: a map
    // that still names the donor after the rows moved would let a straggling
    // coordinator execute DML at the old owner (lost update) or trip the
    // stale-commit check on a legitimately adopted transaction.
    ShardMap next = directory_->Current();
    next.epoch += 1;
    for (int shard : m.shards) {
      next.shards[shard].owner = to_;
      next.shards[shard].wedged = false;
    }
    directory_->Install(std::move(next));
    if (metrics_ != nullptr) metrics_->reconfig_rows_moved += rows;
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kReconfigHandoff;
      e.site = m.from;
      e.peer = to_;
      e.value = rows;
      tracer_->Record(std::move(e));
    }
    m.done = true;
  }
  if (!all_done) {
    drained_for_ += config_.drain_poll;
    host_->Schedule(config_.drain_poll, [this] { PollDrain(); });
    return;
  }
  Finish();
}

void Controller::Finish() {
  // Ownership of every moved shard was already installed move-by-move in
  // PollDrain; only retirement bookkeeping remains.
  if (op_.kind != ReconfigKind::kAddSite) {
    directory_->SetForward(op_.site, to_);
    host_->DeactivateSite(op_.site);
  }
  if (metrics_ != nullptr) ++metrics_->reconfig_completed;
  if (tracer_ != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kReconfigDone;
    e.site = op_.kind == ReconfigKind::kAddSite ? to_ : op_.site;
    e.peer = to_;
    e.value = directory_->epoch();
    e.detail = ReconfigKindName(op_.kind);
    tracer_->Record(std::move(e));
  }
  busy_ = false;
  if (done_) {
    auto cb = std::move(done_);
    done_ = {};
    cb(Status::Ok());
  }
}

}  // namespace hermes::shard
