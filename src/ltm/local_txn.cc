#include "ltm/local_txn.h"

// LocalTxn is a passive aggregate; this file anchors the header in the build.
