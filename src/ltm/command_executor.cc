#include "ltm/command_executor.h"

#include <algorithm>
#include <cassert>

#include "common/str.h"
#include "ltm/ltm.h"

namespace hermes::ltm {

CommandExecutor::CommandExecutor(Ltm* ltm, LtmTxnHandle txn, db::Command cmd,
                                 Callback cb)
    : ltm_(ltm), txn_(txn), cmd_(std::move(cmd)), cb_(std::move(cb)) {}

void CommandExecutor::Start() { LockRound(); }

void CommandExecutor::Cancel() {
  cancelled_ = true;
  if (apply_event_ != sim::kInvalidEvent) {
    ltm_->loop()->Cancel(apply_event_);
    apply_event_ = sim::kInvalidEvent;
  }
  // Pending lock waits are cancelled by the LTM via LockManager::CancelWaits.
}

void CommandExecutor::FailNow(const Status& status) {
  assert(!status.ok());
  Finish(status, db::CmdResult{});
}

void CommandExecutor::Finish(const Status& status, db::CmdResult result) {
  if (finished_) return;
  finished_ = true;
  Callback cb = std::move(cb_);
  ltm_->loop()->ScheduleAfter(
      0, [cb = std::move(cb), status, result = std::move(result)]() {
        cb(status, result);
      });
  ltm_->OnExecutorDone(txn_);
}

void CommandExecutor::AbortTxn(const Status& reason) {
  // Keep *this alive across the abort (the LTM drops its reference).
  auto self = shared_from_this();
  ltm_->UnilateralAbortInternal(txn_, reason);
}

LockMode CommandExecutor::NeededMode() const {
  return db::CommandWrites(cmd_) ? LockMode::kExclusive : LockMode::kShared;
}

bool CommandExecutor::NeedsDluGate() const {
  if (!db::CommandWrites(cmd_)) return false;
  const LocalTxn* txn = ltm_->Find(txn_);
  return txn != nullptr && !txn->global();
}

std::vector<int64_t> CommandExecutor::ComputeKeys() const {
  if (const auto* ins = std::get_if<db::InsertCmd>(&cmd_)) {
    return {ins->key};
  }
  const db::TableId table_id = db::CommandTable(cmd_);
  const db::Table* table = ltm_->storage()->GetTable(table_id);
  if (table == nullptr) return {};
  if (const auto* sel = std::get_if<db::SelectCmd>(&cmd_)) {
    return table->Match(sel->pred);
  }
  if (const auto* upd = std::get_if<db::UpdateCmd>(&cmd_)) {
    return table->Match(upd->pred);
  }
  return table->Match(std::get<db::DeleteCmd>(cmd_).pred);
}

void CommandExecutor::LockRound() {
  if (cancelled_ || finished_) return;
  if (++rounds_ > kMaxLockRounds) {
    const Status reason =
        Status::Internal("command could not stabilize its lock set");
    Finish(reason, db::CmdResult{});
    AbortTxn(reason);
    return;
  }
  if (ltm_->storage()->GetTable(db::CommandTable(cmd_)) == nullptr) {
    const Status reason =
        Status::NotFound(StrCat("table ", db::CommandTable(cmd_)));
    Finish(reason, db::CmdResult{});
    AbortTxn(reason);
    return;
  }
  to_lock_.clear();
  for (int64_t key : ComputeKeys()) {
    if (locked_.count(key) == 0) to_lock_.push_back(key);
  }
  if (to_lock_.empty()) {
    ScheduleApply();
    return;
  }
  std::sort(to_lock_.begin(), to_lock_.end());
  LockNextKey();
}

void CommandExecutor::LockNextKey() {
  if (cancelled_ || finished_) return;
  if (to_lock_.empty()) {
    // Revalidate the match under the locks just taken.
    LockRound();
    return;
  }
  const int64_t key = to_lock_.back();
  const ItemId item =
      ltm_->storage()->MakeItemId(db::CommandTable(cmd_), key);
  std::weak_ptr<CommandExecutor> wp = weak_from_this();
  if (NeedsDluGate() && ltm_->IsBound(item)) {
    // DLU: a local transaction's update of bound data waits until the item
    // is unbound (or times out / is rejected).
    ltm_->WaitUnbound(item, [wp, key](Status s) {
      if (auto self = wp.lock()) self->OnDluCleared(key, s);
    });
    return;
  }
  ltm_->lock_manager().Acquire(txn_, item, NeededMode(),
                               [wp, key](Status s) {
                                 if (auto self = wp.lock()) {
                                   self->OnLockGranted(key, s);
                                 }
                               });
}

void CommandExecutor::OnDluCleared(int64_t key, const Status& s) {
  if (cancelled_ || finished_) return;
  if (!s.ok()) {
    Finish(s, db::CmdResult{});
    AbortTxn(s);
    return;
  }
  const ItemId item =
      ltm_->storage()->MakeItemId(db::CommandTable(cmd_), key);
  std::weak_ptr<CommandExecutor> wp = weak_from_this();
  ltm_->lock_manager().Acquire(txn_, item, NeededMode(),
                               [wp, key](Status st) {
                                 if (auto self = wp.lock()) {
                                   self->OnLockGranted(key, st);
                                 }
                               });
}

void CommandExecutor::OnLockGranted(int64_t key, const Status& s) {
  if (cancelled_ || finished_) return;
  if (!s.ok()) {
    // Lock wait timeout: the LDBS resolves (potential) deadlocks by
    // unilaterally aborting the requester.
    const Status reason = Status::Timeout(
        StrCat("lock wait timeout on key ", key, " of ",
               db::CommandToString(cmd_)));
    Finish(reason, db::CmdResult{});
    AbortTxn(reason);
    return;
  }
  const ItemId item =
      ltm_->storage()->MakeItemId(db::CommandTable(cmd_), key);
  if (NeedsDluGate() && ltm_->IsBound(item)) {
    // The item became bound while we were waiting for the lock (a global
    // subtransaction prepared in between). Back out this one untouched lock
    // and re-enter the DLU gate; releasing is 2PL-safe because no data was
    // accessed under the lock yet.
    ltm_->lock_manager().Release(txn_, item);
    std::weak_ptr<CommandExecutor> wp = weak_from_this();
    ltm_->WaitUnbound(item, [wp, key](Status st) {
      if (auto self = wp.lock()) self->OnDluCleared(key, st);
    });
    return;
  }
  locked_.insert(key);
  assert(!to_lock_.empty() && to_lock_.back() == key);
  to_lock_.pop_back();
  LockNextKey();
}

void CommandExecutor::ScheduleApply() {
  if (cancelled_ || finished_) return;
  const sim::Duration delay =
      ltm_->config().command_latency +
      ltm_->config().per_row_latency * static_cast<int64_t>(locked_.size());
  std::weak_ptr<CommandExecutor> wp = weak_from_this();
  apply_event_ = ltm_->loop()->ScheduleAfter(delay, [wp]() {
    if (auto self = wp.lock()) {
      self->apply_event_ = sim::kInvalidEvent;
      self->Apply();
    }
  });
}

void CommandExecutor::Apply() {
  if (cancelled_ || finished_) return;
  // The database may have changed while the processing delay elapsed; if
  // new rows now match, go lock them too.
  for (int64_t key : ComputeKeys()) {
    if (locked_.count(key) == 0) {
      LockRound();
      return;
    }
  }
  LocalTxn* txn = ltm_->FindMutable(txn_);
  assert(txn != nullptr && txn->state == TxnState::kActive);
  db::Table* table = ltm_->storage()->GetTable(db::CommandTable(cmd_));
  assert(table != nullptr);
  history::Recorder* rec = ltm_->recorder();
  db::CmdResult result;

  auto make_tag = [&]() {
    return db::VersionTag{txn->id, txn->next_write_seq++};
  };
  auto record_read = [&](int64_t key, const db::RowEntry& entry) {
    const ItemId item = ltm_->storage()->MakeItemId(table->id(), key);
    txn->read_set.insert(item);
    rec->RecordRead(txn->id, item, entry.version);
  };
  auto record_write = [&](int64_t key, const db::VersionTag& tag,
                          bool is_delete) {
    const ItemId item = ltm_->storage()->MakeItemId(table->id(), key);
    txn->write_set.insert(item);
    rec->RecordWrite(txn->id, item, tag, is_delete);
  };

  std::vector<ItemId> shared_locked;  // for early release (non-rigorous)

  if (const auto* sel = std::get_if<db::SelectCmd>(&cmd_)) {
    for (int64_t key : table->Match(sel->pred)) {
      const db::RowEntry* entry = table->Get(key);
      assert(entry != nullptr && entry->live());
      record_read(key, *entry);
      result.rows.emplace_back(key, *entry->row);
      shared_locked.push_back(
          ltm_->storage()->MakeItemId(table->id(), key));
    }
    result.affected = static_cast<int64_t>(result.rows.size());
  } else if (const auto* ins = std::get_if<db::InsertCmd>(&cmd_)) {
    const db::RowEntry* existing = table->Get(ins->key);
    if (existing != nullptr && existing->live() && !ins->upsert) {
      const Status reason = Status::AlreadyExists(
          StrCat("key ", ins->key, " in table ", table->name()));
      Finish(reason, db::CmdResult{});
      AbortTxn(reason);
      return;
    }
    const db::VersionTag tag = make_tag();
    std::optional<db::RowEntry> before =
        table->Put(ins->key, db::RowEntry{ins->row, tag});
    txn->undo.push_back(UndoRecord{table->id(), ins->key, std::move(before)});
    record_write(ins->key, tag, /*is_delete=*/false);
    result.affected = 1;
  } else if (const auto* upd = std::get_if<db::UpdateCmd>(&cmd_)) {
    for (int64_t key : table->Match(upd->pred)) {
      const db::RowEntry* entry = table->Get(key);
      assert(entry != nullptr && entry->live());
      record_read(key, *entry);
      db::Row new_row = *entry->row;
      for (const db::Assignment& a : upd->sets) {
        if (a.kind == db::Assignment::Kind::kSet) {
          new_row.Set(a.field, a.operand);
        } else {
          const db::Value* cur = new_row.Get(a.field);
          auto sum = db::AddValues(cur ? *cur : db::Value{}, a.operand);
          if (!sum.has_value()) {
            const Status reason = Status::InvalidArgument(
                StrCat("non-numeric ADD on field ", a.field));
            Finish(reason, db::CmdResult{});
            AbortTxn(reason);
            return;
          }
          new_row.Set(a.field, *sum);
        }
      }
      const db::VersionTag tag = make_tag();
      std::optional<db::RowEntry> before =
          table->Put(key, db::RowEntry{new_row, tag});
      txn->undo.push_back(UndoRecord{table->id(), key, std::move(before)});
      record_write(key, tag, /*is_delete=*/false);
      result.rows.emplace_back(key, std::move(new_row));
      ++result.affected;
    }
  } else {
    const auto& del = std::get<db::DeleteCmd>(cmd_);
    for (int64_t key : table->Match(del.pred)) {
      const db::RowEntry* entry = table->Get(key);
      assert(entry != nullptr && entry->live());
      record_read(key, *entry);
      const db::VersionTag tag = make_tag();
      std::optional<db::RowEntry> before = table->Delete(key, tag);
      txn->undo.push_back(UndoRecord{table->id(), key, std::move(before)});
      record_write(key, tag, /*is_delete=*/true);
      ++result.affected;
    }
  }

  // Non-rigorous ablation: release read locks as soon as the command is
  // done. This violates SRS and lets the negative experiments demonstrate
  // why the certifier requires rigorous LDBSs.
  if (!ltm_->config().rigorous) {
    for (const ItemId& item : shared_locked) {
      if (txn->write_set.count(item) == 0) {
        ltm_->lock_manager().Release(txn_, item);
      }
    }
  }

  Finish(Status::Ok(), std::move(result));
}

}  // namespace hermes::ltm
