// Asynchronous execution of one DML command inside the LTM.
//
// This is the paper's deterministic decomposition function D(O^i, S^i) made
// operational: a command is matched against the current database state,
// item locks are acquired for exactly the matched rows (ascending key
// order), matching is revalidated after each wait, and the elementary R/W
// operations are then applied and recorded. Because matching depends on
// state, a resubmitted command may legitimately decompose differently than
// the original — the effect at the heart of the global view distortion.

#ifndef HERMES_LTM_COMMAND_EXECUTOR_H_
#define HERMES_LTM_COMMAND_EXECUTOR_H_

#include <memory>
#include <set>
#include <vector>

#include "common/status.h"
#include "db/command.h"
#include "ltm/local_txn.h"
#include "ltm/lock_manager.h"

namespace hermes::ltm {

class Ltm;

class CommandExecutor : public std::enable_shared_from_this<CommandExecutor> {
 public:
  using Callback = std::function<void(const Status&, const db::CmdResult&)>;

  CommandExecutor(Ltm* ltm, LtmTxnHandle txn, db::Command cmd, Callback cb);

  CommandExecutor(const CommandExecutor&) = delete;
  CommandExecutor& operator=(const CommandExecutor&) = delete;

  void Start();

  // Detaches the executor: no further callbacks fire, pending waits and
  // events are cancelled. Called by the LTM when the transaction dies.
  void Cancel();

  // Completes with an error without touching the transaction (the LTM abort
  // path uses this to fail the in-flight command).
  void FailNow(const Status& status);

 private:
  static constexpr int kMaxLockRounds = 32;

  // One matching + locking round; re-entered until the matched key set is
  // fully locked and stable.
  void LockRound();
  void LockNextKey();
  void OnDluCleared(int64_t key, const Status& s);
  void OnLockGranted(int64_t key, const Status& s);
  void ScheduleApply();
  void Apply();
  void Finish(const Status& status, db::CmdResult result);
  void AbortTxn(const Status& reason);

  // Keys the command currently matches (insert: the target key).
  std::vector<int64_t> ComputeKeys() const;
  LockMode NeededMode() const;
  // DLU applies to updates performed by local transactions only.
  bool NeedsDluGate() const;

  Ltm* ltm_;
  LtmTxnHandle txn_;
  db::Command cmd_;
  Callback cb_;

  bool cancelled_ = false;
  bool finished_ = false;
  int rounds_ = 0;
  std::vector<int64_t> to_lock_;
  std::set<int64_t> locked_;
  sim::EventId apply_event_ = sim::kInvalidEvent;
};

}  // namespace hermes::ltm

#endif  // HERMES_LTM_COMMAND_EXECUTOR_H_
