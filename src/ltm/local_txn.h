// Internal per-transaction state of the LTM.

#ifndef HERMES_LTM_LOCAL_TXN_H_
#define HERMES_LTM_LOCAL_TXN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "db/table.h"
#include "sim/event_loop.h"

namespace hermes::ltm {

class CommandExecutor;

// One undo-log entry: the complete before-state of a row slot. Rolling back
// in reverse order restores exact before-images (the RR assumption).
struct UndoRecord {
  db::TableId table = -1;
  int64_t key = -1;
  // nullopt = the slot did not exist before (undo of a first-time insert).
  std::optional<db::RowEntry> before;
};

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

struct LocalTxn {
  LtmTxnHandle handle = kInvalidLtmTxn;
  // Identity in the global history model: a local transaction L_o or the
  // j-th local subtransaction T^s_kj of a global transaction.
  SubTxnId id;
  TxnState state = TxnState::kActive;
  sim::Time begin_time = 0;

  std::vector<UndoRecord> undo;
  // Items read/written (for the agent's bound-data set and diagnostics).
  std::set<ItemId> read_set;
  std::set<ItemId> write_set;
  // Next write sequence number for version provenance.
  uint64_t next_write_seq = 1;

  // Command currently executing, if any (at most one at a time).
  std::shared_ptr<CommandExecutor> executor;

  bool global() const { return id.txn.global(); }
};

}  // namespace hermes::ltm

#endif  // HERMES_LTM_LOCAL_TXN_H_
