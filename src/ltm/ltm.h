// The Local Transaction Manager — the transactional engine of one
// autonomous LDBS.
//
// The LTM satisfies the paper's assumptions about participating database
// systems:
//   DDF — commands decompose deterministically into elementary R/W ops on
//         concrete rows (see CommandExecutor);
//   RR  — aborts restore exact before-images from the undo log;
//   RTT — re-executing the same commands over the same values yields the
//         same results (the engine is purely state-deterministic);
//   SRS — with `rigorous=true` (default) the S2PL scheduler holds all locks
//         to transaction end, producing rigorous histories; the
//         non-rigorous ablation releases read locks early;
//   TW  — resubmitted subtransactions eventually succeed (lock waits time
//         out and are retried by the agent);
//   UAN — every abort the LDBS performs on its own (injected failure, lock
//         timeout, deadlock victim) is reported to the registered listener.
//
// The LTM offers only a single-phase commit interface — no prepared state —
// which is precisely why the 2PC Agent method exists.

#ifndef HERMES_LTM_LTM_H_
#define HERMES_LTM_LTM_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "db/command.h"
#include "db/storage.h"
#include "history/recorder.h"
#include "ltm/local_txn.h"
#include "ltm/lock_manager.h"
#include "sim/event_loop.h"
#include "trace/trace.h"

namespace hermes::ltm {

struct LtmConfig {
  SiteId site = 0;
  // SRS: hold all locks to transaction end. Disable only for the
  // "non-rigorous LDBS" negative experiments.
  bool rigorous = true;
  sim::Duration lock_wait_timeout = 500 * sim::kMillisecond;
  // Processing time per command, plus per touched row.
  sim::Duration command_latency = 50 * sim::kMicrosecond;
  sim::Duration per_row_latency = 5 * sim::kMicrosecond;
  // DLU: how long a local transaction's update may wait for bound data.
  sim::Duration dlu_wait_timeout = 2 * sim::kSecond;
  // If true, local updates of bound data are rejected immediately instead
  // of blocking.
  bool dlu_reject = false;
  // Optional wait-for-graph deadlock detection (the paper's 2CM assumes
  // timeout-only; detection is an ablation, see bench_deadlock).
  bool deadlock_detection = false;
  sim::Duration deadlock_check_interval = 50 * sim::kMillisecond;
};

struct LtmStats {
  int64_t begun = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t unilateral_aborts = 0;  // subset of aborted initiated by the LDBS
  int64_t injected_aborts = 0;
  int64_t lock_timeout_aborts = 0;
  int64_t deadlock_victim_aborts = 0;
  int64_t commands_executed = 0;
  int64_t dlu_waits = 0;
  int64_t dlu_rejections = 0;
};

class Ltm {
 public:
  using CommandCallback =
      std::function<void(const Status&, const db::CmdResult&)>;
  // (identity of the aborted subtransaction, its LTM handle)
  using UanListener = std::function<void(const SubTxnId&, LtmTxnHandle)>;

  // `tracer` may be null (tracing disabled).
  Ltm(const LtmConfig& config, sim::EventLoop* loop, db::Storage* storage,
      history::Recorder* recorder, trace::Tracer* tracer = nullptr);
  ~Ltm();

  Ltm(const Ltm&) = delete;
  Ltm& operator=(const Ltm&) = delete;

  SiteId site() const { return config_.site; }

  // --- Local interface (LI) ---------------------------------------------

  // Starts a transaction. `id` is the history-model identity (local
  // transaction or j-th local subtransaction of a global one).
  LtmTxnHandle Begin(const SubTxnId& id);

  // Executes one DML command; the callback fires asynchronously when the
  // command completes or the transaction dies. At most one command may be
  // in flight per transaction.
  void Execute(LtmTxnHandle txn, db::Command cmd, CommandCallback cb);

  // Single-phase commit. Fails with kAborted/kNotFound if the transaction
  // was already (unilaterally) aborted — the situation the agent handles by
  // resubmission.
  Status Commit(LtmTxnHandle txn);

  // Rollback requested by the client/agent (not a unilateral abort).
  Status Abort(LtmTxnHandle txn);

  // Failure injection: the LDBS unilaterally aborts the transaction, as
  // permitted by execution autonomy. Triggers the UAN listener.
  Status InjectUnilateralAbort(LtmTxnHandle txn);

  bool IsActive(LtmTxnHandle txn) const;
  const LocalTxn* Find(LtmTxnHandle txn) const;
  // Handles of all currently active transactions (site-crash support).
  std::vector<LtmTxnHandle> ActiveHandles() const;

  void SetUanListener(UanListener listener) {
    uan_listener_ = std::move(listener);
  }

  // --- DLU bound-data registry -------------------------------------------
  // Maintained by the co-located 2PC agent: while a global subtransaction is
  // prepared, the data it accessed are "bound"; local transactions may read
  // but not update them (paper's DLU assumption).

  void BindItems(const std::vector<ItemId>& items);
  void UnbindItems(const std::vector<ItemId>& items);
  // Drops all bindings and wakes DLU waiters (volatile state lost in a
  // site crash; the recovering agent re-binds after resubmission).
  void ClearBindings();
  bool IsBound(const ItemId& item) const { return bound_.count(item) != 0; }

  // --- accessors for the executor and tests -------------------------------

  const LtmConfig& config() const { return config_; }
  sim::EventLoop* loop() { return loop_; }
  db::Storage* storage() { return storage_; }
  history::Recorder* recorder() { return recorder_; }
  LockManager& lock_manager() { return locks_; }
  const LtmStats& stats() const { return stats_; }

  // Internal: abort driven by the engine itself (lock timeout, deadlock
  // victim, injected failure). Reported as unilateral via UAN when the
  // transaction belongs to a global transaction.
  void UnilateralAbortInternal(LtmTxnHandle txn, const Status& reason);

  // Internal: called by the executor when a local transaction's update hits
  // bound data. `cb` fires with OK once the item is unbound, kTimeout on
  // timeout, kRejected in dlu_reject mode.
  void WaitUnbound(const ItemId& item, std::function<void(Status)> cb);

  // Internal: executor lifecycle hooks.
  void OnExecutorDone(LtmTxnHandle txn);

 private:
  friend class CommandExecutor;

  LocalTxn* FindMutable(LtmTxnHandle txn);
  // Shared abort path; unilateral selects UAN notification.
  Status AbortInternal(LtmTxnHandle txn, bool unilateral,
                       const Status& reason);
  void RollbackUndo(LocalTxn& txn);
  void RunDeadlockDetection();

  LtmConfig config_;
  sim::EventLoop* loop_;
  db::Storage* storage_;
  history::Recorder* recorder_;
  trace::Tracer* tracer_;
  LockManager locks_;

  LtmTxnHandle next_handle_ = 1;
  std::map<LtmTxnHandle, std::unique_ptr<LocalTxn>> txns_;
  UanListener uan_listener_;

  std::set<ItemId> bound_;
  struct DluWaiter {
    ItemId item;
    std::function<void(Status)> cb;
    sim::EventId timeout_event;
  };
  std::map<ItemId, std::vector<std::shared_ptr<DluWaiter>>> dlu_waiters_;

  sim::EventId deadlock_timer_ = sim::kInvalidEvent;
  LtmStats stats_;
};

}  // namespace hermes::ltm

#endif  // HERMES_LTM_LTM_H_
