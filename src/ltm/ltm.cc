#include "ltm/ltm.h"

#include <cassert>

#include "common/str.h"
#include "ltm/command_executor.h"

namespace hermes::ltm {

Ltm::Ltm(const LtmConfig& config, sim::EventLoop* loop, db::Storage* storage,
         history::Recorder* recorder, trace::Tracer* tracer)
    : config_(config),
      loop_(loop),
      storage_(storage),
      recorder_(recorder),
      tracer_(tracer),
      locks_(LockManagerConfig{config.lock_wait_timeout}, loop) {
  assert(storage_->site() == config_.site);
  if (config_.deadlock_detection) {
    deadlock_timer_ = loop_->ScheduleAfter(
        config_.deadlock_check_interval, [this]() { RunDeadlockDetection(); });
  }
}

Ltm::~Ltm() {
  if (deadlock_timer_ != sim::kInvalidEvent) loop_->Cancel(deadlock_timer_);
}

LocalTxn* Ltm::FindMutable(LtmTxnHandle txn) {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : it->second.get();
}

const LocalTxn* Ltm::Find(LtmTxnHandle txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : it->second.get();
}

bool Ltm::IsActive(LtmTxnHandle txn) const {
  const LocalTxn* t = Find(txn);
  return t != nullptr && t->state == TxnState::kActive;
}

LtmTxnHandle Ltm::Begin(const SubTxnId& id) {
  auto txn = std::make_unique<LocalTxn>();
  txn->handle = next_handle_++;
  txn->id = id;
  txn->begin_time = loop_->Now();
  const LtmTxnHandle handle = txn->handle;
  txns_[handle] = std::move(txn);
  ++stats_.begun;
  return handle;
}

void Ltm::Execute(LtmTxnHandle handle, db::Command cmd, CommandCallback cb) {
  LocalTxn* txn = FindMutable(handle);
  if (txn == nullptr || txn->state != TxnState::kActive) {
    loop_->ScheduleAfter(0, [cb = std::move(cb)]() {
      cb(Status::Aborted("transaction is not active"), db::CmdResult{});
    });
    return;
  }
  if (txn->executor != nullptr) {
    loop_->ScheduleAfter(0, [cb = std::move(cb)]() {
      cb(Status::Rejected("a command is already in flight"), db::CmdResult{});
    });
    return;
  }
  ++stats_.commands_executed;
  txn->executor = std::make_shared<CommandExecutor>(this, handle,
                                                    std::move(cmd),
                                                    std::move(cb));
  txn->executor->Start();
}

void Ltm::OnExecutorDone(LtmTxnHandle handle) {
  LocalTxn* txn = FindMutable(handle);
  if (txn != nullptr) txn->executor.reset();
}

Status Ltm::Commit(LtmTxnHandle handle) {
  LocalTxn* txn = FindMutable(handle);
  if (txn == nullptr) return Status::NotFound("no such transaction");
  if (txn->state == TxnState::kAborted) {
    return Status::Aborted("transaction was aborted");
  }
  if (txn->state == TxnState::kCommitted) {
    return Status::Ok();  // idempotent
  }
  if (txn->executor != nullptr) {
    return Status::Rejected("commit with a command in flight");
  }
  txn->state = TxnState::kCommitted;
  txn->undo.clear();
  recorder_->RecordLocalCommit(txn->id, config_.site);
  locks_.ReleaseAll(handle);
  ++stats_.committed;
  return Status::Ok();
}

Status Ltm::Abort(LtmTxnHandle handle) {
  return AbortInternal(handle, /*unilateral=*/false,
                       Status::Aborted("rollback requested"));
}

Status Ltm::InjectUnilateralAbort(LtmTxnHandle handle) {
  ++stats_.injected_aborts;
  return AbortInternal(handle, /*unilateral=*/true,
                       Status::Unavailable("injected unilateral abort"));
}

void Ltm::UnilateralAbortInternal(LtmTxnHandle handle, const Status& reason) {
  if (reason.code() == StatusCode::kTimeout) ++stats_.lock_timeout_aborts;
  AbortInternal(handle, /*unilateral=*/true, reason);
}

void Ltm::RollbackUndo(LocalTxn& txn) {
  for (auto it = txn.undo.rbegin(); it != txn.undo.rend(); ++it) {
    db::Table* table = storage_->GetTable(it->table);
    assert(table != nullptr);
    table->Restore(it->key, std::move(it->before));
  }
  txn.undo.clear();
}

Status Ltm::AbortInternal(LtmTxnHandle handle, bool unilateral,
                          const Status& reason) {
  LocalTxn* txn = FindMutable(handle);
  if (txn == nullptr) return Status::NotFound("no such transaction");
  if (txn->state != TxnState::kActive) {
    return Status::Rejected(
        StrCat("transaction already ",
               txn->state == TxnState::kCommitted ? "committed" : "aborted"));
  }
  txn->state = TxnState::kAborted;
  // Fail the in-flight command, if any, then detach its executor.
  if (txn->executor != nullptr) {
    std::shared_ptr<CommandExecutor> executor = std::move(txn->executor);
    executor->FailNow(reason.ok() ? Status::Aborted("aborted") : reason);
    executor->Cancel();
  }
  RollbackUndo(*txn);
  locks_.ReleaseAll(handle);
  recorder_->RecordLocalAbort(txn->id, config_.site, unilateral);
  ++stats_.aborted;
  if (unilateral) {
    ++stats_.unilateral_aborts;
    if (tracer_ != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kUnilateralAbort;
      e.txn = txn->id.txn;
      e.site = config_.site;
      e.resubmission = txn->id.resubmission;
      e.ok = false;
      e.detail = reason.ToString();
      tracer_->Record(std::move(e));
    }
    if (txn->global() && uan_listener_) {
      // Deliver UAN asynchronously to avoid re-entrancy into the agent.
      const SubTxnId id = txn->id;
      auto listener = uan_listener_;
      loop_->ScheduleAfter(0, [listener, id, handle]() {
        listener(id, handle);
      });
    }
  }
  return Status::Ok();
}

std::vector<LtmTxnHandle> Ltm::ActiveHandles() const {
  std::vector<LtmTxnHandle> out;
  for (const auto& [handle, txn] : txns_) {
    if (txn->state == TxnState::kActive) out.push_back(handle);
  }
  return out;
}

void Ltm::ClearBindings() {
  std::vector<ItemId> items(bound_.begin(), bound_.end());
  UnbindItems(items);
}

void Ltm::BindItems(const std::vector<ItemId>& items) {
  for (const ItemId& item : items) bound_.insert(item);
}

void Ltm::UnbindItems(const std::vector<ItemId>& items) {
  for (const ItemId& item : items) {
    bound_.erase(item);
    auto it = dlu_waiters_.find(item);
    if (it == dlu_waiters_.end()) continue;
    auto waiters = std::move(it->second);
    dlu_waiters_.erase(it);
    for (auto& waiter : waiters) {
      if (waiter->cb == nullptr) continue;  // already timed out
      loop_->Cancel(waiter->timeout_event);
      auto cb = std::move(waiter->cb);
      loop_->ScheduleAfter(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    }
  }
}

void Ltm::WaitUnbound(const ItemId& item, std::function<void(Status)> cb) {
  if (bound_.count(item) == 0) {
    loop_->ScheduleAfter(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }
  if (config_.dlu_reject) {
    ++stats_.dlu_rejections;
    loop_->ScheduleAfter(0, [cb = std::move(cb)]() {
      cb(Status::Rejected("DLU: item is bound to a prepared transaction"));
    });
    return;
  }
  ++stats_.dlu_waits;
  auto waiter = std::make_shared<DluWaiter>();
  waiter->item = item;
  waiter->cb = std::move(cb);
  waiter->timeout_event =
      loop_->ScheduleAfter(config_.dlu_wait_timeout, [this, waiter]() {
        if (waiter->cb == nullptr) return;
        auto cb = std::move(waiter->cb);
        waiter->cb = nullptr;
        cb(Status::Timeout("DLU wait timeout"));
      });
  dlu_waiters_[item].push_back(std::move(waiter));
}

void Ltm::RunDeadlockDetection() {
  deadlock_timer_ = loop_->ScheduleAfter(config_.deadlock_check_interval,
                                         [this]() { RunDeadlockDetection(); });
  const auto edges = locks_.WaitForEdges();
  if (edges.empty()) return;
  // Wait-for graph cycle search; victim = youngest (largest handle) on the
  // first cycle found.
  std::map<LtmTxnHandle, std::vector<LtmTxnHandle>> adj;
  for (const auto& [waiter, holder] : edges) adj[waiter].push_back(holder);

  std::map<LtmTxnHandle, int> state;  // 0=unseen 1=in-progress 2=done
  std::vector<LtmTxnHandle> stack;
  LtmTxnHandle victim = kInvalidLtmTxn;

  std::function<bool(LtmTxnHandle)> dfs = [&](LtmTxnHandle node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    for (LtmTxnHandle next : adj[node]) {
      if (state[next] == 1) {
        auto start = std::find(stack.begin(), stack.end(), next);
        victim = *std::max_element(start, stack.end());
        return true;
      }
      if (state[next] == 0 && dfs(next)) return true;
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const auto& [node, unused] : adj) {
    if (state[node] == 0 && dfs(node)) break;
    stack.clear();
  }
  if (victim != kInvalidLtmTxn) {
    ++stats_.deadlock_victim_aborts;
    AbortInternal(victim, /*unilateral=*/true,
                  Status::Aborted("deadlock victim"));
  }
}

}  // namespace hermes::ltm
