#include "ltm/lock_manager.h"

#include <cassert>
#include <utility>

namespace hermes::ltm {

LockManager::LockManager(const LockManagerConfig& config,
                         sim::EventLoop* loop)
    : config_(config), loop_(loop) {}

bool LockManager::Compatible(const LockState& ls, LtmTxnHandle txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : ls.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

void LockManager::GrantNow(LtmTxnHandle txn, const ItemId& item,
                           LockMode mode, GrantCallback cb) {
  LockState& ls = locks_[item];
  auto it = ls.holders.find(txn);
  if (it == ls.holders.end()) {
    ls.holders[txn] = mode;
  } else if (mode == LockMode::kExclusive) {
    it->second = LockMode::kExclusive;  // upgrade
  }
  held_[txn].insert(item);
  ++grants_;
  loop_->ScheduleAfter(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
}

void LockManager::Acquire(LtmTxnHandle txn, const ItemId& item, LockMode mode,
                          GrantCallback cb) {
  LockState& ls = locks_[item];
  auto held_it = ls.holders.find(txn);
  const bool holds_any = held_it != ls.holders.end();
  const bool holds_x =
      holds_any && held_it->second == LockMode::kExclusive;

  // Already sufficient.
  if (holds_x || (holds_any && mode == LockMode::kShared)) {
    ++grants_;
    loop_->ScheduleAfter(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }

  const bool upgrade = holds_any;  // holds S, wants X

  // Immediate grant only when compatible with holders and not jumping an
  // earlier waiter (upgrades may jump the queue — standard treatment that
  // keeps upgraders from deadlocking behind newcomers).
  const bool queue_blocks = !upgrade && !ls.queue.empty();
  if (!queue_blocks && Compatible(ls, txn, mode)) {
    GrantNow(txn, item, mode, std::move(cb));
    return;
  }

  // Enqueue; upgrades go in front of non-upgrades.
  ++waits_;
  Waiter w{txn, mode, std::move(cb), sim::kInvalidEvent, upgrade};
  w.timeout_event = loop_->ScheduleAfter(
      config_.wait_timeout, [this, item, txn]() { OnWaitTimeout(item, txn); });
  if (upgrade) {
    auto pos = ls.queue.begin();
    while (pos != ls.queue.end() && pos->upgrade) ++pos;
    ls.queue.insert(pos, std::move(w));
  } else {
    ls.queue.push_back(std::move(w));
  }
  waiting_[txn].insert(item);
}

void LockManager::OnWaitTimeout(const ItemId& item, LtmTxnHandle txn) {
  auto lit = locks_.find(item);
  if (lit == locks_.end()) return;
  LockState& ls = lit->second;
  for (auto it = ls.queue.begin(); it != ls.queue.end(); ++it) {
    if (it->txn == txn) {
      GrantCallback cb = std::move(it->cb);
      ls.queue.erase(it);
      auto wit = waiting_.find(txn);
      if (wit != waiting_.end()) {
        wit->second.erase(item);
        if (wit->second.empty()) waiting_.erase(wit);
      }
      ++timeouts_;
      cb(Status::Timeout("lock wait timeout"));
      // The queue head may now be grantable (e.g. the timed-out waiter was
      // an incompatible head blocking compatible followers).
      ProcessQueue(item);
      return;
    }
  }
}

void LockManager::ProcessQueue(const ItemId& item) {
  auto lit = locks_.find(item);
  if (lit == locks_.end()) return;
  LockState& ls = lit->second;
  bool granted_any = true;
  while (granted_any && !ls.queue.empty()) {
    granted_any = false;
    // Upgrades first (they sit at the front by construction).
    Waiter& head = ls.queue.front();
    if (Compatible(ls, head.txn, head.mode)) {
      Waiter w = std::move(head);
      ls.queue.pop_front();
      loop_->Cancel(w.timeout_event);
      auto wit = waiting_.find(w.txn);
      if (wit != waiting_.end()) {
        wit->second.erase(item);
        if (wit->second.empty()) waiting_.erase(wit);
      }
      GrantNow(w.txn, item, w.mode, std::move(w.cb));
      granted_any = true;
      continue;
    }
    // Head not grantable: shared waiters behind a blocked upgrade/exclusive
    // head stay blocked (FIFO fairness, prevents writer starvation).
  }
  if (ls.holders.empty() && ls.queue.empty()) locks_.erase(lit);
}

void LockManager::CancelWaits(LtmTxnHandle txn) {
  auto wit = waiting_.find(txn);
  if (wit == waiting_.end()) return;
  const std::set<ItemId> items = std::move(wit->second);
  waiting_.erase(wit);
  for (const ItemId& item : items) {
    auto lit = locks_.find(item);
    if (lit == locks_.end()) continue;
    LockState& ls = lit->second;
    for (auto it = ls.queue.begin(); it != ls.queue.end();) {
      if (it->txn == txn) {
        loop_->Cancel(it->timeout_event);
        it = ls.queue.erase(it);
      } else {
        ++it;
      }
    }
    ProcessQueue(item);
  }
}

void LockManager::ReleaseAll(LtmTxnHandle txn) {
  CancelWaits(txn);
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  const std::set<ItemId> items = std::move(hit->second);
  held_.erase(hit);
  for (const ItemId& item : items) {
    auto lit = locks_.find(item);
    if (lit == locks_.end()) continue;
    lit->second.holders.erase(txn);
    ProcessQueue(item);
  }
}

void LockManager::Release(LtmTxnHandle txn, const ItemId& item) {
  auto lit = locks_.find(item);
  if (lit == locks_.end()) return;
  if (lit->second.holders.erase(txn) == 0) return;
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    hit->second.erase(item);
    if (hit->second.empty()) held_.erase(hit);
  }
  ProcessQueue(item);
}

bool LockManager::Holds(LtmTxnHandle txn, const ItemId& item,
                        LockMode mode) const {
  auto lit = locks_.find(item);
  if (lit == locks_.end()) return false;
  auto it = lit->second.holders.find(txn);
  if (it == lit->second.holders.end()) return false;
  return mode == LockMode::kShared || it->second == LockMode::kExclusive;
}

std::vector<std::pair<LtmTxnHandle, LtmTxnHandle>>
LockManager::WaitForEdges() const {
  std::vector<std::pair<LtmTxnHandle, LtmTxnHandle>> edges;
  for (const auto& [item, ls] : locks_) {
    for (size_t i = 0; i < ls.queue.size(); ++i) {
      const Waiter& w = ls.queue[i];
      // Waits for every incompatible holder...
      for (const auto& [holder, held_mode] : ls.holders) {
        if (holder == w.txn) continue;
        if (w.mode == LockMode::kExclusive ||
            held_mode == LockMode::kExclusive) {
          edges.emplace_back(w.txn, holder);
        }
      }
      // ...and for incompatible earlier waiters (queue order is honored).
      for (size_t j = 0; j < i; ++j) {
        const Waiter& earlier = ls.queue[j];
        if (earlier.txn == w.txn) continue;
        if (w.mode == LockMode::kExclusive ||
            earlier.mode == LockMode::kExclusive) {
          edges.emplace_back(w.txn, earlier.txn);
        }
      }
    }
  }
  return edges;
}

}  // namespace hermes::ltm
