// Asynchronous item-level lock manager implementing strict two-phase
// locking. With all locks (shared and exclusive) held until transaction end
// the produced local histories are *rigorous* (SRS assumption of the paper):
// serializable, strict, and no item is overwritten while an uncommitted
// transaction has read it.
//
// Grant callbacks always fire asynchronously via the event loop, keeping
// execution order deterministic and re-entrancy-free.

#ifndef HERMES_LTM_LOCK_MANAGER_H_
#define HERMES_LTM_LOCK_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "sim/event_loop.h"

namespace hermes::ltm {

enum class LockMode : uint8_t { kShared, kExclusive };

struct LockManagerConfig {
  // A waiter that is not granted within this duration times out; the caller
  // is expected to abort the transaction (the paper's 2CM assumes
  // timeout-based deadlock resolution).
  sim::Duration wait_timeout = 500 * sim::kMillisecond;
};

class LockManager {
 public:
  // Invoked with OK when granted, kTimeout when the wait timed out.
  using GrantCallback = std::function<void(Status)>;

  LockManager(const LockManagerConfig& config, sim::EventLoop* loop);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Requests `mode` on `item` for `txn`. Re-acquisition of an already-held
  // (or stronger) lock succeeds immediately; S->X upgrades are supported and
  // are granted before ordinary waiters.
  void Acquire(LtmTxnHandle txn, const ItemId& item, LockMode mode,
               GrantCallback cb);

  // Releases everything `txn` holds and cancels its pending waits (without
  // invoking their callbacks). Waiters unblocked by the release are granted.
  void ReleaseAll(LtmTxnHandle txn);

  // Cancels `txn`'s pending waits only (callbacks are dropped, not called).
  void CancelWaits(LtmTxnHandle txn);

  // Releases one specific lock (used by the non-rigorous ablation scheduler
  // that gives up read locks early).
  void Release(LtmTxnHandle txn, const ItemId& item);

  bool Holds(LtmTxnHandle txn, const ItemId& item, LockMode mode) const;

  // Wait-for edges (waiter -> blocking holder) for deadlock detection.
  std::vector<std::pair<LtmTxnHandle, LtmTxnHandle>> WaitForEdges() const;

  int64_t grants() const { return grants_; }
  int64_t waits() const { return waits_; }
  int64_t timeouts() const { return timeouts_; }

 private:
  struct Waiter {
    LtmTxnHandle txn;
    LockMode mode;
    GrantCallback cb;
    sim::EventId timeout_event;
    bool upgrade;  // txn already holds kShared
  };
  struct LockState {
    std::map<LtmTxnHandle, LockMode> holders;
    std::deque<Waiter> queue;
  };

  // True if `txn` could hold `mode` given current holders (ignoring queue).
  static bool Compatible(const LockState& ls, LtmTxnHandle txn,
                         LockMode mode);

  void GrantNow(LtmTxnHandle txn, const ItemId& item, LockMode mode,
                GrantCallback cb);
  // Grants as many queued waiters as possible after a release.
  void ProcessQueue(const ItemId& item);
  void OnWaitTimeout(const ItemId& item, LtmTxnHandle txn);

  LockManagerConfig config_;
  sim::EventLoop* loop_;
  std::map<ItemId, LockState> locks_;
  // Reverse indexes.
  std::map<LtmTxnHandle, std::set<ItemId>> held_;
  std::map<LtmTxnHandle, std::set<ItemId>> waiting_;
  int64_t grants_ = 0;
  int64_t waits_ = 0;
  int64_t timeouts_ = 0;
};

}  // namespace hermes::ltm

#endif  // HERMES_LTM_LOCK_MANAGER_H_
