// Attributes each global transaction's end-to-end virtual latency to 2PC
// phases, from the span forest.
//
// The coordinator timeline of a committed transaction is cut at the phase
// boundaries the spans expose (last DML reply, PREPARE fan-out, last vote,
// decision fan-out, last ACK) and every microsecond between submission and
// completion is assigned to exactly one bucket:
//
//   dml       executing DML steps at the participants
//   prepare   PREPARE -> vote round-trips (minus the certification work)
//   certify   agent-side certification (longest participant verdict)
//   consensus Paxos Commit acceptor round (votes in -> outcome chosen);
//             always 0 under 2PC
//   blocked   votes all in but no decision out yet (coordinator crash /
//             decision-log force-write window); under Paxos Commit the
//             part of that window after the outcome was chosen
//   decision  decision -> ACK round-trips
//   retx_wait tail of a phase spent waiting for a retransmitted message
//   other     submission bookkeeping and inter-phase gaps
//
// The buckets partition the latency exactly: their sum equals the
// transaction's end-to-end virtual time (asserted in tests). Prepared
// blocking windows at the *agents* (READY -> local commit/abort) are
// reported separately, since they overlap the coordinator's decision phase
// rather than extend it.

#ifndef HERMES_TRACE_CRITICAL_PATH_H_
#define HERMES_TRACE_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/histogram.h"
#include "trace/span.h"

namespace hermes::trace {

// Virtual microseconds per phase; the fields sum to `total`.
struct PhaseBreakdown {
  int64_t dml = 0;
  int64_t prepare = 0;
  int64_t certify = 0;
  int64_t consensus = 0;
  int64_t decision = 0;
  int64_t blocked = 0;
  int64_t retx_wait = 0;
  int64_t other = 0;
  int64_t total = 0;

  int64_t Sum() const {
    return dml + prepare + certify + consensus + decision + blocked +
           retx_wait + other;
  }
  void Add(const PhaseBreakdown& o);

  friend bool operator==(const PhaseBreakdown& a,
                         const PhaseBreakdown& b) = default;
};

struct TxnCriticalPath {
  TxnId txn;
  bool committed = false;
  PhaseBreakdown phases;
  // Participant whose PREPARE -> vote round-trip finished last (the vote
  // the coordinator actually waited for); kInvalidSite without votes.
  SiteId critical_prepare_site = kInvalidSite;

  std::string ToString() const;
};

// Prepared blocking windows (READY -> local commit/rollback) across all
// agents, the paper's chief blocking cost.
struct BlockingWindowStats {
  int64_t windows = 0;       // closed windows observed
  int64_t open_windows = 0;  // still open at trace end (crash orphans)
  int64_t total_us = 0;
  int64_t max_us = 0;
  int64_t inquiries = 0;  // INQUIRY probes sent from inside a window
  Histogram hist;

  int64_t MeanUs() const { return windows > 0 ? total_us / windows : 0; }
  std::string ToString() const;
};

struct CriticalPathReport {
  // Finished transactions in trace order (committed and aborted).
  std::vector<TxnCriticalPath> txns;
  // Sum of phase breakdowns over committed transactions only.
  PhaseBreakdown committed_total;
  int64_t committed_txns = 0;
  int64_t aborted_txns = 0;
  int64_t unfinished_txns = 0;
  BlockingWindowStats blocking;

  const TxnCriticalPath* Find(const TxnId& txn) const;
  // Phase table (totals, means, shares) plus the blocking-window summary.
  std::string ToString() const;
};

CriticalPathReport AnalyzeCriticalPath(const SpanForest& forest);

// Streams the tracer's stored events (either backend) into a forest and
// analyzes it — no event vector or JSONL string is materialized.
CriticalPathReport AnalyzeCriticalPath(const Tracer& tracer);

}  // namespace hermes::trace

#endif  // HERMES_TRACE_CRITICAL_PATH_H_
