// Causal span trees folded from the flat trace event stream.
//
// A Tracer records *events*; this module reconstructs the *intervals*
// between them and arranges them causally: one root span per global
// transaction (coordinator submission -> global decision), with child
// spans for each participant's DML round-trips, the PREPARE -> vote
// round-trip, the agent-side certification (PREPARE arrival -> READY /
// REFUSE verdict), the prepared blocking window (certification READY ->
// local commit/rollback, the interval Gray & Lamport identify as 2PC's
// blocking cost), the decision -> ACK round-trip, and every resubmitted
// local incarnation T^s_kj linked to its predecessor. Under Paxos Commit
// an additional consensus span covers each deciding node's acceptor
// round (begin or election -> outcome chosen). Instant happenings
// inside a span (INQUIRY probes, retransmissions, unilateral aborts)
// attach to it as notes.
//
// Construction is a single forward pass over the events in trace order,
// so the forest — and every export derived from it — is byte-identical
// for byte-identical traces: same seed => same span tree, serially or on
// N harness workers.

#ifndef HERMES_TRACE_SPAN_H_
#define HERMES_TRACE_SPAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace hermes::trace {

enum class SpanKind : uint8_t {
  kTxn,            // whole global transaction at its coordinator
  kDml,            // per-site DML window: first step sent .. last reply
  kPrepare,        // coordinator view: PREPARE sent .. vote received
  kCertification,  // agent view: PREPARE arrived .. READY/REFUSE verdict
  kBlocked,        // prepared blocking window: READY .. local commit/abort
  kDecision,       // coordinator view: decision sent .. ACK received
  kResubmission,   // one resubmitted local incarnation T^s_kj
  kConsensus,      // Paxos Commit round: begin/elect .. outcome chosen
};

const char* SpanKindName(SpanKind kind);

// A timestamped marker inside a span (an event that has no duration of
// its own but explains the span's length: an inquiry probe, a
// retransmission, a unilateral abort, a fault firing).
struct SpanNote {
  sim::Time at = -1;
  std::string label;

  friend bool operator==(const SpanNote& a, const SpanNote& b) = default;
};

struct Span {
  int32_t id = -1;      // index in SpanForest::spans
  int32_t parent = -1;  // parent span index; -1 for roots
  SpanKind kind = SpanKind::kTxn;
  TxnId txn;
  SiteId site = kInvalidSite;  // participant (root: coordinating site)
  sim::Time begin = -1;
  sim::Time end = -1;  // -1 while open (crash orphan or truncated trace)
  bool ok = true;      // kind-specific outcome (committed / READY / ...)
  RefuseKind refuse = RefuseKind::kNone;
  int32_t resubmission = -1;  // incarnation index j for kResubmission
  int64_t value = -1;         // kind-specific scalar (attempt number, ...)
  // Previous incarnation of the same global subtransaction, chaining the
  // resubmission history T^s_k0 -> T^s_k1 -> ... across spans.
  int32_t prev = -1;
  std::vector<int32_t> children;  // child span ids, in creation order
  std::vector<SpanNote> notes;    // in trace order

  bool closed() const { return begin >= 0 && end >= 0; }
  sim::Duration length() const { return closed() ? end - begin : 0; }
};

// All spans of one trace. Spans are stored flat in creation order (which
// is trace order, hence deterministic); trees are expressed through the
// parent/children indices.
struct SpanForest {
  std::vector<Span> spans;
  std::vector<int32_t> roots;  // kTxn spans, in first-appearance order
  sim::Time trace_end = 0;     // timestamp of the last event

  const Span* Root(const TxnId& txn) const;

  // Indented per-transaction tree dump, one span per line with its
  // timing, outcome and notes. Deterministic: fixed field order, roots
  // and children in creation order.
  std::string ToString() const;
};

// Incremental span-forest construction: feed events one at a time (in
// trace order) and take the forest at the end. Attachable to a Tracer as
// a streaming fold, so a forest can be grown while the run executes —
// without ever materializing the event vector. Feeding the same events
// BuildSpanForest would receive yields an identical forest.
class SpanForestBuilder : public EventFold {
 public:
  SpanForestBuilder();
  ~SpanForestBuilder() override;

  SpanForestBuilder(const SpanForestBuilder&) = delete;
  SpanForestBuilder& operator=(const SpanForestBuilder&) = delete;

  void Add(const Event& e);
  void Fold(const Event& e) override { Add(e); }

  // Moves out the forest built so far (spans still open keep end = -1,
  // exactly as a truncated trace would) and resets the builder.
  SpanForest Finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Folds a flat event stream (as recorded by Tracer or parsed back from
// JSONL) into the span forest. Events without a valid global transaction
// id contribute only to trace_end.
SpanForest BuildSpanForest(const std::vector<Event>& events);

// Streams the tracer's stored events (either backend) into the forest
// without materializing a vector or a JSONL string.
SpanForest BuildSpanForest(const Tracer& tracer);

}  // namespace hermes::trace

#endif  // HERMES_TRACE_SPAN_H_
