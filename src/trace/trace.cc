#include "trace/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/str.h"
#include "trace/binary.h"
#include "trace/ring.h"

namespace hermes::trace {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnBegin:
      return "txn_begin";
    case EventKind::kStepStart:
      return "step_start";
    case EventKind::kStepEnd:
      return "step_end";
    case EventKind::kPrepareSend:
      return "prepare_send";
    case EventKind::kVoteRecv:
      return "vote_recv";
    case EventKind::kDecisionSend:
      return "decision_send";
    case EventKind::kAckRecv:
      return "ack_recv";
    case EventKind::kTxnEnd:
      return "txn_end";
    case EventKind::kPrepareRecv:
      return "prepare_recv";
    case EventKind::kCertReady:
      return "cert_ready";
    case EventKind::kCertRefuse:
      return "cert_refuse";
    case EventKind::kResubmitStart:
      return "resubmit_start";
    case EventKind::kResubmitDone:
      return "resubmit_done";
    case EventKind::kCommitRetry:
      return "commit_retry";
    case EventKind::kLocalCommit:
      return "local_commit";
    case EventKind::kLocalAbort:
      return "local_abort";
    case EventKind::kUnilateralAbort:
      return "unilateral_abort";
    case EventKind::kLocalTxnBegin:
      return "local_txn_begin";
    case EventKind::kLocalTxnEnd:
      return "local_txn_end";
    case EventKind::kSiteCrash:
      return "site_crash";
    case EventKind::kSiteRecover:
      return "site_recover";
    case EventKind::kInquirySend:
      return "inquiry_send";
    case EventKind::kInquiryReply:
      return "inquiry_reply";
    case EventKind::kFaultEvent:
      return "fault_event";
    case EventKind::kMsgSend:
      return "msg_send";
    case EventKind::kMsgDrop:
      return "msg_drop";
    case EventKind::kMsgDup:
      return "msg_dup";
    case EventKind::kRetransmit:
      return "retransmit";
    case EventKind::kInjectFailure:
      return "inject_failure";
    case EventKind::kCgmLock:
      return "cgm_lock";
    case EventKind::kCgmAdmission:
      return "cgm_admission";
    case EventKind::kPaxosBegin:
      return "paxos_begin";
    case EventKind::kPaxosVote:
      return "paxos_vote";
    case EventKind::kPaxosAccept:
      return "paxos_accept";
    case EventKind::kPaxosDecided:
      return "paxos_decided";
    case EventKind::kPaxosPrepare:
      return "paxos_prepare";
    case EventKind::kPaxosPromise:
      return "paxos_promise";
    case EventKind::kPaxosElect:
      return "paxos_elect";
    case EventKind::kShortCommit:
      return "short_commit";
    case EventKind::kCsnAssign:
      return "csn_assign";
    case EventKind::kReconfigBegin:
      return "reconfig_begin";
    case EventKind::kReconfigHandoff:
      return "reconfig_handoff";
    case EventKind::kReconfigDone:
      return "reconfig_done";
    case EventKind::kEpochRefused:
      return "epoch_refused";
  }
  return "?";
}

const char* RefuseKindName(RefuseKind kind) {
  switch (kind) {
    case RefuseKind::kNone:
      return "none";
    case RefuseKind::kInterval:
      return "interval";
    case RefuseKind::kExtension:
      return "extension";
    case RefuseKind::kDead:
      return "dead";
    case RefuseKind::kUnknownTxn:
      return "unknown_txn";
    case RefuseKind::kSnapshot:
      return "snapshot";
  }
  return "?";
}

const char* TraceFormatName(TraceFormat format) {
  switch (format) {
    case TraceFormat::kJsonl:
      return "jsonl";
    case TraceFormat::kBinary:
      return "binary";
  }
  return "?";
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string EncodeTxnId(const TxnId& id) {
  if (!id.valid()) return "-";
  return StrCat(id.global() ? "G" : "L", id.site, ".", id.seq);
}

Result<TxnId> DecodeTxnId(const std::string& text) {
  if (text == "-") return TxnId{};
  if (text.size() < 4 || (text[0] != 'G' && text[0] != 'L')) {
    return Status::InvalidArgument(StrCat("bad txn id: ", text));
  }
  const size_t dot = text.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument(StrCat("bad txn id: ", text));
  }
  try {
    const SiteId site =
        static_cast<SiteId>(std::stol(text.substr(1, dot - 1)));
    const int64_t seq = std::stoll(text.substr(dot + 1));
    return text[0] == 'G' ? TxnId::MakeGlobal(site, seq)
                          : TxnId::MakeLocal(site, seq);
  } catch (...) {
    return Status::InvalidArgument(StrCat("bad txn id: ", text));
  }
}

std::string EncodeSerialNumber(const core::SerialNumber& sn) {
  if (!sn.valid()) return "-";
  return StrCat(sn.clock, "/", sn.coordinator, "/", sn.seq);
}

Result<core::SerialNumber> DecodeSerialNumber(const std::string& text) {
  if (text == "-") return core::SerialNumber{};
  const size_t a = text.find('/');
  const size_t b = a == std::string::npos ? a : text.find('/', a + 1);
  if (b == std::string::npos) {
    return Status::InvalidArgument(StrCat("bad serial number: ", text));
  }
  try {
    core::SerialNumber sn;
    sn.clock = std::stoll(text.substr(0, a));
    sn.coordinator =
        static_cast<SiteId>(std::stol(text.substr(a + 1, b - a - 1)));
    sn.seq = std::stoll(text.substr(b + 1));
    return sn;
  } catch (...) {
    return Status::InvalidArgument(StrCat("bad serial number: ", text));
  }
}

std::string Event::ToJson() const {
  std::string out;
  out.reserve(96 + detail.size() + 16 * related.size());
  AppendJson(out);
  return out;
}

void Event::AppendJson(std::string& out) const {
  StrAppend(out, "{\"seq\":", seq, ",\"t\":", at, ",\"kind\":\"",
            EventKindName(kind), "\"");
  if (txn.valid()) {
    out += ",\"txn\":";
    AppendJsonString(out, EncodeTxnId(txn));
  }
  if (site != kInvalidSite) StrAppend(out, ",\"site\":", site);
  if (peer != kInvalidSite) StrAppend(out, ",\"peer\":", peer);
  if (resubmission >= 0) StrAppend(out, ",\"resub\":", resubmission);
  if (value >= 0) StrAppend(out, ",\"value\":", value);
  if (sn.valid()) {
    out += ",\"sn\":";
    AppendJsonString(out, EncodeSerialNumber(sn));
  }
  if (refuse != RefuseKind::kNone) {
    StrAppend(out, ",\"refuse\":\"", RefuseKindName(refuse), "\"");
  }
  StrAppend(out, ",\"ok\":", ok ? "true" : "false");
  if (!detail.empty()) {
    out += ",\"detail\":";
    AppendJsonString(out, detail);
  }
  if (!related.empty()) {
    out += ",\"related\":[";
    for (size_t i = 0; i < related.size(); ++i) {
      if (i > 0) out += ',';
      AppendJsonString(out, EncodeTxnId(related[i]));
    }
    out += ']';
  }
  out += '}';
}

namespace {

// SplitMix64 finisher — a deterministic, platform-independent mixer for
// the sampling decision (std::hash would tie trace content to the
// standard library implementation).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Tracer::Tracer(const sim::EventLoop* loop) : Tracer(TracerOptions{}, loop) {}

Tracer::Tracer(const TracerOptions& options, const sim::EventLoop* loop)
    : loop_(loop), options_(options) {
  if (options_.format == TraceFormat::kBinary) {
    ring_ = std::make_unique<TraceRing>(options_.ring_capacity);
  }
}

Tracer::~Tracer() = default;

bool Tracer::KeepsTxn(const TxnId& txn) const {
  if (options_.sample_period <= 1) return true;
  // Only global transactions are sampled: their event population dominates
  // the trace, and whole-gtid keep-or-drop preserves span-tree shape.
  if (!txn.valid() || !txn.global()) return true;
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(txn.site)) << 32) ^
      static_cast<uint64_t>(txn.seq);
  return Mix64(options_.sample_seed ^ Mix64(key)) % options_.sample_period ==
         0;
}

void Tracer::Record(Event e) {
  // seq is the emit index, assigned before the sampling decision, so a
  // sampled trace shows honest seq gaps where transactions were dropped.
  e.seq = stats_.emitted;
  e.at = loop_ != nullptr ? loop_->Now() : -1;
  ++stats_.emitted;
  if (!KeepsTxn(e.txn)) {
    ++stats_.sampled_out;
    return;
  }
  for (EventFold* fold : folds_) fold->Fold(e);
  if (ring_ != nullptr) {
    ring_->Append(e);
    stats_.dropped = ring_->dropped();
  } else {
    events_.push_back(std::move(e));
  }
}

size_t Tracer::size() const {
  return ring_ != nullptr ? ring_->size() : events_.size();
}

void Tracer::Clear() {
  events_.clear();
  if (ring_ != nullptr) ring_->Clear();
  stats_ = TracerStats{};
}

void Tracer::ForEach(const std::function<void(const Event&)>& fn) const {
  if (ring_ != nullptr) {
    ring_->ForEach(fn);
  } else {
    for (const Event& e : events_) fn(e);
  }
}

void Tracer::AddFold(EventFold* fold) { folds_.push_back(fold); }

void Tracer::RemoveFold(EventFold* fold) {
  folds_.erase(std::remove(folds_.begin(), folds_.end(), fold), folds_.end());
}

std::string Tracer::ToJsonl() const {
  std::string out;
  ForEach([&](const Event& e) {
    e.AppendJson(out);
    out += '\n';
  });
  return out;
}

bool Tracer::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Stream in bounded chunks: exporting a million-event trace must not
  // materialize a hundreds-of-MB string first.
  constexpr size_t kChunk = 64 * 1024;
  std::string buf;
  buf.reserve(kChunk + 512);
  bool ok = true;
  ForEach([&](const Event& e) {
    if (!ok) return;
    e.AppendJson(buf);
    buf += '\n';
    if (buf.size() >= kChunk) {
      ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
      buf.clear();
    }
  });
  if (ok && !buf.empty()) {
    ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  }
  return std::fclose(f) == 0 && ok;
}

std::string Tracer::ToBinary() const {
  if (ring_ != nullptr) return ring_->Serialize(stats_.sampled_out);
  BinaryTraceWriter writer;
  writer.AddSampledOut(stats_.sampled_out);
  for (const Event& e : events_) writer.Add(e);
  return writer.Finish();
}

bool Tracer::WriteBinary(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string blob = ToBinary();
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  return std::fclose(f) == 0 && written == blob.size();
}

// --- JSONL parsing -----------------------------------------------------------

namespace {

// Minimal scanner for the flat JSON objects Tracer emits: keys mapping to
// integers, booleans, strings, or arrays of strings.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : in_(line) {}

  Status Parse(Event& out) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipSpace();
      if (Consume('}')) break;
      if (!first && !Consume(',')) return Err("expected ',' or '}'");
      first = false;
      SkipSpace();
      std::string key;
      Status s = ParseString(key);
      if (!s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      SkipSpace();
      s = ParseValue(key, out);
      if (!s.ok()) return s;
    }
    SkipSpace();
    if (pos_ != in_.size()) return Err("trailing characters");
    return Status::Ok();
  }

 private:
  Status ParseValue(const std::string& key, Event& out) {
    if (key == "seq") return ParseInt(out.seq);
    if (key == "t") return ParseInt(out.at);
    if (key == "site") return ParseInt32(out.site);
    if (key == "peer") return ParseInt32(out.peer);
    if (key == "resub") return ParseInt32(out.resubmission);
    if (key == "value") return ParseInt(out.value);
    if (key == "ok") return ParseBool(out.ok);
    if (key == "kind") {
      std::string name;
      Status s = ParseString(name);
      if (!s.ok()) return s;
      for (EventKind k : kAllEventKinds) {
        if (name == EventKindName(k)) {
          out.kind = k;
          return Status::Ok();
        }
      }
      return Err(StrCat("unknown event kind: ", name));
    }
    if (key == "refuse") {
      std::string name;
      Status s = ParseString(name);
      if (!s.ok()) return s;
      for (RefuseKind k : kAllRefuseKinds) {
        if (name == RefuseKindName(k)) {
          out.refuse = k;
          return Status::Ok();
        }
      }
      return Err(StrCat("unknown refuse kind: ", name));
    }
    if (key == "txn") {
      std::string text;
      Status s = ParseString(text);
      if (!s.ok()) return s;
      Result<TxnId> id = DecodeTxnId(text);
      if (!id.ok()) return id.status();
      out.txn = *id;
      return Status::Ok();
    }
    if (key == "sn") {
      std::string text;
      Status s = ParseString(text);
      if (!s.ok()) return s;
      Result<core::SerialNumber> sn = DecodeSerialNumber(text);
      if (!sn.ok()) return sn.status();
      out.sn = *sn;
      return Status::Ok();
    }
    if (key == "detail") return ParseString(out.detail);
    if (key == "related") {
      if (!Consume('[')) return Err("expected '['");
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      while (true) {
        SkipSpace();
        std::string text;
        Status s = ParseString(text);
        if (!s.ok()) return s;
        Result<TxnId> id = DecodeTxnId(text);
        if (!id.ok()) return id.status();
        out.related.push_back(*id);
        SkipSpace();
        if (Consume(']')) return Status::Ok();
        if (!Consume(',')) return Err("expected ',' or ']'");
      }
    }
    return Err(StrCat("unknown key: ", key));
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) return Err("expected '\"'");
    out.clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= in_.size()) return Err("dangling escape");
      char esc = in_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape");
            }
          }
          if (code > 0x7f) return Err("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseInt(int64_t& out) {
    const size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') ++pos_;
    if (pos_ == start) return Err("expected integer");
    try {
      out = std::stoll(std::string(in_.substr(start, pos_ - start)));
    } catch (...) {
      return Err("integer out of range");
    }
    return Status::Ok();
  }

  Status ParseInt32(int32_t& out) {
    int64_t v = 0;
    Status s = ParseInt(v);
    if (!s.ok()) return s;
    out = static_cast<int32_t>(v);
    return Status::Ok();
  }

  Status ParseBool(bool& out) {
    if (in_.substr(pos_, 4) == "true") {
      out = true;
      pos_ += 4;
      return Status::Ok();
    }
    if (in_.substr(pos_, 5) == "false") {
      out = false;
      pos_ += 5;
      return Status::Ok();
    }
    return Err("expected boolean");
  }

  void SkipSpace() {
    while (pos_ < in_.size() && (in_[pos_] == ' ' || in_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(std::string msg) const {
    return Status::InvalidArgument(
        StrCat("trace jsonl at offset ", pos_, ": ", msg));
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Event>> ParseJsonl(const std::string& text) {
  std::vector<Event> events;
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    ++line_no;
    start = end + 1;
    if (line.empty()) continue;
    Event e;
    const Status s = LineParser(line).Parse(e);
    if (!s.ok()) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": ", s.message()));
    }
    events.push_back(std::move(e));
  }
  return events;
}

LenientParse ParseJsonlLenient(const std::string& text) {
  LenientParse out;
  size_t start = 0;
  size_t line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    ++line_no;
    start = end + 1;
    if (line.empty()) continue;
    Event e;
    const Status s = LineParser(line).Parse(e);
    if (!s.ok()) {
      ++out.skipped_lines;
      if (out.warnings.size() < LenientParse::kMaxWarnings) {
        out.warnings.push_back(StrCat("line ", line_no, ": ", s.message()));
      }
      continue;
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace hermes::trace
