#include "trace/perfetto.h"

#include <set>

#include "common/str.h"

namespace hermes::trace {

namespace {

// Track id for a span: participants draw on their own site's track, the
// root transaction span on its coordinator's.
int32_t TrackOf(const Span& s) { return s.site == kInvalidSite ? 0 : s.site; }

void AppendSpanEvent(std::string& out, const SpanForest& forest,
                     const Span& s, bool& first) {
  if (s.begin < 0) return;  // never observed opening; nothing to draw
  if (!first) out += ",\n";
  first = false;
  const bool unclosed = s.end < 0;
  const sim::Time end = unclosed ? forest.trace_end : s.end;
  std::string name = StrCat(SpanKindName(s.kind), " ", EncodeTxnId(s.txn));
  if (s.kind == SpanKind::kResubmission && s.resubmission >= 0) {
    StrAppend(name, " j=", s.resubmission);
  }
  out += "{\"name\":";
  AppendJsonString(out, name);
  StrAppend(out, ",\"cat\":\"", SpanKindName(s.kind),
            "\",\"ph\":\"X\",\"ts\":", s.begin, ",\"dur\":",
            end - s.begin, ",\"pid\":0,\"tid\":", TrackOf(s));
  out += ",\"args\":{\"txn\":";
  AppendJsonString(out, EncodeTxnId(s.txn));
  StrAppend(out, ",\"ok\":", s.ok);
  if (s.refuse != RefuseKind::kNone) {
    out += ",\"refuse\":";
    AppendJsonString(out, RefuseKindName(s.refuse));
  }
  if (s.resubmission >= 0) StrAppend(out, ",\"j\":", s.resubmission);
  if (unclosed) out += ",\"unclosed\":true";
  if (!s.notes.empty()) {
    StrAppend(out, ",\"notes\":", s.notes.size());
  }
  out += "}}";
}

void AppendInstant(std::string& out, const Event& e, bool& first) {
  std::string name;
  switch (e.kind) {
    case EventKind::kSiteCrash:
      name = "site_crash";
      break;
    case EventKind::kSiteRecover:
      name = "site_recover";
      break;
    case EventKind::kFaultEvent:
      name = e.detail.empty() ? std::string("fault") : e.detail;
      break;
    default:
      return;
  }
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":";
  AppendJsonString(out, name);
  StrAppend(out, ",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":",
            e.at < 0 ? 0 : e.at, ",\"pid\":0,\"tid\":",
            e.site == kInvalidSite ? 0 : e.site, "}");
}

}  // namespace

std::string ExportPerfetto(const SpanForest& forest,
                           const std::vector<Event>& events) {
  std::set<int32_t> tracks;
  for (const Span& s : forest.spans) tracks.insert(TrackOf(s));
  for (const Event& e : events) {
    if (e.kind == EventKind::kSiteCrash || e.kind == EventKind::kSiteRecover ||
        e.kind == EventKind::kFaultEvent) {
      tracks.insert(e.site == kInvalidSite ? 0 : e.site);
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (int32_t tid : tracks) {  // std::set: sorted, deterministic
    if (!first) out += ",\n";
    first = false;
    StrAppend(out,
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":",
              tid, ",\"args\":{\"name\":\"site ", tid, "\"}}");
  }
  for (const Span& s : forest.spans) {
    AppendSpanEvent(out, forest, s, first);
  }
  for (const Event& e : events) {
    AppendInstant(out, e, first);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace hermes::trace
