// Chrome/Perfetto trace-event JSON export of a span forest.
//
// Emits the legacy trace-event format (https://ui.perfetto.dev loads it
// directly): one track per site (pid 0, tid = site id), every span as a
// complete "X" event with virtual-time ts/dur in microseconds, and site
// crashes / recoveries / fault-plan firings as instant "i" events on the
// affected site's track. Output is deterministic: fixed field order,
// metadata rows sorted by site, spans in forest (trace) order, instants in
// event order — same seed, same bytes.

#ifndef HERMES_TRACE_PERFETTO_H_
#define HERMES_TRACE_PERFETTO_H_

#include <string>
#include <vector>

#include "trace/span.h"

namespace hermes::trace {

// `events` supplies the instant markers (crash / recover / fault); pass
// the same stream the forest was built from. Spans still open at trace
// end are drawn to forest.trace_end and tagged "unclosed" in their args.
std::string ExportPerfetto(const SpanForest& forest,
                           const std::vector<Event>& events);

}  // namespace hermes::trace

#endif  // HERMES_TRACE_PERFETTO_H_
