#include "trace/ring.h"

#include <cstring>

namespace hermes::trace {

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      buf_(capacity_ * kBinaryRecordSize) {}

const uint8_t* TraceRing::RecordAt(size_t logical_index) const {
  const size_t slot = (head_ + logical_index) % capacity_;
  return buf_.data() + slot * kBinaryRecordSize;
}

void TraceRing::Append(const Event& e) {
  const uint32_t detail_id = interner_.Intern(e.detail);
  const uint32_t related_id = interner_.Intern(EncodeRelated(e.related));
  size_t slot;
  if (count_ < capacity_) {
    slot = (head_ + count_) % capacity_;
    ++count_;
  } else {
    slot = head_;  // overwrite the oldest record
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  EncodeBinaryRecord(e, detail_id, related_id,
                     buf_.data() + slot * kBinaryRecordSize);
}

void TraceRing::ForEach(const std::function<void(const Event&)>& fn) const {
  // Records the ring wrote always decode: the dictionary only grows and
  // the encoder writes in-range kind bytes.
  std::vector<std::string> dict;
  dict.reserve(interner_.entries().size() + 1);
  dict.emplace_back();
  for (const std::string& s : interner_.entries()) dict.push_back(s);
  for (size_t i = 0; i < count_; ++i) {
    Event e;
    if (DecodeBinaryRecord(RecordAt(i), dict, e).ok()) fn(e);
  }
}

std::string TraceRing::Serialize(int64_t sampled_out) const {
  BinaryTraceWriter writer;
  writer.AddDropped(dropped_);
  writer.AddSampledOut(sampled_out);
  // Re-encode through a fresh writer so the serialized dictionary holds
  // only strings the surviving records reference, in first-use order —
  // evicted records must not leak entries into the export.
  ForEach([&](const Event& e) { writer.Add(e); });
  return writer.Finish();
}

void TraceRing::Clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  interner_.Clear();
}

}  // namespace hermes::trace
