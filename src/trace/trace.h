// Structured tracing for the 2PC Agent method.
//
// A Tracer collects typed, virtual-time-stamped event records keyed by
// (TxnId, SiteId): transaction begin/end, per-phase 2PC spans (DML steps,
// PREPARE -> READY/REFUSE, COMMIT/ROLLBACK -> ACK), certification verdicts
// with the refusal reason and the conflicting transactions, unilateral
// aborts, resubmission attempts, site crashes, network sends and the CGM
// baseline's centralized scheduler decisions.
//
// Every protocol component takes an optional `Tracer*`; a null pointer
// means tracing is disabled and each hook is a single branch
// (`if (tracer_ != nullptr)`), cheap enough for the certifier hot paths
// (measured by bench_certifier_micro). Because all components run on one
// deterministic EventLoop, two runs with the same seed produce byte-
// identical traces — the JSONL export is suitable for golden files and for
// cross-run diffing.

#ifndef HERMES_TRACE_TRACE_H_
#define HERMES_TRACE_TRACE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/serial_number.h"
#include "sim/event_loop.h"

namespace hermes::trace {

enum class EventKind : uint8_t {
  // Coordinator-side transaction lifecycle.
  kTxnBegin,      // global transaction submitted; value = number of steps
  kStepStart,     // DML step sent; peer = executing site, value = step index
  kStepEnd,       // DML response received; ok = command status
  kPrepareSend,   // PREPARE fan-out; peer = participant, sn = SN(k)
  kVoteRecv,      // READY/REFUSE received; peer = participant, ok = ready
  kDecisionSend,  // COMMIT/ROLLBACK fan-out; peer = participant, ok = commit
  kAckRecv,       // ACK received; peer = participant, ok = commit-ack
  kTxnEnd,        // globally finished; ok = committed, value = latency (us)

  // Agent-side certification, resubmission and local completion.
  kPrepareRecv,    // PREPARE arrived at the agent; sn = SN(k)
  kCertReady,      // certification passed, subtransaction now prepared
  kCertRefuse,     // certification REFUSE; refuse = reason kind,
                   // related = conflicting transactions (when known)
  kResubmitStart,  // resubmission of the logged commands began;
                   // resubmission = new local subtransaction index,
                   // value = attempt number of this prepared period
  kResubmitDone,   // all commands re-executed, new alive interval started
  kCommitRetry,    // commit certification forced a retry;
                   // related = prepared transactions with smaller SNs
  kLocalCommit,    // local single-phase commit performed; sn = SN(k)
  kLocalAbort,     // local rollback performed on coordinator decision

  // LTM-side autonomy events.
  kUnilateralAbort,  // the LDBS unilaterally aborted a subtransaction;
                     // resubmission = aborted local subtxn index,
                     // detail = reason (injected / lock timeout / deadlock)

  // System assembly events.
  kLocalTxnBegin,  // workload local transaction started at a site
  kLocalTxnEnd,    // workload local transaction finished; ok = committed
  kSiteCrash,      // CrashSite: both roles lose volatile state;
                   // value = scheduled downtime (us; 0 = instant recovery)
  kSiteRecover,    // agent + coordinator recovery from the logs finished

  // Recovery inquiries (2PC blocking window).
  kInquirySend,   // a prepared agent probes its coordinator for the
                  // decision; peer = coordinator, value = attempt number
  kInquiryReply,  // the coordinator answered an inquiry; peer = inquirer,
                  // ok = commit, detail = "presumed-abort" when the
                  // transaction was unknown (never logged or forgotten)

  // Network transport.
  kMsgSend,  // site -> peer send; value = modeled delivery delay (us)
  kMsgDrop,  // injected fault or dead destination swallowed a message;
             // detail = cause (loss / partition / unregistered)
  kMsgDup,   // fault injection delivered a second copy; value = its delay

  // Retransmission (coordinator timeout machinery).
  kRetransmit,  // a protocol message was re-sent after a timeout;
                // peer = destination, value = attempt number,
                // detail = message kind (dml / prepare / decision)

  // Workload driver.
  kInjectFailure,  // failure injector armed a unilateral abort;
                   // value = injection delay (us)
  kFaultEvent,     // a FaultPlan event fired; detail = fault kind,
                   // site/peer = targets, value = duration (us)

  // CGM baseline centralized scheduler.
  kCgmLock,       // global lock request decided; ok = granted
  kCgmAdmission,  // commit-graph admission decided; ok = admitted

  // Paxos Commit (consensus subsystem).
  kPaxosBegin,    // leader proposed the participant set; value = |set|
  kPaxosVote,     // an acceptor accepted a ballot-0 RM vote;
                  // peer = participant, ok = ready
  kPaxosAccept,   // an acceptor accepted a resolver proposal;
                  // value = ballot, ok = would-commit
  kPaxosDecided,  // the outcome became chosen at this site;
                  // ok = commit, value = deciding ballot
  kPaxosPrepare,  // a resolver started phase 1 for all instances;
                  // value = ballot
  kPaxosPromise,  // an acceptor promised a resolver ballot; value = ballot,
                  // peer = resolver
  kPaxosElect,    // a prepared agent escalated its inquiry into leader
                  // election; peer = suspected coordinator,
                  // value = inquiry attempt number

  // Certifier ablation (cert::Certifier seam + short-commit fast paths).
  kShortCommit,  // a short-commit fast path fired; detail = "1pc"
                 // (single-site transaction, the agent is the commit
                 // point) or "readonly" (write-free participant committed
                 // at prepare time, skipping the decision round)
  kCsnAssign,    // the coordinator drew the decision-time commit sequence
                 // number from the global source; value = csn

  // Online reconfiguration (shard subsystem).
  kReconfigBegin,    // shard map fenced (wedge epoch installed);
                     // site = leaving/target site, peer = destination,
                     // value = new epoch, detail = reconfiguration kind
  kReconfigHandoff,  // one source's shards + prepared residue moved;
                     // site = source, peer = destination, value = rows moved
  kReconfigDone,     // final map installed, moved shards live at the
                     // destination; value = new epoch, detail = kind
  kEpochRefused,     // an agent refused a message carrying a stale epoch;
                     // site = refusing agent, peer = sender,
                     // value = the agent's current epoch, detail = message
                     // kind (begin / dml / prepare / decision / 1pc)
};

// Why a certification refused a PREPARE.
enum class RefuseKind : uint8_t {
  kNone = 0,
  kInterval,    // basic certification: alive intervals do not intersect
  kExtension,   // extension: SN below the committed high-water mark
  kDead,        // subtransaction not alive at prepare time
  kUnknownTxn,  // PREPARE for a transaction the agent does not know
  kSnapshot,    // CSN snapshot check: a resubmitted candidate straddles a
                // recent commit it was never concurrently alive with
};

const char* EventKindName(EventKind kind);
const char* RefuseKindName(RefuseKind kind);

// Every EventKind / RefuseKind value, in declaration order. Shared by the
// JSONL parser (name -> kind lookup), the binary decoder (range check on
// the kind byte) and the round-trip tests, so a kind added to the enum but
// missing here fails loudly in all three places.
inline constexpr EventKind kAllEventKinds[] = {
    EventKind::kTxnBegin,       EventKind::kStepStart,
    EventKind::kStepEnd,        EventKind::kPrepareSend,
    EventKind::kVoteRecv,       EventKind::kDecisionSend,
    EventKind::kAckRecv,        EventKind::kTxnEnd,
    EventKind::kPrepareRecv,    EventKind::kCertReady,
    EventKind::kCertRefuse,     EventKind::kResubmitStart,
    EventKind::kResubmitDone,   EventKind::kCommitRetry,
    EventKind::kLocalCommit,    EventKind::kLocalAbort,
    EventKind::kUnilateralAbort, EventKind::kLocalTxnBegin,
    EventKind::kLocalTxnEnd,    EventKind::kSiteCrash,
    EventKind::kSiteRecover,    EventKind::kInquirySend,
    EventKind::kInquiryReply,   EventKind::kMsgSend,
    EventKind::kMsgDrop,        EventKind::kMsgDup,
    EventKind::kRetransmit,     EventKind::kInjectFailure,
    EventKind::kFaultEvent,     EventKind::kCgmLock,
    EventKind::kCgmAdmission,   EventKind::kPaxosBegin,
    EventKind::kPaxosVote,      EventKind::kPaxosAccept,
    EventKind::kPaxosDecided,   EventKind::kPaxosPrepare,
    EventKind::kPaxosPromise,   EventKind::kPaxosElect,
    EventKind::kShortCommit,    EventKind::kCsnAssign,
    EventKind::kReconfigBegin,  EventKind::kReconfigHandoff,
    EventKind::kReconfigDone,   EventKind::kEpochRefused,
};

inline constexpr RefuseKind kAllRefuseKinds[] = {
    RefuseKind::kNone, RefuseKind::kInterval, RefuseKind::kExtension,
    RefuseKind::kDead, RefuseKind::kUnknownTxn, RefuseKind::kSnapshot,
};

// One trace record. Only `kind` is always meaningful; the other fields are
// populated per kind as documented on EventKind. Unset fields keep their
// defaults and are omitted from the JSONL encoding.
struct Event {
  int64_t seq = -1;   // assigned by the Tracer: position in the trace
  sim::Time at = -1;  // virtual time, stamped by the Tracer
  EventKind kind = EventKind::kTxnBegin;
  TxnId txn;                     // transaction the event belongs to
  SiteId site = kInvalidSite;    // site where the event happened
  SiteId peer = kInvalidSite;    // other endpoint (messages, fan-outs)
  int32_t resubmission = -1;     // local subtransaction index, if relevant
  int64_t value = -1;            // kind-specific scalar (see EventKind)
  core::SerialNumber sn;         // serial number, when relevant
  RefuseKind refuse = RefuseKind::kNone;
  bool ok = true;                // kind-specific outcome flag
  std::string detail;            // free-form context (reason messages)
  std::vector<TxnId> related;    // other transactions involved

  friend bool operator==(const Event& a, const Event& b) = default;

  // One-line JSON object (no trailing newline). Field order is fixed and
  // default-valued fields are omitted, so encoding is deterministic.
  std::string ToJson() const;
  // Appends ToJson() to `out` without the intermediate allocation.
  void AppendJson(std::string& out) const;
};

// A streaming consumer of the event stream as it is recorded. Folds
// attached to a Tracer see every *stored* event (after sampling, before
// any ring-buffer eviction), so an analysis built on a fold — the driver's
// windowed time series, a live span forest — stays complete even when the
// fixed-size ring has long overwritten the early records.
class EventFold {
 public:
  virtual ~EventFold() = default;
  virtual void Fold(const Event& e) = 0;
};

// Storage backend of a Tracer.
enum class TraceFormat : uint8_t {
  kJsonl,   // std::vector<Event>, unbounded; exports one JSON object/line
  kBinary,  // fixed-size ring of fixed-width binary records + dictionary
};

const char* TraceFormatName(TraceFormat format);

struct TracerOptions {
  TraceFormat format = TraceFormat::kJsonl;
  // Capacity of the binary ring in records (kBinary only). When full, the
  // oldest record is overwritten and counted in stats().dropped — the
  // trace is a sliding window over the tail of the run.
  size_t ring_capacity = 1 << 20;
  // Keep 1 of every `sample_period` global transactions (whole-gtid,
  // seeded by `sample_seed`): either every event of a transaction is kept
  // or none is, so span trees built from a sampled trace stay well-formed.
  // Events without a global transaction id (site crashes, reconfiguration,
  // transport noise) are always kept. 1 = keep everything.
  uint32_t sample_period = 1;
  uint64_t sample_seed = 0;
};

// Drop accounting: `emitted` counts every Record call; `sampled_out`
// events were dropped by the per-gtid sampler; `dropped` records were
// evicted by ring overflow. emitted == stored + sampled_out + dropped, so
// nothing is ever silently truncated.
struct TracerStats {
  int64_t emitted = 0;
  int64_t dropped = 0;
  int64_t sampled_out = 0;
};

class TraceRing;

class Tracer {
 public:
  // `loop` provides the virtual timestamps; it must outlive the tracer.
  // May be null initially when the event loop is created later (the
  // workload driver builds its loop inside Run and rebinds the tracer).
  explicit Tracer(const sim::EventLoop* loop = nullptr);
  explicit Tracer(const TracerOptions& options,
                  const sim::EventLoop* loop = nullptr);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Rebinds the timestamp source (events recorded earlier keep their
  // stamps).
  void set_loop(const sim::EventLoop* loop) { loop_ = loop; }

  // Stamps `e.seq` (emit index — sampled-out events consume one too, so a
  // sampled trace shows honest gaps) and `e.at`, then stores the event in
  // the configured backend. Callers fill the typed fields.
  void Record(Event e);

  // The stored events. Valid in kJsonl mode only; the binary ring has no
  // materialized Event vector — use ForEach there.
  const std::vector<Event>& events() const { return events_; }
  // Number of events currently stored (ring mode: at most ring_capacity).
  size_t size() const;
  void Clear();

  const TracerOptions& options() const { return options_; }
  const TracerStats& stats() const { return stats_; }

  // Whether the sampler keeps `txn`'s events (always true for period 1 or
  // non-global ids). Deterministic in (sample_seed, txn).
  bool KeepsTxn(const TxnId& txn) const;

  // Visits every stored event in record order, decoding binary records on
  // the fly — the streaming seam the span/series folds consume, with no
  // JSONL string ever materialized.
  void ForEach(const std::function<void(const Event&)>& fn) const;

  // Attaches/detaches a streaming fold; attached folds see each stored
  // event at Record time. Folds are not owned and must outlive their
  // registration.
  void AddFold(EventFold* fold);
  void RemoveFold(EventFold* fold);

  // One JSON object per line, in record order (both backends).
  std::string ToJsonl() const;
  // Streams the JSONL export to `path` in bounded chunks — no monolithic
  // string is built, so exporting a million-event trace needs O(chunk)
  // transient memory. Returns false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

  // Serializes the stored events to the binary trace format (magic
  // "HTRB"; see docs/FORMATS.md) from either backend.
  std::string ToBinary() const;
  // Writes ToBinary() to `path`; returns false on I/O failure.
  bool WriteBinary(const std::string& path) const;

 private:
  const sim::EventLoop* loop_;
  TracerOptions options_;
  TracerStats stats_;
  std::vector<Event> events_;        // kJsonl backend
  std::unique_ptr<TraceRing> ring_;  // kBinary backend
  std::vector<EventFold*> folds_;
};

// Parses a JSONL trace produced by Tracer::ToJsonl back into events
// (round-trip: ParseJsonl(t.ToJsonl()) == t.events()). Unknown keys are
// rejected; blank lines are skipped.
Result<std::vector<Event>> ParseJsonl(const std::string& text);

// Lenient variant for analysis tools reading traces of unknown provenance
// (newer writers, truncated files): lines that fail the strict parser —
// unknown event kinds, unknown keys, a trailing line cut mid-object — are
// skipped and counted instead of failing the whole parse. The first few
// skip reasons are kept for diagnostics.
struct LenientParse {
  static constexpr size_t kMaxWarnings = 10;

  std::vector<Event> events;
  int64_t skipped_lines = 0;
  std::vector<std::string> warnings;  // at most kMaxWarnings entries
};
LenientParse ParseJsonlLenient(const std::string& text);

// Appends `s` as a double-quoted JSON string, escaping control characters.
// Shared by the trace exporter and the benchmark artifact writers.
void AppendJsonString(std::string& out, std::string_view s);

// Compact encodings used inside the JSONL fields.
std::string EncodeTxnId(const TxnId& id);
Result<TxnId> DecodeTxnId(const std::string& text);
std::string EncodeSerialNumber(const core::SerialNumber& sn);
Result<core::SerialNumber> DecodeSerialNumber(const std::string& text);

}  // namespace hermes::trace

#endif  // HERMES_TRACE_TRACE_H_
