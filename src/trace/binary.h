// Compact binary encoding of trace::Event — the storage format behind the
// fixed-size ring-buffer tracer and the on-disk `.bin` trace artifact.
//
// Every event becomes one fixed-width little-endian record
// (kBinaryRecordSize bytes); the two variable-length fields (`detail` and
// the `related` transaction list) are interned in a small string
// dictionary and referenced by id, netdata-style, so a record's cost is a
// dictionary lookup plus a fixed memcpy — no per-event heap allocation and
// no JSON string work on the hot path. The serialized file layout is
//
//   offset  size  field
//   0       4     magic "HTRB"
//   4       1     version (kBinaryTraceVersion)
//   5       3     reserved (zero)
//   8       8     u64 dictionary entry count D
//   16      8     u64 record count R
//   24      8     u64 ring-overflow dropped count
//   32      8     u64 sampled-out count
//   40      ...   D dictionary entries: u32 length + raw bytes (ids 1..D;
//                 id 0 is the empty string and is never serialized)
//   ...     80*R  R records (layout in EncodeBinaryRecord)
//
// Fixed-width records make truncation detection trivial: a file that ends
// mid-record yields exactly the whole records before the cut, with the
// header's declared count spelling out how many were lost. Encoding is
// deterministic (dictionary ids follow first use in record order), so the
// binary export of a seeded run is byte-identical across replays — the
// same golden-file property the JSONL export has.

#ifndef HERMES_TRACE_BINARY_H_
#define HERMES_TRACE_BINARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace hermes::trace {

inline constexpr char kBinaryTraceMagic[4] = {'H', 'T', 'R', 'B'};
inline constexpr uint8_t kBinaryTraceVersion = 1;
inline constexpr size_t kBinaryHeaderSize = 40;
inline constexpr size_t kBinaryRecordSize = 80;

// True when `data` starts with the binary trace magic — the format
// auto-detection tmstat and the analyzers use before parsing.
bool IsBinaryTrace(std::string_view data);

// Interns strings into dense ids. Id 0 is always the empty string;
// non-empty strings get ids 1.. in first-appearance order, which makes the
// dictionary — and everything serialized from it — deterministic.
class StringInterner {
 public:
  StringInterner() = default;

  uint32_t Intern(std::string_view s);

  // Entries with id >= 1, in id order (the empty id-0 entry is implicit).
  const std::vector<std::string>& entries() const { return entries_; }

  void Clear();

 private:
  std::vector<std::string> entries_;
  std::unordered_map<std::string, uint32_t> ids_;
};

// `related` travels through the dictionary as one comma-joined string of
// EncodeTxnId values ("G0.1,L2.5"); empty lists map to the empty string.
std::string EncodeRelated(const std::vector<TxnId>& related);
Result<std::vector<TxnId>> DecodeRelated(const std::string& text);

// Encodes `e` into exactly kBinaryRecordSize bytes at `out`. The caller
// supplies the dictionary ids for e.detail and EncodeRelated(e.related).
void EncodeBinaryRecord(const Event& e, uint32_t detail_id,
                        uint32_t related_id, uint8_t* out);

// Decodes one record. `dict` is indexed by id with dict[0] == "". Fails on
// an out-of-range kind/refuse byte or dictionary id (a corrupt record).
Status DecodeBinaryRecord(const uint8_t* in,
                          const std::vector<std::string>& dict, Event& out);

// Accumulates events into a serialized binary trace: interning, encoding
// and the header bookkeeping in one place. Used by the ring serializer,
// the vector-backed Tracer export and the multi-run trace merger.
class BinaryTraceWriter {
 public:
  void Add(const Event& e);
  void AddDropped(int64_t n) { dropped_ += n; }
  void AddSampledOut(int64_t n) { sampled_out_ += n; }

  // Header + dictionary + records.
  std::string Finish() const;

 private:
  StringInterner interner_;
  std::string records_;
  int64_t count_ = 0;
  int64_t dropped_ = 0;
  int64_t sampled_out_ = 0;
};

// Lenient parse for traces of unknown provenance (analysis tools): a
// truncated tail yields the whole records before the cut, undecodable
// records are skipped and counted. Mirrors ParseJsonlLenient.
struct BinaryParse {
  static constexpr size_t kMaxWarnings = 10;

  std::vector<Event> events;
  int64_t records_declared = 0;  // from the header (0 if unreadable)
  int64_t skipped_records = 0;   // undecodable records
  int64_t dropped = 0;           // header: ring-overflow drops at capture
  int64_t sampled_out = 0;       // header: sampler drops at capture
  bool truncated = false;        // file ended before the declared payload
  std::vector<std::string> warnings;  // at most kMaxWarnings entries
};
BinaryParse ParseBinaryLenient(std::string_view data);

// Strict parse: any truncation, trailing garbage or undecodable record
// fails the whole parse (round-trip: ParseBinary(t.ToBinary()) yields
// exactly the stored events).
Result<std::vector<Event>> ParseBinary(std::string_view data);

// Streaming decode: invokes `fn` for each whole record without
// materializing the event vector. Returns the same accounting as
// ParseBinaryLenient (with `events` left empty).
BinaryParse ForEachBinaryEvent(std::string_view data,
                               const std::function<void(const Event&)>& fn);

}  // namespace hermes::trace

#endif  // HERMES_TRACE_BINARY_H_
