// Reconstructs per-transaction timelines from a recorded trace.
//
// The analyzer turns a flat event stream back into the paper's objects of
// interest: the full resubmission chain of a global subtransaction whose
// local incarnations were unilaterally aborted (T^s_k0, T^s_k1, ... in the
// paper's notation), every certification REFUSE together with the
// conflicting transactions that caused it, and per-site 2PC phase spans
// (DML, PREPARE -> vote, decision -> ACK) for latency attribution.

#ifndef HERMES_TRACE_ANALYZER_H_
#define HERMES_TRACE_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace hermes::trace {

// Half-open observation span; begin/end are -1 until observed.
struct PhaseSpan {
  sim::Time begin = -1;
  sim::Time end = -1;

  bool complete() const { return begin >= 0 && end >= 0; }
  sim::Duration length() const { return complete() ? end - begin : 0; }
};

// One local subtransaction created by a resubmission.
struct ResubmissionAttempt {
  int32_t resubmission = 0;  // index j of the local subtransaction T^s_kj
  int64_t attempt = 0;       // attempt number within one prepared period
  sim::Time started = -1;
  sim::Time completed = -1;  // -1 if the attempt itself died
};

// Resubmission history of one global subtransaction at one site.
struct ResubmissionChain {
  TxnId txn;
  SiteId site = kInvalidSite;
  int unilateral_aborts = 0;
  std::vector<ResubmissionAttempt> attempts;
  bool locally_committed = false;

  std::string ToString() const;
};

// One certification REFUSE, with its conflicting-transaction context.
struct Refusal {
  TxnId txn;
  SiteId site = kInvalidSite;
  sim::Time at = -1;
  RefuseKind kind = RefuseKind::kNone;
  std::string detail;
  // Transactions whose state caused the refusal: the prepared
  // subtransactions with non-intersecting alive intervals (kInterval), or
  // the holder of the committed SN high-water mark (kExtension).
  std::vector<TxnId> conflicting;

  std::string ToString() const;
};

// 2PC phases of one global transaction at one participating site.
struct SiteTimeline {
  SiteId site = kInvalidSite;
  PhaseSpan dml;       // first DML step sent .. last response received
  PhaseSpan prepare;   // PREPARE sent .. vote received
  PhaseSpan decision;  // decision sent .. ACK received
  bool voted = false;
  bool vote_ready = false;
  RefuseKind refuse = RefuseKind::kNone;
  int resubmissions = 0;
  int unilateral_aborts = 0;
  bool locally_committed = false;
};

struct TxnTimeline {
  TxnId txn;
  SiteId coordinator = kInvalidSite;
  sim::Time begin = -1;
  sim::Time end = -1;
  bool finished = false;
  bool committed = false;
  int64_t steps = -1;  // declared step count (kTxnBegin value)
  std::map<SiteId, SiteTimeline> sites;
  std::vector<size_t> events;  // indices into events(), in trace order
};

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(std::vector<Event> events);

  const std::vector<Event>& events() const { return events_; }
  const std::map<TxnId, TxnTimeline>& timelines() const {
    return timelines_;
  }
  const TxnTimeline* Timeline(const TxnId& txn) const;

  // Chains with at least one unilateral abort or resubmission, in order of
  // first occurrence.
  const std::vector<ResubmissionChain>& ResubmissionChains() const {
    return chains_;
  }
  const ResubmissionChain* ChainOf(const TxnId& txn, SiteId site) const;

  const std::vector<Refusal>& Refusals() const { return refusals_; }

  // Human-readable timeline of one transaction, one event per line.
  std::string ReportTxn(const TxnId& txn) const;
  // Aggregate one-paragraph description of the trace.
  std::string Summary() const;

 private:
  SiteTimeline& SiteOf(TxnTimeline& txn, SiteId site);
  ResubmissionChain& ChainSlot(const TxnId& txn, SiteId site);

  std::vector<Event> events_;
  std::map<TxnId, TxnTimeline> timelines_;
  std::vector<ResubmissionChain> chains_;
  std::map<std::pair<TxnId, SiteId>, size_t> chain_index_;
  std::vector<Refusal> refusals_;
};

}  // namespace hermes::trace

#endif  // HERMES_TRACE_ANALYZER_H_
