// Fixed-bucket latency histogram (power-of-two microsecond buckets).
//
// Recording is O(1) with no allocation, so the histogram can sit directly
// inside core::Metrics and be updated on every global commit. Percentiles
// are estimated by linear interpolation inside the containing bucket and
// clamped to the observed [min, max], which makes p100 exact and keeps the
// p50/p95/p99 error below one bucket width. Purely integer state: merging
// and copying are trivially deterministic.

#ifndef HERMES_TRACE_HISTOGRAM_H_
#define HERMES_TRACE_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace hermes::trace {

class Histogram {
 public:
  // Bucket 0 holds values <= 0; bucket i >= 1 holds [2^(i-1), 2^i).
  // 48 buckets cover up to 2^47 us, far beyond any simulated run.
  static constexpr int kBuckets = 48;

  void Add(int64_t value);
  void Merge(const Histogram& other);
  void Clear() { *this = Histogram(); }

  // Reconstructs a histogram from its serialized parts (the consolidated
  // benchmark artifacts store buckets + observed min/max). The count is the
  // bucket sum; an all-zero bucket array yields an empty histogram.
  static Histogram FromParts(const std::array<int64_t, kBuckets>& buckets,
                             int64_t min, int64_t max);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  int64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }

  // Estimated value at percentile p in [0, 100]. 0 when empty.
  int64_t Percentile(double p) const;
  // Percentile converted from microseconds to milliseconds.
  double PercentileMs(double p) const {
    return static_cast<double>(Percentile(p)) / 1000.0;
  }

  // "n=.. p50=..ms p95=..ms p99=..ms max=..ms"
  std::string ToString() const;

 private:
  static int BucketIndex(int64_t value);

  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace hermes::trace

#endif  // HERMES_TRACE_HISTOGRAM_H_
