#include "trace/analyzer.h"

#include <algorithm>

#include "common/str.h"

namespace hermes::trace {

std::string ResubmissionChain::ToString() const {
  std::string out = StrCat("chain ", EncodeTxnId(txn), "@", site, ": ",
                           unilateral_aborts, " unilateral abort(s), ",
                           attempts.size(), " resubmission(s)");
  for (const ResubmissionAttempt& a : attempts) {
    StrAppend(out, " [j=", a.resubmission, " attempt=", a.attempt, " t=",
              a.started, a.completed >= 0 ? StrCat("..", a.completed)
                                          : std::string("..died"),
              "]");
  }
  StrAppend(out, locally_committed ? " -> committed" : " -> not committed");
  return out;
}

std::string Refusal::ToString() const {
  std::string out = StrCat("refuse ", EncodeTxnId(txn), "@", site, " t=",
                           at, " kind=", RefuseKindName(kind));
  if (!conflicting.empty()) {
    out += " conflicting=";
    for (size_t i = 0; i < conflicting.size(); ++i) {
      if (i > 0) out += ',';
      out += EncodeTxnId(conflicting[i]);
    }
  }
  if (!detail.empty()) StrAppend(out, " (", detail, ")");
  return out;
}

SiteTimeline& TraceAnalyzer::SiteOf(TxnTimeline& txn, SiteId site) {
  SiteTimeline& s = txn.sites[site];
  s.site = site;
  return s;
}

ResubmissionChain& TraceAnalyzer::ChainSlot(const TxnId& txn, SiteId site) {
  const auto key = std::make_pair(txn, site);
  auto it = chain_index_.find(key);
  if (it == chain_index_.end()) {
    it = chain_index_.emplace(key, chains_.size()).first;
    ResubmissionChain chain;
    chain.txn = txn;
    chain.site = site;
    chains_.push_back(std::move(chain));
  }
  return chains_[it->second];
}

TraceAnalyzer::TraceAnalyzer(std::vector<Event> events)
    : events_(std::move(events)) {
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (!e.txn.valid()) continue;
    TxnTimeline& txn = timelines_[e.txn];
    txn.txn = e.txn;
    txn.events.push_back(i);

    switch (e.kind) {
      case EventKind::kTxnBegin:
        txn.coordinator = e.site;
        txn.begin = e.at;
        txn.steps = e.value;
        break;
      case EventKind::kTxnEnd:
        txn.end = e.at;
        txn.finished = true;
        txn.committed = e.ok;
        break;
      case EventKind::kStepStart: {
        SiteTimeline& s = SiteOf(txn, e.peer);
        if (s.dml.begin < 0) s.dml.begin = e.at;
        break;
      }
      case EventKind::kStepEnd: {
        SiteTimeline& s = SiteOf(txn, e.peer);
        s.dml.end = e.at;
        break;
      }
      case EventKind::kPrepareSend:
        SiteOf(txn, e.peer).prepare.begin = e.at;
        break;
      case EventKind::kVoteRecv: {
        SiteTimeline& s = SiteOf(txn, e.peer);
        s.prepare.end = e.at;
        s.voted = true;
        s.vote_ready = e.ok;
        break;
      }
      case EventKind::kDecisionSend:
        SiteOf(txn, e.peer).decision.begin = e.at;
        break;
      case EventKind::kAckRecv:
        SiteOf(txn, e.peer).decision.end = e.at;
        break;
      case EventKind::kCertRefuse: {
        SiteOf(txn, e.site).refuse = e.refuse;
        Refusal r;
        r.txn = e.txn;
        r.site = e.site;
        r.at = e.at;
        r.kind = e.refuse;
        r.detail = e.detail;
        r.conflicting = e.related;
        refusals_.push_back(std::move(r));
        break;
      }
      case EventKind::kUnilateralAbort: {
        // Local transactions can be unilaterally aborted too (lock
        // timeouts); chains only track global subtransactions.
        if (!e.txn.global()) break;
        SiteOf(txn, e.site).unilateral_aborts += 1;
        ChainSlot(e.txn, e.site).unilateral_aborts += 1;
        break;
      }
      case EventKind::kResubmitStart: {
        SiteOf(txn, e.site).resubmissions += 1;
        ResubmissionAttempt attempt;
        attempt.resubmission = e.resubmission;
        attempt.attempt = e.value;
        attempt.started = e.at;
        ChainSlot(e.txn, e.site).attempts.push_back(attempt);
        break;
      }
      case EventKind::kResubmitDone: {
        ResubmissionChain& chain = ChainSlot(e.txn, e.site);
        if (!chain.attempts.empty()) {
          chain.attempts.back().completed = e.at;
        }
        break;
      }
      case EventKind::kLocalCommit: {
        SiteOf(txn, e.site).locally_committed = true;
        auto it = chain_index_.find(std::make_pair(e.txn, e.site));
        if (it != chain_index_.end()) {
          chains_[it->second].locally_committed = true;
        }
        break;
      }
      default:
        break;
    }
  }
  // Keep only chains that actually saw a failure or resubmission.
  std::vector<ResubmissionChain> active;
  chain_index_.clear();
  for (ResubmissionChain& chain : chains_) {
    if (chain.unilateral_aborts == 0 && chain.attempts.empty()) continue;
    chain_index_[std::make_pair(chain.txn, chain.site)] = active.size();
    active.push_back(std::move(chain));
  }
  chains_ = std::move(active);
}

const TxnTimeline* TraceAnalyzer::Timeline(const TxnId& txn) const {
  auto it = timelines_.find(txn);
  return it == timelines_.end() ? nullptr : &it->second;
}

const ResubmissionChain* TraceAnalyzer::ChainOf(const TxnId& txn,
                                                SiteId site) const {
  auto it = chain_index_.find(std::make_pair(txn, site));
  return it == chain_index_.end() ? nullptr : &chains_[it->second];
}

std::string TraceAnalyzer::ReportTxn(const TxnId& txn) const {
  const TxnTimeline* timeline = Timeline(txn);
  if (timeline == nullptr) {
    return StrCat(EncodeTxnId(txn), ": not in trace\n");
  }
  std::string out =
      StrCat(EncodeTxnId(txn), " coordinator=", timeline->coordinator,
             timeline->finished
                 ? (timeline->committed ? " COMMITTED" : " ABORTED")
                 : " UNFINISHED",
             timeline->begin >= 0 && timeline->end >= 0
                 ? StrCat(" latency=", timeline->end - timeline->begin, "us")
                 : std::string(),
             "\n");
  for (size_t index : timeline->events) {
    const Event& e = events_[index];
    StrAppend(out, "  t=", e.at, " ", EventKindName(e.kind));
    if (e.site != kInvalidSite) StrAppend(out, " site=", e.site);
    if (e.peer != kInvalidSite) StrAppend(out, " peer=", e.peer);
    if (e.resubmission >= 0) StrAppend(out, " j=", e.resubmission);
    if (e.value >= 0) StrAppend(out, " value=", e.value);
    if (e.sn.valid()) StrAppend(out, " sn=", EncodeSerialNumber(e.sn));
    if (e.refuse != RefuseKind::kNone) {
      StrAppend(out, " refuse=", RefuseKindName(e.refuse));
    }
    if (!e.related.empty()) {
      out += " related=";
      for (size_t i = 0; i < e.related.size(); ++i) {
        if (i > 0) out += ',';
        out += EncodeTxnId(e.related[i]);
      }
    }
    if (!e.detail.empty()) StrAppend(out, " \"", e.detail, "\"");
    out += '\n';
  }
  for (const auto& [site, s] : timeline->sites) {
    StrAppend(out, "  site ", site, ":");
    if (s.dml.complete()) StrAppend(out, " dml=", s.dml.length(), "us");
    if (s.prepare.complete()) {
      StrAppend(out, " prepare=", s.prepare.length(), "us");
    }
    if (s.decision.complete()) {
      StrAppend(out, " decision=", s.decision.length(), "us");
    }
    if (s.resubmissions > 0) StrAppend(out, " resub=", s.resubmissions);
    if (s.refuse != RefuseKind::kNone) {
      StrAppend(out, " refused=", RefuseKindName(s.refuse));
    }
    out += '\n';
  }
  return out;
}

std::string TraceAnalyzer::Summary() const {
  int64_t committed = 0, aborted = 0, unfinished = 0;
  for (const auto& [id, t] : timelines_) {
    if (!id.global()) continue;
    if (!t.finished) {
      ++unfinished;
    } else if (t.committed) {
      ++committed;
    } else {
      ++aborted;
    }
  }
  int64_t reconfigs = 0, handoffs = 0, epoch_refused = 0;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kReconfigDone) ++reconfigs;
    if (e.kind == EventKind::kReconfigHandoff) ++handoffs;
    if (e.kind == EventKind::kEpochRefused) ++epoch_refused;
  }
  std::string out =
      StrCat("trace: ", events_.size(), " events, ", timelines_.size(),
             " transactions (", committed, " committed, ", aborted,
             " aborted, ", unfinished, " unfinished), ", chains_.size(),
             " resubmission chain(s), ", refusals_.size(),
             " certification refusal(s)");
  // Membership changes only clutter the summary of runs that had none.
  if (reconfigs + handoffs + epoch_refused > 0) {
    StrAppend(out, ", ", reconfigs, " reconfiguration(s) (", handoffs,
              " shard handoff(s), ", epoch_refused, " epoch refusal(s))");
  }
  return out;
}

}  // namespace hermes::trace
