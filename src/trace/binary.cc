#include "trace/binary.h"

#include <cstring>
#include <iterator>

#include "common/str.h"

namespace hermes::trace {

namespace {

// Little-endian scalar accessors — explicit byte shuffles so the format is
// identical on any host.
void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
void PutI64(uint8_t* p, int64_t v) { PutU64(p, static_cast<uint64_t>(v)); }
int64_t GetI64(const uint8_t* p) { return static_cast<int64_t>(GetU64(p)); }
void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
void PutI32(uint8_t* p, int32_t v) { PutU32(p, static_cast<uint32_t>(v)); }
int32_t GetI32(const uint8_t* p) { return static_cast<int32_t>(GetU32(p)); }

constexpr size_t kNumEventKinds = std::size(kAllEventKinds);
constexpr size_t kNumRefuseKinds = std::size(kAllRefuseKinds);

}  // namespace

bool IsBinaryTrace(std::string_view data) {
  return data.size() >= sizeof(kBinaryTraceMagic) &&
         std::memcmp(data.data(), kBinaryTraceMagic,
                     sizeof(kBinaryTraceMagic)) == 0;
}

uint32_t StringInterner::Intern(std::string_view s) {
  if (s.empty()) return 0;
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  entries_.emplace_back(s);
  const uint32_t id = static_cast<uint32_t>(entries_.size());  // ids 1..
  ids_.emplace(entries_.back(), id);
  return id;
}

void StringInterner::Clear() {
  entries_.clear();
  ids_.clear();
}

std::string EncodeRelated(const std::vector<TxnId>& related) {
  std::string out;
  for (size_t i = 0; i < related.size(); ++i) {
    if (i > 0) out += ',';
    out += EncodeTxnId(related[i]);
  }
  return out;
}

Result<std::vector<TxnId>> DecodeRelated(const std::string& text) {
  std::vector<TxnId> out;
  size_t start = 0;
  while (start <= text.size()) {
    if (text.empty()) break;
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    Result<TxnId> id = DecodeTxnId(text.substr(start, end - start));
    if (!id.ok()) return id.status();
    out.push_back(*id);
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

void EncodeBinaryRecord(const Event& e, uint32_t detail_id,
                        uint32_t related_id, uint8_t* out) {
  PutI64(out + 0, e.seq);
  PutI64(out + 8, e.at);
  PutI64(out + 16, e.value);
  PutI64(out + 24, e.txn.seq);
  PutI64(out + 32, e.sn.clock);
  PutI64(out + 40, e.sn.seq);
  PutI32(out + 48, e.txn.site);
  PutI32(out + 52, e.sn.coordinator);
  PutI32(out + 56, e.site);
  PutI32(out + 60, e.peer);
  PutI32(out + 64, e.resubmission);
  PutU32(out + 68, detail_id);
  PutU32(out + 72, related_id);
  out[76] = static_cast<uint8_t>(e.kind);
  out[77] = static_cast<uint8_t>(e.refuse);
  out[78] = static_cast<uint8_t>((e.ok ? 1u : 0u) |
                                 (static_cast<uint8_t>(e.txn.kind) << 1));
  out[79] = 0;
}

Status DecodeBinaryRecord(const uint8_t* in,
                          const std::vector<std::string>& dict, Event& out) {
  if (in[76] >= kNumEventKinds) {
    return Status::InvalidArgument(
        StrCat("unknown event kind byte: ", in[76]));
  }
  if (in[77] >= kNumRefuseKinds) {
    return Status::InvalidArgument(
        StrCat("unknown refuse kind byte: ", in[77]));
  }
  const uint8_t flags = in[78];
  const uint8_t txn_kind = (flags >> 1) & 0x3;
  if (txn_kind > 2) {
    return Status::InvalidArgument(
        StrCat("bad transaction kind in flags: ", flags));
  }
  const uint32_t detail_id = GetU32(in + 68);
  const uint32_t related_id = GetU32(in + 72);
  if (detail_id >= dict.size() || related_id >= dict.size()) {
    return Status::InvalidArgument("dictionary id out of range");
  }
  out.seq = GetI64(in + 0);
  out.at = GetI64(in + 8);
  out.value = GetI64(in + 16);
  out.txn.seq = GetI64(in + 24);
  out.sn.clock = GetI64(in + 32);
  out.sn.seq = GetI64(in + 40);
  out.txn.site = GetI32(in + 48);
  out.sn.coordinator = GetI32(in + 52);
  out.site = GetI32(in + 56);
  out.peer = GetI32(in + 60);
  out.resubmission = GetI32(in + 64);
  out.kind = kAllEventKinds[in[76]];
  out.refuse = kAllRefuseKinds[in[77]];
  out.ok = (flags & 1) != 0;
  out.txn.kind = static_cast<TxnId::Kind>(txn_kind);
  out.detail = dict[detail_id];
  Result<std::vector<TxnId>> related = DecodeRelated(dict[related_id]);
  if (!related.ok()) return related.status();
  out.related = std::move(*related);
  return Status::Ok();
}

void BinaryTraceWriter::Add(const Event& e) {
  const uint32_t detail_id = interner_.Intern(e.detail);
  const uint32_t related_id = interner_.Intern(EncodeRelated(e.related));
  uint8_t rec[kBinaryRecordSize];
  EncodeBinaryRecord(e, detail_id, related_id, rec);
  records_.append(reinterpret_cast<const char*>(rec), sizeof(rec));
  ++count_;
}

std::string BinaryTraceWriter::Finish() const {
  std::string out;
  const std::vector<std::string>& dict = interner_.entries();
  size_t dict_bytes = 0;
  for (const std::string& s : dict) dict_bytes += 4 + s.size();
  out.reserve(kBinaryHeaderSize + dict_bytes + records_.size());

  uint8_t header[kBinaryHeaderSize] = {};
  std::memcpy(header, kBinaryTraceMagic, sizeof(kBinaryTraceMagic));
  header[4] = kBinaryTraceVersion;
  PutU64(header + 8, dict.size());
  PutU64(header + 16, static_cast<uint64_t>(count_));
  PutU64(header + 24, static_cast<uint64_t>(dropped_));
  PutU64(header + 32, static_cast<uint64_t>(sampled_out_));
  out.append(reinterpret_cast<const char*>(header), sizeof(header));

  for (const std::string& s : dict) {
    uint8_t len[4];
    PutU32(len, static_cast<uint32_t>(s.size()));
    out.append(reinterpret_cast<const char*>(len), sizeof(len));
    out += s;
  }
  out += records_;
  return out;
}

namespace {

void Warn(BinaryParse& p, std::string msg) {
  if (p.warnings.size() < BinaryParse::kMaxWarnings) {
    p.warnings.push_back(std::move(msg));
  }
}

}  // namespace

BinaryParse ForEachBinaryEvent(std::string_view data,
                               const std::function<void(const Event&)>& fn) {
  BinaryParse p;
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  if (!IsBinaryTrace(data)) {
    p.truncated = true;
    Warn(p, "missing binary trace magic");
    return p;
  }
  if (data.size() < kBinaryHeaderSize) {
    p.truncated = true;
    Warn(p, "file ends inside the header");
    return p;
  }
  if (bytes[4] != kBinaryTraceVersion) {
    p.truncated = true;
    Warn(p, StrCat("unsupported binary trace version: ", bytes[4]));
    return p;
  }
  const uint64_t dict_count = GetU64(bytes + 8);
  p.records_declared = static_cast<int64_t>(GetU64(bytes + 16));
  p.dropped = static_cast<int64_t>(GetU64(bytes + 24));
  p.sampled_out = static_cast<int64_t>(GetU64(bytes + 32));

  std::vector<std::string> dict;
  dict.emplace_back();  // id 0: the empty string
  size_t pos = kBinaryHeaderSize;
  for (uint64_t i = 0; i < dict_count; ++i) {
    if (pos + 4 > data.size()) {
      p.truncated = true;
      Warn(p, StrCat("file ends inside dictionary entry ", i + 1));
      return p;
    }
    const uint32_t len = GetU32(bytes + pos);
    pos += 4;
    if (pos + len > data.size()) {
      p.truncated = true;
      Warn(p, StrCat("file ends inside dictionary entry ", i + 1));
      return p;
    }
    dict.emplace_back(data.substr(pos, len));
    pos += len;
  }

  int64_t read = 0;
  while (read < p.records_declared) {
    if (pos + kBinaryRecordSize > data.size()) {
      p.truncated = true;
      Warn(p, StrCat("file ends mid-record after ", read, " of ",
                     p.records_declared, " record(s)"));
      break;
    }
    Event e;
    const Status s = DecodeBinaryRecord(bytes + pos, dict, e);
    pos += kBinaryRecordSize;
    ++read;
    if (!s.ok()) {
      ++p.skipped_records;
      Warn(p, StrCat("record ", read, ": ", s.message()));
      continue;
    }
    fn(e);
  }
  if (!p.truncated && pos != data.size()) {
    Warn(p, StrCat(data.size() - pos, " trailing byte(s) after the last ",
                   "declared record"));
    ++p.skipped_records;
  }
  return p;
}

BinaryParse ParseBinaryLenient(std::string_view data) {
  std::vector<Event> events;
  BinaryParse p =
      ForEachBinaryEvent(data, [&](const Event& e) { events.push_back(e); });
  p.events = std::move(events);
  return p;
}

Result<std::vector<Event>> ParseBinary(std::string_view data) {
  BinaryParse p = ParseBinaryLenient(data);
  if (p.truncated || p.skipped_records > 0) {
    return Status::InvalidArgument(StrCat(
        "binary trace damaged: ", p.events.size(), " of ",
        p.records_declared, " record(s) recovered",
        p.warnings.empty() ? "" : StrCat(" — ", p.warnings.front())));
  }
  return std::move(p.events);
}

}  // namespace hermes::trace
