// Virtual-time metrics series bucketed from the trace event stream.
//
// The run's virtual timeline is cut into fixed windows (100 ms of simulated
// time by default); each window accumulates throughput counters (begun /
// committed / aborted global transactions, certification refusals,
// resubmissions) and load gauges (peak in-flight transactions, peak
// prepared-blocked subtransactions). Counters sum and gauges max under
// Merge, window by window, so merging is commutative and associative and
// the harness can fold per-seed series into a cell in any completion order
// with a byte-identical result.

#ifndef HERMES_TRACE_TIMESERIES_H_
#define HERMES_TRACE_TIMESERIES_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.h"

namespace hermes::trace {

struct TimeSeries {
  static constexpr sim::Duration kDefaultWindow = 100 * sim::kMillisecond;

  // One fixed-width window of virtual time.
  struct Window {
    // Counters: events that happened inside the window; summed on Merge.
    int64_t begun = 0;
    int64_t committed = 0;
    int64_t aborted = 0;
    int64_t refusals = 0;
    int64_t resubmissions = 0;
    // Gauges: peak level observed during the window; maxed on Merge.
    int64_t max_in_flight = 0;
    int64_t max_prepared = 0;

    friend bool operator==(const Window& a, const Window& b) = default;
  };

  sim::Duration window_us = kDefaultWindow;
  std::vector<Window> windows;  // index i covers [i*window_us, (i+1)*...)

  bool empty() const { return windows.empty(); }

  // Window-by-window fold: counters sum, gauges max, the shorter series is
  // padded with empty windows. An empty series adopts the other's width;
  // merging two non-empty series requires equal window_us (mismatched
  // widths are merged by index, which is meaningless — callers keep one
  // width per artifact).
  void Merge(const TimeSeries& other);

  // Deterministic line dump: header plus one line per window.
  std::string ToString() const;

  friend bool operator==(const TimeSeries& a, const TimeSeries& b) = default;
};

// Incremental bucketing: feed events one at a time (in trace order), read
// a consistent snapshot at any point, take the series at the end.
// Attachable to a Tracer as a streaming fold — the workload driver grows
// the run's series this way while the simulation executes, so the series
// stays complete even when a fixed-size ring has evicted early records.
// Feeding the same events BuildTimeSeries would receive yields an
// identical series.
class TimeSeriesBuilder : public EventFold {
 public:
  explicit TimeSeriesBuilder(
      sim::Duration window_us = TimeSeries::kDefaultWindow);

  void Add(const Event& e);
  void Fold(const Event& e) override { Add(e); }

  // A copy of the series built so far — the mid-run flush snapshot.
  TimeSeries Snapshot() const { return series_; }

  // Moves out the series and resets the builder.
  TimeSeries Finish();

 private:
  TimeSeries series_;
  int64_t in_flight_ = 0;
  std::set<TxnId> begun_;  // guards double counting on duplicate events
  std::set<std::pair<TxnId, SiteId>> prepared_;

  TimeSeries::Window& WindowAt(sim::Time at);
  void Gauges(TimeSeries::Window& w);
};

// Buckets a trace into a series. Only global-transaction events count;
// prepared levels follow certification READY .. local commit/rollback.
TimeSeries BuildTimeSeries(const std::vector<Event>& events,
                           sim::Duration window_us = TimeSeries::kDefaultWindow);

// Streams the tracer's stored events (either backend) into a series.
TimeSeries BuildTimeSeries(const Tracer& tracer,
                           sim::Duration window_us = TimeSeries::kDefaultWindow);

}  // namespace hermes::trace

#endif  // HERMES_TRACE_TIMESERIES_H_
