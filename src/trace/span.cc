#include "trace/span.h"

#include <map>
#include <utility>

#include "common/str.h"

namespace hermes::trace {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxn:
      return "txn";
    case SpanKind::kDml:
      return "dml";
    case SpanKind::kPrepare:
      return "prepare";
    case SpanKind::kCertification:
      return "certify";
    case SpanKind::kBlocked:
      return "blocked";
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kResubmission:
      return "resubmit";
    case SpanKind::kConsensus:
      return "consensus";
  }
  return "?";
}

namespace {

using Key = std::pair<TxnId, SiteId>;

}  // namespace

// Builder state: open span ids per (transaction, site) and per kind.
struct SpanForestBuilder::Impl {
  SpanForest forest;
  std::map<TxnId, int32_t> root_of;
  std::map<Key, int32_t> open_dml;
  std::map<Key, int32_t> open_prepare;
  std::map<Key, int32_t> open_cert;
  std::map<Key, int32_t> open_blocked;
  std::map<Key, int32_t> open_decision;
  std::map<Key, int32_t> open_resubmit;
  std::map<Key, int32_t> open_consensus;
  std::map<Key, int32_t> last_resubmit;  // previous incarnation's span

  int32_t RootOf(const TxnId& txn, sim::Time at) {
    auto it = root_of.find(txn);
    if (it != root_of.end()) return it->second;
    // Root seen mid-flight (trace started late or kTxnBegin lost): open
    // an implicit root at the first referencing event.
    Span root;
    root.id = static_cast<int32_t>(forest.spans.size());
    root.kind = SpanKind::kTxn;
    root.txn = txn;
    root.begin = at;
    forest.roots.push_back(root.id);
    root_of.emplace(txn, root.id);
    forest.spans.push_back(std::move(root));
    return forest.spans.back().id;
  }

  int32_t Open(std::map<Key, int32_t>& table, SpanKind kind,
               const TxnId& txn, SiteId site, sim::Time at) {
    Span s;
    s.id = static_cast<int32_t>(forest.spans.size());
    s.parent = RootOf(txn, at);
    s.kind = kind;
    s.txn = txn;
    s.site = site;
    s.begin = at;
    forest.spans[static_cast<size_t>(s.parent)].children.push_back(s.id);
    table[Key{txn, site}] = s.id;
    forest.spans.push_back(std::move(s));
    return forest.spans.back().id;
  }

  Span* Find(std::map<Key, int32_t>& table, const TxnId& txn, SiteId site) {
    auto it = table.find(Key{txn, site});
    if (it == table.end()) return nullptr;
    return &forest.spans[static_cast<size_t>(it->second)];
  }

  Span* Close(std::map<Key, int32_t>& table, const TxnId& txn, SiteId site,
              sim::Time at) {
    auto it = table.find(Key{txn, site});
    if (it == table.end()) return nullptr;
    Span* s = &forest.spans[static_cast<size_t>(it->second)];
    s->end = at;
    table.erase(it);
    return s;
  }

  void Note(Span* span, sim::Time at, std::string label) {
    span->notes.push_back(SpanNote{at, std::move(label)});
  }

  // Attaches a note to the innermost open span that explains it: the
  // blocking window if one is open at the site, else the in-flight
  // resubmission, else the transaction root.
  void NoteInnermost(const TxnId& txn, SiteId site, sim::Time at,
                     std::string label) {
    if (Span* s = Find(open_blocked, txn, site)) {
      Note(s, at, std::move(label));
      return;
    }
    if (Span* s = Find(open_resubmit, txn, site)) {
      Note(s, at, std::move(label));
      return;
    }
    Note(&forest.spans[static_cast<size_t>(RootOf(txn, at))], at,
         std::move(label));
  }

  void Add(const Event& e);
};

void SpanForestBuilder::Impl::Add(const Event& e) {
  Impl& b = *this;
  {
    if (e.at > b.forest.trace_end) b.forest.trace_end = e.at;
    if (!e.txn.valid() || !e.txn.global()) return;
    switch (e.kind) {
      case EventKind::kTxnBegin: {
        auto it = b.root_of.find(e.txn);
        if (it != b.root_of.end()) {
          b.Note(&b.forest.spans[static_cast<size_t>(it->second)], e.at,
                 "duplicate_begin");
          break;
        }
        const int32_t id = b.RootOf(e.txn, e.at);
        Span& root = b.forest.spans[static_cast<size_t>(id)];
        root.site = e.site;
        root.value = e.value;  // declared step count
        break;
      }
      case EventKind::kTxnEnd: {
        Span& root = b.forest.spans[static_cast<size_t>(b.RootOf(e.txn, e.at))];
        root.end = e.at;
        root.ok = e.ok;
        break;
      }
      case EventKind::kStepStart: {
        Span* dml = b.Find(b.open_dml, e.txn, e.peer);
        if (dml == nullptr) {
          b.Open(b.open_dml, SpanKind::kDml, e.txn, e.peer, e.at);
        }
        break;
      }
      case EventKind::kStepEnd: {
        // The DML window stays open (later steps may hit the same site);
        // its end is stretched to the last reply observed.
        if (Span* dml = b.Find(b.open_dml, e.txn, e.peer)) dml->end = e.at;
        break;
      }
      case EventKind::kPrepareSend: {
        // A PREPARE fan-out closes the site's DML window for good.
        if (Span* dml = b.Find(b.open_dml, e.txn, e.peer)) {
          if (dml->end < 0) dml->end = dml->begin;
          b.open_dml.erase(Key{e.txn, e.peer});
        }
        if (Span* p = b.Find(b.open_prepare, e.txn, e.peer)) {
          b.Note(p, e.at, "prepare_resend");
          break;
        }
        b.Open(b.open_prepare, SpanKind::kPrepare, e.txn, e.peer, e.at);
        break;
      }
      case EventKind::kVoteRecv: {
        if (Span* p = b.Close(b.open_prepare, e.txn, e.peer, e.at)) {
          p->ok = e.ok;
        }
        break;
      }
      case EventKind::kPrepareRecv: {
        if (Span* c = b.Find(b.open_cert, e.txn, e.site)) {
          b.Note(c, e.at, "duplicate_prepare");
          break;
        }
        Span& c = b.forest.spans[static_cast<size_t>(
            b.Open(b.open_cert, SpanKind::kCertification, e.txn, e.site,
                   e.at))];
        c.resubmission = e.resubmission;
        break;
      }
      case EventKind::kCertReady: {
        if (Span* c = b.Close(b.open_cert, e.txn, e.site, e.at)) {
          c->ok = true;
        }
        // READY opens the prepared blocking window: the agent can now
        // neither commit nor abort on its own until the decision lands.
        if (b.Find(b.open_blocked, e.txn, e.site) == nullptr) {
          Span& w = b.forest.spans[static_cast<size_t>(
              b.Open(b.open_blocked, SpanKind::kBlocked, e.txn, e.site,
                     e.at))];
          w.resubmission = e.resubmission;
        }
        break;
      }
      case EventKind::kCertRefuse: {
        if (Span* c = b.Close(b.open_cert, e.txn, e.site, e.at)) {
          c->ok = false;
          c->refuse = e.refuse;
        }
        break;
      }
      case EventKind::kLocalCommit: {
        if (Span* w = b.Close(b.open_blocked, e.txn, e.site, e.at)) {
          w->ok = true;
        }
        break;
      }
      case EventKind::kLocalAbort: {
        // Only closes a blocking window if the subtransaction was
        // prepared; a rollback of an active subtransaction has no window.
        if (Span* w = b.Close(b.open_blocked, e.txn, e.site, e.at)) {
          w->ok = false;
        }
        break;
      }
      case EventKind::kDecisionSend: {
        if (Span* d = b.Find(b.open_decision, e.txn, e.peer)) {
          b.Note(d, e.at, "decision_resend");
          break;
        }
        Span& d = b.forest.spans[static_cast<size_t>(
            b.Open(b.open_decision, SpanKind::kDecision, e.txn, e.peer,
                   e.at))];
        d.ok = e.ok;  // commit vs rollback decision
        break;
      }
      case EventKind::kAckRecv: {
        b.Close(b.open_decision, e.txn, e.peer, e.at);
        break;
      }
      case EventKind::kResubmitStart: {
        Span& r = b.forest.spans[static_cast<size_t>(
            b.Open(b.open_resubmit, SpanKind::kResubmission, e.txn, e.site,
                   e.at))];
        r.resubmission = e.resubmission;
        r.value = e.value;  // attempt number within this prepared period
        auto it = b.last_resubmit.find(Key{e.txn, e.site});
        if (it != b.last_resubmit.end()) r.prev = it->second;
        b.last_resubmit[Key{e.txn, e.site}] = r.id;
        break;
      }
      case EventKind::kResubmitDone: {
        if (Span* r = b.Close(b.open_resubmit, e.txn, e.site, e.at)) {
          r->ok = true;
        }
        break;
      }
      case EventKind::kUnilateralAbort: {
        b.NoteInnermost(e.txn, e.site, e.at,
                        e.detail.empty()
                            ? std::string("unilateral_abort")
                            : StrCat("unilateral_abort(", e.detail, ")"));
        break;
      }
      case EventKind::kInquirySend: {
        b.NoteInnermost(e.txn, e.site, e.at, StrCat("inquiry#", e.value));
        break;
      }
      case EventKind::kInquiryReply: {
        b.Note(&b.forest.spans[static_cast<size_t>(b.RootOf(e.txn, e.at))],
               e.at,
               StrCat("inquiry_reply(", e.ok ? "commit" : "rollback",
                      e.detail.empty() ? "" : StrCat(",", e.detail), ")"));
        break;
      }
      case EventKind::kCommitRetry: {
        b.NoteInnermost(e.txn, e.site, e.at, "commit_retry");
        break;
      }
      case EventKind::kShortCommit: {
        b.NoteInnermost(e.txn, e.site, e.at,
                        StrCat("short_commit(", e.detail, ")"));
        break;
      }
      case EventKind::kCsnAssign: {
        b.Note(&b.forest.spans[static_cast<size_t>(b.RootOf(e.txn, e.at))],
               e.at, StrCat("csn_assign(", e.value, ")"));
        break;
      }
      case EventKind::kRetransmit: {
        b.Note(&b.forest.spans[static_cast<size_t>(b.RootOf(e.txn, e.at))],
               e.at,
               StrCat("retransmit(", e.detail, ")#", e.value, "->site",
                      e.peer));
        break;
      }
      case EventKind::kInjectFailure: {
        b.NoteInnermost(e.txn, e.site, e.at, "inject_failure");
        break;
      }
      case EventKind::kPaxosBegin:
      case EventKind::kPaxosElect: {
        // One consensus span per deciding node (leader or elected
        // resolver); a coordinator crash can leave the leader's span open
        // while a resolver's span carries the outcome.
        if (Span* c = b.Find(b.open_consensus, e.txn, e.site)) {
          b.Note(c, e.at,
                 e.kind == EventKind::kPaxosElect
                     ? StrCat("paxos_elect#", e.value)
                     : std::string("paxos_rebegin"));
          break;
        }
        Span& c = b.forest.spans[static_cast<size_t>(
            b.Open(b.open_consensus, SpanKind::kConsensus, e.txn, e.site,
                   e.at))];
        c.value = e.value;  // participants (begin) / election attempt
        break;
      }
      case EventKind::kPaxosDecided: {
        if (Span* c = b.Close(b.open_consensus, e.txn, e.site, e.at)) {
          c->ok = e.ok;
          break;
        }
        // Sealed without an acceptor round (definite local abort) or a
        // learner catching up on an already-chosen outcome.
        b.Note(&b.forest.spans[static_cast<size_t>(b.RootOf(e.txn, e.at))],
               e.at, StrCat("paxos_decided(", e.ok ? "commit" : "abort", ")"));
        break;
      }
      case EventKind::kPaxosVote:
      case EventKind::kPaxosPromise:
      case EventKind::kPaxosAccept:
      case EventKind::kPaxosPrepare: {
        const char* what = e.kind == EventKind::kPaxosVote      ? "paxos_vote"
                           : e.kind == EventKind::kPaxosPromise ? "paxos_promise"
                           : e.kind == EventKind::kPaxosAccept  ? "paxos_accept"
                                                                : "paxos_prepare";
        if (Span* c = b.Find(b.open_consensus, e.txn, e.site)) {
          b.Note(c, e.at, StrCat(what, "(", e.value, ")"));
          break;
        }
        b.Note(&b.forest.spans[static_cast<size_t>(b.RootOf(e.txn, e.at))],
               e.at, StrCat(what, "(", e.value, ")@", e.site));
        break;
      }
      default:
        break;  // transport noise and non-txn events carry no span info
    }
  }
}

SpanForestBuilder::SpanForestBuilder() : impl_(std::make_unique<Impl>()) {}

SpanForestBuilder::~SpanForestBuilder() = default;

void SpanForestBuilder::Add(const Event& e) { impl_->Add(e); }

SpanForest SpanForestBuilder::Finish() {
  SpanForest out = std::move(impl_->forest);
  impl_ = std::make_unique<Impl>();
  return out;
}

SpanForest BuildSpanForest(const std::vector<Event>& events) {
  SpanForestBuilder b;
  for (const Event& e : events) b.Add(e);
  return b.Finish();
}

SpanForest BuildSpanForest(const Tracer& tracer) {
  SpanForestBuilder b;
  tracer.ForEach([&](const Event& e) { b.Add(e); });
  return b.Finish();
}

const Span* SpanForest::Root(const TxnId& txn) const {
  for (int32_t id : roots) {
    const Span& s = spans[static_cast<size_t>(id)];
    if (s.txn == txn) return &s;
  }
  return nullptr;
}

namespace {

void AppendSpanLine(std::string& out, const SpanForest& forest,
                    const Span& s, int depth) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  if (s.kind == SpanKind::kTxn) {
    StrAppend(out, "txn ", EncodeTxnId(s.txn), " coordinator=", s.site,
              " t=[", s.begin, "..",
              s.end >= 0 ? StrCat(s.end) : std::string("open"), "]");
    if (s.end >= 0) {
      StrAppend(out, " ", s.ok ? "COMMITTED" : "ABORTED", " len=",
                s.length(), "us");
    }
    if (s.value >= 0) StrAppend(out, " steps=", s.value);
  } else {
    StrAppend(out, SpanKindName(s.kind), " site=", s.site, " t=[", s.begin,
              "..", s.end >= 0 ? StrCat(s.end) : std::string("open"), "]");
    if (s.end >= 0) StrAppend(out, " len=", s.length(), "us");
    if (s.kind == SpanKind::kCertification) {
      StrAppend(out, s.ok ? " READY" : StrCat(" REFUSE(",
                                              RefuseKindName(s.refuse), ")"));
    } else if (s.kind == SpanKind::kBlocked && s.end >= 0) {
      StrAppend(out, s.ok ? " ->commit" : " ->abort");
    } else if (s.kind == SpanKind::kDecision) {
      StrAppend(out, s.ok ? " COMMIT" : " ROLLBACK");
    } else if (s.kind == SpanKind::kPrepare && s.end >= 0) {
      StrAppend(out, s.ok ? " READY" : " REFUSE");
    } else if (s.kind == SpanKind::kConsensus && s.end >= 0) {
      StrAppend(out, s.ok ? " CHOSE-COMMIT" : " CHOSE-ABORT");
    }
    if (s.resubmission >= 0) StrAppend(out, " j=", s.resubmission);
    if (s.kind == SpanKind::kResubmission && s.value >= 0) {
      StrAppend(out, " attempt=", s.value);
    }
    if (s.prev >= 0) {
      StrAppend(out, " prev=j",
                forest.spans[static_cast<size_t>(s.prev)].resubmission);
    }
  }
  for (const SpanNote& n : s.notes) {
    StrAppend(out, " [t=", n.at, " ", n.label, "]");
  }
  out += '\n';
  for (int32_t child : s.children) {
    AppendSpanLine(out, forest, forest.spans[static_cast<size_t>(child)],
                   depth + 1);
  }
}

}  // namespace

std::string SpanForest::ToString() const {
  std::string out;
  for (int32_t id : roots) {
    AppendSpanLine(out, *this, spans[static_cast<size_t>(id)], 0);
  }
  return out;
}

}  // namespace hermes::trace
