#include "trace/critical_path.h"

#include <algorithm>
#include <string_view>

#include "common/str.h"

namespace hermes::trace {

namespace {

int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(v, hi));
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

// "12.3%" with one decimal, round-half-up; "-" when the denominator is 0.
std::string Share(int64_t part, int64_t whole) {
  if (whole <= 0) return "-";
  const int64_t tenths = (part * 1000 + whole / 2) / whole;
  return StrCat(tenths / 10, ".", tenths % 10, "%");
}

// Latest retransmission wait inside [begin, end): the tail of the window
// after the *first* retransmit of the matching message kind fired, i.e.
// time that would not have been spent had the original message arrived.
int64_t RetxTail(const Span& root, std::string_view kind, sim::Time begin,
                 sim::Time end) {
  const std::string prefix = StrCat("retransmit(", kind, ")");
  for (const SpanNote& n : root.notes) {
    if (n.at < begin || n.at >= end) continue;
    if (HasPrefix(n.label, prefix)) return end - n.at;
  }
  return 0;
}

TxnCriticalPath AnalyzeTxn(const SpanForest& forest, const Span& root) {
  TxnCriticalPath cp;
  cp.txn = root.txn;
  cp.committed = root.ok;
  const sim::Time t0 = root.begin;
  const sim::Time tend = root.end;
  cp.phases.total = tend - t0;

  sim::Time dml_end = -1;
  sim::Time prep_begin = -1, prep_end = -1;
  sim::Time dec_begin = -1;
  sim::Time chosen = -1;  // earliest Paxos Commit outcome chosen
  sim::Duration cert_len = 0;
  sim::Time critical_vote = -1;
  for (int32_t id : root.children) {
    const Span& c = forest.spans[static_cast<size_t>(id)];
    switch (c.kind) {
      case SpanKind::kDml:
        if (c.closed()) dml_end = std::max(dml_end, c.end);
        break;
      case SpanKind::kPrepare:
        if (prep_begin < 0 || c.begin < prep_begin) prep_begin = c.begin;
        if (c.closed()) {
          prep_end = std::max(prep_end, c.end);
          if (c.end > critical_vote) {
            critical_vote = c.end;
            cp.critical_prepare_site = c.site;
          }
        }
        break;
      case SpanKind::kCertification:
        cert_len = std::max(cert_len, c.length());
        break;
      case SpanKind::kDecision:
        if (dec_begin < 0 || c.begin < dec_begin) dec_begin = c.begin;
        break;
      case SpanKind::kConsensus:
        // Several deciding nodes may run rounds (leader + elected
        // resolvers); the earliest chosen outcome is the one that ends
        // the acceptor round on the critical path.
        if (c.closed() && (chosen < 0 || c.end < chosen)) chosen = c.end;
        break;
      default:
        break;
    }
  }

  // Cut the coordinator timeline [t0, tend] at the observed boundaries,
  // clamping each cut to stay ordered so the segments always partition
  // the total even on truncated or abort-shortened transactions.
  const sim::Time a1 = dml_end >= 0 ? Clamp(dml_end, t0, tend) : t0;
  const sim::Time a2 = prep_begin >= 0 ? Clamp(prep_begin, a1, tend) : a1;
  const sim::Time a3 = prep_end >= 0 ? Clamp(prep_end, a2, tend) : a2;
  const sim::Time a4 = dec_begin >= 0 ? Clamp(dec_begin, a3, tend) : tend;

  cp.phases.dml = a1 - t0;
  cp.phases.other = a2 - a1;
  cp.phases.prepare = a3 - a2;
  // Under Paxos Commit the window between the last vote and the decision
  // fan-out splits at the instant the acceptor quorum chose the outcome:
  // before it the transaction is doing consensus work, after it the
  // coordinator is merely catching up (or crashed). 2PC has no consensus
  // span, so the whole window stays `blocked`.
  const sim::Time a3c = chosen >= 0 ? Clamp(chosen, a3, a4) : a3;
  cp.phases.consensus = a3c - a3;
  cp.phases.blocked = a4 - a3c;
  cp.phases.decision = tend - a4;

  // Certification runs inside the PREPARE round-trip; carve out the
  // longest participant's verdict time.
  cp.phases.certify = Clamp(cert_len, 0, cp.phases.prepare);
  cp.phases.prepare -= cp.phases.certify;

  // Phase tails spent waiting on a retransmitted message.
  const int64_t retx_dml = Clamp(RetxTail(root, "dml", t0, a1), 0,
                                 cp.phases.dml);
  cp.phases.dml -= retx_dml;
  const int64_t retx_prep = Clamp(RetxTail(root, "prepare", a2, a3), 0,
                                  cp.phases.prepare);
  cp.phases.prepare -= retx_prep;
  const int64_t retx_dec = Clamp(RetxTail(root, "decision", a4, tend), 0,
                                 cp.phases.decision);
  cp.phases.decision -= retx_dec;
  cp.phases.retx_wait = retx_dml + retx_prep + retx_dec;
  return cp;
}

}  // namespace

void PhaseBreakdown::Add(const PhaseBreakdown& o) {
  dml += o.dml;
  prepare += o.prepare;
  certify += o.certify;
  consensus += o.consensus;
  decision += o.decision;
  blocked += o.blocked;
  retx_wait += o.retx_wait;
  other += o.other;
  total += o.total;
}

std::string TxnCriticalPath::ToString() const {
  std::string out = StrCat(EncodeTxnId(txn), " ",
                           committed ? "committed" : "aborted", " total=",
                           phases.total, "us: dml=", phases.dml,
                           " prepare=", phases.prepare, " certify=",
                           phases.certify, " consensus=", phases.consensus,
                           " blocked=", phases.blocked,
                           " decision=", phases.decision, " retx_wait=",
                           phases.retx_wait, " other=", phases.other);
  if (critical_prepare_site != kInvalidSite) {
    StrAppend(out, " critical_prepare_site=", critical_prepare_site);
  }
  return out;
}

std::string BlockingWindowStats::ToString() const {
  std::string out =
      StrCat("blocking windows: ", windows, " closed, ", open_windows,
             " open; total=", total_us, "us mean=", MeanUs(), "us max=",
             max_us, "us inquiries=", inquiries);
  if (windows > 0) {
    StrAppend(out, " p50=", hist.Percentile(50), "us p95=",
              hist.Percentile(95), "us p99=", hist.Percentile(99), "us");
  }
  return out;
}

const TxnCriticalPath* CriticalPathReport::Find(const TxnId& txn) const {
  for (const TxnCriticalPath& cp : txns) {
    if (cp.txn == txn) return &cp;
  }
  return nullptr;
}

std::string CriticalPathReport::ToString() const {
  std::string out = StrCat("critical path: ", committed_txns, " committed, ",
                           aborted_txns, " aborted, ", unfinished_txns,
                           " unfinished\n");
  const int64_t n = committed_txns;
  const int64_t denom = committed_total.total;
  struct Row {
    const char* name;
    int64_t us;
  };
  const Row rows[] = {
      {"dml", committed_total.dml},         {"prepare", committed_total.prepare},
      {"certify", committed_total.certify},
      {"consensus", committed_total.consensus},
      {"blocked", committed_total.blocked},
      {"decision", committed_total.decision},
      {"retx_wait", committed_total.retx_wait},
      {"other", committed_total.other},     {"total", committed_total.total},
  };
  StrAppend(out, "  phase      total_us    mean_us   share\n");
  for (const Row& r : rows) {
    std::string name = r.name;
    name.append(name.size() < 11 ? 11 - name.size() : 0, ' ');
    std::string total_s = StrCat(r.us);
    std::string mean_s = StrCat(n > 0 ? r.us / n : 0);
    std::string share_s = Share(r.us, denom);
    StrAppend(out, "  ", name);
    out.append(total_s.size() < 8 ? 8 - total_s.size() : 0, ' ');
    StrAppend(out, total_s, "  ");
    out.append(mean_s.size() < 9 ? 9 - mean_s.size() : 0, ' ');
    StrAppend(out, mean_s, "  ");
    out.append(share_s.size() < 6 ? 6 - share_s.size() : 0, ' ');
    StrAppend(out, share_s, "\n");
  }
  StrAppend(out, blocking.ToString(), "\n");
  return out;
}

CriticalPathReport AnalyzeCriticalPath(const SpanForest& forest) {
  CriticalPathReport report;
  for (int32_t id : forest.roots) {
    const Span& root = forest.spans[static_cast<size_t>(id)];
    if (!root.closed()) {
      ++report.unfinished_txns;
      continue;
    }
    TxnCriticalPath cp = AnalyzeTxn(forest, root);
    if (cp.committed) {
      ++report.committed_txns;
      report.committed_total.Add(cp.phases);
    } else {
      ++report.aborted_txns;
    }
    report.txns.push_back(std::move(cp));
  }
  for (const Span& s : forest.spans) {
    if (s.kind != SpanKind::kBlocked) continue;
    for (const SpanNote& n : s.notes) {
      if (HasPrefix(n.label, "inquiry#")) ++report.blocking.inquiries;
    }
    if (!s.closed()) {
      ++report.blocking.open_windows;
      continue;
    }
    ++report.blocking.windows;
    report.blocking.total_us += s.length();
    report.blocking.max_us = std::max(report.blocking.max_us, s.length());
    report.blocking.hist.Add(s.length());
  }
  return report;
}

CriticalPathReport AnalyzeCriticalPath(const Tracer& tracer) {
  return AnalyzeCriticalPath(BuildSpanForest(tracer));
}

}  // namespace hermes::trace
