#include "trace/timeseries.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/str.h"

namespace hermes::trace {

void TimeSeries::Merge(const TimeSeries& other) {
  if (windows.empty()) window_us = other.window_us;
  if (other.windows.size() > windows.size()) {
    windows.resize(other.windows.size());
  }
  for (size_t i = 0; i < other.windows.size(); ++i) {
    Window& w = windows[i];
    const Window& o = other.windows[i];
    w.begun += o.begun;
    w.committed += o.committed;
    w.aborted += o.aborted;
    w.refusals += o.refusals;
    w.resubmissions += o.resubmissions;
    w.max_in_flight = std::max(w.max_in_flight, o.max_in_flight);
    w.max_prepared = std::max(w.max_prepared, o.max_prepared);
  }
}

std::string TimeSeries::ToString() const {
  std::string out = StrCat("series window_us=", window_us, " windows=",
                           windows.size(), "\n");
  for (size_t i = 0; i < windows.size(); ++i) {
    const Window& w = windows[i];
    StrAppend(out, "w", i, " begun=", w.begun, " committed=", w.committed,
              " aborted=", w.aborted, " refusals=", w.refusals, " resub=",
              w.resubmissions, " max_in_flight=", w.max_in_flight,
              " max_prepared=", w.max_prepared, "\n");
  }
  return out;
}

TimeSeries BuildTimeSeries(const std::vector<Event>& events,
                           sim::Duration window_us) {
  TimeSeries ts;
  if (window_us <= 0) window_us = TimeSeries::kDefaultWindow;
  ts.window_us = window_us;

  int64_t in_flight = 0;
  std::set<TxnId> begun;  // guards double counting on duplicate events
  std::set<std::pair<TxnId, SiteId>> prepared;

  auto window_at = [&](sim::Time at) -> TimeSeries::Window& {
    const size_t idx =
        at <= 0 ? 0 : static_cast<size_t>(at / window_us);
    if (idx >= ts.windows.size()) {
      // New windows inherit the current levels as their starting peaks: a
      // transaction in flight across a quiet window still loads it.
      TimeSeries::Window carry;
      carry.max_in_flight = in_flight;
      carry.max_prepared = static_cast<int64_t>(prepared.size());
      ts.windows.resize(idx + 1, carry);
    }
    return ts.windows[idx];
  };
  auto gauges = [&](TimeSeries::Window& w) {
    w.max_in_flight = std::max(w.max_in_flight, in_flight);
    w.max_prepared =
        std::max(w.max_prepared, static_cast<int64_t>(prepared.size()));
  };

  for (const Event& e : events) {
    if (!e.txn.valid() || !e.txn.global() || e.at < 0) continue;
    switch (e.kind) {
      case EventKind::kTxnBegin: {
        if (!begun.insert(e.txn).second) break;
        TimeSeries::Window& w = window_at(e.at);
        ++w.begun;
        ++in_flight;
        gauges(w);
        break;
      }
      case EventKind::kTxnEnd: {
        if (begun.erase(e.txn) == 0) break;
        TimeSeries::Window& w = window_at(e.at);
        if (e.ok) {
          ++w.committed;
        } else {
          ++w.aborted;
        }
        --in_flight;
        gauges(w);
        break;
      }
      case EventKind::kCertReady: {
        TimeSeries::Window& w = window_at(e.at);
        prepared.insert({e.txn, e.site});
        gauges(w);
        break;
      }
      case EventKind::kLocalCommit:
      case EventKind::kLocalAbort: {
        TimeSeries::Window& w = window_at(e.at);
        prepared.erase({e.txn, e.site});
        gauges(w);
        break;
      }
      case EventKind::kCertRefuse: {
        ++window_at(e.at).refusals;
        break;
      }
      case EventKind::kResubmitStart: {
        ++window_at(e.at).resubmissions;
        break;
      }
      default:
        break;
    }
  }
  return ts;
}

}  // namespace hermes::trace
