#include "trace/timeseries.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/str.h"

namespace hermes::trace {

void TimeSeries::Merge(const TimeSeries& other) {
  if (windows.empty()) window_us = other.window_us;
  if (other.windows.size() > windows.size()) {
    windows.resize(other.windows.size());
  }
  for (size_t i = 0; i < other.windows.size(); ++i) {
    Window& w = windows[i];
    const Window& o = other.windows[i];
    w.begun += o.begun;
    w.committed += o.committed;
    w.aborted += o.aborted;
    w.refusals += o.refusals;
    w.resubmissions += o.resubmissions;
    w.max_in_flight = std::max(w.max_in_flight, o.max_in_flight);
    w.max_prepared = std::max(w.max_prepared, o.max_prepared);
  }
}

std::string TimeSeries::ToString() const {
  std::string out = StrCat("series window_us=", window_us, " windows=",
                           windows.size(), "\n");
  for (size_t i = 0; i < windows.size(); ++i) {
    const Window& w = windows[i];
    StrAppend(out, "w", i, " begun=", w.begun, " committed=", w.committed,
              " aborted=", w.aborted, " refusals=", w.refusals, " resub=",
              w.resubmissions, " max_in_flight=", w.max_in_flight,
              " max_prepared=", w.max_prepared, "\n");
  }
  return out;
}

TimeSeriesBuilder::TimeSeriesBuilder(sim::Duration window_us) {
  series_.window_us =
      window_us <= 0 ? TimeSeries::kDefaultWindow : window_us;
}

TimeSeries::Window& TimeSeriesBuilder::WindowAt(sim::Time at) {
  const size_t idx =
      at <= 0 ? 0 : static_cast<size_t>(at / series_.window_us);
  if (idx >= series_.windows.size()) {
    // New windows inherit the current levels as their starting peaks: a
    // transaction in flight across a quiet window still loads it.
    TimeSeries::Window carry;
    carry.max_in_flight = in_flight_;
    carry.max_prepared = static_cast<int64_t>(prepared_.size());
    series_.windows.resize(idx + 1, carry);
  }
  return series_.windows[idx];
}

void TimeSeriesBuilder::Gauges(TimeSeries::Window& w) {
  w.max_in_flight = std::max(w.max_in_flight, in_flight_);
  w.max_prepared =
      std::max(w.max_prepared, static_cast<int64_t>(prepared_.size()));
}

void TimeSeriesBuilder::Add(const Event& e) {
  if (!e.txn.valid() || !e.txn.global() || e.at < 0) return;
  switch (e.kind) {
    case EventKind::kTxnBegin: {
      if (!begun_.insert(e.txn).second) break;
      TimeSeries::Window& w = WindowAt(e.at);
      ++w.begun;
      ++in_flight_;
      Gauges(w);
      break;
    }
    case EventKind::kTxnEnd: {
      if (begun_.erase(e.txn) == 0) break;
      TimeSeries::Window& w = WindowAt(e.at);
      if (e.ok) {
        ++w.committed;
      } else {
        ++w.aborted;
      }
      --in_flight_;
      Gauges(w);
      break;
    }
    case EventKind::kCertReady: {
      TimeSeries::Window& w = WindowAt(e.at);
      prepared_.insert({e.txn, e.site});
      Gauges(w);
      break;
    }
    case EventKind::kLocalCommit:
    case EventKind::kLocalAbort: {
      TimeSeries::Window& w = WindowAt(e.at);
      prepared_.erase({e.txn, e.site});
      Gauges(w);
      break;
    }
    case EventKind::kCertRefuse: {
      ++WindowAt(e.at).refusals;
      break;
    }
    case EventKind::kResubmitStart: {
      ++WindowAt(e.at).resubmissions;
      break;
    }
    default:
      break;
  }
}

TimeSeries TimeSeriesBuilder::Finish() {
  TimeSeries out = std::move(series_);
  series_ = TimeSeries{};
  series_.window_us = out.window_us;
  in_flight_ = 0;
  begun_.clear();
  prepared_.clear();
  return out;
}

TimeSeries BuildTimeSeries(const std::vector<Event>& events,
                           sim::Duration window_us) {
  TimeSeriesBuilder b(window_us);
  for (const Event& e : events) b.Add(e);
  return b.Finish();
}

TimeSeries BuildTimeSeries(const Tracer& tracer, sim::Duration window_us) {
  TimeSeriesBuilder b(window_us);
  tracer.ForEach([&](const Event& e) { b.Add(e); });
  return b.Finish();
}

}  // namespace hermes::trace
