// Fixed-size ring buffer of binary trace records — the storage behind
// TraceFormat::kBinary.
//
// Appending encodes the event into one fixed-width record (trace/binary.h)
// inside a preallocated circular byte buffer: no per-event heap allocation
// once the dictionary has seen the event's strings, which keeps always-on
// tracing cheap enough for million-transaction runs. When the ring is
// full the oldest record is overwritten and counted, so memory is bounded
// by construction and the trace degrades to a sliding window over the tail
// of the run — with the drop count carried in the serialized header so no
// truncation is ever silent. Dictionary entries are never evicted (detail
// strings are drawn from small fixed vocabularies), so a surviving record
// can always resolve its string ids.

#ifndef HERMES_TRACE_RING_H_
#define HERMES_TRACE_RING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/binary.h"

namespace hermes::trace {

class TraceRing {
 public:
  // `capacity` is in records; at least 1.
  explicit TraceRing(size_t capacity);

  // Encodes and appends `e`, evicting (and counting) the oldest record
  // when the ring is full.
  void Append(const Event& e);

  // Records currently held (<= capacity).
  size_t size() const { return count_; }
  size_t capacity() const { return capacity_; }
  // Records evicted by overflow since construction/Clear.
  int64_t dropped() const { return dropped_; }

  // Visits the held records oldest -> newest, decoded back into Events.
  void ForEach(const std::function<void(const Event&)>& fn) const;

  // Serializes to the binary trace format (header carries dropped() and
  // the caller's sampler drop count).
  std::string Serialize(int64_t sampled_out) const;

  void Clear();

 private:
  const uint8_t* RecordAt(size_t logical_index) const;

  size_t capacity_;
  std::vector<uint8_t> buf_;  // capacity_ * kBinaryRecordSize bytes
  size_t head_ = 0;           // logical index of the oldest record
  size_t count_ = 0;
  int64_t dropped_ = 0;
  StringInterner interner_;
};

}  // namespace hermes::trace

#endif  // HERMES_TRACE_RING_H_
