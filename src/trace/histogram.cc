#include "trace/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/str.h"

namespace hermes::trace {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(value));
  return std::min(width, kBuckets - 1);
}

void Histogram::Add(int64_t value) {
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
}

Histogram Histogram::FromParts(const std::array<int64_t, kBuckets>& buckets,
                               int64_t min, int64_t max) {
  Histogram h;
  h.buckets_ = buckets;
  for (int64_t b : buckets) h.count_ += b;
  if (h.count_ > 0) {
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] +=
        other.buckets_[static_cast<size_t>(i)];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the requested order statistic.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(clamped / 100.0 *
                                        static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (cumulative < rank) continue;
    // Interpolate linearly inside bucket i: [lower, upper). The last
    // bucket is unbounded above, so its effective upper edge is the
    // largest value actually observed.
    const int64_t lower = i == 0 ? 0 : int64_t{1} << (i - 1);
    int64_t upper = i == 0 ? 1 : int64_t{1} << i;
    if (i == kBuckets - 1) upper = std::max(upper, max_);
    const int64_t into = rank - (cumulative - in_bucket);  // 1..in_bucket
    const double fraction =
        static_cast<double>(into) / static_cast<double>(in_bucket);
    const int64_t estimate =
        lower + static_cast<int64_t>(
                    static_cast<double>(upper - lower) * fraction);
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

std::string Histogram::ToString() const {
  return StrCat("n=", count_, " p50=", PercentileMs(50), "ms p95=",
                PercentileMs(95), "ms p99=", PercentileMs(99),
                "ms max=", static_cast<double>(max_) / 1000.0, "ms");
}

}  // namespace hermes::trace
