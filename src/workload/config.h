// Configuration of one simulated multidatabase run.

#ifndef HERMES_WORKLOAD_CONFIG_H_
#define HERMES_WORKLOAD_CONFIG_H_

#include <cstdint>
#include <functional>
#include <string>

#include "cgm/cgm_mdbs.h"
#include "core/agent.h"
#include "core/mdbs.h"
#include "fault/fault_plan.h"
#include "trace/timeseries.h"

namespace hermes::workload {

enum class System { k2CM, kCGM };

const char* SystemName(System s);

// One periodic mid-run observability flush: a consistent snapshot of the
// run's metrics (as Prometheus text exposition) and the windowed
// virtual-time series built so far. Delivered to WorkloadConfig::flush_hook
// every flush_interval of simulated time — a scrape endpoint for a live
// run, without waiting for the run to finish.
struct FlushSnapshot {
  sim::Time at = 0;             // virtual time of the flush
  int64_t index = 0;            // 0-based flush number within the run
  std::string prometheus;       // metrics so far, Prometheus text format
  trace::TimeSeries series;     // windowed series so far (needs a tracer)
};

struct WorkloadConfig {
  uint64_t seed = 42;

  // --- topology & data -----------------------------------------------------
  int num_sites = 4;
  int tables_per_site = 1;
  int64_t rows_per_table = 128;
  double zipf_theta = 0.0;  // 0 = uniform access
  // E19 sharded mode (2CM only): > 0 partitions the key space into this
  // many shards owned by sites via a versioned shard::Directory; the
  // generator routes every command to its key's owner, LoadData loads each
  // key only at its owner, and StartReconfig can move shards mid-run.
  // 0 keeps the legacy unsharded topology (byte-identical traces).
  int num_shards = 0;
  // Site-id headroom for add/replace reconfigurations (0 = num_sites).
  int max_sites = 0;

  // --- load -----------------------------------------------------------------
  int global_clients = 8;
  int local_clients_per_site = 0;
  // DML commands per global transaction, spread over `sites_per_global_txn`
  // distinct sites round-robin.
  int cmds_per_global_txn = 4;
  int sites_per_global_txn = 2;
  int cmds_per_local_txn = 2;
  double global_write_fraction = 0.5;
  double local_write_fraction = 0.5;
  // E18 ablation shaping: fraction of global transactions confined to one
  // site (short-commit 1PC candidates) and fraction that issue only reads
  // (read-only fast-path candidates). Both draw extra randoms only when
  // non-zero, so existing seeds replay byte-identically at the defaults.
  double single_site_fraction = 0.0;
  double read_only_fraction = 0.0;
  sim::Duration think_time = 0;

  // --- failures ---------------------------------------------------------------
  // Probability that a subtransaction entering the prepared state is
  // unilaterally aborted by its LDBS while prepared.
  double p_prepared_abort = 0.0;
  sim::Duration prepared_abort_max_delay = 30 * sim::kMillisecond;
  // Network fault injection (see net::NetworkConfig): per-message loss,
  // duplicate delivery, and FIFO-breaking reorder probabilities.
  double net_loss_prob = 0.0;
  double net_dup_prob = 0.0;
  double net_reorder_prob = 0.0;
  sim::Duration net_reorder_window = 5 * sim::kMillisecond;
  // Declarative fault schedule (site crashes, partitions, loss bursts),
  // installed by the driver before the clients start. 2CM only: the CGM
  // baseline's centralized scheduler has no crash-recovery story.
  fault::FaultPlan fault_plan;

  // --- termination --------------------------------------------------------------
  int target_global_txns = 200;
  sim::Time max_sim_time = 600 * sim::kSecond;
  // Extra virtual time granted after the last targeted transaction
  // completes, letting in-flight recovery (re-deliveries, resubmissions,
  // inquiries) drain before the history is judged. Chaos runs set ~2s; 0
  // keeps the legacy stop-at-done behavior.
  sim::Duration drain_grace = 0;

  // --- system under test -----------------------------------------------------
  System system = System::k2CM;
  core::CertPolicy policy = core::CertPolicy::kFull;
  // Commit-decision protocol (2CM only): classic blocking 2PC or
  // non-blocking Paxos Commit with 2*paxos_f+1 acceptors (E16).
  consensus::ProtocolKind protocol = consensus::ProtocolKind::k2PC;
  int paxos_f = 1;
  // Certification scheme and short-commit fast paths (E18; 2CM + 2PC only,
  // silently downgraded otherwise — see core::MdbsConfig).
  cert::CertifierKind certifier = cert::CertifierKind::kSn;
  bool short_commit = false;
  cgm::Granularity cgm_granularity = cgm::Granularity::kSite;
  bool record_history = true;
  bool dlu_binding = true;
  bool rigorous_ltm = true;
  // E10 ablation: assign serial numbers at submission (static total order).
  bool sn_at_submit = false;
  // E11: wait-for-graph deadlock detection in the LTMs instead of
  // timeout-only resolution.
  bool deadlock_detection = false;
  sim::Duration deadlock_check_interval = 20 * sim::kMillisecond;

  // --- tunables forwarded to the components ------------------------------------
  sim::Duration net_base_latency = 1 * sim::kMillisecond;
  sim::Duration net_jitter = 0;
  sim::Duration alive_check_interval = 25 * sim::kMillisecond;
  sim::Duration commit_retry_interval = 5 * sim::kMillisecond;
  // Agent-side recovery timers (see core::AgentConfig).
  sim::Duration decision_inquiry_timeout = 500 * sim::kMillisecond;
  sim::Duration inquiry_retry_initial = 20 * sim::kMillisecond;
  sim::Duration inquiry_retry_max = 320 * sim::kMillisecond;
  sim::Duration orphan_abort_timeout = 0;
  // Coordinator timeout/retransmission (see core::CoordinatorRetryConfig).
  sim::Duration retry_timeout = 25 * sim::kMillisecond;
  sim::Duration retry_max_timeout = 400 * sim::kMillisecond;
  int retry_max_attempts = 10;
  sim::Duration lock_wait_timeout = 500 * sim::kMillisecond;
  sim::Duration cgm_global_lock_timeout = 1 * sim::kSecond;
  // Per-site clock offsets: site s gets offset (s % 2 ? +1 : -1) *
  // clock_skew (section 5.2 drift experiments).
  sim::Duration clock_skew = 0;

  // Optional structured tracer threaded through every component (null =
  // disabled). Not owned; must outlive the run.
  trace::Tracer* tracer = nullptr;

  // --- live observability ----------------------------------------------------
  // Every `flush_interval` of virtual time the driver delivers a
  // FlushSnapshot to `flush_hook` (metrics Prometheus text + the windowed
  // series so far). 0 or an empty hook disables flushing. Flushes happen
  // at slice boundaries, so they never perturb the simulation: traces are
  // byte-identical with and without a hook installed.
  sim::Duration flush_interval = 0;
  std::function<void(const FlushSnapshot&)> flush_hook;

  core::MdbsConfig ToMdbsConfig() const;
  cgm::CgmConfig ToCgmConfig() const;

  std::string ToString() const;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_CONFIG_H_
