#include "workload/config.h"

#include "common/str.h"

namespace hermes::workload {

const char* SystemName(System s) {
  switch (s) {
    case System::k2CM:
      return "2CM";
    case System::kCGM:
      return "CGM";
  }
  return "?";
}

core::MdbsConfig WorkloadConfig::ToMdbsConfig() const {
  core::MdbsConfig config;
  config.num_sites = num_sites;
  config.num_shards = num_shards;
  config.max_sites = max_sites;
  config.record_history = record_history;
  config.tracer = tracer;
  config.network.base_latency = net_base_latency;
  config.network.jitter = net_jitter;
  config.network.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  config.network.loss_prob = net_loss_prob;
  config.network.dup_prob = net_dup_prob;
  config.network.reorder_prob = net_reorder_prob;
  config.network.reorder_window = net_reorder_window;
  config.coordinator_retry.timeout = retry_timeout;
  config.coordinator_retry.max_timeout = retry_max_timeout;
  config.coordinator_retry.max_attempts = retry_max_attempts;
  config.ltm.rigorous = rigorous_ltm;
  config.ltm.lock_wait_timeout = lock_wait_timeout;
  config.ltm.deadlock_detection = deadlock_detection;
  config.ltm.deadlock_check_interval = deadlock_check_interval;
  config.agent.policy = policy;
  config.agent.alive_check_interval = alive_check_interval;
  config.agent.commit_retry_interval = commit_retry_interval;
  config.agent.bind_bound_data = dlu_binding;
  config.agent.decision_inquiry_timeout = decision_inquiry_timeout;
  config.agent.inquiry_retry_initial = inquiry_retry_initial;
  config.agent.inquiry_retry_max = inquiry_retry_max;
  config.agent.orphan_abort_timeout = orphan_abort_timeout;
  config.protocol = protocol;
  config.paxos_f = paxos_f;
  config.certifier = certifier;
  config.short_commit = short_commit;
  if (clock_skew != 0) {
    config.clock_offsets.resize(static_cast<size_t>(num_sites));
    for (int s = 0; s < num_sites; ++s) {
      config.clock_offsets[static_cast<size_t>(s)] =
          (s % 2 == 0 ? -1 : 1) * clock_skew;
    }
  }
  return config;
}

cgm::CgmConfig WorkloadConfig::ToCgmConfig() const {
  cgm::CgmConfig config;
  config.mdbs = ToMdbsConfig();
  config.granularity = cgm_granularity;
  config.global_lock_timeout = cgm_global_lock_timeout;
  return config;
}

std::string WorkloadConfig::ToString() const {
  std::string out =
      StrCat(SystemName(system), " sites=", num_sites,
             " rows=", rows_per_table, " zipf=", zipf_theta,
             " gclients=", global_clients,
             " lclients=", local_clients_per_site,
             " p_fail=", p_prepared_abort, " loss=", net_loss_prob,
             " dup=", net_dup_prob, " reorder=", net_reorder_prob,
             " policy=", core::CertPolicyName(policy),
             " target=", target_global_txns, " seed=", seed);
  if (protocol != consensus::ProtocolKind::k2PC) {
    StrAppend(out, " protocol=", consensus::ProtocolKindName(protocol),
              " F=", paxos_f);
  }
  if (certifier != cert::CertifierKind::kSn || short_commit) {
    StrAppend(out, " certifier=", cert::CertifierKindName(certifier),
              " short_commit=", short_commit ? "on" : "off");
  }
  if (single_site_fraction > 0 || read_only_fraction > 0) {
    StrAppend(out, " ss_frac=", single_site_fraction,
              " ro_frac=", read_only_fraction);
  }
  if (num_shards > 0) {
    StrAppend(out, " shards=", num_shards, " max_sites=",
              max_sites > 0 ? max_sites : num_sites);
  }
  if (!fault_plan.empty()) {
    StrAppend(out, " faults=", fault_plan.events.size());
  }
  return out;
}

}  // namespace hermes::workload
