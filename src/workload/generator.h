// Random transaction generation for the benchmark workloads.

#ifndef HERMES_WORKLOAD_GENERATOR_H_
#define HERMES_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "core/coordinator.h"
#include "core/mdbs.h"
#include "shard/shard_map.h"
#include "workload/config.h"

namespace hermes::workload {

class Generator {
 public:
  Generator(const WorkloadConfig& config, uint64_t seed);

  // Sharded mode: commands are routed to their key's current owner (keys in
  // wedged shards are redrawn a few times to let a drain finish). Null (the
  // default) keeps the legacy site-first generation, byte-identical to
  // older seeds.
  void set_directory(const shard::Directory* directory) {
    directory_ = directory;
  }

  // A global transaction touching `sites_per_global_txn` distinct sites
  // (legacy mode) or the owners of its drawn keys (sharded mode).
  core::GlobalTxnSpec NextGlobal(Rng& rng) const;

  // A local transaction at `site`. Under CGM the partition restriction is
  // honored by directing local updates at the dedicated local table
  // (`local_table` >= 0); reads may touch shared tables. Sharded mode
  // redraws keys until they live at `site`.
  core::LocalTxnSpec NextLocal(Rng& rng, SiteId site,
                               db::TableId local_table) const;

 private:
  db::Command MakeCommand(Rng& rng, db::TableId table, bool write) const;
  db::Command MakeCommandForKey(db::TableId table, int64_t key,
                                bool write) const;
  int64_t PickKey(Rng& rng) const;

  WorkloadConfig config_;
  ZipfGenerator zipf_;
  const shard::Directory* directory_ = nullptr;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_GENERATOR_H_
