// Random transaction generation for the benchmark workloads.

#ifndef HERMES_WORKLOAD_GENERATOR_H_
#define HERMES_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "core/coordinator.h"
#include "core/mdbs.h"
#include "workload/config.h"

namespace hermes::workload {

class Generator {
 public:
  Generator(const WorkloadConfig& config, uint64_t seed);

  // A global transaction touching `sites_per_global_txn` distinct sites.
  core::GlobalTxnSpec NextGlobal(Rng& rng) const;

  // A local transaction at `site`. Under CGM the partition restriction is
  // honored by directing local updates at the dedicated local table
  // (`local_table` >= 0); reads may touch shared tables.
  core::LocalTxnSpec NextLocal(Rng& rng, SiteId site,
                               db::TableId local_table) const;

 private:
  db::Command MakeCommand(Rng& rng, db::TableId table, bool write) const;
  int64_t PickKey(Rng& rng) const;

  WorkloadConfig config_;
  ZipfGenerator zipf_;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_GENERATOR_H_
