// Runs one complete simulated workload against the 2CM system or the CGM
// baseline, injecting unilateral aborts and validating the resulting history
// against the serializability oracle. Every benchmark and most integration
// tests are built on top of this driver.

#ifndef HERMES_WORKLOAD_DRIVER_H_
#define HERMES_WORKLOAD_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "history/view_checker.h"
#include "ltm/ltm.h"
#include "trace/timeseries.h"
#include "workload/config.h"

namespace hermes::workload {

struct RunResult {
  core::Metrics metrics;
  // Per-site metrics snapshots, indexed by site id (ascending, hence
  // deterministic); metrics above is their merge (plus scheduler extras).
  std::vector<core::Metrics> site_metrics;
  // Virtual-time metrics series bucketed from the trace; empty when the
  // run had no tracer attached.
  trace::TimeSeries series;
  // LTM stats aggregated over all sites.
  ltm::LtmStats ltm;
  int64_t messages = 0;
  // Network fault-injection tallies (zero on a reliable network).
  int64_t msgs_dropped = 0;
  int64_t msgs_duplicated = 0;
  int64_t msgs_reordered = 0;
  sim::Time end_time = 0;
  uint64_t events = 0;
  // Mid-run observability flushes delivered to config.flush_hook.
  int64_t flushes = 0;
  // History validation (when record_history).
  bool history_checked = false;
  bool commit_graph_acyclic = true;
  history::Verdict verdict = history::Verdict::kUnknown;
  std::string verdict_detail;
  bool replay_consistent = true;
  std::string replay_error;
  // Paper's order invariant (1): P^i_k < C_k < C^s_k.
  bool order_invariant_ok = true;
  std::string order_invariant_error;
  // Global atomicity under crashes: decided transactions must not split
  // into per-site commit and rollback (history::CheckGlobalAtomicity).
  bool atomicity_ok = true;
  std::string atomicity_error;
  size_t history_ops = 0;

  double CommitsPerSecond() const {
    return end_time == 0 ? 0.0
                         : static_cast<double>(metrics.global_committed) *
                               sim::kSecond / static_cast<double>(end_time);
  }
  double GlobalAbortRate() const {
    const int64_t total =
        metrics.global_committed + metrics.global_aborted;
    return total == 0 ? 0.0
                      : static_cast<double>(metrics.global_aborted) /
                            static_cast<double>(total);
  }

  std::string Summary() const;
  // Prometheus text exposition of the run's metrics (totals + per-site).
  std::string PrometheusText() const {
    return core::MetricsPrometheusText(metrics, site_metrics);
  }
};

class Driver {
 public:
  // Runs the workload to completion (or max_sim_time) and returns the
  // collected metrics and oracle verdicts.
  static RunResult Run(const WorkloadConfig& config);
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_DRIVER_H_
