#include "workload/generator.h"

#include <algorithm>

namespace hermes::workload {

Generator::Generator(const WorkloadConfig& config, uint64_t seed)
    : config_(config),
      zipf_(static_cast<uint64_t>(config.rows_per_table),
            config.zipf_theta) {
  (void)seed;
}

int64_t Generator::PickKey(Rng& rng) const {
  return static_cast<int64_t>(zipf_.Next(rng));
}

db::Command Generator::MakeCommandForKey(db::TableId table, int64_t key,
                                         bool write) const {
  if (write) {
    return db::MakeAddKey(table, key, "val", db::Value(int64_t{1}));
  }
  return db::MakeSelectKey(table, key);
}

db::Command Generator::MakeCommand(Rng& rng, db::TableId table,
                                   bool write) const {
  return MakeCommandForKey(table, PickKey(rng), write);
}

core::GlobalTxnSpec Generator::NextGlobal(Rng& rng) const {
  core::GlobalTxnSpec spec;
  // E18 shaping: the `> 0` guards keep the RNG stream byte-identical to
  // older configs when the fractions are left at zero.
  const bool single_site = config_.single_site_fraction > 0 &&
                           rng.NextBool(config_.single_site_fraction);
  const bool read_only = config_.read_only_fraction > 0 &&
                         rng.NextBool(config_.read_only_fraction);
  if (directory_ != nullptr) {
    // Sharded mode: keys first, sites second — every command executes at
    // its key's current owner. Keys whose shard is mid-handoff (wedged)
    // are redrawn a few times so new work steers clear of the drain.
    const shard::ShardMap& map = directory_->Fetch();
    for (int c = 0; c < config_.cmds_per_global_txn; ++c) {
      const db::TableId table = static_cast<db::TableId>(
          rng.NextUint64(static_cast<uint64_t>(config_.tables_per_site)));
      const bool write =
          rng.NextBool(config_.global_write_fraction) && !read_only;
      int64_t key = PickKey(rng);
      for (int redraw = 0; redraw < 8 && map.WedgedKey(key); ++redraw) {
        key = PickKey(rng);
      }
      spec.steps.push_back(core::GlobalTxnSpec::Step{
          map.OwnerOfKey(key), MakeCommandForKey(table, key, write)});
    }
    return spec;
  }
  const int wanted =
      single_site ? 1
                  : std::min(config_.sites_per_global_txn, config_.num_sites);
  // Choose `wanted` distinct sites (partial Fisher-Yates over site ids).
  std::vector<SiteId> sites(static_cast<size_t>(config_.num_sites));
  for (int s = 0; s < config_.num_sites; ++s) {
    sites[static_cast<size_t>(s)] = s;
  }
  for (int i = 0; i < wanted; ++i) {
    const int j =
        i + static_cast<int>(rng.NextUint64(
                static_cast<uint64_t>(config_.num_sites - i)));
    std::swap(sites[static_cast<size_t>(i)], sites[static_cast<size_t>(j)]);
  }
  for (int c = 0; c < config_.cmds_per_global_txn; ++c) {
    const SiteId site = sites[static_cast<size_t>(c % wanted)];
    const db::TableId table = static_cast<db::TableId>(
        rng.NextUint64(static_cast<uint64_t>(config_.tables_per_site)));
    // The write coin is flipped unconditionally so a read-only transaction
    // consumes the same number of randoms as a read-write one.
    const bool write =
        rng.NextBool(config_.global_write_fraction) && !read_only;
    spec.steps.push_back(
        core::GlobalTxnSpec::Step{site, MakeCommand(rng, table, write)});
  }
  return spec;
}

core::LocalTxnSpec Generator::NextLocal(Rng& rng, SiteId site,
                                        db::TableId local_table) const {
  core::LocalTxnSpec spec;
  spec.site = site;
  for (int c = 0; c < config_.cmds_per_local_txn; ++c) {
    const bool write = rng.NextBool(config_.local_write_fraction);
    db::TableId table;
    if (write && local_table >= 0) {
      // CGM partition: local updates go to the locally updateable table.
      table = local_table;
    } else {
      table = static_cast<db::TableId>(
          rng.NextUint64(static_cast<uint64_t>(config_.tables_per_site)));
    }
    if (directory_ != nullptr) {
      // Sharded mode: only keys living at this site make sense locally.
      // Redraw until one lands here; with shards spread evenly the expected
      // number of draws is the site count, so the bound is generous. A key
      // that stubbornly refuses is used as-is (the command then fails like
      // any mistargeted local access would).
      const shard::ShardMap& map = directory_->Fetch();
      int64_t key = PickKey(rng);
      for (int redraw = 0;
           redraw < 64 && (map.OwnerOfKey(key) != site || map.WedgedKey(key));
           ++redraw) {
        key = PickKey(rng);
      }
      spec.commands.push_back(MakeCommandForKey(table, key, write));
      continue;
    }
    spec.commands.push_back(MakeCommand(rng, table, write));
  }
  return spec;
}

}  // namespace hermes::workload
