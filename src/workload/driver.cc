#include "workload/driver.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "common/str.h"
#include "fault/injector.h"
#include "history/projection.h"
#include "workload/generator.h"

namespace hermes::workload {

namespace {

// Mutable run state shared by the client loops.
struct RunState {
  WorkloadConfig config;
  sim::EventLoop* loop = nullptr;
  core::Mdbs* mdbs = nullptr;
  Generator* generator = nullptr;
  Rng rng{0};
  int submitted = 0;
  int completed = 0;
  db::TableId local_table = -1;  // CGM locally-updateable table
  bool stop_locals = false;
  sim::Time done_at = -1;  // when the last targeted global txn completed

  bool AllSubmitted() const {
    return submitted >= config.target_global_txns;
  }
};

void RunGlobalClient(const std::shared_ptr<RunState>& st) {
  if (st->AllSubmitted()) return;
  ++st->submitted;
  core::GlobalTxnSpec spec = st->generator->NextGlobal(st->rng);
  st->mdbs->Submit(std::move(spec),
                   [st](const core::GlobalTxnResult& /*result*/) {
                     ++st->completed;
                     if (st->completed >= st->config.target_global_txns) {
                       st->stop_locals = true;
                       st->done_at = st->loop->Now();
                       return;
                     }
                     if (st->config.think_time > 0) {
                       st->loop->ScheduleAfter(st->config.think_time, [st]() {
                         RunGlobalClient(st);
                       });
                     } else {
                       RunGlobalClient(st);
                     }
                   });
}

void RunLocalClient(const std::shared_ptr<RunState>& st, SiteId site) {
  if (st->stop_locals) return;
  core::LocalTxnSpec spec =
      st->generator->NextLocal(st->rng, site, st->local_table);
  st->mdbs->SubmitLocal(std::move(spec),
                        [st, site](const core::LocalTxnResult& /*result*/) {
                          if (st->stop_locals) return;
                          st->loop->ScheduleAfter(
                              st->config.think_time > 0
                                  ? st->config.think_time
                                  : 1 * sim::kMillisecond,
                              [st, site]() { RunLocalClient(st, site); });
                        });
}

void InstallFailureInjector(const std::shared_ptr<RunState>& st) {
  if (st->config.p_prepared_abort <= 0) return;
  for (SiteId s = 0; s < st->config.num_sites; ++s) {
    ltm::Ltm* ltm = st->mdbs->ltm(s);
    st->mdbs->agent(s)->set_prepared_hook(
        [st, ltm, s](const TxnId& gtid, LtmTxnHandle handle) {
          if (!st->rng.NextBool(st->config.p_prepared_abort)) return;
          const sim::Duration delay = static_cast<sim::Duration>(
              st->rng.NextUint64(static_cast<uint64_t>(
                                     st->config.prepared_abort_max_delay) +
                                 1));
          if (st->config.tracer != nullptr) {
            trace::Event e;
            e.kind = trace::EventKind::kInjectFailure;
            e.txn = gtid;
            e.site = s;
            e.value = delay;
            st->config.tracer->Record(std::move(e));
          }
          st->loop->ScheduleAfter(delay, [ltm, handle]() {
            // The handle may already be superseded by a resubmission or
            // committed; injection then fails harmlessly — exactly like a
            // real LDBS that no longer knows the transaction.
            (void)ltm->InjectUnilateralAbort(handle);
          });
        });
  }
}

void LoadData(const std::shared_ptr<RunState>& st) {
  const WorkloadConfig& config = st->config;
  // Sharded mode: each key lives only at its owning site; the generator
  // routes all access there. Legacy mode replicates every key everywhere.
  const shard::ShardMap* map = st->mdbs->directory() != nullptr
                                   ? &st->mdbs->directory()->Current()
                                   : nullptr;
  for (int t = 0; t < config.tables_per_site; ++t) {
    auto id = st->mdbs->CreateTableEverywhere(StrCat("t", t));
    assert(id.ok());
    for (SiteId s = 0; s < config.num_sites; ++s) {
      for (int64_t k = 0; k < config.rows_per_table; ++k) {
        if (map != nullptr && map->OwnerOfKey(k) != s) continue;
        st->mdbs->LoadRow(s, *id, k,
                          db::Row{{"val", db::Value(int64_t{0})}});
      }
    }
  }
  // Dedicated locally-updateable table for CGM's partition restriction.
  if (config.system == System::kCGM && config.local_clients_per_site > 0) {
    auto id = st->mdbs->CreateTableEverywhere("local");
    assert(id.ok());
    st->local_table = *id;
    for (SiteId s = 0; s < config.num_sites; ++s) {
      for (int64_t k = 0; k < config.rows_per_table; ++k) {
        st->mdbs->LoadRow(s, *id, k,
                          db::Row{{"val", db::Value(int64_t{0})}});
      }
    }
  }
}

void ValidateHistory(const std::shared_ptr<RunState>& st, RunResult& result) {
  if (!st->config.record_history) return;
  result.history_checked = true;
  const auto& ops = st->mdbs->recorder().ops();
  result.history_ops = ops.size();
  const std::vector<history::Op> committed =
      history::CommittedProjection(ops);
  result.commit_graph_acyclic = history::CommitGraphAcyclic(committed);
  result.replay_error = history::VerifyReplayMatchesRecorded(committed);
  result.replay_consistent = result.replay_error.empty();
  result.order_invariant_error = history::CheckOrderInvariant(ops);
  result.order_invariant_ok = result.order_invariant_error.empty();
  result.atomicity_error = history::CheckGlobalAtomicity(ops);
  result.atomicity_ok = result.atomicity_error.empty();
  const history::ViewCheckResult check =
      history::CheckViewSerializability(committed, /*max_txns=*/8);
  result.verdict = check.verdict;
  result.verdict_detail = check.reason;
}

}  // namespace

RunResult Driver::Run(const WorkloadConfig& config) {
  sim::EventLoop loop;
  loop.set_max_events(200'000'000);
  // The run's series grows as a streaming fold on the tracer instead of a
  // post-hoc pass over a materialized event vector, so it stays complete
  // even when a fixed-size binary ring has evicted the early records —
  // and works identically for both tracer backends.
  trace::TimeSeriesBuilder series_builder;
  trace::TracerStats trace_before;
  if (config.tracer != nullptr) {
    config.tracer->set_loop(&loop);
    trace_before = config.tracer->stats();
    config.tracer->AddFold(&series_builder);
  }

  std::unique_ptr<core::Mdbs> own_mdbs;
  std::unique_ptr<cgm::CgmMdbs> own_cgm;
  core::Mdbs* mdbs = nullptr;
  if (config.system == System::kCGM) {
    own_cgm = std::make_unique<cgm::CgmMdbs>(config.ToCgmConfig(), &loop);
    mdbs = &own_cgm->mdbs();
  } else {
    own_mdbs = std::make_unique<core::Mdbs>(config.ToMdbsConfig(), &loop);
    mdbs = own_mdbs.get();
  }

  Generator generator(config, config.seed);
  if (config.system == System::k2CM && mdbs->directory() != nullptr) {
    generator.set_directory(mdbs->directory());
  }
  auto st = std::make_shared<RunState>();
  st->config = config;
  st->loop = &loop;
  st->mdbs = mdbs;
  st->generator = &generator;
  st->rng = Rng(config.seed);

  if (config.sn_at_submit) mdbs->SetSnAtSubmit(true);
  LoadData(st);
  InstallFailureInjector(st);
  if (config.system == System::k2CM && !config.fault_plan.empty()) {
    fault::InstallFaultPlan(config.fault_plan, mdbs, config.tracer);
  }

  for (int c = 0; c < config.global_clients; ++c) {
    loop.ScheduleAfter(0, [st]() { RunGlobalClient(st); });
  }
  for (SiteId s = 0; s < config.num_sites; ++s) {
    for (int c = 0; c < config.local_clients_per_site; ++c) {
      loop.ScheduleAfter(0, [st, s]() { RunLocalClient(st, s); });
    }
  }

  // Periodic observability flushes ride the slice boundaries below: they
  // read state between simulation slices and schedule nothing, so an
  // installed hook cannot perturb the virtual timeline.
  int64_t flushes = 0;
  sim::Time next_flush = config.flush_interval;
  auto maybe_flush = [&]() {
    if (config.flush_interval <= 0 || !config.flush_hook) return;
    if (loop.Now() < next_flush) return;
    FlushSnapshot snap;
    snap.at = loop.Now();
    snap.index = flushes;
    snap.prometheus =
        core::MetricsPrometheusText(mdbs->metrics(), mdbs->site_metrics());
    snap.series = series_builder.Snapshot();
    config.flush_hook(snap);
    ++flushes;
    // Skip ahead past any intervals the run jumped over in one slice.
    next_flush =
        (loop.Now() / config.flush_interval + 1) * config.flush_interval;
  };

  // Run in slices so periodic background timers (deadlock detection) do
  // not stretch the measured completion time past the real end of work.
  while (st->done_at < 0 && loop.Now() < config.max_sim_time &&
         !loop.Empty()) {
    loop.RunUntil(std::min(loop.Now() + 100 * sim::kMillisecond,
                           config.max_sim_time));
    maybe_flush();
  }
  // Let in-flight recovery work (decision re-deliveries, resubmissions,
  // inquiries) drain before judging the history, so runs truncated right
  // after the last client callback do not surface half-finished
  // transactions to the oracles.
  if (config.drain_grace > 0) {
    const sim::Time drain_deadline =
        std::min(loop.Now() + config.drain_grace, config.max_sim_time);
    while (!loop.Empty() && loop.Now() < drain_deadline) {
      loop.RunUntil(std::min(loop.Now() + 100 * sim::kMillisecond,
                             drain_deadline));
      maybe_flush();
    }
  }

  RunResult result;
  result.metrics = mdbs->metrics();
  result.site_metrics = mdbs->site_metrics();
  result.flushes = flushes;
  if (config.tracer != nullptr) {
    config.tracer->RemoveFold(&series_builder);
    result.series = series_builder.Finish();
    // Tracing self-observability, as a delta so a tracer reused across
    // runs attributes each run only its own emissions.
    const trace::TracerStats& ts = config.tracer->stats();
    result.metrics.trace_events_emitted = ts.emitted - trace_before.emitted;
    result.metrics.trace_events_dropped = ts.dropped - trace_before.dropped;
    result.metrics.trace_sampled_out =
        ts.sampled_out - trace_before.sampled_out;
  }
  result.messages = mdbs->network().messages_sent();
  result.msgs_dropped = mdbs->network().messages_dropped();
  result.msgs_duplicated = mdbs->network().messages_duplicated();
  result.msgs_reordered = mdbs->network().messages_reordered();
  result.end_time = st->done_at >= 0 ? st->done_at : loop.Now();
  result.events = loop.events_processed();
  // num_sites() (not config.num_sites): reconfiguration may have
  // provisioned sites mid-run, and their LTM work counts too.
  for (SiteId s = 0; s < mdbs->num_sites(); ++s) {
    const ltm::LtmStats& ls = mdbs->ltm(s)->stats();
    result.ltm.begun += ls.begun;
    result.ltm.committed += ls.committed;
    result.ltm.aborted += ls.aborted;
    result.ltm.unilateral_aborts += ls.unilateral_aborts;
    result.ltm.injected_aborts += ls.injected_aborts;
    result.ltm.lock_timeout_aborts += ls.lock_timeout_aborts;
    result.ltm.deadlock_victim_aborts += ls.deadlock_victim_aborts;
    result.ltm.commands_executed += ls.commands_executed;
    result.ltm.dlu_waits += ls.dlu_waits;
    result.ltm.dlu_rejections += ls.dlu_rejections;
  }
  ValidateHistory(st, result);
  return result;
}

std::string RunResult::Summary() const {
  std::string out;
  StrAppend(out, "committed=", metrics.global_committed,
            " aborted=", metrics.global_aborted,
            " (cert=", metrics.global_aborted_cert,
            " dml=", metrics.global_aborted_dml,
            ") resub=", metrics.resubmissions,
            " tput=", CommitsPerSecond(), "/s",
            " mean_lat_ms=", metrics.MeanLatencyMs());
  if (msgs_dropped > 0 || msgs_duplicated > 0 || metrics.retransmits > 0) {
    StrAppend(out, " drops=", msgs_dropped, " dups=", msgs_duplicated,
              " retx=", metrics.retransmits);
  }
  if (history_checked) {
    StrAppend(out, " | CG=", commit_graph_acyclic ? "acyclic" : "CYCLIC",
              " oracle=", history::VerdictName(verdict),
              " replay=", replay_consistent ? "ok" : "INCONSISTENT",
              " atomicity=", atomicity_ok ? "ok" : "VIOLATED");
  }
  return out;
}

}  // namespace hermes::workload
