// Lightweight Status / Result error-handling primitives (no exceptions on
// normal control paths, per the project style).

#ifndef HERMES_COMMON_STATUS_H_
#define HERMES_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hermes {

enum class StatusCode : int {
  kOk = 0,
  // The request is invalid regardless of system state.
  kInvalidArgument,
  // Referenced object (table, row, transaction) does not exist.
  kNotFound,
  // Object already exists (e.g. INSERT with duplicate key).
  kAlreadyExists,
  // The transaction was aborted (deadlock timeout, unilateral abort,
  // certification failure, explicit rollback).
  kAborted,
  // A lock or resource could not be obtained within its deadline.
  kTimeout,
  // Operation rejected because it would violate a protocol rule
  // (e.g. DLU: local update of bound data).
  kRejected,
  // Internal invariant violation; indicates a bug.
  kInternal,
  // The component is shutting down or the site has crashed.
  kUnavailable,
};

const char* StatusCodeName(StatusCode code);

// Value-semantic status. Cheap to copy in the OK case.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Rejected(std::string m) {
    return Status(StatusCode::kRejected, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_STATUS_H_
