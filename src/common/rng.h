// Seeded pseudo-random number generation for deterministic simulations.
//
// All randomness in the system (workload choices, failure injection, message
// latency jitter) flows through Rng instances derived from one root seed, so
// an entire multidatabase run is reproducible from a single uint64.

#ifndef HERMES_COMMON_RNG_H_
#define HERMES_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace hermes {

// xoshiro256** with a splitmix64 seeder. Small, fast, and good enough for
// simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);
  // Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);
  // Uniform in [0, 1).
  double NextDouble();
  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Derives an independent child generator; used to give each simulated
  // actor its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n). theta = 0 degenerates to uniform;
// theta around 0.8-1.2 models typical skewed database access.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  // Cumulative probability table for n <= kTableLimit; otherwise the
  // rejection-free approximation of Gray et al. is used.
  static constexpr uint64_t kTableLimit = 1 << 16;
  std::vector<double> cdf_;
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  double zeta2_ = 0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_RNG_H_
