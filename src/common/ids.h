// Strongly-typed identifiers used throughout the HERMES reproduction.
//
// Terminology follows the paper (Veijalainen & Wolski, ICDE 1992):
//  - A *site* hosts one LDBS (local database system) with its LTM and, in
//    the 2PC Agent method, one 2PCA agent.
//  - A *global transaction* T_k is decomposed into at most one *global
//    subtransaction* T^s_k per participating site s. A global subtransaction
//    is realized by a sequence of *local subtransactions* T^s_k0, T^s_k1, ...
//    (index j is the resubmission count) which appear to the LTM as
//    independent local transactions.
//  - A *local transaction* L_o is submitted directly to an LTM and is
//    invisible to the DTM.

#ifndef HERMES_COMMON_IDS_H_
#define HERMES_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace hermes {

// Identifies a participating or coordinating site. Dense, starting at 0.
using SiteId = int32_t;
inline constexpr SiteId kInvalidSite = -1;

// Globally unique identifier of a transaction as seen by the serializability
// theory: global transactions get ids from the coordinating DTM, local
// transactions get ids from a per-site range. The id identifies the
// *transaction* T_k, not an individual local subtransaction T^s_kj.
struct TxnId {
  // kGlobal ids are issued by coordinators; kLocal ids by each LTM for
  // transactions submitted directly at the local interface.
  enum class Kind : uint8_t { kInvalid = 0, kGlobal = 1, kLocal = 2 };

  Kind kind = Kind::kInvalid;
  // For kGlobal: coordinator-issued sequence number (unique across sites
  // because it embeds the coordinating site, see MakeGlobal).
  // For kLocal: per-site sequence number.
  int64_t seq = -1;
  // For kLocal: the site the transaction executes at. For kGlobal: the
  // coordinating site.
  SiteId site = kInvalidSite;

  static TxnId MakeGlobal(SiteId coordinator_site, int64_t seq) {
    return TxnId{Kind::kGlobal, seq, coordinator_site};
  }
  static TxnId MakeLocal(SiteId site, int64_t seq) {
    return TxnId{Kind::kLocal, seq, site};
  }

  bool valid() const { return kind != Kind::kInvalid; }
  bool global() const { return kind == Kind::kGlobal; }
  bool local() const { return kind == Kind::kLocal; }

  friend bool operator==(const TxnId& a, const TxnId& b) = default;
  friend auto operator<=>(const TxnId& a, const TxnId& b) = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const TxnId& id);

// Identity of one local subtransaction: the transaction plus the
// resubmission index j (0 = original submission). Local transactions always
// have resubmission 0.
struct SubTxnId {
  TxnId txn;
  int32_t resubmission = 0;

  friend bool operator==(const SubTxnId& a, const SubTxnId& b) = default;
  friend auto operator<=>(const SubTxnId& a, const SubTxnId& b) = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const SubTxnId& id);

// Handle of a live transaction inside one LTM. Recycled never; dense per
// site. This is what the LTM API operates on.
using LtmTxnHandle = int64_t;
inline constexpr LtmTxnHandle kInvalidLtmTxn = -1;

// Identifies a data item (one concrete table row, as in the paper's model
// where "data items X^a, Y^a are single concrete table rows at site a").
struct ItemId {
  SiteId site = kInvalidSite;
  int32_t table = -1;
  int64_t key = -1;

  friend bool operator==(const ItemId& a, const ItemId& b) = default;
  friend auto operator<=>(const ItemId& a, const ItemId& b) = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const ItemId& id);

struct ItemIdHash {
  size_t operator()(const ItemId& id) const {
    size_t h = std::hash<int64_t>()(id.key);
    h ^= std::hash<int32_t>()(id.table) + 0x9e3779b9 + (h << 6) + (h >> 2);
    h ^= std::hash<int32_t>()(id.site) + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace hermes

// TxnId keys the certifier's and agents' hot lookup tables
// (std::unordered_map), so it gets a first-class std::hash specialization
// rather than a hasher that every container declaration must name.
template <>
struct std::hash<hermes::TxnId> {
  size_t operator()(const hermes::TxnId& id) const noexcept {
    size_t h = std::hash<int64_t>()(id.seq);
    h ^= std::hash<int32_t>()(static_cast<int32_t>(id.kind)) + 0x9e3779b9 +
         (h << 6) + (h >> 2);
    h ^= std::hash<int32_t>()(id.site) + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
  }
};


#endif  // HERMES_COMMON_IDS_H_
