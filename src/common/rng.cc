#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace hermes {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Debiased modulo via rejection; the loop rarely iterates more than once.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  if (theta_ <= 0) {
    theta_ = 0;
    return;
  }
  if (n_ <= kTableLimit) {
    cdf_.resize(n_);
    double sum = 0;
    for (uint64_t i = 0; i < n_; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  } else {
    // Gray et al. "Quickly generating billion-record synthetic databases".
    zetan_ = 0;
    for (uint64_t i = 1; i <= n_; ++i)
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  if (theta_ <= 0) return rng.NextUint64(n_);
  if (!cdf_.empty()) {
    const double u = rng.NextDouble();
    // Binary search the CDF.
    uint64_t lo = 0, hi = n_ - 1;
    while (lo < hi) {
      const uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < zeta2_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace hermes
