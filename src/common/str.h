// Minimal string formatting helpers (StrCat / StrAppend / Join) so the rest
// of the codebase does not depend on iostream formatting in hot paths.

#ifndef HERMES_COMMON_STR_H_
#define HERMES_COMMON_STR_H_

#include <sstream>
#include <string>
#include <string_view>

namespace hermes {

namespace internal_str {

inline void AppendPiece(std::string& out, std::string_view v) { out += v; }
inline void AppendPiece(std::string& out, const char* v) { out += v; }
inline void AppendPiece(std::string& out, const std::string& v) { out += v; }
inline void AppendPiece(std::string& out, char v) { out += v; }
inline void AppendPiece(std::string& out, bool v) {
  out += v ? "true" : "false";
}

template <typename T>
void AppendPiece(std::string& out, const T& v) {
  if constexpr (std::is_integral_v<T> || std::is_floating_point_v<T>) {
    out += std::to_string(v);
  } else {
    std::ostringstream oss;
    oss << v;
    out += oss.str();
  }
}

}  // namespace internal_str

template <typename... Args>
void StrAppend(std::string& out, const Args&... args) {
  (internal_str::AppendPiece(out, args), ...);
}

template <typename... Args>
std::string StrCat(const Args&... args) {
  std::string out;
  StrAppend(out, args...);
  return out;
}

// Joins container elements with `sep`, using operator<< for formatting.
template <typename Container>
std::string StrJoin(const Container& c, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& e : c) {
    if (!first) out += sep;
    first = false;
    internal_str::AppendPiece(out, e);
  }
  return out;
}

}  // namespace hermes

#endif  // HERMES_COMMON_STR_H_
