#include "common/str.h"

// All helpers are header-only templates; this translation unit exists so the
// header participates in the build and stays self-contained.
