#include "common/status.h"

#include "common/ids.h"
#include "common/str.h"

namespace hermes {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kRejected:
      return "REJECTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

std::string TxnId::ToString() const {
  switch (kind) {
    case Kind::kInvalid:
      return "T?";
    case Kind::kGlobal:
      return StrCat("G", seq, "@", site);
    case Kind::kLocal:
      return StrCat("L", seq, "@", site);
  }
  return "T?";
}

std::ostream& operator<<(std::ostream& os, const TxnId& id) {
  return os << id.ToString();
}

std::string SubTxnId::ToString() const {
  return StrCat(txn.ToString(), ".", resubmission);
}

std::ostream& operator<<(std::ostream& os, const SubTxnId& id) {
  return os << id.ToString();
}

std::string ItemId::ToString() const {
  return StrCat("s", site, ".t", table, ".k", key);
}

std::ostream& operator<<(std::ostream& os, const ItemId& id) {
  return os << id.ToString();
}

}  // namespace hermes
