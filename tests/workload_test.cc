// Workload driver smoke tests and the central property-based sweeps:
// across seeds, policies and failure rates, every history produced by the
// full certifier must be view serializable (exact oracle on small runs,
// commit-order-graph criterion on all runs), while the naive agent under
// failures must eventually produce distortions.

#include "workload/driver.h"

#include <gtest/gtest.h>

#include <set>

#include "common/str.h"
#include "workload/generator.h"

namespace hermes::workload {
namespace {

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_sites = 3;
  config.rows_per_table = 12;  // high contention
  config.global_clients = 4;
  config.local_clients_per_site = 1;
  config.target_global_txns = 30;
  config.cmds_per_global_txn = 3;
  config.sites_per_global_txn = 2;
  config.global_write_fraction = 0.7;
  config.local_write_fraction = 0.5;
  return config;
}

TEST(Driver, FailureFreeRunCommitsEverythingAndIsSerializable) {
  WorkloadConfig config = SmallConfig(1);
  const RunResult result = Driver::Run(config);

  EXPECT_EQ(result.metrics.global_committed + result.metrics.global_aborted,
            config.target_global_txns);
  // Failure-free: the certifier never aborts anything (the paper's
  // restrictiveness claim). DML aborts can still occur via lock timeouts
  // under contention, but certification refusals must be zero.
  EXPECT_EQ(result.metrics.refuse_interval, 0);
  EXPECT_EQ(result.metrics.refuse_extension, 0);
  EXPECT_EQ(result.metrics.refuse_dead, 0);
  EXPECT_EQ(result.metrics.resubmissions, 0);
  EXPECT_TRUE(result.commit_graph_acyclic);
  EXPECT_TRUE(result.replay_consistent) << result.replay_error;
  EXPECT_NE(result.verdict, history::Verdict::kNotSerializable)
      << result.verdict_detail;
  EXPECT_GT(result.metrics.global_committed, 0);
}

TEST(Driver, CgmRunsTheSameWorkload) {
  WorkloadConfig config = SmallConfig(2);
  config.system = System::kCGM;
  config.cgm_granularity = cgm::Granularity::kSite;
  const RunResult result = Driver::Run(config);
  EXPECT_GT(result.metrics.global_committed, 0);
  EXPECT_TRUE(result.replay_consistent) << result.replay_error;
  EXPECT_NE(result.verdict, history::Verdict::kNotSerializable)
      << result.verdict_detail;
}

struct SweepParam {
  uint64_t seed;
  double p_fail;
  core::CertPolicy policy;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = core::CertPolicyName(info.param.policy);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return StrCat(name, "_pfail", static_cast<int>(info.param.p_fail * 100),
                "_seed", info.param.seed);
}

class SerializabilitySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SerializabilitySweep, FullCertifierAlwaysViewSerializable) {
  const SweepParam& param = GetParam();
  WorkloadConfig config = SmallConfig(param.seed);
  config.policy = param.policy;
  config.p_prepared_abort = param.p_fail;
  config.alive_check_interval = 10 * sim::kMillisecond;
  const RunResult result = Driver::Run(config);

  EXPECT_GT(result.metrics.global_committed, 0);
  EXPECT_TRUE(result.replay_consistent) << result.replay_error;
  if (param.policy == core::CertPolicy::kFull) {
    // The paper's guarantee: view serializable overall histories in the
    // presence of unilateral aborts.
    EXPECT_TRUE(result.commit_graph_acyclic);
    EXPECT_NE(result.verdict, history::Verdict::kNotSerializable)
        << result.verdict_detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAndFailureGrid, SerializabilitySweep,
    ::testing::Values(
        SweepParam{11, 0.0, core::CertPolicy::kFull},
        SweepParam{12, 0.1, core::CertPolicy::kFull},
        SweepParam{13, 0.3, core::CertPolicy::kFull},
        SweepParam{14, 0.5, core::CertPolicy::kFull},
        SweepParam{15, 0.3, core::CertPolicy::kFull},
        SweepParam{16, 0.3, core::CertPolicy::kFull},
        SweepParam{17, 0.1, core::CertPolicy::kPrepareExtended},
        SweepParam{18, 0.3, core::CertPolicy::kPrepareExtended},
        SweepParam{19, 0.1, core::CertPolicy::kPrepareOnly},
        SweepParam{20, 0.3, core::CertPolicy::kNone},
        SweepParam{21, 0.5, core::CertPolicy::kNone}),
    SweepName);

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, FullCertifierUnderHeavyFailures) {
  WorkloadConfig config = SmallConfig(GetParam());
  config.policy = core::CertPolicy::kFull;
  config.p_prepared_abort = 0.4;
  config.alive_check_interval = 8 * sim::kMillisecond;
  config.target_global_txns = 25;
  const RunResult result = Driver::Run(config);
  EXPECT_TRUE(result.commit_graph_acyclic);
  EXPECT_TRUE(result.replay_consistent) << result.replay_error;
  EXPECT_NE(result.verdict, history::Verdict::kNotSerializable)
      << result.verdict_detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(uint64_t{100}, uint64_t{120}));

TEST(Driver, NaiveAgentEventuallyViolatesSerializability) {
  // Without certification, unilateral aborts must eventually produce a
  // cyclic commit order graph or a non-view-serializable history across a
  // batch of seeds. (Any single seed may get lucky; the batch must not.)
  int violations = 0;
  for (uint64_t seed = 200; seed < 212; ++seed) {
    WorkloadConfig config = SmallConfig(seed);
    config.policy = core::CertPolicy::kNone;
    config.dlu_binding = false;  // drop DLU too: fully naive
    config.p_prepared_abort = 0.5;
    config.alive_check_interval = 4 * sim::kMillisecond;
    config.rows_per_table = 6;  // very hot keys
    config.local_clients_per_site = 2;
    const RunResult result = Driver::Run(config);
    if (!result.commit_graph_acyclic ||
        result.verdict == history::Verdict::kNotSerializable ||
        !result.replay_consistent) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(Driver, DeterministicAcrossRuns) {
  WorkloadConfig config = SmallConfig(42);
  config.p_prepared_abort = 0.2;
  const RunResult a = Driver::Run(config);
  const RunResult b = Driver::Run(config);
  EXPECT_EQ(a.metrics.global_committed, b.metrics.global_committed);
  EXPECT_EQ(a.metrics.global_aborted, b.metrics.global_aborted);
  EXPECT_EQ(a.metrics.resubmissions, b.metrics.resubmissions);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.history_ops, b.history_ops);
}

TEST(Generator, GlobalTxnsRespectSiteAndCommandCounts) {
  WorkloadConfig config = SmallConfig(7);
  config.num_sites = 5;
  config.sites_per_global_txn = 3;
  config.cmds_per_global_txn = 6;
  Generator gen(config, 7);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const core::GlobalTxnSpec spec = gen.NextGlobal(rng);
    EXPECT_EQ(spec.steps.size(), 6u);
    std::set<SiteId> sites;
    for (const auto& step : spec.steps) {
      ASSERT_GE(step.site, 0);
      ASSERT_LT(step.site, 5);
      sites.insert(step.site);
    }
    EXPECT_EQ(sites.size(), 3u);
  }
}

}  // namespace
}  // namespace hermes::workload
