// Tests of the binary ring-buffer trace backend: record round-trips over
// every EventKind, ring overflow accounting, per-gtid sampling, streaming
// folds and format interchangeability (JSONL vs binary captures of the
// same seeded run), the deterministic multi-run merge, truncation
// handling, the chunked JSONL writer and the driver's mid-run flush hook.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "runner/runner.h"
#include "trace/binary.h"
#include "trace/critical_path.h"
#include "trace/span.h"
#include "trace/trace.h"
#include "workload/driver.h"

namespace hermes {
namespace {

using trace::Event;
using trace::EventKind;
using trace::RefuseKind;
using trace::Tracer;
using trace::TracerOptions;
using trace::TraceFormat;

// An event exercising every encodable field, varied by `i` so consecutive
// events never collapse to the same record bytes.
Event FullEvent(EventKind kind, int i) {
  Event e;
  e.kind = kind;
  e.txn = i % 3 == 0   ? TxnId::MakeGlobal(i % 5, 100 + i)
          : i % 3 == 1 ? TxnId::MakeLocal(i % 5, 200 + i)
                       : TxnId{};
  e.site = i % 7;
  e.peer = i % 2 == 0 ? (i + 1) % 7 : kInvalidSite;
  e.resubmission = i % 4 == 0 ? i % 3 : -1;
  e.value = 1000 + i;
  e.sn = core::SerialNumber{i * 10, i % 5, i % 3};
  e.refuse = trace::kAllRefuseKinds[static_cast<size_t>(i) %
                                    std::size(trace::kAllRefuseKinds)];
  e.ok = i % 2 == 0;
  if (i % 3 == 0) e.detail = "detail-" + std::to_string(i);
  if (i % 4 == 0) {
    e.related = {TxnId::MakeGlobal(1, i), TxnId::MakeLocal(2, i + 1)};
  }
  return e;
}

workload::WorkloadConfig SmallConfig(uint64_t seed) {
  workload::WorkloadConfig config;
  config.seed = seed;
  config.num_sites = 3;
  config.global_clients = 4;
  config.target_global_txns = 40;
  return config;
}

// --- record round-trip -------------------------------------------------------

TEST(BinaryTrace, RoundTripsEveryEventKind) {
  trace::BinaryTraceWriter writer;
  std::vector<Event> original;
  int i = 0;
  for (EventKind kind : trace::kAllEventKinds) {
    Event e = FullEvent(kind, i++);
    e.seq = static_cast<int64_t>(original.size());
    e.at = 1000 * static_cast<int64_t>(original.size());
    original.push_back(e);
    writer.Add(e);
  }
  Result<std::vector<Event>> parsed = trace::ParseBinary(writer.Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t k = 0; k < original.size(); ++k) {
    EXPECT_EQ((*parsed)[k], original[k])
        << "kind " << trace::EventKindName(original[k].kind);
  }
}

TEST(BinaryTrace, RoundTripsLongDetailAndManyRelated) {
  Event e = FullEvent(EventKind::kCertRefuse, 0);
  e.seq = 0;
  e.at = 42;
  e.detail = std::string(4096, 'x') + " end";
  e.related.clear();
  for (int i = 0; i < 50; ++i) e.related.push_back(TxnId::MakeGlobal(i, i));
  trace::BinaryTraceWriter writer;
  writer.Add(e);
  Result<std::vector<Event>> parsed = trace::ParseBinary(writer.Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0], e);
}

TEST(BinaryTrace, DictionaryDeduplicatesRepeatedStrings) {
  trace::BinaryTraceWriter writer;
  for (int i = 0; i < 100; ++i) {
    Event e = FullEvent(EventKind::kMsgDrop, 0);
    e.seq = i;
    e.at = i;
    e.detail = "loss";  // one dictionary entry, not 100
    e.related.clear();
    writer.Add(e);
  }
  const std::string bytes = writer.Finish();
  // Header + one dictionary entry (u32 len + 4 bytes) + 100 records.
  EXPECT_EQ(bytes.size(), trace::kBinaryHeaderSize + 4 + 4 +
                              100 * trace::kBinaryRecordSize);
}

// --- ring buffer -------------------------------------------------------------

TEST(BinaryTrace, RingOverflowKeepsTailAndCountsDrops) {
  TracerOptions options;
  options.format = TraceFormat::kBinary;
  options.ring_capacity = 8;
  Tracer tracer(options);
  for (int i = 0; i < 20; ++i) {
    tracer.Record(FullEvent(EventKind::kMsgSend, i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.stats().emitted, 20);
  EXPECT_EQ(tracer.stats().dropped, 12);
  EXPECT_EQ(tracer.stats().sampled_out, 0);

  // The ring holds exactly the 8 newest records, in emit order.
  std::vector<int64_t> seqs;
  tracer.ForEach([&](const Event& e) { seqs.push_back(e.seq); });
  ASSERT_EQ(seqs.size(), 8u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<int64_t>(12 + i));
  }

  // The export carries the drop count in its header.
  trace::BinaryParse parsed = trace::ParseBinaryLenient(tracer.ToBinary());
  EXPECT_FALSE(parsed.truncated);
  EXPECT_EQ(parsed.skipped_records, 0);
  EXPECT_EQ(parsed.dropped, 12);
  EXPECT_EQ(parsed.events.size(), 8u);
  EXPECT_EQ(parsed.events.front().seq, 12);
}

TEST(BinaryTrace, SerializedRingDictionaryOmitsEvictedStrings) {
  TracerOptions options;
  options.format = TraceFormat::kBinary;
  options.ring_capacity = 2;
  Tracer tracer(options);
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.kind = EventKind::kMsgDrop;
    e.detail = "reason-" + std::to_string(i);
    tracer.Record(e);
  }
  const std::string bytes = tracer.ToBinary();
  // Only the two surviving details may appear in the export.
  EXPECT_EQ(bytes.find("reason-0"), std::string::npos);
  EXPECT_NE(bytes.find("reason-8"), std::string::npos);
  EXPECT_NE(bytes.find("reason-9"), std::string::npos);
  Result<std::vector<Event>> parsed = trace::ParseBinary(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].detail, "reason-8");
  EXPECT_EQ((*parsed)[1].detail, "reason-9");
}

// --- sampling ----------------------------------------------------------------

TEST(BinaryTrace, SamplingKeepsOrDropsWholeTransactions) {
  TracerOptions options;
  options.sample_period = 4;
  options.sample_seed = 7;
  Tracer tracer(options);
  constexpr int kTxns = 64;
  constexpr int kEventsPerTxn = 5;
  for (int t = 0; t < kTxns; ++t) {
    const TxnId txn = TxnId::MakeGlobal(t % 3, t);
    for (int k = 0; k < kEventsPerTxn; ++k) {
      Event e;
      e.kind = EventKind::kStepStart;
      e.txn = txn;
      e.value = k;
      tracer.Record(e);
    }
  }
  // Every transaction is all-in or all-out, matching KeepsTxn.
  std::set<int64_t> kept;
  tracer.ForEach([&](const Event& e) { kept.insert(e.txn.seq); });
  int kept_txns = 0;
  for (int t = 0; t < kTxns; ++t) {
    const TxnId txn = TxnId::MakeGlobal(t % 3, t);
    if (tracer.KeepsTxn(txn)) {
      ++kept_txns;
      EXPECT_TRUE(kept.count(t)) << "t=" << t;
    } else {
      EXPECT_FALSE(kept.count(t)) << "t=" << t;
    }
  }
  EXPECT_GT(kept_txns, 0);
  EXPECT_LT(kept_txns, kTxns);
  EXPECT_EQ(tracer.size(),
            static_cast<size_t>(kept_txns) * kEventsPerTxn);
  // emitted == stored + sampled_out + dropped, and seq numbers show
  // honest gaps: the emit index advances for sampled-out events too.
  EXPECT_EQ(tracer.stats().emitted, kTxns * kEventsPerTxn);
  EXPECT_EQ(tracer.stats().sampled_out,
            static_cast<int64_t>(kTxns - kept_txns) * kEventsPerTxn);
  EXPECT_EQ(tracer.stats().dropped, 0);

  // Events without a global transaction are never sampled out.
  Event crash;
  crash.kind = EventKind::kSiteCrash;
  crash.site = 1;
  const int64_t before = tracer.stats().sampled_out;
  tracer.Record(crash);
  EXPECT_EQ(tracer.stats().sampled_out, before);
}

TEST(BinaryTrace, SampledTraceYieldsWellFormedSpanForest) {
  workload::WorkloadConfig config = SmallConfig(501);
  TracerOptions sampled;
  sampled.format = TraceFormat::kBinary;
  sampled.sample_period = 4;
  sampled.sample_seed = 11;
  Tracer sampled_tracer(sampled);
  config.tracer = &sampled_tracer;
  workload::Driver::Run(config);

  Tracer full_tracer;
  config.tracer = &full_tracer;
  workload::Driver::Run(config);

  const trace::SpanForest sampled_forest =
      trace::BuildSpanForest(sampled_tracer);
  const trace::SpanForest full_forest = trace::BuildSpanForest(full_tracer);
  ASSERT_GT(sampled_forest.roots.size(), 0u);
  ASSERT_LT(sampled_forest.roots.size(), full_forest.roots.size());
  // Whole-gtid sampling means every surviving transaction's tree is
  // complete: each sampled root closed with the same span structure it
  // has in the unsampled run.
  for (int32_t root : sampled_forest.roots) {
    const trace::Span& span = sampled_forest.spans[static_cast<size_t>(root)];
    EXPECT_TRUE(sampled_tracer.KeepsTxn(span.txn));
    EXPECT_TRUE(span.closed()) << span.txn.ToString();
    const trace::Span* full = full_forest.Root(span.txn);
    ASSERT_NE(full, nullptr) << span.txn.ToString();
    EXPECT_EQ(span.children.size(), full->children.size())
        << span.txn.ToString();
    EXPECT_EQ(span.begin, full->begin);
    EXPECT_EQ(span.end, full->end);
    EXPECT_EQ(span.ok, full->ok);
  }
}

// --- format interchangeability ----------------------------------------------

TEST(BinaryTrace, JsonlAndBinaryCapturesOfSameRunAgree) {
  workload::WorkloadConfig config = SmallConfig(502);
  Tracer jsonl_tracer;
  config.tracer = &jsonl_tracer;
  workload::Driver::Run(config);

  TracerOptions binary;
  binary.format = TraceFormat::kBinary;
  Tracer binary_tracer(binary);
  config.tracer = &binary_tracer;
  workload::Driver::Run(config);

  ASSERT_GT(jsonl_tracer.size(), 0u);
  ASSERT_EQ(jsonl_tracer.size(), binary_tracer.size());
  // The JSONL rendering of the binary ring equals the vector backend's.
  EXPECT_EQ(binary_tracer.ToJsonl(), jsonl_tracer.ToJsonl());
  // And the derived analyses are byte-identical whichever capture fed
  // them — the acceptance bar for format interchangeability.
  EXPECT_EQ(trace::AnalyzeCriticalPath(binary_tracer).ToString(),
            trace::AnalyzeCriticalPath(jsonl_tracer).ToString());
  EXPECT_EQ(trace::BuildSpanForest(binary_tracer).ToString(),
            trace::BuildSpanForest(jsonl_tracer).ToString());
  // Round-trip through the serialized binary file, too.
  Result<std::vector<Event>> parsed =
      trace::ParseBinary(binary_tracer.ToBinary());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(trace::AnalyzeCriticalPath(trace::BuildSpanForest(*parsed))
                .ToString(),
            trace::AnalyzeCriticalPath(jsonl_tracer).ToString());
}

// --- multi-run merge ---------------------------------------------------------

TEST(BinaryTrace, MergeIsIdenticalAcrossWorkerCounts) {
  std::vector<runner::RunSpec> specs;
  for (int s = 0; s < 3; ++s) {
    runner::RunSpec spec;
    spec.cell = "merge";
    spec.config = SmallConfig(600 + static_cast<uint64_t>(s));
    spec.capture_trace = true;
    spec.trace_options.format = TraceFormat::kBinary;
    specs.push_back(spec);
  }
  Result<std::vector<runner::RunOutput>> serial =
      runner::RunAll(specs, {.workers = 1});
  Result<std::vector<runner::RunOutput>> parallel =
      runner::RunAll(specs, {.workers = 2});
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(runner::Fingerprint((*serial)[i]),
              runner::Fingerprint((*parallel)[i]))
        << "run " << i;
  }
  Result<std::string> merged_serial = runner::MergeBinaryTraces(*serial);
  Result<std::string> merged_parallel = runner::MergeBinaryTraces(*parallel);
  ASSERT_TRUE(merged_serial.ok()) << merged_serial.status().ToString();
  ASSERT_TRUE(merged_parallel.ok());
  EXPECT_EQ(*merged_serial, *merged_parallel);

  // The merge is a valid binary trace holding every run's events in
  // nondecreasing virtual-time order.
  Result<std::vector<Event>> events = trace::ParseBinary(*merged_serial);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  size_t total = 0;
  for (const runner::RunOutput& out : *serial) {
    trace::BinaryParse p = trace::ParseBinaryLenient(out.trace_binary);
    total += p.events.size();
  }
  EXPECT_EQ(events->size(), total);
  for (size_t i = 1; i < events->size(); ++i) {
    EXPECT_LE((*events)[i - 1].at, (*events)[i].at) << "index " << i;
  }

  // A damaged capture fails the merge instead of silently shrinking it.
  std::vector<runner::RunOutput> damaged = *serial;
  damaged[1].trace_binary.resize(damaged[1].trace_binary.size() - 7);
  EXPECT_FALSE(runner::MergeBinaryTraces(damaged).ok());
}

// --- truncation --------------------------------------------------------------

TEST(BinaryTrace, TruncatedFileYieldsWholeRecordsAndIsCounted) {
  trace::BinaryTraceWriter writer;
  for (int i = 0; i < 10; ++i) {
    Event e = FullEvent(EventKind::kTxnEnd, i);
    e.seq = i;
    e.at = i * 100;
    writer.Add(e);
  }
  std::string bytes = writer.Finish();
  // Cut mid-way through the 7th record.
  const size_t records_at = bytes.size() - 10 * trace::kBinaryRecordSize;
  bytes.resize(records_at + 6 * trace::kBinaryRecordSize +
               trace::kBinaryRecordSize / 2);

  EXPECT_FALSE(trace::ParseBinary(bytes).ok());
  trace::BinaryParse parsed = trace::ParseBinaryLenient(bytes);
  EXPECT_TRUE(parsed.truncated);
  EXPECT_EQ(parsed.records_declared, 10);
  EXPECT_EQ(parsed.events.size(), 6u);
  for (size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].seq, static_cast<int64_t>(i));
  }
  ASSERT_FALSE(parsed.warnings.empty());
  EXPECT_NE(parsed.warnings.front().find("6 of 10"), std::string::npos)
      << parsed.warnings.front();
}

TEST(BinaryTrace, RejectsWrongMagicAndVersion) {
  EXPECT_FALSE(trace::IsBinaryTrace("{\"kind\":\"txn_begin\"}"));
  EXPECT_FALSE(trace::ParseBinary("HTRX garbage").ok());
  trace::BinaryTraceWriter writer;
  std::string bytes = writer.Finish();
  EXPECT_TRUE(trace::IsBinaryTrace(bytes));
  bytes[4] = static_cast<char>(trace::kBinaryTraceVersion + 1);
  EXPECT_FALSE(trace::ParseBinary(bytes).ok());
}

// --- chunked JSONL writer ----------------------------------------------------

TEST(BinaryTrace, WriteJsonlStreamsIdenticalBytes) {
  Tracer tracer;
  for (int i = 0; i < 5000; ++i) {
    Event e = FullEvent(EventKind::kStepEnd, i);
    e.detail = "padding-" + std::string(64, 'p') + std::to_string(i);
    tracer.Record(e);
  }
  const std::string path = testing::TempDir() + "/hermes_trace_chunked.jsonl";
  ASSERT_TRUE(tracer.WriteJsonl(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    read_back.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read_back, tracer.ToJsonl());
}

// --- metrics + flush hook ----------------------------------------------------

TEST(BinaryTrace, TraceCountersReachRunMetrics) {
  workload::WorkloadConfig config = SmallConfig(503);
  TracerOptions options;
  options.format = TraceFormat::kBinary;
  options.sample_period = 4;
  options.sample_seed = 3;
  Tracer tracer(options);
  config.tracer = &tracer;
  const workload::RunResult result = workload::Driver::Run(config);
  EXPECT_EQ(result.metrics.trace_events_emitted, tracer.stats().emitted);
  EXPECT_EQ(result.metrics.trace_events_dropped, tracer.stats().dropped);
  EXPECT_EQ(result.metrics.trace_sampled_out, tracer.stats().sampled_out);
  EXPECT_GT(result.metrics.trace_events_emitted, 0);
  EXPECT_GT(result.metrics.trace_sampled_out, 0);
  // The counters ride the generic entry list into Prometheus text.
  EXPECT_NE(result.PrometheusText().find("hermes_trace_events_emitted"),
            std::string::npos);

  // An untraced run reports zeros.
  config.tracer = nullptr;
  const workload::RunResult untraced = workload::Driver::Run(config);
  EXPECT_EQ(untraced.metrics.trace_events_emitted, 0);
  EXPECT_EQ(untraced.metrics.trace_sampled_out, 0);
}

TEST(BinaryTrace, FlushHookDeliversPeriodicSnapshots) {
  workload::WorkloadConfig config = SmallConfig(504);
  Tracer tracer;
  config.tracer = &tracer;
  config.flush_interval = 20 * sim::kMillisecond;
  std::vector<workload::FlushSnapshot> snapshots;
  config.flush_hook = [&](const workload::FlushSnapshot& snap) {
    snapshots.push_back(snap);
  };
  const workload::RunResult result = workload::Driver::Run(config);
  ASSERT_GT(result.flushes, 0);
  ASSERT_EQ(snapshots.size(), static_cast<size_t>(result.flushes));
  for (size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].index, static_cast<int64_t>(i));
    if (i > 0) {
      EXPECT_GT(snapshots[i].at, snapshots[i - 1].at);
    }
    EXPECT_NE(snapshots[i].prometheus.find("hermes_global_committed"),
              std::string::npos);
  }
  // The last snapshot's series is a prefix view: no more windows than the
  // run's final series.
  EXPECT_LE(snapshots.back().series.windows.size(),
            result.series.windows.size());

  // Flushing is observational only: the traced run is byte-identical
  // with and without a hook installed.
  workload::WorkloadConfig plain = SmallConfig(504);
  Tracer plain_tracer;
  plain.tracer = &plain_tracer;
  const workload::RunResult plain_result = workload::Driver::Run(plain);
  EXPECT_EQ(plain_result.flushes, 0);
  EXPECT_EQ(plain_tracer.ToJsonl(), tracer.ToJsonl());
}

}  // namespace
}  // namespace hermes
