// End-to-end tests of epoch-fenced online reconfiguration: live site
// add/remove/replace against a running Mdbs, with the history oracles
// judging every run and the handoff invariants (no transaction lost or
// duplicated, zero stale-epoch commits) asserted directly.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"
#include "shard/reconfig.h"

namespace hermes {
namespace {

using core::GlobalTxnResult;
using core::GlobalTxnSpec;
using core::Mdbs;
using core::MdbsConfig;
using shard::ReconfigKind;
using shard::ReconfigOp;

constexpr int64_t kKeys = 16;

class ReconfigTest : public ::testing::Test {
 protected:
  void Build(int sites, int num_shards, int max_sites,
             consensus::ProtocolKind protocol =
                 consensus::ProtocolKind::k2PC) {
    MdbsConfig config;
    config.num_sites = sites;
    config.num_shards = num_shards;
    config.max_sites = max_sites;
    config.protocol = protocol;
    config.agent.alive_check_interval = 5 * sim::kMillisecond;
    mdbs_ = std::make_unique<Mdbs>(config, &loop_);
    table_ = *mdbs_->CreateTableEverywhere("t");
    for (int64_t k = 0; k < kKeys; ++k) {
      const SiteId owner = mdbs_->directory()->Current().OwnerOfKey(k);
      ASSERT_TRUE(mdbs_->LoadRow(owner, table_, k,
                                 db::Row{{"val", db::Value(int64_t{0})}})
                      .ok());
    }
    loop_.set_max_events(20'000'000);
  }

  // Submits `n` two-key global transactions back to back (each next one
  // from the previous one's completion callback), re-reading the shard map
  // for routing every time. Key pairs cycle deterministically.
  void RunWorkload(int n) {
    submitted_ = completed_ = committed_ = 0;
    SubmitNext(n);
  }

  void SubmitNext(int remaining) {
    if (remaining == 0) return;
    const int64_t a = next_key_ % kKeys;
    const int64_t b = (next_key_ + 5) % kKeys;
    next_key_ += 3;
    const shard::ShardMap& map = mdbs_->directory()->Current();
    GlobalTxnSpec spec;
    spec.steps.push_back(
        {map.OwnerOfKey(a), db::MakeAddKey(table_, a, "val", int64_t{1})});
    spec.steps.push_back(
        {map.OwnerOfKey(b), db::MakeAddKey(table_, b, "val", int64_t{1})});
    ++submitted_;
    mdbs_->Submit(spec, [this, remaining](const GlobalTxnResult& r) {
      ++completed_;
      if (r.status.ok()) ++committed_;
      SubmitNext(remaining - 1);
    });
  }

  // Sum of "val" over all keys, read at each key's current owner.
  int64_t TotalValue() {
    int64_t sum = 0;
    for (int64_t k = 0; k < kKeys; ++k) {
      const SiteId owner = mdbs_->directory()->Current().OwnerOfKey(k);
      const db::RowEntry* e =
          mdbs_->storage(owner)->GetTable(table_)->Get(k);
      EXPECT_NE(e, nullptr) << "key " << k << " missing at site " << owner;
      if (e == nullptr || !e->live()) continue;
      sum += std::get<int64_t>(*e->row->Get("val"));
    }
    return sum;
  }

  void CheckOracles() {
    const auto& ops = mdbs_->recorder().ops();
    EXPECT_EQ(history::CheckGlobalAtomicity(ops), "");
    const auto committed = history::CommittedProjection(ops);
    EXPECT_EQ(history::VerifyReplayMatchesRecorded(committed), "");
    EXPECT_TRUE(history::CommitGraphAcyclic(committed));
    const auto check = history::CheckViewSerializability(committed,
                                                         /*max_txns=*/8);
    EXPECT_NE(check.verdict, history::Verdict::kNotSerializable)
        << check.reason;
  }

  sim::EventLoop loop_;
  std::unique_ptr<Mdbs> mdbs_;
  db::TableId table_ = -1;
  int64_t next_key_ = 0;
  int submitted_ = 0;
  int completed_ = 0;
  int committed_ = 0;
};

TEST_F(ReconfigTest, AddSiteUnderLoadKeepsEveryInvariant) {
  Build(/*sites=*/2, /*num_shards=*/8, /*max_sites=*/3);
  std::optional<Status> reconfig_done;
  loop_.ScheduleAfter(10 * sim::kMillisecond, [&]() {
    ASSERT_TRUE(mdbs_
                    ->StartReconfig(ReconfigOp{ReconfigKind::kAddSite,
                                               kInvalidSite},
                                    [&](Status s) { reconfig_done = s; })
                    .ok());
  });
  RunWorkload(40);
  loop_.Run();

  ASSERT_TRUE(reconfig_done.has_value());
  EXPECT_TRUE(reconfig_done->ok());
  EXPECT_EQ(completed_, 40);  // no transaction lost across the handoff
  EXPECT_EQ(mdbs_->num_sites(), 3);
  EXPECT_FALSE(mdbs_->directory()->Current().ShardsOf(2).empty());
  const auto m = mdbs_->metrics();
  EXPECT_EQ(m.reconfig_completed, 1);
  EXPECT_GT(m.reconfig_rows_moved, 0);
  EXPECT_EQ(m.commits_stale_epoch, 0);
  // Every commit applied exactly once: two increments per committed txn.
  EXPECT_EQ(TotalValue(), 2 * committed_);
  CheckOracles();
}

TEST_F(ReconfigTest, RemoveSiteMovesRowsRetiresAndKeepsRouting) {
  Build(/*sites=*/3, /*num_shards=*/9, /*max_sites=*/3);
  std::optional<Status> reconfig_done;
  loop_.ScheduleAfter(10 * sim::kMillisecond, [&]() {
    ASSERT_TRUE(mdbs_
                    ->StartReconfig(ReconfigOp{ReconfigKind::kRemoveSite, 2},
                                    [&](Status s) { reconfig_done = s; })
                    .ok());
  });
  RunWorkload(40);
  loop_.Run();

  ASSERT_TRUE(reconfig_done.has_value() && reconfig_done->ok());
  EXPECT_EQ(completed_, 40);
  EXPECT_TRUE(mdbs_->SiteRemoved(2));
  EXPECT_TRUE(mdbs_->directory()->Current().ShardsOf(2).empty());
  // A retired site is rejected by the crash/recover API from now on.
  EXPECT_EQ(mdbs_->CrashSite(2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mdbs_->RecoverSite(2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mdbs_->metrics().commits_stale_epoch, 0);
  EXPECT_EQ(TotalValue(), 2 * committed_);
  CheckOracles();

  // The survivors still serve the whole key space.
  RunWorkload(5);
  loop_.Run();
  EXPECT_EQ(completed_, 5);
  EXPECT_GT(committed_, 0);
}

TEST_F(ReconfigTest, ReplaceSiteHandsEverythingToTheSuccessor) {
  Build(/*sites=*/2, /*num_shards=*/8, /*max_sites=*/3);
  const std::vector<int> before = mdbs_->directory()->Current().ShardsOf(1);
  std::optional<Status> reconfig_done;
  loop_.ScheduleAfter(10 * sim::kMillisecond, [&]() {
    ASSERT_TRUE(
        mdbs_
            ->StartReconfig(ReconfigOp{ReconfigKind::kReplaceSite, 1},
                            [&](Status s) { reconfig_done = s; })
            .ok());
  });
  RunWorkload(40);
  loop_.Run();

  ASSERT_TRUE(reconfig_done.has_value() && reconfig_done->ok());
  EXPECT_EQ(completed_, 40);
  EXPECT_TRUE(mdbs_->SiteRemoved(1));
  EXPECT_EQ(mdbs_->directory()->Current().ShardsOf(2), before);
  EXPECT_EQ(mdbs_->metrics().commits_stale_epoch, 0);
  EXPECT_EQ(TotalValue(), 2 * committed_);
  CheckOracles();
}

TEST_F(ReconfigTest, AddSiteUnderPaxosCommitKeepsAcceptorsProtected) {
  Build(/*sites=*/3, /*num_shards=*/9, /*max_sites=*/4,
        consensus::ProtocolKind::kPaxosCommit);
  // Acceptors 0..2f are protected for life (f=1 -> all three founding
  // sites); only an add can reshape this federation.
  EXPECT_EQ(mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kRemoveSite, 1})
                .code(),
            StatusCode::kInvalidArgument);
  std::optional<Status> reconfig_done;
  loop_.ScheduleAfter(10 * sim::kMillisecond, [&]() {
    ASSERT_TRUE(mdbs_
                    ->StartReconfig(ReconfigOp{ReconfigKind::kAddSite,
                                               kInvalidSite},
                                    [&](Status s) { reconfig_done = s; })
                    .ok());
  });
  RunWorkload(30);
  loop_.Run();

  ASSERT_TRUE(reconfig_done.has_value() && reconfig_done->ok());
  EXPECT_EQ(completed_, 30);
  EXPECT_EQ(mdbs_->num_sites(), 4);
  EXPECT_EQ(mdbs_->metrics().commits_stale_epoch, 0);
  EXPECT_EQ(TotalValue(), 2 * committed_);
  CheckOracles();
}

TEST_F(ReconfigTest, PreparedResidueMigratesAndCommitsExactlyOnce) {
  Build(/*sites=*/2, /*num_shards=*/8, /*max_sites=*/3);
  // Freeze a subtransaction at site 1 in the prepared state by cutting the
  // 0<->1 link the moment it prepares, then replace site 1. The drain
  // cannot complete (the prepared residue blocks quiescence), so at the
  // deadline the transfer is forced and the residue migrates to the new
  // site, which answers the coordinator's retried protocol messages on
  // behalf of the retired one.
  bool cut = false;
  mdbs_->agent(1)->add_prepared_hook([&](const TxnId&, LtmTxnHandle) {
    if (cut) return;
    cut = true;
    mdbs_->network().Partition(0, 1, loop_.Now() + 400 * sim::kMillisecond);
    loop_.ScheduleAfter(1 * sim::kMillisecond, [&]() {
      ASSERT_TRUE(
          mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kReplaceSite, 1})
              .ok());
    });
  });

  int64_t key = -1;
  for (int64_t k = 0; k < kKeys; ++k) {
    if (mdbs_->directory()->Current().OwnerOfKey(k) == 1) {
      key = k;
      break;
    }
  }
  ASSERT_NE(key, -1);
  GlobalTxnSpec spec;
  spec.steps.push_back({0, db::MakeAddKey(table_, key % 2 == 0 ? key + 1
                                                              : key - 1,
                                          "val", int64_t{1})});
  spec.steps.push_back({1, db::MakeAddKey(table_, key, "val", int64_t{1})});
  // Route the first step at the actual owner of its key.
  spec.steps[0].site = mdbs_->directory()->Current().OwnerOfKey(
      key % 2 == 0 ? key + 1 : key - 1);
  std::optional<GlobalTxnResult> result;
  mdbs_->Submit(spec, [&](const GlobalTxnResult& r) { result = r; },
                /*coordinator_site=*/0);
  loop_.Run();

  ASSERT_TRUE(cut);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status;
  const auto m = mdbs_->metrics();
  EXPECT_GE(m.reconfig_residue_adopted, 1);
  EXPECT_EQ(m.reconfig_completed, 1);
  EXPECT_EQ(m.commits_stale_epoch, 0);
  EXPECT_TRUE(mdbs_->SiteRemoved(1));
  // Applied exactly once, at the adopting site.
  EXPECT_EQ(TotalValue(), 2);
  CheckOracles();
}

TEST_F(ReconfigTest, HandoffStallsWhileTheSourceIsCrashed) {
  Build(/*sites=*/3, /*num_shards=*/9, /*max_sites=*/3);
  // Crash the removal target mid-drain: the controller must wait (a dead
  // site can neither be drained nor forced), then finish after recovery.
  ASSERT_TRUE(mdbs_->CrashSite(2, /*downtime=*/-1).ok());
  std::optional<Status> reconfig_done;
  ASSERT_TRUE(mdbs_
                  ->StartReconfig(ReconfigOp{ReconfigKind::kRemoveSite, 2},
                                  [&](Status s) { reconfig_done = s; })
                  .code() == StatusCode::kInvalidArgument)
      << "a down site cannot start a drain";
  ASSERT_TRUE(mdbs_->RecoverSite(2).ok());
  ASSERT_TRUE(mdbs_
                  ->StartReconfig(ReconfigOp{ReconfigKind::kRemoveSite, 2},
                                  [&](Status s) { reconfig_done = s; })
                  .ok());
  // Crash it again right after the fence: the poll loop must stall.
  ASSERT_TRUE(mdbs_->CrashSite(2, /*downtime=*/-1).ok());
  loop_.RunUntil(300 * sim::kMillisecond);
  EXPECT_FALSE(reconfig_done.has_value());
  EXPECT_TRUE(mdbs_->reconfiguring());
  ASSERT_TRUE(mdbs_->RecoverSite(2).ok());
  loop_.Run();
  ASSERT_TRUE(reconfig_done.has_value());
  EXPECT_TRUE(reconfig_done->ok());
  EXPECT_TRUE(mdbs_->SiteRemoved(2));
  EXPECT_EQ(mdbs_->metrics().commits_stale_epoch, 0);
}

TEST_F(ReconfigTest, StartReconfigValidatesItsTarget) {
  Build(/*sites=*/2, /*num_shards=*/8, /*max_sites=*/2);
  // Capacity exhausted: no headroom for a provisioned site.
  EXPECT_EQ(
      mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kAddSite, kInvalidSite})
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kReplaceSite, 1}).code(),
      StatusCode::kInvalidArgument);
  // Unknown target.
  EXPECT_EQ(
      mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kRemoveSite, 7}).code(),
      StatusCode::kInvalidArgument);

  // Busy controller: a second reconfiguration is rejected outright.
  Build(/*sites=*/2, /*num_shards=*/8, /*max_sites=*/4);
  ASSERT_TRUE(
      mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kAddSite, kInvalidSite})
          .ok());
  EXPECT_EQ(
      mdbs_->StartReconfig(ReconfigOp{ReconfigKind::kAddSite, kInvalidSite})
          .code(),
      StatusCode::kRejected);
  loop_.Run();
  EXPECT_FALSE(mdbs_->reconfiguring());
}

TEST_F(ReconfigTest, UnshardedMdbsRejectsReconfiguration) {
  MdbsConfig config;
  config.num_sites = 2;  // num_shards stays 0: legacy mode
  Mdbs mdbs(config, &loop_);
  EXPECT_EQ(mdbs.directory(), nullptr);
  EXPECT_EQ(
      mdbs.StartReconfig(ReconfigOp{ReconfigKind::kAddSite, kInvalidSite})
          .code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hermes
