// Unit tests of the shard subsystem: the versioned ShardMap / Directory,
// the reconfiguration controller against a fake host, and the epoch
// fencing of agent-bound protocol messages (stale senders are refused and
// re-driven against the refreshed map).

#include "shard/shard_map.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/mdbs.h"
#include "shard/reconfig.h"
#include "sim/event_loop.h"

namespace hermes {
namespace {

using shard::Controller;
using shard::ControllerConfig;
using shard::Directory;
using shard::HostOps;
using shard::ReconfigKind;
using shard::ReconfigOp;
using shard::ShardMap;

TEST(ShardMapTest, MakeInitialRoundRobinsOwnership) {
  const ShardMap map = ShardMap::MakeInitial(8, 3);
  EXPECT_EQ(map.epoch, 1);
  ASSERT_EQ(map.num_shards(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(map.shards[i].owner, i % 3);
    EXPECT_FALSE(map.shards[i].wedged);
  }
  EXPECT_EQ(map.ShardsOf(0), (std::vector<int>{0, 3, 6}));
  EXPECT_EQ(map.ShardsOf(1), (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(map.ShardsOf(2), (std::vector<int>{2, 5}));
  EXPECT_EQ(map.Owners(), (std::vector<SiteId>{0, 1, 2}));
}

TEST(ShardMapTest, ShardOfHandlesNegativeKeys) {
  const ShardMap map = ShardMap::MakeInitial(4, 2);
  EXPECT_EQ(map.ShardOf(0), 0);
  EXPECT_EQ(map.ShardOf(7), 3);
  EXPECT_EQ(map.ShardOf(-1), 3);  // mathematical modulus, not truncation
  EXPECT_EQ(map.ShardOf(-4), 0);
  EXPECT_EQ(map.OwnerOfKey(-1), map.shards[3].owner);
}

TEST(ShardMapTest, WedgedKeyReflectsShardState) {
  ShardMap map = ShardMap::MakeInitial(4, 2);
  map.shards[1].wedged = true;
  EXPECT_TRUE(map.WedgedKey(1));
  EXPECT_TRUE(map.WedgedKey(5));
  EXPECT_FALSE(map.WedgedKey(0));
}

TEST(DirectoryTest, FetchIsCountedAndInstallAdvancesEpoch) {
  Directory dir(ShardMap::MakeInitial(4, 2));
  EXPECT_EQ(dir.epoch(), 1);
  EXPECT_EQ(dir.fetches(), 0);
  (void)dir.Fetch();
  (void)dir.Fetch();
  EXPECT_EQ(dir.fetches(), 2);

  ShardMap next = dir.Current();
  next.epoch += 1;
  next.shards[0].owner = 1;
  dir.Install(std::move(next));
  EXPECT_EQ(dir.epoch(), 2);
  EXPECT_EQ(dir.Current().shards[0].owner, 1);
}

TEST(DirectoryTest, ForwardIsTransitive) {
  Directory dir(ShardMap::MakeInitial(4, 4));
  EXPECT_EQ(dir.Forward(2), 2);  // no entry: identity
  dir.SetForward(1, 2);
  EXPECT_EQ(dir.Forward(1), 2);
  // 2 was itself later replaced by 3: forwarding chains.
  dir.SetForward(2, 3);
  EXPECT_EQ(dir.Forward(1), 3);
  EXPECT_EQ(dir.Forward(2), 3);
}

// ---------------------------------------------------------------------------
// Controller state machine against a scripted fake host.

class FakeHost : public HostOps {
 public:
  explicit FakeHost(sim::EventLoop* loop) : loop_(loop) {}

  SiteId ProvisionSite() override {
    provisioned.push_back(next_site);
    return next_site++;
  }
  bool SiteUsable(SiteId site) override {
    for (SiteId s : unusable) {
      if (s == site) return false;
    }
    return true;
  }
  bool QuiescentForShards(SiteId site, const std::vector<int>& shards,
                          bool and_coordinator) override {
    (void)shards;
    (void)and_coordinator;
    for (SiteId s : busy_sites) {
      if (s == site) return false;
    }
    return true;
  }
  bool CanForceTransfer(SiteId, const std::vector<int>&, bool) override {
    return can_force;
  }
  int64_t TransferShards(SiteId from, SiteId to,
                         const std::vector<int>& shards) override {
    transfers.push_back({from, to, shards});
    return static_cast<int64_t>(shards.size());
  }
  void DeactivateSite(SiteId site) override { deactivated.push_back(site); }
  void Schedule(sim::Time delay, std::function<void()> fn) override {
    loop_->ScheduleAfter(delay, std::move(fn));
  }

  struct Transfer {
    SiteId from;
    SiteId to;
    std::vector<int> shards;
  };

  sim::EventLoop* loop_;
  SiteId next_site = 3;
  std::vector<SiteId> provisioned;
  std::vector<SiteId> unusable;    // SiteUsable() == false for these
  std::vector<SiteId> busy_sites;  // never quiescent
  bool can_force = false;
  std::vector<Transfer> transfers;
  std::vector<SiteId> deactivated;
};

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : dir_(ShardMap::MakeInitial(9, 3)),
        host_(&loop_),
        controller_(ControllerConfig{}, &dir_, &host_, &metrics_,
                    /*tracer=*/nullptr) {}

  sim::EventLoop loop_;
  Directory dir_;
  FakeHost host_;
  core::Metrics metrics_;
  Controller controller_;
};

TEST_F(ControllerTest, AddSiteStealsQuotaAndInstallsPerMoveEpochs) {
  std::optional<Status> done;
  ASSERT_TRUE(controller_
                  .Start(ReconfigOp{ReconfigKind::kAddSite, kInvalidSite},
                         [&](Status s) { done = s; })
                  .ok());
  EXPECT_TRUE(controller_.busy());
  EXPECT_EQ(dir_.epoch(), 2);  // fence installed synchronously
  loop_.Run();

  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->ok());
  EXPECT_FALSE(controller_.busy());
  // quota = 9 / (3 + 1) = 2 shards stolen; one commit epoch per move after
  // the fence.
  int moved = 0;
  for (const auto& t : host_.transfers) {
    EXPECT_EQ(t.to, 3);
    moved += static_cast<int>(t.shards.size());
  }
  EXPECT_EQ(moved, 2);
  EXPECT_EQ(dir_.epoch(), 2 + static_cast<int64_t>(host_.transfers.size()));
  EXPECT_EQ(dir_.Current().ShardsOf(3).size(), 2u);
  for (const auto& e : dir_.Current().shards) EXPECT_FALSE(e.wedged);
  EXPECT_TRUE(host_.deactivated.empty());
  EXPECT_EQ(metrics_.reconfig_started, 1);
  EXPECT_EQ(metrics_.reconfig_completed, 1);
  EXPECT_EQ(metrics_.reconfig_rows_moved, 2);
}

TEST_F(ControllerTest, RemoveSiteMovesAllShardsToSmallestOwnerAndRetires) {
  std::optional<Status> done;
  ASSERT_TRUE(controller_
                  .Start(ReconfigOp{ReconfigKind::kRemoveSite, 1},
                         [&](Status s) { done = s; })
                  .ok());
  loop_.Run();

  ASSERT_TRUE(done.has_value() && done->ok());
  ASSERT_EQ(host_.transfers.size(), 1u);
  EXPECT_EQ(host_.transfers[0].from, 1);
  // Site 2 owns 3 shards like site 0; the tie breaks to the lowest id —
  // but 0 and 2 both hold 3 of 9, so site 0 wins.
  EXPECT_EQ(host_.transfers[0].to, 0);
  EXPECT_EQ(host_.transfers[0].shards, (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(host_.deactivated, (std::vector<SiteId>{1}));
  EXPECT_TRUE(dir_.Current().ShardsOf(1).empty());
  EXPECT_EQ(dir_.Forward(1), 0);
  EXPECT_TRUE(host_.provisioned.empty());
}

TEST_F(ControllerTest, ReplaceSiteProvisionsSuccessorAndForwards) {
  std::optional<Status> done;
  ASSERT_TRUE(controller_
                  .Start(ReconfigOp{ReconfigKind::kReplaceSite, 2},
                         [&](Status s) { done = s; })
                  .ok());
  loop_.Run();

  ASSERT_TRUE(done.has_value() && done->ok());
  EXPECT_EQ(host_.provisioned, (std::vector<SiteId>{3}));
  ASSERT_EQ(host_.transfers.size(), 1u);
  EXPECT_EQ(host_.transfers[0].from, 2);
  EXPECT_EQ(host_.transfers[0].to, 3);
  EXPECT_EQ(dir_.Current().ShardsOf(3), dir_.Current().ShardsOf(3));
  EXPECT_EQ(host_.deactivated, (std::vector<SiteId>{2}));
  EXPECT_EQ(dir_.Forward(2), 3);
}

TEST_F(ControllerTest, SecondStartWhileBusyIsRejected) {
  ASSERT_TRUE(
      controller_.Start(ReconfigOp{ReconfigKind::kAddSite, kInvalidSite})
          .ok());
  const Status s =
      controller_.Start(ReconfigOp{ReconfigKind::kRemoveSite, 1});
  EXPECT_EQ(s.code(), StatusCode::kRejected);
  loop_.Run();
  EXPECT_FALSE(controller_.busy());
}

TEST_F(ControllerTest, ProtectedSiteCannotBeRemoved) {
  ControllerConfig config;
  config.protected_sites = {0, 1};
  Controller c(config, &dir_, &host_, &metrics_, nullptr);
  EXPECT_EQ(c.Start(ReconfigOp{ReconfigKind::kRemoveSite, 0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Start(ReconfigOp{ReconfigKind::kReplaceSite, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(c.Start(ReconfigOp{ReconfigKind::kRemoveSite, 2}).ok());
  loop_.Run();
}

TEST_F(ControllerTest, DrainWaitsForQuiescenceThenTransfers) {
  host_.busy_sites = {1};  // source never quiescent at first
  std::optional<Status> done;
  ASSERT_TRUE(controller_
                  .Start(ReconfigOp{ReconfigKind::kRemoveSite, 1},
                         [&](Status s) { done = s; })
                  .ok());
  // Let a few polls elapse with the site still busy.
  loop_.RunUntil(20'000);
  EXPECT_FALSE(done.has_value());
  EXPECT_TRUE(host_.transfers.empty());
  host_.busy_sites.clear();
  loop_.Run();
  ASSERT_TRUE(done.has_value() && done->ok());
  EXPECT_EQ(host_.transfers.size(), 1u);
}

TEST_F(ControllerTest, DeadlineForcesTransferWhenHostPermits) {
  host_.busy_sites = {1};  // never quiescent
  host_.can_force = true;
  std::optional<Status> done;
  ASSERT_TRUE(controller_
                  .Start(ReconfigOp{ReconfigKind::kRemoveSite, 1},
                         [&](Status s) { done = s; })
                  .ok());
  loop_.Run();
  ASSERT_TRUE(done.has_value() && done->ok());
  EXPECT_EQ(host_.transfers.size(), 1u);
  // The force only kicks in after the drain deadline elapsed.
  EXPECT_GE(loop_.Now(), ControllerConfig{}.drain_deadline);
}

TEST_F(ControllerTest, HandoffStallsWhileEitherEndIsUnusable) {
  host_.unusable = {1};  // crashed source: neither drain nor adopt
  std::optional<Status> done;
  ASSERT_TRUE(controller_
                  .Start(ReconfigOp{ReconfigKind::kRemoveSite, 1},
                         [&](Status s) { done = s; })
                  .ok());
  loop_.RunUntil(500'000);  // well past the drain deadline
  EXPECT_FALSE(done.has_value());
  EXPECT_TRUE(host_.transfers.empty());
  // The site comes back: the stalled handoff proceeds.
  host_.unusable.clear();
  loop_.Run();
  ASSERT_TRUE(done.has_value() && done->ok());
  EXPECT_EQ(host_.transfers.size(), 1u);
}

// ---------------------------------------------------------------------------
// Epoch fencing at the agents (satellite: stale-epoch refusal paths).

class EpochFencingTest : public ::testing::Test {
 protected:
  void Build() {
    core::MdbsConfig config;
    config.num_sites = 2;
    config.num_shards = 8;
    config.max_sites = 3;
    mdbs_ = std::make_unique<core::Mdbs>(config, &loop_);
    table_ = *mdbs_->CreateTableEverywhere("t");
    for (int64_t k = 0; k < 8; ++k) {
      const SiteId owner = mdbs_->directory()->Current().OwnerOfKey(k);
      ASSERT_TRUE(mdbs_->LoadRow(owner, table_, k,
                                 db::Row{{"val", db::Value(int64_t{0})}})
                      .ok());
    }
    loop_.set_max_events(10'000'000);
  }

  // Installs an ownership-identical successor map, so every cached epoch
  // view in the system becomes stale without any shard actually moving.
  void BumpEpoch() {
    shard::ShardMap next = mdbs_->directory()->Current();
    next.epoch += 1;
    mdbs_->directory()->Install(std::move(next));
  }

  sim::EventLoop loop_;
  std::unique_ptr<core::Mdbs> mdbs_;
  db::TableId table_ = -1;
};

TEST_F(EpochFencingTest, StaleBeginPrepareAndDecisionAreAllRefused) {
  Build();
  BumpEpoch();  // directory now at epoch 2; epoch-1 senders are stale
  const TxnId gtid = TxnId::MakeGlobal(0, 1);

  mdbs_->network().Send(0, 1, core::Message{core::BeginMsg{gtid, 1}});
  loop_.Run();
  EXPECT_EQ(mdbs_->metrics().epoch_refusals, 1);
  EXPECT_EQ(mdbs_->ltm(1)->stats().begun, 0);  // BEGIN never reached the LTM

  mdbs_->network().Send(
      0, 1, core::Message{core::PrepareMsg{gtid, core::SerialNumber{}, 1}});
  loop_.Run();
  EXPECT_EQ(mdbs_->metrics().epoch_refusals, 2);
  EXPECT_EQ(mdbs_->metrics().prepares_received, 0);

  mdbs_->network().Send(
      0, 1, core::Message{core::DecisionMsg{gtid, true, /*csn=*/-1, 1}});
  loop_.Run();
  EXPECT_EQ(mdbs_->metrics().epoch_refusals, 3);

  mdbs_->network().Send(0, 1,
                        core::Message{core::OnePhaseCommitMsg{gtid, 1}});
  loop_.Run();
  EXPECT_EQ(mdbs_->metrics().epoch_refusals, 4);
  EXPECT_EQ(mdbs_->metrics().global_committed, 0);
  EXPECT_EQ(mdbs_->metrics().commits_stale_epoch, 0);
}

TEST_F(EpochFencingTest, EpochZeroSendersAreNeverFenced) {
  Build();
  BumpEpoch();
  // Epoch 0 marks non-sharded senders (legacy mode, Paxos resolvers);
  // fencing must wave them through even when the directory moved on.
  const TxnId gtid = TxnId::MakeGlobal(0, 1);
  mdbs_->network().Send(0, 1, core::Message{core::BeginMsg{gtid, 0}});
  loop_.Run();
  EXPECT_EQ(mdbs_->metrics().epoch_refusals, 0);
  EXPECT_EQ(mdbs_->ltm(1)->stats().begun, 1);
}

TEST_F(EpochFencingTest, RefusedCoordinatorRefreshesAndCommits) {
  Build();
  // Pick a key owned by site 1 so the coordinator at site 0 must cross the
  // network; bump the epoch after submission but before delivery, so the
  // in-flight BEGIN carries a stale view.
  int64_t key = -1;
  for (int64_t k = 0; k < 8; ++k) {
    if (mdbs_->directory()->Current().OwnerOfKey(k) == 1) {
      key = k;
      break;
    }
  }
  ASSERT_NE(key, -1);
  core::GlobalTxnSpec spec;
  spec.steps.push_back({1, db::MakeAddKey(table_, key, "val", int64_t{7})});
  std::optional<core::GlobalTxnResult> result;
  mdbs_->Submit(spec, [&](const core::GlobalTxnResult& r) { result = r; },
                /*coordinator_site=*/0);
  BumpEpoch();  // same virtual instant: the sent BEGIN is now stale
  loop_.Run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status;
  EXPECT_GE(mdbs_->metrics().epoch_refusals, 1);
  EXPECT_GE(mdbs_->metrics().epoch_map_refreshes, 1);
  EXPECT_EQ(mdbs_->metrics().global_committed, 1);
  EXPECT_EQ(mdbs_->metrics().commits_stale_epoch, 0);
  // The refused-and-retried write landed exactly once.
  const db::RowEntry* row = mdbs_->storage(1)->GetTable(table_)->Get(key);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(std::get<int64_t>(*row->row->Get("val")), 7);
}

}  // namespace
}  // namespace hermes
