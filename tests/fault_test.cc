// Unreliable-network fault matrix: duplicate-safe agent handlers driven
// with replayed and out-of-order protocol messages, coordinator
// timeout/retransmission against partitions and lossy links, and a full
// workload run on a lossy, duplicating, reordering network validated
// against the serializability oracle.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/mdbs.h"
#include "fault/fault_plan.h"
#include "workload/driver.h"

namespace hermes {
namespace {

using core::BeginMsg;
using core::DecisionMsg;
using core::DmlRequestMsg;
using core::Message;
using core::PrepareMsg;
using core::SerialNumber;

// Drives the agent at site 0 of a single-site Mdbs with hand-crafted
// protocol messages from a phantom coordinator (replies are ignored), so
// duplicated and out-of-order deliveries can be scripted exactly.
class FaultMatrixTest : public ::testing::Test {
 protected:
  std::unique_ptr<core::Mdbs> Build() {
    core::MdbsConfig config;
    config.num_sites = 1;
    auto mdbs = std::make_unique<core::Mdbs>(config, &loop_);
    table_ = *mdbs->CreateTable(0, "t");
    for (int64_t k = 0; k < 8; ++k) {
      EXPECT_TRUE(mdbs->LoadRow(0, table_, k,
                                db::Row{{"v", db::Value(int64_t{0})}})
                      .ok());
    }
    loop_.set_max_events(1'000'000);
    return mdbs;
  }

  void Send(core::Mdbs& mdbs, const Message& msg) {
    mdbs.network().Send(0, 0, msg);
  }

  void Drain() { loop_.RunUntil(loop_.Now() + 50 * sim::kMillisecond); }

  int64_t Val(core::Mdbs& mdbs, int64_t key) {
    const db::RowEntry* entry = mdbs.storage(0)->GetTable(table_)->Get(key);
    if (entry == nullptr || !entry->live()) return -1;
    return std::get<int64_t>(*entry->row->Get("v"));
  }

  sim::EventLoop loop_;
  db::TableId table_ = -1;
};

TEST_F(FaultMatrixTest, EveryProtocolMessageDuplicatedIsAbsorbedOnce) {
  auto mdbs = Build();
  const TxnId g = TxnId::MakeGlobal(0, 1);
  const auto dml = db::MakeAddKey(table_, 1, "v", int64_t{1});

  Send(*mdbs, Message{BeginMsg{g}});
  Send(*mdbs, Message{BeginMsg{g}});  // duplicate
  Send(*mdbs, Message{DmlRequestMsg{g, 0, dml}});
  Send(*mdbs, Message{DmlRequestMsg{g, 0, dml}});  // duplicate, in flight
  Drain();
  Send(*mdbs, Message{DmlRequestMsg{g, 0, dml}});  // duplicate, completed
  Drain();
  Send(*mdbs, Message{PrepareMsg{g, SerialNumber{100, 0, 0}}});
  Send(*mdbs, Message{PrepareMsg{g, SerialNumber{100, 0, 0}}});  // duplicate
  Drain();
  Send(*mdbs, Message{DecisionMsg{g, true}});
  Send(*mdbs, Message{DecisionMsg{g, true}});  // duplicate
  Drain();

  // The add was applied exactly once and the transaction committed once.
  EXPECT_EQ(Val(*mdbs, 1), 1);
  EXPECT_TRUE(mdbs->agent(0)->log().HasComplete(g));
  EXPECT_EQ(mdbs->agent(0)->log().CommandsOf(g).size(), 1u);
  EXPECT_EQ(mdbs->agent(0)->alive_table().size(), 0u);
  EXPECT_GE(mdbs->metrics().dup_msgs_absorbed, 5);
}

TEST_F(FaultMatrixTest, ReplayedOutOfOrderRunMatchesCleanFinalState) {
  const TxnId g = TxnId::MakeGlobal(0, 1);
  const TxnId stray = TxnId::MakeGlobal(0, 99);  // never begun anywhere

  auto clean = Build();
  const auto dml0 = db::MakeAddKey(table_, 1, "v", int64_t{5});
  Send(*clean, Message{BeginMsg{g}});
  Send(*clean, Message{DmlRequestMsg{g, 0, dml0}});
  Drain();
  Send(*clean, Message{PrepareMsg{g, SerialNumber{100, 0, 0}}});
  Drain();
  Send(*clean, Message{DecisionMsg{g, true}});
  Drain();

  auto hostile = Build();
  // DML overtakes its BEGIN: absorbed silently, the retransmission lands.
  Send(*hostile, Message{DmlRequestMsg{g, 0, dml0}});
  Send(*hostile, Message{BeginMsg{g}});
  Send(*hostile, Message{DmlRequestMsg{g, 0, dml0}});
  Drain();
  // COMMIT overtakes PREPARE: ignored until the state supports it.
  Send(*hostile, Message{DecisionMsg{g, true}});
  Send(*hostile, Message{PrepareMsg{g, SerialNumber{100, 0, 0}}});
  Drain();
  // Stray rollback for a transaction this agent never saw: just acked.
  Send(*hostile, Message{DecisionMsg{stray, false}});
  // The retransmitted COMMIT (plus one duplicate) completes the protocol.
  Send(*hostile, Message{DecisionMsg{g, true}});
  Send(*hostile, Message{DecisionMsg{g, true}});
  Drain();

  // Same final database state as the fault-free run.
  for (int64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(Val(*hostile, k), Val(*clean, k)) << "key " << k;
  }
  EXPECT_EQ(Val(*hostile, 1), 5);
  EXPECT_TRUE(hostile->agent(0)->log().HasComplete(g));
  EXPECT_EQ(hostile->agent(0)->log().CommandsOf(g).size(), 1u);
}

TEST_F(FaultMatrixTest, RetransmittedBeginCannotResurrectCrashedTxn) {
  auto mdbs = Build();
  const TxnId g = TxnId::MakeGlobal(0, 1);
  Send(*mdbs, Message{BeginMsg{g}});
  Send(*mdbs, Message{DmlRequestMsg{
                  g, 0, db::MakeAddKey(table_, 1, "v", int64_t{1})}});
  Drain();

  // The site crashes before PREPARE: the add is rolled back, the volatile
  // transaction is gone, but the agent log still knows the gtid.
  mdbs->CrashSite(0);
  EXPECT_EQ(Val(*mdbs, 1), 0);

  // A retransmitted BEGIN + a later DML must not silently re-open the
  // subtransaction — the command executed before the crash would be lost,
  // committing only half the subtransaction's work.
  Send(*mdbs, Message{BeginMsg{g}});
  Send(*mdbs, Message{DmlRequestMsg{
                  g, 1, db::MakeAddKey(table_, 2, "v", int64_t{1})}});
  Drain();
  Send(*mdbs, Message{PrepareMsg{g, SerialNumber{100, 0, 0}}});
  Drain();

  // Nothing re-executed, nothing prepared: the vote was REFUSE and the
  // coordinator will roll the global transaction back.
  EXPECT_EQ(Val(*mdbs, 1), 0);
  EXPECT_EQ(Val(*mdbs, 2), 0);
  EXPECT_EQ(mdbs->agent(0)->log().CommandsOf(g).size(), 1u);
  EXPECT_EQ(mdbs->agent(0)->alive_table().size(), 0u);
  EXPECT_FALSE(mdbs->ltm(0)->IsActive(mdbs->agent(0)->HandleOf(g)));
}

// --- coordinator timeout / retransmission ------------------------------------

TEST(FaultRecovery, CoordinatorRetransmitsThroughATimedPartition) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  config.coordinator_retry.timeout = 5 * sim::kMillisecond;
  config.coordinator_retry.max_timeout = 20 * sim::kMillisecond;
  config.coordinator_retry.max_attempts = 100;
  core::Mdbs mdbs(config, &loop);
  const db::TableId table = *mdbs.CreateTableEverywhere("t");
  ASSERT_TRUE(
      mdbs.LoadRow(1, table, 1, db::Row{{"v", db::Value(int64_t{0})}}).ok());

  // Sites 0 and 1 cannot talk for the first 50ms; every BEGIN/DML sent in
  // that window is dropped and must be recovered by retransmission.
  mdbs.network().Partition(0, 1, 50 * sim::kMillisecond);

  core::GlobalTxnSpec spec;
  spec.steps.push_back({1, db::MakeAddKey(table, 1, "v", int64_t{1}), {}});
  Status status = Status::Internal("callback never ran");
  mdbs.Submit(std::move(spec),
              [&](const core::GlobalTxnResult& result) {
                status = result.status;
              },
              /*coordinator_site=*/0);
  loop.Run();

  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(mdbs.metrics().global_committed, 1);
  EXPECT_GT(mdbs.metrics().retransmits, 0);
  EXPECT_GT(mdbs.network().messages_dropped(), 0);
}

TEST(FaultRecovery, CoordinatorGivesUpAfterBoundedAttempts) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  config.coordinator_retry.timeout = 2 * sim::kMillisecond;
  config.coordinator_retry.max_timeout = 8 * sim::kMillisecond;
  config.coordinator_retry.max_attempts = 3;
  core::Mdbs mdbs(config, &loop);
  const db::TableId table = *mdbs.CreateTableEverywhere("t");
  ASSERT_TRUE(
      mdbs.LoadRow(1, table, 1, db::Row{{"v", db::Value(int64_t{0})}}).ok());

  // The 0 -> 1 link loses everything until it heals at t = 200ms — long
  // after the DML retransmission budget is exhausted. The coordinator must
  // abort the transaction, then keep retransmitting the ROLLBACK decision
  // (unbounded) until the healed link finally delivers it.
  mdbs.network().SetLinkLoss(0, 1, 1.0);
  loop.ScheduleAt(200 * sim::kMillisecond,
                  [&] { mdbs.network().ClearLinkLoss(0, 1); });

  core::GlobalTxnSpec spec;
  spec.steps.push_back({1, db::MakeAddKey(table, 1, "v", int64_t{1}), {}});
  Status status = Status::Ok();
  mdbs.Submit(std::move(spec),
              [&](const core::GlobalTxnResult& result) {
                status = result.status;
              },
              /*coordinator_site=*/0);
  loop.Run();

  EXPECT_FALSE(status.ok());
  EXPECT_EQ(mdbs.metrics().global_aborted, 1);
  EXPECT_EQ(mdbs.metrics().global_aborted_timeout, 1);
  EXPECT_EQ(mdbs.metrics().global_committed, 0);
  const db::RowEntry* entry = mdbs.storage(1)->GetTable(table)->Get(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(std::get<int64_t>(*entry->row->Get("v")), 0);
}

// --- full workload on an unreliable network ----------------------------------

// Acceptance criterion of the fault-injection work: a 200-transaction
// seeded workload on a network losing 10% and duplicating 5% of the
// messages terminates, commits through retransmission, and its committed
// projection stays view-serializable.
TEST(FaultWorkload, LossyDuplicatingNetworkStaysViewSerializable) {
  workload::WorkloadConfig config;
  config.seed = 20260807;
  config.num_sites = 4;
  config.global_clients = 8;
  config.target_global_txns = 200;
  config.net_loss_prob = 0.10;
  config.net_dup_prob = 0.05;
  config.net_reorder_prob = 0.05;
  config.record_history = true;
  const workload::RunResult result = workload::Driver::Run(config);

  EXPECT_EQ(result.metrics.global_committed + result.metrics.global_aborted,
            200);
  EXPECT_GT(result.metrics.global_committed, 0);
  EXPECT_GT(result.metrics.retransmits, 0);
  EXPECT_GT(result.metrics.dup_msgs_absorbed, 0);
  EXPECT_GT(result.msgs_dropped, 0);
  EXPECT_GT(result.msgs_duplicated, 0);
  ASSERT_TRUE(result.history_checked);
  EXPECT_TRUE(result.commit_graph_acyclic);
  EXPECT_TRUE(result.replay_consistent) << result.replay_error;
  EXPECT_NE(result.verdict, history::Verdict::kNotSerializable)
      << result.verdict_detail;
}

// --- coordinator-site crashes ------------------------------------------------

// The classic 2PC blocking window, made measurable: a participant prepared
// when the coordinating site goes down can neither commit nor abort — it
// keeps probing with INQUIRY — until the coordinator comes back and its
// durable decision log resolves the transaction.
TEST(CoordinatorCrashFault, PreparedParticipantBlocksUntilRecovery) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  config.agent.decision_inquiry_timeout = 50 * sim::kMillisecond;
  core::Mdbs mdbs(config, &loop);
  const db::TableId table = *mdbs.CreateTableEverywhere("t");
  ASSERT_TRUE(
      mdbs.LoadRow(1, table, 1, db::Row{{"v", db::Value(int64_t{0})}}).ok());
  loop.set_max_events(10'000'000);

  // Lose the COMMIT, then take the whole coordinating site down until an
  // explicit RecoverSite.
  mdbs.agent(1)->add_prepared_hook([&](const TxnId&, LtmTxnHandle) {
    mdbs.network().SetLinkLoss(0, 1, 1.0);
  });
  loop.ScheduleAt(10 * sim::kMillisecond, [&]() {
    mdbs.CrashSite(0, /*downtime=*/-1);
    mdbs.network().ClearLinkLoss(0, 1);
  });

  core::GlobalTxnSpec spec;
  spec.steps.push_back({1, db::MakeAddKey(table, 1, "v", int64_t{7}), {}});
  const TxnId gtid = mdbs.Submit(spec, nullptr, /*coordinator_site=*/0);

  loop.RunUntil(300 * sim::kMillisecond);
  // Mid-window: prepared, undecided, probing.
  EXPECT_FALSE(mdbs.agent(1)->log().HasCommit(gtid));
  EXPECT_FALSE(mdbs.agent(1)->log().HasAbort(gtid));
  const int64_t probes_mid = mdbs.metrics().inquiries_sent;
  EXPECT_GE(probes_mid, 1);

  loop.RunUntil(800 * sim::kMillisecond);
  // Still blocked; the probe count keeps growing (capped backoff, not
  // give-up).
  EXPECT_FALSE(mdbs.agent(1)->log().HasCommit(gtid));
  EXPECT_FALSE(mdbs.agent(1)->log().HasAbort(gtid));
  EXPECT_GT(mdbs.metrics().inquiries_sent, probes_mid);

  mdbs.RecoverSite(0);
  loop.Run();
  // The logged decision resolved the window: the participant committed.
  EXPECT_TRUE(mdbs.agent(1)->log().HasComplete(gtid));
  EXPECT_EQ(mdbs.metrics().coordinator_redelivered_decisions, 1);
  const db::RowEntry* entry = mdbs.storage(1)->GetTable(table)->Get(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(std::get<int64_t>(*entry->row->Get("v")), 7);
}

// The inquiry retransmission backoff must stop doubling at
// inquiry_retry_max: once capped, the probe rate towards a dead coordinator
// is constant, not vanishing.
TEST(CoordinatorCrashFault, InquiryBackoffCapsAtConfiguredMax) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  config.agent.decision_inquiry_timeout = 20 * sim::kMillisecond;
  config.agent.inquiry_retry_initial = 10 * sim::kMillisecond;
  config.agent.inquiry_retry_max = 40 * sim::kMillisecond;
  core::Mdbs mdbs(config, &loop);
  const db::TableId table = *mdbs.CreateTableEverywhere("t");
  ASSERT_TRUE(
      mdbs.LoadRow(1, table, 1, db::Row{{"v", db::Value(int64_t{0})}}).ok());
  loop.set_max_events(10'000'000);

  // Lose the COMMIT, then take the coordinating site down for good: the
  // prepared participant is left probing forever.
  mdbs.agent(1)->add_prepared_hook([&](const TxnId&, LtmTxnHandle) {
    mdbs.network().SetLinkLoss(0, 1, 1.0);
  });
  loop.ScheduleAt(10 * sim::kMillisecond, [&]() {
    mdbs.CrashSite(0, /*downtime=*/-1);
    mdbs.network().ClearLinkLoss(0, 1);
  });

  core::GlobalTxnSpec spec;
  spec.steps.push_back({1, db::MakeAddKey(table, 1, "v", int64_t{7}), {}});
  mdbs.Submit(spec, nullptr, /*coordinator_site=*/0);

  loop.RunUntil(200 * sim::kMillisecond);
  const int64_t before = mdbs.metrics().inquiries_sent;
  EXPECT_GE(before, 4);  // the 10/20/40 ramp is already over
  loop.RunUntil(1200 * sim::kMillisecond);
  const int64_t probes = mdbs.metrics().inquiries_sent - before;
  // A fully capped backoff sends one probe per 40ms: ~25 in the 1000ms
  // window. Uncapped doubling would collapse to a handful; faster-than-cap
  // probing would blow far past it.
  EXPECT_GE(probes, 20);
  EXPECT_LE(probes, 27);
}

// orphan_abort_timeout interaction with the coordinator-crash machinery: an
// *active* subtransaction abandoned by its coordinator is unilaterally
// aborted (its locks released), while a *prepared* one must keep blocking
// and probing — the orphan timer is disarmed at the vote.
TEST(CoordinatorCrashFault, OrphanTimeoutAbandonsActiveButNeverPreparedTxns) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  config.agent.orphan_abort_timeout = 50 * sim::kMillisecond;
  config.agent.decision_inquiry_timeout = 30 * sim::kMillisecond;
  core::Mdbs mdbs(config, &loop);
  const db::TableId table = *mdbs.CreateTableEverywhere("t");
  for (int64_t k = 1; k <= 2; ++k) {
    ASSERT_TRUE(
        mdbs.LoadRow(1, table, k, db::Row{{"v", db::Value(int64_t{0})}})
            .ok());
  }
  loop.set_max_events(10'000'000);

  // Transaction A: the coordinator dies *before* PREPARE fan-out (hooked in
  // before_prepare), leaving an active subtransaction holding locks at
  // site 1.
  core::CoordinatorHooks hooks;
  hooks.before_prepare = [&](const TxnId&, const std::vector<SiteId>&,
                             std::function<void(const Status&)>) {
    loop.ScheduleAfter(0, [&]() { mdbs.CrashSite(0, /*downtime=*/-1); });
    // `done` is never called: the crash wipes the transaction.
  };
  mdbs.coordinator(0)->set_hooks(hooks);

  core::GlobalTxnSpec spec_a;
  spec_a.steps.push_back({1, db::MakeAddKey(table, 1, "v", int64_t{1}), {}});
  const TxnId a = mdbs.Submit(spec_a, nullptr, /*coordinator_site=*/0);

  loop.RunUntil(30 * sim::kMillisecond);
  // Still active and holding its lock: the orphan timeout has not expired.
  EXPECT_TRUE(mdbs.ltm(1)->IsActive(mdbs.agent(1)->HandleOf(a)));

  loop.RunUntil(200 * sim::kMillisecond);
  // Orphan timer fired: the subtransaction was unilaterally aborted and its
  // lock is free again — a local transaction on the same row succeeds.
  EXPECT_FALSE(mdbs.ltm(1)->IsActive(mdbs.agent(1)->HandleOf(a)));
  Status local = Status::Internal("callback never ran");
  mdbs.SubmitLocal(
      core::LocalTxnSpec{1, {db::MakeAddKey(table, 1, "v", int64_t{5})}},
      [&](const core::LocalTxnResult& r) { local = r.status; });
  loop.RunUntil(300 * sim::kMillisecond);
  EXPECT_TRUE(local.ok()) << local.ToString();

  // Transaction B (fresh coordinator at site 1, participant semantics via
  // its own site): prepared, then its coordinator's COMMIT is lost and the
  // coordinator site taken down. Despite orphan_abort_timeout being set,
  // the prepared subtransaction is never abandoned — it keeps probing.
  mdbs.RecoverSite(0);
  mdbs.coordinator(0)->set_hooks({});  // this time PREPARE goes out
  mdbs.agent(1)->add_prepared_hook([&](const TxnId&, LtmTxnHandle) {
    mdbs.network().SetLinkLoss(0, 1, 1.0);
  });
  loop.ScheduleAfter(10 * sim::kMillisecond, [&]() {
    mdbs.CrashSite(0, /*downtime=*/-1);
    mdbs.network().ClearLinkLoss(0, 1);
  });
  core::GlobalTxnSpec spec_b;
  spec_b.steps.push_back({1, db::MakeAddKey(table, 2, "v", int64_t{1}), {}});
  const TxnId b = mdbs.Submit(spec_b, nullptr, /*coordinator_site=*/0);

  const int64_t probes_before = mdbs.metrics().inquiries_sent;
  loop.RunUntil(loop.Now() + 500 * sim::kMillisecond);
  EXPECT_FALSE(mdbs.agent(1)->log().HasCommit(b));
  EXPECT_FALSE(mdbs.agent(1)->log().HasAbort(b));
  EXPECT_GT(mdbs.metrics().inquiries_sent, probes_before);
}

TEST(CoordinatorCrashFault, CrashingADownSiteIsADeterministicNoOp) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  core::Mdbs mdbs(config, &loop);

  mdbs.CrashSite(0, /*downtime=*/-1);
  EXPECT_FALSE(mdbs.SiteUp(0));
  EXPECT_EQ(mdbs.metrics().coordinator_crashes, 1);

  // Crashing an already-down site does nothing — no double collective
  // abort, no duplicate recovery schedule.
  mdbs.CrashSite(0);
  mdbs.CrashSite(0, 50 * sim::kMillisecond);
  EXPECT_FALSE(mdbs.SiteUp(0));
  EXPECT_EQ(mdbs.metrics().coordinator_crashes, 1);
  loop.Run();
  EXPECT_FALSE(mdbs.SiteUp(0));  // the duplicate's downtime never applied

  mdbs.RecoverSite(0);
  EXPECT_TRUE(mdbs.SiteUp(0));
  mdbs.RecoverSite(0);  // recovering an up site is equally a no-op
  EXPECT_TRUE(mdbs.SiteUp(0));

  // A fresh crash after recovery counts again.
  mdbs.CrashSite(0, 50 * sim::kMillisecond);
  EXPECT_EQ(mdbs.metrics().coordinator_crashes, 2);
  loop.Run();
  EXPECT_TRUE(mdbs.SiteUp(0));
}

TEST(CoordinatorCrashFault, DuplicateInquiriesAreAnsweredIdempotently) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 1;
  core::Mdbs mdbs(config, &loop);
  loop.set_max_events(1'000'000);

  // Two copies of the same inquiry about a transaction the coordinator
  // never knew: each gets the same presumed-abort answer and the agent
  // absorbs both without wedging.
  const TxnId g = TxnId::MakeGlobal(0, 424242);
  mdbs.network().Send(0, 0, core::Message{core::InquiryMsg{g}});
  mdbs.network().Send(0, 0, core::Message{core::InquiryMsg{g}});
  loop.Run();
  EXPECT_EQ(mdbs.metrics().inquiries_answered_presumed_abort, 2);
  EXPECT_FALSE(mdbs.agent(0)->log().HasCommit(g));
}

// Loss and crashes combined: a lossy network plus timed and
// protocol-triggered site crashes from a declarative fault plan. Every
// surviving history must still be atomic and view-serializable.
TEST(FaultWorkload, LossPlusCrashesStaysAtomicAndSerializable) {
  workload::WorkloadConfig config;
  config.seed = 20260807;
  config.num_sites = 3;
  config.global_clients = 4;
  config.target_global_txns = 120;
  config.net_loss_prob = 0.05;
  config.record_history = true;
  config.drain_grace = 2 * sim::kSecond;
  config.orphan_abort_timeout = 800 * sim::kMillisecond;

  fault::FaultEvent crash1;
  crash1.kind = fault::FaultKind::kCrashSite;
  crash1.at = 30 * sim::kMillisecond;
  crash1.site = 1;
  crash1.duration = 400 * sim::kMillisecond;
  fault::FaultEvent crash2;  // the lost-decision window, on purpose
  crash2.kind = fault::FaultKind::kCrashSite;
  crash2.trigger = fault::TriggerKind::kOnPrepared;
  crash2.watch_site = 2;
  crash2.nth = 3;
  crash2.site = 2;
  crash2.duration = 300 * sim::kMillisecond;
  fault::FaultEvent burst;
  burst.kind = fault::FaultKind::kLossBurst;
  burst.at = 100 * sim::kMillisecond;
  burst.site = 0;
  burst.peer = 1;
  burst.duration = 200 * sim::kMillisecond;
  burst.loss_prob = 0.5;
  config.fault_plan.events = {crash1, crash2, burst};

  const workload::RunResult result = workload::Driver::Run(config);

  EXPECT_EQ(result.metrics.global_committed + result.metrics.global_aborted,
            120);
  EXPECT_GT(result.metrics.global_committed, 0);
  EXPECT_GE(result.metrics.coordinator_crashes, 2);
  ASSERT_TRUE(result.history_checked);
  EXPECT_TRUE(result.atomicity_ok) << result.atomicity_error;
  EXPECT_TRUE(result.commit_graph_acyclic);
  EXPECT_NE(result.verdict, history::Verdict::kNotSerializable)
      << result.verdict_detail;
}

}  // namespace
}  // namespace hermes
