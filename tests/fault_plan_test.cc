// Fault-plan tests: JSONL round-trip, strict parsing, seeded chaos
// generation, and the injector wiring a plan into a live Mdbs.

#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "core/mdbs.h"
#include "fault/injector.h"

namespace hermes::fault {
namespace {

FaultPlan SamplePlan() {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrashSite;
  crash.at = 30 * sim::kMillisecond;
  crash.site = 1;
  crash.duration = 400 * sim::kMillisecond;
  plan.events.push_back(crash);

  FaultEvent triggered;
  triggered.kind = FaultKind::kCrashSite;
  triggered.trigger = TriggerKind::kOnPrepared;
  triggered.watch_site = 2;
  triggered.nth = 3;
  triggered.site = 2;
  triggered.duration = -1;
  plan.events.push_back(triggered);

  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.at = 100 * sim::kMillisecond;
  part.site = 0;
  part.peer = 1;
  part.duration = 200 * sim::kMillisecond;
  plan.events.push_back(part);

  FaultEvent burst;
  burst.kind = FaultKind::kLossBurst;
  burst.at = 150 * sim::kMillisecond;
  burst.site = 1;
  burst.peer = 2;
  burst.duration = 50 * sim::kMillisecond;
  burst.loss_prob = 0.25;  // permille-exact so the round trip is identical
  plan.events.push_back(burst);

  FaultEvent recover;
  recover.kind = FaultKind::kRecoverSite;
  recover.at = 900 * sim::kMillisecond;
  recover.site = 2;
  plan.events.push_back(recover);
  return plan;
}

TEST(FaultPlanJson, RoundTripsThroughJsonl) {
  const FaultPlan plan = SamplePlan();
  const std::string jsonl = plan.ToJsonl();
  const auto parsed = ParseFaultPlan(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, plan);
  // Serialization is a fixed point.
  EXPECT_EQ(parsed->ToJsonl(), jsonl);
}

TEST(FaultPlanJson, BlankLinesAreSkipped) {
  const FaultPlan plan = SamplePlan();
  const auto parsed = ParseFaultPlan("\n" + plan.ToJsonl() + "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlanJson, RejectsUnknownKeysAndGarbage) {
  EXPECT_FALSE(
      ParseFaultPlan(R"({"kind":"crash_site","trigger":"at_time","at":1,"frobnicate":2})")
          .ok());
  EXPECT_FALSE(ParseFaultPlan(R"({"kind":"meteor_strike","trigger":"at_time"})")
                   .ok());
  EXPECT_FALSE(ParseFaultPlan(R"({"kind":"crash_site","trigger":"at_dawn"})")
                   .ok());
  EXPECT_FALSE(ParseFaultPlan("not json at all").ok());
  EXPECT_FALSE(
      ParseFaultPlan(R"({"kind":"crash_site","trigger":"at_time","at":1} junk)")
          .ok());
}

TEST(ChaosGenerator, SameSeedSamePlan) {
  ChaosOptions opts;
  opts.num_sites = 4;
  const FaultPlan a = GenerateChaosPlan(42, opts);
  const FaultPlan b = GenerateChaosPlan(42, opts);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.events.size(),
            static_cast<size_t>(opts.crashes + opts.partitions +
                                opts.loss_bursts));

  // Different seeds diverge (over a handful of seeds at least one plan
  // must differ — the draw space is far larger than 5 plans).
  bool any_different = false;
  for (uint64_t seed = 43; seed < 48; ++seed) {
    if (!(GenerateChaosPlan(seed, opts) == a)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(ChaosGenerator, PlansAreWellFormedAcrossSeeds) {
  ChaosOptions opts;
  opts.num_sites = 3;
  opts.crashes = 4;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const FaultPlan plan = GenerateChaosPlan(seed, opts);
    for (const FaultEvent& ev : plan.events) {
      EXPECT_GE(ev.site, 0);
      EXPECT_LT(ev.site, opts.num_sites);
      if (ev.kind == FaultKind::kPartition ||
          ev.kind == FaultKind::kLossBurst) {
        ASSERT_NE(ev.peer, kInvalidSite);
        EXPECT_NE(ev.peer, ev.site);
        EXPECT_LT(ev.peer, opts.num_sites);
      }
      if (ev.trigger == TriggerKind::kAtTime) {
        EXPECT_GE(ev.at, 0);
        EXPECT_LT(ev.at, opts.horizon);
      } else {
        EXPECT_EQ(ev.watch_site, ev.site);
        EXPECT_GE(ev.nth, 1);
      }
      if (ev.kind == FaultKind::kCrashSite) {
        EXPECT_GE(ev.duration, opts.min_downtime);
        EXPECT_LE(ev.duration, opts.max_downtime);
      }
      if (ev.kind == FaultKind::kLossBurst) {
        EXPECT_GE(ev.loss_prob, 0.3);
        EXPECT_LE(ev.loss_prob, 1.0);
      }
    }
    // Round-trip safety for generated plans: parse(ToJsonl) re-serializes
    // byte-identically (loss is rounded to permille exactly once).
    const auto parsed = ParseFaultPlan(plan.ToJsonl());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->ToJsonl(), plan.ToJsonl());
  }
}

TEST(FaultPlanJson, ReconfigKindsRoundTrip) {
  FaultPlan plan;
  FaultEvent add;
  add.kind = FaultKind::kAddSite;
  add.at = 50 * sim::kMillisecond;
  plan.events.push_back(add);
  FaultEvent remove;
  remove.kind = FaultKind::kRemoveSite;
  remove.at = 100 * sim::kMillisecond;
  remove.site = 2;
  plan.events.push_back(remove);
  FaultEvent replace;
  replace.kind = FaultKind::kReplaceSite;
  replace.at = 150 * sim::kMillisecond;
  replace.site = 1;
  plan.events.push_back(replace);

  const std::string jsonl = plan.ToJsonl();
  EXPECT_NE(jsonl.find("\"add_site\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"remove_site\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"replace_site\""), std::string::npos);
  const auto parsed = ParseFaultPlan(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, plan);
  EXPECT_EQ(parsed->ToJsonl(), jsonl);
}

TEST(ChaosGenerator, ReconfigEventsAreDeterministicAndInRange) {
  ChaosOptions opts;
  opts.num_sites = 4;
  opts.reconfigs = 3;
  const FaultPlan a = GenerateChaosPlan(7, opts);
  EXPECT_EQ(a, GenerateChaosPlan(7, opts));
  int reconfig_events = 0;
  for (const FaultEvent& ev : a.events) {
    if (ev.kind != FaultKind::kAddSite &&
        ev.kind != FaultKind::kRemoveSite &&
        ev.kind != FaultKind::kReplaceSite) {
      continue;
    }
    ++reconfig_events;
    EXPECT_EQ(ev.trigger, TriggerKind::kAtTime);
    if (ev.kind != FaultKind::kAddSite) {
      // Targets spare the scripted-coordinator site 0 by default.
      EXPECT_GE(ev.site, opts.reconfig_min_site);
      EXPECT_LT(ev.site, opts.num_sites);
    }
  }
  EXPECT_EQ(reconfig_events, opts.reconfigs);
  const auto parsed = ParseFaultPlan(a.ToJsonl());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToJsonl(), a.ToJsonl());
}

TEST(ChaosGenerator, ReconfigDrawsDoNotDisturbExistingEvents) {
  // The membership draws are appended after every legacy draw, so turning
  // them on must reproduce the exact same crash/partition/burst events.
  ChaosOptions base;
  base.num_sites = 4;
  ChaosOptions churny = base;
  churny.reconfigs = 2;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const FaultPlan without = GenerateChaosPlan(seed, base);
    FaultPlan with = GenerateChaosPlan(seed, churny);
    std::vector<FaultEvent> legacy;
    for (const FaultEvent& ev : with.events) {
      if (ev.kind == FaultKind::kAddSite ||
          ev.kind == FaultKind::kRemoveSite ||
          ev.kind == FaultKind::kReplaceSite) {
        continue;
      }
      legacy.push_back(ev);
    }
    ASSERT_EQ(legacy.size(), without.events.size());
    for (const FaultEvent& ev : without.events) {
      EXPECT_NE(std::find(legacy.begin(), legacy.end(), ev), legacy.end());
    }
  }
}

TEST(FaultInjector, ReconfigEventDrivesALiveReconfiguration) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  config.num_shards = 8;
  config.max_sites = 3;
  core::Mdbs mdbs(config, &loop);

  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kAddSite;
  ev.at = 10 * sim::kMillisecond;
  plan.events.push_back(ev);
  InstallFaultPlan(plan, &mdbs);
  loop.Run();

  EXPECT_EQ(mdbs.num_sites(), 3);
  EXPECT_EQ(mdbs.metrics().reconfig_completed, 1);
  EXPECT_FALSE(mdbs.directory()->Current().ShardsOf(2).empty());
}

TEST(FaultInjector, ReconfigEventIsBestEffortWithoutSharding) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;  // unsharded: the event must be silently dropped
  core::Mdbs mdbs(config, &loop);

  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kRemoveSite;
  ev.at = 5 * sim::kMillisecond;
  ev.site = 1;
  plan.events.push_back(ev);
  InstallFaultPlan(plan, &mdbs);
  loop.Run();

  EXPECT_EQ(mdbs.num_sites(), 2);
  EXPECT_FALSE(mdbs.SiteRemoved(1));
  EXPECT_EQ(mdbs.metrics().reconfig_started, 0);
}

TEST(FaultInjector, TimedCrashAndRecoveryFire) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  core::Mdbs mdbs(config, &loop);

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrashSite;
  crash.at = 10 * sim::kMillisecond;
  crash.site = 1;
  crash.duration = -1;  // down until the explicit recover below
  plan.events.push_back(crash);
  FaultEvent recover;
  recover.kind = FaultKind::kRecoverSite;
  recover.at = 40 * sim::kMillisecond;
  recover.site = 1;
  plan.events.push_back(recover);
  InstallFaultPlan(plan, &mdbs);

  loop.RunUntil(20 * sim::kMillisecond);
  EXPECT_FALSE(mdbs.SiteUp(1));
  EXPECT_TRUE(mdbs.SiteUp(0));
  loop.Run();
  EXPECT_TRUE(mdbs.SiteUp(1));
  EXPECT_EQ(mdbs.metrics().coordinator_crashes, 1);
}

TEST(FaultInjector, OnPreparedTriggerCrashesAfterNthPrepare) {
  sim::EventLoop loop;
  core::MdbsConfig config;
  config.num_sites = 2;
  core::Mdbs mdbs(config, &loop);
  const db::TableId table = *mdbs.CreateTableEverywhere("t");
  for (int64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(
        mdbs.LoadRow(1, table, k, db::Row{{"v", db::Value(int64_t{0})}})
            .ok());
  }
  loop.set_max_events(10'000'000);

  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kCrashSite;
  ev.trigger = TriggerKind::kOnPrepared;
  ev.watch_site = 1;
  ev.nth = 2;
  ev.site = 1;
  ev.duration = 20 * sim::kMillisecond;
  plan.events.push_back(ev);
  InstallFaultPlan(plan, &mdbs);

  // Two sequential transactions against site 1, coordinated from site 0:
  // the first prepares and commits untouched; the second's prepare pulls
  // the trigger.
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    core::GlobalTxnSpec spec;
    spec.steps.push_back(
        {1, db::MakeAddKey(table, i, "v", int64_t{1}), {}});
    loop.ScheduleAt(i * 20 * sim::kMillisecond, [&mdbs, &done, spec]() {
      mdbs.Submit(spec, [&done](const core::GlobalTxnResult&) { ++done; },
                  /*coordinator_site=*/0);
    });
  }
  loop.Run();

  EXPECT_EQ(done, 2);
  EXPECT_EQ(mdbs.metrics().coordinator_crashes, 1);
  EXPECT_TRUE(mdbs.SiteUp(1));  // downtime elapsed inside the run
  // The first transaction committed before the trigger fired.
  EXPECT_GE(mdbs.metrics().global_committed, 1);
}

}  // namespace
}  // namespace hermes::fault
