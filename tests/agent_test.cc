// Agent-level tests of the Certifier algorithms (paper Appendix A-C),
// driving one 2PC agent with hand-crafted protocol messages, plus unit
// tests of the certifier's data structures (alive interval table, agent
// log, serial numbers).

#include "core/agent.h"

#include <gtest/gtest.h>

#include "core/mdbs.h"
#include "history/op.h"

namespace hermes {
namespace {

using core::AliveInterval;
using core::AliveIntervalTable;
using core::CertPolicy;
using core::Message;
using core::SerialNumber;

// --- alive interval table ------------------------------------------------------

TEST(AliveIntervalTable, IntersectionSemantics) {
  const AliveInterval i0_10{0, 10};
  const AliveInterval i5_7{5, 7};
  const AliveInterval i10_20{10, 20};
  const AliveInterval i11_20{11, 20};
  EXPECT_TRUE(i0_10.Intersects(i10_20));
  EXPECT_TRUE(i0_10.Intersects(i5_7));
  EXPECT_FALSE(i0_10.Intersects(i11_20));
  EXPECT_FALSE(i11_20.Intersects(i0_10));
}

TEST(AliveIntervalTable, CertifiableAgainstAllRequiresEveryIntersection) {
  AliveIntervalTable table;
  const TxnId g1 = TxnId::MakeGlobal(0, 1);
  const TxnId g2 = TxnId::MakeGlobal(0, 2);
  table.Insert(g1, {0, 10}, SerialNumber{1, 0, 0});
  table.Insert(g2, {5, 15}, SerialNumber{2, 0, 0});
  EXPECT_TRUE(table.CertifiableAgainstAll({7, 20}));   // hits both
  EXPECT_FALSE(table.CertifiableAgainstAll({12, 20})); // misses g1
  EXPECT_FALSE(table.CertifiableAgainstAll({20, 30})); // misses both
  // Empty table certifies anything.
  table.Remove(g1);
  table.Remove(g2);
  EXPECT_TRUE(table.CertifiableAgainstAll({100, 100}));
}

TEST(AliveIntervalTable, ExtendAndRestart) {
  AliveIntervalTable table;
  const TxnId g = TxnId::MakeGlobal(0, 1);
  table.Insert(g, {0, 0}, SerialNumber{1, 0, 0});
  table.ExtendEnd(g, 50);
  EXPECT_TRUE(table.CertifiableAgainstAll({40, 60}));
  table.Restart(g, 100);
  EXPECT_FALSE(table.CertifiableAgainstAll({40, 60}));
  EXPECT_TRUE(table.CertifiableAgainstAll({100, 101}));
}

TEST(AliveIntervalTable, SmallestSerialNumber) {
  AliveIntervalTable table;
  const TxnId g1 = TxnId::MakeGlobal(0, 1);
  const TxnId g2 = TxnId::MakeGlobal(0, 2);
  table.Insert(g1, {0, 10}, SerialNumber{5, 0, 0});
  table.Insert(g2, {0, 10}, SerialNumber{9, 0, 0});
  EXPECT_TRUE(table.SmallestSerialNumber(g1));
  EXPECT_FALSE(table.SmallestSerialNumber(g2));
}

TEST(AliveIntervalTable, MinSnCacheSurvivesRemovalsAndOverwrites) {
  // The smallest-SN entry is cached; removing or overwriting it must
  // lazily fall back to the next-smallest, and an insert below the cached
  // minimum must take over in O(1).
  AliveIntervalTable table;
  const TxnId g1 = TxnId::MakeGlobal(0, 1);
  const TxnId g2 = TxnId::MakeGlobal(0, 2);
  const TxnId g3 = TxnId::MakeGlobal(0, 3);
  EXPECT_FALSE(table.MinSnTxn().valid());
  table.Insert(g2, {0, 10}, SerialNumber{7, 0, 0});
  table.Insert(g3, {0, 10}, SerialNumber{9, 0, 0});
  EXPECT_EQ(table.MinSnTxn(), g2);
  table.Insert(g1, {0, 10}, SerialNumber{3, 0, 0});  // new minimum
  EXPECT_EQ(table.MinSnTxn(), g1);
  table.Remove(g1);  // cached min removed -> recompute
  EXPECT_EQ(table.MinSnTxn(), g2);
  EXPECT_TRUE(table.SmallestSerialNumber(g2));
  EXPECT_FALSE(table.SmallestSerialNumber(g3));
  // Overwriting the cached min with a larger SN must dethrone it.
  table.Insert(g2, {0, 10}, SerialNumber{20, 0, 0});
  EXPECT_EQ(table.MinSnTxn(), g3);
  table.Remove(g3);
  EXPECT_EQ(table.MinSnTxn(), g2);
  table.Remove(g2);
  EXPECT_FALSE(table.MinSnTxn().valid());
}

TEST(AliveIntervalTable, MinSnTieBreaksDeterministically) {
  // Equal serial numbers: the smallest TxnId wins, independent of
  // insertion or hash order (keeps traces deterministic).
  AliveIntervalTable table;
  const TxnId a = TxnId::MakeGlobal(0, 1);
  const TxnId b = TxnId::MakeGlobal(1, 1);
  table.Insert(b, {0, 10}, SerialNumber{5, 0, 0});
  table.Insert(a, {0, 10}, SerialNumber{5, 0, 0});
  table.Remove(b);
  table.Insert(b, {0, 10}, SerialNumber{5, 0, 0});
  EXPECT_EQ(table.MinSnTxn(), a);
  // Equal-SN entries do not block each other's commit certification.
  EXPECT_TRUE(table.SmallestSerialNumber(a));
  EXPECT_TRUE(table.SmallestSerialNumber(b));
}

// --- serial numbers --------------------------------------------------------------

TEST(SerialNumber, TotalOrderAndGenerator) {
  EXPECT_LT((SerialNumber{1, 0, 0}), (SerialNumber{2, 0, 0}));
  EXPECT_LT((SerialNumber{1, 0, 0}), (SerialNumber{1, 1, 0}));
  EXPECT_LT((SerialNumber{1, 1, 0}), (SerialNumber{1, 1, 1}));
  EXPECT_FALSE(SerialNumber{}.valid());

  sim::EventLoop loop;
  sim::SiteClock clock(&loop, /*offset=*/1000);
  core::SerialNumberGenerator gen(3, &clock);
  const SerialNumber a = gen.Next();
  const SerialNumber b = gen.Next();
  EXPECT_LT(a, b);
  EXPECT_EQ(a.coordinator, 3);
  EXPECT_EQ(a.clock, 1000);
}

TEST(SerialNumber, DriftingClockStillMonotonicPerSite) {
  sim::EventLoop loop;
  sim::SiteClock clock(&loop, 0, /*drift_ppm=*/100000);
  core::SerialNumberGenerator gen(0, &clock);
  SerialNumber prev = gen.Next();
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAfter(1, []() {});
    loop.Step();
    const SerialNumber next = gen.Next();
    EXPECT_LT(prev, next);
    prev = next;
  }
}

// --- agent log --------------------------------------------------------------------

TEST(AgentLog, CommandsReplayInOrder) {
  core::AgentLog log;
  const TxnId g = TxnId::MakeGlobal(0, 7);
  log.Append({.kind = core::LogRecordKind::kBegin, .gtid = g});
  log.Append({.kind = core::LogRecordKind::kCommand,
              .gtid = g,
              .command = db::MakeSelectKey(1, 10)});
  log.Append({.kind = core::LogRecordKind::kCommand,
              .gtid = g,
              .command = db::MakeDeleteKey(1, 11)});
  const auto commands = log.CommandsOf(g);
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<db::SelectCmd>(commands[0]));
  EXPECT_TRUE(std::holds_alternative<db::DeleteCmd>(commands[1]));
}

TEST(AgentLog, InDoubtTracksPreparedUnresolved) {
  core::AgentLog log;
  const TxnId g1 = TxnId::MakeGlobal(0, 1);
  const TxnId g2 = TxnId::MakeGlobal(0, 2);
  log.ForceAppend({.kind = core::LogRecordKind::kPrepare, .gtid = g1});
  log.ForceAppend({.kind = core::LogRecordKind::kPrepare, .gtid = g2});
  log.ForceAppend({.kind = core::LogRecordKind::kCommit, .gtid = g1});
  log.Append({.kind = core::LogRecordKind::kComplete, .gtid = g1});
  const auto in_doubt = log.InDoubt();
  ASSERT_EQ(in_doubt.size(), 1u);
  EXPECT_EQ(in_doubt[0], g2);
  EXPECT_EQ(log.forced_writes(), 3);
  EXPECT_TRUE(log.HasCommit(g1));
  EXPECT_FALSE(log.HasCommit(g2));
}

// --- certifier protocol behavior ---------------------------------------------------

// Drives the agent at site 0 of a single-site Mdbs with hand-crafted 2PC
// messages from a phantom coordinator. Replies target unknown transactions
// at the real coordinator and are ignored there, so the agent's state is
// observed directly.
class AgentProtocolTest : public ::testing::Test {
 protected:
  void Build(CertPolicy policy) {
    core::MdbsConfig config;
    config.num_sites = 1;
    config.agent.policy = policy;
    config.agent.commit_retry_interval = 2 * sim::kMillisecond;
    // Keep alive checks lazy so injected aborts stay undetected (stale
    // intervals) across a Drain() — the scenarios these tests exercise.
    config.agent.alive_check_interval = 300 * sim::kMillisecond;
    mdbs_ = std::make_unique<core::Mdbs>(config, &loop_);
    table_ = *mdbs_->CreateTable(0, "t");
    for (int64_t k = 0; k < 8; ++k) {
      ASSERT_TRUE(mdbs_->LoadRow(0, table_, k,
                                 db::Row{{"v", db::Value(int64_t{0})}})
                      .ok());
    }
    loop_.set_max_events(1'000'000);
  }

  TxnId Gtid(int64_t n) { return TxnId::MakeGlobal(0, 1000 + n); }

  void Send(const Message& msg) { mdbs_->network().Send(0, 0, msg); }

  // Prepared transactions keep periodic alive-check timers alive, so a full
  // Run() would never return; drain a bounded slice of virtual time instead.
  void Drain() { loop_.RunUntil(loop_.Now() + 50 * sim::kMillisecond); }

  // Runs BEGIN + one update command for `gtid` and waits for completion.
  void RunDml(const TxnId& gtid, int64_t key) {
    Send(Message{core::BeginMsg{gtid}});
    Send(Message{core::DmlRequestMsg{
        gtid, 0, db::MakeAddKey(table_, key, "v", int64_t{1})}});
    Drain();
  }

  // Commit order of two gtids in the recorded history at site 0.
  bool CommittedBefore(const TxnId& a, const TxnId& b) {
    int64_t a_at = -1, b_at = -1;
    for (const auto& op : mdbs_->recorder().ops()) {
      if (op.kind != history::OpKind::kLocalCommit) continue;
      if (op.subtxn.txn == a) a_at = static_cast<int64_t>(op.seq);
      if (op.subtxn.txn == b) b_at = static_cast<int64_t>(op.seq);
    }
    EXPECT_GE(a_at, 0);
    EXPECT_GE(b_at, 0);
    return a_at < b_at;
  }

  sim::EventLoop loop_;
  std::unique_ptr<core::Mdbs> mdbs_;
  db::TableId table_ = -1;
};

TEST_F(AgentProtocolTest, CommitCertificationReordersLocalCommitsBySn) {
  Build(CertPolicy::kFull);
  const TxnId low = Gtid(1), high = Gtid(2);
  // Both transactions execute (on different items) and are alive
  // simultaneously, so both pass prepare certification.
  RunDml(low, 1);
  RunDml(high, 2);
  Send(Message{core::PrepareMsg{low, SerialNumber{100, 0, 0}}});
  Send(Message{core::PrepareMsg{high, SerialNumber{200, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 2u);

  // COMMIT arrives for the *bigger* serial number first: commit
  // certification must defer it until the smaller one commits.
  Send(Message{core::DecisionMsg{high, true}});
  Drain();
  EXPECT_GE(mdbs_->metrics().commit_cert_retries, 1);
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 2u);  // both still there

  Send(Message{core::DecisionMsg{low, true}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 0u);
  EXPECT_TRUE(CommittedBefore(low, high));
  EXPECT_EQ(mdbs_->agent(0)->max_committed_sn(), (SerialNumber{200, 0, 0}));
}

TEST_F(AgentProtocolTest, WithoutCommitCertificationCommitsArriveOutOfOrder) {
  Build(CertPolicy::kPrepareExtended);
  const TxnId low = Gtid(1), high = Gtid(2);
  RunDml(low, 1);
  RunDml(high, 2);
  Send(Message{core::PrepareMsg{low, SerialNumber{100, 0, 0}}});
  Send(Message{core::PrepareMsg{high, SerialNumber{200, 0, 0}}});
  Drain();
  Send(Message{core::DecisionMsg{high, true}});
  Drain();
  Send(Message{core::DecisionMsg{low, true}});
  Drain();
  EXPECT_EQ(mdbs_->metrics().commit_cert_retries, 0);
  EXPECT_TRUE(CommittedBefore(high, low));
}

TEST_F(AgentProtocolTest, ExtensionRefusesPrepareBehindCommittedSn) {
  Build(CertPolicy::kFull);
  const TxnId first = Gtid(1), late = Gtid(2);
  RunDml(first, 1);
  Send(Message{core::PrepareMsg{first, SerialNumber{500, 0, 0}}});
  Send(Message{core::DecisionMsg{first, true}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->max_committed_sn(), (SerialNumber{500, 0, 0}));

  // A PREPARE whose serial number is smaller than an already-committed one
  // arrives late (the paper's section 5.3 overtaking scenario): REFUSE.
  RunDml(late, 2);
  Send(Message{core::PrepareMsg{late, SerialNumber{300, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->metrics().refuse_extension, 1);
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 0u);
  // The local subtransaction was aborted by the refusal.
  EXPECT_FALSE(mdbs_->ltm(0)->IsActive(mdbs_->agent(0)->HandleOf(late)));
}

TEST_F(AgentProtocolTest, PrepareOnlyPolicySkipsExtension) {
  Build(CertPolicy::kPrepareOnly);
  const TxnId first = Gtid(1), late = Gtid(2);
  RunDml(first, 1);
  Send(Message{core::PrepareMsg{first, SerialNumber{500, 0, 0}}});
  Send(Message{core::DecisionMsg{first, true}});
  Drain();

  RunDml(late, 2);
  Send(Message{core::PrepareMsg{late, SerialNumber{300, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->metrics().refuse_extension, 0);
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 1u);
}

TEST_F(AgentProtocolTest, PrepareOfDeadTransactionIsRefused) {
  Build(CertPolicy::kFull);
  const TxnId g = Gtid(1);
  RunDml(g, 1);
  // Unilateral abort while still active, before PREPARE arrives.
  ASSERT_TRUE(
      mdbs_->ltm(0)->InjectUnilateralAbort(mdbs_->agent(0)->HandleOf(g))
          .ok());
  Drain();
  Send(Message{core::PrepareMsg{g, SerialNumber{10, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->metrics().refuse_dead, 1);
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 0u);
}

TEST_F(AgentProtocolTest, RollbackClearsPreparedState) {
  Build(CertPolicy::kFull);
  const TxnId g = Gtid(1);
  RunDml(g, 1);
  Send(Message{core::PrepareMsg{g, SerialNumber{10, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 1u);
  EXPECT_TRUE(mdbs_->ltm(0)->IsBound(ItemId{0, table_, 1}));

  Send(Message{core::DecisionMsg{g, false}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 0u);
  EXPECT_FALSE(mdbs_->ltm(0)->IsBound(ItemId{0, table_, 1}));
  // The update was rolled back.
  const db::RowEntry* row = mdbs_->storage(0)->GetTable(table_)->Get(1);
  EXPECT_EQ(std::get<int64_t>(*row->row->Get("v")), 0);
}

TEST_F(AgentProtocolTest, BasicCertificationRefusesNonOverlappingIntervals) {
  Build(CertPolicy::kFull);
  const TxnId t1 = Gtid(1), t2 = Gtid(2);
  RunDml(t1, 1);
  Send(Message{core::PrepareMsg{t1, SerialNumber{10, 0, 0}}});
  Drain();
  // Kill T1's prepared subtransaction; its alive interval goes stale.
  ASSERT_TRUE(
      mdbs_->ltm(0)->InjectUnilateralAbort(mdbs_->agent(0)->HandleOf(t1))
          .ok());
  Drain();
  // T2 becomes alive only after T1's death: intervals cannot intersect.
  RunDml(t2, 2);
  Send(Message{core::PrepareMsg{t2, SerialNumber{20, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->metrics().refuse_interval, 1);
}

}  // namespace
}  // namespace hermes
