// Unit tests of the simulated network: latency, FIFO delivery under
// jitter, local fast path, counters.

#include "net/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace hermes::net {
namespace {

TEST(Network, DeliversAfterBaseLatency) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 5 * sim::kMillisecond;
  Network net(config, &loop);
  std::vector<std::pair<sim::Time, int>> got;
  net.RegisterEndpoint(1, [&](const Envelope& env) {
    got.emplace_back(loop.Now(), std::any_cast<int>(env.payload));
  });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  net.Send(0, 1, 42);
  loop.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 5 * sim::kMillisecond);
  EXPECT_EQ(got[0].second, 42);
  EXPECT_EQ(net.messages_sent(), 1);
}

TEST(Network, LocalDeliveryIsFast) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 5 * sim::kMillisecond;
  config.local_latency = 10;
  Network net(config, &loop);
  sim::Time at = -1;
  net.RegisterEndpoint(0, [&](const Envelope&) { at = loop.Now(); });
  net.Send(0, 0, 1);
  loop.Run();
  EXPECT_EQ(at, 10);
}

TEST(Network, FifoPerPairUnderJitter) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 1 * sim::kMillisecond;
  config.jitter = 5 * sim::kMillisecond;
  config.seed = 99;
  Network net(config, &loop);
  std::vector<int> got;
  net.RegisterEndpoint(1, [&](const Envelope& env) {
    got.push_back(std::any_cast<int>(env.payload));
  });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  for (int i = 0; i < 50; ++i) net.Send(0, 1, i);
  loop.Run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Network, EnvelopeCarriesSenderAndReceiver) {
  sim::EventLoop loop;
  Network net(NetworkConfig{}, &loop);
  SiteId from = kInvalidSite, to = kInvalidSite;
  net.RegisterEndpoint(3, [&](const Envelope& env) {
    from = env.from;
    to = env.to;
  });
  net.RegisterEndpoint(7, [](const Envelope&) {});
  net.Send(7, 3, std::string("hello"));
  loop.Run();
  EXPECT_EQ(from, 7);
  EXPECT_EQ(to, 3);
}

TEST(Network, IndependentPairsDoNotBlockEachOther) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 1 * sim::kMillisecond;
  config.jitter = 0;
  Network net(config, &loop);
  std::vector<std::pair<SiteId, sim::Time>> got;
  for (SiteId s : {1, 2}) {
    net.RegisterEndpoint(s, [&, s](const Envelope&) {
      got.emplace_back(s, loop.Now());
    });
  }
  net.RegisterEndpoint(0, [](const Envelope&) {});
  net.Send(0, 1, 1);
  net.Send(0, 2, 2);
  loop.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, got[1].second);  // same latency, no coupling
}

// --- fault injection ---------------------------------------------------------

TEST(NetworkFaults, UnregisteredDestinationIsDroppedNotFatal) {
  sim::EventLoop loop;
  Network net(NetworkConfig{}, &loop);
  net.RegisterEndpoint(0, [](const Envelope&) {});
  net.Send(0, 99, 1);  // site 99 never started (or crashed)
  loop.Run();
  EXPECT_EQ(net.messages_sent(), 1);
  EXPECT_EQ(net.messages_dropped(), 1);
}

TEST(NetworkFaults, LossDropsRoughlyTheConfiguredFraction) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.loss_prob = 0.5;
  config.seed = 7;
  Network net(config, &loop);
  int got = 0;
  net.RegisterEndpoint(1, [&](const Envelope&) { ++got; });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  const int n = 1000;
  for (int i = 0; i < n; ++i) net.Send(0, 1, i);
  loop.Run();
  EXPECT_EQ(got + net.messages_dropped(), n);
  EXPECT_GT(got, 400);
  EXPECT_LT(got, 600);
}

TEST(NetworkFaults, PerLinkLossOverridesGlobalProbability) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.loss_prob = 1.0;  // everything inter-site is lost ...
  Network net(config, &loop);
  std::map<SiteId, int> got;
  for (SiteId s : {1, 2}) {
    net.RegisterEndpoint(s, [&, s](const Envelope&) { ++got[s]; });
  }
  net.RegisterEndpoint(0, [](const Envelope&) {});
  net.SetLinkLoss(0, 1, 0.0);  // ... except on the pinned-lossless link
  for (int i = 0; i < 20; ++i) {
    net.Send(0, 1, i);
    net.Send(0, 2, i);
  }
  loop.Run();
  EXPECT_EQ(got[1], 20);
  EXPECT_EQ(got[2], 0);
  net.ClearLinkLoss(0, 1);
  net.Send(0, 1, 0);
  loop.Run();
  EXPECT_EQ(got[1], 20);  // back to the global probability
}

TEST(NetworkFaults, DuplicationDeliversASecondCopy) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.dup_prob = 1.0;
  Network net(config, &loop);
  std::vector<int> got;
  net.RegisterEndpoint(1, [&](const Envelope& env) {
    got.push_back(std::any_cast<int>(env.payload));
  });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  for (int i = 0; i < 10; ++i) net.Send(0, 1, i);
  loop.Run();
  EXPECT_EQ(got.size(), 20u);
  EXPECT_EQ(net.messages_duplicated(), 10);
  EXPECT_EQ(net.messages_sent(), 10);  // duplicates are not counted as sends
}

TEST(NetworkFaults, ReorderingBreaksFifoDelivery) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 1 * sim::kMillisecond;
  config.reorder_prob = 0.3;
  config.reorder_window = 10 * sim::kMillisecond;
  config.seed = 11;
  Network net(config, &loop);
  std::vector<int> got;
  net.RegisterEndpoint(1, [&](const Envelope& env) {
    got.push_back(std::any_cast<int>(env.payload));
  });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  const int n = 100;
  for (int i = 0; i < n; ++i) net.Send(0, 1, i);
  loop.Run();
  ASSERT_EQ(got.size(), static_cast<size_t>(n));  // reordered, never lost
  EXPECT_GT(net.messages_reordered(), 0);
  EXPECT_FALSE(std::is_sorted(got.begin(), got.end()));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(NetworkFaults, PartitionDropsBothDirectionsUntilExpiry) {
  sim::EventLoop loop;
  NetworkConfig config;
  Network net(config, &loop);
  int got = 0;
  net.RegisterEndpoint(0, [&](const Envelope&) { ++got; });
  net.RegisterEndpoint(1, [&](const Envelope&) { ++got; });
  net.Partition(0, 1, 10 * sim::kMillisecond);
  EXPECT_TRUE(net.Partitioned(0, 1));
  EXPECT_TRUE(net.Partitioned(1, 0));
  net.Send(0, 1, 1);
  net.Send(1, 0, 2);
  loop.ScheduleAt(15 * sim::kMillisecond, [&] {
    EXPECT_FALSE(net.Partitioned(0, 1));  // the window expired
    net.Send(0, 1, 3);
    net.Send(1, 0, 4);
  });
  loop.Run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.messages_dropped(), 2);
}

TEST(NetworkFaults, LocalDeliveryIsExemptFromFaults) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.loss_prob = 1.0;
  config.dup_prob = 1.0;
  config.reorder_prob = 1.0;
  Network net(config, &loop);
  std::vector<int> got;
  net.RegisterEndpoint(0, [&](const Envelope& env) {
    got.push_back(std::any_cast<int>(env.payload));
  });
  for (int i = 0; i < 10; ++i) net.Send(0, 0, i);
  loop.Run();
  // Exactly once each, in order: a coordinator talking to its co-located
  // agent never goes through the faulty WAN.
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_EQ(net.messages_dropped(), 0);
  EXPECT_EQ(net.messages_duplicated(), 0);
}

}  // namespace
}  // namespace hermes::net
