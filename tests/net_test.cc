// Unit tests of the simulated network: latency, FIFO delivery under
// jitter, local fast path, counters.

#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace hermes::net {
namespace {

TEST(Network, DeliversAfterBaseLatency) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 5 * sim::kMillisecond;
  Network net(config, &loop);
  std::vector<std::pair<sim::Time, int>> got;
  net.RegisterEndpoint(1, [&](const Envelope& env) {
    got.emplace_back(loop.Now(), std::any_cast<int>(env.payload));
  });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  net.Send(0, 1, 42);
  loop.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 5 * sim::kMillisecond);
  EXPECT_EQ(got[0].second, 42);
  EXPECT_EQ(net.messages_sent(), 1);
}

TEST(Network, LocalDeliveryIsFast) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 5 * sim::kMillisecond;
  config.local_latency = 10;
  Network net(config, &loop);
  sim::Time at = -1;
  net.RegisterEndpoint(0, [&](const Envelope&) { at = loop.Now(); });
  net.Send(0, 0, 1);
  loop.Run();
  EXPECT_EQ(at, 10);
}

TEST(Network, FifoPerPairUnderJitter) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 1 * sim::kMillisecond;
  config.jitter = 5 * sim::kMillisecond;
  config.seed = 99;
  Network net(config, &loop);
  std::vector<int> got;
  net.RegisterEndpoint(1, [&](const Envelope& env) {
    got.push_back(std::any_cast<int>(env.payload));
  });
  net.RegisterEndpoint(0, [](const Envelope&) {});
  for (int i = 0; i < 50; ++i) net.Send(0, 1, i);
  loop.Run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Network, EnvelopeCarriesSenderAndReceiver) {
  sim::EventLoop loop;
  Network net(NetworkConfig{}, &loop);
  SiteId from = kInvalidSite, to = kInvalidSite;
  net.RegisterEndpoint(3, [&](const Envelope& env) {
    from = env.from;
    to = env.to;
  });
  net.RegisterEndpoint(7, [](const Envelope&) {});
  net.Send(7, 3, std::string("hello"));
  loop.Run();
  EXPECT_EQ(from, 7);
  EXPECT_EQ(to, 3);
}

TEST(Network, IndependentPairsDoNotBlockEachOther) {
  sim::EventLoop loop;
  NetworkConfig config;
  config.base_latency = 1 * sim::kMillisecond;
  config.jitter = 0;
  Network net(config, &loop);
  std::vector<std::pair<SiteId, sim::Time>> got;
  for (SiteId s : {1, 2}) {
    net.RegisterEndpoint(s, [&, s](const Envelope&) {
      got.emplace_back(s, loop.Now());
    });
  }
  net.RegisterEndpoint(0, [](const Envelope&) {});
  net.Send(0, 1, 1);
  net.Send(0, 2, 2);
  loop.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, got[1].second);  // same latency, no coupling
}

}  // namespace
}  // namespace hermes::net
