// Unit tests of the mini relational layer: values, predicates, commands,
// tables with provenance, storage.

#include <gtest/gtest.h>

#include "db/command.h"
#include "db/predicate.h"
#include "db/storage.h"
#include "db/table.h"
#include "db/value.h"

namespace hermes::db {
namespace {

TEST(Value, CrossTypeComparison) {
  EXPECT_EQ(CompareValues(Value(int64_t{3}), Value(int64_t{3})), 0);
  EXPECT_LT(CompareValues(Value(int64_t{3}), Value(4.5)), 0);
  EXPECT_GT(CompareValues(Value(4.5), Value(int64_t{4})), 0);
  EXPECT_LT(CompareValues(Value{}, Value(int64_t{0})), 0);  // NULL first
  EXPECT_LT(CompareValues(Value(int64_t{1}), Value(std::string("a"))), 0);
  EXPECT_EQ(CompareValues(Value(std::string("a")), Value(std::string("a"))),
            0);
  EXPECT_TRUE(ValueEq(Value(int64_t{2}), Value(2.0)));
}

TEST(Value, Addition) {
  EXPECT_EQ(std::get<int64_t>(*AddValues(Value(int64_t{2}),
                                         Value(int64_t{3}))),
            5);
  EXPECT_DOUBLE_EQ(std::get<double>(*AddValues(Value(int64_t{2}),
                                               Value(1.5))),
                   3.5);
  EXPECT_FALSE(AddValues(Value(std::string("x")), Value(int64_t{1})));
  EXPECT_FALSE(AddValues(Value{}, Value(int64_t{1})));
}

TEST(Value, RowAccessorsAndEquality) {
  Row r{{"a", Value(int64_t{1})}, {"b", Value(std::string("x"))}};
  EXPECT_EQ(std::get<int64_t>(*r.Get("a")), 1);
  EXPECT_EQ(r.Get("missing"), nullptr);
  r.Set("a", Value(int64_t{2}));
  EXPECT_EQ(std::get<int64_t>(*r.Get("a")), 2);
  Row s{{"a", Value(int64_t{2})}, {"b", Value(std::string("x"))}};
  EXPECT_EQ(r, s);
  s.Set("b", Value(std::string("y")));
  EXPECT_FALSE(r == s);
}

TEST(Predicate, KeyConditions) {
  const Predicate eq = Predicate::KeyEquals(5);
  EXPECT_TRUE(eq.Eval(5, Row{}));
  EXPECT_FALSE(eq.Eval(6, Row{}));
  ASSERT_TRUE(eq.ExactKey().has_value());
  EXPECT_EQ(*eq.ExactKey(), 5);

  const Predicate range = Predicate::KeyRange(3, 7);
  EXPECT_TRUE(range.Eval(3, Row{}));
  EXPECT_TRUE(range.Eval(7, Row{}));
  EXPECT_FALSE(range.Eval(8, Row{}));
  EXPECT_FALSE(range.ExactKey().has_value());
}

TEST(Predicate, FieldConditionsAndConjunction) {
  const Row row{{"v", Value(int64_t{10})}, {"name", Value(std::string("a"))}};
  Predicate p = Predicate::Field("v", CmpOp::kGe, Value(int64_t{10}));
  EXPECT_TRUE(p.Eval(0, row));
  p.AndField("name", CmpOp::kEq, Value(std::string("b")));
  EXPECT_FALSE(p.Eval(0, row));
  // Missing fields behave as NULL and fail comparisons.
  const Predicate q = Predicate::Field("absent", CmpOp::kLt,
                                       Value(int64_t{100}));
  EXPECT_FALSE(q.Eval(0, row));
  EXPECT_TRUE(Predicate::True().Eval(0, row));
}

TEST(Command, AccessorsAndToString) {
  const Command sel = MakeSelectKey(2, 9);
  EXPECT_EQ(CommandTable(sel), 2);
  EXPECT_FALSE(CommandWrites(sel));
  const Command upd = MakeAddKey(1, 3, "v", Value(int64_t{5}));
  EXPECT_TRUE(CommandWrites(upd));
  EXPECT_NE(CommandToString(upd).find("UPDATE"), std::string::npos);
  const Command del = MakeDeleteKey(0, 1);
  EXPECT_TRUE(CommandWrites(del));
  const Command ins = MakeInsert(0, 1, Row{});
  EXPECT_TRUE(CommandWrites(ins));
}

TEST(Table, PutGetDeleteRestore) {
  Table t(0, "t");
  const SubTxnId writer{TxnId::MakeLocal(0, 1), 0};
  const VersionTag tag{writer, 1};
  EXPECT_EQ(t.Get(5), nullptr);
  EXPECT_FALSE(t.Put(5, RowEntry{Row{{"v", Value(int64_t{1})}}, tag})
                   .has_value());
  ASSERT_NE(t.Get(5), nullptr);
  EXPECT_TRUE(t.Get(5)->live());
  EXPECT_EQ(t.Get(5)->version, tag);

  // Delete leaves a tombstone with the deleter's provenance.
  const VersionTag del_tag{writer, 2};
  auto before = t.Delete(5, del_tag);
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->live());
  ASSERT_NE(t.Get(5), nullptr);
  EXPECT_FALSE(t.Get(5)->live());
  EXPECT_EQ(t.live_rows(), 0);

  // Restore (undo) brings back the pre-delete state.
  t.Restore(5, std::move(before));
  EXPECT_TRUE(t.Get(5)->live());
  EXPECT_EQ(t.Get(5)->version, tag);

  // Restore with nullopt erases the slot (undo of a fresh insert).
  t.Restore(5, std::nullopt);
  EXPECT_EQ(t.Get(5), nullptr);
}

TEST(Table, MatchSkipsTombstonesAndUsesExactKeyFastPath) {
  Table t(0, "t");
  const VersionTag tag{};
  for (int64_t k = 0; k < 10; ++k) {
    t.Put(k, RowEntry{Row{{"v", Value(k)}}, tag});
  }
  t.Delete(4, tag);
  const auto all = t.Match(Predicate::True());
  EXPECT_EQ(all.size(), 9u);
  EXPECT_EQ(t.Match(Predicate::KeyEquals(4)).size(), 0u);
  EXPECT_EQ(t.Match(Predicate::KeyEquals(5)).size(), 1u);
  const auto big = t.Match(Predicate::Field("v", CmpOp::kGe,
                                            Value(int64_t{7})));
  EXPECT_EQ(big, (std::vector<int64_t>{7, 8, 9}));
  // Key + field conjunction via fast path.
  Predicate p = Predicate::KeyEquals(7);
  p.AndField("v", CmpOp::kLt, Value(int64_t{5}));
  EXPECT_TRUE(t.Match(p).empty());
}

TEST(Storage, CatalogAndLoad) {
  Storage storage(3);
  auto t1 = storage.CreateTable("alpha");
  ASSERT_TRUE(t1.ok());
  auto t2 = storage.CreateTable("beta");
  ASSERT_TRUE(t2.ok());
  EXPECT_NE(*t1, *t2);
  EXPECT_FALSE(storage.CreateTable("alpha").ok());  // duplicate
  EXPECT_EQ(storage.FindTable("beta")->id(), *t2);
  EXPECT_EQ(storage.FindTable("gamma"), nullptr);
  EXPECT_EQ(storage.GetTable(99), nullptr);

  ASSERT_TRUE(storage.LoadRow(*t1, 1, Row{{"v", Value(int64_t{7})}}).ok());
  EXPECT_FALSE(storage.LoadRow(42, 1, Row{}).ok());
  const RowEntry* e = storage.GetTable(*t1)->Get(1);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->version.initial());
  EXPECT_EQ(storage.MakeItemId(*t1, 1), (ItemId{3, *t1, 1}));
}

}  // namespace
}  // namespace hermes::db
