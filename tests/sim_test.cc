// Unit tests of the discrete-event simulation kernel and site clocks.

#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include "sim/site_clock.h"

namespace hermes::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30);
}

TEST(EventLoop, SameTimeEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time observed = -1;
  loop.ScheduleAfter(10, [&] {
    loop.ScheduleAfter(5, [&] { observed = loop.Now(); });
  });
  loop.Run();
  EXPECT_EQ(observed, 15);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  Time observed = -1;
  loop.ScheduleAt(10, [&] {
    loop.ScheduleAt(3, [&] { observed = loop.Now(); });  // in the past
  });
  loop.Run();
  EXPECT_EQ(observed, 10);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // double cancel
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoop, CancelUnknownIdIsRejected) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(kInvalidEvent));
  EXPECT_FALSE(loop.Cancel(12345));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    loop.ScheduleAt(t, [&] { ++count; });
  }
  EXPECT_EQ(loop.RunUntil(50), 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.Now(), 50);
  EXPECT_EQ(loop.RunUntil(200), 5u);
  EXPECT_EQ(count, 10);
}

TEST(EventLoop, RunUntilAdvancesToDeadlineWhenQueueDrains) {
  EventLoop loop;
  loop.ScheduleAt(10, [] {});
  // The queue drains at t=10 but the whole slice up to 100 was simulated:
  // a caller stepping in 100-unit slices must see time advance even when
  // nothing is scheduled (regression: Now() used to stick at 10).
  EXPECT_EQ(loop.RunUntil(100), 1u);
  EXPECT_EQ(loop.Now(), 100);
  // An empty slice still advances time ...
  EXPECT_EQ(loop.RunUntil(250), 0u);
  EXPECT_EQ(loop.Now(), 250);
  // ... but a deadline in the past never moves it backwards.
  EXPECT_EQ(loop.RunUntil(50), 0u);
  EXPECT_EQ(loop.Now(), 250);
}

TEST(EventLoop, CancelAfterExecutionReturnsFalse) {
  EventLoop loop;
  const EventId id = loop.ScheduleAt(10, [] {});
  loop.Run();
  // The event already ran: cancelling it must fail instead of tombstoning
  // the id (regression: the stale tombstone made Empty() report true while
  // a later event was still pending).
  EXPECT_FALSE(loop.Cancel(id));
  bool ran = false;
  loop.ScheduleAt(20, [&] { ran = true; });
  EXPECT_FALSE(loop.Empty());
  loop.Run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoop, EmptyIgnoresCancelledEvents) {
  EventLoop loop;
  const EventId id = loop.ScheduleAt(10, [] {});
  EXPECT_FALSE(loop.Empty());
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_TRUE(loop.Empty());  // only a tombstone remains queued
  EXPECT_EQ(loop.Run(), 0u);
}

TEST(EventLoop, StepExecutesOneEvent) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(1, [&] { ++count; });
  loop.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.ScheduleAfter(1, chain);
  };
  loop.ScheduleAfter(0, chain);
  loop.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.Now(), 99);
}

TEST(SiteClock, OffsetAndDrift) {
  EventLoop loop;
  SiteClock skewed(&loop, /*offset=*/500, /*drift_ppm=*/0);
  EXPECT_EQ(skewed.Read(), 500);

  SiteClock fast(&loop, 0, /*drift_ppm=*/1000);  // 0.1% fast
  loop.ScheduleAt(1'000'000, [] {});
  loop.Run();
  EXPECT_EQ(fast.Read(), 1'001'000);
  EXPECT_EQ(skewed.Read(), 1'000'500);
}

}  // namespace
}  // namespace hermes::sim
