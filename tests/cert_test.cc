// CSN-certifier tests: unit tests of the CsnSource / CsnCertifier / CsnLog
// machinery (decision-time ordering numbers, snapshot check, durable XID →
// CSN log), agent-level protocol tests driving one agent with hand-crafted
// messages (mirroring agent_test.cc's SN scenarios), and system-level
// crash/recovery tests showing the CSN survives both participant and
// coordinator crashes. See docs/DESIGN-SPACE.md for the SN/CSN comparison
// these tests pin down.

#include "cert/csn_certifier.h"

#include <gtest/gtest.h>

#include "cert/sn_certifier.h"
#include "core/mdbs.h"
#include "history/projection.h"
#include "history/view_checker.h"

namespace hermes {
namespace {

using core::AliveInterval;
using core::CertPolicy;
using core::GlobalTxnResult;
using core::GlobalTxnSpec;
using core::Mdbs;
using core::MdbsConfig;
using core::Message;
using core::SerialNumber;

// --- source & factory -------------------------------------------------------

TEST(CsnSource, StrictlyMonotonicFromOne) {
  cert::CsnSource source;
  EXPECT_EQ(source.last_assigned(), 0);
  EXPECT_EQ(source.Next(), 1);
  EXPECT_EQ(source.Next(), 2);
  EXPECT_EQ(source.Next(), 3);
  EXPECT_EQ(source.last_assigned(), 3);
}

TEST(Certifier, FactoryBuildsRequestedScheme) {
  auto sn = cert::MakeCertifier(cert::CertifierKind::kSn, CertPolicy::kFull);
  auto csn = cert::MakeCertifier(cert::CertifierKind::kCsn, CertPolicy::kFull);
  EXPECT_EQ(sn->kind(), cert::CertifierKind::kSn);
  EXPECT_EQ(csn->kind(), cert::CertifierKind::kCsn);
  EXPECT_STREQ(cert::CertifierKindName(sn->kind()), "sn");
  EXPECT_STREQ(cert::CertifierKindName(csn->kind()), "csn");
}

// --- prepare-time ordering admission ---------------------------------------

TEST(CsnCertifier, NoOrderingRefusalWhereSnSchemeRefuses) {
  // The paper's section 5.3 overtaking scenario: a PREPARE whose serial
  // number is below the committed high-water mark. The SN scheme must
  // refuse (the submit-time order already contradicts the commit order);
  // decision-time CSNs cannot contradict the commit order, so the same
  // arrival is admitted.
  const TxnId a = TxnId::MakeGlobal(0, 1);
  const TxnId b = TxnId::MakeGlobal(0, 2);

  cert::SnCertifier sn(CertPolicy::kFull);
  sn.OnPrepared(a, {0, 10}, SerialNumber{500, 0, 0});
  sn.OnCommitted(a, SerialNumber{500, 0, 0}, 20);
  const auto sn_out =
      sn.CertifyPrepare(b, SerialNumber{300, 0, 0}, {15, 25}, 0, false);
  EXPECT_FALSE(sn_out.admit);
  EXPECT_EQ(sn_out.refuse, trace::RefuseKind::kExtension);

  cert::CsnCertifier csn(CertPolicy::kFull);
  csn.OnPrepared(a, {0, 10}, SerialNumber{});
  csn.OnCommitDecision(a, 1);
  csn.OnCommitted(a, SerialNumber{}, 20);
  const auto csn_out =
      csn.CertifyPrepare(b, SerialNumber{300, 0, 0}, {15, 25}, 0, false);
  EXPECT_TRUE(csn_out.admit);
}

TEST(CsnCertifier, SnapshotRefusesOnlyStraddlingResubmissions) {
  // One commit at t=50 whose recorded alive interval was [0,10].
  cert::CsnCertifier csn(CertPolicy::kFull);
  const TxnId a = TxnId::MakeGlobal(0, 1);
  const TxnId cand = TxnId::MakeGlobal(0, 2);
  csn.OnPrepared(a, {0, 10}, SerialNumber{});
  csn.OnCommitDecision(a, 1);
  ASSERT_TRUE(csn.CertifyCommit(a, nullptr));
  csn.OnCommitted(a, SerialNumber{}, /*now=*/50);

  // Resubmitted candidate alive [20,60]: never concurrent with the commit's
  // interval, and the commit landed inside its lifetime — refused.
  auto out = csn.CertifyPrepare(cand, SerialNumber{}, {20, 60}, 1, true);
  EXPECT_FALSE(out.admit);
  EXPECT_EQ(out.refuse, trace::RefuseKind::kSnapshot);
  ASSERT_EQ(out.related.size(), 1u);
  EXPECT_EQ(out.related[0], a);

  // First incarnation of the same interval: cannot straddle — admitted.
  EXPECT_TRUE(csn.CertifyPrepare(cand, SerialNumber{}, {20, 60}, 0, false)
                  .admit);
  // Resubmitted but provably concurrent (intervals intersect) — admitted.
  EXPECT_TRUE(
      csn.CertifyPrepare(cand, SerialNumber{}, {5, 60}, 1, false).admit);
  // Resubmitted but begun after the commit — nothing to straddle.
  EXPECT_TRUE(
      csn.CertifyPrepare(cand, SerialNumber{}, {55, 60}, 1, false).admit);
}

// --- commit-order certification ---------------------------------------------

TEST(CsnCertifier, UndecidedPeerBlocksDecidedCommit) {
  cert::CsnCertifier csn(CertPolicy::kFull);
  const TxnId a = TxnId::MakeGlobal(0, 1);
  const TxnId b = TxnId::MakeGlobal(0, 2);
  csn.OnPrepared(a, {0, 10}, SerialNumber{});
  csn.OnPrepared(b, {0, 10}, SerialNumber{});

  // a is decided, b is not: b's CSN, once assigned, could be smaller than
  // a's, so a must wait (the invalid serial number parks below every valid
  // one).
  csn.OnCommitDecision(a, 5);
  std::vector<TxnId> waiting;
  EXPECT_FALSE(csn.CertifyCommit(a, &waiting));
  ASSERT_EQ(waiting.size(), 1u);
  EXPECT_EQ(waiting[0], b);

  // b's decision resolves the order: 5 < 7, so a commits first.
  csn.OnCommitDecision(b, 7);
  EXPECT_TRUE(csn.CertifyCommit(a, nullptr));
  EXPECT_FALSE(csn.CertifyCommit(b, nullptr));
  csn.OnCommitted(a, SerialNumber{}, 20);
  EXPECT_TRUE(csn.CertifyCommit(b, nullptr));
}

// --- durable log & crash recovery -------------------------------------------

TEST(CsnCertifier, CrashLosesVolatileStateRecoverReplaysLog) {
  cert::CsnCertifier csn(CertPolicy::kFull);
  const TxnId a = TxnId::MakeGlobal(0, 1);
  csn.OnPrepared(a, {0, 10}, SerialNumber{});
  csn.OnCommitDecision(a, 3);
  csn.OnCommitted(a, SerialNumber{}, 20);
  EXPECT_EQ(csn.CsnOf(a), 3);
  EXPECT_EQ(csn.max_committed_csn(), 3);

  csn.Crash();
  EXPECT_EQ(csn.CsnOf(a), -1);
  EXPECT_EQ(csn.max_committed_csn(), 0);
  EXPECT_EQ(csn.table().size(), 0u);

  csn.Recover();
  EXPECT_EQ(csn.CsnOf(a), 3);
  EXPECT_EQ(csn.max_committed_csn(), 3);
  EXPECT_EQ(csn.log().records().size(), 1u);
}

// --- agent-level protocol behavior ------------------------------------------

// Drives the agent at site 0 of a single-site Mdbs configured with the CSN
// certifier, using hand-crafted 2PC messages from a phantom coordinator
// (agent_test.cc's AgentProtocolTest idiom).
class AgentCsnTest : public ::testing::Test {
 protected:
  void Build(CertPolicy policy) {
    MdbsConfig config;
    config.num_sites = 1;
    config.certifier = cert::CertifierKind::kCsn;
    config.agent.policy = policy;
    config.agent.commit_retry_interval = 2 * sim::kMillisecond;
    config.agent.alive_check_interval = 300 * sim::kMillisecond;
    mdbs_ = std::make_unique<Mdbs>(config, &loop_);
    table_ = *mdbs_->CreateTable(0, "t");
    for (int64_t k = 0; k < 8; ++k) {
      ASSERT_TRUE(mdbs_->LoadRow(0, table_, k,
                                 db::Row{{"v", db::Value(int64_t{0})}})
                      .ok());
    }
    loop_.set_max_events(1'000'000);
  }

  TxnId Gtid(int64_t n) { return TxnId::MakeGlobal(0, 1000 + n); }

  void Send(const Message& msg) { mdbs_->network().Send(0, 0, msg); }

  void Drain() { loop_.RunUntil(loop_.Now() + 50 * sim::kMillisecond); }

  void RunDml(const TxnId& gtid, int64_t key) {
    Send(Message{core::BeginMsg{gtid}});
    Send(Message{core::DmlRequestMsg{
        gtid, 0, db::MakeAddKey(table_, key, "v", int64_t{1})}});
    Drain();
  }

  const cert::CsnCertifier& certifier() {
    return static_cast<const cert::CsnCertifier&>(
        mdbs_->agent(0)->certifier());
  }

  bool CommittedBefore(const TxnId& a, const TxnId& b) {
    int64_t a_at = -1, b_at = -1;
    for (const auto& op : mdbs_->recorder().ops()) {
      if (op.kind != history::OpKind::kLocalCommit) continue;
      if (op.subtxn.txn == a) a_at = static_cast<int64_t>(op.seq);
      if (op.subtxn.txn == b) b_at = static_cast<int64_t>(op.seq);
    }
    EXPECT_GE(a_at, 0);
    EXPECT_GE(b_at, 0);
    return a_at < b_at;
  }

  sim::EventLoop loop_;
  std::unique_ptr<Mdbs> mdbs_;
  db::TableId table_ = -1;
};

TEST_F(AgentCsnTest, CommitsFollowCsnOrderNotArrivalOrder) {
  Build(CertPolicy::kFull);
  const TxnId a = Gtid(1), b = Gtid(2);
  RunDml(a, 1);
  RunDml(b, 2);
  // The submit-time serial numbers on the PREPAREs are ignored by the CSN
  // scheme: both park with invalid SNs.
  Send(Message{core::PrepareMsg{a, SerialNumber{100, 0, 0}}});
  Send(Message{core::PrepareMsg{b, SerialNumber{200, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 2u);

  // b's COMMIT (csn 2) arrives first, but a is still undecided: b must
  // wait — a's CSN could have been (and here is) smaller.
  Send(Message{core::DecisionMsg{b, true, /*csn=*/2}});
  Drain();
  EXPECT_GE(mdbs_->metrics().commit_cert_retries, 1);
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 2u);

  Send(Message{core::DecisionMsg{a, true, /*csn=*/1}});
  Drain();
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 0u);
  EXPECT_TRUE(CommittedBefore(a, b));
  EXPECT_EQ(certifier().CsnOf(a), 1);
  EXPECT_EQ(certifier().CsnOf(b), 2);
  EXPECT_EQ(certifier().max_committed_csn(), 2);
}

TEST_F(AgentCsnTest, LatePrepareAfterCommitIsAdmitted) {
  // Agent-level mirror of agent_test.cc's
  // ExtensionRefusesPrepareBehindCommittedSn: identical message sequence,
  // opposite outcome — decision-time numbering has no "late" prepares.
  Build(CertPolicy::kFull);
  const TxnId first = Gtid(1), late = Gtid(2);
  RunDml(first, 1);
  Send(Message{core::PrepareMsg{first, SerialNumber{500, 0, 0}}});
  Send(Message{core::DecisionMsg{first, true, /*csn=*/1}});
  Drain();

  RunDml(late, 2);
  Send(Message{core::PrepareMsg{late, SerialNumber{300, 0, 0}}});
  Drain();
  EXPECT_EQ(mdbs_->metrics().refuse_extension, 0);
  EXPECT_EQ(mdbs_->metrics().refuse_snapshot, 0);
  EXPECT_EQ(mdbs_->agent(0)->alive_table().size(), 1u);
}

TEST_F(AgentCsnTest, SiteCrashReplaysCsnLogThroughRecovery) {
  Build(CertPolicy::kFull);
  const TxnId a = Gtid(1);
  RunDml(a, 1);
  Send(Message{core::PrepareMsg{a, SerialNumber{100, 0, 0}}});
  Send(Message{core::DecisionMsg{a, true, /*csn=*/5}});
  Drain();
  EXPECT_EQ(certifier().CsnOf(a), 5);

  // Crash-and-recover in one step: the volatile XID → CSN index is wiped
  // and must come back from the durable log replay.
  mdbs_->CrashSite(0);
  Drain();
  EXPECT_EQ(certifier().CsnOf(a), 5);
  EXPECT_EQ(certifier().max_committed_csn(), 5);
}

// --- system-level crash recovery --------------------------------------------

class CsnRecoveryTest : public ::testing::Test {
 protected:
  void Build(int sites) {
    MdbsConfig config;
    config.num_sites = sites;
    config.certifier = cert::CertifierKind::kCsn;
    config.agent.alive_check_interval = 5 * sim::kMillisecond;
    mdbs_ = std::make_unique<Mdbs>(config, &loop_);
    table_ = *mdbs_->CreateTableEverywhere("t");
    for (SiteId s = 0; s < sites; ++s) {
      for (int64_t k = 0; k < 8; ++k) {
        ASSERT_TRUE(mdbs_->LoadRow(s, table_, k,
                                   db::Row{{"v", db::Value(int64_t{0})}})
                        .ok());
      }
    }
    loop_.set_max_events(10'000'000);
  }

  int64_t Val(SiteId site, int64_t key) {
    const db::RowEntry* e = mdbs_->storage(site)->GetTable(table_)->Get(key);
    EXPECT_NE(e, nullptr);
    EXPECT_TRUE(e->live());
    return std::get<int64_t>(*e->row->Get("v"));
  }

  int64_t CsnAt(SiteId site, const TxnId& gtid) {
    return static_cast<const cert::CsnCertifier&>(
               mdbs_->agent(site)->certifier())
        .CsnOf(gtid);
  }

  void ExpectSerializable() {
    const auto committed =
        history::CommittedProjection(mdbs_->recorder().ops());
    EXPECT_EQ(history::VerifyReplayMatchesRecorded(committed), "");
    EXPECT_NE(history::CheckViewSerializability(committed).verdict,
              history::Verdict::kNotSerializable);
  }

  sim::EventLoop loop_;
  std::unique_ptr<Mdbs> mdbs_;
  db::TableId table_ = -1;
};

TEST_F(CsnRecoveryTest, EndToEndCsnRunCommitsAndNumbersEveryTransaction) {
  Build(2);
  std::vector<TxnId> gtids;
  int committed = 0;
  for (int i = 0; i < 3; ++i) {
    GlobalTxnSpec spec;
    spec.steps.push_back({0, db::MakeAddKey(table_, i, "v", int64_t{1})});
    spec.steps.push_back({1, db::MakeAddKey(table_, i, "v", int64_t{1})});
    gtids.push_back(mdbs_->Submit(spec, [&](const GlobalTxnResult& r) {
      if (r.status.ok()) ++committed;
    }));
  }
  loop_.Run();
  EXPECT_EQ(committed, 3);
  EXPECT_EQ(mdbs_->metrics().csn_assigned, 3);
  // Every commit drew a distinct decision-time number from the shared
  // source, recorded identically at both participants.
  std::set<int64_t> csns;
  for (const TxnId& g : gtids) {
    const int64_t csn = CsnAt(0, g);
    EXPECT_GE(csn, 1);
    EXPECT_EQ(csn, CsnAt(1, g));
    csns.insert(csn);
  }
  EXPECT_EQ(csns.size(), 3u);
  ExpectSerializable();
}

TEST_F(CsnRecoveryTest, ParticipantCrashRecoversWithTheAssignedCsn) {
  Build(2);
  // Crash the pure participant right after it prepares: the COMMIT (with
  // the CSN riding on it) is lost; recovery must resubmit, learn the
  // decision through the retransmission/inquiry machinery and commit with
  // the *same* CSN the decision originally drew.
  bool crashed = false;
  mdbs_->agent(0)->set_prepared_hook([&](const TxnId&, LtmTxnHandle) {
    if (crashed) return;
    crashed = true;
    loop_.ScheduleAfter(100, [this]() { mdbs_->CrashSite(0); });
  });

  GlobalTxnSpec spec;
  spec.steps.push_back({0, db::MakeAddKey(table_, 1, "v", int64_t{-10})});
  spec.steps.push_back({1, db::MakeAddKey(table_, 1, "v", int64_t{10})});
  std::optional<GlobalTxnResult> result;
  mdbs_->Submit(spec, [&](const GlobalTxnResult& r) { result = r; },
                /*coordinator_site=*/1);
  loop_.Run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(crashed);
  EXPECT_TRUE(result->status.ok()) << result->status;
  EXPECT_EQ(Val(0, 1), -10);
  EXPECT_EQ(Val(1, 1), 10);
  EXPECT_EQ(mdbs_->metrics().csn_assigned, 1);
  EXPECT_EQ(CsnAt(0, result->gtid), 1);
  EXPECT_EQ(CsnAt(1, result->gtid), 1);
  ExpectSerializable();
}

TEST_F(CsnRecoveryTest, CoordinatorCrashRedeliversDecisionWithSameCsn) {
  Build(2);
  // The participant (site 1) crashes after preparing and stays down; the
  // coordinator (site 0) decides commit — force-writing the decision record
  // with its CSN — and then crashes itself. Its recovery must re-drive the
  // COMMIT from the log with the logged CSN, and the recovered participant
  // must commit under that number.
  TxnId gtid;
  bool crashed = false;
  mdbs_->agent(1)->set_prepared_hook([&](const TxnId& id, LtmTxnHandle) {
    if (crashed || !(id == gtid)) return;
    crashed = true;
    // The READY vote is already in flight to the coordinator; the COMMIT
    // reply will vanish against the downed site.
    loop_.ScheduleAfter(100, [this]() { mdbs_->CrashSite(1, /*downtime=*/-1); });
  });

  GlobalTxnSpec spec;
  spec.steps.push_back({1, db::MakeAddKey(table_, 1, "v", int64_t{7})});
  std::optional<GlobalTxnResult> result;
  gtid = mdbs_->Submit(spec, [&](const GlobalTxnResult& r) { result = r; },
                       /*coordinator_site=*/0);
  // Let the vote arrive and the decision be taken (and retransmitted into
  // the void a few times).
  loop_.RunUntil(loop_.Now() + 60 * sim::kMillisecond);
  ASSERT_TRUE(crashed);
  EXPECT_EQ(mdbs_->metrics().csn_assigned, 1);

  // Coordinator crash-and-recover: volatile transaction state is gone, the
  // decision log survives and re-drives delivery.
  mdbs_->CrashSite(0);
  mdbs_->RecoverSite(1);
  loop_.RunUntil(loop_.Now() + 500 * sim::kMillisecond);

  EXPECT_GE(mdbs_->metrics().coordinator_redelivered_decisions, 1);
  EXPECT_EQ(Val(1, 1), 7);
  EXPECT_EQ(CsnAt(1, gtid), 1);
  EXPECT_TRUE(mdbs_->agent(1)->log().HasComplete(gtid));
  EXPECT_TRUE(mdbs_->agent(1)->log().InDoubt().empty());
  ExpectSerializable();
}

}  // namespace
}  // namespace hermes
