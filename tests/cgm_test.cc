// Tests of the CGM baseline: commit graph admission, granule derivation,
// global lock manager, and the end-to-end centralized system.

#include <gtest/gtest.h>

#include "cgm/cgm_mdbs.h"
#include "cgm/commit_graph.h"
#include "cgm/global_locks.h"
#include "history/projection.h"
#include "history/view_checker.h"

namespace hermes::cgm {
namespace {

TEST(CommitGraph, SingleSiteTransactionsNeverLoop) {
  CommitGraph g;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(g.TryAdd(TxnId::MakeGlobal(0, i), {0}));
  }
  EXPECT_EQ(g.txn_count(), 10u);
}

TEST(CommitGraph, TwoTxnsSharingTwoSitesLoop) {
  CommitGraph g;
  EXPECT_TRUE(g.TryAdd(TxnId::MakeGlobal(0, 1), {0, 1}));
  // Second transaction spanning the same two sites closes a loop.
  EXPECT_FALSE(g.TryAdd(TxnId::MakeGlobal(0, 2), {0, 1}));
  // After the first finishes, the second is admissible.
  g.Remove(TxnId::MakeGlobal(0, 1));
  EXPECT_TRUE(g.TryAdd(TxnId::MakeGlobal(0, 2), {0, 1}));
}

TEST(CommitGraph, TransitiveConnectivityDetected) {
  CommitGraph g;
  EXPECT_TRUE(g.TryAdd(TxnId::MakeGlobal(0, 1), {0, 1}));
  EXPECT_TRUE(g.TryAdd(TxnId::MakeGlobal(0, 2), {1, 2}));
  // Sites 0 and 2 are connected through T1-site1-T2: adding a transaction
  // spanning {0, 2} closes a loop even though no prior txn spans them.
  EXPECT_FALSE(g.TryAdd(TxnId::MakeGlobal(0, 3), {0, 2}));
  // Disjoint additions stay fine.
  EXPECT_TRUE(g.TryAdd(TxnId::MakeGlobal(0, 4), {3, 4}));
}

TEST(CommitGraph, DuplicateSitesInOneTxnLoopImmediately) {
  CommitGraph g;
  EXPECT_FALSE(g.TryAdd(TxnId::MakeGlobal(0, 1), {0, 0}));
}

TEST(Granules, SiteTableItemDerivation) {
  const db::Command keyed = db::MakeAddKey(3, 42, "v", db::Value(int64_t{1}));
  const db::Command scan =
      db::MakeSelect(3, db::Predicate::Field("v", db::CmpOp::kGt,
                                             db::Value(int64_t{0})));

  auto site = GranulesOf(Granularity::kSite, 7, keyed);
  ASSERT_EQ(site.size(), 1u);
  EXPECT_EQ(site[0].id, (ItemId{7, -1, -1}));
  EXPECT_EQ(site[0].mode, ltm::LockMode::kExclusive);

  auto table = GranulesOf(Granularity::kTable, 7, keyed);
  EXPECT_EQ(table[0].id, (ItemId{7, 3, -1}));

  auto item = GranulesOf(Granularity::kItem, 7, keyed);
  EXPECT_EQ(item[0].id, (ItemId{7, 3, 42}));

  // A predicate scan cannot be item-locked: it escalates to the table.
  auto escalated = GranulesOf(Granularity::kItem, 7, scan);
  EXPECT_EQ(escalated[0].id, (ItemId{7, 3, -1}));
  EXPECT_EQ(escalated[0].mode, ltm::LockMode::kShared);
}

TEST(GlobalLockManager, SequentialAcquireAndTimeout) {
  sim::EventLoop loop;
  GlobalLockManager locks(50 * sim::kMillisecond, &loop);
  const TxnId t1 = TxnId::MakeGlobal(0, 1);
  const TxnId t2 = TxnId::MakeGlobal(0, 2);
  const Granule g{ItemId{0, -1, -1}, ltm::LockMode::kExclusive};

  std::optional<Status> s1, s2;
  locks.AcquireAll(t1, {g}, [&](Status s) { s1 = s; });
  locks.AcquireAll(t2, {g}, [&](Status s) { s2 = s; });
  loop.Run();
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_TRUE(s1->ok());
  EXPECT_EQ(s2->code(), StatusCode::kTimeout);

  // Release unblocks future acquisitions.
  locks.ReleaseAll(t1);
  std::optional<Status> s3;
  locks.AcquireAll(t2, {g}, [&](Status s) { s3 = s; });
  loop.Run();
  EXPECT_TRUE(s3->ok());
}

class CgmSystemTest : public ::testing::Test {
 protected:
  void Build(Granularity granularity, int sites = 3) {
    CgmConfig config;
    config.mdbs.num_sites = sites;
    config.granularity = granularity;
    cgm_ = std::make_unique<CgmMdbs>(config, &loop_);
    table_ = *cgm_->mdbs().CreateTableEverywhere("t");
    for (SiteId s = 0; s < sites; ++s) {
      for (int64_t k = 0; k < 8; ++k) {
        ASSERT_TRUE(cgm_->mdbs()
                        .LoadRow(s, table_, k,
                                 db::Row{{"v", db::Value(int64_t{0})}})
                        .ok());
      }
    }
    loop_.set_max_events(10'000'000);
  }

  core::GlobalTxnSpec TwoSiteTxn(SiteId a, SiteId b, int64_t key) {
    core::GlobalTxnSpec spec;
    spec.steps.push_back({a, db::MakeAddKey(table_, key, "v", int64_t{1})});
    spec.steps.push_back({b, db::MakeAddKey(table_, key, "v", int64_t{1})});
    return spec;
  }

  sim::EventLoop loop_;
  std::unique_ptr<CgmMdbs> cgm_;
  db::TableId table_ = -1;
};

TEST_F(CgmSystemTest, SingleTransactionCommits) {
  Build(Granularity::kSite);
  std::optional<core::GlobalTxnResult> result;
  cgm_->Submit(TwoSiteTxn(0, 1, 1),
               [&](const core::GlobalTxnResult& r) { result = r; });
  loop_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status;
  const auto committed =
      history::CommittedProjection(cgm_->mdbs().recorder().ops());
  EXPECT_EQ(history::CheckViewSerializability(committed).verdict,
            history::Verdict::kSerializable);
}

TEST_F(CgmSystemTest, SiteGranularitySerializesDisjointTransactions) {
  // Two transactions on *different rows* still conflict under site-level
  // global locks: the second waits for the first — the restrictiveness the
  // paper criticizes.
  Build(Granularity::kSite);
  std::optional<core::GlobalTxnResult> r1, r2;
  sim::Time t1_done = 0, t2_done = 0;
  cgm_->Submit(TwoSiteTxn(0, 1, 1), [&](const core::GlobalTxnResult& r) {
    r1 = r;
    t1_done = loop_.Now();
  });
  cgm_->Submit(TwoSiteTxn(0, 1, 2), [&](const core::GlobalTxnResult& r) {
    r2 = r;
    t2_done = loop_.Now();
  });
  loop_.Run();
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r1->status.ok());
  EXPECT_TRUE(r2->status.ok());
  // Strictly serialized: the second finished a full execution later.
  EXPECT_GT(std::max(t1_done, t2_done) - std::min(t1_done, t2_done),
            2 * sim::kMillisecond);
}

TEST_F(CgmSystemTest, ItemGranularityAllowsDisjointConcurrency) {
  Build(Granularity::kItem);
  std::optional<core::GlobalTxnResult> r1, r2;
  cgm_->Submit(TwoSiteTxn(0, 1, 1),
               [&](const core::GlobalTxnResult& r) { r1 = r; });
  cgm_->Submit(TwoSiteTxn(0, 1, 2),
               [&](const core::GlobalTxnResult& r) { r2 = r; });
  loop_.Run();
  EXPECT_TRUE(r1->status.ok());
  EXPECT_TRUE(r2->status.ok());
}

TEST_F(CgmSystemTest, FailureRecoveryViaResubmissionStillWorks) {
  Build(Granularity::kSite);
  bool injected = false;
  cgm_->mdbs().agent(0)->set_prepared_hook(
      [&](const TxnId&, LtmTxnHandle handle) {
        if (injected) return;
        injected = true;
        loop_.ScheduleAfter(sim::kMillisecond, [this, handle]() {
          (void)cgm_->mdbs().ltm(0)->InjectUnilateralAbort(handle);
        });
      });
  std::optional<core::GlobalTxnResult> result;
  cgm_->Submit(TwoSiteTxn(0, 1, 1),
               [&](const core::GlobalTxnResult& r) { result = r; });
  loop_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status;
  EXPECT_TRUE(injected);
  EXPECT_GE(cgm_->mdbs().metrics().resubmissions, 1);
  const auto committed =
      history::CommittedProjection(cgm_->mdbs().recorder().ops());
  EXPECT_EQ(history::CheckViewSerializability(committed).verdict,
            history::Verdict::kSerializable);
}

}  // namespace
}  // namespace hermes::cgm
