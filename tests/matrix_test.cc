// Cross-dimension property sweeps: the serializability and liveness
// invariants must hold across topology (site count), access skew, clock
// skew, failure rate and system (2CM / CGM). Each parameterized case runs a
// full randomized workload and checks the oracle verdicts plus basic
// sanity (all submitted transactions complete, throughput positive).

#include <gtest/gtest.h>

#include "common/str.h"
#include "workload/driver.h"

namespace hermes::workload {
namespace {

// --- topology sweep ------------------------------------------------------

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopologySweep, InvariantsHoldAcrossSitesAndSpan) {
  const auto [sites, span] = GetParam();
  WorkloadConfig config;
  config.seed = 7000 + static_cast<uint64_t>(sites * 10 + span);
  config.num_sites = sites;
  config.sites_per_global_txn = span;
  config.cmds_per_global_txn = std::max(2, span);
  config.rows_per_table = 32;
  config.global_clients = 4;
  config.target_global_txns = 24;
  config.p_prepared_abort = 0.15;
  config.alive_check_interval = 8 * sim::kMillisecond;
  const RunResult r = Driver::Run(config);

  EXPECT_EQ(r.metrics.global_committed + r.metrics.global_aborted,
            config.target_global_txns);
  EXPECT_GT(r.metrics.global_committed, 0);
  EXPECT_TRUE(r.commit_graph_acyclic);
  EXPECT_TRUE(r.replay_consistent) << r.replay_error;
  EXPECT_TRUE(r.order_invariant_ok) << r.order_invariant_error;
  EXPECT_NE(r.verdict, history::Verdict::kNotSerializable)
      << r.verdict_detail;
}

INSTANTIATE_TEST_SUITE_P(
    SitesBySpan, TopologySweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(2, 2), std::make_tuple(4, 2),
                      std::make_tuple(4, 3), std::make_tuple(6, 2),
                      std::make_tuple(8, 2), std::make_tuple(8, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return StrCat("sites", std::get<0>(info.param), "_span",
                    std::get<1>(info.param));
    });

// --- skew sweep -----------------------------------------------------------

class SkewSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkewSweep, ClockSkewNeverBreaksCorrectness) {
  // The paper's section 5.2 claim as a property: any clock skew costs
  // throughput only, never correctness.
  WorkloadConfig config;
  config.seed = 7500 + static_cast<uint64_t>(GetParam());
  config.num_sites = 4;
  config.rows_per_table = 24;
  config.global_clients = 6;
  config.target_global_txns = 24;
  config.p_prepared_abort = 0.2;
  config.alive_check_interval = 8 * sim::kMillisecond;
  config.clock_skew = GetParam() * sim::kMillisecond;
  const RunResult r = Driver::Run(config);
  EXPECT_TRUE(r.commit_graph_acyclic);
  EXPECT_TRUE(r.replay_consistent) << r.replay_error;
  EXPECT_NE(r.verdict, history::Verdict::kNotSerializable)
      << r.verdict_detail;
}

INSTANTIATE_TEST_SUITE_P(SkewMs, SkewSweep,
                         ::testing::Values(0, 1, 3, 10, 50, 250));

// --- access-skew sweep -------------------------------------------------------

class ZipfSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZipfSweep, HotKeysStaySerializable) {
  WorkloadConfig config;
  config.seed = 7700 + static_cast<uint64_t>(GetParam());
  config.num_sites = 3;
  config.rows_per_table = 64;
  config.zipf_theta = GetParam() / 100.0;
  config.global_clients = 5;
  config.local_clients_per_site = 1;
  config.target_global_txns = 24;
  config.p_prepared_abort = 0.25;
  config.alive_check_interval = 8 * sim::kMillisecond;
  const RunResult r = Driver::Run(config);
  EXPECT_TRUE(r.commit_graph_acyclic);
  EXPECT_TRUE(r.replay_consistent) << r.replay_error;
  EXPECT_NE(r.verdict, history::Verdict::kNotSerializable)
      << r.verdict_detail;
}

INSTANTIATE_TEST_SUITE_P(ThetaPercent, ZipfSweep,
                         ::testing::Values(0, 50, 90, 120));

// --- CGM sweep ----------------------------------------------------------------

class CgmSweep : public ::testing::TestWithParam<cgm::Granularity> {};

TEST_P(CgmSweep, CgmStaysCorrectUnderFailures) {
  WorkloadConfig config;
  config.seed = 7900;
  config.system = System::kCGM;
  config.cgm_granularity = GetParam();
  config.num_sites = 3;
  config.rows_per_table = 32;
  config.global_clients = 4;
  config.local_clients_per_site = 1;
  config.target_global_txns = 20;
  config.p_prepared_abort = 0.15;
  config.alive_check_interval = 8 * sim::kMillisecond;
  const RunResult r = Driver::Run(config);
  EXPECT_EQ(r.metrics.global_committed + r.metrics.global_aborted,
            config.target_global_txns);
  EXPECT_TRUE(r.replay_consistent) << r.replay_error;
  EXPECT_NE(r.verdict, history::Verdict::kNotSerializable)
      << r.verdict_detail;
}

INSTANTIATE_TEST_SUITE_P(Granularities, CgmSweep,
                         ::testing::Values(cgm::Granularity::kSite,
                                           cgm::Granularity::kTable,
                                           cgm::Granularity::kItem),
                         [](const auto& info) {
                           return cgm::GranularityName(info.param);
                         });

// --- non-rigorous LDBS (negative property) --------------------------------------

TEST(NonRigorousLdbs, CertifierAssumptionIsLoadBearing) {
  // The certifier's soundness rests on SRS. With a non-rigorous LDBS the
  // conflict-detection basis collapses: across a batch of contended runs
  // with failures, violations (or dirty-read replay inconsistencies) must
  // appear even with the full certifier — demonstrating the assumption is
  // necessary, not decorative.
  // Commit certification keeps CG acyclic even here, so the violations are
  // only visible to the *exact* oracle — which needs small histories: many
  // tiny, highly contended runs.
  int violations = 0;
  for (uint64_t seed = 600; seed < 640; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    config.rigorous_ltm = false;
    config.num_sites = 2;
    config.rows_per_table = 3;
    config.global_clients = 4;
    config.target_global_txns = 6;
    config.cmds_per_global_txn = 3;
    config.global_write_fraction = 0.5;
    config.p_prepared_abort = 0.2;
    config.alive_check_interval = 4 * sim::kMillisecond;
    const RunResult r = Driver::Run(config);
    if (!r.replay_consistent || !r.commit_graph_acyclic ||
        r.verdict == history::Verdict::kNotSerializable) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace hermes::workload
